"""Property tests for the streaming digest: merge equivalence and the
tail-mass estimate (satellite of ISSUE 10).

``merge`` must be indistinguishable from having ingested the combined
stream directly — the SLO burn tracker merges per-bucket digests into
window digests, so any drift here silently corrupts burn rates.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.digest import SUBBUCKETS, StreamingDigest, _bucket_index, _bucket_low

samples = st.lists(st.integers(min_value=0, max_value=10**12), max_size=200)


def _fill(values):
    d = StreamingDigest()
    for v in values:
        d.add(v)
    return d


@given(samples, samples)
@settings(max_examples=200, deadline=None)
def test_merge_equals_combined_stream(a, b):
    """merge(a, b) is *exactly* the digest of the concatenated stream:
    same buckets, same count/total/min/max, so every quantile and
    fraction_above answer is identical — merging adds zero sketch error
    on top of the ingestion error."""
    merged = _fill(a)
    merged.merge(_fill(b))
    combined = _fill(a + b)
    assert merged.buckets == combined.buckets
    assert merged.count == combined.count
    assert merged.total == combined.total
    assert merged.min_value == combined.min_value
    assert merged.max_value == combined.max_value
    for q in (0.0, 0.5, 0.99, 1.0):
        assert merged.quantile(q) == combined.quantile(q)


@given(samples)
@settings(max_examples=100, deadline=None)
def test_merge_into_empty_is_identity(a):
    merged = StreamingDigest()
    merged.merge(_fill(a))
    combined = _fill(a)
    assert merged.buckets == combined.buckets
    assert merged.count == combined.count
    assert merged.min_value == combined.min_value
    assert merged.max_value == combined.max_value


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=200),
       st.integers(min_value=0, max_value=10**9))
@settings(max_examples=200, deadline=None)
def test_fraction_above_bounds(values, threshold):
    """The estimate brackets the truth from above, within one bucket:
    never below the exact fraction, never counting samples more than one
    bucket width under the threshold."""
    d = _fill(values)
    est = d.fraction_above(threshold)
    exact = sum(1 for v in values if v > threshold) / len(values)
    assert 0.0 <= est <= 1.0
    assert est >= exact or abs(est - exact) < 1e-12
    # Upper bound: only samples from the threshold's own bucket (or
    # above) may be over-counted.
    cut = _bucket_index(threshold)
    loose = sum(1 for v in values if _bucket_index(v) >= cut) / len(values)
    assert est <= loose + 1e-12


@given(st.lists(st.integers(min_value=0, max_value=SUBBUCKETS - 1),
                min_size=1, max_size=100),
       st.integers(min_value=0, max_value=SUBBUCKETS - 1))
@settings(max_examples=100, deadline=None)
def test_fraction_above_exact_for_singleton_buckets(values, threshold):
    """Values below SUBBUCKETS have one bucket each -> estimate is exact."""
    d = _fill(values)
    exact = sum(1 for v in values if v > threshold) / len(values)
    assert d.fraction_above(threshold) == exact


@given(st.integers(min_value=0, max_value=10**15))
@settings(max_examples=300, deadline=None)
def test_bucket_roundtrip(value):
    """Every value lands in a bucket whose range contains it."""
    idx = _bucket_index(value)
    low = _bucket_low(idx)
    assert low <= value
    assert _bucket_low(idx + 1) > value
