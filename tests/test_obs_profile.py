"""The profile front end: reports, digests, sampler series, exports."""

import json

import pytest

from repro.cli import main
from repro.obs.digest import StreamingDigest
from repro.obs.export import folded_stacks, validate_trace_document
from repro.obs.profile import PROFILE_SCENARIOS, run_profile


@pytest.fixture(scope="module")
def report():
    return run_profile("randwrite", nrequests=20, seed=0)


def test_scenario_catalog_covers_the_datapaths():
    assert {"randread", "randwrite", "read", "write", "ec-read", "ec-write", "chaos"} \
        <= set(PROFILE_SCENARIOS)
    assert PROFILE_SCENARIOS["ec-write"].pool == "erasure"
    assert PROFILE_SCENARIOS["chaos"].chaos


def test_report_invariants(report):
    assert report.complete == 20
    assert report.incomplete == 0
    assert report.errors == 0
    assert report.latencies_match
    # Attribution partitions every request: stage/kind totals and the
    # latency digest all see the same nanoseconds.
    total = sum(p.total_ns for p in report.paths)
    assert sum(report.by_stage.values()) == total
    assert sum(report.by_kind.values()) == total
    assert sum(report.folded.values()) == total
    assert report.total_digest.count == 20
    assert report.total_digest.total == total


def test_report_render(report):
    text = report.render()
    assert "critical-path attribution" in text
    assert "100.0%" in text
    assert "fabric" in text
    assert "resource telemetry" in text
    assert "straggler slack" in text  # replicated writes fan out


def test_telemetry_series_present(report):
    names = set(report.telemetry)
    assert any(n.startswith("obs.cpu.core") for n in names)
    assert "obs.blk.inflight" in names
    assert "obs.qdma.gbps" in names
    assert report.samples_taken > 1


def test_perfetto_document_is_schema_clean(report):
    doc = report.perfetto()
    assert validate_trace_document(doc) == []
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert spans and counters
    # Fan-out legs get their own lanes: more than one tid in use.
    assert len({e["tid"] for e in spans}) > 1


def test_exports_write_loadable_artifacts(report, tmp_path):
    perfetto = report.export(tmp_path / "trace.json")
    doc = json.loads(perfetto.read_text())
    assert validate_trace_document(doc) == []
    flame = report.export_flamegraph(tmp_path / "flame.folded")
    lines = flame.read_text().strip().splitlines()
    assert lines
    for line in lines:
        stack, ns = line.rsplit(" ", 1)
        assert stack.split(";")[0] in ("read", "write", "randread", "randwrite")
        assert int(ns) > 0
    trees = json.loads(report.export_trees(tmp_path / "trees.json").read_text())
    assert len(trees) == 20
    assert all(t["end_ns"] >= t["start_ns"] for t in trees)


def test_folded_stacks_rendering():
    assert folded_stacks({}) == ""
    out = folded_stacks({("a", "b"): 10, ("a",): 5, ("zero",): 0})
    assert out == "a 5\na;b 10\n"


def test_streaming_digest_quantiles_track_samples():
    digest = StreamingDigest()
    for v in range(1, 1001):
        digest.add(v)
    assert digest.count == 1000
    assert digest.min_value == 1 and digest.max_value == 1000
    assert digest.quantile(0.0) == 1
    assert digest.quantile(1.0) == 1000
    # Log-linear buckets: ~3% worst-case relative error.
    assert digest.quantile(0.5) == pytest.approx(500, rel=0.05)
    assert digest.quantile(0.99) == pytest.approx(990, rel=0.05)
    pct = digest.percentiles()
    assert set(pct) == {"p50", "p95", "p99", "p999"}
    assert digest.mean == pytest.approx(500.5)


def test_streaming_digest_merge_matches_combined():
    a, b, both = StreamingDigest(), StreamingDigest(), StreamingDigest()
    for v in (3, 80, 5000, 12):
        a.add(v)
        both.add(v)
    for v in (7, 900, 44):
        b.add(v)
        both.add(v)
    a.merge(b)
    assert a.count == both.count and a.total == both.total
    assert a.buckets == both.buckets
    assert a.percentiles() == both.percentiles()


def test_ec_profile_has_shard_legs():
    report = run_profile("ec-write", nrequests=10, seed=1)
    assert report.complete == 10 and report.latencies_match
    shard_legs = [
        s
        for root in report.roots
        for s in root.walk()
        if "shard" in s.meta
    ]
    assert shard_legs, "EC writes must dispatch shard legs"


def test_cli_profile_runs_and_exports(tmp_path, capsys):
    out = tmp_path / "p.json"
    flame = tmp_path / "p.folded"
    code = main(["profile", "randwrite", "--nrequests", "10",
                 "--export", str(out), "--flamegraph", str(flame)])
    assert code == 0
    printed = capsys.readouterr().out
    assert "critical-path attribution" in printed
    assert validate_trace_document(json.loads(out.read_text())) == []
    assert flame.read_text().strip()


def test_unknown_scenario_raises():
    with pytest.raises(KeyError):
        run_profile("no-such-scenario")
