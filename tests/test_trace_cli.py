"""Tests for the lifecycle tracer and the command-line interface."""

import pytest

from repro.cli import main
from repro.deliba import DELIBAK, build_framework
from repro.errors import ReproError
from repro.sim import Environment
from repro.trace import STAGES, Tracer
from repro.units import kib
from repro.workloads import FioJob


# --- tracer unit tests --------------------------------------------------------


def test_tracer_begin_end_span():
    env = Environment()
    tracer = Tracer(env)
    tracer.begin(1, "fabric")
    env.run(until=500)
    tracer.end(1, "fabric")
    assert tracer.traces[1].stage_ns("fabric") == 500


def test_tracer_record_retrospective():
    tracer = Tracer(Environment())
    tracer.record(7, "qdma", 100, 400)
    assert tracer.traces[7].stage_ns("qdma") == 300


def test_tracer_double_begin_rejected():
    tracer = Tracer(Environment())
    tracer.begin(1, "accel")
    with pytest.raises(ReproError):
        tracer.begin(1, "accel")


def test_tracer_end_without_begin_rejected():
    tracer = Tracer(Environment())
    with pytest.raises(ReproError):
        tracer.end(1, "accel")


def test_tracer_record_validation():
    tracer = Tracer(Environment())
    with pytest.raises(ReproError):
        tracer.record(1, "qdma", 400, 100)


def test_tracer_context_manager():
    env = Environment()
    tracer = Tracer(env)
    with tracer.stage(3, "rings"):
        env.run(until=250)
    assert tracer.traces[3].stage_ns("rings") == 250


def test_tracer_summary_and_total():
    tracer = Tracer(Environment())
    tracer.record(1, "fabric", 0, 60_000)
    tracer.record(1, "qdma", 60_000, 62_000)
    tracer.record(2, "fabric", 0, 40_000)
    summary = tracer.summary()
    assert summary["fabric"] == pytest.approx(50.0)
    assert summary["qdma"] == pytest.approx(2.0)
    assert tracer.traces[1].total_ns == 62_000


def test_tracer_empty_summary():
    assert Tracer(Environment()).summary() == {}


def test_breakdown_table_renders():
    tracer = Tracer(Environment())
    tracer.record(1, "fabric", 0, 50_000)
    out = tracer.breakdown_table()
    assert "fabric" in out and "%" in out


# --- tracer integration --------------------------------------------------------


def test_traced_framework_covers_stages():
    fw = build_framework(DELIBAK, trace=True)
    job = FioJob("t", "randwrite", bs=kib(4), iodepth=1, nrequests=10)
    proc = fw.env.process(fw.run_fio(job))
    fw.env.run()
    assert proc.ok
    summary = fw.tracer.summary()
    for stage in ("rings", "qdma", "accel", "fabric", "complete"):
        assert stage in summary, f"stage {stage} missing from {summary}"
    # Fabric (network + OSD) must dominate the 4 kB write path.
    assert summary["fabric"] > 0.5 * sum(summary.values())
    # Stage sum roughly accounts for end-to-end latency.
    assert sum(summary.values()) <= proc.value.mean_latency_us() * 1.1


def test_untraced_framework_has_no_tracer():
    fw = build_framework(DELIBAK)
    assert fw.tracer is None


def test_stage_names_canonical():
    assert STAGES == ("rings", "dmq", "qdma", "accel", "fabric", "complete")


# --- cli -------------------------------------------------------------------------


def test_cli_frameworks(capsys):
    assert main(["frameworks"]) == 0
    out = capsys.readouterr().out
    assert "delibak" in out and "rtl-fpga-tcp" in out


def test_cli_fio(capsys):
    code = main(["fio", "--framework", "delibak", "--rw", "randread",
                 "--nrequests", "20", "--iodepth", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "mean latency" in out and "MB/s" in out


def test_cli_fio_erasure_pool(capsys):
    code = main(["fio", "--framework", "delibak", "--rw", "randwrite",
                 "--pool", "erasure", "--nrequests", "10"])
    assert code == 0


def test_cli_experiment_power(capsys):
    assert main(["experiment", "power"]) == 0
    out = capsys.readouterr().out
    assert "195" in out


def test_cli_trace(capsys):
    assert main(["trace", "--nrequests", "10"]) == 0
    out = capsys.readouterr().out
    assert "fabric" in out


def test_cli_trace_rejects_software_framework(capsys):
    assert main(["trace", "--framework", "software-ceph"]) == 2


def test_cli_rejects_unknown_command():
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_cli_fio_prints_percentiles(capsys):
    assert main(["fio", "--nrequests", "30", "--iodepth", "2"]) == 0
    out = capsys.readouterr().out
    assert "p99" in out


def test_cli_replay(tmp_path, capsys):
    trace = tmp_path / "t.trace"
    trace.write_text("W 0 4096\nR 0 4096\n")
    assert main(["replay", str(trace), "--iodepth", "1"]) == 0
    out = capsys.readouterr().out
    assert "replayed 2 I/Os" in out


def test_cli_sweep(tmp_path, capsys):
    csv_path = tmp_path / "grid.csv"
    code = main(["sweep", "--frameworks", "delibak", "--rw", "randread",
                 "--bs", "4096", "--iodepth", "1", "--csv", str(csv_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "sweep" in out and csv_path.exists()
