"""Deterministic differential scheduler harness.

Replays one identical arrival trace through two schedulers — plain FIFO
and the production :class:`repro.osd.qos.MClockQueue` — over a model
server pool with fixed per-op service time, entirely in virtual time
(no simulation kernel, no randomness at replay time).  Because both
runs see byte-identical arrivals, any per-flow difference in dispatch
counts or queue waits is attributable to the scheduling policy alone,
so fairness claims (reservation floors, weight-proportional allocation,
limit ceilings, work conservation) can be asserted as exact properties
rather than statistical tendencies.

Also hosts :func:`replay_cluster`, the multi-server dmClock replay: one
queue per server plus a :class:`~repro.osd.qos.TenantTracker` per flow
stamping rho/delta exactly as the messenger layer does, used by the
Hypothesis properties to check that distributed tags keep cluster-wide
floors and ceilings without any scheduler-to-scheduler talk.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from repro.osd.qos import (
    NS_PER_SEC,
    PHASE_RESERVATION,
    MClockQueue,
    QosConfig,
    QosTag,
    TenantTracker,
)


@dataclass(frozen=True)
class Arrival:
    """One op of the trace: who sent it and when."""

    time: int
    flow: tuple[str, str]
    op_id: int


def open_loop_trace(
    flows: dict[tuple[str, str], float], duration_ns: int, start_ns: int = 0
) -> list[Arrival]:
    """Deterministic open-loop trace: each flow arrives at a fixed rate.

    ``flows`` maps flow key -> offered IOPS.  Arrivals are merged in
    time order (ties by flow insertion order), op ids are globally
    unique — the same list replays identically forever.
    """
    arrivals: list[Arrival] = []
    for flow, iops in flows.items():
        spacing = max(1, round(NS_PER_SEC / iops))
        t = start_ns
        while t < start_ns + duration_ns:
            arrivals.append(Arrival(t, flow, 0))
            t += spacing
    arrivals.sort(key=lambda a: a.time)
    return [Arrival(a.time, a.flow, i) for i, a in enumerate(arrivals)]


@dataclass
class FlowStats:
    """Per-flow outcome of one replay."""

    dispatched: int = 0
    reservation_dispatches: int = 0
    total_wait_ns: int = 0
    max_wait_ns: int = 0
    #: dispatch timestamps (ns) — rate assertions slice windows of this.
    dispatch_times: list[int] = field(default_factory=list)

    def mean_wait_ns(self) -> float:
        return self.total_wait_ns / self.dispatched if self.dispatched else 0.0

    def rate_iops(self, t0: int, t1: int) -> float:
        """Observed dispatch rate over [t0, t1)."""
        n = sum(1 for t in self.dispatch_times if t0 <= t < t1)
        return n * NS_PER_SEC / (t1 - t0) if t1 > t0 else 0.0


@dataclass
class ReplayResult:
    """Outcome of one scheduler replay over a trace."""

    flows: dict[tuple[str, str], FlowStats]
    #: op_id -> (arrival, dispatch, flow) for per-op differential diffs.
    per_op: dict[int, tuple[int, int, tuple[str, str]]]
    finished_at: int = 0

    def total_dispatched(self) -> int:
        return sum(s.dispatched for s in self.flows.values())


class FifoQueue:
    """The baseline policy: strict arrival order, no flow awareness.

    Implements the same ``push``/``pop``/``next_eligible`` surface as
    :class:`MClockQueue` so :func:`replay` drives either verbatim.
    """

    def __init__(self):
        self._items: deque = deque()

    def __len__(self) -> int:
        return len(self._items)

    def push(self, item, key, now, rho=1, delta=1) -> None:
        self._items.append((item, key))

    def pop(self, now):
        if not self._items:
            return None
        item, key = self._items.popleft()
        return item, key, 0, 0

    def next_eligible(self, now):
        return now if self._items else None


def replay(queue, arrivals: list[Arrival], workers: int, service_ns: int) -> ReplayResult:
    """Run ``arrivals`` through ``queue`` over ``workers`` model servers.

    Every dispatched op occupies one worker for exactly ``service_ns``.
    The loop advances virtual time to the next arrival or completion,
    dispatching whenever a worker is free and the queue has an eligible
    head — plus, for limit-blocked queues, to the queue's own
    ``next_eligible`` time (mirroring the production wakeup timer).
    Fully deterministic: identical inputs give identical results.
    """
    flows: dict[tuple[str, str], FlowStats] = {}
    per_op: dict[int, tuple[int, int, tuple[str, str]]] = {}
    busy: list[tuple[int, int]] = []  # (finish_time, seq) heap
    seq = 0
    now = 0
    i = 0
    n = len(arrivals)
    last_dispatch = 0
    while i < n or len(queue) or busy:
        # Admit everything that has arrived by now.
        while i < n and arrivals[i].time <= now:
            a = arrivals[i]
            queue.push((a.op_id, a.time), a.flow, a.time)
            i += 1
        # Retire finished service slots.
        while busy and busy[0][0] <= now:
            heapq.heappop(busy)
        # Dispatch while a worker is free and a head is eligible.
        while len(busy) < workers:
            popped = queue.pop(now)
            if popped is None:
                break
            (op_id, t_arr), key, phase, _lag = popped
            seq += 1
            heapq.heappush(busy, (now + service_ns, seq))
            st = flows.setdefault(key, FlowStats())
            st.dispatched += 1
            if phase == PHASE_RESERVATION:
                st.reservation_dispatches += 1
            wait = now - t_arr
            st.total_wait_ns += wait
            st.max_wait_ns = max(st.max_wait_ns, wait)
            st.dispatch_times.append(now)
            per_op[op_id] = (t_arr, now, key)
            last_dispatch = now
        # Advance to the next thing that can change state.
        candidates = []
        if i < n:
            candidates.append(arrivals[i].time)
        if busy:
            candidates.append(busy[0][0])
        if len(queue) and len(busy) < workers:
            t = queue.next_eligible(now)
            if t is not None:
                candidates.append(max(t, now + 1))
        if not candidates:
            break
        # Invariants guarantee every candidate is in the future (arrived
        # ops were admitted, finished slots retired, eligible heads
        # dispatched), so this strictly advances.
        now = min(candidates)
    return ReplayResult(flows, per_op, finished_at=last_dispatch)


def differential(
    config: QosConfig,
    arrivals: list[Arrival],
    workers: int,
    service_ns: int,
) -> tuple[ReplayResult, ReplayResult]:
    """Replay one trace under FIFO and under mClock; returns both."""
    fifo = replay(FifoQueue(), arrivals, workers, service_ns)
    mclock = replay(MClockQueue(config), arrivals, workers, service_ns)
    return fifo, mclock


def wait_diffs(fifo: ReplayResult, mclock: ReplayResult) -> dict[int, int]:
    """Per-op queue-wait change, mClock minus FIFO (ns), by op id."""
    diffs = {}
    for op_id, (t_arr, t_disp, _key) in mclock.per_op.items():
        base = fifo.per_op.get(op_id)
        if base is not None:
            diffs[op_id] = (t_disp - t_arr) - (base[1] - base[0])
    return diffs


def replay_cluster(
    config: QosConfig,
    arrivals: list[tuple[int, tuple[str, str], int]],
    servers: int,
    workers: int,
    service_ns: int,
) -> dict[tuple[str, str], FlowStats]:
    """dmClock replay: ``arrivals`` are (time, flow, server) triples.

    One :class:`MClockQueue` per server; one :class:`TenantTracker` per
    flow stamps rho/delta on each send exactly as the messenger layer
    does, and completions are accounted with their dispatch phase.  This
    is the distributed-tags property surface: per-flow *cluster-wide*
    dispatch totals should respect reservations/limits even though each
    server schedules independently.
    """
    queues = [MClockQueue(config) for _ in range(servers)]
    trackers: dict[tuple[str, str], TenantTracker] = {}
    stats: dict[tuple[str, str], FlowStats] = {}
    busy: list[list[tuple[int, int]]] = [[] for _ in range(servers)]
    seq = 0
    events = sorted(arrivals, key=lambda a: a[0])
    i, n = 0, len(events)
    now = 0

    def pump(s: int, t: int) -> None:
        nonlocal seq
        q = queues[s]
        while busy[s] and busy[s][0][0] <= t:
            heapq.heappop(busy[s])
        while len(busy[s]) < workers:
            popped = q.pop(t)
            if popped is None:
                break
            (flow, t_arr, tag), _key, phase, _lag = popped
            seq += 1
            heapq.heappush(busy[s], (t + service_ns, seq))
            st = stats.setdefault(flow, FlowStats())
            st.dispatched += 1
            if phase == PHASE_RESERVATION:
                st.reservation_dispatches += 1
            st.total_wait_ns += t - t_arr
            st.max_wait_ns = max(st.max_wait_ns, t - t_arr)
            st.dispatch_times.append(t)
            trackers[flow].account(tag, phase)

    while True:
        while i < n and events[i][0] <= now:
            t, flow, server = events[i]
            i += 1
            tracker = trackers.setdefault(flow, TenantTracker())
            tag = QosTag(flow[1], flow[0]) if flow[0] == "client" else QosTag(svc=flow[0])
            op = type("_Op", (), {"qos": tag})()
            tracker.stamp(op, f"osd.{server}")
            queues[server].push((flow, t, tag), flow, t, tag.rho, tag.delta)
        for s in range(servers):
            pump(s, now)
        candidates = []
        if i < n:
            candidates.append(events[i][0])
        for s in range(servers):
            if busy[s]:
                candidates.append(busy[s][0][0])
            if len(queues[s]) and len(busy[s]) < workers:
                t = queues[s].next_eligible(now)
                if t is not None:
                    candidates.append(max(t, now + 1))
        nxt = min((c for c in candidates if c > now), default=None)
        if nxt is None:
            break  # drained: no arrivals, busy slots, or blocked heads left
        now = nxt
    return stats
