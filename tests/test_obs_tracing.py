"""End-to-end causal tracing: neutrality, determinism, tree fidelity.

The load-bearing guarantees:

* observability is *free*: a run with the causal tracer + resource
  sampler produces byte-identical latencies to a plain run;
* the span forest is a faithful account: every completed request has a
  complete tree whose duration equals the measured latency, and the
  critical-path partition of every tree is exact;
* exports are a pure function of the seed (double-run determinism).
"""

import json

import pytest

from repro.deliba import FRAMEWORKS, PoolSpec, build_framework
from repro.obs.context import CausalTracer
from repro.obs.critical_path import analyze, stragglers, verify_exact
from repro.obs.export import export_span_trees, to_perfetto
from repro.obs.sampler import ResourceSampler, install_framework_probes
from repro.units import kib, mib
from repro.workloads import FioJob


def _run(framework, rw, obs, seed=0, nrequests=12, pool_spec=None, cluster_spec=None,
         faults=False, iodepth=2, size=None):
    cfg = FRAMEWORKS[framework]
    object_size = kib(4) if pool_spec and pool_spec.kind == "erasure" else None
    fw = build_framework(
        cfg, pool_spec=pool_spec, cluster_spec=cluster_spec,
        object_size=object_size, seed=seed, obs=obs, metrics=obs,
    )
    if faults:
        from repro.osd import FaultInjector

        FaultInjector(fw.cluster).set_message_faults(
            drop_p=0.02, duplicate_p=0.01, corrupt_p=0.01
        )
    kwargs = {"size": size} if size else {}
    job = FioJob("obs-t", rw, bs=kib(4), iodepth=iodepth, nrequests=nrequests, **kwargs)
    proc = fw.env.process(fw.run_fio(job))
    if obs:
        sampler = ResourceSampler(fw.env, fw.metrics, interval_ns=20_000)
        install_framework_probes(sampler, fw)
        sampler.drive()
        assert sampler.samples_taken > 1
    else:
        fw.env.run()
    assert proc.ok
    return fw, proc.value


# --- neutrality ---------------------------------------------------------------


@pytest.mark.parametrize("framework", sorted(FRAMEWORKS))
@pytest.mark.parametrize("rw", ["randread", "randwrite"])
def test_observability_is_event_stream_neutral(framework, rw):
    """Tracer + sampler on vs fully off: identical latencies, same clock."""
    _, plain = _run(framework, rw, obs=False, seed=3)
    fw, traced = _run(framework, rw, obs=True, seed=3)
    assert traced.latencies_ns == plain.latencies_ns
    assert traced.finished_at == plain.finished_at
    assert isinstance(fw.tracer, CausalTracer)


def test_erasure_pool_neutral_and_exact():
    pool = PoolSpec(kind="erasure")
    _, plain = _run("delibak", "randwrite", obs=False, seed=5, pool_spec=pool)
    fw, traced = _run("delibak", "randwrite", obs=True, seed=5, pool_spec=PoolSpec(kind="erasure"))
    assert traced.latencies_ns == plain.latencies_ns
    roots = fw.tracer.complete_trees()
    assert len(roots) == 12
    for root in roots:
        assert verify_exact(analyze(root)) is None


# --- tree fidelity ------------------------------------------------------------


def test_tree_durations_equal_measured_latencies():
    fw, result = _run("delibak", "randwrite", obs=True, seed=0, nrequests=16, iodepth=4)
    roots = fw.tracer.complete_trees()
    assert fw.tracer.incomplete_trees() == []
    assert len(roots) == 16
    assert sorted(result.latencies_ns) == sorted(r.duration_ns for r in roots)


def test_replicated_write_fanout_has_straggler_legs():
    fw, _ = _run("delibak", "randwrite", obs=True, seed=0, nrequests=16, iodepth=4)
    reports = [r for root in fw.tracer.complete_trees() for r in stragglers(root)]
    assert reports, "replicated writes must fan out to >=2 concurrent legs"
    for report in reports:
        assert all(slack >= 0 for _, slack in report.slack)
        gating_end = report.gating.end_ns
        for sibling, slack in report.slack:
            assert gating_end - sibling.end_ns == slack


def test_chaos_run_grows_retry_legs_and_stays_neutral():
    from repro.bench.chaos import _chaos_cluster_spec

    cfg = FRAMEWORKS["delibak"]
    spec = _chaos_cluster_spec(7, cfg.client_stack)
    pool = PoolSpec(kind="replicated", size=3)
    common = dict(seed=7, nrequests=40, pool_spec=pool, faults=True,
                  iodepth=8, size=mib(32))
    _, plain = _run("delibak", "randrw", obs=False, cluster_spec=spec, **common)
    fw, traced = _run(
        "delibak", "randrw", obs=True,
        cluster_spec=_chaos_cluster_spec(7, cfg.client_stack), **common
    )
    assert traced.latencies_ns == plain.latencies_ns
    roots = fw.tracer.complete_trees()
    assert len(roots) == 40
    for root in roots:
        assert verify_exact(analyze(root)) is None
    # The lossy fabric must have forced at least one retry somewhere:
    # visible as a backoff wait or a leg with attempt > 1.
    retried = [
        s
        for root in roots
        for s in root.walk()
        if s.name == "backoff" or s.meta.get("attempt", 1) > 1
    ]
    assert retried, "no retry legs recorded under message faults"


# --- determinism --------------------------------------------------------------


def test_span_tree_export_deterministic_across_runs(tmp_path):
    fw_a, _ = _run("delibak", "randwrite", obs=True, seed=11)
    fw_b, _ = _run("delibak", "randwrite", obs=True, seed=11)
    a = export_span_trees(fw_a.tracer.roots, tmp_path / "a.json").read_text()
    b = export_span_trees(fw_b.tracer.roots, tmp_path / "b.json").read_text()
    assert a == b
    doc_a = to_perfetto(fw_a.tracer.roots, fw_a.metrics, fw_a.env.now)
    doc_b = to_perfetto(fw_b.tracer.roots, fw_b.metrics, fw_b.env.now)
    assert json.dumps(doc_a, sort_keys=True) == json.dumps(doc_b, sort_keys=True)


def test_flat_stream_unchanged_under_causal_tracer():
    """The causal tracer is a drop-in Tracer: flat exports still work."""
    fw, _ = _run("delibak", "randwrite", obs=True, seed=2)
    flat = build_framework(FRAMEWORKS["delibak"], trace=True, seed=2)
    job = FioJob("obs-t", "randwrite", bs=kib(4), iodepth=2, nrequests=12)
    proc = flat.env.process(flat.run_fio(job))
    flat.env.run()
    assert proc.ok
    assert json.dumps(fw.tracer.to_chrome_trace()) == json.dumps(flat.tracer.to_chrome_trace())
    assert fw.tracer.summary() == flat.tracer.summary()
