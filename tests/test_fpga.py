"""Tests for the FPGA substrate: resources, QDMA, accelerators, DFX, power."""

import pytest

from repro.errors import FpgaError, ReconfigurationError, ResourceOverflowError
from repro.fpga import (
    KERNEL_SPECS,
    PAPER_POWER_NO_PR_W,
    PAPER_POWER_WITH_PR_W,
    Accelerator,
    AlveoU280,
    Bitstream,
    Descriptor,
    DescriptorKind,
    DescriptorRing,
    DfxController,
    MAX_QUEUE_SETS,
    PcieLink,
    PowerModel,
    PowerReport,
    QdmaEngine,
    QueuePurpose,
    ReconfigurableModule,
    RegionLedger,
    ResourceVector,
    U280_SLR0,
    U280_TOTAL,
    build_deliba_k_rms,
    full_load_power,
    hls_variant,
    pr_verify,
    spec_by_name,
)
from repro.sim import Environment
from repro.units import us


# --- resources -----------------------------------------------------------------


def test_resource_vector_arithmetic():
    a = ResourceVector(lut=100, ff=200, bram=3)
    b = ResourceVector(lut=50, ff=50, uram=2)
    assert (a + b).lut == 150
    assert (a - b).ff == 150
    assert b.fits_in(a + b)
    assert not ResourceVector(lut=1000).fits_in(a)


def test_resource_utilization_percentages():
    used = ResourceVector(lut=130_000)
    pct = used.utilization_of(U280_TOTAL)
    assert pct["lut"] == pytest.approx(10.0)


def test_region_ledger_allocate_release():
    ledger = RegionLedger("r", ResourceVector(lut=100, ff=100))
    ledger.allocate("m1", ResourceVector(lut=60))
    with pytest.raises(ResourceOverflowError):
        ledger.allocate("m2", ResourceVector(lut=60))
    with pytest.raises(ResourceOverflowError):
        ledger.allocate("m1", ResourceVector(lut=1))
    ledger.release("m1")
    ledger.allocate("m2", ResourceVector(lut=60))
    with pytest.raises(ResourceOverflowError):
        ledger.release("m1")


def test_table3_static_kernels_fit_u280():
    """The three static kernels + infra must fit the chip with room."""
    device = AlveoU280()
    for name in ("straw", "straw2", "rs_encoder"):
        device.place_static(name, KERNEL_SPECS[name].resources)
    assert device.utilization()["lut"] < 50


def test_table3_percentages_match_paper():
    # Paper: Straw Bucket 6.2% LUTs, RS encoder 22.32% registers.
    straw_pct = KERNEL_SPECS["straw"].resources.utilization_of(U280_TOTAL)
    assert straw_pct["lut"] == pytest.approx(6.2, abs=0.3)
    rs_pct = KERNEL_SPECS["rs_encoder"].resources.utilization_of(U280_TOTAL)
    assert rs_pct["ff"] == pytest.approx(22.32, abs=1.0)
    # RM rows are relative to SLR0.
    rm3 = KERNEL_SPECS["uniform"].resources.utilization_of(U280_SLR0)
    assert rm3["lut"] == pytest.approx(17.59, abs=0.3)


# --- accelerators -------------------------------------------------------------------


def test_spec_lookup_and_validation():
    assert spec_by_name("straw").sloc_verilog == 880
    with pytest.raises(FpgaError):
        spec_by_name("nonexistent")
    with pytest.raises(FpgaError):
        spec_by_name("straw", impl="vhdl")


def test_hls_variant_slower():
    rtl = spec_by_name("straw2")
    hls = hls_variant(rtl)
    assert hls.cycles[1] > rtl.cycles[1]
    assert hls.vivado_latency_ns[0] > rtl.vivado_latency_ns[0]
    assert hls.impl == "hls"


def test_rtl_improvement_factors_match_paper():
    """RTL rework: ~38.61% fewer cycles, ~45.71% lower latency."""
    rtl = spec_by_name("tree")
    hls = hls_variant(rtl)
    assert 1 - rtl.cycles[1] / hls.cycles[1] == pytest.approx(0.3861, abs=0.01)
    assert 1 - rtl.vivado_latency_ns[0] / hls.vivado_latency_ns[0] == pytest.approx(0.4571, abs=0.01)


def test_compute_ns_single_item():
    spec = spec_by_name("straw")
    # 105 cycles at 235 MHz ~ 447 ns.
    assert 430 <= spec.compute_ns(1) <= 460


def test_compute_ns_pipelined_items():
    spec = spec_by_name("straw")
    # Pipelined: 1000 items cost ~ (105 + 999) cycles, far less than 1000x.
    assert spec.compute_ns(1000) < 1000 * spec.compute_ns(1) / 50


def test_accelerator_process_counts():
    env = Environment()
    accel = Accelerator(env, spec_by_name("uniform"))

    def proc(env):
        yield from accel.process(10)

    env.process(proc(env))
    env.run()
    assert accel.invocations == 1
    assert accel.items_processed == 10
    assert env.now > 0


def test_compute_ns_validation():
    with pytest.raises(FpgaError):
        spec_by_name("straw").compute_ns(0)


# --- descriptor rings ------------------------------------------------------------------


def test_descriptor_ring_post_fetch():
    ring = DescriptorRing(entries=8)
    for i in range(3):
        ring.post(Descriptor(DescriptorKind.H2C, 0, 0, 4096))
    assert len(ring) == 3
    fetched = ring.fetch(2)
    assert len(fetched) == 2
    assert len(ring) == 1


def test_descriptor_ring_full():
    ring = DescriptorRing(entries=2)
    ring.post(Descriptor(DescriptorKind.H2C, 0, 0, 1))
    ring.post(Descriptor(DescriptorKind.H2C, 0, 0, 1))
    assert ring.is_full
    with pytest.raises(FpgaError):
        ring.post(Descriptor(DescriptorKind.H2C, 0, 0, 1))


def test_descriptor_ring_wraps():
    ring = DescriptorRing(entries=4)
    for _ in range(20):
        ring.post(Descriptor(DescriptorKind.C2H, 0, 0, 1))
        ring.fetch(1)
    assert ring.is_empty


def test_descriptor_memory_budget():
    # 512-entry ring x 128 B = exactly the 64 kB budget from the paper.
    ring = DescriptorRing()
    assert ring.entries * 128 == 64 * 1024


def test_descriptor_validation():
    with pytest.raises(FpgaError):
        Descriptor(DescriptorKind.H2C, 0, 0, -1)
    with pytest.raises(FpgaError):
        DescriptorRing(entries=3)


# --- qdma ------------------------------------------------------------------------------


def make_qdma():
    env = Environment()
    qdma = QdmaEngine(env, PcieLink(env))
    return env, qdma


def test_qdma_queue_allocation_and_limit():
    env, qdma = make_qdma()
    q = qdma.allocate_queue(QueuePurpose.REPLICATION)
    assert q.qid == 0
    assert qdma.queues_in_use == 1
    qdma._next_qid = MAX_QUEUE_SETS
    qdma._queues = {i: None for i in range(MAX_QUEUE_SETS)}
    with pytest.raises(FpgaError):
        qdma.allocate_queue(QueuePurpose.ERASURE_CODING)


def test_qdma_sriov_function_binding():
    env, qdma = make_qdma()
    qdma.allocate_queue(QueuePurpose.REPLICATION, function=0)
    qdma.allocate_queue(QueuePurpose.REPLICATION, function=1)
    qdma.allocate_queue(QueuePurpose.ERASURE_CODING, function=1)
    assert len(qdma.queues_of_function(1)) == 2
    with pytest.raises(FpgaError):
        qdma.allocate_queue(QueuePurpose.REPLICATION, function=-1)


def test_qdma_h2c_transfer_timing():
    env, qdma = make_qdma()
    q = qdma.allocate_queue(QueuePurpose.REPLICATION)

    def proc(env):
        yield from qdma.h2c_transfer(q, 4096)

    env.process(proc(env))
    env.run()
    # Doorbell + descriptor fetch + DMA: single-digit microseconds.
    assert us(1) < env.now < us(10)
    assert q.descriptors_processed == 1
    assert q.bytes_moved == 4096


def test_qdma_c2h_posts_completion():
    env, qdma = make_qdma()
    q = qdma.allocate_queue(QueuePurpose.ERASURE_CODING)

    def proc(env):
        yield from qdma.c2h_transfer(q, 8192)

    env.process(proc(env))
    env.run()
    assert qdma.completions_posted == 1


def test_qdma_bus_width_scales_bandwidth():
    def transfer_time(bits):
        env = Environment()
        qdma = QdmaEngine(env, PcieLink(env), data_bus_bits=bits)
        q = qdma.allocate_queue(QueuePurpose.REPLICATION)

        def proc(env):
            yield from qdma.h2c_transfer(q, 1 << 20)

        env.process(proc(env))
        env.run()
        return env.now

    assert transfer_time(512) < transfer_time(256)


def test_qdma_validation():
    env = Environment()
    with pytest.raises(FpgaError):
        QdmaEngine(env, PcieLink(env), data_bus_bits=128)
    env, qdma = make_qdma()
    q = qdma.allocate_queue(QueuePurpose.REPLICATION)
    with pytest.raises(FpgaError):
        next(qdma.h2c_transfer(q, 0))
    with pytest.raises(FpgaError):
        qdma.queue(99)


def test_qdma_packet_length_limits():
    QdmaEngine.validate_packet(64)
    QdmaEngine.validate_packet(1518)
    QdmaEngine.validate_packet(9018, jumbo=True)
    with pytest.raises(FpgaError):
        QdmaEngine.validate_packet(63)
    with pytest.raises(FpgaError):
        QdmaEngine.validate_packet(1519)
    with pytest.raises(FpgaError):
        QdmaEngine.validate_packet(9019, jumbo=True)


# --- dfx -------------------------------------------------------------------------------


def make_dfx():
    env = Environment()
    device = AlveoU280()
    rp = build_deliba_k_rms(device)
    return env, device, rp, DfxController(env, device, rp)


def test_dfx_paper_modules_verify_clean():
    env, device, rp, ctrl = make_dfx()
    assert pr_verify(rp) == []
    assert set(rp.modules) == {"rm1_list", "rm2_tree", "rm3_uniform"}


def test_dfx_reconfigure_swaps_active():
    env, device, rp, ctrl = make_dfx()

    def proc(env):
        yield from ctrl.reconfigure("rm1_list")
        yield from ctrl.reconfigure("rm3_uniform")

    env.process(proc(env))
    env.run()
    assert rp.active == "rm3_uniform"
    assert ctrl.reconfigurations == 2
    # SLR0 only ever hosts one RM.
    assert list(device.ledger("slr0").allocations) == ["rm:rm3_uniform"]


def test_dfx_reconfig_time_is_bitstream_bound():
    env, device, rp, ctrl = make_dfx()
    t = ctrl.reconfiguration_ns("rm2_tree")
    # 25 MB over ~400 MB/s MCAP: tens of milliseconds.
    assert 10_000_000 < t < 200_000_000


def test_dfx_reload_same_rm_noop():
    env, device, rp, ctrl = make_dfx()

    def proc(env):
        yield from ctrl.reconfigure("rm1_list")
        before = env.now
        yield from ctrl.reconfigure("rm1_list")
        assert env.now == before

    env.process(proc(env))
    env.run()
    assert ctrl.reconfigurations == 1


def test_dfx_unknown_rm():
    env, device, rp, ctrl = make_dfx()
    with pytest.raises(ReconfigurationError):
        ctrl.reconfiguration_ns("rm9")
    with pytest.raises(ReconfigurationError):
        ctrl.active_accelerator()


def test_dfx_full_bitstream_rejected():
    env, device, rp, ctrl = make_dfx()
    with pytest.raises(ReconfigurationError):
        ReconfigurableModule(
            "bad", spec_by_name("list"), Bitstream("full.bit", partial=False, size_bytes=1)
        )


def test_pr_verify_flags_oversized_rm():
    env, device, rp, ctrl = make_dfx()
    rm = ReconfigurableModule(
        "huge",
        spec_by_name("list"),
        Bitstream("huge.bit", partial=True, size_bytes=1, target_rp="rp0"),
        resources=ResourceVector(lut=10_000_000),
    )
    rp.modules["huge"] = rm  # bypass register check to exercise pr_verify
    problems = pr_verify(rp)
    assert any("exceeds" in p for p in problems)


# --- power ------------------------------------------------------------------------------


def test_power_no_pr_matches_paper():
    model = PowerModel()
    accels = [KERNEL_SPECS[k].resources for k in KERNEL_SPECS]
    watts = full_load_power(model, accels)
    assert watts == pytest.approx(PAPER_POWER_NO_PR_W, abs=8)


def test_power_with_pr_matches_paper():
    model = PowerModel()
    # With DFX only one bucket RM is resident alongside the static kernels.
    resident = [KERNEL_SPECS[k].resources for k in ("straw", "straw2", "rs_encoder", "uniform")]
    watts = full_load_power(model, resident)
    assert watts == pytest.approx(PAPER_POWER_WITH_PR_W, abs=8)


def test_power_pr_saves_power():
    model = PowerModel()
    all_accels = [KERNEL_SPECS[k].resources for k in KERNEL_SPECS]
    one_rm = [KERNEL_SPECS[k].resources for k in ("straw", "straw2", "rs_encoder", "list")]
    assert full_load_power(model, all_accels) > full_load_power(model, one_rm) + 10


def test_power_report_breakdown():
    report = PowerReport(PowerModel())
    report.add_module("straw", KERNEL_SPECS["straw"].resources)
    breakdown = report.breakdown_w()
    assert "board_static" in breakdown and "qdma" in breakdown and "straw" in breakdown
    assert report.total_w() == pytest.approx(sum(breakdown.values()))
    report.remove_module("straw")
    assert "straw" not in report.breakdown_w()


# --- xbutil / xbtest ---------------------------------------------------------


def test_xbutil_examine_reports_utilization():
    from repro.fpga import xbutil_examine

    device = AlveoU280()
    device.place_static("straw", KERNEL_SPECS["straw"].resources)
    info = xbutil_examine(device)
    assert info["device"].startswith("XCU280")
    assert info["resources"]["lut_used"] == KERNEL_SPECS["straw"].resources.lut
    assert 0 < info["utilization_pct"]["lut"] < 100


def test_xbutil_examine_with_power():
    from repro.fpga import PowerModel, PowerReport, xbutil_examine

    report = PowerReport(PowerModel())
    info = xbutil_examine(AlveoU280(), report)
    assert info["power_w"] > 25


def test_card_validation_suite_passes():
    from repro.fpga import CardValidator
    from repro.units import mib

    env = Environment()
    qdma = QdmaEngine(env, PcieLink(env))
    validator = CardValidator(env, AlveoU280(), qdma)

    def proc(env):
        return (yield from validator.run_suite(transfer_bytes=mib(16)))

    p = env.process(proc(env))
    env.run()
    report = p.value
    assert report.passed, report.render()
    names = [o.name for o in report.outcomes]
    assert names == ["dma-h2c", "dma-c2h", "memory-walk", "queue-sets"]
    # DMA bandwidth in the PCIe Gen3 x16 ballpark.
    h2c = report.outcomes[0].metrics["bandwidth_gbps"]
    assert 60 < h2c < 130
    assert "PASS" in report.render()
