"""Critical-path attribution math on hand-built span trees.

Each scenario's numbers are worked out by hand in the comments; the
property test then re-proves the exactness invariant (disjoint, ordered,
covering, sums to the root duration) over randomly generated trees.
"""

import random

from repro.obs.context import CausalTracer
from repro.obs.critical_path import (
    aggregate_attribution,
    analyze,
    stragglers,
    verify_exact,
)
from repro.sim import Environment


def _tracer():
    return CausalTracer(Environment())


def _check_exact(root):
    path = analyze(root)
    assert verify_exact(path) is None
    assert sum(s.duration_ns for s in path.segments) == root.duration_ns
    return path


# --- hand-built scenarios -----------------------------------------------------


def test_straggler_leg_owns_the_window():
    # root "write" [0,100]
    #   fabric [10,90]
    #     osd.1 rpc [10,40]   <- shadowed replica leg
    #     osd.2 rpc [10,90]   <- straggler, gates the fabric stage
    tracer = _tracer()
    root = tracer.start_root("write", start_ns=0)
    fabric = root.record("fabric", "stage", 10, 90)
    osd1 = fabric.record("osd.1", "rpc", 10, 40)
    osd2 = fabric.record("osd.2", "rpc", 10, 90)
    root.finish(end_ns=100)

    path = _check_exact(root)
    # osd.2 owns [10,90]; the root's own time is [0,10] + [90,100].
    by_span = path.by_span()
    assert by_span[osd2.span_id] == 80
    assert osd1.span_id not in by_span  # fully shadowed: zero critical-path time
    assert by_span[root.span_id] == 20
    assert path.by_stage() == {"write": 20, "fabric": 80}
    assert path.by_kind() == {"op": 20, "rpc": 80}

    reports = stragglers(root)
    assert len(reports) == 1
    assert reports[0].parent is fabric
    assert reports[0].gating is osd2
    assert reports[0].slack == [(osd1, 50)]


def test_retry_loop_attributes_each_leg_and_the_backoff():
    # root "read" [0,200]
    #   fabric [0,200]
    #     osd.3 rpc [0,60]     <- attempt 1, timed out
    #     backoff wait [60,80]
    #     osd.3 rpc [80,200]   <- attempt 2, succeeded
    tracer = _tracer()
    root = tracer.start_root("read", start_ns=0)
    fabric = root.record("fabric", "stage", 0, 200)
    fabric.record("osd.3", "rpc", 0, 60, attempt=1)
    fabric.record("backoff", "wait", 60, 80, attempt=2)
    fabric.record("osd.3", "rpc", 80, 200, attempt=2)
    root.finish(end_ns=200)

    path = _check_exact(root)
    # Sequential legs: every leg is on the critical path, nothing shadowed.
    assert path.by_kind() == {"rpc": 180, "wait": 20}
    assert path.by_stage() == {"fabric": 200}
    # Sequential retry legs are attribution, not straggler slack.
    assert stragglers(root) == []


def test_ec_partial_decode_gating_shard():
    # root "read" [0,150]
    #   fabric [0,140]
    #     gather fanout [0,100] with 4 shard legs ending 40/60/80/100
    #     ec-decode compute [100,130]
    tracer = _tracer()
    root = tracer.start_root("read", start_ns=0)
    fabric = root.record("fabric", "stage", 0, 140)
    gather = fabric.record("gather", "fanout", 0, 100)
    legs = [
        gather.record(f"osd.{i}", "rpc", 0, end, shard=i)
        for i, end in enumerate((40, 60, 80, 100))
    ]
    fabric.record("ec-decode", "compute", 100, 130)
    root.finish(end_ns=150)

    path = _check_exact(root)
    by_span = path.by_span()
    assert by_span[legs[-1].span_id] == 100  # the slowest shard gates the gather
    assert all(leg.span_id not in by_span for leg in legs[:-1])
    assert path.by_kind() == {"rpc": 100, "compute": 30, "stage": 10, "op": 10}
    assert path.by_stage() == {"fabric": 140, "read": 10}

    reports = stragglers(root)
    assert len(reports) == 1
    assert reports[0].gating is legs[-1]
    assert sorted(s for _, s in reports[0].slack) == [20, 40, 60]


def test_open_and_zero_duration_children_are_skipped():
    tracer = _tracer()
    root = tracer.start_root("write", start_ns=0)
    fabric = root.record("fabric", "stage", 10, 50)
    fabric.child("dangling", "rpc", start_ns=20)  # never finished
    fabric.record("marker", "stage", 30, 30)  # zero duration
    root.finish(end_ns=60)

    path = _check_exact(root)
    names = {seg.span.name for seg in path.segments}
    assert names == {"write", "fabric"}


def test_leaf_root_is_a_single_segment():
    tracer = _tracer()
    root = tracer.start_root("read", start_ns=5)
    root.finish(end_ns=47)
    path = _check_exact(root)
    assert len(path.segments) == 1
    assert (path.segments[0].start_ns, path.segments[0].end_ns) == (5, 47)


def test_open_root_yields_no_segments():
    tracer = _tracer()
    root = tracer.start_root("read", start_ns=0)
    root.record("fabric", "stage", 0, 10)
    path = analyze(root)
    assert path.segments == []
    assert verify_exact(path) is None


def test_aggregate_attribution_sums_across_requests():
    tracer = _tracer()
    paths = []
    for i in range(3):
        root = tracer.start_root("write", start_ns=i * 1000)
        root.record("fabric", "stage", i * 1000 + 10, i * 1000 + 90)
        root.finish(end_ns=i * 1000 + 100)
        paths.append(_check_exact(root))
    by_stage, by_kind, folded = aggregate_attribution(paths)
    assert by_stage == {"write": 3 * 20, "fabric": 3 * 80}
    assert by_kind == {"op": 60, "stage": 240}
    assert folded == {("write",): 60, ("write", "fabric"): 240}
    assert sum(by_stage.values()) == sum(p.total_ns for p in paths)


# --- property test ------------------------------------------------------------


def _grow(rng, parent, lo, hi, depth):
    """Randomly populate [lo, hi] with overlapping/nested/open children."""
    for _ in range(rng.randint(0, 4)):
        a = rng.randint(lo, hi)
        b = rng.randint(lo, hi)
        start, end = min(a, b), max(a, b)
        kind = rng.choice(["stage", "rpc", "fanout", "queue", "wait", "compute"])
        child = parent.child(f"c{depth}", kind, start_ns=start)
        roll = rng.random()
        if roll < 0.1:
            continue  # leave it open
        child.finish(end_ns=end)
        if end > start and depth < 4 and rng.random() < 0.7:
            _grow(rng, child, start, end, depth + 1)


def test_attribution_is_exact_on_random_trees():
    rng = random.Random(1234)
    for case in range(60):
        tracer = _tracer()
        start = rng.randint(0, 1000)
        end = start + rng.randint(0, 5000)
        root = tracer.start_root("op", start_ns=start)
        _grow(rng, root, start, end, 0)
        root.finish(end_ns=end)
        path = analyze(root)
        problem = verify_exact(path)
        assert problem is None, f"case {case}: {problem}"
        assert sum(s.duration_ns for s in path.segments) == root.duration_ns
        # Groupings are views over the same partition: identical totals.
        total = root.duration_ns
        assert sum(path.by_span().values()) == total
        assert sum(path.by_kind().values()) == total
        assert sum(path.by_stage().values()) == total
        assert sum(path.folded().values()) == total


def test_random_trees_segments_stay_inside_owner_spans():
    rng = random.Random(99)
    for _ in range(20):
        tracer = _tracer()
        root = tracer.start_root("op", start_ns=0)
        _grow(rng, root, 0, 4000, 0)
        root.finish(end_ns=4000)
        for seg in analyze(root).segments:
            assert seg.start_ns >= seg.span.start_ns
            assert seg.end_ns <= seg.span.end_ns
            assert seg.stack[0] == "op"
            assert seg.stack[-1] == seg.span.name


def test_verify_exact_catches_broken_partitions():
    tracer = _tracer()
    root = tracer.start_root("op", start_ns=0)
    root.finish(end_ns=100)
    path = analyze(root)
    assert verify_exact(path) is None
    path.segments[0].end_ns = 90  # hole at the end
    assert verify_exact(path) is not None
