"""Unit tests for the per-OSD WAL commit pipeline (repro.osd.wal)."""

import pytest

from repro.errors import StorageError
from repro.osd import DurabilityConfig, NVME_SSD, StorageDevice, WriteAheadLog
from repro.osd.faults import _scaled_profile
from repro.osd.objects import ObjectStore
from repro.osd.wal import JOURNAL_KEY, TORN_CHECKSUM
from repro.sim import Environment, RngRegistry


class Owner:
    """Stub OSD daemon: just the visible state the WAL manages."""

    def __init__(self):
        self.store = ObjectStore()
        self.versions = {}
        self.entity = "osd.0"


def make(config=None, seed=0, with_rng=True):
    env = Environment()
    rng = RngRegistry(seed)
    device = StorageDevice(env, NVME_SSD, rng=None, name="d0")
    owner = Owner()
    wal = WriteAheadLog(
        env, device, owner, config, rng=rng.stream("wal.0") if with_rng else None
    )
    return env, device, owner, wal


def run(env, gen):
    p = env.process(gen)
    env.run()
    if not p.ok:
        raise p.value
    return p.value


def test_deferred_write_visible_and_durable():
    env, device, owner, wal = make()
    run(env, wal.write("obj", 0, b"a" * 4096, False, version=1))
    assert wal.deferred_writes == 1 and wal.commit_writes == 0
    assert owner.store.read("obj", 0, 4096) == b"a" * 4096
    # The record was flushed before the ack: replay must reach it even
    # if every later volatile entry is lost.
    assert any(r.key == "obj" for r in wal.log) or "obj" in wal.media


def test_commit_write_stages_extent_then_remaps():
    env, device, owner, wal = make(DurabilityConfig(defer_threshold=64))
    run(env, wal.write("obj", 0, b"b" * 4096, True, version=1))
    assert wal.commit_writes == 1 and wal.deferred_writes == 0
    run(env, wal.sync())
    assert wal.media.read("obj", 0, 4096) == b"b" * 4096
    # The staged extent was consumed by the install remap.
    assert not any("~x" in k for k in wal.media.object_names())
    assert wal.durable_versions["obj"] == 1


def test_journal_writes_hit_the_device():
    env, device, owner, wal = make()
    run(env, wal.write("obj", 0, b"c" * 1024, False, version=1))
    assert device.writes >= 2  # journal append + background apply
    assert wal.wal_bytes > 1024  # header + payload
    assert device.flushes >= 1


def test_trim_checkpoints_applied_prefix():
    env, device, owner, wal = make()
    for i in range(4):
        run(env, wal.write(f"o{i}", 0, bytes([i]) * 512, False, version=i + 1))
    run(env, wal.sync())
    assert wal.log_depth == 0
    assert wal.trims == 4
    assert wal.checkpoint_seq == 4


def test_ack_durable_when_every_volatile_entry_drops():
    # No RNG => every un-flushed entry at power loss is dropped: the
    # worst case.  Acked writes must still be fully recoverable.
    env, device, owner, wal = make(with_rng=False)
    run(env, wal.write("small", 0, b"s" * 2048, False, version=1))
    big_cfg_data = b"L" * 4096
    run(env, wal.write("big", 0, big_cfg_data, True, version=2))
    wal.power_loss()
    stats = wal.recover()
    assert owner.store.read("small", 0, 2048) == b"s" * 2048
    assert owner.store.read("big", 0, 4096) == big_cfg_data
    assert owner.versions == {"small": 1, "big": 2}
    assert stats.keys_dropped == 0
    assert wal.replays == 1


def test_unflushed_write_is_never_half_applied():
    # Stop the sim mid-transaction (before the record barrier finishes),
    # cut power with all-drop fates: the write must vanish atomically.
    env, device, owner, wal = make(with_rng=False)
    env.process(wal.write("obj", 0, b"x" * 4096, False, version=1))
    env.run(until=1)  # journal device write still in flight
    wal.halt()
    wal.power_loss()
    wal.recover()
    assert "obj" not in owner.store
    assert "obj" not in owner.versions


def test_torn_apply_is_detected_and_healed_by_its_record():
    # tear_p=1.0: every lost entry tears.  A deferred write's in-place
    # apply tears after its record flushed, so replay heals it.
    cfg = DurabilityConfig(persist_p=0.0, tear_p=1.0)
    healed = torn_seen = 0
    for seed in range(8):
        env, device, owner, wal = make(cfg, seed=seed)
        data = b"t" * 8192  # two atomic units: a tear can land one
        run(env, wal.write("obj", 0, data, False, version=1))
        # The background apply's media entry is still volatile here.
        wal.power_loss()
        stats = wal.recover()
        assert owner.store.read("obj", 0, 8192) == data  # acked => durable
        assert owner.store.verify("obj")
        torn_seen += stats.torn_detected
        healed += 1
    assert healed == 8
    assert torn_seen > 0  # the tear path actually fired across seeds


def test_torn_journal_record_checksum_rejected():
    env, device, owner, wal = make()
    run(env, wal.write("obj", 0, b"z" * 512, False, version=1))
    rec = wal.log[0] if wal.log else None
    if rec is None:
        pytest.skip("record already trimmed")
    rec.checksum = TORN_CHECKSUM
    assert not rec.valid


def test_delete_tombstone_survives_power_loss():
    env, device, owner, wal = make(with_rng=False)
    run(env, wal.write("obj", 0, b"d" * 1024, False, version=1))
    run(env, wal.delete("obj", version=-1))
    wal.power_loss()  # the delete's media-side entry is dropped
    wal.recover()
    assert "obj" not in owner.store
    assert "obj" not in owner.versions


def test_whole_write_shrinks_object():
    env, device, owner, wal = make(with_rng=False)
    run(env, wal.write("obj", 0, b"A" * 8192, False, version=1))
    run(env, wal.write("obj", 0, b"B" * 4096, False, version=2, whole=True))
    wal.power_loss()
    wal.recover()
    assert owner.store.object_size("obj") == 4096
    assert owner.store.read("obj", 0, 4096) == b"B" * 4096


def test_recover_twice_is_idempotent():
    env, device, owner, wal = make(with_rng=False)
    run(env, wal.write("obj", 0, b"i" * 4096, False, version=7))
    wal.power_loss()
    wal.recover()
    first = owner.store.read("obj", 0, 4096)
    stats = wal.recover()  # second restart: empty log, compacted media
    assert owner.store.read("obj", 0, 4096) == first
    assert stats.records_replayed == 0
    assert owner.versions["obj"] == 7


def test_process_crash_persists_surviving_cache():
    # recover() without power_loss(): a process restart with power held.
    # Volatile entries persist instead of resolving under fates.
    env, device, owner, wal = make(with_rng=False)
    run(env, wal.write("obj", 0, b"p" * 2048, False, version=1))
    assert device.volatile_depth > 0  # background apply not yet flushed
    wal.recover()
    assert owner.store.read("obj", 0, 2048) == b"p" * 2048
    assert wal.log_depth == 0


def test_journal_key_never_leaks_into_visible_store():
    env, device, owner, wal = make(with_rng=False)
    run(env, wal.write("obj", 0, b"j" * 512, False, version=1))
    wal.power_loss()
    wal.recover()
    assert JOURNAL_KEY not in owner.store
    assert all("~x" not in name for name in owner.store.object_names())


def test_device_flush_drains_and_counts():
    env, device, owner, wal = make()

    class E:
        def __init__(self):
            self.persisted = False

        def persist(self):
            self.persisted = True

    a, b = E(), E()
    device.cache_write(a)
    device.cache_write(b)
    assert device.volatile_depth == 2
    run(env, device.flush())
    assert a.persisted and b.persisted
    assert device.volatile_depth == 0
    assert device.flushes == 1 and device.flushed_entries == 2


def test_scaled_profile_scales_flush_cost():
    slow = _scaled_profile(NVME_SSD, 4.0)
    assert slow.flush_ns == NVME_SSD.flush_ns * 4
    assert slow.rand_write_ns == NVME_SSD.rand_write_ns * 4


def test_wal_write_requires_version_tracking():
    env, device, owner, wal = make(with_rng=False)
    run(env, wal.write("obj", 0, b"v" * 256, False, version=5))
    run(env, wal.sync())
    assert wal.durable_versions["obj"] == 5


def test_torn_writes_disabled_never_tears():
    cfg = DurabilityConfig(persist_p=0.0, tear_p=1.0, torn_writes=False)
    for seed in range(4):
        env, device, owner, wal = make(cfg, seed=seed)
        run(env, wal.write("obj", 0, b"n" * 8192, False, version=1))
        wal.power_loss()
        stats = wal.recover()
        assert stats.torn_detected == 0
        assert owner.store.read("obj", 0, 8192) == b"n" * 8192


def test_storage_error_on_missing_read():
    env, device, owner, wal = make(with_rng=False)
    with pytest.raises(StorageError):
        owner.store.read("nope", 0, 16)
