"""Tests for the five CRUSH bucket types.

The statistical tests draw many placements and check that selection
frequency tracks weight.  straw2/list/tree are exactly proportional;
original straw has a known bias for >2 distinct weights, so it gets a
looser tolerance (this asymmetry is itself paper-relevant: straw2's
correctness is why Ceph — and DeLiBA-K's accelerator set — added it).
"""

import collections

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crush import (
    BucketAlg,
    ListBucket,
    Straw2Bucket,
    StrawBucket,
    TreeBucket,
    UniformBucket,
    make_bucket,
)
from repro.crush.types import WEIGHT_ONE
from repro.errors import CrushError

ALL_WEIGHTED = [ListBucket, TreeBucket, StrawBucket, Straw2Bucket]


def _frequencies(bucket, n=6000, r=0):
    counts = collections.Counter()
    for x in range(n):
        counts[bucket.choose(x, r)] += 1
    return counts


# --- construction validation --------------------------------------------------


def test_bucket_id_must_be_negative():
    with pytest.raises(CrushError):
        Straw2Bucket(5, [0, 1], [WEIGHT_ONE] * 2)


def test_mismatched_weights_rejected():
    with pytest.raises(CrushError):
        Straw2Bucket(-1, [0, 1], [WEIGHT_ONE])


def test_duplicate_items_rejected():
    with pytest.raises(CrushError):
        ListBucket(-1, [3, 3], [WEIGHT_ONE] * 2)


def test_negative_weight_rejected():
    with pytest.raises(CrushError):
        TreeBucket(-1, [0, 1], [WEIGHT_ONE, -5])


def test_uniform_rejects_unequal_weights_via_factory():
    with pytest.raises(CrushError):
        make_bucket(BucketAlg.UNIFORM, -1, [0, 1], [WEIGHT_ONE, 2 * WEIGHT_ONE])


def test_uniform_add_item_wrong_weight():
    b = UniformBucket(-1, [0, 1], WEIGHT_ONE)
    with pytest.raises(CrushError):
        b.add_item(2, 2 * WEIGHT_ONE)


def test_empty_bucket_choose_raises():
    for cls in ALL_WEIGHTED:
        b = cls(-1, [], [])
        with pytest.raises(CrushError):
            b.choose(1, 0)


# --- determinism ---------------------------------------------------------------


@pytest.mark.parametrize("cls", ALL_WEIGHTED)
def test_choose_deterministic(cls):
    b = cls(-2, list(range(8)), [WEIGHT_ONE] * 8)
    picks1 = [b.choose(x, 0) for x in range(100)]
    picks2 = [b.choose(x, 0) for x in range(100)]
    assert picks1 == picks2


@pytest.mark.parametrize("cls", ALL_WEIGHTED)
def test_replica_rank_changes_choice_sometimes(cls):
    b = cls(-2, list(range(8)), [WEIGHT_ONE] * 8)
    diffs = sum(1 for x in range(200) if b.choose(x, 0) != b.choose(x, 1))
    assert diffs > 100  # ranks must decorrelate


def test_uniform_choose_deterministic():
    b = UniformBucket(-3, list(range(10)), WEIGHT_ONE)
    assert [b.choose(x, 1) for x in range(50)] == [b.choose(x, 1) for x in range(50)]


# --- uniformity with equal weights ------------------------------------------------


@pytest.mark.parametrize(
    "cls", [UniformBucket, ListBucket, TreeBucket, StrawBucket, Straw2Bucket]
)
def test_equal_weights_uniform_selection(cls):
    items = list(range(8))
    if cls is UniformBucket:
        b = cls(-4, items, WEIGHT_ONE)
    else:
        b = cls(-4, items, [WEIGHT_ONE] * 8)
    counts = _frequencies(b, n=8000)
    expected = 8000 / 8
    for item in items:
        assert abs(counts[item] - expected) / expected < 0.12, (item, counts)


# --- weight proportionality -----------------------------------------------------


@pytest.mark.parametrize("cls,tol", [(ListBucket, 0.12), (TreeBucket, 0.12), (Straw2Bucket, 0.10)])
def test_weighted_selection_proportional(cls, tol):
    weights_f = [1.0, 2.0, 3.0, 4.0]
    weights = [int(w * WEIGHT_ONE) for w in weights_f]
    b = cls(-5, [0, 1, 2, 3], weights)
    n = 20_000
    counts = _frequencies(b, n=n)
    total_w = sum(weights_f)
    for item, w in enumerate(weights_f):
        expected = n * w / total_w
        assert abs(counts[item] - expected) / expected < tol, (item, counts)


def test_straw_two_weight_classes_proportional():
    # straw is exact for two distinct weights.
    weights = [WEIGHT_ONE, WEIGHT_ONE, 3 * WEIGHT_ONE]
    b = StrawBucket(-6, [0, 1, 2], weights)
    n = 20_000
    counts = _frequencies(b, n=n)
    assert abs(counts[2] - n * 0.6) / (n * 0.6) < 0.1
    assert abs(counts[0] - n * 0.2) / (n * 0.2) < 0.15


def test_straw_many_classes_roughly_proportional():
    weights = [int(w * WEIGHT_ONE) for w in (1.0, 2.0, 3.0, 4.0)]
    b = StrawBucket(-6, [0, 1, 2, 3], weights)
    n = 20_000
    counts = _frequencies(b, n=n)
    # Known bias: allow 25% relative error but ordering must hold.
    assert counts[0] < counts[1] < counts[2] < counts[3]
    for item, w in enumerate((1.0, 2.0, 3.0, 4.0)):
        expected = n * w / 10.0
        assert abs(counts[item] - expected) / expected < 0.25


def test_zero_weight_item_never_chosen():
    for cls in (ListBucket, TreeBucket, StrawBucket, Straw2Bucket):
        b = cls(-7, [0, 1, 2], [WEIGHT_ONE, 0, WEIGHT_ONE])
        counts = _frequencies(b, n=2000)
        assert counts[1] == 0, cls.__name__


# --- straw2 stability property ---------------------------------------------------


def test_straw2_weight_change_only_moves_to_changed_item():
    """The defining straw2 property: doubling one item's weight never
    moves data between two *unchanged* items."""
    items = list(range(6))
    before = Straw2Bucket(-8, items, [WEIGHT_ONE] * 6)
    after = Straw2Bucket(-8, items, [WEIGHT_ONE * 2 if i == 3 else WEIGHT_ONE for i in items])
    for x in range(4000):
        a = before.choose(x, 0)
        b = after.choose(x, 0)
        if a != b:
            assert b == 3, f"x={x} moved {a}->{b}, not to the reweighted item"


def test_straw2_remove_item_moves_only_from_removed():
    items = list(range(6))
    full = Straw2Bucket(-9, items, [WEIGHT_ONE] * 6)
    reduced = Straw2Bucket(-9, items[:5], [WEIGHT_ONE] * 5)
    for x in range(4000):
        a = full.choose(x, 0)
        b = reduced.choose(x, 0)
        if a != 5:
            assert a == b, f"x={x}: item {a} remapped to {b} though 5 was removed"


def test_list_bucket_expansion_moves_only_to_new_item():
    """List buckets are optimized for expansion: adding an item at the
    head only moves the new item's fair share."""
    old = ListBucket(-10, [0, 1, 2], [WEIGHT_ONE] * 3)
    new = ListBucket(-10, [0, 1, 2, 3], [WEIGHT_ONE] * 4)
    moved_elsewhere = 0
    moved_to_new = 0
    for x in range(4000):
        a = old.choose(x, 0)
        b = new.choose(x, 0)
        if a != b:
            if b == 3:
                moved_to_new += 1
            else:
                moved_elsewhere += 1
    assert moved_elsewhere == 0
    assert abs(moved_to_new - 1000) < 150  # ~1/4 of 4000


# --- mutation / derived state ------------------------------------------------------


@pytest.mark.parametrize("cls", ALL_WEIGHTED)
def test_add_remove_item_updates_weight(cls):
    b = cls(-11, [0, 1], [WEIGHT_ONE] * 2)
    b.add_item(2, WEIGHT_ONE)
    assert b.size == 3
    assert b.weight == 3 * WEIGHT_ONE
    gone = b.remove_item(0)
    assert gone == WEIGHT_ONE
    assert b.size == 2


def test_adjust_item_weight_returns_delta():
    b = Straw2Bucket(-12, [0, 1], [WEIGHT_ONE] * 2)
    delta = b.adjust_item_weight(1, 3 * WEIGHT_ONE)
    assert delta == 2 * WEIGHT_ONE
    assert b.item_weight(1) == 3 * WEIGHT_ONE


def test_add_duplicate_item_rejected():
    b = Straw2Bucket(-13, [0], [WEIGHT_ONE])
    with pytest.raises(CrushError):
        b.add_item(0, WEIGHT_ONE)


def test_tree_bucket_single_item():
    b = TreeBucket(-14, [9], [WEIGHT_ONE])
    assert b.choose(123, 0) == 9


@given(st.integers(min_value=1, max_value=33))
@settings(max_examples=20, deadline=None)
def test_tree_bucket_all_sizes_choose_valid_items(n):
    b = TreeBucket(-15, list(range(n)), [WEIGHT_ONE] * n)
    for x in range(50):
        assert b.choose(x, 0) in range(n)


@given(
    st.lists(st.integers(min_value=1, max_value=8), min_size=2, max_size=10),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=50, deadline=None)
def test_all_buckets_choose_member(weights_units, x):
    items = list(range(len(weights_units)))
    weights = [w * WEIGHT_ONE for w in weights_units]
    for cls in ALL_WEIGHTED:
        b = cls(-16, items, weights)
        assert b.choose(x, 0) in items


def test_last_ops_tracks_algorithmic_cost():
    items = list(range(16))
    weights = [WEIGHT_ONE] * 16
    uni = UniformBucket(-17, items, WEIGHT_ONE)
    tree = TreeBucket(-18, items, weights)
    straw = StrawBucket(-19, items, weights)
    uni.choose(1, 0)
    tree.choose(1, 0)
    straw.choose(1, 0)
    assert uni.last_ops == 1
    assert tree.last_ops <= 5  # log2(16) + 1
    assert straw.last_ops == 16
