"""Differential tests: batched EC encode/decode vs the per-stripe paths.

``encode_batch``/``decode_batch`` exist purely for speed (one GF matmul
per shard-size / erasure-pattern class instead of one per object), so
their contract is byte-identity with ``encode``/``decode`` — including
degraded decode-from-survivors.  Hypothesis drives random profiles,
object counts, lengths, and erasure patterns through both paths.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import ReedSolomon
from repro.errors import DecodeError, ErasureCodingError


@st.composite
def batch_cases(draw):
    k = draw(st.integers(min_value=2, max_value=6))
    m = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    nobjects = draw(st.integers(min_value=1, max_value=8))
    lengths = draw(
        st.lists(
            st.integers(min_value=1, max_value=300),
            min_size=nobjects,
            max_size=nobjects,
        )
    )
    return k, m, seed, lengths


def _payloads(seed, lengths):
    rng = random.Random(seed)
    return [rng.randbytes(n) for n in lengths]


@given(batch_cases())
@settings(max_examples=40, deadline=None)
def test_encode_batch_matches_per_stripe_encode(case):
    k, m, seed, lengths = case
    objects = _payloads(seed, lengths)
    batched = ReedSolomon(k, m).encode_batch(objects)
    loop_codec = ReedSolomon(k, m)
    for data, got in zip(objects, batched):
        assert got == loop_codec.encode(data)


@given(batch_cases())
@settings(max_examples=40, deadline=None)
def test_decode_batch_matches_per_stripe_decode(case):
    """Random erasures (up to m shards each, mixing data and parity
    losses) decode to the same bytes via both paths."""
    k, m, seed, lengths = case
    rng = random.Random(seed ^ 0xEC)
    objects = _payloads(seed, lengths)
    codec = ReedSolomon(k, m)
    shard_sets = []
    for data in objects:
        shards = list(codec.encode(data))
        for lost in rng.sample(range(k + m), rng.randint(0, m)):
            shards[lost] = None
        shard_sets.append(shards)
    batched = codec.decode_batch(shard_sets, lengths)
    loop_codec = ReedSolomon(k, m)
    for shards, n, got, data in zip(shard_sets, lengths, batched, objects):
        assert got == loop_codec.decode(shards, n)
        assert got == data  # and both reproduce the original object


def test_decode_batch_mixed_patterns_share_group_math():
    """Objects with identical erasure patterns are decoded through one
    shared inverse; interleave several patterns to cross the grouping."""
    codec = ReedSolomon(4, 2)
    objects = [bytes([i]) * (40 + i) for i in range(9)]
    lengths = [len(o) for o in objects]
    shard_sets = []
    for i, data in enumerate(objects):
        shards = list(codec.encode(data))
        if i % 3 == 1:
            shards[0] = None  # lose a data shard
        elif i % 3 == 2:
            shards[1] = None
            shards[5] = None  # lose data + parity
        shard_sets.append(shards)
    assert codec.decode_batch(shard_sets, lengths) == objects


def test_decode_batch_too_few_survivors_raises():
    codec = ReedSolomon(3, 2)
    shards = list(codec.encode(b"x" * 30))
    shards[0] = shards[1] = shards[2] = None  # only 2 of 5 survive
    with pytest.raises(DecodeError):
        codec.decode_batch([shards], [30])


def test_decode_batch_rejects_wrong_slot_count():
    codec = ReedSolomon(3, 2)
    with pytest.raises(ErasureCodingError):
        codec.decode_batch([[b"a", b"b", b"c"]], [3])


def test_decode_batch_rejects_mismatched_lengths():
    codec = ReedSolomon(3, 2)
    shards = codec.encode(b"abcdef")
    with pytest.raises(ErasureCodingError):
        codec.decode_batch([shards], [6, 7])


def test_encode_batch_empty_and_varied_sizes():
    codec = ReedSolomon(2, 1)
    objects = [b"", b"a", b"ab", b"abc", b"a" * 1000]
    batched = codec.encode_batch(objects)
    loop_codec = ReedSolomon(2, 1)
    assert batched == [loop_codec.encode(o) for o in objects]


def test_batch_paths_account_bytes_processed():
    """The profiling counter moves for batch calls too (the cost model
    reads it), matching the per-stripe accounting."""
    batch_codec = ReedSolomon(3, 2)
    loop_codec = ReedSolomon(3, 2)
    objects = [b"y" * 90, b"z" * 90]
    batch_codec.encode_batch(objects)
    for o in objects:
        loop_codec.encode(o)
    assert batch_codec.bytes_processed == loop_codec.bytes_processed
