"""Integration tests for the framework assembly layer."""

import pytest

from repro.deliba import (
    DELIBA1,
    DELIBA2,
    DELIBAK,
    DELIBAK_SW,
    FRAMEWORKS,
    FrameworkConfig,
    PoolSpec,
    SOFTWARE_CEPH,
    build_framework,
    framework_by_name,
    run_job_on,
)
from repro.errors import BenchmarkError
from repro.net.stack import KERNEL_TCP
from repro.osd import PoolType
from repro.units import kib
from repro.workloads import FioJob


def small_job(rw="randread", bs=kib(4), iodepth=2, n=20):
    return FioJob("t", rw, bs=bs, iodepth=iodepth, nrequests=n, size=kib(256))


# --- config validation ------------------------------------------------------


def test_framework_registry():
    assert framework_by_name("delibak") is DELIBAK
    with pytest.raises(BenchmarkError):
        framework_by_name("deliba99")
    assert set(FRAMEWORKS) == {
        "software-ceph", "deliba1", "deliba2", "deliba2-sw", "delibak-sw", "delibak",
    }


def test_config_validation():
    with pytest.raises(BenchmarkError):
        FrameworkConfig("x", "X", api="quic", driver="uifd", hardware=False,
                        client_stack=KERNEL_TCP, accel_impl=None)
    with pytest.raises(BenchmarkError):
        FrameworkConfig("x", "X", api="sync", driver="pci", hardware=False,
                        client_stack=KERNEL_TCP, accel_impl=None)
    with pytest.raises(BenchmarkError):
        FrameworkConfig("x", "X", api="sync", driver="uifd", hardware=True,
                        client_stack=KERNEL_TCP, accel_impl=None)


def test_generation_structure():
    assert DELIBA1.nbd_crossings == 6 and DELIBA1.passive_offload
    assert DELIBA2.nbd_crossings == 5 and not DELIBA2.passive_offload
    assert DELIBAK.blk.scheduler == "none"  # DMQ bypass
    assert SOFTWARE_CEPH.blk.scheduler == "mq-deadline"
    assert DELIBAK.client_stack.name == "rtl-fpga-tcp"
    assert DELIBA2.client_stack.name == "hls-fpga-tcp"


# --- assembly ----------------------------------------------------------------


def test_build_framework_hardware_components():
    fw = build_framework(DELIBAK)
    assert fw.qdma is not None
    assert fw.fpga is not None
    assert "crush" in fw.accelerators
    assert fw.accelerators["crush"].spec.impl == "rtl"
    assert fw.engine.name == "io_uring"


def test_build_framework_software_has_no_fpga():
    fw = build_framework(DELIBAK_SW)
    assert fw.qdma is None
    assert fw.fpga is None


def test_hls_accelerators_for_d2():
    fw = build_framework(DELIBA2)
    assert fw.accelerators["crush"].spec.impl == "hls"


def test_pool_spec_erasure():
    fw = build_framework(DELIBAK, pool_spec=PoolSpec(kind="erasure", k=3, m=2), object_size=kib(4))
    assert fw.pool.pool_type == PoolType.ERASURE
    assert fw.pool.k == 3


def test_unknown_pool_kind():
    with pytest.raises(BenchmarkError):
        build_framework(DELIBAK, pool_spec=PoolSpec(kind="raid5"))


# --- end-to-end jobs ---------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(FRAMEWORKS))
def test_every_framework_runs_replicated_io(name):
    result = run_job_on(FRAMEWORKS[name], small_job())
    assert result.ios == 20
    assert result.mean_latency_us() > 10


@pytest.mark.parametrize("name", ["deliba2", "delibak", "delibak-sw"])
def test_every_framework_runs_ec_io(name):
    result = run_job_on(
        FRAMEWORKS[name], small_job(rw="randwrite"), pool_spec=PoolSpec(kind="erasure")
    )
    assert result.ios == 20


def test_data_integrity_through_full_stack():
    """Bytes written through the whole stack land intact on the OSDs."""
    fw = build_framework(DELIBAK)
    job = FioJob("w", "write", bs=kib(4), nrequests=8, size=kib(32))
    proc = fw.env.process(fw.run_fio(job))
    fw.env.run()
    assert proc.ok
    # Every replica of the touched object holds the fio fill byte.
    name = fw.image.object_name(0)
    holders = [d for d in fw.cluster.daemons.values() if name in d.store]
    assert len(holders) == fw.pool.size
    for daemon in holders:
        assert daemon.store.read(name, 0, 4) == b"\x5A" * 4


def test_deterministic_runs_same_seed():
    a = run_job_on(DELIBAK, small_job(), seed=3)
    b = run_job_on(DELIBAK, small_job(), seed=3)
    assert a.latencies_ns == b.latencies_ns


def test_different_seed_changes_jitter():
    a = run_job_on(DELIBAK, small_job(), seed=3)
    b = run_job_on(DELIBAK, small_job(), seed=4)
    assert a.latencies_ns != b.latencies_ns


# --- paper-shape properties ------------------------------------------------------------


def test_latency_ordering_dk_d2_d1():
    lat = {
        name: run_job_on(FRAMEWORKS[name], small_job(iodepth=1)).mean_latency_us()
        for name in ("deliba1", "deliba2", "delibak")
    }
    assert lat["delibak"] < lat["deliba2"] < lat["deliba1"]


def test_dk_software_beats_d2_software():
    dk = run_job_on(FRAMEWORKS["delibak-sw"], small_job(iodepth=1)).mean_latency_us()
    d2 = run_job_on(FRAMEWORKS["deliba2-sw"], small_job(iodepth=1)).mean_latency_us()
    assert dk < d2


def test_dk_scales_with_depth_d2_does_not():
    """The multi-tenancy argument: D-K's KIOPS grow with iodepth, the
    NBD daemon serializes D2."""
    def kiops(name, depth):
        return run_job_on(
            FRAMEWORKS[name], small_job(rw="randwrite", iodepth=depth, n=60)
        ).kiops()

    dk_gain = kiops("delibak", 8) / kiops("delibak", 1)
    d2_gain = kiops("deliba2", 8) / kiops("deliba2", 1)
    assert dk_gain > 1.5
    assert d2_gain < dk_gain


def test_uring_syscall_elimination_in_dk():
    fw = build_framework(DELIBAK)
    job = small_job(rw="randwrite")
    proc = fw.env.process(fw.run_fio(job))
    fw.env.run()
    assert proc.ok
    # SQPOLL mode: the host never syscalls on the submission path.
    assert fw.engine.total_syscalls_saved() > 0


def test_numjobs_multiplies_work_and_runs_concurrently():
    fw = build_framework(DELIBAK)
    job = FioJob("nj", "randwrite", bs=kib(4), iodepth=2, nrequests=30, numjobs=3)
    proc = fw.env.process(fw.run_fio(job))
    fw.env.run()
    merged = proc.value
    assert merged.ios == 90  # 3 jobs x 30 requests
    # Concurrent, not serial: wall time well under 3x a single job.
    single = run_job_on(DELIBAK, FioJob("nj1", "randwrite", bs=kib(4), iodepth=2, nrequests=30))
    assert merged.elapsed_ns < single.elapsed_ns * 2.2


def test_numjobs_validation():
    import pytest as _pytest
    from repro.errors import WorkloadError

    with _pytest.raises(WorkloadError):
        FioJob("bad", "read", numjobs=0)
