"""Tests for the media model and the object store."""

import pytest

from repro.errors import StorageError
from repro.osd import HDD, NVME_SSD, ObjectStore, StorageDevice
from repro.sim import Environment, RngRegistry
from repro.units import kib, us


def run_io(device, ios):
    """ios: list of (kind, obj, offset, length[, seq]); returns per-op times."""
    env = device.env
    times = []

    def proc(env):
        for io in ios:
            start = env.now
            if io[0] == "r":
                yield from device.read(io[1], io[2], io[3])
            else:
                yield from device.write(io[1], io[2], io[3], io[4])
            times.append(env.now - start)

    env.process(proc(env))
    env.run()
    return times


def make_device(profile=NVME_SSD):
    env = Environment()
    return StorageDevice(env, profile, name="d0")


# --- device model ------------------------------------------------------------


def test_random_read_latency_matches_profile():
    dev = make_device()
    (t,) = run_io(dev, [("r", "o", 0, 4096)])
    # rand read 22us + ~1.4us transfer
    assert us(20) < t < us(28)


def test_sequential_reads_hit_readahead():
    dev = make_device()
    ios = [("r", "o", i * 4096, 4096) for i in range(8)]
    times = run_io(dev, ios)
    assert times[0] > us(20)  # first miss
    assert all(t < us(8) for t in times[1:]), times


def test_readahead_window_refill():
    dev = make_device()
    dev.readahead_window = 16 * 4096
    ios = [("r", "o", i * 4096, 4096) for i in range(40)]
    times = run_io(dev, ios)
    refills = sum(1 for t in times[1:] if t > us(10))
    assert 1 <= refills <= 3  # one media fetch per window


def test_non_contiguous_read_breaks_stream():
    dev = make_device()
    times = run_io(dev, [("r", "o", 0, 4096), ("r", "o", kib(512), 4096)])
    assert times[1] > us(20)


def test_write_latency_seq_vs_rand():
    dev = make_device()
    t_seq, t_rand = run_io(
        dev, [("w", "o", 0, 4096, True), ("w", "o", kib(64), 4096, False)]
    )
    assert t_seq < t_rand


def test_hdd_random_read_is_milliseconds():
    dev = make_device(HDD)
    (t,) = run_io(dev, [("r", "o", 0, 4096)])
    assert t > 3_000_000  # > 3 ms


def test_device_jitter_deterministic_by_seed():
    def total(seed):
        env = Environment()
        dev = StorageDevice(env, NVME_SSD, rng=RngRegistry(seed).stream("d"), name="d")
        return sum(run_io(dev, [("r", "o", kib(64) * i, 4096) for i in range(5)]))

    assert total(1) == total(1)
    assert total(1) != total(2)


def test_device_counters():
    dev = make_device()
    run_io(dev, [("r", "o", 0, 4096), ("w", "o", 0, 8192, True)])
    assert dev.reads == 1 and dev.writes == 1
    assert dev.bytes_read == 4096 and dev.bytes_written == 8192


def test_device_invalid_lengths():
    dev = make_device()
    with pytest.raises(StorageError):
        next(dev.read("o", 0, 0))
    with pytest.raises(StorageError):
        next(dev.write("o", 0, -1, True))


def test_device_channel_contention():
    env = Environment()
    dev = StorageDevice(env, NVME_SSD, name="d")
    done = []

    def reader(env, i):
        yield from dev.read(f"obj{i}", 0, 4096)
        done.append(env.now)

    for i in range(16):  # 2x the 8 channels
        env.process(reader(env, i))
    env.run()
    assert max(done) > min(done)  # second wave queued behind the first


# --- object store ---------------------------------------------------------------


def test_object_store_roundtrip():
    store = ObjectStore()
    store.write("a", 0, b"hello")
    assert store.read("a", 0, 5) == b"hello"


def test_object_store_sparse_holes():
    store = ObjectStore()
    store.write("a", 100, b"xy")
    assert store.read("a", 0, 4) == b"\x00" * 4
    assert store.read("a", 100, 2) == b"xy"


def test_object_store_read_past_eof_zero_fills():
    store = ObjectStore()
    store.write("a", 0, b"abc")
    assert store.read("a", 0, 6) == b"abc\x00\x00\x00"


def test_object_store_overwrite():
    store = ObjectStore()
    store.write("a", 0, b"aaaa")
    store.write("a", 1, b"bb")
    assert store.read("a", 0, 4) == b"abba"


def test_object_store_missing_object():
    store = ObjectStore()
    with pytest.raises(StorageError):
        store.read("nope", 0, 1)
    with pytest.raises(StorageError):
        store.delete("nope")


def test_object_store_capacity():
    store = ObjectStore(capacity_bytes=10)
    store.write("a", 0, b"12345")
    with pytest.raises(StorageError):
        store.write("b", 0, b"123456789")
    store.write("b", 0, b"12345")  # exactly fits


def test_object_store_accounting():
    store = ObjectStore()
    store.write("a", 0, b"12345")
    store.write("b", 0, b"123")
    assert store.used_bytes == 8
    assert len(store) == 2
    assert store.object_names() == ["a", "b"]
    assert store.object_size("a") == 5
    store.delete("a")
    assert store.used_bytes == 3


def test_object_store_validation():
    store = ObjectStore()
    with pytest.raises(StorageError):
        store.write("a", -1, b"x")
    store.write("a", 0, b"x")
    with pytest.raises(StorageError):
        store.read("a", -1, 1)


def test_object_store_checksums_track_writes():
    store = ObjectStore()
    store.write("a", 0, b"hello")
    assert store.verify("a")
    store.write("a", 5, b" world")
    assert store.verify("a")
    first = store.stored_checksum("a")
    store.write("a", 0, b"H")
    assert store.stored_checksum("a") != first


def test_object_store_corrupt_breaks_verify():
    store = ObjectStore()
    store.write("a", 0, b"clean-data")
    store.corrupt("a", 0, b"DIRT")
    assert not store.verify("a")
    # Re-writing legitimately heals the checksum.
    store.write("a", 0, b"clean-data")
    assert store.verify("a")


def test_object_store_checksum_validation():
    store = ObjectStore()
    with pytest.raises(StorageError):
        store.stored_checksum("missing")
    with pytest.raises(StorageError):
        store.verify("missing")
    with pytest.raises(StorageError):
        store.corrupt("missing", 0, b"x")


def test_object_store_delete_clears_checksum():
    store = ObjectStore()
    store.write("a", 0, b"x")
    store.delete("a")
    with pytest.raises(StorageError):
        store.stored_checksum("a")
