"""Regression tests for two datapath bugs fixed alongside the cache tier.

1. ``RadosClient.compute_placement`` returned the *same list object* it
   memoized in the epoch-keyed placement cache, so a caller mutating its
   "own" result corrupted every later lookup of that object within the
   epoch (e.g. a failover path popping a dead primary would make the
   cache forget the replica forever).
2. ``Request.sequential`` reported only the head bio's hint, so a
   request built by merging LBA-contiguous random bios — sequential at
   the device by construction — was presented to the drivers and the
   cache's sequential cutoff as random.
"""

from repro.blk import SECTOR, Bio, IoOp, Request
from repro.osd import ClusterSpec, build_cluster
from repro.sim import Environment
from repro.units import kib


def _cluster():
    env = Environment()
    return env, build_cluster(env, ClusterSpec(num_server_hosts=2, osds_per_host=4))


# -- compute_placement aliasing ------------------------------------------------------


def test_placement_result_is_immutable_tuple():
    _env, cluster = _cluster()
    pool = cluster.create_replicated_pool("p", pg_num=32, size=2)
    client = cluster.new_client()
    acting = client.compute_placement(pool, "obj0")
    assert isinstance(acting, tuple)
    assert len(acting) == pool.size


def test_placement_cache_survives_caller_mutation_attempts():
    _env, cluster = _cluster()
    pool = cluster.create_replicated_pool("p", pg_num=32, size=2)
    client = cluster.new_client()
    first = client.compute_placement(pool, "obj0")
    # The old list return let this silently poison the cache; a tuple
    # refuses, and the cached entry stays intact either way.
    mutated = list(first)
    mutated.reverse()
    mutated.pop()
    second = client.compute_placement(pool, "obj0")
    assert second == first
    assert not client.last_was_miss  # served from the epoch cache


def test_placement_cache_hit_returns_equal_set_across_calls():
    _env, cluster = _cluster()
    pool = cluster.create_replicated_pool("p", pg_num=32, size=3)
    client = cluster.new_client()
    results = [client.compute_placement(pool, f"o{i % 4}") for i in range(16)]
    by_name: dict[int, tuple] = {}
    for i, acting in enumerate(results):
        assert by_name.setdefault(i % 4, acting) == acting


# -- Request.sequential --------------------------------------------------------------


def _bio(sector: int, *, seq: bool = False, op: IoOp = IoOp.READ) -> Bio:
    return Bio(op, sector=sector, size=kib(4), sequential=seq)


def test_merged_contiguous_random_bios_report_sequential():
    bs_sectors = kib(4) // SECTOR
    req = Request([_bio(80)])  # random hint
    req.merge(_bio(80 + bs_sectors))
    req.merge(_bio(80 + 2 * bs_sectors))
    # Three back-to-back LBAs are one sequential run at the device,
    # whatever each bio's own hint said.
    assert req.sequential


def test_single_random_bio_stays_random():
    assert not Request([_bio(80)]).sequential


def test_hinted_head_bio_stays_sequential():
    req = Request([_bio(0, seq=True)])
    assert req.sequential
    req.merge(_bio(kib(4) // SECTOR, seq=True))
    assert req.sequential
