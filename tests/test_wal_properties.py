"""Property tests (hypothesis) for WAL replay: idempotence and torn-write
safety.

Two properties from the issue:

* **replay is idempotent** — replaying the same durable state twice
  yields byte-identical stores (a prefix of the log applied twice ==
  applied once);
* **a torn write is always detected by the checksum pass and never
  served to a reader** — either its covering record heals it or the key
  is dropped entirely; reads never observe the torn hybrid.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.osd import DurabilityConfig, NVME_SSD, StorageDevice, WriteAheadLog
from repro.osd.objects import ObjectStore
from repro.osd.wal import WalReplayStats
from repro.sim import Environment, RngRegistry


class Owner:
    def __init__(self):
        self.store = ObjectStore()
        self.versions = {}
        self.entity = "osd.0"


def _run(env, gen):
    p = env.process(gen)
    env.run()
    if not p.ok:
        raise p.value


def _store_image(store: ObjectStore) -> dict:
    return {
        name: store.read(name, 0, store.object_size(name))
        for name in store.object_names()
    }


#: One randomized write: (object index, size, fill byte, whole-object?).
WRITES = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=1, max_value=12288),
        st.integers(min_value=0, max_value=255),
        st.booleans(),
    ),
    min_size=1,
    max_size=8,
)


def _build_wal(seed: int, cfg: DurabilityConfig):
    env = Environment()
    device = StorageDevice(env, NVME_SSD, rng=None, name="d0")
    owner = Owner()
    wal = WriteAheadLog(
        env, device, owner, cfg, rng=RngRegistry(seed).stream("wal.0")
    )
    return env, device, owner, wal


@settings(max_examples=25, deadline=None)
@given(writes=WRITES, seed=st.integers(min_value=0, max_value=2**16))
def test_replay_is_idempotent(writes, seed):
    """_replay is a pure function of durable state: running it twice
    (prefix applied twice) equals running it once."""
    cfg = DurabilityConfig(defer_threshold=4096, persist_p=0.34, tear_p=0.33)
    env, device, owner, wal = _build_wal(seed, cfg)
    for i, (obj, size, fill, whole) in enumerate(writes):
        _run(env, wal.write(f"o{obj}", 0, bytes([fill]) * size, False,
                            version=i + 1, whole=whole))
    wal.power_loss()  # leaves arbitrary (seeded) durable state behind
    first_store, first_versions = wal._replay(WalReplayStats())
    second_store, second_versions = wal._replay(WalReplayStats())
    assert _store_image(first_store) == _store_image(second_store)
    assert first_versions == second_versions


@settings(max_examples=25, deadline=None)
@given(writes=WRITES, seed=st.integers(min_value=0, max_value=2**16))
def test_torn_write_never_served(writes, seed):
    """After any power loss, every surviving object's bytes equal some
    value that was actually written (never a torn hybrid), and every
    checksum verifies."""
    cfg = DurabilityConfig(defer_threshold=4096, persist_p=0.25, tear_p=0.5)
    env, device, owner, wal = _build_wal(seed, cfg)
    written: dict[str, list[bytes]] = {}
    for i, (obj, size, fill, whole) in enumerate(writes):
        name = f"o{obj}"
        data = bytes([fill]) * size
        _run(env, wal.write(name, 0, data, False, version=i + 1, whole=whole))
        if whole:
            values = [data]
        else:
            prev = written.get(name, [b""])[-1]
            base = prev if len(prev) >= size else prev + b"\x00" * (size - len(prev))
            values = [base[:0] + data + base[size:]]
        written.setdefault(name, []).extend(values)
    wal.power_loss()
    wal.recover()
    store = owner.store
    for name in store.object_names():
        # Checksums always verify post-replay: a torn key was either
        # healed by its covering record or dropped, never served dirty.
        assert store.verify(name), f"{name}: checksum failed after replay"
        got = store.read(name, 0, store.object_size(name))
        assert got in written.get(name, []), (
            f"{name}: served bytes never written (torn state leaked)"
        )
    # The last write to every object was acked before power loss, so
    # nothing may be missing either.
    for name, values in written.items():
        assert name in store, f"{name}: acked write lost"
        assert store.read(name, 0, store.object_size(name)) == values[-1]
