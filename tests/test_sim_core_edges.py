"""Edge-case tests for the DES kernel.

These pin down corner semantics the main suite doesn't touch: the
payload of a condition when a sibling child is triggered but not yet
processed, failure propagation through ``all_of``, ``run(until=)``
clock behavior at the boundary, interrupting a process whose wait
target has already fired, and the failure-sink installed when an
interrupt orphans a waited-on event.
"""

import pytest

from repro.errors import ProcessKilled, SimulationError
from repro.sim import Environment
from repro.sim.core import Event


def test_any_of_payload_excludes_triggered_but_unprocessed_child():
    """A sibling that fired at the same tick but whose callbacks have not
    run yet is *not* in the condition's payload (documented semantics)."""
    env = Environment()
    a = env.event()
    b = env.event()
    results = {}

    def waiter(env):
        payload = yield env.any_of([a, b])
        results["payload"] = dict(payload)

    env.process(waiter(env))
    # Same tick, FIFO: a's callbacks run first, the condition fires with
    # b still only *triggered*.
    a.succeed("va")
    b.succeed("vb")
    env.run()
    assert results["payload"] == {a: "va"}
    assert b.triggered and b.processed  # b still completed afterwards


def test_all_of_payload_with_same_tick_children():
    env = Environment()
    a = env.event()
    b = env.event()
    results = {}

    def waiter(env):
        payload = yield env.all_of([a, b])
        results["payload"] = dict(payload)

    env.process(waiter(env))
    a.succeed(1)
    b.succeed(2)
    env.run()
    # The condition fires while processing b (the last child); by then a
    # has been processed, so both values are present.
    assert results["payload"] == {a: 1, b: 2}


def test_all_of_fails_on_first_failed_child():
    env = Environment()
    a = env.event()
    b = env.event()
    seen = {}

    def waiter(env):
        try:
            yield env.all_of([a, b])
        except RuntimeError as exc:
            seen["exc"] = exc
            return "failed"

    p = env.process(waiter(env))
    boom = RuntimeError("child failed")
    a.fail(boom)
    env.run()
    assert seen["exc"] is boom
    assert p.value == "failed"
    # A late sibling success must not re-trigger the failed condition.
    b.succeed("late")
    env.run()
    assert p.value == "failed"


def test_failed_child_after_condition_done_does_not_crash_run():
    """A child that fails *after* the condition already fired is observed
    by the condition's (now inert) callback, not escalated by run()."""
    env = Environment()
    a = env.event()
    b = env.event()

    def waiter(env):
        with pytest.raises(ValueError):
            yield env.any_of([a, b])

    env.process(waiter(env))
    a.fail(ValueError("first"))
    env.run()
    b.fail(ValueError("second"))  # condition is done; still has the callback
    env.run()  # must not raise


def test_run_until_clock_lands_exactly_on_until_when_queue_drains():
    env = Environment()

    def proc(env):
        yield env.timeout(10)

    env.process(proc(env))
    env.run(until=500)
    assert env.now == 500


def test_run_until_processes_events_at_exactly_until():
    env = Environment()
    fired = []

    def proc(env):
        yield env.timeout(100)
        fired.append(env.now)
        yield env.timeout(1)
        fired.append(env.now)

    env.process(proc(env))
    env.run(until=100)
    # The event at t=100 runs; its successor at t=101 does not.
    assert fired == [100]
    assert env.now == 100
    env.run()
    assert fired == [100, 101]


def test_run_until_now_is_a_noop_boundary():
    env = Environment()
    env.run(until=0)
    assert env.now == 0
    with pytest.raises(SimulationError):
        env.run(until=-1)


def test_interrupt_process_waiting_on_already_triggered_event():
    """Interrupt wins over a pending (triggered, unprocessed) wait target,
    and the stale event firing later must not resume the dead process."""
    env = Environment()
    ev = env.event()
    seen = {}

    def victim(env):
        try:
            yield ev
        except ProcessKilled as exc:
            seen["cause"] = exc.args[0]
            return "killed"
        return "completed"

    p = env.process(victim(env))
    env.run(until=0)  # let the process reach its yield
    ev.succeed("value")  # now triggered + scheduled, but not processed
    p.interrupt(cause="preempted")
    env.run()
    assert p.value == "killed"
    assert seen["cause"] == "preempted"
    assert ev.processed  # the orphaned event still completed quietly


def test_interrupt_detach_sinks_orphaned_failure():
    """If an interrupt removes the only waiter of an event and that event
    later *fails*, the failure is intentionally unobserved — run() must
    not escalate it to a crash."""
    env = Environment()
    ev = env.event()

    def victim(env):
        try:
            yield ev
        except ProcessKilled:
            return "killed"

    p = env.process(victim(env))
    env.run(until=0)
    p.interrupt()
    ev.fail(RuntimeError("nobody is listening"))
    env.run()  # must not raise
    assert p.value == "killed"


def test_unobserved_failure_still_raises_without_interrupt():
    """The failure sink is scoped to interrupt-orphaned events only:
    a failed event that never had a waiter still surfaces from run()."""
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("genuinely unobserved"))
    with pytest.raises(RuntimeError, match="genuinely unobserved"):
        env.run()


def test_resume_event_pool_is_bounded_and_invisible():
    """Yielding already-processed events exercises the internal resume
    pool; values are delivered correctly and the pool stays bounded."""
    env = Environment()
    done = env.event()
    done.succeed("ready")
    values = []

    def hopper(env, rounds):
        for i in range(rounds):
            v = yield done  # processed after the first step -> pooled resume
            values.append((i, v))
        return len(values)

    p = env.process(hopper(env, 600))
    env.run()
    assert p.value == 600
    assert values[0] == (0, "ready") and values[-1] == (599, "ready")
    assert len(env._resume_pool) <= Environment._POOL_MAX


def test_yield_processed_failed_event_raises_into_process():
    env = Environment()
    bad = env.event()
    seen = {}

    def observer(env):
        try:
            yield bad
        except ValueError as exc:
            seen["exc"] = str(exc)

    env.process(observer(env))
    bad.fail(ValueError("stored failure"))
    env.run()
    assert seen["exc"] == "stored failure"

    def late_observer(env):
        # The event is long processed; resumption goes through the pool.
        try:
            yield bad
        except ValueError as exc:
            return str(exc)

    p = env.process(late_observer(env))
    env.run()
    assert p.value == "stored failure"


def test_environment_slots_reject_adhoc_attributes():
    env = Environment()
    with pytest.raises(AttributeError):
        env.scratch = 1  # __slots__: the hot loop relies on a fixed layout


def test_event_slots_reject_adhoc_attributes():
    env = Environment()
    with pytest.raises(AttributeError):
        Event(env).scratch = 1
