"""Round-trip, erasure-recovery, and matrix tests for Reed-Solomon."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import (
    ReedSolomon,
    ReplicationCodec,
    StripeLayout,
    cauchy,
    gauss_jordan_invert,
    gf_matmul,
    systematic_cauchy,
    systematic_vandermonde,
)
from repro.errors import DecodeError, ErasureCodingError


# --- generator matrices ---------------------------------------------------------


@pytest.mark.parametrize("k,m", [(2, 1), (3, 2), (4, 2), (6, 3), (8, 4)])
def test_systematic_vandermonde_top_is_identity(k, m):
    g = systematic_vandermonde(k, m)
    assert g.shape == (k + m, k)
    assert np.array_equal(g[:k], np.eye(k, dtype=np.uint8))


@pytest.mark.parametrize("k,m", [(2, 1), (4, 2), (6, 3)])
def test_systematic_cauchy_top_is_identity(k, m):
    g = systematic_cauchy(k, m)
    assert np.array_equal(g[:k], np.eye(k, dtype=np.uint8))


@pytest.mark.parametrize("maker", [systematic_vandermonde, systematic_cauchy])
def test_any_k_rows_invertible(maker):
    k, m = 4, 2
    g = maker(k, m)
    for rows in itertools.combinations(range(k + m), k):
        sub = g[list(rows)]
        inv = gauss_jordan_invert(sub)  # must not raise
        assert np.array_equal(gf_matmul(inv, sub), np.eye(k, dtype=np.uint8))


def test_gauss_jordan_inverts():
    rng = np.random.default_rng(3)
    mat = systematic_vandermonde(5, 3)[[0, 2, 5, 6, 7]]
    inv = gauss_jordan_invert(mat)
    prod = gf_matmul(inv, mat.astype(np.uint8))
    # inv @ mat over GF should be identity; verify via action on identity.
    assert np.array_equal(prod, np.eye(5, dtype=np.uint8))


def test_singular_matrix_raises():
    mat = np.array([[1, 2], [1, 2]], dtype=np.uint8)
    with pytest.raises(ErasureCodingError):
        gauss_jordan_invert(mat)


def test_invert_non_square_raises():
    with pytest.raises(ErasureCodingError):
        gauss_jordan_invert(np.zeros((2, 3), dtype=np.uint8))


def test_cauchy_bounds():
    with pytest.raises(ErasureCodingError):
        cauchy(200, 100)


# --- codec round trips --------------------------------------------------------------


@pytest.mark.parametrize("technique", ["vandermonde", "cauchy"])
@pytest.mark.parametrize("k,m", [(2, 1), (4, 2), (6, 3), (8, 4)])
def test_encode_decode_no_loss(k, m, technique):
    rs = ReedSolomon(k, m, technique)
    data = bytes(range(256)) * 4
    shards = rs.encode(data)
    assert len(shards) == k + m
    assert rs.decode(shards, len(data)) == data


@pytest.mark.parametrize("technique", ["vandermonde", "cauchy"])
def test_recover_from_any_m_erasures(technique):
    k, m = 4, 2
    rs = ReedSolomon(k, m, technique)
    data = b"the quick brown fox jumps over the lazy dog" * 10
    shards = rs.encode(data)
    for lost in itertools.combinations(range(k + m), m):
        damaged = [None if i in lost else s for i, s in enumerate(shards)]
        assert rs.decode(damaged, len(data)) == data, f"failed for erasures {lost}"


def test_too_many_erasures_raises():
    rs = ReedSolomon(4, 2)
    data = b"x" * 100
    shards = rs.encode(data)
    damaged = [None, None, None] + shards[3:]
    with pytest.raises(DecodeError):
        rs.decode(damaged, len(data))


def test_decode_wrong_slot_count():
    rs = ReedSolomon(4, 2)
    with pytest.raises(ErasureCodingError):
        rs.decode([b"x"] * 5, 1)


def test_reconstruct_single_shard():
    rs = ReedSolomon(4, 2)
    data = bytes(np.random.default_rng(1).integers(0, 256, 1000, dtype=np.uint8))
    shards = rs.encode(data)
    for idx in range(6):
        damaged = list(shards)
        damaged[idx] = None
        rebuilt = rs.reconstruct_shard(damaged, idx)
        assert rebuilt == shards[idx], f"shard {idx} mismatch"


def test_reconstruct_present_shard_is_identity():
    rs = ReedSolomon(3, 2)
    shards = rs.encode(b"hello world")
    assert rs.reconstruct_shard(shards, 2) == shards[2]


def test_reconstruct_index_validation():
    rs = ReedSolomon(3, 2)
    shards = rs.encode(b"hello")
    with pytest.raises(ErasureCodingError):
        rs.reconstruct_shard(shards, 9)


def test_reconstruct_too_many_lost():
    rs = ReedSolomon(3, 2)
    shards = rs.encode(b"hello")
    damaged = [None, None, None, shards[3], shards[4]]
    with pytest.raises(DecodeError):
        rs.reconstruct_shard(damaged, 0)


@given(st.binary(min_size=0, max_size=2000), st.integers(min_value=0, max_value=5))
@settings(max_examples=40, deadline=None)
def test_roundtrip_property_random_erasures(data, seed):
    rs = ReedSolomon(4, 2)
    shards = rs.encode(data)
    rng = np.random.default_rng(seed)
    lost = rng.choice(6, size=2, replace=False)
    damaged = [None if i in lost else s for i, s in enumerate(shards)]
    assert rs.decode(damaged, len(data)) == data


def test_empty_object():
    rs = ReedSolomon(4, 2)
    shards = rs.encode(b"")
    assert rs.decode(shards, 0) == b""


def test_shard_sizes_uniform():
    rs = ReedSolomon(4, 2)
    shards = rs.encode(b"z" * 13)  # 13 bytes -> 4-byte shards padded
    assert all(len(s) == 4 for s in shards)


def test_profile_validation():
    with pytest.raises(ErasureCodingError):
        ReedSolomon(0, 2)
    with pytest.raises(ErasureCodingError):
        ReedSolomon(4, -1)
    with pytest.raises(ErasureCodingError):
        ReedSolomon(200, 100)
    with pytest.raises(ErasureCodingError):
        ReedSolomon(4, 2, technique="magic")


def test_encode_shards_validation():
    rs = ReedSolomon(4, 2)
    with pytest.raises(ErasureCodingError):
        rs.encode_shards(np.zeros((3, 8), dtype=np.uint8))


# --- replication codec -----------------------------------------------------------------


def test_replication_roundtrip():
    rc = ReplicationCodec(3)
    shards = rc.encode(b"payload")
    assert len(shards) == 3
    assert rc.decode(shards, 7) == b"payload"


def test_replication_survives_n_minus_1_losses():
    rc = ReplicationCodec(3)
    shards = rc.encode(b"payload")
    assert rc.decode([None, None, shards[2]], 7) == b"payload"


def test_replication_total_loss_raises():
    rc = ReplicationCodec(2)
    with pytest.raises(DecodeError):
        rc.decode([None, None], 5)


def test_replication_validation():
    with pytest.raises(ErasureCodingError):
        ReplicationCodec(0)
    rc = ReplicationCodec(2)
    with pytest.raises(ErasureCodingError):
        rc.decode([b"x"], 1)


def test_replication_overhead():
    assert ReplicationCodec(3).storage_overhead() == 3.0
    assert ReplicationCodec(3).k == 1
    assert ReplicationCodec(3).m == 2
    assert ReplicationCodec(3).n == 3


# --- striping ---------------------------------------------------------------------------


def test_stripe_geometry():
    layout = StripeLayout(k=4, stripe_unit=1024)
    assert layout.stripe_width == 4096
    assert layout.stripe_of(0) == 0
    assert layout.stripe_of(4096) == 1
    assert layout.chunk_of(1024) == 1
    assert layout.chunk_offset(1030) == 6


def test_stripe_extent_coverage():
    layout = StripeLayout(k=2, stripe_unit=512)  # width 1024
    assert layout.stripes_for_extent(0, 1024) == [0]
    assert layout.stripes_for_extent(512, 1024) == [0, 1]
    assert layout.stripes_for_extent(0, 0) == []


def test_stripe_extent_in_stripe():
    layout = StripeLayout(k=2, stripe_unit=512)
    off, ln = layout.extent_in_stripe(0, 512, 1024)
    assert (off, ln) == (512, 512)
    off, ln = layout.extent_in_stripe(1, 512, 1024)
    assert (off, ln) == (0, 512)


def test_full_stripe_write_detection():
    layout = StripeLayout(k=4, stripe_unit=1024)
    assert layout.is_full_stripe_write(0, 4096)
    assert not layout.is_full_stripe_write(0, 2048)
    assert not layout.is_full_stripe_write(100, 4096)


def test_stripe_validation():
    with pytest.raises(ErasureCodingError):
        StripeLayout(0, 512)
    with pytest.raises(ErasureCodingError):
        StripeLayout(2, 0)
    layout = StripeLayout(2, 512)
    with pytest.raises(ErasureCodingError):
        layout.stripe_of(-1)
