"""Tests for span export (Chrome trace JSON, CSV) and tracer edge cases."""

import csv
import json

import pytest

from repro.cli import main
from repro.deliba import DELIBAK, build_framework
from repro.sim import Environment
from repro.trace import STAGES, Tracer
from repro.units import kib
from repro.workloads import FioJob


def _traced_run(nrequests=10, seed=0):
    fw = build_framework(DELIBAK, trace=True, seed=seed)
    job = FioJob("t", "randwrite", bs=kib(4), iodepth=1, nrequests=nrequests)
    proc = fw.env.process(fw.run_fio(job))
    fw.env.run()
    assert proc.ok
    return fw


# --- chrome trace export ------------------------------------------------------


def test_chrome_trace_is_valid_json(tmp_path):
    fw = _traced_run()
    path = fw.tracer.export_chrome_trace(tmp_path / "trace.json")
    doc = json.loads(path.read_text())
    assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert spans
    for e in spans:
        assert e["name"] in STAGES
        assert e["ts"] >= 0 and e["dur"] >= 0
        assert e["pid"] == 0 and isinstance(e["tid"], int)
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert meta and meta[0]["args"]["name"]


def test_chrome_trace_span_nesting_and_ordering(tmp_path):
    fw = _traced_run()
    doc = fw.tracer.to_chrome_trace()
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    # Global stream is ordered by start time.
    starts = [e["args"]["start_ns"] for e in spans]
    assert starts == sorted(starts)
    # Each stage renders as its own lane (tid = canonical stage index).
    for e in spans:
        assert e["tid"] == STAGES.index(e["name"])
    # Per request: spans are well-formed, begin with ring submission, and
    # the completion stage ends the lifecycle.
    by_req = {}
    for e in spans:
        by_req.setdefault(e["args"]["request_id"], []).append(e)
    assert len(by_req) == 10
    for rid, evs in by_req.items():
        for e in evs:
            assert e["args"]["end_ns"] >= e["args"]["start_ns"]
        assert evs[0]["name"] == "rings"
        last_end = max(e["args"]["end_ns"] for e in evs)
        complete = [e for e in evs if e["name"] == "complete"]
        assert complete and complete[-1]["args"]["end_ns"] == last_end
        # Stage spans nest inside the request's total window.
        lo = evs[0]["args"]["start_ns"]
        assert all(e["args"]["start_ns"] >= lo for e in evs)


def test_csv_export_matches_span_stream(tmp_path):
    fw = _traced_run()
    path = fw.tracer.export_csv(tmp_path / "spans.csv")
    with path.open() as fh:
        rows = list(csv.reader(fh))
    assert rows[0] == ["request_id", "tenant", "stage", "start_ns", "end_ns", "duration_ns"]
    body = rows[1:]
    assert len(body) == sum(1 for _ in fw.tracer.iter_spans())
    for rid, tenant, stage, start, end, dur in body:
        assert stage in STAGES
        assert int(end) - int(start) == int(dur)


def test_tenant_tags_thread_into_chrome_lanes_and_csv(tmp_path):
    env = Environment()
    tracer = Tracer(env)
    tracer.record(1, "rings", 0, 10)
    tracer.record(1, "complete", 10, 20)
    tracer.record(2, "rings", 5, 15)
    tracer.record(2, "complete", 15, 25)
    tracer.tag_request(2, "tenant-a")
    tracer.tag_request(3, "")  # empty tag is a no-op
    assert tracer.tenants == {2: "tenant-a"}

    doc = tracer.to_chrome_trace()
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    lanes = {e["args"]["name"]: e["tid"]
             for e in doc["traceEvents"]
             if e["ph"] == "M" and e["name"] == "thread_name"}
    # Untagged request stays on the base stage lanes; tagged request
    # gets per-tenant lanes named "<stage> [<tenant>]".
    untagged = [e for e in spans if e["args"]["request_id"] == 1]
    tagged = [e for e in spans if e["args"]["request_id"] == 2]
    assert {e["tid"] for e in untagged} == {STAGES.index("rings"), STAGES.index("complete")}
    assert all("tenant" not in e["args"] for e in untagged)
    assert {e["tid"] for e in tagged} == {lanes["rings [tenant-a]"], lanes["complete [tenant-a]"]}
    assert all(e["args"]["tenant"] == "tenant-a" for e in tagged)
    # Tenant lanes never collide with the base block (0..len(STAGES)).
    assert min(lanes["rings [tenant-a]"], lanes["complete [tenant-a]"]) > len(STAGES)

    path = tracer.export_csv(tmp_path / "spans.csv")
    with path.open() as fh:
        rows = list(csv.reader(fh))
    by_req = {row[0]: row[1] for row in rows[1:]}
    assert by_req == {"1": "", "2": "tenant-a"}


def test_tenant_tag_flows_from_fio_job_to_export():
    fw = build_framework(DELIBAK, trace=True, seed=0)
    job = FioJob("t", "randwrite", bs=kib(4), iodepth=1, nrequests=5, tenant="gold")
    proc = fw.env.process(fw.run_fio(job))
    fw.env.run()
    assert proc.ok
    assert set(fw.tracer.tenants.values()) == {"gold"}
    doc = fw.tracer.to_chrome_trace()
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert spans and all(e["args"]["tenant"] == "gold" for e in spans)
    names = {e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"
             and e["name"] == "thread_name"}
    assert any(n.endswith("[gold]") for n in names)


def test_export_deterministic_across_seeded_runs(tmp_path):
    a = _traced_run(seed=7)
    b = _traced_run(seed=7)
    assert json.dumps(a.tracer.to_chrome_trace()) == json.dumps(b.tracer.to_chrome_trace())


def test_cli_trace_export(tmp_path, capsys):
    out_json = tmp_path / "out.json"
    out_csv = tmp_path / "out.csv"
    code = main(["trace", "--nrequests", "5",
                 "--export", str(out_json), "--export-csv", str(out_csv)])
    assert code == 0
    doc = json.loads(out_json.read_text())
    assert doc["traceEvents"]
    assert out_csv.read_text().startswith("request_id,tenant,stage")


# --- tracer edge cases --------------------------------------------------------


def test_unclosed_spans_excluded_from_export():
    env = Environment()
    tracer = Tracer(env)
    tracer.begin(1, "rings")
    env.run(until=100)
    tracer.end(1, "rings")
    tracer.begin(1, "fabric")  # never closed
    spans = list(tracer.iter_spans())
    assert [(rid, s.stage) for rid, s in spans] == [(1, "rings")]


def test_nested_distinct_stages_allowed():
    env = Environment()
    tracer = Tracer(env)
    tracer.begin(1, "fabric")
    tracer.begin(1, "accel")  # nested inside fabric: fine, distinct stage
    env.run(until=50)
    tracer.end(1, "accel")
    env.run(until=80)
    tracer.end(1, "fabric")
    assert tracer.traces[1].stage_ns("fabric") == 80
    assert tracer.traces[1].stage_ns("accel") == 50


def test_zero_duration_span_counts_in_summary():
    tracer = Tracer(Environment())
    tracer.record(1, "dmq", 100, 100)  # entered but instantaneous
    tracer.record(2, "dmq", 100, 300)
    summary = tracer.summary()
    # Both requests entered dmq; dropping the zero-duration visit would
    # report 0.2 us instead of the true 0.1 us mean.
    assert summary["dmq"] == pytest.approx(0.1)


def test_summary_and_table_on_empty_trace():
    tracer = Tracer(Environment())
    assert tracer.summary() == {}
    assert "stage" in tracer.breakdown_table()


def test_summary_on_single_request():
    tracer = Tracer(Environment())
    tracer.record(1, "fabric", 0, 4_000)
    summary = tracer.summary()
    # The request never reached "complete", so the summary says so
    # explicitly instead of silently dropping it from the denominator.
    assert summary == {"fabric": pytest.approx(4.0), "incomplete": 1}
    table = tracer.breakdown_table()
    assert "100.0%" in table
    assert "never reached complete" in table


def test_export_empty_tracer(tmp_path):
    tracer = Tracer(Environment())
    doc = tracer.to_chrome_trace()
    assert [e["ph"] for e in doc["traceEvents"]] == ["M"]
    path = tracer.export_csv(tmp_path / "empty.csv")
    assert path.read_text().strip() == "request_id,tenant,stage,start_ns,end_ns,duration_ns"
