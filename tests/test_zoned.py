"""Tests for the zoned-device model (ZNS/SMR semantics)."""

import pytest

from repro.errors import StorageError
from repro.osd import NVME_SSD
from repro.osd.zoned import Zone, ZonedDevice, ZoneState
from repro.sim import Environment
from repro.units import kib, mib


def make_dev(capacity=mib(8), zone_size=mib(1), **kw):
    env = Environment()
    return env, ZonedDevice(env, capacity, zone_size=zone_size, profile=NVME_SSD, **kw)


def run(env, gen):
    p = env.process(gen)
    env.run()
    if not p.ok:
        raise p.value
    return p.value


def test_geometry_validation():
    env = Environment()
    with pytest.raises(StorageError):
        ZonedDevice(env, mib(3), zone_size=mib(2))
    with pytest.raises(StorageError):
        ZonedDevice(env, mib(4), zone_size=mib(2), max_open_zones=0)


def test_zone_layout():
    env, dev = make_dev()
    assert len(dev.zones) == 8
    assert dev.zones[3].start == mib(3)
    assert dev.zone_of(mib(3) + 5).index == 3
    with pytest.raises(StorageError):
        dev.zone_of(mib(8))


def test_sequential_write_advances_pointer():
    env, dev = make_dev()
    run(env, dev.write(0, kib(64)))
    run(env, dev.write(kib(64), kib(64)))
    assert dev.zones[0].write_pointer == kib(128)
    assert dev.zones[0].state == ZoneState.OPEN


def test_unaligned_write_rejected():
    env, dev = make_dev()
    run(env, dev.write(0, kib(64)))
    with pytest.raises(StorageError):
        run(env, dev.write(kib(128), kib(64)))  # skips ahead of the pointer
    with pytest.raises(StorageError):
        run(env, dev.write(0, kib(64)))  # rewrites the start


def test_zone_fills_and_blocks():
    env, dev = make_dev(capacity=mib(2), zone_size=mib(1))
    run(env, dev.write(0, mib(1)))
    assert dev.zones[0].state == ZoneState.FULL
    with pytest.raises(StorageError):
        run(env, dev.write(mib(1) - kib(4), kib(4)))  # full zone
    # Write crossing the remaining space is rejected.
    run(env, dev.write(mib(1), kib(512)))
    with pytest.raises(StorageError):
        run(env, dev.write(mib(1) + kib(512), mib(1)))


def test_reset_reopens_zone():
    env, dev = make_dev(capacity=mib(2), zone_size=mib(1))
    run(env, dev.write(0, mib(1)))
    run(env, dev.reset_zone(0))
    assert dev.zones[0].state == ZoneState.EMPTY
    run(env, dev.write(0, kib(4)))
    assert dev.resets == 1


def test_max_open_zones_enforced():
    env, dev = make_dev(max_open_zones=2)
    run(env, dev.write(0, kib(4)))
    run(env, dev.write(mib(1), kib(4)))
    with pytest.raises(StorageError):
        run(env, dev.write(mib(2), kib(4)))
    # Filling one zone frees an open slot.
    run(env, dev.write(kib(4), mib(1) - kib(4)))
    run(env, dev.write(mib(2), kib(4)))


def test_zone_append_returns_offsets():
    env, dev = make_dev()
    o1 = run(env, dev.zone_append(2, kib(16)))
    o2 = run(env, dev.zone_append(2, kib(16)))
    assert o1 == mib(2)
    assert o2 == mib(2) + kib(16)
    assert dev.appends == 2


def test_zone_append_validation():
    env, dev = make_dev(capacity=mib(2), zone_size=mib(1))
    with pytest.raises(StorageError):
        run(env, dev.zone_append(5, kib(4)))
    with pytest.raises(StorageError):
        run(env, dev.zone_append(0, mib(2)))  # larger than the zone


def test_read_below_write_pointer_only():
    env, dev = make_dev()
    run(env, dev.write(0, kib(64)))
    run(env, dev.read(0, kib(64)))
    with pytest.raises(StorageError):
        run(env, dev.read(0, kib(128)))  # beyond the pointer


def test_finish_zone():
    env, dev = make_dev()
    run(env, dev.write(0, kib(4)))
    dev.finish_zone(0)
    assert dev.zones[0].state == ZoneState.FULL
    with pytest.raises(StorageError):
        dev.finish_zone(0)


def test_reset_offline_rejected():
    env, dev = make_dev()
    dev.zones[1].state = ZoneState.OFFLINE
    with pytest.raises(StorageError):
        run(env, dev.reset_zone(1))
    with pytest.raises(StorageError):
        run(env, dev.write(mib(1), kib(4)))


def test_zone_dataclass_remaining():
    z = Zone(0, 0, 100, write_pointer=30)
    assert z.remaining == 70
