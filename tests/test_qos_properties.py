"""Hypothesis properties for the mClock/dmClock scheduler.

Feasible-by-construction QoS configs (reservations sum below pool
capacity, limits at or above reservations) replayed through the
production tag queue over randomized flow counts, rates, burst phases
and server counts.  Floors must hold, ceilings must never be pierced,
and the scheduler must stay deterministic and work-conserving.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.qos_harness import Arrival, FifoQueue, open_loop_trace, replay, replay_cluster
from repro.osd.qos import NS_PER_SEC, MClockQueue, QosConfig, QosSpec
from repro.units import ms, us

WORKERS = 4
SERVICE_NS = 10 * us(1)
CAPACITY_IOPS = WORKERS * NS_PER_SEC / SERVICE_NS  # 400k
DURATION = ms(10)


@st.composite
def feasible_scenarios(draw):
    """(config, offered) with reservations feasible by construction:
    the floors sum to at most 70% of pool capacity, every limit is at
    least its flow's reservation, and offered load covers each floor."""
    n = draw(st.integers(min_value=2, max_value=4))
    budget = 0.7 * CAPACITY_IOPS
    tenants = {}
    offered = {}
    for i in range(n):
        # Each flow takes a random bite of the remaining floor budget.
        res_frac = draw(st.floats(min_value=0.0, max_value=0.5))
        res = budget * res_frac
        budget -= res
        weight = draw(st.sampled_from([0.5, 1.0, 2.0, 4.0]))
        with_limit = draw(st.booleans())
        limit = None
        if with_limit:
            limit = max(res, 1.0) * draw(st.floats(min_value=1.0, max_value=3.0))
        spec = QosSpec(
            reservation_iops=res, weight=weight, limit_iops=limit
        )
        name = f"t{i}"
        tenants[name] = spec
        # Offered load always covers the floor (else it is vacuous) and
        # randomly oversubscribes the pool.
        base = max(res * 1.3, 20_000.0)
        offered[("client", name)] = base + draw(
            st.floats(min_value=0.0, max_value=150_000.0)
        )
    return QosConfig(tenants=tenants), offered


def bursty(offered, phase_ns):
    """Phase-shift every other flow's arrivals to create bursts."""
    shifted = []
    for j, (flow, iops) in enumerate(offered.items()):
        t = open_loop_trace({flow: iops}, DURATION, start_ns=(phase_ns if j % 2 else 0))
        shifted.extend(t)
    shifted.sort(key=lambda a: a.time)
    return [Arrival(a.time, a.flow, i) for i, a in enumerate(shifted)]


@settings(max_examples=25, deadline=None)
@given(feasible_scenarios(), st.integers(min_value=0, max_value=200_000))
def test_floors_and_ceilings_hold(scenario, phase_ns):
    config, offered = scenario
    trace = bursty(offered, phase_ns)
    result = replay(MClockQueue(config), trace, WORKERS, SERVICE_NS)
    w0, w1 = DURATION // 2, DURATION
    window_s = (w1 - w0) / NS_PER_SEC
    for name, spec in config.tenants.items():
        flow = ("client", name)
        stats = result.flows.get(flow)
        if spec.reservation_iops >= 1000:
            # Floor: the steady-state window meets the reservation
            # (0.95 absorbs window-boundary quantization).
            assert stats is not None
            assert stats.rate_iops(w0, w1) >= 0.95 * spec.reservation_iops
        if spec.limit_iops is not None and stats is not None:
            # Ceiling: limit tags space priority-phase dispatches at
            # l_spacing.  mClock checks the limit only in the priority
            # phase, so a flow with a reservation can interleave O(1)
            # reservation-phase dispatches between limit slots (the
            # shared per-flow head re-blocks the priority phase right
            # after) — hence a small constant on top of window/spacing,
            # plus 1% for window-boundary quantization.
            allowed = window_s * spec.limit_iops * 1.01 + 3
            n = sum(1 for t in stats.dispatch_times if w0 <= t < w1)
            assert n <= allowed


@settings(max_examples=25, deadline=None)
@given(feasible_scenarios())
def test_work_conservation_without_limits(scenario):
    config, offered = scenario
    # Strip the limits: what remains must be fully work-conserving.
    config = QosConfig(tenants={
        name: QosSpec(reservation_iops=s.reservation_iops, weight=s.weight)
        for name, s in config.tenants.items()
    })
    trace = open_loop_trace(offered, DURATION)
    fifo = replay(FifoQueue(), trace, WORKERS, SERVICE_NS)
    mc = replay(MClockQueue(config), trace, WORKERS, SERVICE_NS)
    # Identical arrivals, identical service: reordering ops can never
    # lose work when no limit idles a worker on purpose.
    assert mc.total_dispatched() == fifo.total_dispatched()
    assert mc.total_dispatched() == len(trace)


@settings(max_examples=20, deadline=None)
@given(feasible_scenarios(), st.integers(min_value=1, max_value=4))
def test_distributed_floors_hold_across_servers(scenario, servers):
    """dmClock: rho-stamped reservation tags keep the *cluster-wide*
    floor when a flow's ops spread over independent per-server queues."""
    config, offered = scenario
    trace = open_loop_trace(offered, DURATION)
    arrivals = [(a.time, a.flow, i % servers) for i, a in enumerate(trace)]
    stats = replay_cluster(
        config, arrivals, servers=servers, workers=WORKERS, service_ns=SERVICE_NS
    )
    w0, w1 = DURATION // 2, DURATION
    for name, spec in config.tenants.items():
        if spec.reservation_iops < 1000:
            continue
        flow = ("client", name)
        assert flow in stats
        # Aggregate over every server's dispatches: the distributed
        # floor tolerates one spacing of slack per server.
        rate = stats[flow].rate_iops(w0, w1)
        slack = servers * NS_PER_SEC / (w1 - w0)
        assert rate >= 0.9 * spec.reservation_iops - slack


@settings(max_examples=15, deadline=None)
@given(feasible_scenarios(), st.randoms(use_true_random=False))
def test_replay_determinism_under_shuffled_construction(scenario, rng):
    """The queue's outcome depends only on the arrival trace, not on
    incidental construction order of unrelated Python state."""
    config, offered = scenario
    trace = open_loop_trace(offered, DURATION)
    r1 = replay(MClockQueue(config), trace, WORKERS, SERVICE_NS)
    # Rebuild everything from scratch (fresh config objects included).
    config2 = QosConfig(tenants=dict(config.tenants.items()))
    r2 = replay(MClockQueue(config2), list(trace), WORKERS, SERVICE_NS)
    assert r1.per_op == r2.per_op
