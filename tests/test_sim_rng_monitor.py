"""Unit tests for RNG streams and measurement monitors."""

import numpy as np
import pytest

from repro.sim import Counter, LatencyRecorder, RngRegistry, ThroughputMeter, TimeSeries
from repro.units import MB, SEC


def test_rng_streams_reproducible():
    a = RngRegistry(42).stream("osd.0")
    b = RngRegistry(42).stream("osd.0")
    assert [a.randint(0, 1000) for _ in range(10)] == [b.randint(0, 1000) for _ in range(10)]
    assert a.np.integers(0, 1 << 30, 5).tolist() == b.np.integers(0, 1 << 30, 5).tolist()


def test_rng_streams_independent_by_name():
    reg = RngRegistry(42)
    a = reg.stream("osd.0")
    b = reg.stream("osd.1")
    assert [a.randint(0, 10**9) for _ in range(5)] != [b.randint(0, 10**9) for _ in range(5)]


def test_rng_stream_cached():
    reg = RngRegistry(1)
    assert reg.stream("x") is reg.stream("x")


def test_rng_master_seed_changes_draws():
    a = RngRegistry(1).stream("s")
    b = RngRegistry(2).stream("s")
    assert [a.randint(0, 10**9) for _ in range(5)] != [b.randint(0, 10**9) for _ in range(5)]


def test_lognormal_ns_mean_close():
    s = RngRegistry(7).stream("svc")
    samples = [s.lognormal_ns(10_000, sigma=0.1) for _ in range(4000)]
    assert abs(np.mean(samples) - 10_000) / 10_000 < 0.05
    assert min(samples) >= 1


def test_lognormal_ns_zero_mean():
    s = RngRegistry(7).stream("svc")
    assert s.lognormal_ns(0) == 0


def test_counter():
    c = Counter("ops")
    c.add()
    c.add(4)
    assert c.value == 5


def test_latency_recorder_stats():
    rec = LatencyRecorder("lat")
    for v in [1000, 2000, 3000, 4000]:
        rec.record(v)
    assert rec.count == 4
    assert rec.mean_us() == pytest.approx(2.5)
    assert rec.min_us() == pytest.approx(1.0)
    assert rec.max_us() == pytest.approx(4.0)
    assert rec.percentile_us(50) == pytest.approx(2.5)


def test_latency_recorder_empty():
    rec = LatencyRecorder()
    assert rec.mean_us() == 0.0
    assert rec.percentile_us(99) == 0.0


def test_throughput_meter():
    m = ThroughputMeter("tp")
    m.start(0)
    for i in range(1, 11):
        m.record(4096, i * SEC // 10)
    assert m.ops == 10
    assert m.bytes == 40960
    assert m.mb_per_sec() == pytest.approx(40960 / MB, rel=1e-6)
    assert m.kiops() == pytest.approx(0.01, rel=1e-6)


def test_throughput_meter_explicit_window():
    m = ThroughputMeter()
    m.record(MB, 0)
    m.record(MB, 1)
    assert m.mb_per_sec(elapsed_ns=SEC) == pytest.approx(2.0)


def test_throughput_meter_empty():
    m = ThroughputMeter()
    assert m.mb_per_sec() == 0.0
    assert m.kiops() == 0.0


def test_time_series_weighted_mean():
    ts = TimeSeries("qd")
    ts.record(0, 0.0)
    ts.record(10, 10.0)  # value 0 held for 10
    ts.record(20, 0.0)  # value 10 held for 10
    assert ts.time_weighted_mean() == pytest.approx(5.0)


def test_time_series_single_sample():
    ts = TimeSeries()
    ts.record(5, 3.0)
    assert ts.time_weighted_mean() == 3.0


def test_throughput_meter_window_opens_at_submission():
    # Regression: the window must not open lazily at the first completion.
    # One op submitted at t=0 completing at t=1s is 1 op/s, not "0 ns of
    # window" (old behavior: start_ns set by record(), elapsed 0, rates
    # degenerate; with 2 ops the first op's service time vanished,
    # inflating MB/s and KIOPS at low op counts).
    m = ThroughputMeter()
    m.start(0)
    m.record(MB, SEC)
    assert m.elapsed_ns == SEC
    assert m.mb_per_sec() == pytest.approx(1.0)
    assert m.kiops() == pytest.approx(1e-3)


def test_throughput_meter_small_n_not_inflated():
    m = ThroughputMeter()
    m.start(0)
    m.record(MB, SEC)       # first op: 1 s of service time
    m.record(MB, 2 * SEC)   # second op, 1 s later
    # Lazy-start would measure 2 MB over 1 s = 2 MB/s; the true rate
    # over the submission window is 1 MB/s.
    assert m.mb_per_sec() == pytest.approx(1.0)


def test_throughput_meter_record_without_start_has_no_window():
    m = ThroughputMeter()
    m.record(MB, SEC)
    assert m.start_ns is None
    assert m.elapsed_ns == 0
    assert m.mb_per_sec() == 0.0
    assert m.kiops() == 0.0
    # Totals still accumulate for explicit-duration reporting.
    assert m.ops == 1 and m.bytes == MB


def test_time_series_weighted_mean_with_end():
    ts = TimeSeries("qd")
    ts.record(0, 4.0)
    ts.record(10, 0.0)
    # Without end_ns the final sample has zero weight.
    assert ts.time_weighted_mean() == pytest.approx(4.0)
    # Holding the last value until t=20 halves the mean.
    assert ts.time_weighted_mean(end_ns=20) == pytest.approx(2.0)
    # end_ns before the last sample changes nothing.
    assert ts.time_weighted_mean(end_ns=5) == pytest.approx(4.0)


def test_time_series_single_sample_with_end():
    ts = TimeSeries()
    ts.record(5, 3.0)
    assert ts.time_weighted_mean(end_ns=25) == pytest.approx(3.0)
