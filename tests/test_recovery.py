"""Online self-healing: PG state machine, recovery agents, chaos convergence.

Covers the ``repro.osd.recovery`` subsystem end to end: kill/revive/expand
convergence under concurrent client IO (replicated and EC), degraded-mode
availability (zero client hard-failures while healing), the per-PG missing
set (a write landing during backfill is never clobbered by a stale push),
EC unrecoverability surfacing as an ``incomplete`` PG state, and the
hardened monitor (flap damping, per-probe heartbeats, bounded failure log).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.osd import (
    ClusterSpec,
    FaultInjector,
    OpKind,
    OpPolicy,
    OsdConfig,
    OsdOp,
    PGState,
    RecoveryConfig,
    Scrubber,
    build_cluster,
)
from repro.osd.monitor import FAILURES_DETECTED_CAP
from repro.sim import Environment, MetricsRegistry
from repro.units import ms, us

#: Client policy for chaos runs: IO against a just-killed OSD must fail
#: over (bounded timeout, generous retries), never hang or error out.
CHAOS_POLICY = OpPolicy(timeout_ns=ms(20), max_attempts=12)
CHAOS_OSD = OsdConfig(subop_timeout_ns=ms(5))


def build(pool_kind="replicated", pg_num=16, config=None, **kw):
    env = Environment()
    metrics = MetricsRegistry()
    spec = ClusterSpec(
        num_server_hosts=2, osds_per_host=4,
        op_policy=CHAOS_POLICY, osd_config=CHAOS_OSD, **kw,
    )
    cluster = build_cluster(env, spec, metrics=metrics)
    if pool_kind == "replicated":
        pool = cluster.create_replicated_pool("pool", pg_num=pg_num, size=3)
    else:
        pool = cluster.create_erasure_pool("pool", pg_num=pg_num, k=4, m=2)
    manager = cluster.enable_recovery(config or RecoveryConfig())
    return env, metrics, cluster, pool, manager


def run(env, gen):
    p = env.process(gen)
    env.run()
    if not p.ok:
        raise p.value
    return p.value


def write(client, pool, name, data):
    if pool.pool_type.value == "replicated":
        yield from client.write_replicated(pool, name, data, direct=True)
    else:
        yield from client.write_ec(pool, name, data, direct=True)


def read(client, pool, name, length):
    if pool.pool_type.value == "replicated":
        data = yield from client.read_replicated(pool, name, 0, length)
    else:
        data = yield from client.read_ec(pool, name, length, direct=True)
    return data


def payload_for(n, size=4096):
    return {
        f"obj{i:03d}": bytes([(i * 7 + j) % 251 for j in range(size)])
        for i in range(n)
    }


# --- convergence under concurrent client load ---------------------------------


@pytest.mark.parametrize("pool_kind", ["replicated", "ec"])
def test_kill_revive_converges_under_load(pool_kind):
    """The acceptance scenario: kill an OSD mid-workload, converge,
    revive it, converge again — all while a client keeps issuing IO.
    Zero hard-failures, byte-identical reads through a second client,
    and a clean deep scrub."""
    env, metrics, cluster, pool, manager = build(pool_kind)
    client = cluster.new_client()
    verifier = cluster.new_client("verifier")
    payload = payload_for(16)
    load = {"ios": 0, "failures": 0}
    stop = {"flag": False}

    def client_load():
        names = sorted(payload)
        i = 0
        while not stop["flag"]:
            name = names[i % len(names)]
            try:
                if i % 3 == 2:
                    yield from write(client, pool, name, payload[name])
                else:
                    got = yield from read(client, pool, name, len(payload[name]))
                    assert got == payload[name]
                load["ios"] += 1
            except AssertionError:
                raise
            except Exception:
                load["failures"] += 1
            i += 1
            yield env.timeout(us(100))

    def main():
        for name, data in payload.items():
            yield from write(client, pool, name, data)
        env.process(client_load(), name="load")
        cluster.fail_osd(3)
        yield from manager.wait_converged()
        assert manager.pg_states()["peering"] == 0
        cluster.monitor.revive_osd(3)
        yield from manager.wait_converged()
        stop["flag"] = True
        for name, data in payload.items():
            got = yield from read(verifier, pool, name, len(data))
            assert got == data, f"{name} diverged after recovery"
        scrubber = Scrubber(env, cluster.monitor)
        report = yield from scrubber.scrub(pool, deep=True)
        assert report.clean, [vars(i) for i in report.inconsistencies[:3]]

    run(env, main())
    assert load["failures"] == 0, f"{load['failures']} client hard-failures while degraded"
    assert load["ios"] > 0, "client load never ran during recovery"
    assert metrics.counter("recovery.bytes_pushed").value > 0
    assert manager.converged
    # The revived OSD finished backfill: authoritative absence again.
    assert not cluster.daemons[3].backfill_reserve


def test_expand_converges():
    """Adding an OSD remaps PGs; recovery populates the newcomer and
    trims strays off the members that lost responsibility."""
    env, metrics, cluster, pool, manager = build("replicated", pg_num=8)
    client = cluster.new_client()
    payload = payload_for(12)

    def main():
        for name, data in payload.items():
            yield from write(client, pool, name, data)
        cluster.add_osd(cluster.server_hosts[0])
        yield from manager.wait_converged()
        for name, data in payload.items():
            got = yield from read(client, pool, name, len(data))
            assert got == data
        scrubber = Scrubber(env, cluster.monitor)
        report = yield from scrubber.scrub(pool, deep=True)
        assert report.clean, [vars(i) for i in report.inconsistencies[:3]]

    run(env, main())
    assert manager.converged


def test_recovery_traffic_moves_through_fabric():
    """Every recovery byte travels as fabric ops: killing one OSD must
    produce PULL/PUSH traffic measurable at the OSD op counters, not
    silent store-to-store copies."""
    env, metrics, cluster, pool, manager = build("replicated", pg_num=8)
    client = cluster.new_client()
    payload = payload_for(8)

    def main():
        for name, data in payload.items():
            yield from write(client, pool, name, data)
        before = cluster.total_ops_served()
        cluster.fail_osd(0)
        yield from manager.wait_converged()
        assert cluster.total_ops_served() > before, "no ops hit the OSD queues"

    run(env, main())
    pushed = metrics.counter("recovery.bytes_pushed").value
    pulled = metrics.counter("recovery.bytes_pulled").value
    assert pushed > 0 and pulled > 0
    assert metrics.counter("recovery.ops").value > 0


# --- degraded-mode and write-during-backfill ----------------------------------


def test_ec_unrecoverable_marks_incomplete():
    """Fewer than k surviving shards is an ``incomplete`` PG state and a
    counted unrecoverable object — never an uncaught StorageError or a
    recovery hang."""
    env, metrics, cluster, pool, manager = build("ec", pg_num=8)
    client = cluster.new_client()
    data = bytes(range(256)) * 16

    def main():
        yield from write(client, pool, "victim", data)
        # Kill three of the six acting members: 6 - 3 = 3 < k=4 shards.
        acting = client.compute_placement(pool, "victim")
        for osd_id in list(dict.fromkeys(acting))[:3]:
            cluster.fail_osd(osd_id)
        yield from manager.wait_converged()

    run(env, main())
    assert manager.converged
    assert manager.objects_unrecoverable >= 1
    assert manager.pg_states()["incomplete"] >= 1
    # A full client rewrite is the documented way out: incomplete keys
    # are not write-gated.
    def rewrite():
        yield from write(client, pool, "victim", data)
        got = yield from read(client, pool, "victim", len(data))
        assert got == data

    run(env, rewrite())


def test_stale_push_never_clobbers_newer_write():
    """Version-guarded PUSH: a backfill push carrying an older version
    than the local object is acknowledged as stale, not applied."""
    env, metrics, cluster, pool, manager = build("replicated", pg_num=8)
    client = cluster.new_client()
    new = b"new" * 100
    old = b"old" * 100

    def main():
        yield from write(client, pool, "obj", new)
        target = client.compute_placement(pool, "obj")[0]
        daemon = cluster.daemons[target]
        version = daemon.versions["obj"]
        push = OsdOp(
            OpKind.PUSH, pool.pool_id, "obj", 0, len(old),
            data=old, version=version - 1, epoch=cluster.osdmap.epoch,
        )
        helper = cluster.daemons[(target + 1) % len(cluster.daemons)]
        reply = yield from helper.call(f"osd.{target}", push)
        assert reply.ok and reply.stale
        assert daemon.store.read("obj", 0, len(new)) == new

    run(env, main())


@settings(max_examples=6, deadline=None)
@given(
    victim=st.integers(min_value=0, max_value=7),
    overwrite=st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=8),
)
def test_write_during_backfill_never_loses_data(victim, overwrite):
    """Property: writes racing the backfill of a revived-empty OSD always
    win.  Whatever subset of objects a client rewrites *while recovery is
    repopulating the revived member*, a later read returns the rewrite —
    the missing-set gate plus version-guarded pushes make the race safe."""
    env, metrics, cluster, pool, manager = build("replicated", pg_num=8)
    client = cluster.new_client()
    verifier = cluster.new_client("verifier")
    payload = payload_for(8, size=2048)
    names = sorted(payload)
    expected = dict(payload)

    def main():
        for name, data in payload.items():
            yield from write(client, pool, name, data)
        cluster.fail_osd(victim)
        yield from manager.wait_converged()
        cluster.monitor.revive_osd(victim)
        # Race the backfill: no wait before rewriting.
        for i in sorted(overwrite):
            name = names[i]
            fresh = bytes([(i * 31 + j) % 253 for j in range(2048)])
            expected[name] = fresh
            yield from write(client, pool, name, fresh)
        yield from manager.wait_converged()
        for name in names:
            got = yield from read(verifier, pool, name, len(expected[name]))
            assert got == expected[name], f"{name}: rewrite lost during backfill"

    run(env, main())
    assert manager.converged


# --- monitor hardening --------------------------------------------------------


def test_flap_damping_suppresses_transient_failures():
    """A link flap shorter than ``down_out_interval`` must not publish an
    epoch: probes fail, the OSD turns suspect, probes recover, the flap
    is counted as suppressed and nobody was marked down."""
    env, metrics, cluster, pool, manager = build("replicated", pg_num=8)
    cluster.monitor.down_out_interval_ns = ms(2)
    injector = FaultInjector(cluster)

    def main():
        cluster.monitor.start_heartbeats(interval_ns=us(100), grace_ns=us(50))
        # Flap the second host's link: down 300 us, back up, twice.
        injector.flap_link(cluster.server_hosts[1], us(300), us(300), count=2)
        yield env.timeout(ms(3))
        cluster.monitor.stop_heartbeats()

    run(env, main())
    assert len(cluster.monitor.failures_detected) == 0, "flap escalated to down"
    assert cluster.monitor.flaps_suppressed > 0
    assert metrics.counter("mon.flaps_suppressed").value == cluster.monitor.flaps_suppressed
    assert cluster.osdmap.up_osds() == list(range(8))


def test_flap_damping_still_detects_real_death():
    """Damping delays but never suppresses detection of a genuinely dead
    OSD: after ``down_out_interval`` of continuous probe failure the OSD
    is marked down exactly once."""
    env, metrics, cluster, pool, manager = build("replicated", pg_num=8)
    cluster.monitor.down_out_interval_ns = us(500)

    def main():
        cluster.monitor.start_heartbeats(interval_ns=us(100), grace_ns=us(50))
        cluster.crash_osd(3)  # silent: detection is the heartbeat's job
        yield env.timeout(ms(3))
        cluster.monitor.stop_heartbeats()
        yield from manager.wait_converged()

    run(env, main())
    assert list(cluster.monitor.failures_detected) == [3]
    assert metrics.counter("mon.failures_detected").value == 1
    assert not cluster.osdmap.osds[3].up


def test_flap_damping_deterministic():
    """Same seed, same schedule => identical suppression counts and
    failure logs across two independent runs."""

    def one_run():
        env, metrics, cluster, pool, manager = build("replicated", pg_num=8)
        cluster.monitor.down_out_interval_ns = ms(1)
        injector = FaultInjector(cluster)

        def main():
            cluster.monitor.start_heartbeats(interval_ns=us(100), grace_ns=us(50))
            injector.flap_link(cluster.server_hosts[1], us(300), us(300), count=3)
            cluster.crash_osd(2)
            yield env.timeout(ms(4))
            cluster.monitor.stop_heartbeats()

        run(env, main())
        return (
            list(cluster.monitor.failures_detected),
            cluster.monitor.flaps_suppressed,
            metrics.distribution("mon.heartbeat_rtt_ns").count,
        )

    assert one_run() == one_run()


def test_heartbeat_probes_resolve_independently():
    """No head-of-line blocking: while a dead OSD's probe waits out its
    grace window, live OSDs' replies are still recorded promptly (every
    observed RTT is far below the grace deadline) and the dead OSD is
    detected within one interval+grace round."""
    env, metrics, cluster, pool, manager = build("replicated", pg_num=8)
    grace = us(50)

    def main():
        cluster.crash_osd(5)
        cluster.monitor.start_heartbeats(interval_ns=us(100), grace_ns=grace)
        yield env.timeout(us(200))  # one interval + one grace + slack
        cluster.monitor.stop_heartbeats()

    run(env, main())
    assert 5 in cluster.monitor.failures_detected
    rtt = metrics.distribution("mon.heartbeat_rtt_ns")
    assert rtt.count > 0, "live probes never recorded"
    assert rtt.max() < grace, "live probe RTTs delayed by the dead OSD's grace window"


def test_failures_detected_is_bounded():
    """The failure log is a bounded deque: unbounded growth under a
    flapping link was a monitor memory leak."""
    env, metrics, cluster, pool, manager = build("replicated", pg_num=8)
    mon = cluster.monitor
    assert mon.failures_detected.maxlen == FAILURES_DETECTED_CAP
    for i in range(FAILURES_DETECTED_CAP + 100):
        mon.failures_detected.append(i % 8)
    assert len(mon.failures_detected) == FAILURES_DETECTED_CAP


# --- revive semantics ---------------------------------------------------------


def test_revive_clears_store_and_backfills():
    """A revived OSD never serves its pre-failure (stale) content: the
    store is cleared on revive and repopulated by backfill; mid-backfill
    absent reads fail over to surviving copies instead of answering
    authoritative zeros."""
    env, metrics, cluster, pool, manager = build("replicated", pg_num=8)
    client = cluster.new_client()
    payload = payload_for(8)

    def main():
        for name, data in payload.items():
            yield from write(client, pool, name, data)
        cluster.fail_osd(2)
        # Overwrite everything while OSD 2 is down: its content is stale.
        for name in payload:
            payload[name] = bytes(reversed(payload[name]))
            yield from write(client, pool, name, payload[name])
        yield from manager.wait_converged()
        cluster.monitor.revive_osd(2)
        assert len(cluster.daemons[2].store.object_names()) == 0
        assert cluster.daemons[2].backfill_reserve
        # Reads stay correct the whole way through the backfill.
        for name, data in payload.items():
            got = yield from read(client, pool, name, len(data))
            assert got == data
        yield from manager.wait_converged()
        for name, data in payload.items():
            got = yield from read(client, pool, name, len(data))
            assert got == data

    run(env, main())
    assert not cluster.daemons[2].backfill_reserve
    assert metrics.counter("recovery.bytes_pushed").value > 0


def test_pg_states_progress_and_gauges():
    """State transitions land in the metrics gauges and the PG map:
    after convergence nothing is left peering/backfilling and the gauge
    totals equal the PG count."""
    env, metrics, cluster, pool, manager = build("replicated", pg_num=16)
    client = cluster.new_client()

    def main():
        for name, data in payload_for(8).items():
            yield from write(client, pool, name, data)
        cluster.fail_osd(1)
        yield from manager.wait_converged()

    run(env, main())
    states = manager.pg_states()
    assert states["peering"] == 0 and states["backfilling"] == 0
    assert sum(states.values()) == 16
    gauge_total = sum(
        metrics.gauge(f"recovery.pg_state.{s.value}").value for s in PGState
    )
    assert gauge_total == 16
    assert states["recovered"] == metrics.gauge("recovery.pg_state.recovered").value
