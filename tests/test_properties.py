"""Cross-layer property tests (hypothesis): conservation and invariants.

These exercise compositions of subsystems with randomized inputs:
no lost or duplicated I/Os through the block layer, FIFO delivery on the
fabric, EC+CRUSH durability round trips, and metric self-consistency.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import UringEngine, UringMode
from repro.blk import Bio, BlkMqConfig, BlockLayer, IoOp, Request
from repro.ec import ReedSolomon
from repro.host import HostKernel
from repro.net.stack import KERNEL_TCP
from repro.net.topology import Network
from repro.osd.fabric import Fabric
from repro.sim import Environment
from repro.units import us


class CountingDriver:
    """Null driver that records every request exactly once."""

    def __init__(self, env, service_ns=us(15)):
        self.env = env
        self.service_ns = service_ns
        self.completed_ids = []
        self.bytes = 0

    def queue_rq(self, request: Request) -> None:
        def complete(env):
            yield env.timeout(self.service_ns)
            self.completed_ids.append(request.req_id)
            self.bytes += request.size
            request.completed_at = env.now
            request.completion.succeed(request)

        self.env.process(complete(self.env))


@st.composite
def bio_batches(draw):
    n = draw(st.integers(min_value=1, max_value=24))
    bios = []
    for _ in range(n):
        op = draw(st.sampled_from([IoOp.READ, IoOp.WRITE]))
        sector = draw(st.integers(min_value=0, max_value=1 << 20)) * 8
        size = draw(st.sampled_from([4096, 8192, 16384]))
        data = b"\x00" * size if op == IoOp.WRITE else None
        bios.append(Bio(op, sector, size, data=data))
    return bios


@given(bio_batches(), st.booleans())
@settings(max_examples=30, deadline=None)
def test_blk_mq_conserves_requests(bios, merging):
    """Every bio's bytes reach the driver exactly once, regardless of
    merging/elevator configuration."""
    env = Environment()
    kernel = HostKernel(env, num_cores=4)
    driver = CountingDriver(env)
    blk = BlockLayer(
        env, kernel, driver.queue_rq,
        BlkMqConfig(scheduler="mq-deadline" if merging else "none", merge_enabled=merging),
    )
    reqs = []

    def submit(env):
        core = kernel.cpus.core(0)
        for bio in bios:
            req = yield from blk.submit_bio(core, bio)
            if req not in reqs:
                reqs.append(req)
        blk.flush_plug(core)
        for req in reqs:
            yield req.completion

    env.process(submit(env))
    env.run()
    assert sorted(driver.completed_ids) == sorted(r.req_id for r in reqs)
    assert len(set(driver.completed_ids)) == len(driver.completed_ids)
    assert driver.bytes == sum(b.size for b in bios)


@given(bio_batches(), st.integers(min_value=1, max_value=12))
@settings(max_examples=25, deadline=None)
def test_uring_engine_conserves_ios(bios, iodepth):
    """The engine completes every bio exactly once at any depth."""
    env = Environment()
    kernel = HostKernel(env, num_cores=8)
    driver = CountingDriver(env)
    blk = BlockLayer(env, kernel, driver.queue_rq, BlkMqConfig(scheduler="none", merge_enabled=False))
    engine = UringEngine(env, kernel, blk, num_instances=3, mode=UringMode.SQPOLL)
    proc = env.process(engine.run(bios, iodepth))
    env.run()
    assert proc.ok
    result = proc.value
    assert result.ios == len(bios)
    assert result.bytes_moved == sum(b.size for b in bios)
    assert all(lat > 0 for lat in result.latencies_ns)


@given(st.lists(st.integers(min_value=64, max_value=65536), min_size=1, max_size=20))
@settings(max_examples=25, deadline=None)
def test_fabric_fifo_per_sender(sizes):
    """Messages between one entity pair arrive in send order."""
    env = Environment()
    net = Network(env)
    net.add_host("a")
    net.add_host("b")
    fabric = Fabric(env, net)
    fabric.register("src", "a", KERNEL_TCP)
    fabric.register("dst", "b", KERNEL_TCP)
    received = []

    def sender(env):
        for i, size in enumerate(sizes):
            yield from fabric.send("src", "dst", size, payload=i)

    def receiver(env):
        for _ in sizes:
            envelope = yield fabric.recv("dst")
            received.append(envelope.payload)

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    assert received == list(range(len(sizes)))


@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=1, max_value=3),
    st.binary(min_size=1, max_size=512),
    st.integers(min_value=0, max_value=999),
)
@settings(max_examples=40, deadline=None)
def test_ec_durability_property(k, m, data, seed):
    """Any m erasures are recoverable; m+1 never silently succeed."""
    import random

    rs = ReedSolomon(k, m)
    shards = rs.encode(data)
    rng = random.Random(seed)
    lost = rng.sample(range(k + m), m)
    damaged = [None if i in lost else s for i, s in enumerate(shards)]
    assert rs.decode(damaged, len(data)) == data
    # One more loss than the design limit must raise, not corrupt.
    extra = next(i for i in range(k + m) if i not in lost)
    damaged[extra] = None
    from repro.errors import DecodeError

    with pytest.raises(DecodeError):
        rs.decode(damaged, len(data))


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_crush_epoch_cache_transparency(x):
    """Cached and uncached placements are identical within an epoch."""
    from repro.crush import PlacementEngine, build_flat_cluster, replicated_rule

    cmap, root = build_flat_cluster(8)
    eng = PlacementEngine(cmap)
    rule = replicated_rule(root)
    first = eng.pg_to_osds(1, x % 64, rule, 3)
    second = eng.pg_to_osds(1, x % 64, rule, 3)
    assert first == second
    assert eng.placement_was_cached if hasattr(eng, "placement_was_cached") else True
    assert eng.hits >= 1


def test_run_result_metric_consistency():
    """throughput x elapsed == bytes, KIOPS x elapsed == ios."""
    from repro.api import RunResult

    r = RunResult(latencies_ns=[1000] * 50, started_at=0, finished_at=1_000_000, bytes_moved=50 * 4096)
    assert r.throughput_mb_s() * (r.elapsed_ns / 1e9) * 1e6 == pytest.approx(r.bytes_moved)
    assert r.kiops() * (r.elapsed_ns / 1e9) * 1e3 == pytest.approx(r.ios)
    assert r.p99_latency_us() >= r.mean_latency_us() * 0.99
