"""Unit tests for Store and FilterStore."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, FilterStore, Store


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((env.now, item))

    def producer(env):
        yield env.timeout(25)
        yield store.put("x")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [(25, "x")]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer(env):
        yield store.put("a")
        times.append(("a", env.now))
        yield store.put("b")  # blocks until a get frees the slot
        times.append(("b", env.now))

    def consumer(env):
        yield env.timeout(40)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert times == [("a", 0), ("b", 40)]


def test_store_capacity_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        Store(env, capacity=0)


def test_store_try_get():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None
    store.put("v")
    env.run()
    assert store.try_get() == "v"
    assert store.try_get() is None


def test_store_is_full():
    env = Environment()
    store = Store(env, capacity=2)
    store.put(1)
    store.put(2)
    env.run()
    assert store.is_full
    assert len(store) == 2


def test_try_get_unblocks_putter():
    env = Environment()
    store = Store(env, capacity=1)
    done = []

    def producer(env):
        yield store.put(1)
        yield store.put(2)
        done.append(env.now)

    env.process(producer(env))
    env.run()
    assert not done  # second put blocked
    assert store.try_get() == 1
    env.run()
    assert done == [0]


def test_filter_store_matches_predicate():
    env = Environment()
    store = FilterStore(env)
    got = []

    def consumer(env):
        item = yield store.get(lambda x: x % 2 == 0)
        got.append(item)

    env.process(consumer(env))
    store.put(1)
    store.put(3)
    store.put(4)
    env.run()
    assert got == [4]
    assert list(store.items) == [1, 3]


def test_filter_store_waits_for_match():
    env = Environment()
    store = FilterStore(env)
    got = []

    def consumer(env):
        item = yield store.get(lambda x: x == "wanted")
        got.append((env.now, item))

    def producer(env):
        yield store.put("other")
        yield env.timeout(10)
        yield store.put("wanted")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [(10, "wanted")]


def test_filter_store_plain_get_fifo():
    env = Environment()
    store = FilterStore(env)
    store.put("a")
    store.put("b")
    got = []

    def consumer(env):
        got.append((yield store.get()))
        got.append((yield store.get()))

    env.process(consumer(env))
    env.run()
    assert got == ["a", "b"]


def test_interrupted_getter_does_not_swallow_items():
    """Killing a process that waits on get() must withdraw its claim:
    the next put goes to a live getter, not into a dead process's event
    (which silently lost the item — the revived-messenger hang)."""
    env = Environment()
    store = Store(env)
    got = []

    def waiter(env):
        got.append((yield store.get()))

    doomed = env.process(waiter(env))

    def driver(env):
        yield env.timeout(1)
        doomed.interrupt("crashed")
        yield env.timeout(1)
        env.process(waiter(env))
        yield env.timeout(1)
        yield store.put("payload")

    env.process(driver(env))
    env.run()
    assert got == ["payload"]
    assert not store._getters


def test_interrupted_putter_withdraws_offer():
    """Killing a process blocked on a full store's put() must withdraw
    the pending item: draining the store afterwards yields only what
    live producers offered."""
    env = Environment()
    store = Store(env, capacity=1)
    store.put("held")

    def blocked_producer(env):
        yield store.put("doomed")

    doomed = env.process(blocked_producer(env))
    got = []

    def driver(env):
        yield env.timeout(1)
        doomed.interrupt("crashed")
        yield env.timeout(1)
        got.append(store.try_get())
        got.append(store.try_get())

    env.process(driver(env))
    env.run()
    assert got == ["held", None]
    assert not store._putters
