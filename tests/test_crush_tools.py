"""Tests for CRUSH analysis and serialization tooling."""

import pytest

from repro.crush import (
    BucketAlg,
    WEIGHT_ONE,
    analyze_distribution,
    analyze_movement,
    build_flat_cluster,
    build_two_level_cluster,
    dumps,
    erasure_rule,
    loads,
    optimal_movement_fraction,
    replicated_rule,
)
from repro.errors import CrushError


# --- analysis -----------------------------------------------------------------


def test_distribution_uniform_weights_even():
    cmap, root = build_flat_cluster(8)
    report = analyze_distribution(cmap, replicated_rule(root), replicas=3, samples=3000)
    assert report.max_deviation < 0.15
    assert report.coefficient_of_variation < 0.08
    assert sum(report.counts.values()) == 3000 * 3


def test_distribution_respects_weights():
    cmap, root = build_flat_cluster(4, weights=[1.0, 1.0, 2.0, 4.0])
    report = analyze_distribution(cmap, replicated_rule(root), replicas=1, samples=6000)
    # Device 3 (weight 4) should receive ~4x device 0's share.
    ratio = report.counts[3] / report.counts[0]
    assert 3.2 < ratio < 4.8


def test_distribution_excludes_out_devices():
    cmap, root = build_flat_cluster(6)
    cmap.mark_out(2)
    report = analyze_distribution(cmap, replicated_rule(root), replicas=2, samples=2000)
    assert report.counts.get(2, 0) == 0
    assert 2 not in report.expected


def test_distribution_validation():
    cmap, root = build_flat_cluster(4)
    with pytest.raises(CrushError):
        analyze_distribution(cmap, replicated_rule(root), samples=0)


def test_movement_straw2_near_optimal():
    """Removing one of 10 devices should move ~10% of slots, not more
    than ~2x the optimum (straw2's selling point)."""
    cmap, root = build_flat_cluster(10)
    rule = replicated_rule(root)
    report = analyze_movement(
        cmap, rule, mutate=lambda m: m.mark_out(7), replicas=3, samples=1500
    )
    optimal = 0.10
    assert optimal * 0.7 < report.moved_fraction < optimal * 2.0, report.moved_fraction


def test_movement_weight_increase_attracts_data():
    cmap, root = build_flat_cluster(6)
    rule = replicated_rule(root)
    report = analyze_movement(
        cmap, rule, mutate=lambda m: m.reweight_device(0, 3.0), replicas=1, samples=1500
    )
    # New share of device 0 = 3/8; it previously had 1/6: expected move
    # fraction ~ 3/8 - 1/6 ~ 0.21.
    assert 0.10 < report.moved_fraction < 0.35


def test_optimal_movement_fraction():
    cmap, _ = build_flat_cluster(10)
    # Removing one unit of ten: the helper reports against the pre-change
    # total (9 remaining + 1 removed).
    assert optimal_movement_fraction(cmap, WEIGHT_ONE) == pytest.approx(1 / 11)
    empty, _ = build_flat_cluster(1)
    empty.mark_out(0)
    with pytest.raises(CrushError):
        optimal_movement_fraction(empty, WEIGHT_ONE)


# --- serialization -------------------------------------------------------------


def test_roundtrip_flat_map():
    cmap, root = build_flat_cluster(6, alg=BucketAlg.STRAW2, weights=[1, 2, 3, 1, 2, 3])
    rule = replicated_rule(root)
    text = dumps(cmap, [rule])
    cmap2, rules2 = loads(text)
    assert len(cmap2.devices) == 6
    assert cmap2.weight_of(root) == cmap.weight_of(root)
    assert rules2[0].name == rule.name
    # Placements identical after the round trip.
    from repro.crush import Mapper

    m1, m2 = Mapper(cmap), Mapper(cmap2)
    for x in range(200):
        assert m1.do_rule(rule, x, 3) == m2.do_rule(rules2[0], x, 3)


def test_roundtrip_two_level_map():
    cmap, root = build_two_level_cluster(3, 4)
    text = dumps(cmap, [replicated_rule(root, fault_domain_type=1), erasure_rule(root)])
    cmap2, rules2 = loads(text)
    assert len(cmap2.buckets) == len(cmap.buckets)
    assert cmap2.parent_of(0) == cmap.parent_of(0)
    assert len(rules2) == 2
    from repro.crush import Mapper

    m1, m2 = Mapper(cmap), Mapper(cmap2)
    for x in range(100):
        assert m1.do_rule(rules2[0], x, 3) == m2.do_rule(rules2[0], x, 3)


def test_roundtrip_preserves_reweight():
    cmap, root = build_flat_cluster(4)
    cmap.set_reweight(1, 0.5)
    cmap2, _ = loads(dumps(cmap))
    assert cmap2.devices[1].reweight == cmap.devices[1].reweight


def test_load_rejects_bad_version():
    cmap, _ = build_flat_cluster(2)
    from repro.crush import dump_map, load_map

    blob = dump_map(cmap)
    blob["version"] = 99
    with pytest.raises(CrushError):
        load_map(blob)


def test_load_rejects_cyclic_buckets():
    from repro.crush import load_map

    blob = {
        "version": 1,
        "devices": [],
        "types": [],
        "buckets": [
            {"id": -1, "name": "a", "alg": "straw2", "type": 1, "items": [-2], "weights": [1]},
            {"id": -2, "name": "b", "alg": "straw2", "type": 1, "items": [-1], "weights": [1]},
        ],
    }
    with pytest.raises(CrushError):
        load_map(blob)


# --- device-class rules -------------------------------------------------------


def _mixed_media_cluster():
    from repro.crush import CrushMap, DeviceClass

    cmap = CrushMap()
    cmap.register_type(10, "root")
    ssds = [cmap.add_device(f"ssd.{i}", 1.0, DeviceClass.SSD) for i in range(4)]
    smrs = [cmap.add_device(f"smr.{i}", 1.0, DeviceClass.SMR) for i in range(4)]
    root = cmap.add_bucket(BucketAlg.STRAW2, 10, ssds + smrs, name="root")
    return cmap, root, set(ssds), set(smrs)


def test_class_rule_places_only_on_matching_devices():
    from repro.crush import DeviceClass, Mapper

    cmap, root, ssds, smrs = _mixed_media_cluster()
    ssd_rule = replicated_rule(root, device_class=DeviceClass.SSD, rule_id=5, name="ssd-only")
    smr_rule = replicated_rule(root, device_class=DeviceClass.SMR, rule_id=6, name="smr-only")
    mapper = Mapper(cmap)
    for x in range(200):
        assert set(mapper.do_rule(ssd_rule, x, 2)) <= ssds
        assert set(mapper.do_rule(smr_rule, x, 2)) <= smrs


def test_class_rule_indep_mode():
    from repro.crush import CRUSH_ITEM_NONE, DeviceClass, Mapper

    cmap, root, ssds, _ = _mixed_media_cluster()
    rule = erasure_rule(root, device_class=DeviceClass.SSD, rule_id=7)
    mapper = Mapper(cmap)
    for x in range(100):
        placed = [o for o in mapper.do_rule(rule, x, 3) if o != CRUSH_ITEM_NONE]
        assert set(placed) <= ssds


def test_unclassed_rule_uses_everything():
    from repro.crush import Mapper

    cmap, root, ssds, smrs = _mixed_media_cluster()
    mapper = Mapper(cmap)
    seen = set()
    for x in range(300):
        seen.update(mapper.do_rule(replicated_rule(root), x, 2))
    assert seen == ssds | smrs


def test_class_rule_serialization_roundtrip():
    from repro.crush import DeviceClass, Mapper

    cmap, root, ssds, _ = _mixed_media_cluster()
    rule = replicated_rule(root, device_class=DeviceClass.SSD, rule_id=9)
    cmap2, rules2 = loads(dumps(cmap, [rule]))
    assert rules2[0].device_class == DeviceClass.SSD
    m1, m2 = Mapper(cmap), Mapper(cmap2)
    for x in range(100):
        assert m1.do_rule(rule, x, 2) == m2.do_rule(rules2[0], x, 2)
