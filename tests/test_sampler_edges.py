"""ResourceSampler edge cases: mid-interval run ends and empty runs
(satellite of ISSUE 10)."""

from repro.obs.sampler import ResourceSampler
from repro.sim import Environment, MetricsRegistry
from repro.units import us


def _busy(env, duration_ns):
    yield env.timeout(duration_ns)


def test_run_ending_mid_interval_still_samples_the_tail():
    """A run whose last event lands between grid points must still get a
    final sample at (or after) that event — the clock stops where the
    heap drains, not at the next grid multiple."""
    env = Environment()
    registry = MetricsRegistry()
    sampler = ResourceSampler(env, registry, interval_ns=us(10))
    ticks = []
    sampler.add_gauge("obs.t", lambda: ticks.append(env.now) or float(len(ticks)))
    env.process(_busy(env, us(25)))  # ends at 25 us: mid third interval
    sampler.drive()
    assert env.peek() is None
    # Samples at 0, 10, 20 us on the grid, plus the post-drain read.
    assert sampler.samples_taken == 4
    assert ticks[:3] == [0, us(10), us(20)]
    assert ticks[-1] >= us(25)
    series = registry.get("obs.t")
    assert list(series.times) == ticks


def test_zero_event_run_takes_exactly_one_sample():
    """No events at all: drive() must not spin — one sample at t=0."""
    env = Environment()
    registry = MetricsRegistry()
    sampler = ResourceSampler(env, registry, interval_ns=us(10))
    sampler.add_gauge("obs.idle", lambda: 0.0)
    sampler.drive()
    assert env.now == 0
    assert sampler.samples_taken == 1
    assert list(registry.get("obs.idle").times) == [0]


def test_zero_request_workload_yields_empty_but_valid_series():
    """Probes over a run with no I/O record flat series, and rate probes
    (which need two samples for a delta) stay well-formed."""
    env = Environment()
    registry = MetricsRegistry()
    sampler = ResourceSampler(env, registry, interval_ns=us(10))
    counter = {"v": 0}
    sampler.add_rate("obs.rate", lambda: counter["v"])
    env.process(_busy(env, us(30)))
    sampler.drive()
    series = registry.get("obs.rate")
    # First sample has no previous value -> one fewer rate point than
    # samples; all zeros since the counter never moved.
    assert len(series.times) == sampler.samples_taken - 1
    assert all(v == 0.0 for v in series.values)
    assert series.time_weighted_mean(env.now) == 0.0
