"""Tests for the io_uring rings and all five API engines."""

import pytest

from repro.api import (
    IoUring,
    LibAioEngine,
    MmapEngine,
    PosixAioEngine,
    Ring,
    SyncEngine,
    UringEngine,
    UringMode,
)
from repro.api.uring.sqe import Sqe, UringOp
from repro.blk import Bio, BlkMqConfig, BlockLayer, IoOp
from repro.errors import ApiError, RingFullError
from repro.host import HostKernel
from repro.sim import Environment
from repro.units import us


class NullDriver:
    def __init__(self, env, service_ns=us(20)):
        self.env = env
        self.service_ns = service_ns
        self.completed = 0

    def queue_rq(self, request):
        def complete(env):
            yield env.timeout(self.service_ns)
            request.completed_at = env.now
            self.completed += 1
            request.completion.succeed(request)

        self.env.process(complete(self.env))


def make_stack(service_ns=us(20), blk_config=None):
    env = Environment()
    kernel = HostKernel(env, num_cores=8)
    driver = NullDriver(env, service_ns)
    blk = BlockLayer(
        env,
        kernel,
        driver.queue_rq,
        blk_config or BlkMqConfig(scheduler="none", merge_enabled=False),
    )
    return env, kernel, blk, driver


def bios_seq(n, size=4096, op=IoOp.READ):
    out = []
    for i in range(n):
        data = b"\x00" * size if op == IoOp.WRITE else None
        out.append(Bio(op, i * (size // 512), size, data=data))
    return out


def run_engine(engine, bios, iodepth):
    env = engine.env
    p = env.process(engine.run(bios, iodepth))
    env.run()
    if not p.ok:
        raise p.value
    return p.value


# --- ring --------------------------------------------------------------------


def test_ring_power_of_two_required():
    with pytest.raises(ApiError):
        Ring(10)
    with pytest.raises(ApiError):
        Ring(0)


def test_ring_push_pop_fifo():
    r = Ring(4)
    for i in range(4):
        r.push(i)
    assert r.is_full
    assert [r.pop() for _ in range(4)] == [0, 1, 2, 3]
    assert r.is_empty


def test_ring_overflow_raises():
    r = Ring(2)
    r.push(1)
    r.push(2)
    with pytest.raises(RingFullError):
        r.push(3)


def test_ring_underflow_raises():
    with pytest.raises(ApiError):
        Ring(2).pop()


def test_ring_wraparound_indices():
    r = Ring(4)
    # Force many wraps.
    for i in range(100):
        r.push(i)
        assert r.pop() == i
    assert r.head == r.tail == 100


def test_ring_32bit_wrap():
    r = Ring(2)
    r.head = r.tail = 0xFFFFFFFF
    r.push("x")
    assert r.tail == 0  # wrapped
    assert len(r) == 1
    assert r.pop() == "x"


def test_ring_peek_and_pop_many():
    r = Ring(8)
    for i in range(5):
        r.push(i)
    assert r.peek() == 0
    assert r.pop_many(3) == [0, 1, 2]
    assert r.space == 6


def test_sqe_validation():
    with pytest.raises(ApiError):
        Sqe(UringOp.READ, 0, 0, 4096, 1)  # no bio
    with pytest.raises(ApiError):
        Sqe(UringOp.NOP, 0, 0, -1, 1)


# --- io_uring instance ----------------------------------------------------------


@pytest.mark.parametrize("mode", list(UringMode))
def test_uring_single_io_roundtrip(mode):
    env, kernel, blk, driver = make_stack()
    ring = IoUring(env, kernel, blk, entries=8, mode=mode)
    got = []

    def proc(env):
        ring.prepare(bios_seq(1)[0])
        yield from ring.submit()
        cqes = yield from ring.wait_cqes(1)
        got.extend(cqes)

    env.process(proc(env))
    env.run()
    assert len(got) == 1
    assert got[0].ok
    assert got[0].res == 4096


def test_uring_sqpoll_saves_syscalls():
    env, kernel, blk, _ = make_stack()
    ring = IoUring(env, kernel, blk, entries=8, mode=UringMode.SQPOLL)

    def proc(env):
        for bio in bios_seq(4):
            ring.prepare(bio)
        yield from ring.submit()
        yield from ring.wait_cqes(4)

    env.process(proc(env))
    env.run()
    assert kernel.syscalls == 0
    assert ring.syscalls_saved == 1


def test_uring_batching_one_syscall_per_batch():
    env, kernel, blk, _ = make_stack()
    ring = IoUring(env, kernel, blk, entries=16, mode=UringMode.POLL)

    def proc(env):
        for bio in bios_seq(8):
            ring.prepare(bio)
        yield from ring.submit()
        yield from ring.wait_cqes(8, max_cqes=8)

    env.process(proc(env))
    env.run()
    assert kernel.syscalls == 1  # one enter for 8 I/Os


def test_uring_fixed_buffers_skip_copies():
    def copies(fixed):
        env, kernel, blk, _ = make_stack()
        ring = IoUring(env, kernel, blk, entries=8, mode=UringMode.POLL, fixed_buffers=fixed)

        def proc(env):
            ring.prepare(Bio(IoOp.WRITE, 0, 4096, data=b"\x00" * 4096))
            yield from ring.submit()
            yield from ring.wait_cqes(1)

        env.process(proc(env))
        env.run()
        return kernel.bytes_copied

    assert copies(fixed=True) == 0
    assert copies(fixed=False) == 4096


def test_uring_sq_full_raises():
    env, kernel, blk, _ = make_stack()
    ring = IoUring(env, kernel, blk, entries=2, mode=UringMode.POLL)
    ring.prepare(bios_seq(1)[0])
    ring.prepare(bios_seq(1)[0])
    with pytest.raises(RingFullError):
        ring.prepare(bios_seq(1)[0])


def test_uring_wait_validation():
    env, kernel, blk, _ = make_stack()
    ring = IoUring(env, kernel, blk, entries=2)

    def proc(env):
        yield from ring.wait_cqes(0)

    env.process(proc(env))
    with pytest.raises(ApiError):
        env.run()


# --- engines -----------------------------------------------------------------------


def test_uring_engine_runs_all_ios():
    env, kernel, blk, driver = make_stack()
    engine = UringEngine(env, kernel, blk, num_instances=3)
    result = run_engine(engine, bios_seq(30), iodepth=6)
    assert result.ios == 30
    assert result.bytes_moved == 30 * 4096
    assert driver.completed == 30
    assert result.mean_latency_us() > 0


def test_uring_engine_instances_pinned_to_distinct_cores():
    env, kernel, blk, _ = make_stack()
    engine = UringEngine(env, kernel, blk, num_instances=3, pin_cores=True)
    cores = {inst.core.core_id for inst in engine.instances}
    assert len(cores) == 3


def test_uring_engine_validation():
    env, kernel, blk, _ = make_stack()
    with pytest.raises(ApiError):
        UringEngine(env, kernel, blk, num_instances=0)
    engine = UringEngine(env, kernel, blk)
    with pytest.raises(ApiError):
        run_engine(engine, [], 1)
    with pytest.raises(ApiError):
        run_engine(engine, bios_seq(1), 0)


@pytest.mark.parametrize(
    "engine_cls", [SyncEngine, LibAioEngine, PosixAioEngine, MmapEngine]
)
def test_legacy_engines_complete_all_ios(engine_cls):
    env, kernel, blk, driver = make_stack()
    engine = engine_cls(env, kernel, blk)
    result = run_engine(engine, bios_seq(10, op=IoOp.WRITE), iodepth=4)
    assert result.ios == 10
    assert result.bytes_moved == 10 * 4096


def test_sync_engine_charges_syscall_per_io():
    env, kernel, blk, _ = make_stack()
    engine = SyncEngine(env, kernel, blk)
    run_engine(engine, bios_seq(5), iodepth=1)
    assert kernel.syscalls == 5
    assert kernel.context_switches >= 10  # sleep+wake per I/O


def test_libaio_batches_submissions():
    env, kernel, blk, _ = make_stack()
    engine = LibAioEngine(env, kernel, blk, batch_size=8)
    run_engine(engine, bios_seq(8), iodepth=8)
    # 1 submit + getevents calls; far fewer than 8 syscalls per io.
    assert kernel.syscalls < 8


def test_posix_aio_slowest_per_io_overhead():
    def cpu_time(engine_cls):
        env, kernel, blk, _ = make_stack()
        engine = engine_cls(env, kernel, blk)
        run_engine(engine, bios_seq(10, op=IoOp.WRITE), iodepth=1)
        return kernel.cpus.total_busy_ns()

    assert cpu_time(PosixAioEngine) > cpu_time(SyncEngine)


def test_uring_lower_latency_than_sync():
    def mean_latency(make_engine):
        env, kernel, blk, _ = make_stack()
        engine = make_engine(env, kernel, blk)
        result = run_engine(engine, bios_seq(20), iodepth=1)
        return result.mean_latency_us()

    uring = mean_latency(lambda e, k, b: UringEngine(e, k, b, num_instances=1))
    sync = mean_latency(SyncEngine)
    assert uring < sync


def test_uring_engine_higher_iops_at_depth():
    def kiops(make_engine):
        env, kernel, blk, _ = make_stack()
        engine = make_engine(env, kernel, blk)
        result = run_engine(engine, bios_seq(200), iodepth=16)
        return result.kiops()

    uring = kiops(lambda e, k, b: UringEngine(e, k, b, num_instances=3))
    sync = kiops(SyncEngine)
    assert uring > sync


def test_mmap_rereads_are_cheap():
    env, kernel, blk, driver = make_stack()
    engine = MmapEngine(env, kernel, blk)
    bios = bios_seq(1)
    run_engine(engine, bios, iodepth=1)
    first_backend_reads = driver.completed
    # Same pages again: no new backend I/O.
    engine2_result = run_engine(engine, bios_seq(1), iodepth=1)
    assert driver.completed == first_backend_reads
    assert engine2_result.ios == 1


# --- linked SQEs -----------------------------------------------------------------


def test_linked_sqes_execute_in_order():
    """IOSQE_IO_LINK: each chained I/O starts only after its predecessor
    completes (no overlap, unlike independent submissions)."""
    from repro.api.uring.sqe import IOSQE_IO_LINK

    env, kernel, blk, driver = make_stack(service_ns=us(50))
    ring = IoUring(env, kernel, blk, entries=8, mode=UringMode.POLL)
    done = []

    orig = driver.queue_rq

    def tracking(request):
        request.dispatched_tracked = env.now
        done.append(("dispatch", env.now))
        orig(request)

    blk.hctxs[0].queue_rq = tracking

    def proc(env):
        ring.prepare(bios_seq(1)[0], flags=IOSQE_IO_LINK)
        ring.prepare(bios_seq(1)[0], flags=IOSQE_IO_LINK)
        ring.prepare(bios_seq(1)[0])
        yield from ring.submit()
        yield from ring.wait_cqes(3, max_cqes=3)

    env.process(proc(env))
    env.run()
    dispatches = [t for kind, t in done if kind == "dispatch"]
    assert len(dispatches) == 3
    # Strictly serialized: each dispatch after the previous service time.
    assert dispatches[1] - dispatches[0] >= us(50)
    assert dispatches[2] - dispatches[1] >= us(50)


def test_unlinked_sqes_overlap():
    env, kernel, blk, driver = make_stack(service_ns=us(50))
    ring = IoUring(env, kernel, blk, entries=8, mode=UringMode.POLL)

    def proc(env):
        for bio in bios_seq(3):
            ring.prepare(bio)
        yield from ring.submit()
        yield from ring.wait_cqes(3, max_cqes=3)

    env.process(proc(env))
    env.run()
    # Three overlapped 50us services finish well under 3x50us + overheads.
    assert env.now < us(120)


def test_linked_chain_cancels_after_failure():
    from repro.api.uring.sqe import ECANCELED, IOSQE_IO_LINK

    env, kernel, blk, driver = make_stack()

    # Driver that fails every request.
    def failing(request):
        def complete(env):
            yield env.timeout(us(5))
            request.error = "EIO"
            request.completion.succeed(request)

        env.process(complete(env))

    blk.hctxs[0].queue_rq = failing
    ring = IoUring(env, kernel, blk, entries=8, mode=UringMode.POLL)
    got = []

    def proc(env):
        ring.prepare(bios_seq(1)[0], flags=IOSQE_IO_LINK)
        ring.prepare(bios_seq(1)[0], flags=IOSQE_IO_LINK)
        ring.prepare(bios_seq(1)[0])
        yield from ring.submit()
        cqes = yield from ring.wait_cqes(3, max_cqes=3)
        got.extend(cqes)

    env.process(proc(env))
    env.run()
    results = sorted(c.res for c in got)
    # First fails with -EIO (-5); the two linked successors are cancelled.
    assert results == [ECANCELED, ECANCELED, -5]
