"""Tests for CrushMap, rules, and the placement engine."""

import collections

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crush import (
    CRUSH_ITEM_NONE,
    BucketAlg,
    CrushMap,
    CrushRule,
    Mapper,
    PlacementEngine,
    Step,
    StepOp,
    WEIGHT_ONE,
    build_flat_cluster,
    build_two_level_cluster,
    erasure_rule,
    object_to_pg,
    replicated_rule,
    stable_mod,
)
from repro.errors import CrushError


def make_cluster(n=12, alg=BucketAlg.STRAW2):
    return build_flat_cluster(n, alg=alg)


# --- map construction -------------------------------------------------------


def test_build_flat_cluster():
    cmap, root = make_cluster(8)
    assert len(cmap.devices) == 8
    assert cmap.weight_of(root) == 8 * WEIGHT_ONE
    assert cmap.roots() == [root]
    assert cmap.devices_under(root) == list(range(8))


def test_build_two_level_cluster_paper_testbed():
    cmap, root = build_two_level_cluster(2, 16)
    assert len(cmap.devices) == 32
    assert cmap.weight_of(root) == 32 * WEIGHT_ONE
    hosts = cmap.buckets[root].items
    assert len(hosts) == 2
    for h in hosts:
        assert len(cmap.devices_under(h)) == 16


def test_weight_mismatch_rejected():
    with pytest.raises(CrushError):
        build_flat_cluster(4, weights=[1.0, 2.0])


def test_reweight_propagates_to_root():
    cmap, root = make_cluster(4)
    cmap.reweight_device(0, 3.0)
    assert cmap.weight_of(root) == 6 * WEIGHT_ONE


def test_reweight_two_level_propagates():
    cmap, root = build_two_level_cluster(2, 2)
    cmap.reweight_device(0, 5.0)
    assert cmap.weight_of(root) == 8 * WEIGHT_ONE


def test_mark_out_in():
    cmap, _ = make_cluster(4)
    cmap.mark_out(2)
    assert cmap.devices[2].is_out
    cmap.mark_in(2)
    assert not cmap.devices[2].is_out


def test_set_reweight_validation():
    cmap, _ = make_cluster(4)
    with pytest.raises(CrushError):
        cmap.set_reweight(0, 1.5)


def test_unknown_device_errors():
    cmap, _ = make_cluster(2)
    with pytest.raises(CrushError):
        cmap.weight_of(99)
    with pytest.raises(CrushError):
        cmap.reweight_device(99, 1.0)


def test_item_single_parent_enforced():
    cmap = CrushMap()
    d = cmap.add_device("osd.0")
    cmap.add_bucket(BucketAlg.STRAW2, 1, [d], name="h0")
    with pytest.raises(CrushError):
        cmap.add_bucket(BucketAlg.STRAW2, 1, [d], name="h1")


def test_ancestors_chain():
    cmap, root = build_two_level_cluster(2, 2)
    chain = cmap.ancestors_of(0)
    assert chain[-1] == root
    assert len(chain) == 2


def test_add_and_remove_device():
    cmap, root = make_cluster(4)
    new = cmap.add_device("osd.new", 2.0)
    cmap.add_device_to_bucket(root, new)
    assert cmap.weight_of(root) == 6 * WEIGHT_ONE
    cmap.remove_item(new)
    assert cmap.weight_of(root) == 4 * WEIGHT_ONE


# --- rule validation ------------------------------------------------------------


def test_rule_must_start_with_take():
    with pytest.raises(CrushError):
        CrushRule(0, "bad", (Step(StepOp.EMIT),))


def test_rule_must_end_with_emit():
    with pytest.raises(CrushError):
        CrushRule(0, "bad", (Step(StepOp.TAKE, arg=-1),))


def test_take_unknown_bucket_raises():
    cmap, _ = make_cluster(2)
    rule = replicated_rule(-99)
    with pytest.raises(CrushError):
        Mapper(cmap).do_rule(rule, 1, 1)


def test_num_rep_validation():
    cmap, root = make_cluster(2)
    with pytest.raises(CrushError):
        Mapper(cmap).do_rule(replicated_rule(root), 1, 0)


# --- firstn placement -------------------------------------------------------------


def test_firstn_returns_distinct_devices():
    cmap, root = make_cluster(12)
    mapper = Mapper(cmap)
    rule = replicated_rule(root)
    for x in range(300):
        osds = mapper.do_rule(rule, x, 3)
        assert len(osds) == 3
        assert len(set(osds)) == 3
        assert all(o in cmap.devices for o in osds)


def test_firstn_deterministic():
    cmap, root = make_cluster(12)
    mapper = Mapper(cmap)
    rule = replicated_rule(root)
    a = [tuple(mapper.do_rule(rule, x, 3)) for x in range(100)]
    b = [tuple(mapper.do_rule(rule, x, 3)) for x in range(100)]
    assert a == b


def test_firstn_skips_out_devices():
    cmap, root = make_cluster(8)
    mapper = Mapper(cmap)
    rule = replicated_rule(root)
    cmap.mark_out(3)
    for x in range(200):
        osds = mapper.do_rule(rule, x, 3)
        assert 3 not in osds
        assert len(osds) == 3


def test_firstn_minimal_remap_on_out():
    """Marking one OSD out must only remap placements that used it."""
    cmap, root = make_cluster(10)
    mapper = Mapper(cmap)
    rule = replicated_rule(root)
    before = {x: mapper.do_rule(rule, x, 3) for x in range(500)}
    cmap.mark_out(7)
    after = {x: mapper.do_rule(rule, x, 3) for x in range(500)}
    for x in range(500):
        if 7 not in before[x]:
            assert before[x] == after[x], f"x={x} remapped without touching osd.7"
        else:
            assert 7 not in after[x]
            # surviving members stay, in order
            kept = [o for o in before[x] if o != 7]
            assert [o for o in after[x] if o in kept] == kept


def test_firstn_weight_proportionality():
    cmap, root = build_flat_cluster(4, weights=[1.0, 1.0, 2.0, 4.0])
    mapper = Mapper(cmap)
    rule = replicated_rule(root)
    counts = collections.Counter()
    n = 8000
    for x in range(n):
        counts[mapper.do_rule(rule, x, 1)[0]] += 1
    for dev, w in enumerate([1.0, 1.0, 2.0, 4.0]):
        expected = n * w / 8.0
        assert abs(counts[dev] - expected) / expected < 0.12, counts


def test_chooseleaf_spreads_across_hosts():
    cmap, root = build_two_level_cluster(4, 4)
    mapper = Mapper(cmap)
    rule = replicated_rule(root, fault_domain_type=1)
    for x in range(300):
        osds = mapper.do_rule(rule, x, 3)
        assert len(osds) == 3
        hosts = {cmap.parent_of(o) for o in osds}
        assert len(hosts) == 3, f"x={x}: replicas share a host: {osds}"


def test_chooseleaf_two_hosts_paper_testbed():
    # The paper's cluster has 2 servers; 2-way replication across hosts.
    cmap, root = build_two_level_cluster(2, 16)
    mapper = Mapper(cmap)
    rule = replicated_rule(root, fault_domain_type=1)
    for x in range(200):
        osds = mapper.do_rule(rule, x, 2)
        hosts = {cmap.parent_of(o) for o in osds}
        assert len(hosts) == 2


# --- indep placement ------------------------------------------------------------------


def test_indep_returns_exact_slots():
    cmap, root = make_cluster(12)
    mapper = Mapper(cmap)
    rule = erasure_rule(root)
    for x in range(200):
        osds = mapper.do_rule(rule, x, 6)
        assert len(osds) == 6
        real = [o for o in osds if o != CRUSH_ITEM_NONE]
        assert len(set(real)) == len(real)


def test_indep_rank_stability_on_failure():
    """EC shard identity: failing one OSD leaves other ranks in place.

    Exception (faithful to crush_choose_indep): a slot that itself placed
    via a collision retry can cascade when the colliding slot's device
    fails.  Placements untouched by the failed OSD must be bitwise stable;
    across placements that did use it, only a small fraction of surviving
    ranks may move.
    """
    cmap, root = make_cluster(12)
    mapper = Mapper(cmap)
    rule = erasure_rule(root)
    before = {x: mapper.do_rule(rule, x, 6) for x in range(300)}
    cmap.mark_out(5)
    after = {x: mapper.do_rule(rule, x, 6) for x in range(300)}
    moved = total = 0
    for x in range(300):
        if 5 not in before[x]:
            assert before[x] == after[x], f"x={x} remapped without touching osd.5"
            continue
        for rank, (b, a) in enumerate(zip(before[x], after[x])):
            if b != 5:
                total += 1
                moved += a != b
    assert moved / total < 0.10, f"{moved}/{total} surviving ranks moved"


def test_indep_insufficient_devices_leaves_holes():
    cmap, root = make_cluster(4)
    mapper = Mapper(cmap)
    rule = erasure_rule(root)
    osds = mapper.do_rule(rule, 1, 6)
    assert len(osds) == 6
    assert osds.count(CRUSH_ITEM_NONE) >= 2


# --- placement engine -------------------------------------------------------------------


def test_stable_mod_basics():
    # b=12, bmask=15
    for x in range(200):
        v = stable_mod(x, 12, 15)
        assert 0 <= v < 12


def test_object_to_pg_range():
    for pg_num in (1, 8, 12, 100, 128):
        for i in range(100):
            assert 0 <= object_to_pg(f"obj{i}", pg_num) < pg_num


def test_pg_split_stability():
    """Doubling pg_num must only split PGs (objects stay or move to pg+old)."""
    moved, stayed = 0, 0
    for i in range(2000):
        a = object_to_pg(f"o{i}", 64)
        b = object_to_pg(f"o{i}", 128)
        assert b == a or b == a + 64
        moved += b != a
        stayed += b == a
    assert moved > 0 and stayed > 0


def test_placement_engine_caches_and_invalidates():
    cmap, root = make_cluster(8)
    eng = PlacementEngine(cmap)
    rule = replicated_rule(root)
    a = eng.pg_to_osds(1, 5, rule, 3)
    assert eng.pg_to_osds(1, 5, rule, 3) is a  # cached
    cmap.mark_out(a[0])
    eng.invalidate()
    b = eng.pg_to_osds(1, 5, rule, 3)
    assert b is not a
    assert a[0] not in b


def test_placement_engine_object_roundtrip():
    cmap, root = make_cluster(8)
    eng = PlacementEngine(cmap)
    rule = replicated_rule(root)
    pg, osds = eng.object_to_osds(1, "rbd_data.1.0", 64, rule, 3)
    assert 0 <= pg < 64
    assert len(osds) == 3


def test_primary_of_skips_holes():
    assert PlacementEngine.primary_of([CRUSH_ITEM_NONE, 4, 5]) == 4
    assert PlacementEngine.primary_of([CRUSH_ITEM_NONE]) is None


@given(st.integers(min_value=2, max_value=24), st.integers(min_value=0, max_value=5000))
@settings(max_examples=40, deadline=None)
def test_firstn_always_valid_devices(n, x):
    cmap, root = build_flat_cluster(n)
    mapper = Mapper(cmap)
    rule = replicated_rule(root)
    osds = mapper.do_rule(rule, x, min(3, n))
    assert len(set(osds)) == len(osds)
    for o in osds:
        assert o in cmap.devices
