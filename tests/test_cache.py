"""Cache tier: store/policy/classifier units and engine semantics.

The engine tests drive a :class:`CachedImage` directly over a small
cluster (no full framework) so every mode's datapath is exercised fast;
the framework-level integration (PT golden identity, capacity curve,
WB-vs-WT) lives in ``repro.bench.cachebench`` and its CI smoke.
"""

import pytest

from repro.cache import (
    CacheConfig,
    CacheMode,
    CachedImage,
    CacheLine,
    CacheLineStore,
    IoClassifier,
    IoClassRule,
    IoDesc,
    NHitPromote,
    parse_cache_mode,
)
from repro.cache.engine import StreamDetector
from repro.errors import CacheError
from repro.osd import ClusterSpec, RBDImage, build_cluster
from repro.sim import Environment, RngStream
from repro.units import kib, mib
from repro.workloads import ZipfJob

ALL_MODES = (
    CacheMode.PASS_THROUGH,
    CacheMode.WRITE_THROUGH,
    CacheMode.WRITE_BACK,
    CacheMode.WRITE_AROUND,
)


def small_image(object_size=mib(1), image_size=mib(8)):
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(num_server_hosts=2, osds_per_host=4))
    pool = cluster.create_replicated_pool("rbd", pg_num=32, size=2)
    client = cluster.new_client()
    return env, cluster, RBDImage("vm", image_size, pool, client, object_size=object_size)


def cached(mode, env, image, **kw):
    kw.setdefault("line_size", kib(16))
    kw.setdefault("capacity_lines", 32)
    return CachedImage(image, CacheConfig(mode=mode, **kw))


def run(env, gen):
    p = env.process(gen)
    env.run()
    if not p.ok:
        raise p.value
    return p.value


# -- store units ---------------------------------------------------------------------


def _line(line_id, klass="small", size=kib(16)):
    return CacheLine(line_id, bytearray(size), klass, 0)


def test_store_lru_order_tracks_lookups():
    store = CacheLineStore(4)
    for i in range(3):
        store.insert(_line(i))
    store.lookup(0, now_ns=10)  # refresh 0 -> order 1, 2, 0
    assert [ln.line_id for ln in store.lines_lru()] == [1, 2, 0]
    assert store.victim().line_id == 1


def test_store_victim_within_class():
    store = CacheLineStore(4)
    store.insert(_line(0, "small"))
    store.insert(_line(1, "large"))
    store.insert(_line(2, "small"))
    assert store.victim("large").line_id == 1
    assert store.class_occupancy("small") == 2


def test_store_dirty_accounting_exact():
    store = CacheLineStore(4)
    store.insert(_line(0))
    line = store.peek(0)
    store.note_dirty(line, 5)
    store.note_dirty(line, 9)  # idempotent
    assert store.dirty_count == 1
    assert line.dirty_since_ns == 5
    store.note_clean(line)
    store.note_clean(line)
    assert store.dirty_count == 0


def test_store_refuses_overfill_and_dirty_drop():
    store = CacheLineStore(1)
    store.insert(_line(0))
    with pytest.raises(CacheError):
        store.insert(_line(1))
    store.note_dirty(store.peek(0), 1)
    with pytest.raises(CacheError):
        store.drop_all()
    store.note_clean(store.peek(0))
    assert store.drop_all() == 1
    assert store.occupancy == 0


# -- classifier / config / policy units ----------------------------------------------


def test_classifier_first_match_and_fallback():
    clf = IoClassifier()
    assert clf.classify(IoDesc("read", kib(4))) == "small"
    assert clf.classify(IoDesc("read", kib(256), sequential=True)) == "seq-large"
    assert clf.classify(IoDesc("write", kib(64))) == "medium"
    nomatch = IoClassifier((IoClassRule("tiny", lambda io: io.size < 512),))
    assert nomatch.classify(IoDesc("read", kib(4))) == "other"


def test_classifier_caps_floor_at_one_line():
    clf = IoClassifier((IoClassRule("scan", lambda io: True, occupancy_cap=0.01),))
    assert clf.cap_lines("scan", 8) == 1
    assert clf.cap_lines("other", 8) == 8


def test_config_validation():
    with pytest.raises(CacheError):
        CacheConfig(line_size=1000)  # not a sector multiple
    with pytest.raises(CacheError):
        CacheConfig(promotion="sometimes")
    with pytest.raises(CacheError):
        CacheConfig(cleaning="eager")
    assert parse_cache_mode("write-back") is CacheMode.WRITE_BACK
    with pytest.raises(CacheError):
        parse_cache_mode("wbx")


def test_nhit_promotes_at_threshold():
    pol = NHitPromote(threshold=3)
    assert not pol.should_promote(7)
    assert not pol.should_promote(7)
    assert pol.should_promote(7)


def test_stream_detector_accumulates_contiguous_runs():
    det = StreamDetector(max_streams=2)
    assert det.update(0, kib(64)) == kib(64)
    assert det.update(kib(64), kib(64)) == kib(128)
    assert det.update(mib(4), kib(4)) == kib(4)  # unrelated stream
    assert det.update(kib(128), kib(64)) == kib(192)  # first stream continues


# -- engine semantics ----------------------------------------------------------------


@pytest.mark.parametrize("mode", ALL_MODES, ids=lambda m: m.value)
def test_read_your_writes_byte_identical(mode):
    env, _cluster, image = small_image()
    c = cached(mode, env, image, cleaning="nop")
    base = kib(16) - 512  # straddle a line boundary
    payload = bytes(range(256)) * 8  # 2 KiB
    run(env, c.write(base, payload))
    assert run(env, c.read(base, len(payload))) == payload
    # Partial overwrite inside a resident line.
    run(env, c.write(base + 512, b"\xC3" * 1024))
    got = run(env, c.read(base, len(payload)))
    assert got[:512] == payload[:512]
    assert got[512:1536] == b"\xC3" * 1024
    assert got[1536:] == payload[1536:]


@pytest.mark.parametrize("mode", ALL_MODES, ids=lambda m: m.value)
def test_flush_makes_backend_agree(mode):
    env, _cluster, image = small_image()
    c = cached(mode, env, image, cleaning="nop")
    for i in range(6):
        run(env, c.write(i * kib(16), bytes([i + 1]) * kib(16)))
    run(env, c.flush())
    for i in range(6):
        assert run(env, image.read(i * kib(16), kib(16))) == bytes([i + 1]) * kib(16)


def test_eviction_respects_capacity_and_preserves_data():
    env, _cluster, image = small_image()
    c = cached(CacheMode.WRITE_BACK, env, image, capacity_lines=8, cleaning="nop")
    for i in range(24):
        run(env, c.write(i * kib(16), bytes([i + 1]) * kib(16)))
    assert c.store.occupancy <= 8
    assert c.evictions > 0 and c.dirty_evictions > 0
    for i in range(24):  # evicted dirty lines were flushed, not lost
        assert run(env, c.read(i * kib(16), kib(16))) == bytes([i + 1]) * kib(16)


def test_sequential_cutoff_bypasses_and_keeps_cache_cold():
    env, _cluster, image = small_image()
    c = cached(
        CacheMode.WRITE_THROUGH, env, image,
        seq_cutoff_bytes=kib(64), capacity_lines=64,
    )
    for i in range(16):  # one long contiguous read stream
        run(env, c.read(i * kib(16), kib(16)))
    assert c.seq_bypasses > 0
    # Only the pre-cutoff head of the stream was promoted.
    assert c.store.occupancy <= 4


def test_bypass_read_never_skips_dirty_data():
    env, _cluster, image = small_image()
    c = cached(
        CacheMode.WRITE_BACK, env, image,
        seq_cutoff_bytes=kib(32), cleaning="nop",
    )
    run(env, c.write(kib(64), b"\xBE" * kib(16)))  # dirty, unflushed
    # A contiguous scan over the dirty range: the cutoff must not serve
    # the stale backend copy.
    got = [run(env, c.read(i * kib(16), kib(16))) for i in range(8)]
    assert got[4] == b"\xBE" * kib(16)


def test_write_around_updates_backend_and_resident_copy():
    env, _cluster, image = small_image()
    c = cached(CacheMode.WRITE_AROUND, env, image, seq_cutoff_bytes=0)
    run(env, c.read(0, kib(16)))  # promote the line
    run(env, c.write(0, b"\x77" * kib(16)))
    assert c.store.dirty_count == 0  # WA never dirties
    assert run(env, image.read(0, kib(16))) == b"\x77" * kib(16)  # backend current
    assert run(env, c.read(0, kib(16))) == b"\x77" * kib(16)  # resident copy too


def test_pass_through_touches_no_cache_state():
    env, _cluster, image = small_image()
    c = cached(CacheMode.PASS_THROUGH, env, image)
    run(env, c.write(0, b"\x11" * kib(16)))
    assert run(env, c.read(0, kib(16))) == b"\x11" * kib(16)
    s = c.stats()
    assert s["read_hits"] + s["read_misses"] + s["write_hits"] + s["write_misses"] == 0
    assert c.store.occupancy == 0


def test_promotion_nhit_delays_insertion():
    env, _cluster, image = small_image()
    c = cached(
        CacheMode.WRITE_THROUGH, env, image,
        promotion="nhit", promotion_hit_threshold=2, seq_cutoff_bytes=0,
    )
    run(env, c.read(0, kib(16)))
    assert c.store.occupancy == 0 and c.promotion_rejects == 1
    run(env, c.read(0, kib(16)))
    assert c.store.occupancy == 1  # second touch promotes


def test_class_occupancy_cap_enforced():
    env, _cluster, image = small_image()
    rules = (IoClassRule("small", lambda io: io.size <= kib(16), 0.25),)
    c = cached(
        CacheMode.WRITE_THROUGH, env, image,
        capacity_lines=16, io_classes=rules, seq_cutoff_bytes=0,
    )
    for i in range(12):
        run(env, c.read(i * kib(16), kib(16)))
    # 25% of 16 lines = 4: the scan may hold at most that many.
    assert c.store.class_occupancy("small") <= 4


def test_epoch_bump_invalidates_resident_lines():
    env, cluster, image = small_image()
    c = cached(CacheMode.WRITE_BACK, env, image, cleaning="nop", seq_cutoff_bytes=0)
    run(env, c.write(0, b"\x42" * kib(16)))
    assert c.store.occupancy == 1 and c.store.dirty_count == 1
    cluster.osdmap.mark_down(0)
    cluster.osdmap.mark_up(0)
    assert run(env, c.read(0, kib(16))) == b"\x42" * kib(16)
    assert c.epoch_invalidations >= 1
    # The dirty line was flushed (not dropped) before invalidation.
    assert c.flushed_lines >= 1


# -- hit-ratio behavior --------------------------------------------------------------


def _replay_hit_ratio(theta: float, capacity_lines: int = 24, nreq: int = 300) -> float:
    env, _cluster, image = small_image()
    c = cached(
        CacheMode.WRITE_THROUGH, env, image,
        line_size=kib(4), capacity_lines=capacity_lines, seq_cutoff_bytes=0,
    )
    job = ZipfJob(name="z", rw="randread", bs=kib(4), size=mib(4), nrequests=nreq, theta=theta)
    bios = job.make_bios(RngStream(0, "zipf-test"))
    for bio in bios:
        run(env, c.read(bio.offset, bio.size))
    return c.hit_ratio()


def test_zipf_hit_ratio_beats_uniform():
    assert _replay_hit_ratio(theta=1.1) > _replay_hit_ratio(theta=0.0)


def test_hit_ratio_monotone_in_capacity():
    ratios = [_replay_hit_ratio(theta=0.99, capacity_lines=n) for n in (8, 32, 128)]
    assert ratios == sorted(ratios)
