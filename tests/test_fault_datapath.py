"""Fault-tolerance datapath: chaos injection, retry/failover, status plumbing."""

import pytest

from repro.errnos import EIO, ENODATA, ENOLINK, ETIMEDOUT
from repro.errors import OsdOpError, StorageError
from repro.osd import ClusterSpec, FaultInjector, OpPolicy, OsdConfig, build_cluster
from repro.osd.ops import OpKind, OsdOp
from repro.sim import Environment, RngRegistry
from repro.status import BlkStatus, worst_status
from repro.units import ms, us


def small_cluster(hosts=2, **kw):
    env = Environment()
    spec = ClusterSpec(num_server_hosts=hosts, osds_per_host=4, **kw)
    return env, build_cluster(env, spec)


def run(env, gen, until=None):
    p = env.process(gen)
    env.run(until=until)
    if not p.ok:
        raise p.value
    return p.value


# --- status model -------------------------------------------------------------


def test_blk_status_errno_mapping():
    assert BlkStatus.OK.errno == 0
    assert BlkStatus.IOERR.errno == EIO
    assert BlkStatus.TIMEOUT.errno == ETIMEDOUT
    assert BlkStatus.TRANSPORT.errno == ENOLINK
    assert BlkStatus.MEDIUM.errno == ENODATA
    assert not BlkStatus.OK and BlkStatus.IOERR  # truthy exactly on failure


def test_worst_status_combine():
    assert worst_status([BlkStatus.OK, BlkStatus.MEDIUM, BlkStatus.IOERR]) is BlkStatus.IOERR
    assert BlkStatus.TIMEOUT.combine(BlkStatus.TRANSPORT) is BlkStatus.TRANSPORT
    assert worst_status([]) is BlkStatus.OK


def test_request_partial_failure_maps_to_bios():
    from repro.blk.bio import Bio, IoOp, Request

    bios = [Bio(IoOp.READ, sector=i * 8, size=4096) for i in range(4)]
    req = Request(bios=list(bios))
    req.fail_extents([(4096, 4096, BlkStatus.MEDIUM, "bad sector")])
    assert req.status_for(bios[0]) is BlkStatus.OK
    assert req.status_for(bios[1]) is BlkStatus.MEDIUM
    assert req.status is BlkStatus.MEDIUM  # worst-of propagates to the request


# --- retry policy -------------------------------------------------------------


def test_backoff_respects_bounds():
    """A retry storm never exceeds the cap (+jitter) nor collapses to 0."""
    policy = OpPolicy(
        timeout_ns=ms(1), max_attempts=10, backoff_base_ns=us(100),
        backoff_multiplier=2.0, backoff_max_ns=us(800), jitter=0.1,
    )
    rng = RngRegistry(7).stream("backoff")
    ceiling = int(us(800) * 1.1)
    for attempt in range(1, 10):
        raw = min(us(100) * 2.0 ** (attempt - 1), us(800))
        delay = policy.backoff_ns(attempt, rng)
        assert int(raw * 0.9) <= delay <= ceiling, f"attempt {attempt}: {delay}"
    # Deterministic: same seed, same schedule.
    a = [OpPolicy().backoff_ns(i, RngRegistry(3).stream("b")) for i in range(1, 6)]
    b = [OpPolicy().backoff_ns(i, RngRegistry(3).stream("b")) for i in range(1, 6)]
    assert a == b


def test_policy_validation():
    with pytest.raises(StorageError):
        OpPolicy(max_attempts=0)
    with pytest.raises(StorageError):
        OpPolicy(jitter=1.5)
    with pytest.raises(StorageError):
        OpPolicy(backoff_multiplier=0.5)


def test_retry_exhaustion_raises_with_attempt_count():
    """All replicas unreachable: the op fails after exactly max_attempts,
    carrying the last failure's status."""
    env, cluster = small_cluster(
        op_policy=OpPolicy(timeout_ns=us(300), max_attempts=3, backoff_base_ns=us(50))
    )
    pool = cluster.create_replicated_pool("rbd", pg_num=32, size=2)
    client = cluster.new_client()
    for host in cluster.server_hosts:  # silence the whole backend
        cluster.network.host(host).downlink.set_up(False)
    with pytest.raises(OsdOpError) as exc:
        run(env, client.write_replicated(pool, "obj", b"x" * 128))
    assert exc.value.attempts == 3
    assert exc.value.status is BlkStatus.TIMEOUT
    assert client.retries == 2 and client.timeouts == 3


# --- late replies and crash-mid-op --------------------------------------------


def test_late_reply_after_timeout_is_dropped_not_misdelivered():
    """A reply landing after its call timed out must be discarded; the
    next op's reply correlates to the next op, never the stale one."""
    env, cluster = small_cluster()
    pool = cluster.create_replicated_pool("rbd", pg_num=32, size=2)
    client = cluster.new_client()
    injector = FaultInjector(cluster)
    run(env, client.write_replicated(pool, "warm", b"k" * 256))
    slow = client.compute_placement(pool, "warm")[0]
    fast = next(o for o in cluster.osdmap.up_osds() if o not in
                client.compute_placement(pool, "warm"))
    injector.slow_device(slow, 500.0)

    def scenario(env):
        wr = OsdOp(OpKind.WRITE_DIRECT, pool.pool_id, "late", 0, 4096,
                   data=b"w" * 4096, epoch=cluster.osdmap.epoch)
        first = yield from client.call(f"osd.{slow}", wr, timeout_ns=us(100))
        ping = OsdOp(OpKind.PING, 0, "ping")
        second = yield from client.call(f"osd.{fast}", ping)
        return first, second

    first, second = run(env, scenario(env))
    assert not first.ok and first.status is BlkStatus.TIMEOUT
    assert second.ok and second.op_id != first.op_id  # own reply, not the stale ack
    assert not client._pending  # late write ack was dropped, nothing leaks


def test_crash_mid_write_recovers_with_no_stranded_processes():
    """Crash one replica while a 3-way write is in flight: retries +
    heartbeat-driven remap finish the write; no waiter is left hanging."""
    env, cluster = small_cluster(
        hosts=3,
        op_policy=OpPolicy(timeout_ns=us(800), max_attempts=6),
    )
    pool = cluster.create_replicated_pool("rbd", pg_num=32, size=3)
    client = cluster.new_client()
    cluster.monitor.start_heartbeats(interval_ns=us(300), grace_ns=us(200))
    victim = client.compute_placement(pool, "obj")[0]

    def crash_later(env):
        yield env.timeout(us(10))  # op is mid-flight by now
        cluster.crash_osd(victim)

    env.process(crash_later(env))
    p = env.process(client.write_replicated(pool, "obj", b"d" * 4096, direct=True))
    env.run(until=ms(50))
    assert p.ok, getattr(p, "value", None)
    assert client.retries > 0
    assert not cluster.osdmap.osds[victim].up  # heartbeats saw the crash
    # Nobody stranded: no pending calls, no live handlers on the corpse.
    assert not client._pending
    assert not cluster.daemons[victim]._pending
    assert not cluster.daemons[victim]._handlers
    holders = [d.osd_id for d in cluster.daemons.values()
               if "obj" in d.store and cluster.osdmap.osds[d.osd_id].up]
    assert len(holders) >= 2
    cluster.monitor.stop_heartbeats()


def test_write_replay_absorbed_by_reply_cache():
    """Re-sending an already-applied write (same op id) must ack from the
    reply cache without re-applying — idempotent replay."""
    env, cluster = small_cluster()
    pool = cluster.create_replicated_pool("rbd", pg_num=32, size=2)
    client = cluster.new_client()
    target = client.compute_placement(pool, "obj")[0]
    op = OsdOp(OpKind.WRITE_DIRECT, pool.pool_id, "obj", 0, 512,
               data=b"v" * 512, epoch=cluster.osdmap.epoch)

    def replay(env):
        r1 = yield from client.call(f"osd.{target}", op)
        r2 = yield from client.call(f"osd.{target}", op)  # client replay
        return r1, r2

    r1, r2 = run(env, replay(env))
    assert r1.ok and r2.ok
    assert cluster.daemons[target].replays_absorbed == 1


def test_degraded_ec_read_returns_identical_bytes():
    """Losing one shard holder mid-run degrades the read to a
    decode-from-survivors that is byte-identical to the original."""
    env, cluster = small_cluster(
        op_policy=OpPolicy(timeout_ns=ms(1), max_attempts=4)
    )
    pool = cluster.create_erasure_pool("ec", pg_num=32, k=3, m=2)
    client = cluster.new_client()
    data = bytes((i * 13) % 256 for i in range(6144))
    run(env, client.write_ec(pool, "eobj", data, direct=True))
    victim = client.compute_placement(pool, "eobj")[1]
    cluster.crash_osd(victim)  # silent: acting set still lists it
    got = run(env, client.read_ec(pool, "eobj", len(data), direct=True))
    assert got == data
    assert client.degraded_reads > 0


def test_read_fails_over_to_secondary_on_primary_crash():
    env, cluster = small_cluster(
        op_policy=OpPolicy(timeout_ns=ms(1), max_attempts=4)
    )
    pool = cluster.create_replicated_pool("rbd", pg_num=32, size=3)
    client = cluster.new_client()
    data = b"failover-me" * 40
    run(env, client.write_replicated(pool, "obj", data))
    primary = client.compute_placement(pool, "obj")[0]
    cluster.crash_osd(primary)  # silent: client still tries it first
    assert run(env, client.read_replicated(pool, "obj", 0, len(data))) == data
    assert client.failovers > 0


# --- chaos injector -----------------------------------------------------------


def test_message_faults_deterministic_and_counted():
    env, cluster = small_cluster(seed=11)
    injector = FaultInjector(cluster)
    faults = injector.set_message_faults(drop_p=0.3, duplicate_p=0.2, corrupt_p=0.1)
    fates = [faults.classify() for _ in range(200)]
    assert faults.dropped + faults.duplicated + faults.corrupted == sum(
        1 for f in fates if f is not None
    )
    assert faults.dropped > 0 and faults.duplicated > 0 and faults.corrupted > 0
    env2, cluster2 = small_cluster(seed=11)
    faults2 = FaultInjector(cluster2).set_message_faults(0.3, 0.2, 0.1)
    assert fates == [faults2.classify() for _ in range(200)]
    injector.clear_message_faults()
    assert cluster.fabric.faults is None
    with pytest.raises(StorageError):
        injector.set_message_faults(drop_p=1.5)


def test_lossy_fabric_io_still_completes():
    """With drops, dups, and corruption on the wire, retries and replays
    deliver every byte correctly."""
    env, cluster = small_cluster(
        seed=5,
        op_policy=OpPolicy(timeout_ns=ms(1), max_attempts=8),
        osd_config=OsdConfig(subop_timeout_ns=us(500)),
    )
    pool = cluster.create_replicated_pool("rbd", pg_num=32, size=2)
    client = cluster.new_client()
    FaultInjector(cluster).set_message_faults(drop_p=0.08, duplicate_p=0.05, corrupt_p=0.05)
    blobs = {f"o{i}": bytes((i + j) % 256 for j in range(2048)) for i in range(12)}
    for name, blob in blobs.items():
        run(env, client.write_replicated(pool, name, blob, direct=True))
    for name, blob in blobs.items():
        assert run(env, client.read_replicated(pool, name, 0, len(blob))) == blob
    assert client.retries > 0  # the fault path actually fired


def test_fault_timeline_and_link_flaps():
    env, cluster = small_cluster()
    injector = FaultInjector(cluster)
    applied = []
    injector.schedule([
        (us(500), lambda: applied.append(("flap", env.now))),
        (us(100), lambda: applied.append(("slow", env.now))),
    ])
    env.run(until=us(1000))
    assert applied == [("slow", us(100)), ("flap", us(500))]  # sorted by time
    host = cluster.server_hosts[0]
    injector.flap_link(host, down_ns=us(200), up_ns=us(200), count=2)
    env.run(until=us(1100))
    assert not cluster.network.host(host).uplink.up
    env.run()
    assert cluster.network.host(host).uplink.up
    assert cluster.network.host(host).uplink.flaps == 2
    with pytest.raises(StorageError):
        injector.flap_link(host, down_ns=0, up_ns=1)


def test_errno_reaches_uring_cqe():
    """A backend failure surfaces in the CQE ``res`` as a negative errno,
    not a catch-all -5."""
    from repro.blk.bio import Bio, IoOp, Request

    req = Request(bios=[Bio(IoOp.READ, sector=0, size=4096)])
    req.fail(BlkStatus.TIMEOUT, error="op timed out")
    assert req.status_for(req.bios[0]).errno == ETIMEDOUT
    req2 = Request(bios=[Bio(IoOp.WRITE, sector=0, size=4096)])
    exc = OsdOpError("gone", status=BlkStatus.TRANSPORT, attempts=3)
    req2.fail_from_exc(exc)
    assert req2.status is BlkStatus.TRANSPORT and req2.status.errno == ENOLINK
