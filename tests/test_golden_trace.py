"""Golden-trace determinism harness.

The hot-path optimizations (placement cache, batched uring submit/reap,
vectorized EC, event pooling) are only admissible if they change *no
simulated event*.  These tests lock that down two ways:

* recorded goldens — digests of the fig6 experiment table and a chaos
  crash-replica run, captured on the unoptimized build and committed
  under ``tests/golden/``; any divergence fails here; and
* same-process double runs — the same scenario executed twice in one
  interpreter must produce identical digests (catches leaked state in
  caches, pools, and module-level counters).

If a digest changes *intentionally* (a modeling change, not an
optimization), re-record with ``python -m repro golden --update`` and
say so in the commit message.
"""

from repro.bench import golden
from repro.bench.chaos import SCENARIOS, run_chaos_scenario
from repro.bench.qosbench import BATTERY, run_qos_scenario
from repro.units import ms


def test_golden_files_exist():
    for key in golden.CANONICAL_RUNS:
        assert golden.read_golden(key), f"missing golden for {key!r}"


def test_chaos_smoke_digest_matches_golden():
    assert golden.chaos_smoke_digest() == golden.read_golden("chaos-smoke")


def test_fig6_digest_matches_golden():
    assert golden.fig6_digest() == golden.read_golden("fig6")


def test_chaos_double_run_same_process_is_deterministic():
    """Two runs in one interpreter: pooled events, memoized placements,
    and per-layer request ids must not leak between runs."""
    first = golden.chaos_smoke_digest()
    second = golden.chaos_smoke_digest()
    assert first == second


def test_chaos_digest_depends_on_seed():
    """Sanity check that the digest actually captures run content (a
    constant digest would make the goldens vacuous)."""
    scenario = SCENARIOS[1]
    base = run_chaos_scenario(
        scenario, seed=golden.CHAOS_SEED, nrequests=golden.CHAOS_NREQUESTS
    ).digest
    other = run_chaos_scenario(
        scenario, seed=golden.CHAOS_SEED + 1, nrequests=golden.CHAOS_NREQUESTS
    ).digest
    assert base != other


def test_check_reports_all_canonical_runs():
    ok, lines = golden.check()
    assert ok, "\n".join(lines)
    assert len(lines) == len(golden.CANONICAL_RUNS)


def _qos_battery_digest(qos: bool) -> str:
    return run_qos_scenario(
        BATTERY, seed=3, duration_ns=ms(12), warmup_ns=ms(4), qos=qos
    ).digest


def test_qos_bench_double_run_is_deterministic():
    """Two same-seed QoS battery runs in one interpreter must agree:
    tag clocks, wake timers, and tracker state live per-run."""
    assert _qos_battery_digest(qos=True) == _qos_battery_digest(qos=True)


def test_qos_digest_captures_scheduling():
    """The digest must see the scheduler: the same load with QoS off
    dispatches in different order and phases, so digests differ."""
    assert _qos_battery_digest(qos=True) != _qos_battery_digest(qos=False)


def test_goldens_unchanged_with_qos_merged():
    """Golden neutrality: with QoS left disabled, the canonical runs —
    which exercise the full datapath the tenant tagging threads through
    (bio -> blk-mq -> driver -> RADOS ops) — still match the digests
    recorded before the QoS subsystem existed."""
    assert golden.chaos_smoke_digest() == golden.read_golden("chaos-smoke")
    assert golden.fig6_digest() == golden.read_golden("fig6")
