"""Golden-trace determinism harness.

The hot-path optimizations (placement cache, batched uring submit/reap,
vectorized EC, event pooling) are only admissible if they change *no
simulated event*.  These tests lock that down two ways:

* recorded goldens — digests of the fig6 experiment table and a chaos
  crash-replica run, captured on the unoptimized build and committed
  under ``tests/golden/``; any divergence fails here; and
* same-process double runs — the same scenario executed twice in one
  interpreter must produce identical digests (catches leaked state in
  caches, pools, and module-level counters).

If a digest changes *intentionally* (a modeling change, not an
optimization), re-record with ``python -m repro golden --update`` and
say so in the commit message.
"""

from repro.bench import golden
from repro.bench.chaos import SCENARIOS, run_chaos_scenario


def test_golden_files_exist():
    for key in golden.CANONICAL_RUNS:
        assert golden.read_golden(key), f"missing golden for {key!r}"


def test_chaos_smoke_digest_matches_golden():
    assert golden.chaos_smoke_digest() == golden.read_golden("chaos-smoke")


def test_fig6_digest_matches_golden():
    assert golden.fig6_digest() == golden.read_golden("fig6")


def test_chaos_double_run_same_process_is_deterministic():
    """Two runs in one interpreter: pooled events, memoized placements,
    and per-layer request ids must not leak between runs."""
    first = golden.chaos_smoke_digest()
    second = golden.chaos_smoke_digest()
    assert first == second


def test_chaos_digest_depends_on_seed():
    """Sanity check that the digest actually captures run content (a
    constant digest would make the goldens vacuous)."""
    scenario = SCENARIOS[1]
    base = run_chaos_scenario(
        scenario, seed=golden.CHAOS_SEED, nrequests=golden.CHAOS_NREQUESTS
    ).digest
    other = run_chaos_scenario(
        scenario, seed=golden.CHAOS_SEED + 1, nrequests=golden.CHAOS_NREQUESTS
    ).digest
    assert base != other


def test_check_reports_all_canonical_runs():
    ok, lines = golden.check()
    assert ok, "\n".join(lines)
    assert len(lines) == len(golden.CANONICAL_RUNS)
