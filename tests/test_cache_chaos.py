"""Cache tier under faults: dirty write-back durability and epoch safety.

Two guarantees no performance number excuses breaking:

* dirty write-back data survives an OSD crash — the flush path rides the
  same :class:`OpPolicy` retry/failover machinery as any client write,
  so a crashed primary costs latency, never bytes;
* an OSDMap epoch bump can never expose stale cached data — a property
  test interleaves out-of-band backend writes with ``mark_down`` /
  ``mark_up`` epoch bumps and checks every post-bump read against
  backend truth.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig, CachedImage, CacheMode
from repro.osd import ClusterSpec, FaultInjector, OpPolicy, OsdConfig, RBDImage, build_cluster
from repro.sim import Environment
from repro.units import kib, mib, ms, us


def chaos_image(seed: int = 0):
    """Chaos testbed mirroring the bench: 3 hosts x 4 OSDs, a size-3
    pool (one replica per host), and a retry policy with a real timeout
    so ops sent to a dead primary fail over instead of hanging."""
    env = Environment()
    cluster = build_cluster(
        env,
        ClusterSpec(
            num_server_hosts=3,
            osds_per_host=4,
            osd_config=OsdConfig(subop_timeout_ns=ms(1)),
            op_policy=OpPolicy(timeout_ns=ms(2), max_attempts=6),
            seed=seed,
        ),
    )
    pool = cluster.create_replicated_pool("rbd", pg_num=32, size=3)
    client = cluster.new_client()
    return env, cluster, RBDImage("vm", mib(4), pool, client, object_size=mib(1))


def run(env, gen):
    p = env.process(gen)
    env.run()
    if not p.ok:
        raise p.value
    return p.value


def test_dirty_writeback_survives_primary_crash():
    env, cluster, image = chaos_image()
    cache = CachedImage(
        image,
        CacheConfig(
            mode=CacheMode.WRITE_BACK, line_size=kib(16), capacity_lines=64,
            cleaning="nop", seq_cutoff_bytes=0,
        ),
    )
    injector = FaultInjector(cluster)
    cluster.monitor.start_heartbeats(us(400), us(300))
    victim = image.client.compute_placement(image.pool, image.object_name(0))[0]

    def scenario():
        try:
            # Dirty a batch of hot lines (all inside object 0).
            for i in range(8):
                yield from cache.write(i * kib(16), bytes([0xD0 + i]) * kib(16))
            assert cache.store.dirty_count == 8
            # Chaos timeline: the primary of object 0 dies while the
            # flush's writes are in flight — they must time out, retry,
            # and fail over to the surviving replicas (heartbeats mark
            # the victim down so refreshed placement avoids it).
            injector.schedule([(env.now + us(50), lambda: injector.crash_osd(victim))])
            yield from cache.flush()
        finally:
            # Stop the probe loop or the simulation never drains.
            cluster.monitor.stop_heartbeats()

    run(env, scenario())
    assert cache.store.dirty_count == 0
    assert cache.flushed_lines >= 8
    # The epoch moved under the cache (crash detection bumped the map)
    # and the failover path was actually exercised.
    assert image.client.failovers + image.client.retries > 0
    # Every byte is durable on the surviving replicas: read back through
    # a second, cache-free client.
    verifier = cluster.new_client("verifier")
    check = RBDImage("vm", mib(4), image.pool, verifier, object_size=mib(1))
    for i in range(8):
        got = run(env, check.read(i * kib(16), kib(16)))
        assert got == bytes([0xD0 + i]) * kib(16), f"line {i} lost in failover"


# -- property: epoch bumps never serve stale data ------------------------------------


BLOCK = kib(16)
NBLOCKS = 8  # 128 KiB working set, every block cacheable


@st.composite
def epoch_steps(draw):
    """A short interleaving of cached writes, out-of-band writes (each
    followed by an epoch bump), and cached reads."""
    n = draw(st.integers(min_value=2, max_value=8))
    steps = []
    for _ in range(n):
        kind = draw(st.sampled_from(["cached-write", "external-write", "read"]))
        block = draw(st.integers(min_value=0, max_value=NBLOCKS - 1))
        val = draw(st.integers(min_value=1, max_value=255))
        steps.append((kind, block, val))
    return steps


@given(epoch_steps(), st.integers(min_value=0, max_value=3))
@settings(max_examples=20, deadline=None)
def test_epoch_bump_never_serves_stale_cached_data(steps, bump_osd):
    env, cluster, image = chaos_image()
    cache = CachedImage(
        image,
        CacheConfig(
            mode=CacheMode.WRITE_THROUGH, line_size=BLOCK, capacity_lines=NBLOCKS,
            seq_cutoff_bytes=0,  # force every read through the cache
        ),
    )
    external = RBDImage(
        "vm", mib(4), image.pool, cluster.new_client("external"), object_size=mib(1)
    )
    expected = {}

    def scenario():
        for kind, block, val in steps:
            if kind == "cached-write":
                yield from cache.write(block * BLOCK, bytes([val]) * BLOCK)
                expected[block] = val
            elif kind == "external-write":
                # Backend changes behind the cache's back...
                yield from external.write(block * BLOCK, bytes([val]) * BLOCK)
                expected[block] = val
                # ...but the map epoch moves before the next cached access
                # (device out/in — the same bumps failover refresh makes).
                cluster.osdmap.mark_down(bump_osd)
                cluster.osdmap.mark_up(bump_osd)
            else:
                if block in expected:
                    got = yield from cache.read(block * BLOCK, BLOCK)
                    assert got == bytes([expected[block]]) * BLOCK, (
                        f"stale read of block {block} after epoch bump"
                    )
        # Final sweep: every block the run touched must be current.
        for block, val in expected.items():
            got = yield from cache.read(block * BLOCK, BLOCK)
            assert got == bytes([val]) * BLOCK, f"stale block {block} at end"

    run(env, scenario())
