"""Tests for scrubbing: detection and repair of corrupt replicas/shards."""


from repro.osd import ClusterSpec, build_cluster, shard_object_name
from repro.osd.scrub import Scrubber
from repro.sim import Environment


def make(pool_kind="replicated"):
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(num_server_hosts=2, osds_per_host=4))
    if pool_kind == "replicated":
        pool = cluster.create_replicated_pool("p", pg_num=32, size=3)
    else:
        pool = cluster.create_erasure_pool("p", pg_num=32, k=3, m=2)
    client = cluster.new_client()
    scrubber = Scrubber(env, cluster.monitor)
    return env, cluster, pool, client, scrubber


def run(env, gen):
    p = env.process(gen)
    env.run()
    if not p.ok:
        raise p.value
    return p.value


def holders_of(cluster, name):
    return [d for d in cluster.daemons.values() if name in d.store]


def test_clean_pool_scrubs_clean():
    env, cluster, pool, client, scrubber = make()
    for i in range(5):
        run(env, client.write_replicated(pool, f"o{i}", bytes([i]) * 512))
    report = run(env, scrubber.scrub(pool, deep=True))
    assert report.clean
    assert report.objects_examined == 5


def test_light_scrub_detects_size_mismatch():
    env, cluster, pool, client, scrubber = make()
    run(env, client.write_replicated(pool, "obj", b"x" * 512))
    holders_of(cluster, "obj")[0].store.write("obj", 512, b"extra")
    report = run(env, scrubber.scrub(pool, deep=False))
    assert not report.clean
    assert report.inconsistencies[0].kind == "size-mismatch"


def test_light_scrub_misses_content_corruption():
    env, cluster, pool, client, scrubber = make()
    run(env, client.write_replicated(pool, "obj", b"x" * 512))
    holders_of(cluster, "obj")[0].store.corrupt("obj", 0, b"CORRUPT!")
    assert run(env, scrubber.scrub(pool, deep=False)).clean  # same size
    assert not run(env, scrubber.scrub(pool, deep=True)).clean


def test_deep_scrub_repairs_from_majority():
    env, cluster, pool, client, scrubber = make()
    payload = b"golden-data" * 40
    run(env, client.write_replicated(pool, "obj", payload))
    victim = holders_of(cluster, "obj")[0]
    victim.store.corrupt("obj", 0, b"ROT")
    report = run(env, scrubber.scrub(pool, deep=True, repair=True))
    assert report.repaired == 1
    # All three copies byte-identical again.
    contents = {
        bytes(d.store.read("obj", 0, len(payload))) for d in holders_of(cluster, "obj")
    }
    assert contents == {payload}


def test_deep_scrub_detects_and_repairs_ec_shard():
    env, cluster, pool, client, scrubber = make("erasure")
    payload = b"erasure-coded-payload" * 30
    run(env, client.write_ec(pool, "obj", payload, direct=True))
    # Corrupt one shard in place (same size).
    acting = client.compute_placement(pool, "obj")
    victim = cluster.daemons[acting[1]]
    key = shard_object_name("obj", 1)
    size = victim.store.object_size(key)
    victim.store.corrupt(key, 0, b"\xFF" * min(8, size))
    report = run(env, scrubber.scrub(pool, deep=True, repair=True))
    assert not report.clean
    assert report.repaired == 1
    assert "shard 1" in report.inconsistencies[0].details
    # Object decodes correctly afterwards from any k shards.
    assert run(env, client.read_ec(pool, "obj", len(payload), direct=True)) == payload


def test_ec_scrub_flags_missing_shards():
    env, cluster, pool, client, scrubber = make("erasure")
    run(env, client.write_ec(pool, "obj", b"data" * 50, direct=True))
    # Delete shards until below k.
    deleted = 0
    for daemon in cluster.daemons.values():
        for rank in range(5):
            key = shard_object_name("obj", rank)
            if key in daemon.store and deleted < 3:
                daemon.store.delete(key)
                deleted += 1
    report = run(env, scrubber.scrub(pool, deep=False))
    assert any(i.kind == "missing-copy" for i in report.inconsistencies)


def test_deep_scrub_charges_device_time():
    env, cluster, pool, client, scrubber = make()
    run(env, client.write_replicated(pool, "obj", b"x" * 4096))
    t0 = env.now
    run(env, scrubber.scrub(pool, deep=True))
    assert env.now > t0  # media reads took simulated time


def test_two_replica_tie_repaired_via_stored_checksums():
    """With size=2 a majority vote ties; the stored checksum must still
    identify the rotted copy (the BlueStore mechanism)."""
    env = Environment()
    from repro.osd import ClusterSpec, build_cluster

    cluster = build_cluster(env, ClusterSpec(num_server_hosts=2, osds_per_host=4))
    pool = cluster.create_replicated_pool("p", pg_num=32, size=2)
    client = cluster.new_client()
    scrubber = Scrubber(env, cluster.monitor)
    payload = b"two-replica-data" * 30
    run(env, client.write_replicated(pool, "obj", payload, direct=True))
    victim = holders_of(cluster, "obj")[0]
    victim.store.corrupt("obj", 0, b"XX")
    report = run(env, scrubber.scrub(pool, deep=True, repair=True))
    assert report.repaired == 1
    for d in holders_of(cluster, "obj"):
        assert bytes(d.store.read("obj", 0, len(payload))) == payload
