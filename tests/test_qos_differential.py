"""Differential scheduler tests: FIFO vs mClock on identical arrivals.

The headline property suite: one deterministic arrival trace replayed
through both policies (``tests/qos_harness.py``), with fairness asserted
as exact, reproducible properties — reservation floors, weight-
proportional surplus, limit ceilings, work conservation — plus per-op
queue-wait attribution showing exactly who paid for whom.
"""

from tests.qos_harness import (
    FifoQueue,
    differential,
    open_loop_trace,
    replay,
    wait_diffs,
)
from repro.osd.qos import MClockQueue, QosConfig, QosSpec
from repro.units import ms, us

WORKERS = 4
SERVICE_NS = 10 * us(1)  # 10 us/op => 400k IOPS pool capacity
DURATION = ms(20)
#: Measurement window skips the first 5 ms of tag warmup.
W0, W1 = ms(5), ms(20)

#: The three-profile battery: a reservation-heavy tenant, a weight-heavy
#: tenant, and a limit-capped tenant, each offering 200k IOPS against a
#: 400k pool (1.5x saturated).
BATTERY = QosConfig(tenants={
    "res": QosSpec(reservation_iops=150_000, weight=1),
    "wgt": QosSpec(weight=3),
    "cap": QosSpec(weight=3, limit_iops=50_000),
})
OFFERED = {
    ("client", "res"): 200_000.0,
    ("client", "wgt"): 200_000.0,
    ("client", "cap"): 200_000.0,
}


def battery():
    trace = open_loop_trace(OFFERED, DURATION)
    return differential(BATTERY, trace, WORKERS, SERVICE_NS)


def test_fifo_baseline_is_flow_blind():
    fifo, _ = battery()
    rates = [fifo.flows[k].rate_iops(W0, W1) for k in OFFERED]
    # FIFO splits equally: identical offered load, identical service.
    assert max(rates) - min(rates) < 0.02 * max(rates)


def test_reservation_floor_exact():
    _, mc = battery()
    got = mc.flows[("client", "res")].rate_iops(W0, W1)
    # The 150k floor is met exactly (open-loop arrivals at fixed
    # spacing: the reservation clock dispatches one op per spacing).
    assert got >= 150_000
    # ...and FIFO does not meet it (133k each), so the floor is the
    # scheduler's doing, not slack capacity.
    fifo, _ = battery()
    assert fifo.flows[("client", "res")].rate_iops(W0, W1) < 140_000


def test_limit_ceiling_exact():
    _, mc = battery()
    got = mc.flows[("client", "cap")].rate_iops(W0, W1)
    assert got <= 50_000
    # The cap binds tightly: within one spacing of the ceiling.
    assert got >= 49_000


def test_weight_flow_absorbs_surplus():
    _, mc = battery()
    # Capacity 400k - 150k reserved - 50k capped = 200k surplus; "wgt"
    # offers exactly 200k and, with the dominant weight, gets all of it.
    got = mc.flows[("client", "wgt")].rate_iops(W0, W1)
    assert got >= 0.95 * 200_000


def test_work_conservation():
    fifo, mc = battery()
    # Same trace, same pool: mClock completes at least 95% of FIFO's
    # total work (the limit is the only non-work-conserving knob, and
    # the other tenants' offered load covers what "cap" gives up).
    assert mc.total_dispatched() >= 0.95 * fifo.total_dispatched()


def test_weight_proportional_split_within_10pct():
    # No reservations or limits: two saturating flows at 3:1 weights
    # split the pool 3:1, within 10%.
    config = QosConfig(tenants={
        "heavy": QosSpec(weight=3), "light": QosSpec(weight=1),
    })
    offered = {("client", "heavy"): 300_000.0, ("client", "light"): 300_000.0}
    trace = open_loop_trace(offered, DURATION)
    _, mc = differential(config, trace, WORKERS, SERVICE_NS)
    heavy = mc.flows[("client", "heavy")].rate_iops(W0, W1)
    light = mc.flows[("client", "light")].rate_iops(W0, W1)
    assert abs(heavy / light - 3.0) < 0.3
    # And the pool stays saturated: weights redistribute, never throttle.
    assert heavy + light >= 0.99 * 400_000


def test_per_op_wait_attribution():
    fifo, mc = battery()
    diffs = wait_diffs(fifo, mc)
    assert len(diffs) == mc.total_dispatched()
    by_flow = {}
    for op_id, d in diffs.items():
        flow = mc.per_op[op_id][2]
        by_flow.setdefault(flow, []).append(d)
    mean = {k: sum(v) / len(v) for k, v in by_flow.items()}
    # The reservation and weight tenants gained latency (negative wait
    # diffs) and the capped tenant paid for it — who subsidizes whom is
    # visible per op, not just in aggregate.
    assert mean[("client", "res")] < 0
    assert mean[("client", "wgt")] < 0
    assert mean[("client", "cap")] > 0


def test_replay_is_deterministic():
    t1 = open_loop_trace(OFFERED, DURATION)
    t2 = open_loop_trace(OFFERED, DURATION)
    assert t1 == t2
    r1 = replay(MClockQueue(BATTERY), t1, WORKERS, SERVICE_NS)
    r2 = replay(MClockQueue(BATTERY), t2, WORKERS, SERVICE_NS)
    assert r1.per_op == r2.per_op
    assert {k: v.dispatched for k, v in r1.flows.items()} == {
        k: v.dispatched for k, v in r2.flows.items()
    }
    f1 = replay(FifoQueue(), t1, WORKERS, SERVICE_NS)
    f2 = replay(FifoQueue(), t2, WORKERS, SERVICE_NS)
    assert f1.per_op == f2.per_op


def test_underload_is_invisible():
    # Below capacity, with no limits, mClock must not delay anyone:
    # every op dispatches on arrival under both policies.
    config = QosConfig(tenants={"a": QosSpec(reservation_iops=10_000), "b": QosSpec()})
    offered = {("client", "a"): 50_000.0, ("client", "b"): 50_000.0}
    trace = open_loop_trace(offered, DURATION)
    fifo, mc = differential(config, trace, WORKERS, SERVICE_NS)
    assert all(d == 0 for d in wait_diffs(fifo, mc).values())
    assert all(s.max_wait_ns == 0 for s in mc.flows.values())
