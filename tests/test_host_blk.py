"""Tests for the host cost model and the blk-mq block layer."""

import pytest

from repro.blk import (
    DMQ_CONFIG,
    Bio,
    BlkMqConfig,
    BlockLayer,
    IoOp,
    MqDeadlineScheduler,
    NoneScheduler,
    Request,
    scheduler_factory,
)
from repro.errors import BlockLayerError, SimulationError
from repro.host import HostKernel, SKYLAKE
from repro.sim import Environment
from repro.units import us


class NullDriver:
    """Completes requests after a fixed service time."""

    def __init__(self, env, service_ns=us(10)):
        self.env = env
        self.service_ns = service_ns
        self.seen: list[Request] = []

    def queue_rq(self, request: Request) -> None:
        self.seen.append(request)

        def complete(env):
            yield env.timeout(self.service_ns)
            request.completed_at = env.now
            request.completion.succeed(request)

        self.env.process(complete(self.env), name=f"null.{request.req_id}")


def make_stack(config=None, service_ns=us(10)):
    env = Environment()
    kernel = HostKernel(env, num_cores=8)
    driver = NullDriver(env, service_ns)
    blk = BlockLayer(env, kernel, driver.queue_rq, config)
    return env, kernel, blk, driver


# --- host ------------------------------------------------------------------


def test_cpu_core_accounting():
    env = Environment()
    kernel = HostKernel(env, num_cores=2)

    def proc(env):
        yield from kernel.cpus.core(0).run(1000)

    env.process(proc(env))
    env.run()
    assert kernel.cpus.core(0).busy_ns == 1000
    assert kernel.cpus.total_busy_ns() == 1000


def test_cpu_core_exclusive():
    env = Environment()
    kernel = HostKernel(env, num_cores=1)
    ends = []

    def proc(env):
        yield from kernel.cpus.core(0).run(1000)
        ends.append(env.now)

    env.process(proc(env))
    env.process(proc(env))
    env.run()
    assert ends == [1000, 2000]


def test_cpu_pick_core_affinity():
    env = Environment()
    kernel = HostKernel(env, num_cores=4)
    assert kernel.cpus.pick_core(2).core_id == 2
    ids = {kernel.cpus.pick_core().core_id for _ in range(4)}
    assert ids == {0, 1, 2, 3}  # round robin covers all


def test_cpu_validation():
    env = Environment()
    kernel = HostKernel(env, num_cores=2)
    with pytest.raises(SimulationError):
        kernel.cpus.core(5)

    def bad(env):
        yield from kernel.cpus.core(0).run(-1)

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_host_cost_counters():
    env = Environment()
    kernel = HostKernel(env, num_cores=2)

    def proc(env):
        core = kernel.cpus.core(0)
        yield from kernel.syscall(core)
        yield from kernel.context_switch(core)
        yield from kernel.copy(core, 4096)

    env.process(proc(env))
    env.run()
    assert kernel.syscalls == 1
    assert kernel.context_switches == 1
    assert kernel.bytes_copied == 4096


def test_copy_cost_scales_with_size():
    assert SKYLAKE.copy_ns(4096) < SKYLAKE.copy_ns(131072)
    assert SKYLAKE.copy_ns(0) == 0


# --- bio / request ----------------------------------------------------------------


def test_bio_validation():
    with pytest.raises(BlockLayerError):
        Bio(IoOp.READ, -1, 4096)
    with pytest.raises(BlockLayerError):
        Bio(IoOp.READ, 0, 100)  # not sector aligned
    with pytest.raises(BlockLayerError):
        Bio(IoOp.WRITE, 0, 4096, data=b"short")


def test_bio_geometry():
    bio = Bio(IoOp.READ, 8, 4096)
    assert bio.offset == 4096
    assert bio.end_sector == 16


def test_request_merge():
    r = Request([Bio(IoOp.READ, 0, 4096)])
    nxt = Bio(IoOp.READ, 8, 4096)
    assert r.can_merge(nxt)
    r.merge(nxt)
    assert r.size == 8192
    assert not r.can_merge(Bio(IoOp.WRITE, 16, 4096, data=b"\x00" * 4096))
    with pytest.raises(BlockLayerError):
        r.merge(Bio(IoOp.READ, 100, 4096))


def test_request_mixed_ops_rejected():
    with pytest.raises(BlockLayerError):
        Request([Bio(IoOp.READ, 0, 4096), Bio(IoOp.WRITE, 8, 4096, data=b"\x00" * 4096)])


def test_request_data_concatenation():
    r = Request([Bio(IoOp.WRITE, 0, 512, data=b"a" * 512)])
    r.merge(Bio(IoOp.WRITE, 1, 512, data=b"b" * 512))
    assert r.data() == b"a" * 512 + b"b" * 512


# --- schedulers ----------------------------------------------------------------------


def test_scheduler_factory():
    assert isinstance(scheduler_factory("none"), NoneScheduler)
    assert isinstance(scheduler_factory("mq-deadline"), MqDeadlineScheduler)
    with pytest.raises(BlockLayerError):
        scheduler_factory("bfq")


def test_none_scheduler_fifo():
    s = NoneScheduler()
    r1, r2 = Request([Bio(IoOp.READ, 0, 512)]), Request([Bio(IoOp.READ, 8, 512)])
    s.insert(r1, 0)
    s.insert(r2, 0)
    assert s.next_request(0) is r1
    assert s.next_request(0) is r2
    assert s.next_request(0) is None


def test_mq_deadline_prefers_reads():
    s = MqDeadlineScheduler()
    w = Request([Bio(IoOp.WRITE, 0, 512, data=b"\x00" * 512)])
    r = Request([Bio(IoOp.READ, 8, 512)])
    s.insert(w, 0)
    s.insert(r, 0)
    assert s.next_request(1) is r
    assert s.next_request(1) is w


def test_mq_deadline_write_starvation_bound():
    s = MqDeadlineScheduler(writes_starved=2)
    w = Request([Bio(IoOp.WRITE, 0, 512, data=b"\x00" * 512)])
    reads = [Request([Bio(IoOp.READ, 8 * (i + 1), 512)]) for i in range(5)]
    s.insert(w, 0)
    for r in reads:
        s.insert(r, 0)
    popped = [s.next_request(1) for _ in range(3)]
    assert w in popped  # write dispatched before all reads drain


def test_mq_deadline_expired_write_first():
    s = MqDeadlineScheduler(write_expire_ns=100)
    w = Request([Bio(IoOp.WRITE, 0, 512, data=b"\x00" * 512)])
    r = Request([Bio(IoOp.READ, 8, 512)])
    s.insert(w, 0)
    s.insert(r, 0)
    assert s.next_request(200) is w  # write deadline passed


def test_mq_deadline_validation():
    with pytest.raises(BlockLayerError):
        MqDeadlineScheduler(read_expire_ns=0)


# --- blk-mq -----------------------------------------------------------------------------


def run_bios(env, kernel, blk, bios, core_id=0):
    done = []

    def proc(env):
        core = kernel.cpus.core(core_id)
        reqs = []
        for bio in bios:
            req = yield from blk.submit_bio(core, bio)
            if req not in reqs:
                reqs.append(req)
        blk.flush_plug(core)
        for req in reqs:
            yield req.completion
        done.append(env.now)

    env.process(proc(env))
    env.run()
    return done


def test_blk_mq_completes_requests():
    env, kernel, blk, driver = make_stack()
    run_bios(env, kernel, blk, [Bio(IoOp.READ, 0, 4096)])
    assert len(driver.seen) == 1
    assert driver.seen[0].completed_at > 0
    assert blk.bios_submitted == 1


def test_blk_mq_merges_contiguous_bios():
    env, kernel, blk, driver = make_stack(BlkMqConfig(merge_enabled=True))
    bios = [Bio(IoOp.WRITE, 8 * i, 4096, data=b"\x00" * 4096) for i in range(4)]
    run_bios(env, kernel, blk, bios)
    assert blk.merges >= 1
    assert len(driver.seen) < 4


def test_dmq_never_merges_and_bypasses_elevator():
    env, kernel, blk, driver = make_stack(DMQ_CONFIG)
    bios = [Bio(IoOp.READ, 8 * i, 4096) for i in range(4)]
    run_bios(env, kernel, blk, bios)
    assert blk.merges == 0
    assert len(driver.seen) == 4
    assert isinstance(blk.hctxs[0].scheduler, NoneScheduler)


def test_dmq_submit_cheaper_than_default():
    def submit_cpu(config):
        env, kernel, blk, _ = make_stack(config)
        run_bios(env, kernel, blk, [Bio(IoOp.READ, 0, 4096)])
        return kernel.cpus.total_busy_ns()

    assert submit_cpu(DMQ_CONFIG) < submit_cpu(BlkMqConfig(merge_enabled=False))


def test_tag_exhaustion_backpressure():
    env = Environment()
    kernel = HostKernel(env, num_cores=2)
    driver = NullDriver(env, service_ns=us(100))
    blk = BlockLayer(env, kernel, driver.queue_rq, BlkMqConfig(
        num_hw_queues=1, tags_per_queue=2, scheduler="none", merge_enabled=False))
    bios = [Bio(IoOp.READ, 1000 * i, 4096) for i in range(6)]
    run_bios(env, kernel, blk, bios)
    # All eventually dispatched despite only 2 tags.
    assert len(driver.seen) == 6
    dispatch_times = sorted(r.dispatched_at for r in driver.seen)
    assert dispatch_times[-1] >= us(200)  # third wave waited for tags


def test_per_core_hctx_mapping():
    env, kernel, blk, driver = make_stack(
        BlkMqConfig(num_hw_queues=4, per_core_mapping=True, scheduler="none", merge_enabled=False)
    )
    run_bios(env, kernel, blk, [Bio(IoOp.READ, 0, 4096)], core_id=2)
    assert blk.hctxs[2].dispatched == 1
    assert blk.hctxs[0].dispatched == 0


def test_blk_config_validation():
    env = Environment()
    kernel = HostKernel(env)
    with pytest.raises(BlockLayerError):
        BlockLayer(env, kernel, lambda r: None, BlkMqConfig(num_hw_queues=0))
