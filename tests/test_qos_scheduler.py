"""Multi-tenant QoS unit and cluster-integration tests.

Tag algebra (``MClockQueue``), distributed-tag bookkeeping
(``TenantTracker``), the per-OSD admission gate's interrupt safety, and
the end-to-end wiring: tenant identity surviving retry/failover legs,
recovery routed through its service class, heartbeats on the ``system``
class, and ``client_priority`` turning QoS on.
"""

import pytest

from repro.errors import StorageError
from repro.osd import (
    CLASS_RECOVERY,
    CLASS_SYSTEM,
    ClusterSpec,
    MClockQueue,
    OpPolicy,
    OsdConfig,
    OsdQosScheduler,
    QosConfig,
    QosSpec,
    QosTag,
    RecoveryConfig,
    TenantTracker,
    build_cluster,
)
from repro.osd.qos import PHASE_PRIORITY, PHASE_RESERVATION
from repro.sim import Environment, MetricsRegistry
from repro.units import ms, us

CHAOS_POLICY = OpPolicy(timeout_ns=ms(20), max_attempts=12)
CHAOS_OSD = OsdConfig(subop_timeout_ns=ms(5))


def run(env, gen):
    p = env.process(gen)
    env.run()
    if not p.ok:
        raise p.value
    return p.value


# --- QosSpec validation -------------------------------------------------------------


def test_spec_validation():
    with pytest.raises(StorageError):
        QosSpec(weight=0)
    with pytest.raises(StorageError):
        QosSpec(weight=-1)
    with pytest.raises(StorageError):
        QosSpec(reservation_iops=-5)
    with pytest.raises(StorageError):
        QosSpec(limit_iops=0)
    with pytest.raises(StorageError):
        QosSpec(reservation_iops=2000, limit_iops=1000)
    # dmClock invariant: reservation == limit is the tightest legal pin.
    QosSpec(reservation_iops=1000, limit_iops=1000)


def test_spec_spacings():
    s = QosSpec(reservation_iops=1000, weight=2, limit_iops=4000)
    assert s.r_spacing == 1_000_000
    assert s.p_spacing == 500_000_000
    assert s.l_spacing == 250_000
    assert QosSpec().r_spacing is None
    assert QosSpec().l_spacing is None
    # Absurdly high rates clamp at 1 ns, never 0 (tags must advance).
    assert QosSpec(reservation_iops=1e12).r_spacing == 1


def test_tag_flow_and_derive():
    t = QosTag("alice")
    assert t.flow() == ("client", "alice")
    assert QosTag(svc=CLASS_RECOVERY).flow() == (CLASS_RECOVERY, "")
    # Background classes ignore any tenant string: one flow per class.
    assert QosTag("alice", CLASS_RECOVERY).flow() == (CLASS_RECOVERY, "")
    d = t.derive()
    assert d is not t and d.flow() == t.flow()
    # derive() resets the per-send rho/delta to their defaults.
    t.rho, t.delta = 7, 9
    assert (t.derive().rho, t.derive().delta) == (1, 1)


# --- MClockQueue tag algebra --------------------------------------------------------


def test_first_arrival_is_immediately_eligible():
    q = MClockQueue(QosConfig(tenants={"a": QosSpec(reservation_iops=1000)}))
    q.push("x", ("client", "a"), now=5_000)
    item, key, phase, lag = q.pop(5_000)
    assert item == "x" and key == ("client", "a")
    assert phase == PHASE_RESERVATION and lag == 0


def test_reservation_spacing_paces_dispatch():
    # 1000 IOPS reservation = one reservation credit per ms.
    q = MClockQueue(QosConfig(tenants={"a": QosSpec(reservation_iops=1000)}))
    flow = ("client", "a")
    for i in range(3):
        q.push(i, flow, now=0)
    assert q.pop(0)[0] == 0  # first: tag = now
    got = q.pop(0)
    # Second item's R tag is 1 ms out; at t=0 it can only go in the
    # priority phase (weight 1 default).
    assert got[2] == PHASE_PRIORITY
    item, _key, phase, lag = q.pop(ms(2))
    assert item == 2 and phase == PHASE_RESERVATION


def test_priority_dispatch_backdates_reservation_tags():
    # r_shift: weight-phase work counts toward the reservation, so a
    # flow served early does not later double-dip its floor.
    q = MClockQueue(QosConfig(tenants={"a": QosSpec(reservation_iops=1000)}))
    flow = ("client", "a")
    for i in range(3):
        q.push(i, flow, now=0)
    q.pop(0)  # reservation (tag = now)
    q.pop(0)  # priority -> shifts R tags back one spacing
    # Item 2's raw R tag was 2 ms; after the shift it is effectively
    # 1 ms, so it becomes reservation-eligible a full spacing early.
    item, _key, phase, _lag = q.pop(ms(1))
    assert item == 2 and phase == PHASE_RESERVATION


def test_limit_blocks_and_next_eligible():
    q = MClockQueue(QosConfig(tenants={"a": QosSpec(limit_iops=1000)}))
    flow = ("client", "a")
    q.push(0, flow, now=0)
    q.push(1, flow, now=0)
    assert q.pop(0)[0] == 0  # first: L = now
    assert q.pop(0) is None  # second: L = 1 ms, not eligible yet
    assert q.next_eligible(0) == ms(1)
    assert q.pop(ms(1))[0] == 1
    assert q.next_eligible(ms(1)) is None


def test_reservation_ignores_limit_tag():
    # res == limit pins the flow to exactly its reservation rate; the
    # reservation phase must still fire on schedule.
    q = MClockQueue(QosConfig(tenants={"a": QosSpec(reservation_iops=1000, limit_iops=1000)}))
    flow = ("client", "a")
    q.push(0, flow, now=0)
    q.push(1, flow, now=0)
    q.pop(0)
    item, _key, phase, _lag = q.pop(ms(1))
    assert item == 1 and phase == PHASE_RESERVATION


def test_weight_ratio_orders_priority_phase():
    q = MClockQueue(QosConfig(tenants={
        "heavy": QosSpec(weight=3), "light": QosSpec(weight=1),
    }))
    for i in range(8):
        q.push(("h", i), ("client", "heavy"), now=0)
        q.push(("l", i), ("client", "light"), now=0)
    order = []
    for _ in range(8):
        order.append(q.pop(ms(100))[0][0])
    # 3:1 weights => heavy gets ~3 of every 4 dispatches.
    assert order.count("h") >= 5


def test_arrival_seq_breaks_ties_deterministically():
    q = MClockQueue(QosConfig())
    q.push("first", ("client", "a"), now=0)
    q.push("second", ("client", "b"), now=0)
    assert q.pop(0)[0] == "first"
    assert q.pop(0)[0] == "second"


def test_discard_withdraws_without_refund():
    q = MClockQueue(QosConfig(tenants={"a": QosSpec(limit_iops=1000)}))
    flow = ("client", "a")
    q.push(0, flow, now=0)
    q.push(1, flow, now=0)
    assert len(q) == 2
    assert q.discard(flow, 0)
    assert len(q) == 1
    assert not q.discard(flow, 99)
    # Item 1 keeps its original L tag (1 ms): no refund for the discard.
    assert q.pop(0) is None
    assert q.pop(ms(1))[0] == 1


def test_untagged_ops_share_default_flow():
    q = MClockQueue(QosConfig())
    q.push("x", ("client", ""), now=0)
    assert q.pop(0)[1] == ("client", "")


# --- TenantTracker (distributed tags) -----------------------------------------------


class _FakeOp:
    def __init__(self, tag):
        self.qos = tag


def test_tracker_stamps_completions_per_destination():
    tr = TenantTracker()
    flow_tag = QosTag("a")
    # First send anywhere: no history, rho/delta floor at 1.
    op = _FakeOp(flow_tag.derive())
    tr.stamp(op, "osd.0")
    assert (op.qos.rho, op.qos.delta) == (1, 1)
    # Three completions land: two priority, one reservation.
    tr.account(flow_tag, PHASE_PRIORITY)
    tr.account(flow_tag, PHASE_PRIORITY)
    tr.account(flow_tag, PHASE_RESERVATION)
    op2 = _FakeOp(flow_tag.derive())
    tr.stamp(op2, "osd.0")
    assert op2.qos.delta == 3 and op2.qos.rho == 1
    # A different destination has seen nothing sent yet, so it gets the
    # full completion history.
    op3 = _FakeOp(flow_tag.derive())
    tr.stamp(op3, "osd.1")
    assert op3.qos.delta == 3
    # Re-stamp to osd.0 with no new completions: floors back to 1.
    op4 = _FakeOp(flow_tag.derive())
    tr.stamp(op4, "osd.0")
    assert (op4.qos.rho, op4.qos.delta) == (1, 1)
    assert tr.completions(("client", "a")) == (3, 1)


def test_tracker_ignores_phase_none():
    tr = TenantTracker()
    tag = QosTag("a")
    tr.account(tag, 0)  # synthetic timeout reply: no feedback
    assert tr.completions(("client", "a")) == (0, 0)


# --- admission gate -----------------------------------------------------------------


def test_admission_gate_caps_inflight_and_releases():
    env = Environment()
    sched = OsdQosScheduler(env, 0, capacity=1, config=QosConfig())
    order = []

    def op(name, hold_ns):
        yield from sched.admit(_FakeOp(QosTag(name)))
        order.append(("start", name, env.now))
        yield env.timeout(hold_ns)
        sched.release()
        order.append(("done", name, env.now))

    env.process(op("a", us(10)))
    env.process(op("b", us(10)))
    env.run()
    assert [e[:2] for e in order] == [
        ("start", "a"), ("done", "a"), ("start", "b"), ("done", "b"),
    ]
    assert sched.inflight == 0


def test_interrupted_waiter_does_not_leak_slot():
    # An op killed while queued (OSD crash path) must withdraw its
    # entry; dispatching it anyway would strand an inflight credit.
    env = Environment()
    sched = OsdQosScheduler(env, 0, capacity=1, config=QosConfig())

    def holder():
        yield from sched.admit(_FakeOp(QosTag("a")))
        yield env.timeout(us(50))
        sched.release()

    def victim():
        yield from sched.admit(_FakeOp(QosTag("b")))
        sched.release()

    env.process(holder())
    v = env.process(victim())

    def killer():
        yield env.timeout(us(10))
        v.interrupt(RuntimeError("crash"))

    env.process(killer())
    env.run()
    assert sched.inflight == 0
    assert len(sched.queue) == 0


def test_limit_wake_timer_resumes_blocked_queue():
    env = Environment()
    sched = OsdQosScheduler(
        env, 0, capacity=4,
        config=QosConfig(tenants={"a": QosSpec(limit_iops=1000)}),
    )
    times = []

    def op():
        yield from sched.admit(_FakeOp(QosTag("a")))
        times.append(env.now)
        sched.release()

    for _ in range(3):
        env.process(op())
    env.run()
    # 1000 IOPS limit: dispatches at 0, 1 ms, 2 ms even though all four
    # worker slots were free the whole time.
    assert times == [0, ms(1), ms(2)]


# --- cluster integration ------------------------------------------------------------


def build(pool_kind="replicated", qos=None, **kw):
    env = Environment()
    metrics = MetricsRegistry()
    spec = ClusterSpec(
        num_server_hosts=2, osds_per_host=4,
        op_policy=CHAOS_POLICY, osd_config=CHAOS_OSD, **kw,
    )
    cluster = build_cluster(env, spec, metrics=metrics)
    if pool_kind == "replicated":
        pool = cluster.create_replicated_pool("pool", pg_num=16, size=3)
    else:
        pool = cluster.create_erasure_pool("pool", pg_num=16, k=4, m=2)
    if qos is not None:
        cluster.enable_qos(qos)
    return env, metrics, cluster, pool


def test_tenant_ops_attributed_in_metrics():
    env, metrics, cluster, pool = build(qos=QosConfig())
    client = cluster.new_client()

    def io():
        for i in range(5):
            yield from client.write_replicated(pool, f"o{i}", b"x" * 4096, tenant="alice")

    run(env, io())
    # 5 logical writes = 5 gated primary ops, all alice.  The REP_WRITE
    # fan-out rides the express sub-op lane: already arbitrated (and
    # charged) at the primary's gate, it is not admitted again.
    assert metrics.counter("qos.tenant.alice.ops").value == 5
    assert metrics.counter("qos.tenant.default.ops").value == 0


def test_client_default_tenant_attribute():
    env, metrics, cluster, pool = build(qos=QosConfig())
    client = cluster.new_client()
    client.tenant = "vm7"

    def io():
        yield from client.write_replicated(pool, "o", b"x" * 4096)

    run(env, io())
    assert metrics.counter("qos.tenant.vm7.ops").value == 1


@pytest.mark.parametrize("pool_kind", ["replicated", "ec"])
def test_failover_legs_inherit_tenant_tag(pool_kind):
    """Satellite regression: after the primary dies, the retry/failover
    legs must still carry the originating op's QoS identity — an
    anonymous leg would show up under ``qos.tenant.default``."""
    env, metrics, cluster, pool = build(pool_kind, qos=QosConfig())
    client = cluster.new_client()
    name = "victim-obj"
    data = bytes(range(256)) * 16

    def io():
        if pool_kind == "replicated":
            yield from client.write_replicated(pool, name, data, direct=True, tenant="t1")
        else:
            yield from client.write_ec(pool, name, data, direct=True, tenant="t1")
        primary = [
            o for o in client.compute_placement(pool, name) if o >= 0
        ][0]
        cluster.fail_osd(primary)
        if pool_kind == "replicated":
            got = yield from client.read_replicated(pool, name, 0, len(data), tenant="t1")
        else:
            got = yield from client.read_ec(pool, name, len(data), direct=True, tenant="t1")
        assert bytes(got) == data

    before = metrics.counter("qos.tenant.default.ops").value
    run(env, io())
    assert metrics.counter("qos.tenant.t1.ops").value > 0
    # Every op of the failover read stayed attributed: nothing anonymous.
    assert metrics.counter("qos.tenant.default.ops").value == before


def test_recovery_rides_recovery_service_class():
    """Satellite: ``client_priority`` routes recovery through the QoS
    ``recovery`` class (and auto-enables QoS) instead of polling the
    CPU queue."""
    env = Environment()
    metrics = MetricsRegistry()
    spec = ClusterSpec(
        num_server_hosts=2, osds_per_host=4,
        op_policy=CHAOS_POLICY, osd_config=CHAOS_OSD,
    )
    cluster = build_cluster(env, spec, metrics=metrics)
    pool = cluster.create_replicated_pool("pool", pg_num=16, size=3)
    cluster.enable_recovery(RecoveryConfig(client_priority=True))
    assert cluster.qos is not None  # auto-enabled
    client = cluster.new_client()

    def io():
        for i in range(8):
            yield from client.write_replicated(
                pool, f"o{i}", bytes([i]) * 4096, direct=True, tenant="t"
            )
        victim = next(iter(cluster.osdmap.up_osds()))
        cluster.fail_osd(victim)
        deadline = env.now + ms(500)
        while env.now < deadline and not all(
            pg.state.value in ("active", "recovered")
            for pg in cluster.recovery.pgs.values()
        ):
            yield env.timeout(ms(5))

    run(env, io())
    assert metrics.counter("qos.class.recovery.ops").value > 0


def test_heartbeats_ride_system_class():
    env, metrics, cluster, pool = build(qos=QosConfig())
    cluster.monitor.start_heartbeats(interval_ns=us(500), grace_ns=us(300))

    def tick():
        yield env.timeout(ms(3))
        cluster.monitor.stop_heartbeats()

    run(env, tick())
    assert metrics.counter("qos.class.system.ops").value > 0
    assert metrics.counter("qos.class.system.res_ops").value > 0


def test_attach_after_enable():
    # Clients and OSDs created after enable_qos() are wired on creation.
    env, metrics, cluster, pool = build(qos=QosConfig())
    late_client = cluster.new_client("late")
    assert late_client.qos_tracker is not None
    new_id = cluster.add_osd(cluster.server_hosts[0])
    assert cluster.daemons[new_id].qos is not None


def test_saturating_primaries_do_not_deadlock():
    """Express sub-op lane regression: a primary holds its worker slot
    across the replica round-trip, so with single-thread pools two
    mutually-replicating primaries would wedge the whole cluster if
    REP_WRITE sub-ops had to queue for the same slots."""
    env = Environment()
    metrics = MetricsRegistry()
    spec = ClusterSpec(
        num_server_hosts=2, osds_per_host=2, osd_config=OsdConfig(op_threads=1)
    )
    cluster = build_cluster(env, spec, metrics=metrics)
    pool = cluster.create_replicated_pool("pool", pg_num=16, size=3)
    cluster.enable_qos(QosConfig())
    client = cluster.new_client()
    done = {"n": 0}

    def writer(w):
        for i in range(6):
            yield from client.write_replicated(
                pool, f"w{w}.o{i}", b"x" * 4096, tenant=f"t{w % 4}"
            )
            done["n"] += 1

    procs = [env.process(writer(w), name=f"w{w}") for w in range(12)]
    env.run()
    for p in procs:
        if not p.ok:
            raise p.value
    assert done["n"] == 72


def test_qos_off_means_no_schedulers():
    env, metrics, cluster, pool = build()
    assert cluster.qos is None
    assert all(d.qos is None for d in cluster.daemons.values())
    client = cluster.new_client()
    assert client.qos_tracker is None

    def io():
        yield from client.write_replicated(pool, "o", b"x" * 4096)

    run(env, io())
    assert metrics.counter("qos.tenant.default.ops").value == 0
