"""Property tests for the client-side epoch-keyed placement cache.

The cache on :class:`repro.osd.client.RadosClient` memoizes the full
object -> PG -> acting-set path per OSDMap epoch.  Its contract:

* a cached answer is always identical to a freshly computed one against
  the current map (over random maps, pools, and object names);
* any epoch bump — device out/in, as driven by the OpPolicy failover
  refresh — invalidates every entry, so a stale acting set is never
  served; and
* hit/miss counters in the metrics registry reflect reality.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crush import PlacementEngine, build_flat_cluster
from repro.net.stack import KERNEL_TCP
from repro.net.topology import Network
from repro.osd.client import RadosClient
from repro.osd.fabric import Fabric
from repro.osd.osdmap import OSDMap
from repro.sim import Environment, MetricsRegistry


def make_client(num_osds, pg_num, size, metrics=None):
    env = Environment()
    net = Network(env)
    net.add_host("h0")
    fabric = Fabric(env, net)
    fabric.register("c0", "h0", KERNEL_TCP)
    cmap, root = build_flat_cluster(num_osds)
    osdmap = OSDMap(cmap)
    for i in range(num_osds):
        osdmap.register_osd(i, "h0")
    pool = osdmap.create_replicated_pool("p", pg_num, size, root)
    client = RadosClient(env, fabric, osdmap, "c0", metrics=metrics)
    return client, osdmap, pool


def fresh_placement(osdmap, pool, name):
    """Ground truth: a brand-new engine with no cache of any kind."""
    _pg, acting = PlacementEngine(osdmap.crush).object_to_osds(
        pool.pool_id, name, pool.pg_num, pool.rule, pool.size
    )
    # The client returns an immutable tuple (its cached entry must not
    # alias caller-visible state); compare values in the same shape.
    return tuple(acting)


@st.composite
def cluster_and_objects(draw):
    num_osds = draw(st.integers(min_value=4, max_value=12))
    pg_num = draw(st.sampled_from([8, 16, 32]))
    size = draw(st.integers(min_value=2, max_value=3))
    names = draw(
        st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=33, max_codepoint=126),
                min_size=1,
                max_size=12,
            ),
            min_size=1,
            max_size=8,
        )
    )
    return num_osds, pg_num, size, names


@given(cluster_and_objects())
@settings(max_examples=25, deadline=None)
def test_cached_placement_equals_fresh_computation(case):
    num_osds, pg_num, size, names = case
    client, osdmap, pool = make_client(num_osds, pg_num, size)
    for name in names:
        first = client.compute_placement(pool, name)
        again = client.compute_placement(pool, name)  # cache hit
        assert again == first
        assert not client.last_was_miss
        assert first == fresh_placement(osdmap, pool, name)


@given(cluster_and_objects(), st.data())
@settings(max_examples=25, deadline=None)
def test_epoch_bump_never_serves_stale_placement(case, data):
    """Interleave queries with OSD outs/ins (the same map mutations the
    OpPolicy failover refresh reacts to): after every bump the cache
    answer must match a fresh engine against the *current* map, and the
    client's cache epoch must track the map epoch."""
    num_osds, pg_num, size, names = case
    client, osdmap, pool = make_client(num_osds, pg_num, size)
    for name in names:
        client.compute_placement(pool, name)  # warm the cache
    downed = []
    steps = data.draw(st.integers(min_value=1, max_value=4))
    for _ in range(steps):
        can_down = len(downed) < num_osds - size
        if downed and (not can_down or data.draw(st.booleans())):
            osdmap.mark_up(downed.pop())
        elif can_down:
            osd = data.draw(
                st.sampled_from([i for i in range(num_osds) if i not in downed])
            )
            osdmap.mark_down(osd)
            downed.append(osd)
        for name in names:
            acting = client.compute_placement(pool, name)
            assert acting == fresh_placement(osdmap, pool, name)
            assert client._placement_epoch == osdmap.epoch
        for name in names:  # repeat queries inside the epoch are hits
            client.compute_placement(pool, name)
            assert not client.last_was_miss


def test_hit_miss_counters_track_cache_behavior():
    metrics = MetricsRegistry()
    client, osdmap, pool = make_client(8, 16, 3, metrics=metrics)
    hits = metrics.counter("client.placement_cache.hits")
    misses = metrics.counter("client.placement_cache.misses")
    names = [f"obj-{i}" for i in range(5)]
    for name in names:
        client.compute_placement(pool, name)
    assert (hits.value, misses.value) == (0, 5)
    for name in names:
        client.compute_placement(pool, name)
    assert (hits.value, misses.value) == (5, 5)
    osdmap.mark_down(0)  # epoch bump clears everything
    for name in names:
        client.compute_placement(pool, name)
    assert (hits.value, misses.value) == (5, 10)


def test_cache_key_separates_pools():
    client, osdmap, pool_a = make_client(8, 16, 3)
    cmap_root = osdmap.crush.roots()[0]
    pool_b = osdmap.create_replicated_pool("q", 8, 2, cmap_root)
    a = client.compute_placement(pool_a, "same-name")
    b = client.compute_placement(pool_b, "same-name")
    assert len(a) == 3 and len(b) == 2
    # Both entries live side by side and hit independently.
    assert client.compute_placement(pool_a, "same-name") == a
    assert client.compute_placement(pool_b, "same-name") == b
    assert not client.last_was_miss
