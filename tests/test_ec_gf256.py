"""Field-axiom and kernel tests for GF(2^8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import (
    gf_add,
    gf_div,
    gf_inv,
    gf_matmul,
    gf_mul,
    gf_mul_add_array,
    gf_mul_array,
    gf_pow,
)
from repro.errors import ErasureCodingError

ELEM = st.integers(min_value=0, max_value=255)
NONZERO = st.integers(min_value=1, max_value=255)


@given(ELEM, ELEM)
def test_add_commutative(a, b):
    assert gf_add(a, b) == gf_add(b, a)


@given(ELEM)
def test_add_self_inverse(a):
    assert gf_add(a, a) == 0


@given(ELEM, ELEM)
def test_mul_commutative(a, b):
    assert gf_mul(a, b) == gf_mul(b, a)


@given(ELEM, ELEM, ELEM)
def test_mul_associative(a, b, c):
    assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))


@given(ELEM, ELEM, ELEM)
def test_distributive(a, b, c):
    assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))


@given(ELEM)
def test_mul_identity(a):
    assert gf_mul(a, 1) == a


@given(ELEM)
def test_mul_zero(a):
    assert gf_mul(a, 0) == 0


@given(NONZERO)
def test_inverse_roundtrip(a):
    assert gf_mul(a, gf_inv(a)) == 1


@given(ELEM, NONZERO)
def test_div_is_mul_by_inverse(a, b):
    assert gf_div(a, b) == gf_mul(a, gf_inv(b))


@given(ELEM, NONZERO)
def test_div_roundtrip(a, b):
    assert gf_mul(gf_div(a, b), b) == a


def test_div_by_zero_raises():
    with pytest.raises(ErasureCodingError):
        gf_div(5, 0)
    with pytest.raises(ErasureCodingError):
        gf_inv(0)


@given(NONZERO, st.integers(min_value=0, max_value=20))
def test_pow_matches_repeated_mul(a, n):
    expected = 1
    for _ in range(n):
        expected = gf_mul(expected, a)
    assert gf_pow(a, n) == expected


def test_pow_zero_cases():
    assert gf_pow(0, 0) == 1
    assert gf_pow(0, 5) == 0
    with pytest.raises(ErasureCodingError):
        gf_pow(0, -1)


@given(NONZERO)
def test_pow_negative_is_inverse_power(a):
    assert gf_pow(a, -1) == gf_inv(a)


def test_generator_has_full_order():
    # 2 generates the multiplicative group: 255 distinct powers.
    seen = {gf_pow(2, i) for i in range(255)}
    assert len(seen) == 255
    assert 0 not in seen


# --- vectorized kernels ------------------------------------------------------


@given(ELEM, st.binary(min_size=1, max_size=64))
@settings(max_examples=60)
def test_mul_array_matches_scalar(scalar, data):
    arr = np.frombuffer(data, dtype=np.uint8)
    vec = gf_mul_array(scalar, arr)
    for i, byte in enumerate(arr):
        assert vec[i] == gf_mul(scalar, int(byte))


def test_mul_array_zero_scalar():
    arr = np.arange(16, dtype=np.uint8)
    assert not gf_mul_array(0, arr).any()


def test_mul_array_one_is_copy():
    arr = np.arange(16, dtype=np.uint8)
    out = gf_mul_array(1, arr)
    assert np.array_equal(out, arr)
    out[0] = 99
    assert arr[0] == 0  # copy, not view


def test_mul_add_array_accumulates():
    acc = np.zeros(8, dtype=np.uint8)
    data = np.arange(8, dtype=np.uint8)
    gf_mul_add_array(acc, 3, data)
    gf_mul_add_array(acc, 3, data)
    assert not acc.any()  # adding twice cancels in GF(2^8)


def test_matmul_identity():
    data = np.arange(32, dtype=np.uint8).reshape(4, 8)
    out = gf_matmul(np.eye(4, dtype=np.uint8), data)
    assert np.array_equal(out, data)


def test_matmul_shape_validation():
    with pytest.raises(ErasureCodingError):
        gf_matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((4, 8), dtype=np.uint8))
    with pytest.raises(ErasureCodingError):
        gf_matmul(np.zeros(3, dtype=np.uint8), np.zeros((3, 8), dtype=np.uint8))


def test_matmul_linearity():
    rng = np.random.default_rng(0)
    mat = rng.integers(0, 256, (3, 5)).astype(np.uint8)
    d1 = rng.integers(0, 256, (5, 16)).astype(np.uint8)
    d2 = rng.integers(0, 256, (5, 16)).astype(np.uint8)
    lhs = gf_matmul(mat, np.bitwise_xor(d1, d2))
    rhs = np.bitwise_xor(gf_matmul(mat, d1), gf_matmul(mat, d2))
    assert np.array_equal(lhs, rhs)
