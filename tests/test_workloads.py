"""Tests for the fio, OLAP, and OLTP workload generators."""

import pytest

from repro.blk import IoOp
from repro.errors import WorkloadError
from repro.sim import RngRegistry
from repro.units import kib, mib
from repro.workloads import FioJob, OlapWorkload, OltpWorkload, paper_job


def rng():
    return RngRegistry(7).stream("wl")


# --- fio ---------------------------------------------------------------------


def test_fio_validation():
    with pytest.raises(WorkloadError):
        FioJob("j", "randwrite", bs=100)
    with pytest.raises(WorkloadError):
        FioJob("j", "scan")
    with pytest.raises(WorkloadError):
        FioJob("j", "read", size=kib(2), bs=kib(4))
    with pytest.raises(WorkloadError):
        FioJob("j", "read", iodepth=0)
    with pytest.raises(WorkloadError):
        FioJob("j", "randrw", rwmixread=1.5)


def test_fio_sequential_pattern():
    job = FioJob("j", "read", bs=kib(4), nrequests=10, size=kib(64))
    bios = job.make_bios(rng())
    assert [b.offset for b in bios] == [i * kib(4) for i in range(10)]
    assert all(b.op == IoOp.READ for b in bios)
    assert all(b.sequential for b in bios)


def test_fio_sequential_wraps_working_set():
    job = FioJob("j", "read", bs=kib(4), nrequests=20, size=kib(16))
    bios = job.make_bios(rng())
    assert all(b.offset < kib(16) for b in bios)


def test_fio_random_pattern_within_bounds():
    job = FioJob("j", "randwrite", bs=kib(4), nrequests=50, size=kib(64))
    bios = job.make_bios(rng())
    offsets = {b.offset for b in bios}
    assert len(offsets) > 5  # actually random
    assert all(off % kib(4) == 0 and off < kib(64) for off in offsets)
    assert all(not b.sequential for b in bios)
    assert all(b.data is not None and len(b.data) == kib(4) for b in bios)


def test_fio_randrw_mix():
    job = FioJob("j", "randrw", bs=kib(4), nrequests=200, size=mib(1), rwmixread=0.7)
    bios = job.make_bios(rng())
    reads = sum(1 for b in bios if b.op == IoOp.READ)
    assert 0.55 < reads / 200 < 0.85


def test_fio_deterministic_given_seed():
    job = FioJob("j", "randread", bs=kib(4), nrequests=30, size=mib(1))
    a = [b.offset for b in job.make_bios(RngRegistry(1).stream("x"))]
    b = [b.offset for b in job.make_bios(RngRegistry(1).stream("x"))]
    assert a == b


def test_paper_job_defaults():
    job = paper_job("randwrite", kib(8))
    assert job.bs == kib(8)
    assert job.iodepth == 4


# --- olap ---------------------------------------------------------------------


def test_olap_scan_bios_sequential():
    wl = OlapWorkload(table_bytes=mib(2), scan_block=kib(512), num_scans=2)
    bios = wl.scan_bios()
    assert len(bios) == 8  # 4 blocks x 2 scans
    assert all(b.op == IoOp.READ and b.sequential for b in bios)
    assert bios[0].offset == 0 and bios[3].offset == mib(2) - kib(512)


def test_olap_load_bios_after_table():
    wl = OlapWorkload(table_bytes=mib(2), load_bytes=mib(1), load_block=kib(512))
    bios = wl.load_bios()
    assert len(bios) == 2
    assert bios[0].offset == mib(2)
    assert all(b.op == IoOp.WRITE for b in bios)


def test_olap_cpu_accounting():
    wl = OlapWorkload(table_bytes=mib(2), scan_block=kib(512), num_scans=1)
    assert wl.total_cpu_ns == 4 * wl.cpu_per_block_ns
    assert wl.footprint_bytes == wl.table_bytes + wl.load_bytes


def test_olap_validation():
    with pytest.raises(WorkloadError):
        OlapWorkload(scan_block=100)
    with pytest.raises(WorkloadError):
        OlapWorkload(iodepth=0)


# --- oltp ----------------------------------------------------------------------


def test_oltp_transactions_shape():
    wl = OltpWorkload(transactions=5, reads_per_txn=3, writes_per_txn=2)
    txns = wl.transaction_bios(rng())
    assert len(txns) == 5
    for txn in txns:
        assert sum(1 for b in txn if b.op == IoOp.READ) == 3
        assert sum(1 for b in txn if b.op == IoOp.WRITE) == 2
    assert wl.total_ios == 25


def test_oltp_pages_within_database():
    wl = OltpWorkload(database_bytes=mib(1), page_size=kib(8), transactions=10)
    for txn in wl.transaction_bios(rng()):
        for bio in txn:
            assert bio.offset + bio.size <= mib(1)


def test_oltp_validation():
    with pytest.raises(WorkloadError):
        OltpWorkload(page_size=100)
    with pytest.raises(WorkloadError):
        OltpWorkload(database_bytes=kib(4), page_size=kib(8))
    with pytest.raises(WorkloadError):
        OltpWorkload(transactions=0)


# --- trace replay -----------------------------------------------------------


def test_parse_trace_roundtrip():
    from repro.workloads import dump_trace, parse_trace

    text = """# captured workload
R 0 4096
R 4096 4096
W 8192 8192
"""
    bios = parse_trace(text.splitlines())
    assert len(bios) == 3
    assert bios[0].op == IoOp.READ and bios[0].offset == 0
    assert not bios[0].sequential and bios[1].sequential  # continuation detected
    assert bios[2].op == IoOp.WRITE and bios[2].data == b"\x00" * 8192
    assert parse_trace(dump_trace(bios).splitlines()) is not None


def test_parse_trace_word_ops_case_insensitive():
    from repro.workloads import parse_trace

    bios = parse_trace(["read 0 512", "WRITE 512 512"])
    assert bios[0].op == IoOp.READ and bios[1].op == IoOp.WRITE


def test_parse_trace_errors_carry_line_numbers():
    from repro.workloads import parse_trace

    with pytest.raises(WorkloadError, match="line 1"):
        parse_trace(["garbage"])
    with pytest.raises(WorkloadError, match="line 2"):
        parse_trace(["R 0 512", "R 100 512"])  # unaligned offset
    with pytest.raises(WorkloadError, match="line 1"):
        parse_trace(["Q 0 512"])
    with pytest.raises(WorkloadError, match="line 1"):
        parse_trace(["R zero 512"])
    with pytest.raises(WorkloadError):
        parse_trace(["# only comments"])


def test_load_trace_missing_file(tmp_path):
    from repro.workloads import load_trace

    with pytest.raises(WorkloadError):
        load_trace(tmp_path / "nope.trace")


def test_trace_replay_through_framework(tmp_path):
    from repro.deliba import DELIBAK, build_framework
    from repro.workloads import load_trace

    trace = tmp_path / "wl.trace"
    trace.write_text("W 0 4096\nW 4096 4096\nR 0 4096\n")
    fw = build_framework(DELIBAK)
    bios = load_trace(trace)
    proc = fw.env.process(fw.engine.run(bios, 2))
    fw.env.run()
    assert proc.value.ios == 3
