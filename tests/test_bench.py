"""Tests for the benchmark harness (fast experiments + formatting only;
the full figure sweeps run under benchmarks/)."""

import pytest

from repro.bench import ExperimentResult, exp_power, exp_table3, format_table, paper_data, ratio_note
from repro.bench.ablations import ALL_ABLATIONS
from repro.bench.experiments import _standalone_invocation_us
from repro.cli import EXPERIMENTS


def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 2.5], ["xyz", 100.123]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5
    # Columns align: separator length equals header length.
    assert len(lines[2]) == len(lines[1])


def test_ratio_note():
    note = ratio_note(110.0, 100.0)
    assert "paper 100.0" in note and "+10%" in note
    assert ratio_note(5.0, 0.0) == "5.00"


def test_experiment_result_render():
    res = ExperimentResult("x", "title", ["h1"], [[1]], notes="note")
    out = res.render()
    assert "== x: title ==" in out and "note" in out


def test_exp_table3_matches_paper_lut_counts():
    res = exp_table3()
    rows = {r[0]: r for r in res.rows}
    for module, paper_row in paper_data.TABLE3_STATIC.items():
        assert rows[module][2] == paper_row[0]


def test_exp_power_scenarios_ordered():
    res = exp_power()
    assert res.rows[0][1] > res.rows[1][1]  # no-PR draws more than with-PR


@pytest.mark.parametrize("kernel", sorted(paper_data.TABLE1))
def test_standalone_invocation_tracks_paper(kernel):
    measured = _standalone_invocation_us(kernel)
    paper = paper_data.TABLE1[kernel][4]
    assert abs(measured - paper) / paper < 0.25


def test_cli_experiment_registry_complete():
    # Every paper artifact reachable from the CLI.
    assert {"fig3", "fig4", "fig6", "fig7", "fig8", "fig9",
            "table1", "table2", "table3", "power", "realworld", "headline"} <= set(EXPERIMENTS)


def test_ablation_registry():
    assert set(ALL_ABLATIONS) == {
        "dmq", "batching", "instances", "rtl-vs-hls", "media", "offload", "polling",
    }


def test_paper_data_consistency():
    # Reference tables agree with the spec-encoded values.
    from repro.fpga import KERNEL_SPECS

    for kernel, row in paper_data.TABLE1.items():
        spec = KERNEL_SPECS[kernel]
        assert spec.sw_exec_ns == row[0] * 1000
        assert spec.cycles == row[2]
        assert spec.sloc_verilog == row[6]


def test_export_csv_roundtrip(tmp_path):
    import csv

    from repro.bench import export_all, export_csv

    res = ExperimentResult("expx", "t", ["a", "b"], [[1, "x"], [2.5, "y"]])
    path = export_csv(res, tmp_path / "out.csv")
    with path.open() as fh:
        rows = list(csv.reader(fh))
    assert rows == [["a", "b"], ["1", "x"], ["2.5", "y"]]
    paths = export_all([res], tmp_path / "sub")
    assert paths[0].name == "expx.csv" and paths[0].exists()


def test_export_csv_requires_headers(tmp_path):
    from repro.bench import export_csv
    from repro.errors import BenchmarkError

    with pytest.raises(BenchmarkError):
        export_csv(ExperimentResult("e", "t", []), tmp_path / "x.csv")


def test_sweep_spec_validation():
    from repro.bench import SweepSpec
    from repro.errors import BenchmarkError

    with pytest.raises(BenchmarkError):
        SweepSpec(frameworks=["nope"])
    with pytest.raises(BenchmarkError):
        SweepSpec(rw_modes=[])
    assert SweepSpec().cells == 16


def test_run_sweep_small_grid():
    from repro.bench import SweepSpec, run_sweep
    from repro.units import kib

    spec = SweepSpec(
        frameworks=["delibak"], rw_modes=["randread"], block_sizes=[kib(4)],
        iodepths=[1, 4], nrequests=20,
    )
    result = run_sweep(spec)
    assert len(result.rows) == 2
    d1, d4 = result.rows
    assert d4[7] > d1[7]  # deeper queue -> more KIOPS
