"""Power-loss fault class: status plumbing, cluster power cycling, and
log-based delta recovery (vs. unconditional full backfill)."""

import pytest

from repro import errnos
from repro.errors import StorageError
from repro.osd import (
    ClusterSpec,
    DurabilityConfig,
    FaultInjector,
    OpPolicy,
    RecoveryConfig,
    Scrubber,
    build_cluster,
)
from repro.sim import Environment
from repro.sim.metrics import MetricsRegistry
from repro.status import BlkStatus, worst_status
from repro.units import ms


def make(durable=True, seed=0, recovery=False):
    env = Environment()
    spec = ClusterSpec(
        num_server_hosts=2,
        osds_per_host=3,
        op_policy=OpPolicy(timeout_ns=ms(2), max_attempts=8),
        durability=DurabilityConfig() if durable else None,
        seed=seed,
    )
    cluster = build_cluster(env, spec, metrics=MetricsRegistry())
    pool = cluster.create_replicated_pool("p", pg_num=16, size=3)
    manager = cluster.enable_recovery(RecoveryConfig()) if recovery else None
    client = cluster.new_client()
    return env, cluster, pool, client, manager


def run(env, gen):
    p = env.process(gen)
    env.run()
    if not p.ok:
        raise p.value
    return p.value


# -- kernel-style status mapping ----------------------------------------------


def test_again_status_maps_to_eagain():
    assert BlkStatus.AGAIN.value == "again"
    assert BlkStatus.AGAIN.errno == errnos.EAGAIN
    assert errnos.EAGAIN == 11
    assert errnos.ERRNO_NAMES[errnos.EAGAIN] == "EAGAIN"


def test_again_severity_is_retryable_tier():
    # Worse than a medium error, milder than timeout/transport/ioerr.
    assert worst_status([BlkStatus.OK, BlkStatus.AGAIN]) is BlkStatus.AGAIN
    assert worst_status([BlkStatus.AGAIN, BlkStatus.MEDIUM]) is BlkStatus.AGAIN
    assert worst_status([BlkStatus.AGAIN, BlkStatus.TIMEOUT]) is BlkStatus.TIMEOUT
    assert worst_status([BlkStatus.AGAIN, BlkStatus.TRANSPORT]) is BlkStatus.TRANSPORT
    assert worst_status([BlkStatus.AGAIN, BlkStatus.IOERR]) is BlkStatus.IOERR


# -- cluster power cycling ----------------------------------------------------


def test_power_cycle_preserves_acked_writes():
    env, cluster, pool, client, _ = make()
    payload = {f"o{i}": bytes([i + 1]) * 4096 for i in range(8)}
    for name, data in payload.items():
        run(env, client.write_replicated(pool, name, data, direct=True))
    victim = client.compute_placement(pool, "o0")[0]
    cluster.power_loss_osd(victim)
    stats = cluster.power_on_osd(victim)
    assert cluster.daemons[victim].wal.replays == 1
    assert stats.objects_recovered > 0
    for name, data in payload.items():
        got = run(env, client.read_replicated(pool, name, 0, len(data)))
        assert got == data
    # Every surviving store key passes its lazy-checksum verify.
    for daemon in cluster.daemons.values():
        for key in daemon.store.object_names():
            assert daemon.store.verify(key)


def test_power_cycle_end_to_end_with_recovery_and_scrub():
    env, cluster, pool, client, manager = make(recovery=True)
    payload = {f"o{i}": bytes([i + 7]) * 4096 for i in range(10)}

    def main():
        for name, data in payload.items():
            yield from client.write_replicated(pool, name, data, direct=True)
        victim = client.compute_placement(pool, "o0")[0]
        cluster.power_loss_osd(victim)
        cluster.osdmap.mark_down(victim)
        # Writes land on the survivors while the victim is dark.
        yield from client.write_replicated(pool, "during", b"D" * 4096, direct=True)
        yield from manager.wait_converged()
        cluster.power_on_osd(victim)
        yield from manager.wait_converged()
        for name, data in list(payload.items()) + [("during", b"D" * 4096)]:
            got = yield from client.read_replicated(pool, name, 0, len(data))
            assert got == data
        report = yield from Scrubber(env, cluster.monitor).scrub(pool, deep=True)
        assert report.clean

    run(env, main())


def test_delta_recovery_ships_only_missed_ops():
    # Sharp version of the bench assertion: nothing written during the
    # outage => the WAL-replaying OSD needs zero pushed bytes, while the
    # wipe path re-backfills everything it ever held.
    env, cluster, pool, client, manager = make(recovery=True)
    metrics = cluster.metrics
    for i in range(8):
        run(env, client.write_replicated(pool, f"o{i}", bytes([i]) * 4096, direct=True))
    victim = client.compute_placement(pool, "o0")[0]

    def cycle():
        cluster.power_loss_osd(victim)
        cluster.osdmap.mark_down(victim)
        yield from manager.wait_converged()
        before = metrics.counter("recovery.bytes_pushed").value
        cluster.power_on_osd(victim)
        yield from manager.wait_converged()
        return metrics.counter("recovery.bytes_pushed").value - before

    delta_bytes = run(env, cycle())
    assert delta_bytes == 0, f"idle outage still pushed {delta_bytes} bytes"

    # Same schedule through the wipe path: bytes must move.
    env2, cluster2, pool2, client2, manager2 = make(durable=False, recovery=True)
    for i in range(8):
        run(env2, client2.write_replicated(pool2, f"o{i}", bytes([i]) * 4096, direct=True))
    victim2 = client2.compute_placement(pool2, "o0")[0]

    def wipe_cycle():
        cluster2.fail_osd(victim2)
        yield from manager2.wait_converged()
        before = cluster2.metrics.counter("recovery.bytes_pushed").value
        cluster2.monitor.revive_osd(victim2)
        yield from manager2.wait_converged()
        return cluster2.metrics.counter("recovery.bytes_pushed").value - before

    full_bytes = run(env2, wipe_cycle())
    assert full_bytes > 0


def test_client_counts_power_loss_retries():
    env, cluster, pool, client, _ = make()
    run(env, client.write_replicated(pool, "obj", b"x" * 4096, direct=True))
    victim = client.compute_placement(pool, "obj")[0]

    def main():
        cluster.power_loss_osd(victim)
        # The op bounces off the dark primary with AGAIN, then retries.
        yield from client.write_replicated(pool, "obj", b"y" * 4096, direct=True)

    def revive():
        yield env.timeout(ms(4))
        cluster.power_on_osd(victim)

    p1 = env.process(main())
    env.process(revive())
    env.run()
    if not p1.ok:
        raise p1.value
    assert client.power_loss_retries > 0


# -- injector and monitor integration -----------------------------------------


def test_injector_power_loss_and_restore():
    env, cluster, pool, client, _ = make()
    run(env, client.write_replicated(pool, "obj", b"z" * 4096, direct=True))
    injector = FaultInjector(cluster)
    victim = client.compute_placement(pool, "obj")[0]
    injector.power_loss(victim)
    assert victim in injector.powered_off
    assert injector.active_faults == 1
    stats = injector.restore_power(victim)
    assert stats.objects_recovered >= 1
    assert injector.powered_off == []
    assert injector.active_faults == 0


def test_restore_power_without_loss_raises():
    env, cluster, pool, client, _ = make()
    injector = FaultInjector(cluster)
    with pytest.raises(StorageError):
        injector.restore_power(0)


def test_power_loss_requires_durability():
    env, cluster, pool, client, _ = make(durable=False)
    with pytest.raises(StorageError):
        cluster.power_loss_osd(0)


def test_monitor_revive_uses_wal_replay_for_durable_osds():
    env, cluster, pool, client, _ = make()
    run(env, client.write_replicated(pool, "obj", b"m" * 4096, direct=True))
    victim = client.compute_placement(pool, "obj")[0]
    assert "obj" in cluster.daemons[victim].store
    cluster.power_loss_osd(victim)
    cluster.osdmap.mark_down(victim)
    cluster.monitor.revive_osd(victim)
    # Durable branch: the store was rebuilt from the WAL, not wiped.
    assert "obj" in cluster.daemons[victim].store
    assert cluster.daemons[victim].wal.replays == 1
