"""Unit tests for Resource and Semaphore."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Resource, Semaphore


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_resource_serializes_access():
    env = Environment()
    res = Resource(env, capacity=1)
    spans = []

    def worker(env, wid):
        req = res.request()
        yield req
        start = env.now
        yield env.timeout(10)
        res.release(req)
        spans.append((wid, start, env.now))

    for wid in range(3):
        env.process(worker(env, wid))
    env.run()
    assert spans == [(0, 0, 10), (1, 10, 20), (2, 20, 30)]


def test_resource_parallel_capacity_two():
    env = Environment()
    res = Resource(env, capacity=2)
    finish = []

    def worker(env, wid):
        yield from res.using(10)
        finish.append((wid, env.now))

    for wid in range(4):
        env.process(worker(env, wid))
    env.run()
    assert finish == [(0, 10), (1, 10), (2, 20), (3, 20)]


def test_resource_priority_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(100)
        res.release(req)

    def worker(env, wid, prio, delay):
        yield env.timeout(delay)
        yield from res.using(1, priority=prio)
        order.append(wid)

    env.process(holder(env))
    # Submitted in order 0,1,2 but priorities 2,0,1 => served 1,2,0.
    env.process(worker(env, 0, 2, 1))
    env.process(worker(env, 1, 0, 2))
    env.process(worker(env, 2, 1, 3))
    env.run()
    assert order == [1, 2, 0]


def test_resource_release_unowned_raises():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    env.run()
    res.release(req)
    with pytest.raises(SimulationError):
        res.release(req)


def test_resource_cancel_waiting_request():
    env = Environment()
    res = Resource(env, capacity=1)
    first = res.request()
    second = res.request()
    assert res.queue_len == 1
    res.cancel(second)
    assert res.queue_len == 0
    with pytest.raises(SimulationError):
        res.cancel(first)  # already granted


def test_resource_using_releases_on_completion():
    env = Environment()
    res = Resource(env, capacity=1)

    def worker(env):
        yield from res.using(5)

    env.process(worker(env))
    env.run()
    assert res.count == 0


def test_semaphore_tokens_flow():
    env = Environment()
    sem = Semaphore(env, tokens=2)
    acquired_at = []

    def taker(env, wid):
        yield sem.acquire()
        acquired_at.append((wid, env.now))

    for wid in range(4):
        env.process(taker(env, wid))

    def releaser(env):
        yield env.timeout(50)
        sem.release(2)

    env.process(releaser(env))
    env.run()
    assert acquired_at == [(0, 0), (1, 0), (2, 50), (3, 50)]
    assert sem.tokens == 0


def test_semaphore_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        Semaphore(env, tokens=-1)
    sem = Semaphore(env, tokens=1)
    with pytest.raises(SimulationError):
        sem.release(0)


def test_resource_queue_len_reporting():
    env = Environment()
    res = Resource(env, capacity=1)
    res.request()
    res.request()
    res.request()
    assert res.count == 1
    assert res.queue_len == 2


def test_interrupted_waiter_does_not_leak_slot():
    """A process killed while queued must withdraw its claim; the next
    waiter gets the slot and capacity never leaks."""
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder(env):
        yield from res.using(100)
        order.append(("holder-done", env.now))

    def waiter(env, tag):
        try:
            yield from res.using(10)
            order.append((tag, env.now))
        except Exception:
            order.append((tag + "-killed", env.now))

    env.process(holder(env))
    victim = env.process(waiter(env, "victim"))
    env.process(waiter(env, "survivor"))

    def killer(env):
        yield env.timeout(50)
        victim.interrupt()

    env.process(killer(env))
    env.run()
    assert ("victim-killed", 50) in order
    assert ("survivor", 110) in order  # got the slot right after the holder
    assert res.count == 0 and res.queue_len == 0
