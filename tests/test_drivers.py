"""Unit tests for the three block-device drivers (UIFD, NBD, rbd kmod)."""

import pytest

from repro.blk import Bio, IoOp, Request
from repro.deliba import DELIBA1, DELIBA2, DELIBAK, build_framework
from repro.driver import (
    DELIBA1_NBD,
    DELIBA2_NBD,
    NbdConfig,
    NbdDriver,
    RbdKmodDriver,
    UifdConfig,
    UifdDriver,
)
from repro.errors import DriverError
from repro.fpga import Accelerator, PcieLink, QdmaEngine, spec_by_name
from repro.host import HostKernel
from repro.osd import ClusterSpec, RBDImage, build_cluster
from repro.sim import Environment
from repro.units import kib, mib


def stack(pool_kind="replicated"):
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(num_server_hosts=2, osds_per_host=4))
    if pool_kind == "replicated":
        pool = cluster.create_replicated_pool("p", pg_num=32, size=2)
        objsize = mib(4)
    else:
        pool = cluster.create_erasure_pool("p", pg_num=32, k=2, m=1)
        objsize = kib(4)
    client = cluster.new_client()
    image = RBDImage("img", mib(16), pool, client, object_size=objsize)
    kernel = HostKernel(env)
    return env, cluster, image, kernel


def fpga_parts(env):
    qdma = QdmaEngine(env, PcieLink(env))
    crush = Accelerator(env, spec_by_name("straw2"))
    ec = Accelerator(env, spec_by_name("rs_encoder"))
    return qdma, crush, ec


def run_request(env, driver, bio):
    request = Request([bio])
    request.submitted_at = env.now
    request.completion = env.event()
    driver.queue_rq(request)
    env.run()
    assert request.completion.processed
    return request


def write_bio(offset=0, size=kib(4), seq=False):
    return Bio(IoOp.WRITE, offset // 512, size, data=b"\xAB" * size, sequential=seq)


def read_bio(offset=0, size=kib(4)):
    return Bio(IoOp.READ, offset // 512, size)


# --- config data ---------------------------------------------------------------


def test_nbd_generation_configs():
    assert DELIBA1_NBD.crossings == 6 and DELIBA1_NBD.copies == 6
    assert DELIBA1_NBD.passive_offload
    assert DELIBA2_NBD.crossings == 2 and DELIBA2_NBD.copies == 5
    assert not DELIBA2_NBD.passive_offload


# --- uifd ------------------------------------------------------------------------


def test_uifd_hardware_requires_fpga():
    env, cluster, image, kernel = stack()
    with pytest.raises(DriverError):
        UifdDriver(env, kernel, image, hardware=True)


def test_uifd_ec_requires_rs_accel():
    env, cluster, image, kernel = stack("erasure")
    qdma, crush, _ = fpga_parts(env)
    with pytest.raises(DriverError):
        UifdDriver(env, kernel, image, qdma=qdma, crush_accel=crush, hardware=True)


def test_uifd_hw_write_and_read_roundtrip():
    env, cluster, image, kernel = stack()
    qdma, crush, ec = fpga_parts(env)
    driver = UifdDriver(env, kernel, image, qdma=qdma, crush_accel=crush, ec_accel=ec)
    run_request(env, driver, write_bio())
    req = run_request(env, driver, read_bio())
    assert driver.requests_completed == 2
    assert req.completed_at > 0
    # Data actually reached the OSDs.
    name = image.object_name(0)
    assert any(name in d.store for d in cluster.daemons.values())


def test_uifd_hw_uses_qdma_descriptors():
    env, cluster, image, kernel = stack()
    qdma, crush, ec = fpga_parts(env)
    driver = UifdDriver(env, kernel, image, qdma=qdma, crush_accel=crush, ec_accel=ec)
    run_request(env, driver, write_bio())
    assert driver.queue.descriptors_processed == 1
    assert crush.invocations == 1


def test_uifd_sw_mode_no_qdma_needed():
    env, cluster, image, kernel = stack()
    driver = UifdDriver(env, kernel, image, hardware=False)
    run_request(env, driver, write_bio())
    assert driver.requests_completed == 1


def test_uifd_sw_fanout_vs_primary():
    """client_fanout toggles direct vs primary-mediated replication."""
    def completion_time(fanout):
        env, cluster, image, kernel = stack()
        driver = UifdDriver(
            env, kernel, image, UifdConfig(client_fanout=fanout), hardware=False
        )
        req = run_request(env, driver, write_bio())
        return req.completed_at

    assert completion_time(True) < completion_time(False)


def test_uifd_irq_completion_costs_more():
    def latency(polled):
        env, cluster, image, kernel = stack()
        qdma, crush, ec = fpga_parts(env)
        driver = UifdDriver(
            env, kernel, image, UifdConfig(polled_completion=polled),
            qdma=qdma, crush_accel=crush, ec_accel=ec,
        )
        req = run_request(env, driver, write_bio())
        return req.completed_at

    assert latency(polled=True) < latency(polled=False)


def test_uifd_sriov_function_binding():
    env, cluster, image, kernel = stack()
    qdma, crush, ec = fpga_parts(env)
    UifdDriver(env, kernel, image, qdma=qdma, crush_accel=crush, ec_accel=ec, function=3)
    assert len(qdma.queues_of_function(3)) == 1


# --- nbd --------------------------------------------------------------------------


def test_nbd_hardware_requires_fpga():
    env, cluster, image, kernel = stack()
    with pytest.raises(DriverError):
        NbdDriver(env, kernel, image, hardware=True)


def test_nbd_charges_crossings_and_copies():
    env, cluster, image, kernel = stack()
    qdma, crush, ec = fpga_parts(env)
    driver = NbdDriver(env, kernel, image, NbdConfig(crossings=6, copies=6),
                       qdma=qdma, crush_accel=crush, ec_accel=ec)
    run_request(env, driver, write_bio())
    assert kernel.context_switches >= 6
    assert kernel.bytes_copied >= 6 * kib(4)


def test_nbd_daemon_serializes_requests():
    env, cluster, image, kernel = stack()
    qdma, crush, ec = fpga_parts(env)
    driver = NbdDriver(env, kernel, image, DELIBA2_NBD,
                       qdma=qdma, crush_accel=crush, ec_accel=ec)
    reqs = []
    for i in range(3):
        r = Request([write_bio(offset=i * kib(64))])
        r.submitted_at = env.now
        r.completion = env.event()
        driver.queue_rq(r)
        reqs.append(r)
    env.run()
    times = sorted(r.completed_at for r in reqs)
    # One daemon thread: completions spaced by at least the op round trip.
    assert times[1] - times[0] > 10_000
    assert times[2] - times[1] > 10_000


def test_nbd_passive_offload_slower_than_datapath():
    def latency(cfg):
        env, cluster, image, kernel = stack()
        qdma, crush, ec = fpga_parts(env)
        driver = NbdDriver(env, kernel, image, cfg, qdma=qdma, crush_accel=crush, ec_accel=ec)
        return run_request(env, driver, write_bio()).completed_at

    passive = latency(NbdConfig(crossings=2, copies=5, passive_offload=True))
    inline = latency(NbdConfig(crossings=2, copies=5, passive_offload=False))
    assert passive > inline


def test_nbd_software_mode():
    env, cluster, image, kernel = stack()
    driver = NbdDriver(env, kernel, image, DELIBA2_NBD, hardware=False)
    run_request(env, driver, write_bio())
    assert driver.requests_completed == 1


# --- rbd kmod ----------------------------------------------------------------------


def test_rbd_kmod_roundtrip():
    env, cluster, image, kernel = stack()
    driver = RbdKmodDriver(env, kernel, image)
    run_request(env, driver, write_bio())
    req = run_request(env, driver, read_bio())
    assert req.completed_at > 0
    assert driver.requests_completed == 2


def test_rbd_kmod_charges_percall_placement():
    """Stock path: the full CRUSH cost on every request (uncached)."""
    env, cluster, image, kernel = stack()
    driver = RbdKmodDriver(env, kernel, image)
    r1 = run_request(env, driver, write_bio(offset=0))
    start = env.now
    r2 = Request([write_bio(offset=0)])
    r2.submitted_at = env.now
    r2.completion = env.event()
    driver.queue_rq(r2)
    env.run()
    # Second identical request still pays ~48us of placement.
    assert r2.completed_at - start > 48_000


# --- cross-driver shape ----------------------------------------------------------------


def test_driver_latency_ordering_matches_generations():
    def latency(config):
        fw = build_framework(config)
        from repro.workloads import FioJob
        job = FioJob("x", "randwrite", bs=kib(4), iodepth=1, nrequests=15)
        proc = fw.env.process(fw.run_fio(job))
        fw.env.run()
        return proc.value.mean_latency_us()

    assert latency(DELIBAK) < latency(DELIBA2) < latency(DELIBA1)


# --- cmac network monitoring -------------------------------------------------------


def test_cmac_monitor_counts_flows():
    from repro.driver import CmacNetworkMonitor
    from repro.net import Message, Network

    env = Environment()
    net = Network(env)
    for h in ("a", "b", "c"):
        net.add_host(h)
    monitor = CmacNetworkMonitor(env, net)
    monitor.attach()
    for _ in range(5):
        net.send_async(Message("a", "b", 4096))
    net.send_async(Message("c", "b", 1024))
    env.run()
    assert monitor.total_frames == 6
    assert monitor.flows[("a", "b")].frames == 5
    assert monitor.flows[("a", "b")].bytes == 5 * 4096
    top = monitor.top_talkers(1)
    assert top[0].src == "a"
    assert "a -> b" in monitor.report()
    # The mirror actually passed through the CMAC.
    assert monitor.cmac.frames_rx == 6


def test_cmac_monitor_observes_cluster_traffic():
    """Attach the monitor to a live cluster and watch real op flows."""
    from repro.driver import CmacNetworkMonitor
    from repro.osd import ClusterSpec, build_cluster

    env = Environment()
    cluster = build_cluster(env, ClusterSpec(num_server_hosts=2, osds_per_host=2))
    pool = cluster.create_replicated_pool("p", pg_num=16, size=2)
    client = cluster.new_client()
    monitor = CmacNetworkMonitor(env, cluster.network)
    monitor.attach()

    def io(env):
        for i in range(5):
            yield from client.write_replicated(pool, f"o{i}", b"x" * 4096, direct=True)

    env.process(io(env))
    env.run()
    assert monitor.total_frames > 0
    # Client-to-server flows dominate (writes carry the payload).
    assert any(s.src == "clienthost0" for s in monitor.top_talkers())


def test_cmac_monitor_attach_detach():
    from repro.driver import CmacNetworkMonitor
    from repro.errors import DriverError
    from repro.net import Message, Network

    env = Environment()
    net = Network(env)
    net.add_host("a")
    net.add_host("b")
    monitor = CmacNetworkMonitor(env, net)
    with pytest.raises(DriverError):
        monitor.detach()
    monitor.attach()
    with pytest.raises(DriverError):
        monitor.attach()
    monitor.detach()
    net.send_async(Message("a", "b", 512))
    env.run()
    assert monitor.total_frames == 0  # detached: nothing observed
