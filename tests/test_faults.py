"""Tests for gray-failure injection and its tail-latency consequences."""

import pytest

from repro.deliba import DELIBAK, build_framework
from repro.errors import StorageError
from repro.osd.faults import FaultInjector
from repro.units import kib, mib
from repro.workloads import FioJob


def run_job(fw, job):
    proc = fw.env.process(fw.run_fio(job))
    fw.env.run()
    if not proc.ok:
        raise proc.value
    return proc.value


def job(n=120, iodepth=4):
    return FioJob("fault", "randread", bs=kib(4), iodepth=iodepth, nrequests=n, size=mib(32))


def test_validation():
    fw = build_framework(DELIBAK)
    inj = FaultInjector(fw.cluster)
    with pytest.raises(StorageError):
        inj.slow_device(0, 0.5)
    with pytest.raises(StorageError):
        inj.slow_device(999, 2.0)
    with pytest.raises(StorageError):
        inj.restore_device(0)
    with pytest.raises(StorageError):
        inj.degrade_host_link("server0", 0.5)
    with pytest.raises(StorageError):
        inj.restore_host_link("server0")


def test_slow_device_inflates_tail_latency():
    fw = build_framework(DELIBAK, seed=1)
    baseline = run_job(fw, job())
    fw2 = build_framework(DELIBAK, seed=1)
    inj = FaultInjector(fw2.cluster)
    for osd_id in range(4):  # one gray-failing enclosure
        inj.slow_device(osd_id, 20.0)
    degraded = run_job(fw2, job())
    # Mean moves some; the TAIL moves a lot — the gray-failure signature.
    assert degraded.p99_latency_us() > baseline.p99_latency_us() * 2
    assert degraded.mean_latency_us() < degraded.p99_latency_us()


def test_restore_device_recovers_performance():
    fw = build_framework(DELIBAK, seed=2)
    inj = FaultInjector(fw.cluster)
    inj.slow_device(0, 50.0)
    inj.restore_device(0)
    assert inj.active_faults == 0
    healthy = run_job(fw, job(n=60))
    assert healthy.p99_latency_us() < 150


def test_marking_out_gray_osd_heals_tail():
    """The operational fix: mark the slow OSD out; CRUSH routes around it."""
    fw = build_framework(DELIBAK, seed=3)
    inj = FaultInjector(fw.cluster)
    inj.slow_device(5, 50.0)
    sick = run_job(fw, job(n=100))
    fw.cluster.fail_osd(5)
    recovered = run_job(fw, job(n=100))
    assert recovered.p99_latency_us() < sick.p99_latency_us()


def test_degraded_link_slows_everything():
    fw = build_framework(DELIBAK, seed=4)
    baseline = run_job(fw, job(n=60))
    fw2 = build_framework(DELIBAK, seed=4)
    inj = FaultInjector(fw2.cluster)
    inj.degrade_host_link("server0", 10.0)
    degraded = run_job(fw2, job(n=60))
    assert degraded.mean_latency_us() > baseline.mean_latency_us()
    inj.restore_host_link("server0")
    assert inj.active_faults == 0


def test_double_injection_restores_to_true_original():
    fw = build_framework(DELIBAK)
    inj = FaultInjector(fw.cluster)
    original = fw.cluster.daemons[0].device.profile
    inj.slow_device(0, 2.0)
    inj.slow_device(0, 8.0)  # re-inject on top
    inj.restore_device(0)
    assert fw.cluster.daemons[0].device.profile is original
