"""Tests for the rjenkins1 hash family and the fixed-point log table."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crush import crush_ln, hash32, hash32_2, hash32_3, hash32_4, ln_of_uniform_u16, str_hash
from repro.crush.ln_table import LN_ONE

U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


@given(U32)
def test_hash32_in_range(a):
    assert 0 <= hash32(a) <= 0xFFFFFFFF


@given(U32, U32)
def test_hash32_2_in_range(a, b):
    assert 0 <= hash32_2(a, b) <= 0xFFFFFFFF


@given(U32, U32, U32, U32)
def test_hash32_4_in_range(a, b, c, d):
    assert 0 <= hash32_4(a, b, c, d) <= 0xFFFFFFFF


def test_hash_deterministic():
    assert hash32(12345) == hash32(12345)
    assert hash32_2(1, 2) == hash32_2(1, 2)
    assert hash32_3(1, 2, 3) == hash32_3(1, 2, 3)
    assert hash32_4(1, 2, 3, 4) == hash32_4(1, 2, 3, 4)


def test_hash_argument_order_matters():
    assert hash32_2(1, 2) != hash32_2(2, 1)
    assert hash32_3(1, 2, 3) != hash32_3(3, 2, 1)


def test_hash_avalanche():
    # Flipping one input bit should flip roughly half the output bits.
    flips = bin(hash32(0) ^ hash32(1)).count("1")
    assert 8 <= flips <= 24


def test_hash32_masks_large_inputs():
    assert hash32(2**40 + 7) == hash32((2**40 + 7) & 0xFFFFFFFF)


def test_hash_uniformity_buckets():
    n = 10_000
    buckets = [0] * 16
    for i in range(n):
        buckets[hash32_2(i, 7) % 16] += 1
    expected = n / 16
    for count in buckets:
        assert abs(count - expected) / expected < 0.15


def test_str_hash_deterministic_and_spread():
    assert str_hash("rbd_data.0001") == str_hash("rbd_data.0001")
    assert str_hash("a") != str_hash("b")
    vals = {str_hash(f"obj{i}") for i in range(1000)}
    assert len(vals) > 995  # essentially no collisions on small sets


@given(st.text(max_size=64))
def test_str_hash_in_range(s):
    assert 0 <= str_hash(s) <= 0xFFFFFFFF


def test_str_hash_block_boundaries():
    # Lengths around the 12-byte block size must all hash distinctly.
    names = ["x" * n for n in range(1, 30)]
    assert len({str_hash(n) for n in names}) == len(names)


# --- crush_ln fixed-point log -------------------------------------------------


def test_crush_ln_endpoints():
    assert crush_ln(0xFFFF) == LN_ONE  # log2(2^16) * 2^44 = 2^48
    assert crush_ln(0) == 0  # log2(1) = 0


@pytest.mark.parametrize("x", [1, 2, 100, 255, 256, 1000, 0x7FFF, 0x8000, 0xFFFE])
def test_crush_ln_matches_float_log(x):
    approx = crush_ln(x) / (1 << 44)
    exact = math.log2(x + 1)
    assert abs(approx - exact) < 0.01


def test_crush_ln_nearly_monotone():
    # The fixed-point tables quantize the low bits, so allow dips bounded
    # by the table resolution (~2^-9 in log2 units), but require strict
    # growth at coarse stride.
    prev = -1
    for x in range(0, 0x10000, 37):
        cur = crush_ln(x)
        assert cur >= prev - (1 << 35)
        prev = cur
    coarse = [crush_ln(x) for x in range(0, 0x10000, 1024)]
    assert coarse == sorted(coarse)


@given(st.integers(min_value=0, max_value=0xFFFF))
def test_ln_of_uniform_nonpositive(u):
    assert ln_of_uniform_u16(u) <= 0


def test_ln_of_uniform_is_log_of_fraction():
    # ln_of_uniform(u) / 2^44 should approximate log2((u+1)/2^16).
    for u in [1, 100, 5000, 40000, 65534]:
        approx = ln_of_uniform_u16(u) / (1 << 44)
        exact = math.log2((u + 1) / 65536.0)
        assert abs(approx - exact) < 0.01
