"""Unit tests for the DES kernel (Environment, events, processes)."""

import pytest

from repro.errors import ProcessKilled, SimulationError
from repro.sim import Environment


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(100)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 100
    assert env.now == 100


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_timeout_value_passthrough():
    env = Environment()
    got = []

    def proc(env):
        v = yield env.timeout(5, value="payload")
        got.append(v)

    env.process(proc(env))
    env.run()
    assert got == ["payload"]


def test_fifo_order_at_same_timestamp():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(10)
        order.append(tag)

    for tag in range(5):
        env.process(proc(env, tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_process_return_value():
    env = Environment()

    def inner(env):
        yield env.timeout(3)
        return 42

    def outer(env):
        result = yield env.process(inner(env))
        return result + 1

    p = env.process(outer(env))
    env.run()
    assert p.value == 43


def test_run_until_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(7)

    env.process(proc(env))
    env.run(until=100)
    assert env.now == 100


def test_run_until_past_raises():
    env = Environment()
    env.run(until=50)
    with pytest.raises(SimulationError):
        env.run(until=10)


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    got = []

    def waiter(env):
        v = yield ev
        got.append((env.now, v))

    def trigger(env):
        yield env.timeout(30)
        ev.succeed("done")

    env.process(waiter(env))
    env.process(trigger(env))
    env.run()
    assert got == [(30, "done")]


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_propagates_into_process():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter(env):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter(env))
    ev.fail(ValueError("boom"))
    env.run()
    assert caught == ["boom"]


def test_unhandled_failed_event_raises_from_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("nobody listening"))
    with pytest.raises(RuntimeError):
        env.run()


def test_yield_processed_event_resumes_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("early")
    seen = []

    def late_waiter(env):
        yield env.timeout(50)
        v = yield ev  # ev already processed by then
        seen.append((env.now, v))

    env.process(late_waiter(env))
    env.run()
    assert seen == [(50, "early")]


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise KeyError("broken")

    def outer(env):
        try:
            yield env.process(bad(env))
        except KeyError:
            return "caught"

    p = env.process(outer(env))
    env.run()
    assert p.value == "caught"


def test_interrupt_kills_waiting_process():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(1000)
        except ProcessKilled:
            log.append(env.now)

    target = env.process(sleeper(env))

    def killer(env):
        yield env.timeout(10)
        target.interrupt("reason")

    env.process(killer(env))
    env.run()
    assert log == [10]
    assert not target.is_alive


def test_interrupt_finished_process_is_noop():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    p.interrupt()  # should not raise
    env.run()


def test_any_of_fires_on_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(10, value="fast")
        t2 = env.timeout(20, value="slow")
        results = yield env.any_of([t1, t2])
        return (env.now, list(results.values()))

    p = env.process(proc(env))
    env.run()
    assert p.value == (10, ["fast"])


def test_all_of_waits_for_all():
    env = Environment()

    def proc(env):
        t1 = env.timeout(10, value="a")
        t2 = env.timeout(20, value="b")
        results = yield env.all_of([t1, t2])
        return (env.now, sorted(results.values()))

    p = env.process(proc(env))
    env.run()
    assert p.value == (20, ["a", "b"])


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc(env):
        yield env.all_of([])
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 0


def test_yield_non_event_raises():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_nested_processes_three_deep():
    env = Environment()

    def level3(env):
        yield env.timeout(5)
        return 3

    def level2(env):
        v = yield env.process(level3(env))
        yield env.timeout(5)
        return v + 2

    def level1(env):
        v = yield env.process(level2(env))
        return v + 1

    p = env.process(level1(env))
    env.run()
    assert p.value == 6
    assert env.now == 10


def test_determinism_identical_runs():
    def build_and_run():
        env = Environment()
        trace = []

        def worker(env, wid, delay):
            for i in range(3):
                yield env.timeout(delay)
                trace.append((env.now, wid, i))

        for wid in range(4):
            env.process(worker(env, wid, 7 + wid))
        env.run()
        return trace

    assert build_and_run() == build_and_run()


def test_peek_and_step():
    env = Environment()
    env.timeout(42)
    assert env.peek() == 42
    env.step()
    assert env.now == 42
    assert env.peek() is None
    with pytest.raises(SimulationError):
        env.step()
