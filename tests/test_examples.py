"""Smoke tests: every shipped example runs to completion.

Each example is imported as a module and its ``main()`` executed; the
assertions inside the examples (data integrity etc.) run as part of
this.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def _run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(name, None)
    return capsys.readouterr().out


def test_example_inventory():
    # The README promises these scenarios.
    assert {
        "quickstart",
        "framework_comparison",
        "multi_tenant_vms",
        "cluster_rebalance_dfx",
        "ec_durability",
        "trace_lifecycle",
        "api_comparison",
    } <= set(ALL_EXAMPLES)


def test_quickstart(capsys):
    out = _run_example("quickstart", capsys)
    assert "32 OSDs" in out and "MB/s" in out


def test_trace_lifecycle(capsys):
    out = _run_example("trace_lifecycle", capsys)
    assert "fabric" in out and "rings" in out


def test_ec_durability(capsys):
    out = _run_example("ec_durability", capsys)
    assert "degraded read OK" in out and "post-recovery read OK" in out


def test_cluster_rebalance_dfx(capsys):
    out = _run_example("cluster_rebalance_dfx", capsys)
    assert "pr_verify: OK" in out
    assert "verified 30/30 objects intact" in out


def test_multi_tenant_vms(capsys):
    out = _run_example("multi_tenant_vms", capsys)
    assert "aggregate" in out and "VF3" in out


@pytest.mark.slow
def test_framework_comparison(capsys):
    out = _run_example("framework_comparison", capsys)
    assert "SW Ceph" in out and "D-K" in out and "paper: 3.45x" in out


@pytest.mark.slow
def test_api_comparison(capsys):
    out = _run_example("api_comparison", capsys)
    assert "io_uring" in out and "read()/write()" in out


def test_network_monitoring(capsys):
    out = _run_example("network_monitoring", capsys)
    assert "busiest port" in out and "flows observed" in out


def test_integrity_and_faults(capsys):
    out = _run_example("integrity_and_faults", capsys)
    assert "byte-exact" in out
    assert "CRUSH routes around it" in out
