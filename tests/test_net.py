"""Tests for links, the star network, and TCP connections."""

import pytest

from repro.errors import NetworkError
from repro.net import (
    ETHERNET_FRAME_OVERHEAD,
    HLS_TCP,
    KERNEL_TCP,
    PAPER_BANDWIDTH_BPS,
    RTL_TCP,
    Link,
    Message,
    Network,
    TcpEndpoint,
    stack_by_name,
)
from repro.sim import Environment
from repro.units import SEC, gbps, kib, us


def make_net(n_hosts=2, **kw):
    env = Environment()
    net = Network(env, **kw)
    for i in range(n_hosts):
        net.add_host(f"h{i}")
    return env, net


# --- message ---------------------------------------------------------------


def test_message_size_validation():
    with pytest.raises(ValueError):
        Message("a", "b", -1)


def test_message_ids_unique():
    a = Message("a", "b", 10)
    b = Message("a", "b", 10)
    assert a.msg_id != b.msg_id


def test_message_latency_unset():
    assert Message("a", "b", 10).latency_ns == -1


# --- link ------------------------------------------------------------------------


def test_link_validation():
    env = Environment()
    with pytest.raises(NetworkError):
        Link(env, 0, 100)
    with pytest.raises(NetworkError):
        Link(env, 1e9, -1)
    with pytest.raises(NetworkError):
        Link(env, 1e9, 0, mtu=10)


def test_link_wire_bytes_framing():
    env = Environment()
    link = Link(env, gbps(10), 0, mtu=1500)
    assert link.wire_bytes(100) == 100 + ETHERNET_FRAME_OVERHEAD
    assert link.wire_bytes(3000) == 3000 + 2 * ETHERNET_FRAME_OVERHEAD


def test_link_serialization_time():
    env = Environment()
    link = Link(env, gbps(10), 0)  # 1.25 GB/s
    # 1250 bytes + 38 overhead = 1288 B -> 1030.4 ns
    assert abs(link.serialization_ns(1250) - 1030) <= 1


def test_link_fifo_contention():
    env = Environment()
    link = Link(env, 1e9, 0, mtu=9000)  # 1 GB/s, no propagation
    done = []

    def sender(env, tag):
        msg = Message("a", "b", 1000 - ETHERNET_FRAME_OVERHEAD)
        yield from link.transmit(msg)  # ~1000ns each
        done.append((tag, env.now))

    for t in range(3):
        env.process(sender(env, t))
    env.run()
    times = [t for _, t in done]
    # Serialized back-to-back: roughly 1us, 2us, 3us.
    assert times[1] - times[0] >= 900
    assert times[2] - times[1] >= 900


# --- network -----------------------------------------------------------------------


def test_network_duplicate_host():
    env, net = make_net(1)
    with pytest.raises(NetworkError):
        net.add_host("h0")


def test_network_unknown_host():
    env, net = make_net(1)
    with pytest.raises(NetworkError):
        net.host("nope")


def test_network_delivery_and_latency():
    env, net = make_net(2)
    msg = Message("h0", "h1", 4096)
    net.send_async(msg)
    env.run()
    assert msg.delivered_at > 0
    assert net.messages_delivered == 1
    got = net.host("h1").inbox.try_get()
    assert got is msg
    # Latency = 2 serializations + 2 hops + switch.
    assert msg.latency_ns == net.min_latency_ns(4096)


def test_network_min_latency_reasonable():
    env, net = make_net(2)
    # 4kB at 9.8 Gb/s: ~3.4us serialization x2 + ~3.5us fixed => ~10us.
    lat = net.min_latency_ns(4096)
    assert us(5) < lat < us(20)


def test_network_throughput_cap():
    """Sustained offered load above line rate caps at ~9.8 Gb/s."""
    env, net = make_net(2)
    n_msgs = 200
    size = kib(128)

    # Pipelined transfers: uplink serialization becomes the bottleneck.
    for _ in range(n_msgs):
        net.send_async(Message("h0", "h1", size))
    env.run()
    elapsed = env.now
    achieved_bps = n_msgs * size / (elapsed / SEC)
    assert achieved_bps <= PAPER_BANDWIDTH_BPS * 1.01
    assert achieved_bps >= PAPER_BANDWIDTH_BPS * 0.85


def test_network_incast_contention():
    """Two senders to one receiver share the receiver's downlink."""
    env, net = make_net(3)
    done = []

    def sender(env, src):
        yield env.process(net.send(Message(src, "h2", kib(64))))
        done.append(env.now)

    env.process(sender(env, "h0"))
    env.process(sender(env, "h1"))
    env.run()
    solo = net.min_latency_ns(kib(64))
    assert done[0] < solo * 1.2
    assert done[1] > solo * 1.4  # queued behind the first on h2's downlink


# --- tcp -------------------------------------------------------------------------------


def test_stack_by_name():
    assert stack_by_name("kernel-tcp") is KERNEL_TCP
    assert stack_by_name("rtl-fpga-tcp") is RTL_TCP
    with pytest.raises(NetworkError):
        stack_by_name("quic")


def test_stack_cost_ordering():
    # The whole point: rtl < hls < kernel for any message size.
    for size in (0, 4096, 131072):
        assert RTL_TCP.tx_ns(size) < HLS_TCP.tx_ns(size) < KERNEL_TCP.tx_ns(size)


def test_tcp_requires_connect():
    env, net = make_net(2)
    conn = TcpEndpoint(net, "h0").connection_to("h1")

    def proc(env):
        yield from conn.send("h0", 100)

    env.process(proc(env))
    with pytest.raises(NetworkError):
        env.run()


def test_tcp_send_recv_roundtrip():
    env, net = make_net(2)
    ep = TcpEndpoint(net, "h0", stack=KERNEL_TCP)
    results = {}

    def client(env):
        conn = yield from ep.ensure_connected("h1")
        yield env.process(conn.send("h0", 4096, payload="request"), name="tx")
        results["sent_at"] = env.now

    def server(env):
        conn = ep.connection_to("h1")
        msg = yield conn.recv("h1")
        results["received"] = msg.payload[1]
        results["recv_at"] = env.now

    env.process(client(env))
    env.process(server(env))
    env.run()
    assert results["received"] == "request"
    assert results["recv_at"] > 0


def test_tcp_stack_choice_changes_latency():
    def run(stack):
        env, net = make_net(2)
        ep = TcpEndpoint(net, "h0", stack=stack)
        t = {}

        def client(env):
            conn = yield from ep.ensure_connected("h1")
            start = env.now
            yield env.process(conn.send("h0", 4096))
            t["lat"] = env.now - start

        env.process(client(env))
        env.run()
        return t["lat"]

    assert run(RTL_TCP) < run(HLS_TCP) < run(KERNEL_TCP)


def test_tcp_endpoint_caches_connections():
    env, net = make_net(2)
    ep = TcpEndpoint(net, "h0")
    assert ep.connection_to("h1") is ep.connection_to("h1")


def test_tcp_bad_endpoint_errors():
    env, net = make_net(2)
    conn = TcpEndpoint(net, "h0").connection_to("h1")
    with pytest.raises(NetworkError):
        conn.recv("h9")


def test_tcp_interleaved_connections_no_crosstalk():
    env, net = make_net(3)
    ep0 = TcpEndpoint(net, "h0")
    ep1 = TcpEndpoint(net, "h1")
    got = {}

    def client(env, ep, me, payload):
        conn = yield from ep.ensure_connected("h2")
        yield env.process(conn.send(me, 1024, payload=payload))

    def server(env, ep, peer, key):
        conn = ep.connection_to("h2")  # same object as client's
        msg = yield conn.recv("h2")
        got[key] = msg.payload[1]

    env.process(client(env, ep0, "h0", "from-h0"))
    env.process(client(env, ep1, "h1", "from-h1"))
    env.process(server(env, ep0, "h0", "c0"))
    env.process(server(env, ep1, "h1", "c1"))
    env.run()
    assert got == {"c0": "from-h0", "c1": "from-h1"}


def test_network_utilization_report():
    env, net = make_net(2)
    for _ in range(20):
        net.send_async(Message("h0", "h1", kib(64)))
    env.run()
    report = net.utilization_report(env.now)
    # The sender's uplink and receiver's downlink carried the traffic.
    assert report["h0-up"] > 1.0  # Gb/s
    assert report["h1-down"] > 1.0
    assert report["h1-up"] == 0.0
    with pytest.raises(NetworkError):
        net.utilization_report(0)
