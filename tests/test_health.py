"""The always-on health layer: detector, flight recorder, cluster model,
SLO burn, Prometheus exposition, and the end-to-end smoke properties."""

import json
from types import SimpleNamespace

import pytest

from repro.bench.healthbench import health_smoke, run_health
from repro.cli import main
from repro.obs.critical_path import analyze
from repro.obs.export import (
    escape_label_value,
    prometheus_name,
    to_prometheus,
)
from repro.obs.flight import FlightRecorder, root_cause
from repro.obs.health import (
    HEALTH_ERR,
    HEALTH_OK,
    HEALTH_WARN,
    HealthConfig,
    HealthLayer,
    SloConfig,
    SloTracker,
)
from repro.obs.slowop import SlowOpConfig, SlowOpDetector
from repro.sim import Environment, MetricsRegistry
from repro.units import ms, us


# -- slow-op detector ------------------------------------------------------------


def test_detector_budget_flags_immediately():
    det = SlowOpDetector(SlowOpConfig(budget_ns={"write": us(100)}))
    assert det.observe("write", us(50), end_ns=0) is None
    rec = det.observe("write", us(200), end_ns=10)
    assert rec is not None
    assert rec.op_class == "write"
    assert rec.threshold_ns == us(100)
    assert det.flagged == 1


def test_detector_adaptive_threshold_arms_after_min_samples():
    det = SlowOpDetector(SlowOpConfig(p99_multiple=3.0, min_samples=10))
    # Cold class: no threshold, nothing can be flagged.
    assert det.threshold_ns("read") is None
    for _ in range(10):
        assert det.observe("read", us(100), end_ns=0) is None
    threshold = det.threshold_ns("read")
    assert threshold is not None and threshold >= us(100)
    assert det.observe("read", threshold + 1, end_ns=0) is not None


def test_detector_threshold_excludes_the_judged_sample():
    """The outlier must not raise the bar it is being judged against."""
    det = SlowOpDetector(SlowOpConfig(p99_multiple=3.0, min_samples=5))
    for _ in range(5):
        det.observe("w", us(10), end_ns=0)
    before = det.threshold_ns("w")
    rec = det.observe("w", ms(50), end_ns=0)
    assert rec is not None and rec.threshold_ns == before


def test_detector_bounds_and_summary():
    det = SlowOpDetector(SlowOpConfig(budget_ns={"w": 10}, max_records=4))
    for i in range(10):
        det.observe("w", 100 + i, end_ns=i)
    assert det.flagged == 10
    assert len(det.records) == 4  # oldest dropped
    assert [r.seq for r in det.records] == [7, 8, 9, 10]
    summary = det.class_summary()
    assert summary["w"]["count"] == 10
    assert summary["w"]["threshold_ns"] >= 10


def test_detector_config_validation():
    with pytest.raises(ValueError):
        SlowOpConfig(p99_multiple=1.0)
    with pytest.raises(ValueError):
        SlowOpConfig(min_samples=0)


# -- flight recorder -------------------------------------------------------------


def _make_tree():
    """Hand-built slow write: 800 ns osd.3 rpc + 100 ns backoff inside
    fabric, 100 ns root self-time; total 1000 ns."""
    from repro.obs.context import CausalTracer

    tracer = CausalTracer(Environment())
    root = tracer.start_root("write")
    fabric = root.child("fabric", "stage", start_ns=0)
    fabric.record("osd.3", "rpc", 0, 800, attempt=2)
    fabric.record("backoff", "wait", 800, 900, attempt=2)
    fabric.finish(900)
    root.finish(1000)
    return root


def test_flight_ring_is_bounded():
    rec = FlightRecorder(capacity=4)
    for _ in range(10):
        rec.retain(_make_tree())
    assert len(rec.ring) == 4
    assert rec.retained == 10


def test_flight_promote_without_tree_counts_missed():
    from repro.obs.slowop import SlowOpRecord

    rec = FlightRecorder()
    record = SlowOpRecord(1, "w", "client", "", 1000, 500, 0)
    assert rec.promote(record, None) is None
    assert rec.missed == 1 and rec.promoted == 0


def test_flight_dump_bound_keeps_newest():
    from repro.obs.slowop import SlowOpRecord

    rec = FlightRecorder(max_dumps=2)
    for i in range(5):
        record = SlowOpRecord(i + 1, "w", "client", "", 1000, 500, 0)
        rec.promote(record, _make_tree())
    assert rec.promoted == 5
    assert [d.record.seq for d in rec.dumps] == [4, 5]


def test_root_cause_matches_independent_analysis():
    root = _make_tree()
    cause = root_cause(root)
    path = analyze(root)
    # Ground truth: the report's partition is exactly the analyzer's.
    assert cause.exact
    assert cause.total_ns == path.total_ns == 1000
    assert cause.by_stage == path.by_stage()
    expected_gating = max(sorted(path.by_stage()), key=lambda s: path.by_stage()[s])
    assert cause.gating_stage == expected_gating == "fabric"
    assert cause.gating_stack == ("write", "fabric", "osd.3")
    assert cause.gating_span_ns == 800
    assert cause.attempts == 2
    assert cause.backoff_share == pytest.approx(0.1)
    text = cause.render()
    assert "gated 90.0% by write/fabric/osd.3" in text
    assert "attempt=2" in text and "backoff 10.0%" in text


# -- SLO burn tracking -----------------------------------------------------------


def test_slo_burn_rate_latency_and_availability():
    cfg = SloConfig(latency_target_ns=us(100), latency_objective=0.9,
                    availability_objective=0.99, fast_window_ns=us(10),
                    slow_window_ns=us(100))
    tracker = SloTracker(cfg)
    # 10 ops, 5 over target -> bad fraction 0.5, budget 0.1 -> burn 5.
    for i in range(10):
        tracker.observe("t", us(50) if i < 5 else us(500), ok=True, now_ns=us(5))
    assert tracker.burn_rate("t", us(10), us(5)) == pytest.approx(5.0, rel=0.1)
    # Errors burn availability budget: 1/10 errors vs 0.01 budget -> 10.
    tracker2 = SloTracker(cfg)
    for i in range(10):
        tracker2.observe("t", us(10), ok=(i != 0), now_ns=us(5))
    assert tracker2.burn_rate("t", us(10), us(5)) == pytest.approx(10.0, rel=0.01)


def test_slo_window_eviction_and_merge():
    cfg = SloConfig(latency_target_ns=us(100), fast_window_ns=us(10),
                    slow_window_ns=us(30))
    tracker = SloTracker(cfg)
    for t_us in (5, 15, 25, 105):
        tracker.observe("t", us(50), ok=True, now_ns=us(t_us))
    # Old buckets retired: only the recent window's sample remains.
    digest, total, errors = tracker.window("t", cfg.slow_window_ns, us(110))
    assert total == 1 and errors == 0
    assert digest.count == 1


def test_slo_config_validation():
    with pytest.raises(ValueError):
        SloConfig(latency_objective=1.0)
    with pytest.raises(ValueError):
        SloConfig(fast_window_ns=us(50), slow_window_ns=us(10))


# -- cluster health model --------------------------------------------------------


def _stub_cluster(pg_states=(), queue_depths=(), wal_depths=(), down=()):
    daemons = {}
    for i, depth in enumerate(queue_depths):
        wal_depth = wal_depths[i] if i < len(wal_depths) else None
        daemons[i] = SimpleNamespace(
            cpu=SimpleNamespace(queue_len=depth),
            wal=None if wal_depth is None else SimpleNamespace(log_depth=wal_depth),
        )
    osds = {
        i: SimpleNamespace(up=i not in down)
        for i in range(max(len(queue_depths), 1))
    }
    pgs = {
        i: SimpleNamespace(state=SimpleNamespace(value=state))
        for i, state in enumerate(pg_states)
    }
    return SimpleNamespace(
        daemons=daemons,
        osdmap=SimpleNamespace(osds=osds),
        recovery=SimpleNamespace(pgs=pgs) if pgs else None,
        qos=None,
    )


def test_health_checks_pg_osd_wal():
    env = Environment()
    layer = HealthLayer(env, HealthConfig(osd_queue_warn=4, wal_backlog_warn=8))
    layer.cluster = _stub_cluster(
        pg_states=("active", "degraded", "backfilling", "incomplete"),
        queue_depths=(0, 6),
        wal_depths=(None, 20),
        down=(1,),
    )
    checks = {c.code: c for c in layer.evaluate(0)}
    assert checks["PG_INCOMPLETE"].severity == HEALTH_ERR
    assert checks["PG_DEGRADED"].count == 2
    assert checks["OSD_DOWN"].detail == ["osd.1"]
    assert checks["OSD_QUEUE_BACKLOG"].count == 1
    assert checks["WAL_BACKLOG"].detail == ["osd.1: 20 un-trimmed records"]
    layer.checks = checks
    assert layer.status() == HEALTH_ERR


def test_health_ok_when_sources_clean():
    env = Environment()
    layer = HealthLayer(env)
    layer.cluster = _stub_cluster(pg_states=("active", "recovered"), queue_depths=(0, 0))
    assert layer.evaluate(0) == []
    assert layer.poll() == 0.0
    assert layer.status() == HEALTH_OK


def test_health_slo_check_severity_split():
    env = Environment()
    slo = SloConfig(latency_target_ns=us(10), latency_objective=0.99,
                    fast_window_ns=us(10), slow_window_ns=us(100),
                    fast_burn_warn=2.0, slow_burn_warn=2.0)
    layer = HealthLayer(env, HealthConfig(slo=slo))
    # Everything over target in both windows -> fast AND slow hot -> ERR.
    for i in range(20):
        layer.slo.observe("t", us(100), ok=True, now_ns=us(5 * i))
    checks = {c.code: c for c in layer.evaluate(us(99))}
    assert checks["SLO_BURN:t"].severity == HEALTH_ERR


def test_health_qos_floor_and_ceiling():
    env = Environment()
    layer = HealthLayer(env)
    slo_cfg = layer.slo.config_for("hungry")
    layer.cluster = SimpleNamespace(
        daemons={},
        osdmap=SimpleNamespace(osds={}),
        recovery=None,
        qos=SimpleNamespace(config=SimpleNamespace(tenants={
            "starved": SimpleNamespace(reservation_iops=1e9, limit_iops=None),
            "hungry": SimpleNamespace(reservation_iops=0.0, limit_iops=1.0),
        })),
    )
    now = slo_cfg.slow_window_ns
    # One op for the starved tenant (way under its floor), many for the
    # capped one (way over 1 iops).
    layer.slo.observe("starved", us(10), ok=True, now_ns=now - 1)
    for i in range(50):
        layer.slo.observe("hungry", us(10), ok=True, now_ns=now - 1)
    checks = {c.code: c for c in layer.evaluate(now)}
    assert checks["QOS_FLOOR_MISS"].count == 1
    assert "starved" in checks["QOS_FLOOR_MISS"].detail[0]
    assert checks["QOS_LIMIT_EXCEEDED"].count == 1
    assert "hungry" in checks["QOS_LIMIT_EXCEEDED"].detail[0]


def test_health_cache_dirty_check():
    env = Environment()
    layer = HealthLayer(env, HealthConfig(cache_dirty_warn=0.5))
    layer.cache = SimpleNamespace(store=SimpleNamespace(dirty_count=6, capacity_lines=10))
    checks = {c.code: c for c in layer.evaluate(0)}
    assert checks["CACHE_DIRTY"].severity == HEALTH_WARN


def test_health_metrics_registered():
    env = Environment()
    registry = MetricsRegistry()
    layer = HealthLayer(env, metrics=registry)
    layer.observe_client("write", "", us(100), True, None)
    layer.poll()
    assert registry.get("health.client_ops").value == 1
    assert registry.get("health.status_level").value == 0.0


# -- Prometheus exposition (satellite 2) ----------------------------------------


def test_prometheus_name_sanitization():
    assert prometheus_name("qos.limit_waits") == "repro_qos_limit_waits"
    assert prometheus_name("osd.3.op_latency") == "repro_osd_3_op_latency"
    assert prometheus_name("a-b c@d") == "repro_a_b_c_d"
    # Leading digit survives via the prefix; no prefix gets the guard.
    assert prometheus_name("3col") == "repro_3col"
    assert prometheus_name("3col", prefix="") == "_3col"


def test_prometheus_label_escaping():
    assert escape_label_value('a"b') == 'a\\"b'
    assert escape_label_value("a\\b") == "a\\\\b"
    assert escape_label_value("a\nb") == "a\\nb"


def test_prometheus_page_preserves_original_names():
    registry = MetricsRegistry()
    registry.counter("osd.3.ops").add(7)
    registry.gauge("cache.hit_ratio").set(0.5)
    registry.latency("osd.3.op_latency").record(us(120))
    page = to_prometheus(registry)
    assert 'repro_osd_3_ops{metric="osd.3.ops"} 7' in page
    assert 'repro_cache_hit_ratio{metric="cache.hit_ratio"} 0.5' in page
    assert 'repro_osd_3_op_latency_count{metric="osd.3.op_latency"} 1' in page
    assert 'quantile="0.99"' in page
    # Deterministic: two renders are byte-identical.
    assert page == to_prometheus(registry)


# -- end-to-end: neutrality, detection, determinism ------------------------------


@pytest.fixture(scope="module")
def chaos_report():
    return run_health("chaos", nrequests=30, seed=0)


def test_clean_run_is_neutral_and_healthy():
    with_health = run_health("randwrite", nrequests=20, seed=0)
    without = run_health("randwrite", nrequests=20, seed=0, attach_health=False)
    assert with_health.latencies_ns == without.latencies_ns
    assert with_health.health.status == HEALTH_OK
    assert with_health.health.flight["promoted"] == 0
    assert with_health.health.flight["missed"] == 0
    assert with_health.health.flight["retained"] == 20
    assert with_health.health.polls == with_health.samples_taken


def test_chaos_flags_slow_ops_with_correct_gating_layer(chaos_report):
    dumps = chaos_report.health.slow_ops
    assert dumps, "chaos run must flag at least one slow op"
    for dump in dumps:
        # Ground truth: recompute the critical path independently and
        # check the auto report attributed the same gating layer.
        path = analyze(dump.root)
        by_stage = path.by_stage()
        expected = max(sorted(by_stage), key=lambda s: by_stage[s])
        assert dump.cause.exact
        assert dump.cause.gating_stage == expected
        assert dump.cause.total_ns == dump.root.duration_ns
        # Chaos slowness comes from fabric retries: the report must say
        # so, with the retry leg visible.
        assert dump.cause.gating_stage == "fabric"
        assert dump.cause.gating_stack[1] == "fabric"
        assert dump.record.latency_ns > dump.record.threshold_ns


def test_chaos_report_deterministic(chaos_report):
    rerun = run_health("chaos", nrequests=30, seed=0)
    assert chaos_report.digest() == rerun.digest()
    assert chaos_report.to_json() == rerun.to_json()


def test_report_json_roundtrip(chaos_report):
    doc = json.loads(chaos_report.to_json(include_trees=True))
    assert doc["health"]["status"] in (HEALTH_OK, HEALTH_WARN, HEALTH_ERR)
    assert doc["health"]["slow_ops"]
    first = doc["health"]["slow_ops"][0]
    assert first["cause"]["gating_stage"]
    assert first["tree"]["end_ns"] >= first["tree"]["start_ns"]
    assert doc["health"]["op_classes"]


def test_health_smoke_passes():
    code, text, chaos = health_smoke(nrequests=30)
    assert code == 0, text
    assert "HEALTH SMOKE PASS" in text
    assert chaos.health.slow_ops


def test_cli_health_report(tmp_path, capsys):
    report_path = tmp_path / "health.json"
    code = main([
        "health", "chaos", "--nrequests", "30", "--report", str(report_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "cluster health:" in out
    assert "gated" in out
    doc = json.loads(report_path.read_text())
    assert doc["scenario"] == "chaos"
