"""Integration tests: cluster, client I/O paths, EC, failure/recovery, RBD."""

import pytest

from repro.errors import StorageError
from repro.osd import (
    ClusterSpec,
    RBDImage,
    build_cluster,
    shard_object_name,
)
from repro.sim import Environment
from repro.units import kib, mib, us


def small_cluster(**kw):
    env = Environment()
    spec = ClusterSpec(num_server_hosts=2, osds_per_host=4, **kw)
    return env, build_cluster(env, spec)


def run(env, gen):
    p = env.process(gen)
    env.run()
    if not p.ok:
        raise p.value
    return p.value


# --- construction ------------------------------------------------------------


def test_paper_testbed_shape():
    env = Environment()
    cluster = build_cluster(env)  # defaults: 2 hosts x 16 OSDs
    assert len(cluster.daemons) == 32
    assert cluster.osdmap.up_osds() == list(range(32))


def test_pool_creation_bumps_epoch():
    env, cluster = small_cluster()
    e0 = cluster.osdmap.epoch
    cluster.create_replicated_pool("rbd", pg_num=32, size=3)
    assert cluster.osdmap.epoch == e0 + 1


def test_duplicate_client_rejected():
    env, cluster = small_cluster()
    cluster.new_client("c")
    with pytest.raises(StorageError):
        cluster.new_client("c")


# --- replicated I/O -----------------------------------------------------------


@pytest.mark.parametrize("direct", [False, True])
def test_replicated_write_read_roundtrip(direct):
    env, cluster = small_cluster()
    pool = cluster.create_replicated_pool("rbd", pg_num=32, size=3)
    client = cluster.new_client()
    data = bytes(range(256)) * 16  # 4 kB
    run(env, client.write_replicated(pool, "obj1", data, direct=direct))
    got = run(env, client.read_replicated(pool, "obj1", 0, len(data)))
    assert got == data


@pytest.mark.parametrize("direct", [False, True])
def test_replicated_write_lands_on_all_replicas(direct):
    env, cluster = small_cluster()
    pool = cluster.create_replicated_pool("rbd", pg_num=32, size=3)
    client = cluster.new_client()
    run(env, client.write_replicated(pool, "obj1", b"x" * 512, direct=direct))
    holders = [d.osd_id for d in cluster.daemons.values() if "obj1" in d.store]
    assert len(holders) == 3
    assert holders == sorted(client.compute_placement(pool, "obj1"))


def test_direct_write_is_faster_than_primary_fanout():
    """One hop vs two hops for replica copies."""

    def latency(direct):
        env, cluster = small_cluster()
        pool = cluster.create_replicated_pool("rbd", pg_num=32, size=3)
        client = cluster.new_client()
        start = env.now

        def io(env):
            yield from client.write_replicated(pool, "o", b"z" * 4096, direct=direct)
            return env.now

        return run(env, io(env))

    assert latency(direct=True) < latency(direct=False)


def test_replicated_partial_read():
    env, cluster = small_cluster()
    pool = cluster.create_replicated_pool("rbd", pg_num=32, size=2)
    client = cluster.new_client()
    run(env, client.write_replicated(pool, "obj", b"abcdefgh"))
    assert run(env, client.read_replicated(pool, "obj", 2, 4)) == b"cdef"


def test_wrong_pool_type_rejected():
    env, cluster = small_cluster()
    rp = cluster.create_replicated_pool("r", pg_num=16, size=2)
    ep = cluster.create_erasure_pool("e", pg_num=16, k=2, m=1)
    client = cluster.new_client()
    with pytest.raises(StorageError):
        run(env, client.write_replicated(ep, "o", b"x"))
    with pytest.raises(StorageError):
        run(env, client.write_ec(rp, "o", b"x"))


# --- EC I/O ----------------------------------------------------------------------


@pytest.mark.parametrize("direct", [False, True])
def test_ec_write_read_roundtrip(direct):
    env, cluster = small_cluster()
    pool = cluster.create_erasure_pool("ecpool", pg_num=32, k=4, m=2)
    client = cluster.new_client()
    data = bytes((i * 7) % 256 for i in range(4096))
    run(env, client.write_ec(pool, "eobj", data, direct=direct))
    got = run(env, client.read_ec(pool, "eobj", len(data), direct=direct))
    assert got == data


def test_ec_write_places_all_shards(direct=True):
    env, cluster = small_cluster()
    pool = cluster.create_erasure_pool("ecpool", pg_num=32, k=4, m=2)
    client = cluster.new_client()
    run(env, client.write_ec(pool, "eobj", b"q" * 4096, direct=direct))
    shard_holders = [
        (rank, d.osd_id)
        for d in cluster.daemons.values()
        for rank in range(6)
        if shard_object_name("eobj", rank) in d.store
    ]
    assert len(shard_holders) == 6
    assert sorted(r for r, _ in shard_holders) == list(range(6))


def test_ec_read_survives_shard_loss():
    env, cluster = small_cluster()
    pool = cluster.create_erasure_pool("ecpool", pg_num=32, k=3, m=2)
    client = cluster.new_client()
    data = b"resilient-data" * 100
    run(env, client.write_ec(pool, "eobj", data, direct=True))
    # Kill the OSDs holding shards 0 and 1.
    acting = client.compute_placement(pool, "eobj")
    cluster.fail_osd(acting[0])
    cluster.fail_osd(acting[1])
    got = run(env, client.read_ec(pool, "eobj", len(data), direct=True))
    assert got == data


def test_ec_cross_mode_roundtrip():
    """Shards written via primary must decode via direct reads and vice versa."""
    env, cluster = small_cluster()
    pool = cluster.create_erasure_pool("ecpool", pg_num=32, k=4, m=2)
    client = cluster.new_client()
    data = b"interop" * 300
    run(env, client.write_ec(pool, "o1", data, direct=False))
    assert run(env, client.read_ec(pool, "o1", len(data), direct=True)) == data


# --- failure handling --------------------------------------------------------------


def test_write_after_failure_avoids_dead_osd():
    env, cluster = small_cluster()
    pool = cluster.create_replicated_pool("rbd", pg_num=32, size=3)
    client = cluster.new_client()
    run(env, client.write_replicated(pool, "before", b"x" * 128))
    victim = client.compute_placement(pool, "before")[0]
    cluster.fail_osd(victim)
    # New writes must not target the dead OSD.
    for i in range(20):
        run(env, client.write_replicated(pool, f"after{i}", b"y" * 128))
        assert victim not in client.compute_placement(pool, f"after{i}")


def test_epoch_invalidates_client_cache():
    env, cluster = small_cluster()
    pool = cluster.create_replicated_pool("rbd", pg_num=32, size=2)
    client = cluster.new_client()
    a = client.compute_placement(pool, "o")
    cluster.fail_osd(a[0])
    b = client.compute_placement(pool, "o")
    assert a[0] not in b


def test_recovery_restores_replica_count():
    env, cluster = small_cluster()
    pool = cluster.create_replicated_pool("rbd", pg_num=32, size=3)
    client = cluster.new_client()
    for i in range(10):
        run(env, client.write_replicated(pool, f"obj{i}", bytes([i]) * 256))
    victim = client.compute_placement(pool, "obj0")[0]
    cluster.fail_osd(victim)
    stats = run(env, cluster.monitor.recover_pool(pool, cluster.any_live_daemon()))
    assert stats.objects_examined == 10
    # Every object readable and present on 3 live OSDs.
    for i in range(10):
        holders = [
            d.osd_id
            for d in cluster.daemons.values()
            if f"obj{i}" in d.store and cluster.osdmap.osds[d.osd_id].up
        ]
        assert len(holders) >= 3, f"obj{i} has {len(holders)} live replicas"


def test_ec_recovery_reconstructs_lost_shards():
    env, cluster = small_cluster()
    pool = cluster.create_erasure_pool("ec", pg_num=32, k=3, m=2)
    client = cluster.new_client()
    data = b"shardme" * 64
    for i in range(6):
        run(env, client.write_ec(pool, f"e{i}", data, direct=True))
    victim = client.compute_placement(pool, "e0")[0]
    cluster.fail_osd(victim)
    stats = run(env, cluster.monitor.recover_pool(pool, cluster.any_live_daemon()))
    assert stats.objects_examined == 6
    # All objects fully readable afterwards.
    for i in range(6):
        assert run(env, client.read_ec(pool, f"e{i}", len(data), direct=True)) == data


# --- RBD --------------------------------------------------------------------------------


def test_rbd_roundtrip_spanning_objects():
    env, cluster = small_cluster()
    pool = cluster.create_replicated_pool("rbd", pg_num=32, size=2)
    client = cluster.new_client()
    img = RBDImage("vm1", mib(8), pool, client, object_size=mib(1))
    payload = bytes(range(256)) * 8  # 2 kB
    # Write across an object boundary.
    run(env, img.write(mib(1) - 1024, payload))
    got = run(env, img.read(mib(1) - 1024, len(payload)))
    assert got == payload


def test_rbd_object_naming():
    env, cluster = small_cluster()
    pool = cluster.create_replicated_pool("rbd", pg_num=32, size=2)
    client = cluster.new_client()
    img = RBDImage("vm1", mib(8), pool, client, object_size=mib(4))
    assert img.object_name(1) == "rbd_data.vm1.0000000000000001"


def test_rbd_bounds_checking():
    env, cluster = small_cluster()
    pool = cluster.create_replicated_pool("rbd", pg_num=32, size=2)
    client = cluster.new_client()
    img = RBDImage("vm1", kib(64), pool, client)
    with pytest.raises(StorageError):
        run(env, img.write(kib(64), b"x"))
    with pytest.raises(StorageError):
        run(env, img.read(-1, 10))


def test_rbd_ec_image_block_granularity():
    env, cluster = small_cluster()
    pool = cluster.create_erasure_pool("ec", pg_num=32, k=2, m=1)
    client = cluster.new_client()
    img = RBDImage("vol", kib(64), pool, client, object_size=4096, direct=True)
    block = bytes(range(256)) * 16
    run(env, img.write(8192, block))
    assert run(env, img.read(8192, 4096)) == block
    with pytest.raises(StorageError):
        run(env, img.write(100, b"partial"))


def test_rbd_validation():
    env, cluster = small_cluster()
    pool = cluster.create_replicated_pool("rbd", pg_num=32, size=2)
    client = cluster.new_client()
    with pytest.raises(StorageError):
        RBDImage("bad", 0, pool, client)
    with pytest.raises(StorageError):
        RBDImage("bad", 1024, pool, client, object_size=100)


# --- heartbeats and op timeouts -----------------------------------------------------


def test_heartbeats_detect_silent_osd_death():
    """An OSD that stops responding (without operator action) is marked
    down by the heartbeat loop within interval+grace."""
    env, cluster = small_cluster()
    cluster.monitor.start_heartbeats(interval_ns=us(500), grace_ns=us(300))
    victim = 3
    cluster.daemons[victim].stop()  # silent crash: nobody marks it down
    assert cluster.osdmap.osds[victim].up
    env.run(until=us(2000))
    assert not cluster.osdmap.osds[victim].up
    assert victim in cluster.monitor.failures_detected
    cluster.monitor.stop_heartbeats()
    # Healthy OSDs stayed up.
    assert len(cluster.osdmap.up_osds()) == 7


def test_heartbeats_require_messenger():
    from repro.osd import Monitor

    env = Environment()
    mon = Monitor(env, None, {})
    with pytest.raises(StorageError):
        mon.start_heartbeats(1000, 1000)


def test_call_to_dead_osd_fails_fast_with_transport_error():
    """A crashed OSD refuses connections: the caller gets a TRANSPORT
    reply well before its timeout instead of hanging out the full wait."""
    from repro.osd.ops import OpKind, OsdOp
    from repro.status import BlkStatus

    env, cluster = small_cluster()
    client = cluster.new_client()
    victim = 0
    cluster.daemons[victim].stop()  # dead but not marked down

    def probe(env):
        op = OsdOp(OpKind.PING, 0, "ping")
        reply = yield from client.call(f"osd.{victim}", op, timeout_ns=us(200))
        return reply, env.now

    p = env.process(probe(env))
    env.run()
    reply, replied_at = p.value
    assert not reply.ok and reply.status is BlkStatus.TRANSPORT
    assert replied_at < us(200)  # refused, not timed out


def test_call_timeout_returns_failed_reply():
    """A message lost on a down link leaves the caller waiting; the call
    deadline converts the silence into a failed TIMEOUT reply."""
    from repro.osd.ops import OpKind, OsdOp
    from repro.status import BlkStatus

    env, cluster = small_cluster()
    client = cluster.new_client()
    target_host = cluster.fabric.host_of("osd.0")
    cluster.network.host(target_host).downlink.set_up(False)  # drop the op

    def probe(env):
        op = OsdOp(OpKind.PING, 0, "ping")
        reply = yield from client.call("osd.0", op, timeout_ns=us(200))
        return reply

    p = env.process(probe(env))
    env.run()
    assert not p.value.ok and "timeout" in p.value.error
    assert p.value.status is BlkStatus.TIMEOUT
    assert cluster.fabric.link_drops == 1


def test_write_recovers_from_midflight_osd_death():
    """Kill the target OSD before the op lands; the heartbeat loop marks
    it down and a client retry against the new epoch succeeds."""
    env, cluster = small_cluster()
    pool = cluster.create_replicated_pool("rbd", pg_num=32, size=2)
    client = cluster.new_client()
    cluster.monitor.start_heartbeats(interval_ns=us(300), grace_ns=us(200))
    victim = client.compute_placement(pool, "obj")[0]
    cluster.daemons[victim].stop()  # silent death

    def resilient_write(env):
        from repro.osd.ops import OpKind, OsdOp

        for _attempt in range(5):
            acting = [o for o in client.compute_placement(pool, "obj") if o >= 0]
            op = OsdOp(OpKind.WRITE_DIRECT, pool.pool_id, "obj", 0, 128,
                       data=b"z" * 128, epoch=cluster.osdmap.epoch)
            reply = yield from client.call(f"osd.{acting[0]}", op, timeout_ns=us(400))
            if reply.ok:
                return True
            yield env.timeout(us(300))  # let the heartbeat catch up
        return False

    p = env.process(resilient_write(env))
    env.run(until=us(20000))
    assert p.value is True
    assert not cluster.osdmap.osds[victim].up
