"""Crash-point explorer (repro.bench.crashsim): invariants, determinism,
and the CI report artifact."""

import json

from repro.bench.crashsim import (
    crashsim_smoke,
    harvest_crash_points,
    run_crash_point,
    run_crashsim,
)


def test_harvest_finds_ordering_events():
    points, candidates, victim = harvest_crash_points(0, "replicated", 8)
    assert candidates > 8  # plenty of append/barrier/apply edges
    assert len(points) == 8  # evenly subsampled to the cap
    assert points == sorted(points)
    assert victim in range(6)


def test_single_crash_point_holds_invariants():
    points, _, victim = harvest_crash_points(0, "replicated", 4)
    result = run_crash_point(0, "replicated", victim, points[1])
    assert result.violations == []
    assert result.acked + result.unacked == 12  # 6 objects x 2 rounds
    assert result.records_replayed >= 0


def test_matrix_is_deterministic():
    first = run_crashsim("replicated", seed=0, max_points=3)
    second = run_crashsim("replicated", seed=0, max_points=3)
    assert first.digest == second.digest
    assert first.violations == []


def test_ec_pool_matrix_clean():
    stats = run_crashsim("ec", seed=0, max_points=3)
    assert stats.violations == []
    assert stats.explored_points == 3


def test_smoke_passes_and_writes_report(tmp_path):
    report_path = tmp_path / "crashsim.json"
    code, report = crashsim_smoke(
        seed=0, max_points=2, pool="replicated", report_path=str(report_path)
    )
    assert code == 0, report
    assert "SMOKE PASS" in report
    payload = json.loads(report_path.read_text())
    assert payload["result"] == "PASS"
    assert payload["determinism"] == "PASS"
    assert payload["pools"]["replicated"]["violations"] == []
    assert payload["pools"]["replicated"]["explored_points"] == 2
