"""Tests for the metrics registry and its wiring through the stack."""

import pytest

from repro.deliba import DELIBAK, build_framework
from repro.sim import (
    NULL_METRICS,
    Counter,
    Distribution,
    Gauge,
    LatencyRecorder,
    MetricsError,
    MetricsRegistry,
    NullMetricsRegistry,
    ThroughputMeter,
    TimeSeries,
)
from repro.units import kib
from repro.workloads import FioJob


# --- registry unit tests ------------------------------------------------------


def test_registry_get_or_create():
    reg = MetricsRegistry()
    c = reg.counter("blk.bios")
    c.add(3)
    assert reg.counter("blk.bios") is c
    assert reg.counter("blk.bios").value == 3


def test_registry_all_instrument_types():
    reg = MetricsRegistry()
    assert isinstance(reg.counter("a.c"), Counter)
    assert isinstance(reg.gauge("a.g"), Gauge)
    assert isinstance(reg.distribution("a.d"), Distribution)
    assert isinstance(reg.latency("a.l"), LatencyRecorder)
    assert isinstance(reg.meter("a.m"), ThroughputMeter)
    assert isinstance(reg.timeseries("a.t"), TimeSeries)
    assert len(reg) == 6


def test_registry_type_conflict_rejected():
    reg = MetricsRegistry()
    reg.counter("x.y")
    with pytest.raises(MetricsError):
        reg.gauge("x.y")


def test_registry_invalid_names_rejected():
    reg = MetricsRegistry()
    for bad in ("", ".leading", "trailing."):
        with pytest.raises(MetricsError):
            reg.counter(bad)


def test_registry_lookup_and_prefix():
    reg = MetricsRegistry()
    reg.counter("blk.hwq0.dispatched")
    reg.counter("blk.hwq1.dispatched")
    reg.counter("net.messages")
    assert "blk.hwq0.dispatched" in reg
    assert reg.names("blk.") == ["blk.hwq0.dispatched", "blk.hwq1.dispatched"]
    assert list(reg.collect("net.")) == ["net.messages"]
    with pytest.raises(MetricsError):
        reg.get("nope")


def test_empty_registry_is_truthy():
    # Components rely on ``metrics or NULL_METRICS``; an empty registry
    # must not be swallowed by that fallback.
    assert bool(MetricsRegistry())
    assert bool(NullMetricsRegistry())


def test_registry_snapshot_flattens():
    reg = MetricsRegistry()
    reg.counter("c").add(2)
    reg.gauge("g").set(1.5)
    reg.distribution("d").record(4)
    reg.latency("l").record(2_000)
    m = reg.meter("m")
    m.start(0)
    m.record(kib(4), 1_000)
    reg.timeseries("t").record(0, 2.0)
    snap = reg.snapshot(end_ns=10)
    assert snap["c"] == 2
    assert snap["g"] == 1.5
    assert snap["d"]["mean"] == pytest.approx(4.0)
    assert snap["l"]["mean_us"] == pytest.approx(2.0)
    assert snap["m"]["ops"] == 1
    assert snap["t"]["time_weighted_mean"] == pytest.approx(2.0)


def test_registry_render():
    reg = MetricsRegistry()
    reg.counter("blk.bios").add(5)
    out = reg.render()
    assert "blk.bios" in out and "5" in out
    assert MetricsRegistry().render() == "(no metrics registered)"


# --- null registry ------------------------------------------------------------


def test_null_registry_shares_noop_instruments():
    assert NULL_METRICS.enabled is False
    assert NULL_METRICS.counter("a") is NULL_METRICS.counter("b")
    c = NULL_METRICS.counter("a")
    c.add(10)
    assert c.value == 0
    m = NULL_METRICS.meter("m")
    m.start(5)
    m.record(kib(4), 10)
    assert m.ops == 0 and m.start_ns is None
    ts = NULL_METRICS.timeseries("t")
    ts.record(0, 1.0)
    assert ts.times == []
    assert len(NULL_METRICS) == 0


# --- framework wiring ---------------------------------------------------------


def _run_job(metrics):
    fw = build_framework(DELIBAK, metrics=metrics)
    job = FioJob("m", "randwrite", bs=kib(4), iodepth=2, nrequests=20)
    proc = fw.env.process(fw.run_fio(job))
    fw.env.run()
    assert proc.ok
    return fw, proc.value


def test_framework_registers_layer_metrics():
    fw, _ = _run_job(metrics=True)
    reg = fw.metrics
    for name in (
        "blk.hwq0.depth",
        "blk.bios_submitted",
        "uring.sqe_batch_size",
        "uring.sqes_submitted",
        "driver.uifd.requests",
        "fpga.qdma.h2c_bytes",
        "net.messages",
        "osd.0.op_latency",
        "api.io_uring.throughput",
        "framework.m.throughput",
    ):
        assert name in reg, f"{name} missing"
    assert reg.counter("blk.bios_submitted").value == 20
    assert reg.counter("uring.sqes_submitted").value == 20
    assert reg.counter("net.messages").value > 0
    osd_ops = sum(reg.counter(n).value for n in reg.names("osd.") if n.endswith(".ops"))
    assert osd_ops == fw.cluster.total_ops_served()


def test_framework_throughput_meter_windows():
    fw, result = _run_job(metrics=True)
    meter = fw.metrics.meter("framework.m.throughput")
    assert meter.ops == 1  # one job-level record of the merged result
    assert meter.bytes == result.bytes_moved
    eng = fw.metrics.meter("api.io_uring.throughput")
    assert eng.ops == result.ios
    # Window opens at submission start, so the engine rate matches the
    # RunResult's own accounting.
    assert eng.mb_per_sec() == pytest.approx(result.throughput_mb_s(), rel=1e-6)


def test_framework_queue_depth_summary():
    fw, _ = _run_job(metrics=True)
    depth = fw.blk.queue_depth_summary(fw.env.now)
    assert depth and all(v >= 0.0 for v in depth.values())
    # Disabled framework: the null time series never records.
    fw_off, _ = _run_job(metrics=False)
    assert fw_off.blk.queue_depth_summary(fw_off.env.now) == {}


def test_metrics_disabled_results_bit_identical():
    _, on = _run_job(metrics=True)
    _, off = _run_job(metrics=False)
    assert on.latencies_ns == off.latencies_ns
    assert on.bytes_moved == off.bytes_moved
    assert on.started_at == off.started_at
    assert on.finished_at == off.finished_at


def test_shared_registry_across_frameworks():
    reg = MetricsRegistry()
    fw = build_framework(DELIBAK, metrics=reg)
    assert fw.metrics is reg
    assert "net.messages" in reg
