"""Fig. 7 reproduction: hardware replication KIOPS, D1/D2/D-K."""

from repro.bench import exp_fig7
from repro.bench.paper_data import HEADLINE_IOPS_SPEEDUP
from repro.units import kib


def test_fig7_hw_kiops_replication(benchmark, report):
    result = benchmark.pedantic(exp_fig7, rounds=1, iterations=1)
    report(result)
    grid = {(r[0], r[1]): r[2:5] for r in result.rows}
    for key, (d1, d2, dk) in grid.items():
        assert dk > d2 > 0, f"{key}: ordering broken"
    # Small-block random KIOPS gain should be in the headline's 3.2x league.
    _, d2, dk = grid[("rand-write", kib(4))]
    assert 2.0 < dk / d2 < 5.0, f"KIOPS speedup {dk / d2:.2f} vs paper ~{HEADLINE_IOPS_SPEEDUP}"
