"""Abstract/Section V reproduction: ~30% execution-time reduction on
real-world OLAP/OLTP workloads."""

from repro.bench import exp_realworld


def test_realworld_olap_oltp(benchmark, report):
    result = benchmark.pedantic(exp_realworld, rounds=1, iterations=1)
    report(result)
    for row in result.rows:
        workload, d2, dk, reduction, _paper = row
        assert dk < d2, f"{workload}: D-K {dk} !< D2 {d2}"
        pct = float(reduction.rstrip("%"))
        assert 15 <= pct <= 45, f"{workload}: reduction {pct}% too far from paper's ~30%"
