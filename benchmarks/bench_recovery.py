"""Self-healing reproduction: recovery time and client impact.

Not a paper figure — validates the online recovery subsystem: killing an
OSD mid-workload must heal through the fabric (PG_LIST/PULL/PUSH) while
the client keeps reading and writing with zero hard-failures, and a
revived OSD must be backfilled without resurrecting stale data.
"""

from repro.bench.recovery import exp_recovery


def test_recovery_self_healing(benchmark, report):
    result = benchmark.pedantic(lambda: exp_recovery(smoke=True), rounds=1, iterations=1)
    report(result)
    rows = {r[0]: r for r in result.rows}
    for name, row in rows.items():
        # Availability: zero client hard-failures while the cluster heals.
        assert row[8] == 0, f"{name}: {row[8]} client hard-failures"
        # Integrity: byte-identical reads and a clean deep scrub.
        assert row[11] == "y", f"{name}: scrub dirty or reads diverged"
        # Every recovery byte moved through the fabric.
        assert row[3] > 0, f"{name}: no recovery bytes pushed"
    # Revive doubles the work (backfill out, then backfill back).
    assert rows["rep-kill1-revive"][4] > rows["rep-kill1"][4]
    assert rows["ec-kill1-revive"][4] > rows["ec-kill1"][4]
    # The revive path trims the strays left on remapped members.
    assert rows["rep-kill1-revive"][6] > 0
    assert "throttle sweep" in result.notes
