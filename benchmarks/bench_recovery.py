"""Self-healing reproduction: recovery time and client impact.

Not a paper figure — validates the online recovery subsystem: killing an
OSD mid-workload must heal through the fabric (PG_LIST/PULL/PUSH) while
the client keeps reading and writing with zero hard-failures, and a
revived OSD must be backfilled without resurrecting stale data.
"""

from repro.bench.recovery import DELTA_SCENARIO, SCENARIOS, exp_recovery, run_recovery_scenario


def test_recovery_self_healing(benchmark, report):
    result = benchmark.pedantic(lambda: exp_recovery(smoke=True), rounds=1, iterations=1)
    report(result)
    rows = {r[0]: r for r in result.rows}
    for name, row in rows.items():
        # Availability: zero client hard-failures while the cluster heals.
        assert row[8] == 0, f"{name}: {row[8]} client hard-failures"
        # Integrity: byte-identical reads and a clean deep scrub.
        assert row[11] == "y", f"{name}: scrub dirty or reads diverged"
        # Every recovery byte moved through the fabric.
        assert row[3] > 0, f"{name}: no recovery bytes pushed"
    # Revive doubles the work (backfill out, then backfill back).
    assert rows["rep-kill1-revive"][4] > rows["rep-kill1"][4]
    assert rows["ec-kill1-revive"][4] > rows["ec-kill1"][4]
    # The revive path trims the strays left on remapped members.
    assert rows["rep-kill1-revive"][6] > 0
    assert "throttle sweep" in result.notes
    assert "delta recovery" in result.notes


def test_delta_recovery_vs_full_backfill(benchmark):
    """A power-cycled (WAL-replaying) OSD rejoins with log-based delta
    recovery: only the ops missed during the outage move, measurably
    fewer bytes than the wipe-and-backfill path on the same schedule."""

    def _run():
        delta = run_recovery_scenario(DELTA_SCENARIO, seed=0, nobjects=12)
        full = run_recovery_scenario(SCENARIOS[1], seed=0, nobjects=12)
        return delta, full

    delta, full = benchmark.pedantic(_run, rounds=1, iterations=1)
    # The delta path still moves real bytes (outage-era writes)...
    assert delta.bytes_pushed > 0
    # ...but strictly fewer than the full backfill of the same OSD.
    assert delta.bytes_pushed < full.bytes_pushed, (
        f"delta recovery pushed {delta.bytes_pushed} bytes, "
        f"full backfill only {full.bytes_pushed}"
    )
    # Same availability/integrity invariants as the wipe path.
    assert delta.client_failures == 0
    assert delta.read_mismatches == 0
    assert delta.scrub_clean
    assert delta.unrecoverable == 0
