"""Fig. 3 reproduction: software baselines, replication mode.

Latency and throughput of 4 kB and 128 kB I/Os with DeLiBA-K's io_uring
host stack vs DeLiBA-2's NBD stack, both without FPGA acceleration.
"""

from repro.bench import exp_fig3
from repro.units import kib


def test_fig3_sw_replication(benchmark, report):
    result = benchmark.pedantic(exp_fig3, rounds=1, iterations=1)
    report(result)
    lat = {(r[1], r[2]): (r[3], r[4]) for r in result.rows if r[0] == "latency-us"}
    # DeLiBA-K's software stack must beat DeLiBA-2's on every 4 kB workload.
    for workload in ("seq-read", "seq-write", "rand-read", "rand-write"):
        d2, dk = lat[(workload, kib(4))]
        assert dk < d2, f"{workload}: D-K sw {dk} !< D2 sw {d2}"
    # Paper checkpoint: rand-read 4 kB drops from ~130 to ~85 us.
    d2, dk = lat[("rand-read", kib(4))]
    assert 0.5 < dk / 85.0 < 1.5, f"D-K sw rand-read {dk} too far from paper 85 us"
    assert 0.5 < d2 / 130.0 < 1.5, f"D2 sw rand-read {d2} too far from paper 130 us"
