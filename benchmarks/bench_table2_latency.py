"""Table II reproduction: 4 kB end-to-end latency across hardware stacks."""

from repro.bench import exp_table2
from repro.bench.paper_data import TABLE2_ERASURE, TABLE2_REPLICATION


def test_table2_latency(benchmark, report):
    result = benchmark.pedantic(exp_table2, rounds=1, iterations=1)
    report(result)
    rows = {(r[0], r[1]): r[2:6] for r in result.rows}
    # Orderings: D-K < D2 < D1 on every replication column.
    for col in range(4):
        assert rows[("replicated", "D-K")][col] < rows[("replicated", "D2")][col]
        assert rows[("replicated", "D2")][col] < rows[("replicated", "D1")][col]
        assert rows[("erasure", "D-K")][col] < rows[("erasure", "D2")][col]
    # Magnitudes near the paper's cells.  EC gets a looser bound: the
    # paper's EC latencies sit *below* its replication ones (48 us
    # seq-read), which a k-shard gather cannot mechanistically beat; see
    # EXPERIMENTS.md.
    for (pool, label, paper) in (
        ("replicated", "D-K", TABLE2_REPLICATION["delibak"]),
        ("replicated", "D2", TABLE2_REPLICATION["deliba2"]),
        ("replicated", "D1", TABLE2_REPLICATION["deliba1"]),
        ("erasure", "D-K", TABLE2_ERASURE["delibak"]),
        ("erasure", "D2", TABLE2_ERASURE["deliba2"]),
    ):
        cap = 1.8 if pool == "replicated" else 2.1
        for measured, reference in zip(rows[(pool, label)], paper):
            assert 0.5 < measured / reference < cap, (
                f"{pool}/{label}: {measured} us vs paper {reference} us"
            )
