"""Shared helpers for the paper-reproduction benchmarks.

Each benchmark renders its table to stdout *and* persists it under
``benchmarks/results/`` so the full reproduction report survives pytest's
output capture.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Callable saving a rendered experiment table to the results dir."""

    def _save(exp_result) -> None:
        from repro.bench import export_csv

        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{exp_result.exp_id}.txt"
        text = exp_result.render()
        path.write_text(text + "\n")
        export_csv(exp_result, RESULTS_DIR / f"{exp_result.exp_id}.csv")
        print(f"\n{text}\n[saved to {path}]")

    return _save
