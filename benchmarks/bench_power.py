"""Section V-c reproduction: full-load power with/without DFX."""

import pytest

from repro.bench import exp_power
from repro.bench.paper_data import POWER_NO_PR_W, POWER_WITH_PR_W


def test_power_scenarios(benchmark, report):
    result = benchmark.pedantic(exp_power, rounds=1, iterations=1)
    report(result)
    no_pr = result.rows[0][1]
    with_pr = result.rows[1][1]
    assert no_pr == pytest.approx(POWER_NO_PR_W, abs=8)
    assert with_pr == pytest.approx(POWER_WITH_PR_W, abs=8)
    assert no_pr - with_pr > 15  # PR saves ~25 W
