"""Section VI comparison points: tail latency and peak IOPS.

The paper positions DeLiBA-K against Electrode (99th-percentile 49 us,
65K IOPS; DeLiBA-K: 40 us p99, 59K IOPS max) and UrsaX (<100 us 4 kB
random I/O).  This bench measures the simulated DeLiBA-K's p99 latency
and peak small-block KIOPS and checks they land in the cited league.
"""

from repro.bench.paper_data import MAX_KIOPS_DELIBAK, P99_LATENCY_US_DELIBAK
from repro.deliba import DELIBAK, run_job_on
from repro.units import kib, mib
from repro.workloads import FioJob


def run_related_work():
    lat = run_job_on(
        DELIBAK, FioJob("p99", "randread", bs=kib(4), iodepth=1, nrequests=200, size=mib(64))
    )
    peak = run_job_on(
        DELIBAK, FioJob("peak", "randread", bs=kib(4), iodepth=16, nrequests=400, size=mib(64))
    )
    return {
        "p99_us": lat.p99_latency_us(),
        "mean_us": lat.mean_latency_us(),
        "peak_kiops": peak.kiops(),
    }


def test_related_work_comparison(benchmark, report):
    m = benchmark.pedantic(run_related_work, rounds=1, iterations=1)
    from repro.bench.experiments import ExperimentResult

    result = ExperimentResult(
        "related-work",
        "Section VI comparison points (D-K)",
        ["metric", "measured", "paper"],
        [
            ["p99 latency (4 kB rand-read, us)", round(m["p99_us"], 1), P99_LATENCY_US_DELIBAK],
            ["mean latency (us)", round(m["mean_us"], 1), "~64 (Table II)"],
            ["peak small-block KIOPS", round(m["peak_kiops"], 1), MAX_KIOPS_DELIBAK],
        ],
        notes="paper cites p99 40 us vs Electrode's 49 us, and 59K IOPS max; "
        "UrsaX does <100 us 4 kB I/O — D-K must stay well under that.",
    )
    report(result)
    # In the cited league: p99 under UrsaX's 100 us.  Peak KIOPS runs
    # above the paper's 59K because the prototype's per-request FSM
    # serialization ceiling is not modeled (our card pipelines requests);
    # require the same order of magnitude.
    assert m["p99_us"] < 100.0
    assert MAX_KIOPS_DELIBAK / 3 < m["peak_kiops"] < MAX_KIOPS_DELIBAK * 5
