"""Fig. 8 reproduction: hardware EC throughput, D2 vs D-K."""

from repro.bench import exp_fig8


def test_fig8_hw_throughput_ec(benchmark, report):
    result = benchmark.pedantic(exp_fig8, rounds=1, iterations=1)
    report(result)
    for row in result.rows:
        workload, bs, d2, dk = row
        assert dk > d2, f"{workload}@{bs}: D-K {dk} !> D2 {d2}"
