"""Chaos reproduction: availability and tail latency under injected faults.

Not a paper figure — validates the fault-tolerance datapath: a replica
crash mid-run must be absorbed by retry/failover with zero client-visible
errors, and message-level chaos must cost tail latency, not correctness.
"""

from repro.bench.chaos import exp_chaos


def test_chaos_fault_tolerance(benchmark, report):
    result = benchmark.pedantic(lambda: exp_chaos(smoke=True), rounds=1, iterations=1)
    report(result)
    rows = {r[0]: r for r in result.rows}
    # Every scenario completes with full availability (errors are retried
    # away, never surfaced to the client).
    for name, row in rows.items():
        assert row[2] == 0, f"{name}: {row[2]} client-visible errors"
        assert row[3] == 100.0, f"{name}: availability {row[3]}%"
    # The crash scenario actually exercised the fault path.
    crash = rows["crash-replica"]
    assert crash[8] + crash[10] > 0, "crash run saw no retries or failovers"
    # Faults cost tail latency: lossy fabric p99 well above baseline p99.
    assert rows["lossy-fabric"][5] > rows["baseline"][5]
    assert "determinism (same seed, two runs): PASS" in result.notes
