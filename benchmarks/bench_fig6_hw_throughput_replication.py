"""Fig. 6 reproduction: hardware replication throughput, D1/D2/D-K."""

from repro.bench import exp_fig6
from repro.units import kib


def test_fig6_hw_throughput_replication(benchmark, report):
    result = benchmark.pedantic(exp_fig6, rounds=1, iterations=1)
    report(result)
    grid = {(r[0], r[1]): r[2:5] for r in result.rows}  # (d1, d2, dk)
    # D-K wins every cell; D2 beats D1 on random writes.
    for key, (d1, d2, dk) in grid.items():
        assert dk > d2, f"{key}: D-K {dk} !> D2 {d2}"
    d1, d2, dk = grid[("rand-write", kib(4))]
    assert d2 > d1
    # Paper checkpoints: 4 kB rand-write speedup ~3.45x, 128 kB seq-write ~2x.
    assert 2.0 < dk / d2 < 5.0, f"rand-write 4k speedup {dk / d2:.2f} vs paper 3.45"
    _, d2s, dks = grid[("seq-write", kib(128))]
    assert 1.5 < dks / d2s < 3.2, f"seq-write 128k speedup {dks / d2s:.2f} vs paper 2.0"
