"""Multi-tenancy scaling: DeLiBA-K's SR-IOV VFs vs the shared NBD daemon.

The paper names missing multi-tenancy as one of the three problems of
DeLiBA-1/2 (Section III): every tenant's I/O funnels through one
user-space daemon, while DeLiBA-K gives each VM its own QDMA virtual
function and io_uring instances.  This bench runs three concurrent
tenants on both architectures and compares aggregate throughput.
"""

from repro.api import SyncEngine, UringEngine
from repro.bench.experiments import ExperimentResult
from repro.blk import BlkMqConfig, BlockLayer, DMQ_CONFIG
from repro.deliba import DELIBA2, DELIBAK, build_framework
from repro.driver import DELIBA2_NBD, NbdDriver, UifdDriver
from repro.host import HostKernel
from repro.osd import RBDImage
from repro.sim import Resource
from repro.units import kib, mib
from repro.workloads import FioJob

TENANTS = 3


def _tenant_job():
    return FioJob("mt", "randwrite", bs=kib(4), iodepth=4, nrequests=120, size=mib(32))


def _run_tenants(base, engines):
    env = base.env
    job = _tenant_job()
    procs = [
        env.process(engine.run(job.make_bios(base.rng.stream(f"mt{i}")), job.iodepth))
        for i, engine in enumerate(engines)
    ]
    env.run()
    results = [p.value for p in procs]
    elapsed = max(r.finished_at for r in results) - min(r.started_at for r in results)
    total_bytes = sum(r.bytes_moved for r in results)
    return (total_bytes / 1e6) / (elapsed / 1e9)  # aggregate MB/s


def run_multi_tenant():
    # DeLiBA-K: per-tenant UIFD driver on its own SR-IOV VF.
    dk = build_framework(DELIBAK)
    dk_engines = []
    for vf in range(1, TENANTS + 1):
        client = dk.cluster.new_client(f"vm{vf}")
        image = RBDImage(f"vm{vf}", mib(64), dk.pool, client, direct=True)
        kernel = HostKernel(dk.env)
        driver = UifdDriver(
            dk.env, kernel, image, qdma=dk.qdma,
            crush_accel=dk.accelerators["crush"], ec_accel=dk.accelerators["ec"],
            function=vf,
        )
        blk = BlockLayer(dk.env, kernel, driver.queue_rq, DMQ_CONFIG)
        dk_engines.append(UringEngine(dk.env, kernel, blk, num_instances=2))
    dk_aggregate = _run_tenants(dk, dk_engines)

    # DeLiBA-2: every tenant image behind ONE user-space NBD daemon.
    d2 = build_framework(DELIBA2)
    shared_daemon = Resource(d2.env, capacity=1, name="nbd.shared")
    d2_engines = []
    for t in range(1, TENANTS + 1):
        client = d2.cluster.new_client(f"vm{t}")
        image = RBDImage(f"vm{t}", mib(64), d2.pool, client, direct=True)
        kernel = HostKernel(d2.env)
        driver = NbdDriver(
            d2.env, kernel, image, DELIBA2_NBD, qdma=d2.qdma,
            crush_accel=d2.accelerators["crush"], ec_accel=d2.accelerators["ec"],
            shared_daemon=shared_daemon,
        )
        blk = BlockLayer(d2.env, kernel, driver.queue_rq, BlkMqConfig())
        d2_engines.append(SyncEngine(d2.env, kernel, blk))
    d2_aggregate = _run_tenants(d2, d2_engines)

    return ExperimentResult(
        "multi-tenant",
        f"aggregate throughput of {TENANTS} concurrent tenants (4 kB rand-write)",
        ["architecture", "aggregate MB/s", "per-tenant MB/s"],
        [
            ["D-K (SR-IOV VFs + UIFD)", round(dk_aggregate, 1), round(dk_aggregate / TENANTS, 1)],
            ["D2 (shared NBD daemon)", round(d2_aggregate, 1), round(d2_aggregate / TENANTS, 1)],
        ],
        notes="the missing-multi-tenancy problem of Section III, quantified",
    )


def test_multi_tenant_scaling(benchmark, report):
    result = benchmark.pedantic(run_multi_tenant, rounds=1, iterations=1)
    report(result)
    dk = result.rows[0][1]
    d2 = result.rows[1][1]
    # Isolated VFs must beat the serialized daemon by a wide margin.
    assert dk > d2 * 2, f"D-K {dk} MB/s vs D2 {d2} MB/s"
