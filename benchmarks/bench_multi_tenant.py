"""Multi-tenancy: SR-IOV VF scaling *and* mClock fairness at the OSDs.

The paper names missing multi-tenancy as one of the three problems of
DeLiBA-1/2 (Section III): every tenant's I/O funnels through one
user-space daemon, while DeLiBA-K gives each VM its own QDMA virtual
function and io_uring instances.  Two benches cover the two halves of
the story:

* ``test_multi_tenant_scaling`` — three concurrent tenants on both
  architectures; the isolated-VF stack must beat the serialized daemon.
  Each tenant's :class:`~repro.workloads.FioJob` is tenant-stamped, so
  the identity rides the whole datapath (bio -> blk-mq -> driver ->
  RADOS op) even with QoS off.
* ``test_qos_fairness_sweep`` — what happens *after* the VFs converge
  on shared OSDs: the >= 16-tenant mixed-profile mClock sweep
  (:mod:`repro.bench.qosbench`), asserting the fairness shape per
  archetype (floors met, ceilings held, weights ordering the shares).
"""

from repro.api import SyncEngine, UringEngine
from repro.bench.experiments import ExperimentResult
from repro.bench.qosbench import REPLICATION, exp_qos, mixed_profiles, run_qos_scenario
from repro.blk import BlkMqConfig, BlockLayer, DMQ_CONFIG
from repro.deliba import DELIBA2, DELIBAK, build_framework
from repro.driver import DELIBA2_NBD, NbdDriver, UifdDriver
from repro.host import HostKernel
from repro.osd import RBDImage
from repro.sim import Resource
from repro.units import kib, mib, ms
from repro.workloads import FioJob

TENANTS = 3

SWEEP_TENANTS = 16
SWEEP_DURATION = ms(30)
SWEEP_WARMUP = ms(10)


def _tenant_job(tenant):
    return FioJob(
        "mt", "randwrite", bs=kib(4), iodepth=4, nrequests=120, size=mib(32),
        tenant=tenant,
    )


def _run_tenants(base, engines):
    env = base.env
    procs = [
        env.process(
            engine.run(
                _tenant_job(f"vm{i + 1}").make_bios(base.rng.stream(f"mt{i}")), 4
            )
        )
        for i, engine in enumerate(engines)
    ]
    env.run()
    results = [p.value for p in procs]
    elapsed = max(r.finished_at for r in results) - min(r.started_at for r in results)
    total_bytes = sum(r.bytes_moved for r in results)
    return (total_bytes / 1e6) / (elapsed / 1e9)  # aggregate MB/s


def run_multi_tenant():
    # DeLiBA-K: per-tenant UIFD driver on its own SR-IOV VF.
    dk = build_framework(DELIBAK)
    dk_engines = []
    for vf in range(1, TENANTS + 1):
        client = dk.cluster.new_client(f"vm{vf}")
        image = RBDImage(f"vm{vf}", mib(64), dk.pool, client, direct=True)
        kernel = HostKernel(dk.env)
        driver = UifdDriver(
            dk.env, kernel, image, qdma=dk.qdma,
            crush_accel=dk.accelerators["crush"], ec_accel=dk.accelerators["ec"],
            function=vf,
        )
        blk = BlockLayer(dk.env, kernel, driver.queue_rq, DMQ_CONFIG)
        dk_engines.append(UringEngine(dk.env, kernel, blk, num_instances=2))
    dk_aggregate = _run_tenants(dk, dk_engines)

    # DeLiBA-2: every tenant image behind ONE user-space NBD daemon.
    d2 = build_framework(DELIBA2)
    shared_daemon = Resource(d2.env, capacity=1, name="nbd.shared")
    d2_engines = []
    for t in range(1, TENANTS + 1):
        client = d2.cluster.new_client(f"vm{t}")
        image = RBDImage(f"vm{t}", mib(64), d2.pool, client, direct=True)
        kernel = HostKernel(d2.env)
        driver = NbdDriver(
            d2.env, kernel, image, DELIBA2_NBD, qdma=d2.qdma,
            crush_accel=d2.accelerators["crush"], ec_accel=d2.accelerators["ec"],
            shared_daemon=shared_daemon,
        )
        blk = BlockLayer(d2.env, kernel, driver.queue_rq, BlkMqConfig())
        d2_engines.append(SyncEngine(d2.env, kernel, blk))
    d2_aggregate = _run_tenants(d2, d2_engines)

    return ExperimentResult(
        "multi-tenant",
        f"aggregate throughput of {TENANTS} concurrent tenants (4 kB rand-write)",
        ["architecture", "aggregate MB/s", "per-tenant MB/s"],
        [
            ["D-K (SR-IOV VFs + UIFD)", round(dk_aggregate, 1), round(dk_aggregate / TENANTS, 1)],
            ["D2 (shared NBD daemon)", round(d2_aggregate, 1), round(d2_aggregate / TENANTS, 1)],
        ],
        notes="the missing-multi-tenancy problem of Section III, quantified",
    )


def test_multi_tenant_scaling(benchmark, report):
    result = benchmark.pedantic(run_multi_tenant, rounds=1, iterations=1)
    report(result)
    dk = result.rows[0][1]
    d2 = result.rows[1][1]
    # Isolated VFs must beat the serialized daemon by a wide margin.
    assert dk > d2 * 2, f"D-K {dk} MB/s vs D2 {d2} MB/s"


def test_qos_fairness_sweep(benchmark, report):
    """>= 16 tenants, four archetype profiles, one saturated pool."""
    result = benchmark.pedantic(
        lambda: exp_qos(smoke=True, ntenants=SWEEP_TENANTS), rounds=1, iterations=1
    )
    report(result)

    tenants = mixed_profiles(SWEEP_TENANTS)
    run = run_qos_scenario(
        tenants, seed=0, duration_ns=SWEEP_DURATION, warmup_ns=SWEEP_WARMUP
    )
    window_s = (SWEEP_DURATION - SWEEP_WARMUP) / 1e9
    for name, (spec, _depth) in tenants.items():
        s = run.tenants[name]
        if spec is not None and spec.reservation_iops:
            assert s.op_iops >= 0.95 * spec.reservation_iops, (
                f"{name}: {s.op_iops:,.0f} op-IOPS below floor "
                f"{spec.reservation_iops:,.0f}"
            )
        if spec is not None and spec.limit_iops is not None:
            slack = REPLICATION / window_s  # one in-flight write of slop
            assert s.op_iops <= spec.limit_iops + slack, (
                f"{name}: {s.op_iops:,.0f} op-IOPS above cap {spec.limit_iops:,.0f}"
            )
    # Weights order the shares: every weight-4 tenant out-runs every
    # default (weight-1) tenant, and by a wide margin in aggregate.
    w4 = [run.tenants[n].iops for n, (spec, _d) in tenants.items()
          if spec is not None and spec.weight == 4 and not spec.reservation_iops
          and spec.limit_iops is None]
    default = [run.tenants[n].iops for n, (spec, _d) in tenants.items()
               if spec is None]
    assert min(w4) > max(default), f"weight-4 {w4} vs default {default}"
    assert sum(w4) > 2 * sum(default)
