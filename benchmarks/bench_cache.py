"""Client block cache: hit-ratio/mode sweep and CI invariant smoke.

Not a paper figure — validates the Open-CAS-style cache tier added in
front of the RBD image.  As a pytest benchmark it runs the full mode
sweep and asserts the qualitative shape (write-back beats write-through
on a skewed mix, the hit-ratio curve never dips as capacity grows).  As
a script, ``--smoke`` runs the seeded invariant battery the ``cache-smoke``
CI job gates on, including the pass-through identity check.

Usage::

    python benchmarks/bench_cache.py --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_cache.py
"""

from __future__ import annotations

import argparse


def test_cache_mode_sweep(benchmark, report):
    from repro.bench.cachebench import exp_cache

    result = benchmark.pedantic(exp_cache, rounds=1, iterations=1)
    report(result)
    rows = {r[0]: r for r in result.rows}
    # Pass-through is indistinguishable from uncached.
    assert rows["cache-pt"][3] == rows["uncached"][3], "PT changed mean latency"
    assert rows["cache-pt"][4] == rows["uncached"][4], "PT changed throughput"
    # Write-back beats write-through on the skewed mix (same workload row).
    assert float(rows["cache-wb"][3]) < float(rows["cache-wt"][3])
    # Hit ratio never falls as the capacity sweep grows.
    curve = [float(rows[f"wt-{n}ln"][2]) for n in (16, 64, 256, 1024)]
    assert all(a <= b + 1e-9 for a, b in zip(curve, curve[1:]))
    # A warm write-back cache actually flushed dirty data in the background.
    assert int(rows["cache-wb"][5]) > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the seeded cache-invariant battery (CI gate)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--nrequests", type=int, default=200)
    args = parser.parse_args(argv)
    from repro.bench.cachebench import cache_smoke, exp_cache

    if args.smoke:
        code, report = cache_smoke(seed=args.seed, nreq=args.nrequests)
        print(report)
        return code
    print(exp_cache(seed=args.seed).render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
