"""Abstract headline reproduction: up to 3.2x IOPS / 3.45x throughput.

Doubles as the simulator's perf-regression harness (``--smoke``): a
reduced headline grid is run under a wall-clock measurement, normalized
by an in-process calibration loop (so the check is stable across
machines of different speed), and compared against the baseline recorded
in ``BENCH_3.json`` at the repository root.  CI fails the build when the
normalized wall-clock regresses by more than ``--tolerance`` (default
20%).

Usage::

    python benchmarks/bench_headline.py --smoke                  # check vs baseline
    python benchmarks/bench_headline.py --smoke --record-as baseline
    python benchmarks/bench_headline.py --smoke --record-as pre_pr
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import sys
import time

BENCH_JSON = pathlib.Path(__file__).resolve().parents[1] / "BENCH_3.json"

#: Reduced grid driven by the smoke run: both comparison frameworks over
#: the 4k/64k random cells (the hot cells of the paper grid), plus one
#: EC cell so the encode path is inside the measured window.
SMOKE_CELLS = (
    # (framework, rw, bs, iodepth, nrequests, pool)
    ("deliba2", "randread", 4096, 4, 80, "replicated"),
    ("deliba2", "randwrite", 4096, 4, 80, "replicated"),
    ("delibak", "randread", 4096, 4, 80, "replicated"),
    ("delibak", "randwrite", 4096, 4, 80, "replicated"),
    ("delibak", "randread", 65536, 4, 80, "replicated"),
    ("delibak", "randwrite", 65536, 4, 80, "replicated"),
    ("delibak", "randwrite", 4096, 4, 80, "erasure"),
)


def test_headline_speedups(benchmark, report):
    from repro.bench import exp_headline

    result = benchmark.pedantic(exp_headline, rounds=1, iterations=1)
    report(result)
    speedups = {row[0]: row[1] for row in result.rows}
    assert 2.0 < speedups["max throughput speedup"] < 5.5
    assert 2.0 < speedups["max IOPS speedup"] < 5.5


# -- smoke harness -----------------------------------------------------------


def _calibrate() -> float:
    """Seconds for a fixed CPU-bound reference loop (median of 3).

    The mix mirrors the simulator's instruction profile — pure-Python
    control flow, hashing, and small NumPy kernels — so the normalized
    wall-clock (workload / calibration) is comparable across machines.
    """
    import numpy as np

    samples = []
    buf = bytes(range(256)) * 256  # 64 KiB
    arr = np.arange(65536, dtype=np.uint8).reshape(256, 256)
    for _ in range(3):
        t0 = time.perf_counter()
        acc = 0
        for i in range(400_000):
            acc ^= i * 3
        for _ in range(50):
            hashlib.sha256(buf).hexdigest()
            np.bitwise_xor(arr, arr[::-1]).sum()
        samples.append(time.perf_counter() - t0)
    samples.sort()
    return samples[1]


def _run_cells() -> float:
    """Wall-clock seconds for one pass over the smoke grid (best of 2)."""
    from repro.bench.experiments import _run

    best = None
    for _ in range(2):
        t0 = time.perf_counter()
        for fw, rw, bs, iodepth, nreq, pool in SMOKE_CELLS:
            _run(fw, rw, bs, iodepth, nreq, pool)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best


def run_smoke() -> dict:
    """One measured smoke pass; returns the result record."""
    calib_s = _calibrate()
    wall_s = _run_cells()
    return {
        "wall_s": round(wall_s, 4),
        "calib_s": round(calib_s, 4),
        "normalized": round(wall_s / calib_s, 4),
        "cells": len(SMOKE_CELLS),
    }


def _load() -> dict:
    if BENCH_JSON.exists():
        return json.loads(BENCH_JSON.read_text())
    return {"bench": "bench_headline --smoke", "schema": 1}


def _save(doc: dict) -> None:
    BENCH_JSON.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="run the perf-regression smoke")
    parser.add_argument(
        "--record-as",
        metavar="KEY",
        help="record this run under KEY in BENCH_3.json (e.g. baseline, pre_pr) "
        "instead of checking for a regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="max allowed normalized wall-clock regression vs baseline (default 0.20)",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("only --smoke mode is scriptable; use pytest for the full benchmark")

    result = run_smoke()
    doc = _load()
    print(
        f"smoke: wall {result['wall_s']}s over {result['cells']} cells, "
        f"calibration {result['calib_s']}s, normalized {result['normalized']}"
    )

    if args.record_as:
        doc[args.record_as] = result
        if "pre_pr" in doc and args.record_as != "pre_pr":
            doc["speedup_vs_pre_pr"] = round(
                doc["pre_pr"]["normalized"] / result["normalized"], 3
            )
        _save(doc)
        print(f"recorded as {args.record_as!r} in {BENCH_JSON}")
        return 0

    baseline = doc.get("baseline")
    if baseline is None:
        print("no baseline recorded in BENCH_3.json; run with --record-as baseline first")
        return 2
    doc["current"] = result
    if "pre_pr" in doc:
        doc["speedup_vs_pre_pr"] = round(doc["pre_pr"]["normalized"] / result["normalized"], 3)
    _save(doc)
    limit = baseline["normalized"] * (1.0 + args.tolerance)
    verdict = "PASS" if result["normalized"] <= limit else "FAIL"
    print(
        f"regression check: current {result['normalized']} vs baseline "
        f"{baseline['normalized']} (limit {limit:.4f}): {verdict}"
    )
    if "speedup_vs_pre_pr" in doc:
        print(f"speedup vs pre-PR build: {doc['speedup_vs_pre_pr']}x")
    return 0 if verdict == "PASS" else 1


if __name__ == "__main__":
    raise SystemExit(main())
