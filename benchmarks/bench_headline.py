"""Abstract headline reproduction: up to 3.2x IOPS / 3.45x throughput."""

from repro.bench import exp_headline


def test_headline_speedups(benchmark, report):
    result = benchmark.pedantic(exp_headline, rounds=1, iterations=1)
    report(result)
    speedups = {row[0]: row[1] for row in result.rows}
    assert 2.0 < speedups["max throughput speedup"] < 5.5
    assert 2.0 < speedups["max IOPS speedup"] < 5.5
