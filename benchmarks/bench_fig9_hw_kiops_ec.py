"""Fig. 9 reproduction: hardware EC KIOPS, D2 vs D-K."""

from repro.bench import exp_fig9


def test_fig9_hw_kiops_ec(benchmark, report):
    result = benchmark.pedantic(exp_fig9, rounds=1, iterations=1)
    report(result)
    grid = {(r[0], r[1]): (r[2], r[3]) for r in result.rows}
    for key, (d2, dk) in grid.items():
        assert dk > d2, f"{key}: D-K {dk} !> D2 {d2}"
    # Related work cites D-K peaking at ~59 KIOPS: check the small-block peak
    # is in that order of magnitude.
    peak = max(dk for _, dk in grid.values())
    assert 15 < peak < 200, f"D-K peak KIOPS {peak} implausible vs paper's ~59"
