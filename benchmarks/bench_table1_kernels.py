"""Table I reproduction: per-kernel SW profile vs RTL vs FPGA execution."""

from repro.bench import exp_table1
from repro.bench.paper_data import TABLE1


def test_table1_kernels(benchmark, report):
    result = benchmark.pedantic(exp_table1, rounds=1, iterations=1)
    report(result)
    measured = {row[0]: row[5] for row in result.rows}
    for kernel, paper_row in TABLE1.items():
        paper_hw = paper_row[4]
        assert abs(measured[kernel] - paper_hw) / paper_hw < 0.25, (
            f"{kernel}: simulated standalone {measured[kernel]} us vs paper {paper_hw} us"
        )
