"""Fig. 4 reproduction: software baselines, erasure-coding mode."""

from repro.bench import exp_fig4
from repro.units import kib


def test_fig4_sw_ec(benchmark, report):
    result = benchmark.pedantic(exp_fig4, rounds=1, iterations=1)
    report(result)
    lat = {(r[1], r[2]): (r[3], r[4]) for r in result.rows if r[0] == "latency-us"}
    for workload in ("rand-read", "rand-write"):
        d2, dk = lat[(workload, kib(4))]
        assert dk < d2, f"{workload}: D-K sw {dk} !< D2 sw {d2}"
    # EC throughput gains noted against the paper's 2.4x / 2.88x.
    assert "x (paper" in result.notes
