"""Ablations over DeLiBA-K's design decisions (DESIGN.md Section 4).

Each test flips one knob and asserts the design choice pays off in the
direction the paper's architecture section argues.
"""

from repro.bench.ablations import (
    ablation_batching,
    ablation_dmq,
    ablation_instances,
    ablation_offload,
    ablation_polling,
    ablation_rtl_vs_hls,
)


def _cells(result):
    return {row[0]: {"lat": row[1], "mbs": row[2], "kiops": row[3]} for row in result.rows}


def test_ablation_dmq(benchmark, report):
    result = benchmark.pedantic(ablation_dmq, rounds=1, iterations=1)
    report(result)
    c = _cells(result)
    assert c["DMQ (bypass)"]["lat"] <= c["mq-deadline"]["lat"]


def test_ablation_batching(benchmark, report):
    result = benchmark.pedantic(ablation_batching, rounds=1, iterations=1)
    report(result)
    c = _cells(result)
    assert c["batch=16"]["kiops"] >= c["batch=1"]["kiops"]


def test_ablation_instances(benchmark, report):
    result = benchmark.pedantic(ablation_instances, rounds=1, iterations=1)
    report(result)
    c = _cells(result)
    # At this cluster scale the fabric dominates (see the lifecycle
    # trace), so extra instances add headroom rather than measured
    # throughput: require "never worse" here; the CPU-bound benefit
    # shows at the IOPS levels of the paper's multi-tenant deployments.
    assert c["3 instances, pinned"]["kiops"] >= c["1 instance"]["kiops"] * 0.98


def test_ablation_rtl_vs_hls(benchmark, report):
    result = benchmark.pedantic(ablation_rtl_vs_hls, rounds=1, iterations=1)
    report(result)
    c = _cells(result)
    assert c["RTL (235 MHz, fewer cycles)"]["lat"] <= c["HLS (DeLiBA-2 era)"]["lat"]


def test_ablation_offload(benchmark, report):
    result = benchmark.pedantic(ablation_offload, rounds=1, iterations=1)
    report(result)
    c = _cells(result)
    assert c["hardware (QDMA + RTL)"]["lat"] < c["software (host CPU)"]["lat"]
    assert c["hardware (QDMA + RTL)"]["mbs"] > c["software (host CPU)"]["mbs"]


def test_ablation_polling(benchmark, report):
    result = benchmark.pedantic(ablation_polling, rounds=1, iterations=1)
    report(result)
    c = _cells(result)
    assert c["polled (SQPOLL)"]["lat"] < c["interrupt-driven"]["lat"]


def test_ablation_media(benchmark, report):
    from repro.bench.ablations import ablation_media

    result = benchmark.pedantic(ablation_media, rounds=1, iterations=1)
    report(result)
    gains = [float(row[3].rstrip("x")) for row in result.rows]
    # D-K always wins, but by less as the media slows; on HDD it is ~1x.
    assert all(g >= 1.0 for g in gains)
    assert gains[0] > gains[1] > gains[2]
    assert gains[2] < 1.1
