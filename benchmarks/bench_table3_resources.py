"""Table III reproduction: U280 resource utilization."""

import pytest

from repro.bench import exp_table3
from repro.bench.paper_data import TABLE3_RMS, TABLE3_STATIC


def test_table3_resources(benchmark, report):
    result = benchmark.pedantic(exp_table3, rounds=1, iterations=1)
    report(result)
    rows = {r[0]: r for r in result.rows}
    for module, paper in TABLE3_STATIC.items():
        assert rows[module][2] == paper[0]  # LUT counts match exactly
        assert rows[module][3] == pytest.approx(paper[1], abs=0.35)
    for rm, paper in TABLE3_RMS.items():
        assert rows[rm][3] == pytest.approx(paper[1], abs=0.35)
