"""DeLiBA-K reproduction: a simulated FPGA-accelerated distributed storage stack.

See README.md for the architecture and DESIGN.md for the paper mapping.
Primary entry points: :func:`repro.deliba.build_framework` (assemble a
stack generation) and the experiment functions in :mod:`repro.bench`.
"""

__version__ = "1.0.0"
