"""I/O lifecycle tracing: the six stages of Figure 2, measured.

The paper names detailed profiling/tracing of the I/O path as future
work; this module provides it for the simulated stack.  A
:class:`Tracer` records (stage, start, end) spans per request id; the
standard stage names follow the six numbered optimizations of the
paper's architecture figure:

1. ``rings``      — io_uring submission/completion handling (batching,
                    zero-copy rings);
2. ``dmq``        — the modified multi-queue block layer;
3. ``qdma``       — descriptor + DMA transfer over PCIe;
4. ``accel``      — replication/EC accelerator compute;
5. ``fabric``     — network + OSD service (replication fan-out, TCP);
6. ``complete``   — completion delivery back to the application.

Enable with ``build_framework(..., trace=True)`` and read
``fw.tracer.summary()`` afterwards, or export the raw span stream with
:meth:`Tracer.export_chrome_trace` (loadable in ``chrome://tracing`` /
Perfetto) or :meth:`Tracer.export_csv` (flat, one row per span).
"""

from __future__ import annotations

import csv
import json
import pathlib
from dataclasses import dataclass, field
from typing import Iterator, Union

import numpy as np

from .errors import ReproError

#: Canonical stage order for reports.
STAGES = ("rings", "dmq", "qdma", "accel", "fabric", "complete")


@dataclass
class Span:
    """One timed stage of one request."""

    stage: str
    start_ns: int
    end_ns: int = -1

    @property
    def duration_ns(self) -> int:
        """Span length (0 while still open)."""
        return max(0, self.end_ns - self.start_ns) if self.end_ns >= 0 else 0


@dataclass
class RequestTrace:
    """All spans of one request."""

    request_id: int
    spans: list[Span] = field(default_factory=list)

    def stage_ns(self, stage: str) -> int:
        """Total time spent in ``stage`` across its spans."""
        return sum(s.duration_ns for s in self.spans if s.stage == stage)

    def entered(self, stage: str) -> bool:
        """True if the request has at least one span for ``stage``."""
        return any(s.stage == stage for s in self.spans)

    @property
    def total_ns(self) -> int:
        """End-to-end span of the request."""
        closed = [s for s in self.spans if s.end_ns >= 0]
        if not closed:
            return 0
        return max(s.end_ns for s in closed) - min(s.start_ns for s in closed)


class Tracer:
    """Collects per-request stage spans."""

    #: Flat tracers record stage lists only; :class:`repro.obs.CausalTracer`
    #: overrides this and additionally grows span trees.
    causal = False

    def __init__(self, env):
        self.env = env
        self.traces: dict[int, RequestTrace] = {}
        self._open: dict[tuple[int, str], Span] = {}
        #: request_id -> tenant label (QoS-tagged bios only); threaded
        #: into the Chrome-trace and CSV exports so multi-tenant runs
        #: keep per-tenant lanes instead of dropping the tag.
        self.tenants: dict[int, str] = {}

    def tag_request(self, request_id: int, tenant: str) -> None:
        """Remember which tenant issued ``request_id`` (idempotent)."""
        if tenant:
            self.tenants[request_id] = tenant

    def begin(self, request_id: int, stage: str) -> None:
        """Open a span (nested same-stage spans are rejected)."""
        key = (request_id, stage)
        if key in self._open:
            raise ReproError(f"span {stage!r} already open for request {request_id}")
        span = Span(stage, self.env.now)
        self._open[key] = span
        self.traces.setdefault(request_id, RequestTrace(request_id)).spans.append(span)

    def end(self, request_id: int, stage: str) -> None:
        """Close the matching span."""
        span = self._open.pop((request_id, stage), None)
        if span is None:
            raise ReproError(f"no open span {stage!r} for request {request_id}")
        span.end_ns = self.env.now

    def stage(self, request_id: int, stage: str):
        """Span as a with-statement context (synchronous sections only)."""
        return _SpanCtx(self, request_id, stage)

    def record(self, request_id: int, stage: str, start_ns: int, end_ns: int) -> None:
        """Append an already-closed span (retrospective instrumentation)."""
        if end_ns < start_ns:
            raise ReproError(f"span {stage!r} ends before it starts")
        self.traces.setdefault(request_id, RequestTrace(request_id)).spans.append(
            Span(stage, start_ns, end_ns)
        )

    # -- reporting ---------------------------------------------------------------

    def summary(self) -> dict[str, float]:
        """Mean microseconds per stage across all traced requests.

        Every request that *entered* a stage counts toward that stage's
        mean, including zero-duration visits — filtering those out would
        silently bias stage shares upward.

        Requests that never reached ``complete`` (failed by chaos, or
        in flight when the run ended) are surfaced under the
        ``"incomplete"`` key as a plain count: dropping them silently
        would bias chaos-run breakdowns toward the survivors.
        """
        out: dict[str, float] = {}
        if not self.traces:
            return out
        for stage in STAGES:
            vals = [t.stage_ns(stage) for t in self.traces.values() if t.entered(stage)]
            if vals:
                out[stage] = float(np.mean(vals)) / 1000.0
        incomplete = sum(1 for t in self.traces.values() if not t.entered("complete"))
        if incomplete:
            out["incomplete"] = incomplete
        return out

    def breakdown_table(self) -> str:
        """Render the mean per-stage latency contribution."""
        summary = self.summary()
        incomplete = summary.pop("incomplete", 0)
        total = sum(summary.values()) or 1.0
        lines = ["stage      mean-us   share"]
        for stage in STAGES:
            if stage in summary:
                lines.append(
                    f"{stage:10s} {summary[stage]:7.2f}  {summary[stage] / total:6.1%}"
                )
        if incomplete:
            lines.append(f"(+{int(incomplete)} request(s) never reached complete)")
        return "\n".join(lines)

    # -- span export -------------------------------------------------------------

    def iter_spans(self) -> Iterator[tuple[int, Span]]:
        """(request_id, span) for every *closed* span, deterministically
        ordered by start time, then request id, then canonical stage
        order — a pure function of the simulated run, so two seeded runs
        export identical streams."""
        flat = [
            (rid, span)
            for rid, trace in self.traces.items()
            for span in trace.spans
            if span.end_ns >= 0
        ]
        order = {stage: i for i, stage in enumerate(STAGES)}
        flat.sort(key=lambda e: (e[1].start_ns, e[0], order.get(e[1].stage, len(STAGES))))
        return iter(flat)

    def to_chrome_trace(self) -> dict:
        """The span stream as a Chrome trace-event object (JSON-ready).

        Complete ("X") events, one per span, timestamps in microseconds.
        Each *stage* renders as its own named track (``tid`` = canonical
        stage index): Perfetto then shows six readable lanes with every
        request's visit to a layer on that layer's lane, instead of one
        unreadable track per request.  The owning request stays in
        ``args.request_id``.

        QoS-tagged requests (see :meth:`tag_request`) additionally split
        into per-tenant lanes — ``"fabric [tenant-a]"`` — with stable
        tids assigned by sorted tenant name, and carry ``args.tenant``,
        so a multi-tenant run's interference pattern is visible per
        tenant rather than collapsed into one anonymous lane.
        """
        stage_tid = {stage: i for i, stage in enumerate(STAGES)}
        # Deterministic tenant lane block after the base stages (and the
        # reserved unknown-stage tid at len(STAGES)).
        tenants = sorted({t for t in self.tenants.values() if t})
        tenant_base = {
            tenant: len(STAGES) + 1 + i * len(STAGES) for i, tenant in enumerate(tenants)
        }
        events = []
        for rid, span in self.iter_spans():
            tenant = self.tenants.get(rid, "")
            stage_idx = stage_tid.get(span.stage)
            if tenant and stage_idx is not None:
                tid = tenant_base[tenant] + stage_idx
            else:
                tid = stage_idx if stage_idx is not None else len(STAGES)
            event = {
                "name": span.stage,
                "cat": "io",
                "ph": "X",
                "ts": span.start_ns / 1000.0,
                "dur": span.duration_ns / 1000.0,
                "pid": 0,
                "tid": tid,
                "args": {"request_id": rid, "start_ns": span.start_ns, "end_ns": span.end_ns},
            }
            if tenant:
                event["args"]["tenant"] = tenant
            events.append(event)
        meta = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "repro I/O lifecycle"},
            }
        ]
        used_tids = {e["tid"] for e in events}
        lane_names = dict(stage_tid)
        for tenant in tenants:
            for stage, idx in stage_tid.items():
                lane_names[f"{stage} [{tenant}]"] = tenant_base[tenant] + idx
        for lane, tid in lane_names.items():
            if tid in used_tids:
                meta.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": 0,
                        "tid": tid,
                        "args": {"name": lane},
                    }
                )
        return {"traceEvents": events + meta, "displayTimeUnit": "ns"}

    def export_chrome_trace(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the Chrome trace-event JSON; returns the path written."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome_trace(), indent=1))
        return path

    def export_csv(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the flat span table: one row per closed span."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["request_id", "tenant", "stage", "start_ns", "end_ns", "duration_ns"])
            for rid, span in self.iter_spans():
                writer.writerow([
                    rid, self.tenants.get(rid, ""), span.stage,
                    span.start_ns, span.end_ns, span.duration_ns,
                ])
        return path


class _SpanCtx:
    def __init__(self, tracer: Tracer, request_id: int, stage: str):
        self.tracer = tracer
        self.request_id = request_id
        self.stage = stage

    def __enter__(self):
        self.tracer.begin(self.request_id, self.stage)
        return self

    def __exit__(self, exc_type, exc, tb):
        self.tracer.end(self.request_id, self.stage)
        return False
