"""CMAC-only network monitoring (paper Section III-B).

"In addition to the QDMA interface, the UIFD provides access to the
CMAC block on the FPGA.  This is particularly useful in scenarios like
network monitoring in data centers, where data volumes are small, and
the system may rely solely on the CMAC interface without needing the
QDMA."

:class:`CmacNetworkMonitor` implements that scenario: a mirror tap on
the switch feeds frame headers into the CMAC, and the monitor keeps
per-flow statistics (frames, bytes, rates) without any descriptor/DMA
machinery in the path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import DriverError
from ..fpga.cmac import Cmac
from ..net.message import Message
from ..net.topology import Network
from ..sim import Environment
from ..units import SEC

#: Only frame headers are mirrored to the monitor (sFlow-style).
MIRROR_HEADER_BYTES = 128


@dataclass
class FlowStats:
    """Aggregate counters for one (src, dst) flow."""

    src: str
    dst: str
    frames: int = 0
    bytes: int = 0
    first_seen_ns: int = -1
    last_seen_ns: int = -1

    def rate_mb_s(self) -> float:
        """Observed MB/s between first and last frame."""
        span = self.last_seen_ns - self.first_seen_ns
        if span <= 0:
            return 0.0
        return (self.bytes / 1e6) / (span / SEC)


class CmacNetworkMonitor:
    """Passive per-flow monitor fed by a switch mirror port."""

    def __init__(self, env: Environment, network: Network, cmac: Optional[Cmac] = None):
        self.env = env
        self.network = network
        self.cmac = cmac or Cmac(env)
        self.flows: dict[tuple[str, str], FlowStats] = {}
        self._attached = False

    def attach(self) -> None:
        """Start mirroring switch traffic into the CMAC."""
        if self._attached:
            raise DriverError("monitor already attached")
        self.network.taps.append(self._on_frame)
        self._attached = True

    def detach(self) -> None:
        """Stop mirroring."""
        if not self._attached:
            raise DriverError("monitor not attached")
        self.network.taps.remove(self._on_frame)
        self._attached = False

    def _on_frame(self, message: Message) -> None:
        key = (message.src, message.dst)
        stats = self.flows.get(key)
        if stats is None:
            stats = self.flows[key] = FlowStats(message.src, message.dst)
            stats.first_seen_ns = self.env.now
        stats.frames += 1
        stats.bytes += message.size
        stats.last_seen_ns = self.env.now
        # Header mirror flows through the CMAC RX path (charged on the
        # card's clock; small by design — that's the point of the mode).
        self.env.process(
            self.cmac.receive(min(MIRROR_HEADER_BYTES, max(64, message.size))),
            name="cmac.mirror",
        )

    # -- reporting ----------------------------------------------------------------

    @property
    def total_frames(self) -> int:
        """Frames observed across all flows."""
        return sum(f.frames for f in self.flows.values())

    def top_talkers(self, n: int = 5) -> list[FlowStats]:
        """The ``n`` flows with the most bytes."""
        return sorted(self.flows.values(), key=lambda f: f.bytes, reverse=True)[:n]

    def report(self) -> str:
        """Human-readable flow table."""
        lines = [f"{'flow':34s} {'frames':>8s} {'bytes':>12s} {'MB/s':>8s}"]
        for stats in self.top_talkers(n=len(self.flows)):
            lines.append(
                f"{stats.src + ' -> ' + stats.dst:34s} {stats.frames:8d} "
                f"{stats.bytes:12d} {stats.rate_mb_s():8.1f}"
            )
        return "\n".join(lines)
