"""Shared helper: charge software CRUSH placement cost per object op.

Ceph clients cache PG -> OSD mappings per map epoch, so the profiled
CRUSH cost (paper Table I) is paid on cache misses (first touch of a PG,
or after an epoch change); hits pay only a hash + lookup.  The helper
warms the client's placement cache as a side effect, so the subsequent
data op resolves the same mapping for free.
"""

from __future__ import annotations

from typing import Generator

from ..blk import Request
from ..host.cpu import CpuCore
from ..osd.rbd import RBDImage
from ..units import us

#: Object-name hash + PG lookup on a warm cache.
PLACEMENT_HIT_NS = us(0.8)


def objects_spanned(image: RBDImage, request: Request) -> range:
    """Object indices a block request touches."""
    first = request.bios[0].offset // image.object_size
    last = (request.bios[0].offset + request.size - 1) // image.object_size
    return range(first, last + 1)


def charge_sw_placement(
    core: CpuCore,
    image: RBDImage,
    request: Request,
    miss_ns: int,
    hit_ns: int = PLACEMENT_HIT_NS,
    cached: bool = True,
) -> Generator:
    """Process: run placement for each object, charging miss/hit costs.

    ``cached=False`` models the DeLiBA-1/2-era software path (librbd-style
    per-op CRUSH, the 80%-of-runtime profile of paper Table I); DeLiBA-K's
    UIFD keeps a per-epoch placement cache and pays the full cost only on
    misses.
    """
    client = image.client
    for idx in objects_spanned(image, request):
        client.compute_placement(image.pool, image.object_name(idx))
        if cached:
            # last_was_miss is the client-level signal: True only when
            # CRUSH actually ran (a hit in the client's epoch-keyed
            # object cache implies the PG mapping was already computed
            # this epoch, so the charged cost is identical to consulting
            # the engine's PG cache directly).
            cost = miss_ns if client.last_was_miss else hit_ns
        else:
            cost = miss_ns
        yield from core.run(cost)
