"""UIFD: the DeLiBA-K Unified I/O FPGA Driver.

The in-kernel driver developed from scratch for DeLiBA-K (paper Section
III-B): it receives requests from the DMQ block layer, talks to the
U280 through QDMA descriptor rings, and contains the DeLiBA-K-specific
Ceph-RBD virtual-disk function (with SR-IOV virtual functions for VM
tenants).

Two operating modes:

* **hardware** — the datapath mode: payload moves over QDMA, CRUSH
  placement and replication/EC fan-out run on the FPGA's RTL
  accelerators, and the FPGA TCP stack talks to the OSDs directly
  (client ops use ``direct=True``: one hop per replica/shard);
* **software** — the Fig. 3/4 baseline: same driver structure, but
  placement runs on the host CPU at the profiled kernel cost and ops
  route through the primary OSD over kernel TCP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..blk import IoOp, Request
from ..errors import DriverError, StorageError
from ..fpga.accelerators import Accelerator
from ..fpga.qdma import QdmaEngine, QueuePurpose, QueueSet
from ..host import HostKernel
from ..osd.osdmap import PoolType
from ..osd.rbd import RBDImage
from ..sim import NULL_METRICS, Environment
from ..units import us
from .placement_cost import charge_sw_placement


@dataclass
class UifdConfig:
    """Cost/behaviour knobs of the driver."""

    #: Fixed driver CPU per request (descriptor build, doorbell, unmap).
    driver_cost_ns: int = us(1.2)
    #: Software CRUSH placement cost per object op (Table I, straw2 row)
    #: — charged only in software mode; hardware mode uses the accelerator.
    sw_placement_ns: int = us(48)
    #: Software RS encode cost per object op for EC pools.  UIFD's
    #: from-scratch kernel path uses a vectorized GF(2^8) kernel, far
    #: cheaper than the legacy 65 us client profile of Table I (which the
    #: NBD-era stacks still pay).
    sw_ec_encode_ns: int = us(18)
    #: Completion delivery: True = polled CQ (DeLiBA-K), False = MSI-X IRQ.
    polled_completion: bool = True
    #: Software mode: True keeps DeLiBA's client-side fan-out (the client
    #: computes placement + EC and addresses every replica/shard itself);
    #: False routes through the primary OSD like stock Ceph.
    client_fanout: bool = True


class UifdDriver:
    """One driver instance bound to one RBD image (one virtual disk)."""

    def __init__(
        self,
        env: Environment,
        kernel: HostKernel,
        image: RBDImage,
        config: Optional[UifdConfig] = None,
        qdma: Optional[QdmaEngine] = None,
        crush_accel: Optional[Accelerator] = None,
        ec_accel: Optional[Accelerator] = None,
        function: int = 0,
        hardware: bool = True,
        tracer=None,
        metrics=None,
    ):
        self.env = env
        self.kernel = kernel
        #: Optional repro.trace.Tracer for lifecycle spans.
        self.tracer = tracer
        metrics = metrics or NULL_METRICS
        self._m_requests = metrics.counter("driver.uifd.requests")
        self._m_request_ns = metrics.latency("driver.uifd.request_ns")
        self._m_placements = metrics.counter("driver.uifd.placements")
        self._m_errors = metrics.counter("driver.uifd.request_errors")
        self.image = image
        self.config = config or UifdConfig()
        self.hardware = hardware
        self.function = function
        self.qdma = qdma
        self.crush_accel = crush_accel
        self.ec_accel = ec_accel
        if hardware:
            if qdma is None or crush_accel is None:
                raise DriverError("hardware mode needs a QDMA engine and a CRUSH accelerator")
            purpose = (
                QueuePurpose.ERASURE_CODING
                if image.pool.pool_type == PoolType.ERASURE
                else QueuePurpose.REPLICATION
            )
            self.queue: Optional[QueueSet] = qdma.allocate_queue(purpose, function)
            if image.pool.pool_type == PoolType.ERASURE and ec_accel is None:
                raise DriverError("hardware mode on an EC pool needs the RS accelerator")
        else:
            self.queue = None
        self.core = kernel.cpus.pick_core()
        self.requests_completed = 0

    # -- blk-mq driver contract ---------------------------------------------------

    def queue_rq(self, request: Request) -> None:
        """Accept one request from the block layer (non-blocking)."""
        self.env.process(self._handle(request), name=f"uifd.rq{request.req_id}")

    def _handle(self, request: Request) -> Generator:
        t0 = self.env.now
        root = getattr(request, "_obs_span", None)
        yield from self.core.run(self.config.driver_cost_ns)
        if root is not None:
            # Driver CPU: descriptor build, doorbell, unmap.
            root.record("uifd", "driver", t0, self.env.now)
        try:
            if self.hardware:
                yield from self._handle_hw(request, root)
            else:
                yield from self._handle_sw(request, root)
        except StorageError as exc:
            # Never strand the request: complete it with a BLK_STS_*
            # status so the CQE surfaces a negative errno instead of the
            # waiter hanging on an event nobody will fire.
            request.fail_from_exc(exc)
            self._m_errors.add()
        request.completed_at = self.env.now
        self.requests_completed += 1
        self._m_requests.add()
        self._m_request_ns.record(self.env.now - t0)
        request.completion.succeed(request)

    # -- hardware datapath ------------------------------------------------------------

    def _objects_touched(self, request: Request) -> int:
        """How many RADOS objects the request spans (placement ops needed)."""
        first = request.bios[0].offset // self.image.object_size
        last = (request.bios[0].offset + request.size - 1) // self.image.object_size
        return last - first + 1

    def _handle_hw(self, request: Request, ctx=None) -> Generator:
        is_ec = self.image.pool.pool_type == PoolType.ERASURE
        trace = self.tracer
        if request.op == IoOp.WRITE:
            # Payload DMA to the card before the FPGA fans it out.
            t0 = self.env.now
            yield from self.qdma.h2c_transfer(self.queue, request.size)
            if trace:
                trace.record(request.req_id, "qdma", t0, self.env.now)
            if ctx is not None:
                ctx.record("qdma", "dma", t0, self.env.now, dir="h2c")
        # In-datapath CRUSH placement: pipelined, one item per object.
        t0 = self.env.now
        self._m_placements.add(self._objects_touched(request))
        yield from self.crush_accel.process(self._objects_touched(request))
        if is_ec and request.op == IoOp.WRITE:
            # RS encoder streams the payload in 32 B beats.
            yield from self.ec_accel.process(max(1, request.size // 32))
        if trace:
            trace.record(request.req_id, "accel", t0, self.env.now)
        if ctx is not None:
            ctx.record("accel", "compute", t0, self.env.now, objects=self._objects_touched(request))
        t0 = self.env.now
        fab = ctx.child("fabric", "net") if ctx is not None else None
        ok = False
        try:
            yield from self._image_io(request, direct=True, ctx=fab)
            ok = True
        finally:
            if fab is not None:
                fab.finish(ok=ok)
            if trace:
                trace.record(request.req_id, "fabric", t0, self.env.now)
        if request.op == IoOp.READ:
            t0 = self.env.now
            yield from self.qdma.c2h_transfer(self.queue, request.size)
            if trace:
                trace.record(request.req_id, "qdma", t0, self.env.now)
            if ctx is not None:
                ctx.record("qdma", "dma", t0, self.env.now, dir="c2h")
        if not self.config.polled_completion:
            yield from self.kernel.interrupt(self.core)

    # -- software baseline --------------------------------------------------------------

    def _handle_sw(self, request: Request, ctx=None) -> Generator:
        objects = self._objects_touched(request)
        t0 = self.env.now
        self._m_placements.add(objects)
        yield from charge_sw_placement(
            self.core, self.image, request, self.config.sw_placement_ns
        )
        fanout = self.config.client_fanout
        if fanout and self.image.pool.pool_type == PoolType.ERASURE and request.op == IoOp.WRITE:
            # Client-side encode (with direct=False the primary OSD
            # encodes and charges its own cost instead).
            yield from self.core.run(self.config.sw_ec_encode_ns * objects)
        if ctx is not None:
            ctx.record("placement", "compute", t0, self.env.now, objects=objects)
        fab = ctx.child("fabric", "net") if ctx is not None else None
        ok = False
        try:
            yield from self._image_io(request, direct=fanout, ctx=fab)
            ok = True
        finally:
            if fab is not None:
                fab.finish(ok=ok)

    # -- common ---------------------------------------------------------------------------

    def _image_io(self, request: Request, direct: bool, ctx=None) -> Generator:
        saved = self.image.direct
        self.image.direct = direct
        try:
            offset = request.bios[0].offset
            if request.op == IoOp.WRITE:
                data = request.data()
                if data is None:
                    data = b"\x00" * request.size
                yield from self.image.write(
                    offset, data, sequential=request.sequential, ctx=ctx,
                    tenant=request.tenant,
                )
            else:
                yield from self.image.read(
                    offset, request.size, ctx=ctx, tenant=request.tenant
                )
        finally:
            self.image.direct = saved
