"""NBD-based driver path used by DeLiBA-1 and DeLiBA-2.

The earlier frameworks exposed the accelerated storage as a Network
Block Device: the kernel's NBD client forwards each request over a unix
socket to a **user-space daemon**, which drives the FPGA.  That design is
exactly what DeLiBA-K eliminated, and its costs are explicit here:

* user/kernel boundary crossings per request — six for DeLiBA-1, five
  for DeLiBA-2 (paper Section III);
* a data copy per crossing;
* a single-threaded daemon event loop that serializes request handling
  (the multi-tenancy blocker the paper names).

Placement/EC still run on the FPGA (that was DeLiBA-1/2's contribution);
DeLiBA-1 used the *kernel* TCP stack for OSD traffic while DeLiBA-2's
HLS TCP ran on the card — expressed through the client entity's fabric
stack profile, configured by the framework layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..blk import IoOp, Request
from ..errors import DriverError, StorageError
from ..fpga.accelerators import Accelerator
from ..fpga.qdma import QdmaEngine, QueuePurpose, QueueSet
from ..host import HostKernel
from ..osd.osdmap import PoolType
from ..osd.rbd import RBDImage
from ..sim import Environment, Resource
from ..units import us
from .placement_cost import charge_sw_placement


@dataclass
class NbdConfig:
    """Cost/behaviour knobs of the NBD path."""

    #: Full context switches per request (D1's six crossings; D2 kept
    #: two switches but five data copies).
    crossings: int = 6
    #: User/kernel data copies per request.
    copies: int = 6
    #: Daemon event-loop CPU per request (epoll wakeup, socket parse).
    daemon_cost_ns: int = us(2.5)
    #: Daemon worker threads (1 = the single-threaded loop of D1/D2).
    daemon_threads: int = 1
    #: Passive offload (DeLiBA-1): every accelerator use is a
    #: host-initiated round trip (ioctl + H2C args + C2H result) instead
    #: of an in-datapath stage.
    passive_offload: bool = False
    #: Software CRUSH placement per object op (no-FPGA baseline).
    sw_placement_ns: int = us(48)
    #: Software RS encode per object op (no-FPGA baseline, EC pools).
    sw_ec_encode_ns: int = us(65)


#: Paper-stated costs: D1 has six context switches per I/O (and passive
#: offload); D2 reduced to two switches but still copies five times.
DELIBA1_NBD = NbdConfig(crossings=6, copies=6, passive_offload=True)
DELIBA2_NBD = NbdConfig(crossings=2, copies=5)


class NbdDriver:
    """Kernel NBD client + user-space daemon + FPGA back end."""

    def __init__(
        self,
        env: Environment,
        kernel: HostKernel,
        image: RBDImage,
        config: Optional[NbdConfig] = None,
        qdma: Optional[QdmaEngine] = None,
        crush_accel: Optional[Accelerator] = None,
        ec_accel: Optional[Accelerator] = None,
        hardware: bool = True,
        shared_daemon: Optional[Resource] = None,
        tracer=None,
    ):
        if hardware:
            if qdma is None or crush_accel is None:
                raise DriverError("hardware NBD path needs the FPGA (QDMA + CRUSH accelerator)")
            if image.pool.pool_type == PoolType.ERASURE and ec_accel is None:
                raise DriverError("EC pool needs the RS accelerator")
        self.env = env
        self.kernel = kernel
        #: Optional repro.trace.Tracer for lifecycle spans.
        self.tracer = tracer
        self.image = image
        self.config = config or NbdConfig()
        self.hardware = hardware
        self.qdma = qdma
        self.crush_accel = crush_accel
        self.ec_accel = ec_accel
        if hardware:
            purpose = (
                QueuePurpose.ERASURE_CODING
                if image.pool.pool_type == PoolType.ERASURE
                else QueuePurpose.REPLICATION
            )
            self.queue: Optional[QueueSet] = qdma.allocate_queue(purpose)
        else:
            self.queue = None
        self.core = kernel.cpus.pick_core()
        # Multi-tenant deployments of D1/D2 funnel every image through the
        # same user-space daemon — pass a shared Resource to model that.
        self._daemon = shared_daemon or Resource(
            env, capacity=self.config.daemon_threads, name="nbd.daemon"
        )
        self.requests_completed = 0

    def queue_rq(self, request: Request) -> None:
        """blk-mq driver entry point."""
        self.env.process(self._handle(request), name=f"nbd.rq{request.req_id}")

    def _handle(self, request: Request) -> Generator:
        trace = self.tracer
        root = getattr(request, "_obs_span", None)
        t0 = self.env.now
        # Kernel NBD client -> socket -> daemon: context switches plus
        # payload copies (counts differ per generation; paper Section III).
        for _ in range(self.config.crossings):
            yield from self.kernel.context_switch(self.core)
        for _ in range(self.config.copies):
            yield from self.kernel.copy(self.core, request.size)
        if root is not None:
            root.record(
                "nbd", "ipc", t0, self.env.now,
                crossings=self.config.crossings, copies=self.config.copies,
            )
        # The single-threaded daemon serializes request handling.
        tq = self.env.now
        req = self._daemon.request()
        yield req
        if root is not None:
            root.record("daemon", "queue", tq, self.env.now)
        try:
            yield from self.core.run(self.config.daemon_cost_ns)
            first = request.bios[0].offset // self.image.object_size
            last = (request.bios[0].offset + request.size - 1) // self.image.object_size
            objects = last - first + 1
            if self.hardware:
                if request.op == IoOp.WRITE:
                    t1 = self.env.now
                    yield from self.qdma.h2c_transfer(self.queue, request.size)
                    if trace:
                        trace.record(request.req_id, "qdma", t1, self.env.now)
                    if root is not None:
                        root.record("qdma", "dma", t1, self.env.now, dir="h2c")
                t1 = self.env.now
                if self.config.passive_offload:
                    # D1: each placement is a host-driven FPGA round trip
                    # (ioctl + driver arg marshalling + DMA + IRQ), the
                    # "passive offload" cost Section I criticizes.
                    for _ in range(objects):
                        yield from self.kernel.syscall(self.core)  # ioctl
                        yield from self.core.run(us(5))  # driver marshalling
                        yield from self.qdma.h2c_transfer(self.queue, 128)
                        yield from self.crush_accel.process(1)
                        yield from self.qdma.c2h_transfer(self.queue, 64)
                        yield from self.kernel.interrupt(self.core)
                else:
                    yield from self.crush_accel.process(objects)
                if self.image.pool.pool_type == PoolType.ERASURE and request.op == IoOp.WRITE:
                    yield from self.ec_accel.process(max(1, request.size // 32))
                if trace:
                    trace.record(request.req_id, "accel", t1, self.env.now)
                if root is not None:
                    root.record("accel", "compute", t1, self.env.now, objects=objects)
            else:
                # No-FPGA baseline: placement (and EC) on the host CPU,
                # with the profiled cost paid on placement-cache misses.
                t1 = self.env.now
                yield from charge_sw_placement(
                    self.core, self.image, request, self.config.sw_placement_ns, cached=False
                )
                if self.image.pool.pool_type == PoolType.ERASURE and request.op == IoOp.WRITE:
                    yield from self.core.run(self.config.sw_ec_encode_ns * objects)
                if root is not None:
                    root.record("placement", "compute", t1, self.env.now, objects=objects)
            t1 = self.env.now
            fab = root.child("fabric", "net") if root is not None else None
            ok = False
            try:
                yield from self._image_io(request, ctx=fab)
                ok = True
            finally:
                if fab is not None:
                    fab.finish(ok=ok)
                if trace:
                    trace.record(request.req_id, "fabric", t1, self.env.now)
            if self.hardware and request.op == IoOp.READ:
                t1 = self.env.now
                yield from self.qdma.c2h_transfer(self.queue, request.size)
                if trace:
                    trace.record(request.req_id, "qdma", t1, self.env.now)
                if root is not None:
                    root.record("qdma", "dma", t1, self.env.now, dir="c2h")
        except StorageError as exc:
            request.fail_from_exc(exc)
        finally:
            self._daemon.release(req)
        # Completion notification back through the daemon socket.
        yield from self.kernel.context_switch(self.core)
        request.completed_at = self.env.now
        self.requests_completed += 1
        request.completion.succeed(request)

    def _image_io(self, request: Request, ctx=None) -> Generator:
        saved = self.image.direct
        self.image.direct = True  # DeLiBA fan-out runs on the card
        try:
            offset = request.bios[0].offset
            if request.op == IoOp.WRITE:
                data = request.data() or b"\x00" * request.size
                yield from self.image.write(
                    offset, data, sequential=request.sequential, ctx=ctx,
                    tenant=request.tenant,
                )
            else:
                yield from self.image.read(
                    offset, request.size, ctx=ctx, tenant=request.tenant
                )
        finally:
            self.image.direct = saved
