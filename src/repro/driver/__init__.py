"""Block-device drivers: UIFD (DeLiBA-K), NBD (DeLiBA-1/2), stock RBD."""

from .cmac_monitor import CmacNetworkMonitor, FlowStats
from .nbd import DELIBA1_NBD, DELIBA2_NBD, NbdConfig, NbdDriver
from .rbd_kmod import RbdKmodConfig, RbdKmodDriver
from .uifd import UifdConfig, UifdDriver

__all__ = [
    "CmacNetworkMonitor",
    "DELIBA1_NBD",
    "FlowStats",
    "DELIBA2_NBD",
    "NbdConfig",
    "NbdDriver",
    "RbdKmodConfig",
    "RbdKmodDriver",
    "UifdConfig",
    "UifdDriver",
]
