"""Stock Ceph RBD kernel driver (the pure-software comparison point).

Models ``drivers/block/rbd.c`` behaviour: requests map to RADOS object
ops in kernel space, placement is computed on the host CPU (the profiled
Table I software cost), writes route through the primary OSD which fans
out replicas / encodes EC shards, and all traffic uses kernel TCP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..blk import IoOp, Request
from ..host import HostKernel
from ..osd.rbd import RBDImage
from ..sim import Environment
from ..units import us
from .placement_cost import charge_sw_placement


@dataclass
class RbdKmodConfig:
    """Cost knobs of the stock kernel driver."""

    #: Per-request driver CPU (img_request setup, obj_request mapping).
    driver_cost_ns: int = us(2.0)
    #: Software CRUSH placement per object op (Table I straw2 row).
    sw_placement_ns: int = us(48)


class RbdKmodDriver:
    """blk-mq driver backed by the in-kernel Ceph client."""

    def __init__(
        self,
        env: Environment,
        kernel: HostKernel,
        image: RBDImage,
        config: Optional[RbdKmodConfig] = None,
    ):
        self.env = env
        self.kernel = kernel
        self.image = image
        self.config = config or RbdKmodConfig()
        self.core = kernel.cpus.pick_core()
        self.requests_completed = 0

    def queue_rq(self, request: Request) -> None:
        """blk-mq driver entry point."""
        self.env.process(self._handle(request), name=f"rbd.rq{request.req_id}")

    def _handle(self, request: Request) -> Generator:
        yield from self.core.run(self.config.driver_cost_ns)
        yield from charge_sw_placement(
            self.core, self.image, request, self.config.sw_placement_ns, cached=False
        )
        saved = self.image.direct
        self.image.direct = False  # primary-mediated, like stock Ceph
        try:
            offset = request.bios[0].offset
            if request.op == IoOp.WRITE:
                data = request.data() or b"\x00" * request.size
                yield from self.image.write(
                    offset, data, sequential=request.sequential, tenant=request.tenant
                )
            else:
                yield from self.image.read(offset, request.size, tenant=request.tenant)
        finally:
            self.image.direct = saved
        request.completed_at = self.env.now
        self.requests_completed += 1
        request.completion.succeed(request)
