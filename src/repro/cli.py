"""Command-line interface: run jobs, experiments, and traces.

Usage (after install)::

    python -m repro frameworks
    python -m repro fio --framework delibak --rw randread --bs 4096 --iodepth 4
    python -m repro experiment table2
    python -m repro trace --framework delibak --rw randwrite
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .bench import breakdown, cachebench, experiments, qosbench
from .deliba import FRAMEWORKS, PoolSpec, build_framework, framework_by_name
from .units import kib
from .workloads import FioJob

#: Experiment name -> callable.
EXPERIMENTS = {
    "breakdown": breakdown.exp_breakdown,
    "cache": cachebench.exp_cache,
    "fig3": experiments.exp_fig3,
    "fig4": experiments.exp_fig4,
    "fig6": experiments.exp_fig6,
    "fig7": experiments.exp_fig7,
    "fig8": experiments.exp_fig8,
    "fig9": experiments.exp_fig9,
    "table1": experiments.exp_table1,
    "table2": experiments.exp_table2,
    "table3": experiments.exp_table3,
    "power": experiments.exp_power,
    "qos": qosbench.exp_qos,
    "realworld": experiments.exp_realworld,
    "headline": experiments.exp_headline,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DeLiBA-K reproduction: simulated storage-stack experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("frameworks", help="list the stack generations")

    fio = sub.add_parser("fio", help="run one fio-style job")
    fio.add_argument("--framework", default="delibak", choices=sorted(FRAMEWORKS))
    fio.add_argument("--rw", default="randread",
                     choices=["read", "write", "randread", "randwrite", "randrw"])
    fio.add_argument("--bs", type=int, default=kib(4), help="block size in bytes")
    fio.add_argument("--iodepth", type=int, default=4)
    fio.add_argument("--nrequests", type=int, default=200)
    fio.add_argument("--pool", default="replicated", choices=["replicated", "erasure"])
    fio.add_argument("--seed", type=int, default=0)
    fio.add_argument("--metrics", action="store_true",
                     help="collect and print per-layer metrics after the run")
    fio.add_argument("--cache-mode", metavar="MODE",
                     help="interpose the client block cache: pt, wt, wb, or wa")
    fio.add_argument("--cache-lines", type=int, default=512,
                     help="cache capacity in lines (with --cache-mode)")

    exp = sub.add_parser("experiment", help="reproduce one paper table/figure")
    exp.add_argument("name", choices=sorted(EXPERIMENTS) + ["all"])

    sweep = sub.add_parser("sweep", help="parameter sweep over frameworks/workloads")
    sweep.add_argument("--frameworks", nargs="+", default=["deliba2", "delibak"],
                       choices=sorted(FRAMEWORKS))
    sweep.add_argument("--rw", nargs="+", default=["randread", "randwrite"])
    sweep.add_argument("--bs", nargs="+", type=int, default=[kib(4), kib(64)])
    sweep.add_argument("--iodepth", nargs="+", type=int, default=[1, 4])
    sweep.add_argument("--pool", default="replicated", choices=["replicated", "erasure"])
    sweep.add_argument("--csv", help="also write the grid to this CSV path")

    cache = sub.add_parser("cache", help="client block cache: mode sweep and invariants")
    cache.add_argument("--smoke", action="store_true",
                       help="seeded invariant run; exit nonzero if pass-through is not "
                            "event-identical, the hit-ratio curve dips, skew does not "
                            "help, or write-back loses to write-through on hot writes")
    cache.add_argument("--seed", type=int, default=0)
    cache.add_argument("--nrequests", type=int, default=300)

    chaos = sub.add_parser("chaos", help="fault-tolerance datapath under chaos injection")
    chaos.add_argument("--smoke", action="store_true",
                       help="small seeded crash run; exit nonzero if any I/O error "
                            "surfaces, no retry/failover fires, or runs diverge")
    chaos.add_argument("--power-loss", action="store_true",
                       help="seeded power-loss scenario: cut a primary's power "
                            "mid-run, WAL-replay it back in; exit nonzero on any "
                            "client error, missing replay, or run divergence")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--nrequests", type=int, default=300)

    csim = sub.add_parser(
        "crashsim", help="crash-point explorer: durability invariants across power cuts"
    )
    csim.add_argument("--smoke", action="store_true",
                      help="bounded matrix (replicated + EC); exit nonzero on any "
                           "durability violation, unexercised replay path, or "
                           "digest divergence between two same-seed runs")
    csim.add_argument("--seed", type=int, default=0)
    csim.add_argument("--points", type=int, default=0,
                      help="max crash points per pool kind (0 = default for mode)")
    csim.add_argument("--pool", default="both", choices=["replicated", "ec", "both"])
    csim.add_argument("--report", metavar="PATH",
                      help="also write a JSON violation report (CI artifact)")

    qos = sub.add_parser("qos", help="multi-tenant QoS: mClock fairness on shared OSD pools")
    qos.add_argument("--smoke", action="store_true",
                     help="seeded 3-tenant fairness battery vs FIFO baseline; exit "
                          "nonzero if the reservation floor, limit ceiling, 3:1 weight "
                          "split, work conservation, or run determinism fails")
    qos.add_argument("--seed", type=int, default=0)
    qos.add_argument("--tenants", type=int, default=16,
                     help="tenant count for the mixed-profile sweep (min 16)")
    qos.add_argument("--report", metavar="PATH",
                     help="also write the report to this file (CI artifact)")

    recov = sub.add_parser("recover", help="online self-healing: kill/revive under client IO")
    recov.add_argument("--smoke", action="store_true",
                       help="seeded kill+revive run (replicated and EC); exit nonzero on "
                            "any client hard-failure, read mismatch, dirty scrub, or "
                            "run divergence")
    recov.add_argument("--seed", type=int, default=0)
    recov.add_argument("--nobjects", type=int, default=24)

    gold = sub.add_parser("golden", help="check canonical runs against recorded digests")
    gold.add_argument("--update", action="store_true",
                      help="re-record the digests instead of checking them")

    replay = sub.add_parser("replay", help="replay an I/O trace file")
    replay.add_argument("trace_file")
    replay.add_argument("--framework", default="delibak", choices=sorted(FRAMEWORKS))
    replay.add_argument("--iodepth", type=int, default=4)

    from .obs.profile import PROFILE_SCENARIOS

    prof = sub.add_parser(
        "profile", help="causal tracing: critical-path attribution + resource telemetry"
    )
    prof.add_argument("scenario", nargs="?", default="randwrite",
                      choices=sorted(PROFILE_SCENARIOS))
    prof.add_argument("--framework", default="delibak", choices=sorted(FRAMEWORKS))
    prof.add_argument("--bs", type=int, default=kib(4))
    prof.add_argument("--iodepth", type=int, default=4)
    prof.add_argument("--nrequests", type=int, default=60)
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument("--smoke", action="store_true",
                      help="run the CI scenario grid; exit nonzero if any trace is "
                           "incomplete, inexact, schema-invalid, or nondeterministic")
    prof.add_argument("--export", metavar="PATH",
                      help="write span lanes + counter tracks as Perfetto JSON")
    prof.add_argument("--flamegraph", metavar="PATH",
                      help="write critical-path folded stacks (flamegraph.pl input)")
    prof.add_argument("--export-trees", metavar="PATH",
                      help="write the raw span forest as nested JSON")
    prof.add_argument("--prom", metavar="PATH",
                      help="write the metrics registry as Prometheus text exposition")

    health = sub.add_parser(
        "health", help="always-on cluster health: slow ops, SLO burn, root causes"
    )
    health.add_argument("scenario", nargs="?", default="randwrite",
                        choices=sorted(PROFILE_SCENARIOS))
    health.add_argument("--framework", default="delibak", choices=sorted(FRAMEWORKS))
    health.add_argument("--bs", type=int, default=kib(4))
    health.add_argument("--iodepth", type=int, default=4)
    health.add_argument("--nrequests", type=int, default=60)
    health.add_argument("--seed", type=int, default=0)
    health.add_argument("--smoke", action="store_true",
                        help="CI gate: clean run must stay HEALTH_OK and event-neutral, "
                             "chaos must flag slow ops with exact root causes, report "
                             "must be deterministic across same-seed runs")
    health.add_argument("--report", metavar="PATH",
                        help="write the deterministic JSON health report (CI artifact)")
    health.add_argument("--prom", metavar="PATH",
                        help="write the metrics registry as Prometheus text exposition")

    trace = sub.add_parser("trace", help="six-stage I/O lifecycle breakdown")
    trace.add_argument("--framework", default="delibak", choices=sorted(FRAMEWORKS))
    trace.add_argument("--rw", default="randwrite",
                       choices=["read", "write", "randread", "randwrite"])
    trace.add_argument("--bs", type=int, default=kib(4))
    trace.add_argument("--nrequests", type=int, default=50)
    trace.add_argument("--export", metavar="PATH",
                       help="write spans as Chrome trace-event JSON (chrome://tracing)")
    trace.add_argument("--export-csv", metavar="PATH",
                       help="write spans as flat CSV")
    return parser


def _cmd_frameworks() -> int:
    print(f"{'name':14s} {'label':9s} {'api':10s} {'driver':9s} {'tcp':14s} hw")
    for name in sorted(FRAMEWORKS):
        cfg = FRAMEWORKS[name]
        print(
            f"{name:14s} {cfg.label:9s} {cfg.api:10s} {cfg.driver:9s} "
            f"{cfg.client_stack.name:14s} {'yes' if cfg.hardware else 'no'}"
        )
    return 0


def _cmd_fio(args) -> int:
    cfg = framework_by_name(args.framework)
    job = FioJob("cli", args.rw, bs=args.bs, iodepth=args.iodepth, nrequests=args.nrequests)
    pool = PoolSpec(kind=args.pool)
    object_size = job.bs if pool.kind == "erasure" else None
    cache_cfg = None
    if args.cache_mode:
        from .cache import CacheConfig, parse_cache_mode

        cache_cfg = CacheConfig(
            mode=parse_cache_mode(args.cache_mode), capacity_lines=args.cache_lines
        )
    fw = build_framework(
        cfg, pool_spec=pool, object_size=object_size, seed=args.seed, metrics=args.metrics,
        cache=cache_cfg,
    )
    proc = fw.env.process(fw.run_fio(job), name=f"{cfg.name}:{job.name}")
    fw.env.run()
    if not proc.ok:
        raise proc.value
    result = proc.value
    print(f"{cfg.label}: {args.rw} bs={args.bs} iodepth={args.iodepth} x{result.ios}")
    print(f"  mean latency : {result.mean_latency_us():9.1f} us")
    for q in (50, 90, 99, 99.9):
        print(f"  p{q:<12}: {result.percentile_latency_us(q):9.1f} us")
    print(f"  throughput   : {result.throughput_mb_s():9.1f} MB/s")
    print(f"  KIOPS        : {result.kiops():9.2f}")
    if fw.cache is not None:
        s = fw.cache.stats()
        print(f"  cache [{s['mode']}]   : hit {100 * s['hit_ratio']:.1f}%  "
              f"promotions {s['promotions']}  evictions {s['evictions']}  "
              f"flushes {s['flushed_lines']}  bypasses {s['seq_bypasses']}")
    if args.metrics:
        print()
        print(fw.metrics.render(end_ns=fw.env.now))
    return 0


def _cmd_experiment(name: str) -> int:
    names = sorted(EXPERIMENTS) if name == "all" else [name]
    for n in names:
        print(EXPERIMENTS[n]().render())
        print()
    return 0


def _cmd_chaos(args) -> int:
    from .bench.chaos import chaos_smoke, exp_chaos, power_loss_smoke

    if args.power_loss:
        code, report = power_loss_smoke(seed=args.seed, nrequests=min(args.nrequests, 80))
        print(report)
        return code
    if args.smoke:
        code, report = chaos_smoke(seed=args.seed, nrequests=min(args.nrequests, 80))
        print(report)
        return code
    print(exp_chaos(seed=args.seed).render())
    return 0


def _cmd_crashsim(args) -> int:
    from .bench.crashsim import crashsim_smoke, exp_crashsim

    if args.smoke:
        code, report = crashsim_smoke(
            seed=args.seed,
            max_points=args.points or 6,
            pool=args.pool,
            report_path=args.report or "",
        )
        print(report)
        if args.report:
            print(f"[report written to {args.report}]")
        return code
    print(exp_crashsim(seed=args.seed, max_points=args.points, pool=args.pool).render())
    return 0


def _cmd_cache(args) -> int:
    from .bench.cachebench import cache_smoke, exp_cache

    if args.smoke:
        code, report = cache_smoke(seed=args.seed, nreq=min(args.nrequests, 200))
        print(report)
        return code
    print(exp_cache(seed=args.seed, nreq=args.nrequests).render())
    return 0


def _cmd_qos(args) -> int:
    from .bench.qosbench import exp_qos, qos_smoke

    if args.smoke:
        code, report = qos_smoke(seed=args.seed)
    else:
        code, report = 0, exp_qos(seed=args.seed, ntenants=args.tenants).render()
    print(report)
    if args.report:
        with open(args.report, "w") as fh:
            fh.write(report + "\n")
        print(f"[report written to {args.report}]")
    return code


def _cmd_recover(args) -> int:
    from .bench.recovery import exp_recovery, recover_smoke

    if args.smoke:
        code, report = recover_smoke(seed=args.seed, nobjects=min(args.nobjects, 12))
        print(report)
        return code
    print(exp_recovery(seed=args.seed).render())
    return 0


def _cmd_golden(args) -> int:
    from .bench import golden

    if args.update:
        for name, digest in golden.record().items():
            print(f"{name}: recorded {digest}")
        return 0
    ok, lines = golden.check()
    for line in lines:
        print(line)
    return 0 if ok else 1


def _cmd_sweep(args) -> int:
    from .bench import export_csv
    from .bench.sweep import SweepSpec, run_sweep

    spec = SweepSpec(
        frameworks=args.frameworks,
        rw_modes=args.rw,
        block_sizes=args.bs,
        iodepths=args.iodepth,
        pool=args.pool,
    )
    result = run_sweep(spec)
    print(result.render())
    if args.csv:
        path = export_csv(result, args.csv)
        print(f"[csv written to {path}]")
    return 0


def _cmd_replay(args) -> int:
    from .workloads import load_trace

    cfg = framework_by_name(args.framework)
    fw = build_framework(cfg)
    bios = load_trace(args.trace_file)
    proc = fw.env.process(fw.engine.run(bios, args.iodepth))
    fw.env.run()
    result = proc.value
    print(f"{cfg.label}: replayed {result.ios} I/Os from {args.trace_file}")
    print(f"  mean latency : {result.mean_latency_us():9.1f} us")
    print(f"  throughput   : {result.throughput_mb_s():9.1f} MB/s")
    return 0


def _cmd_health(args) -> int:
    import pathlib

    from .bench.healthbench import health_smoke, run_health

    if args.smoke:
        code, text, chaos = health_smoke(seed=args.seed)
        print(text)
        if args.report:
            path = pathlib.Path(args.report)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(chaos.to_json(include_trees=True))
            print(f"[health report written to {path}]")
        return code
    report = run_health(
        args.scenario,
        framework=args.framework,
        bs=args.bs,
        iodepth=args.iodepth,
        nrequests=args.nrequests,
        seed=args.seed,
    )
    print(report.render())
    if args.report:
        path = pathlib.Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report.to_json(include_trees=True))
        print(f"[health report written to {path}]")
    if args.prom:
        path = pathlib.Path(args.prom)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report.prometheus)
        print(f"[prometheus exposition written to {path}]")
    return 0


def _cmd_profile(args) -> int:
    from .obs.profile import profile_smoke, run_profile

    if args.smoke:
        code, report = profile_smoke(
            export_path=args.export, flame_path=args.flamegraph, seed=args.seed
        )
        print(report)
        return code
    report = run_profile(
        args.scenario,
        framework=args.framework,
        bs=args.bs,
        iodepth=args.iodepth,
        nrequests=args.nrequests,
        seed=args.seed,
    )
    print(report.render())
    if args.export:
        print(f"[perfetto trace written to {report.export(args.export)}]")
    if args.flamegraph:
        print(f"[folded stacks written to {report.export_flamegraph(args.flamegraph)}]")
    if args.export_trees:
        print(f"[span forest written to {report.export_trees(args.export_trees)}]")
    if args.prom:
        print(f"[prometheus exposition written to {report.export_prometheus(args.prom)}]")
    return 0


def _cmd_trace(args) -> int:
    cfg = framework_by_name(args.framework)
    if not cfg.hardware:
        print("trace: lifecycle stages are instrumented for the hardware stacks",
              file=sys.stderr)
        return 2
    fw = build_framework(cfg, trace=True)
    job = FioJob("trace", args.rw, bs=args.bs, iodepth=1, nrequests=args.nrequests)
    proc = fw.env.process(fw.run_fio(job))
    fw.env.run()
    result = proc.value
    print(f"{result.ios} x {args.rw} bs={args.bs}: mean {result.mean_latency_us():.1f} us")
    print(fw.tracer.breakdown_table())
    if args.export:
        path = fw.tracer.export_chrome_trace(args.export)
        print(f"[chrome trace written to {path}]")
    if args.export_csv:
        path = fw.tracer.export_csv(args.export_csv)
        print(f"[span csv written to {path}]")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "frameworks":
        return _cmd_frameworks()
    if args.command == "fio":
        return _cmd_fio(args)
    if args.command == "experiment":
        return _cmd_experiment(args.name)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "crashsim":
        return _cmd_crashsim(args)
    if args.command == "qos":
        return _cmd_qos(args)
    if args.command == "recover":
        return _cmd_recover(args)
    if args.command == "golden":
        return _cmd_golden(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "health":
        return _cmd_health(args)
    if args.command == "trace":
        return _cmd_trace(args)
    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
