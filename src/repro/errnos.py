"""Shared errno constants (Linux/asm-generic values).

One place for every negative-``errno`` the stack surfaces, so the uring
CQE layer, the :class:`repro.status.BlkStatus` mapping, and tests all
agree on the numbers.  Values are the positive errno; completion paths
negate them (a CQE ``res`` of ``-EIO`` is ``-5``), mirroring how the
kernel encodes failures in ``io_uring_cqe.res``.
"""

from __future__ import annotations

#: No such file or directory (unwritten RADOS object).
ENOENT = 2
#: I/O error — the generic catch-all (``BLK_STS_IOERR``).
EIO = 5
#: Try again — transient resource loss (``BLK_STS_AGAIN``); the target
#: lost power and will return after WAL replay, so callers should retry.
EAGAIN = 11
#: No data available — media/checksum failure (``BLK_STS_MEDIUM``).
ENODATA = 61
#: Link has been severed — transport failure (``BLK_STS_TRANSPORT``).
ENOLINK = 67
#: Connection timed out (``BLK_STS_TIMEOUT``).
ETIMEDOUT = 110
#: Operation canceled (a linked SQE after an earlier chain failure).
ECANCELED = 125

#: errno -> symbolic name, for error messages and reports.
ERRNO_NAMES = {
    ENOENT: "ENOENT",
    EIO: "EIO",
    EAGAIN: "EAGAIN",
    ENODATA: "ENODATA",
    ENOLINK: "ENOLINK",
    ETIMEDOUT: "ETIMEDOUT",
    ECANCELED: "ECANCELED",
}


def errno_name(err: int) -> str:
    """Symbolic name of a (positive or negative) errno value."""
    return ERRNO_NAMES.get(abs(err), f"errno{abs(err)}")
