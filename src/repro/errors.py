"""Exception hierarchy for the DeLiBA-K reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  Subsystems raise the most specific subclass that
applies; error messages always name the offending object and value.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation kernel."""


class ProcessKilled(SimulationError):
    """Raised inside a process generator when it is forcibly interrupted."""


class CrushError(ReproError):
    """Invalid CRUSH map, rule, or placement request."""


class ErasureCodingError(ReproError):
    """Invalid erasure-coding parameters or unrecoverable data loss."""


class DecodeError(ErasureCodingError):
    """Too many erasures (or corrupt shards) to reconstruct an object."""


class NetworkError(ReproError):
    """Invalid topology, unreachable host, or link misconfiguration."""


class StorageError(ReproError):
    """OSD / object-store failures (missing object, down OSD, full device)."""


class OsdOpError(StorageError):
    """A RADOS op failed after exhausting its retry/failover policy.

    Carries the :class:`repro.status.BlkStatus` of the final failure so
    the driver can propagate a kernel-style status instead of parsing
    message strings.
    """

    def __init__(self, message: str, status=None, attempts: int = 1):
        super().__init__(message)
        from .status import BlkStatus  # deferred: errors must stay import-light

        self.status = status or BlkStatus.IOERR
        self.attempts = attempts


class RbdIoError(StorageError):
    """Block-image I/O failed on one or more object extents.

    ``extent_errors`` holds ``(offset, length, status, message)`` tuples
    (image byte ranges) so a driver can fail only the bios that overlap a
    failed extent — the partial-failure semantics of a multi-bio request.
    """

    def __init__(self, message: str, status=None, extent_errors=()):
        super().__init__(message)
        from .status import BlkStatus

        self.status = status or BlkStatus.IOERR
        self.extent_errors = tuple(extent_errors)


class BlockLayerError(ReproError):
    """Invalid bio/request or block-layer misconfiguration."""


class ApiError(ReproError):
    """Misuse of a host I/O API engine (ring overflow, bad opcode, ...)."""


class RingFullError(ApiError):
    """Submission queue is full; the caller must reap completions first."""


class FpgaError(ReproError):
    """FPGA device, QDMA, or accelerator misconfiguration."""


class ResourceOverflowError(FpgaError):
    """A design does not fit the targeted FPGA region's resources."""


class ReconfigurationError(FpgaError):
    """Invalid DFX partial-reconfiguration request."""


class DriverError(ReproError):
    """UIFD / NBD driver-level failures."""


class WorkloadError(ReproError):
    """Invalid workload specification."""


class CacheError(ReproError):
    """Client-side block cache misconfiguration or invariant violation."""


class BenchmarkError(ReproError):
    """Experiment harness misconfiguration."""
