"""Network message type shared by links, switches, and TCP connections."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_msg_counter = itertools.count()


@dataclass
class Message:
    """A unit of transfer between two hosts.

    ``size`` is the wire size in bytes (payload + protocol overhead);
    ``payload`` carries arbitrary simulation objects (ops, replies).
    """

    src: str
    dst: str
    size: int
    payload: Any = None
    msg_id: int = field(default_factory=lambda: next(_msg_counter))
    sent_at: int = -1
    delivered_at: int = -1

    def __post_init__(self):
        if self.size < 0:
            raise ValueError(f"message size must be >= 0, got {self.size}")

    @property
    def latency_ns(self) -> int:
        """Delivery latency (valid once delivered)."""
        if self.sent_at < 0 or self.delivered_at < 0:
            return -1
        return self.delivered_at - self.sent_at
