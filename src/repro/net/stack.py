"""TCP/IP stack cost profiles: kernel software, HLS FPGA, RTL FPGA.

The DeLiBA generations differ in *where* TCP runs and how much it costs
per message:

* **kernel** — Linux TCP on the host CPU: syscall + softirq + skb
  management; tens of microseconds per round trip at 4 kB.
* **hls** — DeLiBA-2's open-source HLS TCP block on the FPGA: no host
  CPU cost, but the HLS pipeline clocks lower and stalls more.
* **rtl** — DeLiBA-K's hand-written Verilog TX/RX path at 260 MHz
  (CMAC clock): minimal fixed latency and per-byte cost.

Per-message processing time = ``fixed_ns + ceil(bytes * per_byte_ns)``;
``on_host`` marks whether the cost burns host CPU (kernel stack) or
FPGA pipeline time (offloaded stacks).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import NetworkError


@dataclass(frozen=True)
class StackProfile:
    """Cost model for one TCP implementation."""

    name: str
    tx_fixed_ns: int
    rx_fixed_ns: int
    per_byte_ns: float
    on_host: bool

    def __post_init__(self):
        if self.tx_fixed_ns < 0 or self.rx_fixed_ns < 0 or self.per_byte_ns < 0:
            raise NetworkError(f"negative cost in stack profile {self.name!r}")

    def tx_ns(self, nbytes: int) -> int:
        """Transmit-side processing time for an ``nbytes`` message."""
        return self.tx_fixed_ns + int(nbytes * self.per_byte_ns)

    def rx_ns(self, nbytes: int) -> int:
        """Receive-side processing time for an ``nbytes`` message."""
        return self.rx_fixed_ns + int(nbytes * self.per_byte_ns)


#: Linux kernel TCP (socket write -> softirq -> skb -> driver).  Fixed
#: costs reflect measured per-message kernel stack time on Sky Lake-class
#: hardware; the per-byte term models checksum/copy work.
KERNEL_TCP = StackProfile("kernel-tcp", tx_fixed_ns=8_000, rx_fixed_ns=9_000, per_byte_ns=0.25, on_host=True)

#: DeLiBA-2's HLS TCP/IP block (open-source HLS stack, ~160 MHz effective).
HLS_TCP = StackProfile("hls-fpga-tcp", tx_fixed_ns=2_600, rx_fixed_ns=2_600, per_byte_ns=0.10, on_host=False)

#: DeLiBA-K's Verilog RTL TX/RX redesign at 260 MHz (paper section IV-D).
RTL_TCP = StackProfile("rtl-fpga-tcp", tx_fixed_ns=900, rx_fixed_ns=900, per_byte_ns=0.035, on_host=False)


def stack_by_name(name: str) -> StackProfile:
    """Lookup used by framework configs."""
    table = {p.name: p for p in (KERNEL_TCP, HLS_TCP, RTL_TCP)}
    if name not in table:
        raise NetworkError(f"unknown stack profile {name!r}; know {sorted(table)}")
    return table[name]
