"""Simulated TCP connections over the star network.

A :class:`TcpConnection` is an ordered, bidirectional channel between two
hosts.  Each direction charges the configured stack profile's TX cost
before the wire transfer and the RX cost after it — so swapping
``KERNEL_TCP`` for ``RTL_TCP`` changes end-to-end latency exactly the way
moving the stack onto the FPGA did in the paper.

Connection setup models the three-way handshake (one RTT); established
connections are cached by the :class:`TcpEndpoint` like a connection pool.
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, Optional

from ..errors import NetworkError
from ..sim import Environment, FilterStore
from .message import Message
from .stack import KERNEL_TCP, StackProfile
from .topology import Network

_conn_ids = itertools.count(1)

#: TCP/IP header bytes charged per message (TCP 20 + IP 20).
TCP_HEADER_BYTES = 40


class TcpConnection:
    """One established connection between ``a`` and ``b``."""

    def __init__(
        self,
        network: Network,
        a: str,
        b: str,
        stack_a: StackProfile = KERNEL_TCP,
        stack_b: StackProfile = KERNEL_TCP,
    ):
        self.network = network
        self.env: Environment = network.env
        self.a = a
        self.b = b
        self.stack = {a: stack_a, b: stack_b}
        self.conn_id = next(_conn_ids)
        # Per-endpoint receive buffers holding (conn_id-tagged) messages.
        self._rx: dict[str, FilterStore] = {
            a: FilterStore(self.env, name=f"tcp{self.conn_id}:{a}"),
            b: FilterStore(self.env, name=f"tcp{self.conn_id}:{b}"),
        }
        self.established = False
        self.bytes_sent = {a: 0, b: 0}

    def _peer(self, endpoint: str) -> str:
        if endpoint == self.a:
            return self.b
        if endpoint == self.b:
            return self.a
        raise NetworkError(f"host {endpoint!r} is not an endpoint of this connection")

    def connect(self) -> Generator:
        """Three-way handshake: SYN, SYN-ACK, ACK (charged as 1.5 RTT)."""
        if self.established:
            return
        for src, dst in ((self.a, self.b), (self.b, self.a), (self.a, self.b)):
            msg = Message(src, dst, TCP_HEADER_BYTES)
            yield self.env.process(self.network.send(msg))
            # Consume the control frame from the peer's inbox.
            yield self.network.host(dst).inbox.get(lambda m: m.msg_id == msg.msg_id)
        self.established = True

    def send(self, endpoint: str, nbytes: int, payload: Any = None) -> Generator:
        """Process: send ``nbytes`` of payload from ``endpoint`` to its peer.

        Completes when the peer's stack has finished RX processing and the
        data is available to :meth:`recv`.
        """
        if not self.established:
            raise NetworkError(f"connection {self.conn_id} not established; call connect()")
        peer = self._peer(endpoint)
        tx_stack = self.stack[endpoint]
        rx_stack = self.stack[peer]
        yield self.env.timeout(tx_stack.tx_ns(nbytes))
        msg = Message(endpoint, peer, nbytes + TCP_HEADER_BYTES, payload=(self.conn_id, payload))
        yield self.env.process(self.network.send(msg))
        # Move exactly this message from the host inbox into this
        # connection's rx buffer (other connections' traffic stays put).
        delivered = yield self.network.host(peer).inbox.get(lambda m: m.msg_id == msg.msg_id)
        yield self.env.timeout(rx_stack.rx_ns(nbytes))
        yield self._rx[peer].put(delivered)
        self.bytes_sent[endpoint] += nbytes

    def recv(self, endpoint: str):
        """Event yielding the next message addressed to ``endpoint``."""
        if endpoint not in self._rx:
            raise NetworkError(f"host {endpoint!r} is not an endpoint of this connection")
        return self._rx[endpoint].get(lambda m: m.payload[0] == self.conn_id)


class TcpEndpoint:
    """Connection pool for one host (mirrors a messenger in Ceph)."""

    def __init__(self, network: Network, host: str, stack: StackProfile = KERNEL_TCP):
        self.network = network
        self.host = host
        self.stack = stack
        self._conns: dict[str, TcpConnection] = {}

    def connection_to(self, peer: str, peer_stack: Optional[StackProfile] = None) -> TcpConnection:
        """Existing connection to ``peer``, or a new unestablished one."""
        if peer not in self._conns:
            self._conns[peer] = TcpConnection(
                self.network, self.host, peer, self.stack, peer_stack or self.stack
            )
        return self._conns[peer]

    def ensure_connected(self, peer: str, peer_stack: Optional[StackProfile] = None) -> Generator:
        """Process: return an established connection (handshaking if new)."""
        conn = self.connection_to(peer, peer_stack)
        if not conn.established:
            yield from conn.connect()
        return conn
