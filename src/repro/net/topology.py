"""Star topology: hosts connected through one switch.

Models the paper's testbed fabric: every host has a full-duplex 10 GbE
port (uplink + downlink :class:`Link`), and the switch adds a fixed
store-and-forward latency.  Delivery places the message in the
destination host's inbox; TCP connections (``tcp.py``) layer ordering
and stack costs on top.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..errors import NetworkError
from ..sim import NULL_METRICS, Environment, FilterStore
from ..units import gbps, us
from .link import DEFAULT_MTU, Link
from .message import Message

#: Raw bandwidth measured by iperf on the paper's 10 GbE network.
PAPER_BANDWIDTH_BPS = gbps(9.8)
#: One-way propagation+PHY latency per hop (host->switch or switch->host).
DEFAULT_HOP_NS = us(1.0)
#: Switch store-and-forward latency.
DEFAULT_SWITCH_NS = us(1.5)


class Host:
    """A network endpoint with an inbox per host."""

    def __init__(self, env: Environment, name: str):
        self.env = env
        self.name = name
        self.inbox: FilterStore = FilterStore(env, name=f"inbox:{name}")
        self.uplink: Optional[Link] = None
        self.downlink: Optional[Link] = None

    def __repr__(self) -> str:
        return f"<Host {self.name!r}>"


class Network:
    """A switch plus its attached hosts."""

    def __init__(
        self,
        env: Environment,
        bandwidth_bps: float = PAPER_BANDWIDTH_BPS,
        hop_ns: int = DEFAULT_HOP_NS,
        switch_ns: int = DEFAULT_SWITCH_NS,
        mtu: int = DEFAULT_MTU,
        metrics=None,
    ):
        self.env = env
        metrics = metrics or NULL_METRICS
        self._m_messages = metrics.counter("net.messages")
        self._m_bytes = metrics.counter("net.bytes")
        self._m_delivery_ns = metrics.latency("net.delivery_ns")
        self.bandwidth_bps = bandwidth_bps
        self.hop_ns = hop_ns
        self.switch_ns = switch_ns
        self.mtu = mtu
        self.hosts: dict[str, Host] = {}
        self.messages_delivered = 0
        #: Delivery taps (port mirroring): called with every delivered
        #: message.  Used by CMAC-based network monitors.
        self.taps: list = []

    def add_host(self, name: str) -> Host:
        """Attach a host with fresh up/down links."""
        if name in self.hosts:
            raise NetworkError(f"duplicate host {name!r}")
        host = Host(self.env, name)
        host.uplink = Link(self.env, self.bandwidth_bps, self.hop_ns, self.mtu, name=f"{name}-up")
        host.downlink = Link(self.env, self.bandwidth_bps, self.hop_ns, self.mtu, name=f"{name}-down")
        self.hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        """Lookup; raises on unknown host."""
        if name not in self.hosts:
            raise NetworkError(f"unknown host {name!r}")
        return self.hosts[name]

    def path_up(self, src: str, dst: str) -> bool:
        """True when every link on the src -> switch -> dst path is up."""
        return self.host(src).uplink.up and self.host(dst).downlink.up

    def send(self, message: Message) -> Generator:
        """Process: move a message src -> switch -> dst and deliver it.

        Serialization happens on both the sender's uplink and the
        receiver's downlink, so incast congestion at a busy receiver and
        fan-out congestion at a busy sender both emerge naturally.
        """
        src = self.host(message.src)
        dst = self.host(message.dst)
        message.sent_at = self.env.now
        yield from src.uplink.transmit(message)
        yield self.env.timeout(self.switch_ns)
        yield from dst.downlink.transmit(message)
        message.delivered_at = self.env.now
        self.messages_delivered += 1
        self._m_messages.add()
        self._m_bytes.add(message.size)
        self._m_delivery_ns.record(message.delivered_at - message.sent_at)
        for tap in self.taps:
            tap(message)
        yield dst.inbox.put(message)

    def send_async(self, message: Message):
        """Fire-and-forget variant returning the delivery Process event."""
        return self.env.process(self.send(message), name=f"net:{message.src}->{message.dst}")

    def utilization_report(self, elapsed_ns: int) -> dict[str, float]:
        """Per-link achieved Gb/s over ``elapsed_ns`` (wire bytes incl. framing).

        Lets benches show where the fabric saturates (e.g. the client
        uplink at large sequential writes).
        """
        if elapsed_ns <= 0:
            raise NetworkError(f"elapsed_ns must be > 0, got {elapsed_ns}")
        report = {}
        for host in self.hosts.values():
            for link in (host.uplink, host.downlink):
                report[link.name] = link.bytes_sent * 8 / elapsed_ns  # bits/ns == Gb/s
        return report

    def min_latency_ns(self, nbytes: int) -> int:
        """Best-case one-way delivery time for an ``nbytes`` message."""
        probe = self.hosts[next(iter(self.hosts))] if self.hosts else None
        if probe is None:
            raise NetworkError("network has no hosts")
        ser = probe.uplink.serialization_ns(nbytes)
        return 2 * ser + 2 * self.hop_ns + self.switch_ns
