"""Simulated network: links, star topology, TCP with pluggable stacks.

Three stack profiles reproduce the paper's progression: Linux kernel TCP
(software Ceph / DeLiBA-1), the HLS FPGA TCP of DeLiBA-2, and the
Verilog RTL TX/RX redesign of DeLiBA-K.
"""

from .link import DEFAULT_MTU, ETHERNET_FRAME_OVERHEAD, JUMBO_MTU, Link
from .message import Message
from .stack import HLS_TCP, KERNEL_TCP, RTL_TCP, StackProfile, stack_by_name
from .tcp import TCP_HEADER_BYTES, TcpConnection, TcpEndpoint
from .topology import DEFAULT_HOP_NS, DEFAULT_SWITCH_NS, PAPER_BANDWIDTH_BPS, Host, Network

__all__ = [
    "DEFAULT_HOP_NS",
    "DEFAULT_MTU",
    "DEFAULT_SWITCH_NS",
    "ETHERNET_FRAME_OVERHEAD",
    "HLS_TCP",
    "Host",
    "JUMBO_MTU",
    "KERNEL_TCP",
    "Link",
    "Message",
    "Network",
    "PAPER_BANDWIDTH_BPS",
    "RTL_TCP",
    "StackProfile",
    "TCP_HEADER_BYTES",
    "TcpConnection",
    "TcpEndpoint",
    "stack_by_name",
]
