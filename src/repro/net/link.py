"""Point-to-point link model: serialization + propagation + FIFO contention.

A link is a single-server queue: frames serialize one at a time at the
link's bandwidth (this is what caps throughput at the measured 9.8 Gb/s
of the paper's 10 GbE fabric), then experience fixed propagation delay.
Ethernet framing overhead is charged per MTU-sized frame.
"""

from __future__ import annotations

from typing import Generator

from ..errors import NetworkError
from ..sim import Environment, Resource
from ..units import transfer_ns
from .message import Message

#: Ethernet per-frame overhead: preamble+SFD (8) + header (14) + FCS (4) + IFG (12).
ETHERNET_FRAME_OVERHEAD = 38
#: Default payload MTU.
DEFAULT_MTU = 1500
#: Jumbo-frame MTU (the paper's cluster supports up to 9018-byte frames).
JUMBO_MTU = 9000


class Link:
    """Unidirectional link with bandwidth, propagation delay, and a queue."""

    def __init__(
        self,
        env: Environment,
        bandwidth_bps: float,
        propagation_ns: int,
        mtu: int = DEFAULT_MTU,
        name: str = "",
    ):
        if bandwidth_bps <= 0:
            raise NetworkError(f"link bandwidth must be > 0, got {bandwidth_bps}")
        if propagation_ns < 0:
            raise NetworkError(f"propagation delay must be >= 0, got {propagation_ns}")
        if mtu < 64:
            raise NetworkError(f"mtu must be >= 64, got {mtu}")
        self.env = env
        self.bandwidth_bps = bandwidth_bps  # bytes/sec
        self.propagation_ns = propagation_ns
        self.mtu = mtu
        self.name = name
        self._channel = Resource(env, capacity=1, name=f"link:{name}")
        self.bytes_sent = 0
        self.frames_sent = 0
        #: Administrative state: messages offered to a down link are lost
        #: (the fabric checks before transmitting).  Flap via set_up().
        self.up = True
        #: Down transitions seen (chaos link-flap accounting).
        self.flaps = 0

    def set_up(self, up: bool) -> None:
        """Raise or lower the link (chaos link flaps).

        In-flight frames finish serializing — the flap takes effect for
        traffic offered after the transition, like pulling a cable
        between frames.
        """
        if up != self.up:
            self.up = up
            if not up:
                self.flaps += 1

    def wire_bytes(self, payload_bytes: int) -> int:
        """Bytes on the wire including per-frame Ethernet overhead."""
        frames = max(1, (payload_bytes + self.mtu - 1) // self.mtu)
        return payload_bytes + frames * ETHERNET_FRAME_OVERHEAD

    def serialization_ns(self, payload_bytes: int) -> int:
        """Time to clock the message onto the wire."""
        return transfer_ns(self.wire_bytes(payload_bytes), self.bandwidth_bps)

    def transmit(self, message: Message) -> Generator:
        """Process: occupy the link for serialization, then propagate.

        Yields until the message has fully arrived at the far end.
        Back-to-back messages queue FIFO on the link resource.
        """
        ser = self.serialization_ns(message.size)
        yield from self._channel.using(ser)
        self.bytes_sent += self.wire_bytes(message.size)
        self.frames_sent += max(1, (message.size + self.mtu - 1) // self.mtu)
        yield self.env.timeout(self.propagation_ns)

    @property
    def queue_len(self) -> int:
        """Messages waiting to serialize."""
        return self._channel.queue_len
