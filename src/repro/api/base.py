"""Common contract for host I/O API engines.

An engine drives a stream of bios through the block layer with the
submission/completion mechanics (and costs) of one Linux I/O API:
``read()/write()``, libaio, POSIX AIO, mmap, or io_uring.  The engine
owns its concurrency model — how ``iodepth`` outstanding I/Os are kept
in flight is precisely what differs between the APIs the paper compares.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Generator, Sequence

from ..blk import Bio, BlockLayer
from ..errors import ApiError
from ..host import HostKernel


@dataclass
class RunResult:
    """Outcome of one engine run."""

    latencies_ns: list[int] = field(default_factory=list)
    started_at: int = 0
    finished_at: int = 0
    bytes_moved: int = 0
    #: I/Os that completed with a failure (negative CQE res / errno).
    errors: int = 0

    @property
    def elapsed_ns(self) -> int:
        """Wall time of the run."""
        return self.finished_at - self.started_at

    @property
    def ios(self) -> int:
        """Completed I/O count."""
        return len(self.latencies_ns)

    def error_rate(self) -> float:
        """Fraction of completed I/Os that failed (0.0 when none ran)."""
        if not self.latencies_ns:
            return 0.0
        return self.errors / len(self.latencies_ns)

    def mean_latency_us(self) -> float:
        """Mean per-I/O latency in microseconds."""
        if not self.latencies_ns:
            return 0.0
        return sum(self.latencies_ns) / len(self.latencies_ns) / 1_000.0

    def percentile_latency_us(self, q: float) -> float:
        """The ``q``-th percentile latency in microseconds (e.g. q=99)."""
        if not self.latencies_ns:
            return 0.0
        import numpy as np

        return float(np.percentile(np.asarray(self.latencies_ns), q)) / 1_000.0

    def p99_latency_us(self) -> float:
        """Tail latency (the metric the paper's related work compares)."""
        return self.percentile_latency_us(99)

    def throughput_mb_s(self) -> float:
        """Decimal MB/s over the run."""
        if self.elapsed_ns <= 0:
            return 0.0
        return (self.bytes_moved / 1e6) / (self.elapsed_ns / 1e9)

    def kiops(self) -> float:
        """Thousands of IOPS over the run."""
        if self.elapsed_ns <= 0:
            return 0.0
        return (self.ios / 1e3) / (self.elapsed_ns / 1e9)


class AioEngine(ABC):
    """Base class for all API engines."""

    #: Engine name used in reports ("io_uring", "libaio", ...).
    name: str = "abstract"

    def __init__(self, env, kernel: HostKernel, blk: BlockLayer):
        self.env = env
        self.kernel = kernel
        self.blk = blk

    @property
    def metrics(self):
        """The stack-wide metrics registry (shared via the block layer)."""
        return self.blk.metrics

    def open_throughput_meter(self):
        """The engine's ``api.<name>.throughput`` meter, window opened now.

        Called at the top of :meth:`run` so the window covers the first
        op's service time (opening at the first *completion* instead
        inflates MB/s and KIOPS at low op counts).
        """
        meter = self.metrics.meter(f"api.{self.name}.throughput")
        meter.start(self.env.now)
        return meter

    @abstractmethod
    def run(self, bios: Sequence[Bio], iodepth: int) -> Generator:
        """Process: drive all ``bios`` to completion with ``iodepth`` in
        flight; returns a :class:`RunResult`."""

    def _validate(self, bios: Sequence[Bio], iodepth: int) -> None:
        if iodepth < 1:
            raise ApiError(f"iodepth must be >= 1, got {iodepth}")
        if not bios:
            raise ApiError("no bios to run")
