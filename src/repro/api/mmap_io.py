"""Memory-mapped file I/O engine.

Reads are served through page faults (with fault-around batching);
writes dirty mapped pages (a memcpy) and become durable via ``msync``,
which blocks on writeback.  Captures the trade-off of Crotty et al.'s
"are you sure you want to use mmap?" critique cited in Section II:
no syscalls on the hot path, but page-fault storms on random access and
no control over writeback.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Sequence

from ..blk import Bio, BlockLayer, IoOp
from ..host import HostKernel
from ..sim import Environment
from .base import AioEngine, RunResult

PAGE = 4096
#: Pages mapped per fault by fault-around.
FAULT_AROUND_PAGES = 16


class MmapEngine(AioEngine):
    """mmap + msync block I/O."""

    name = "mmap"

    def __init__(self, env: Environment, kernel: HostKernel, blk: BlockLayer):
        super().__init__(env, kernel, blk)
        self._resident: set[int] = set()  # page numbers in the mapping

    def run(self, bios: Sequence[Bio], iodepth: int) -> Generator:
        self._validate(bios, iodepth)
        result = RunResult(started_at=self.env.now)
        meter = self.open_throughput_meter()
        queue = deque(bios)
        workers = [
            self.env.process(self._worker(queue, result, meter), name=f"mmap.t{t}")
            for t in range(min(iodepth, len(bios)))
        ]
        yield self.env.all_of(workers)
        result.finished_at = self.env.now
        return result

    def _pages(self, bio: Bio) -> range:
        first = bio.offset // PAGE
        last = (bio.offset + bio.size - 1) // PAGE
        return range(first, last + 1)

    def _worker(self, queue: deque, result: RunResult, meter) -> Generator:
        core = self.kernel.cpus.pick_core()
        while queue:
            bio = queue.popleft()
            start = self.env.now
            if bio.op == IoOp.READ:
                yield from self._fault_in(core, bio)
                # Touching resident pages is a memcpy out of the mapping.
                yield from self.kernel.copy(core, bio.size)
            else:
                yield from self._fault_in(core, bio)
                yield from self.kernel.copy(core, bio.size)
                # msync(MS_SYNC): blocking writeback of the dirtied range.
                yield from self.kernel.syscall(core)
                request = yield from self.blk.submit_bio(core, bio)
                self.blk.flush_plug(core)
                yield from self.kernel.context_switch(core)
                yield request.completion
                yield from self.kernel.context_switch(core)
            result.latencies_ns.append(self.env.now - start)
            result.bytes_moved += bio.size
            meter.record(bio.size, self.env.now)

    def _fault_in(self, core, bio: Bio) -> Generator:
        """Fault the bio's pages in, fault-around style."""
        missing = [p for p in self._pages(bio) if p not in self._resident]
        if not missing:
            return
        faults = 0
        covered: set[int] = set()
        for page in missing:
            if page in covered:
                continue
            faults += 1
            for around in range(page, page + FAULT_AROUND_PAGES):
                covered.add(around)
        for _ in range(faults):
            yield from core.run(self.kernel.costs.page_fault_ns)
        # One backing read for the whole faulted extent.
        fault_bio = Bio(IoOp.READ, bio.sector, max(PAGE, bio.size), sequential=bio.sequential)
        request = yield from self.blk.submit_bio(core, fault_bio)
        self.blk.flush_plug(core)
        yield from self.kernel.context_switch(core)
        yield request.completion
        yield from self.kernel.context_switch(core)
        self._resident.update(covered)
