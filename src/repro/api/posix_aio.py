"""POSIX AIO (``aio_read``/``aio_write``), glibc thread-pool flavor.

glibc implements POSIX AIO entirely in user space: every request is
handed to a pool thread that performs a *blocking* read/write, and
completion is delivered by signal.  That stacks thread hand-off and
signal costs on top of the synchronous path — the "nearly 30 years old"
API Section II cites ("POSIX is dead").
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Sequence

from ..blk import Bio, BlockLayer, IoOp
from ..host import HostKernel
from ..sim import Environment
from .base import AioEngine, RunResult

#: glibc's default AIO thread-pool size (aio_threads tunable).
DEFAULT_POOL_THREADS = 20


class PosixAioEngine(AioEngine):
    """User-space thread-pool AIO with signal completion."""

    name = "posix-aio"

    def __init__(
        self,
        env: Environment,
        kernel: HostKernel,
        blk: BlockLayer,
        pool_threads: int = DEFAULT_POOL_THREADS,
    ):
        super().__init__(env, kernel, blk)
        self.pool_threads = pool_threads

    def run(self, bios: Sequence[Bio], iodepth: int) -> Generator:
        self._validate(bios, iodepth)
        result = RunResult(started_at=self.env.now)
        meter = self.open_throughput_meter()
        queue = deque(bios)
        threads = min(self.pool_threads, iodepth, len(bios))
        workers = [
            self.env.process(self._pool_thread(queue, result, meter), name=f"paio.t{t}")
            for t in range(threads)
        ]
        yield self.env.all_of(workers)
        result.finished_at = self.env.now
        return result

    def _pool_thread(self, queue: deque, result: RunResult, meter) -> Generator:
        core = self.kernel.cpus.pick_core()
        while queue:
            bio = queue.popleft()
            start = self.env.now
            # Hand-off from the submitter to the pool thread.
            yield from self.kernel.context_switch(core)
            # The pool thread does a plain blocking syscall.
            yield from self.kernel.syscall(core)
            if bio.op == IoOp.WRITE:
                yield from self.kernel.copy(core, bio.size)
            request = yield from self.blk.submit_bio(core, bio)
            self.blk.flush_plug(core)
            yield from self.kernel.context_switch(core)
            yield request.completion
            yield from self.kernel.interrupt(core)
            yield from self.kernel.context_switch(core)
            if bio.op == IoOp.READ:
                yield from self.kernel.copy(core, bio.size)
            # Completion delivery by signal to the submitter.
            yield from self.kernel.context_switch(core)
            result.latencies_ns.append(self.env.now - start)
            result.bytes_moved += bio.size
            meter.record(bio.size, self.env.now)
