"""Host I/O API engines: the four traditional Linux APIs plus io_uring.

Each engine drives bios through the block layer with the submission and
completion mechanics (syscalls, copies, context switches, ring buffers)
of one API — the axis of comparison in paper Sections II and III.
"""

from .base import AioEngine, RunResult
from .libaio import LibAioEngine
from .mmap_io import MmapEngine
from .posix_aio import PosixAioEngine
from .sync_rw import SyncEngine
from .uring import Cqe, IoUring, Ring, Sqe, UringCosts, UringEngine, UringMode, UringOp

__all__ = [
    "AioEngine",
    "Cqe",
    "IoUring",
    "LibAioEngine",
    "MmapEngine",
    "PosixAioEngine",
    "Ring",
    "RunResult",
    "Sqe",
    "SyncEngine",
    "UringCosts",
    "UringEngine",
    "UringMode",
    "UringOp",
]
