"""Submission and completion queue entries (SQE / CQE)."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ...blk import Bio
from ...errors import ApiError
from ... import errnos


class UringOp(Enum):
    """Subset of io_uring opcodes used by block I/O."""

    READ = "IORING_OP_READ"
    WRITE = "IORING_OP_WRITE"
    READ_FIXED = "IORING_OP_READ_FIXED"
    WRITE_FIXED = "IORING_OP_WRITE_FIXED"
    NOP = "IORING_OP_NOP"


#: On-ring footprint of one SQE (64 bytes in the kernel ABI).
SQE_BYTES = 64
#: On-ring footprint of one CQE (16 bytes).
CQE_BYTES = 16

#: SQE flags (subset of the kernel ABI).
IOSQE_IO_LINK = 1 << 2  # chain: next SQE starts only after this completes
#: CQE result for an op cancelled because an earlier link member failed.
ECANCELED = -errnos.ECANCELED


@dataclass
class Sqe:
    """One submission entry: opcode + I/O description + user cookie.

    Mirrors the kernel ABI fields the paper enumerates in Section III-A:
    operation type, file descriptor, buffer pointer, length, and flags.
    """

    opcode: UringOp
    fd: int
    offset: int
    length: int
    user_data: int
    buf_addr: int = 0
    flags: int = 0
    bio: Optional[Bio] = None

    def __post_init__(self):
        if self.length < 0:
            raise ApiError(f"sqe length must be >= 0, got {self.length}")
        if self.opcode in (UringOp.READ, UringOp.WRITE, UringOp.READ_FIXED, UringOp.WRITE_FIXED):
            if self.bio is None:
                raise ApiError(f"{self.opcode.value} sqe needs an attached bio")

    @property
    def is_fixed_buffer(self) -> bool:
        """True for registered-buffer (zero-copy) variants."""
        return self.opcode in (UringOp.READ_FIXED, UringOp.WRITE_FIXED)


@dataclass
class Cqe:
    """One completion entry: result code + the submitter's cookie."""

    user_data: int
    res: int  # bytes transferred, or negative errno
    flags: int = 0

    @property
    def ok(self) -> bool:
        """True when the I/O succeeded."""
        return self.res >= 0
