"""io_uring's core data structure: a single-producer single-consumer ring.

Faithful to the kernel's layout: a power-of-two entry array indexed by
free-running 32-bit ``head``/``tail`` counters masked into slots.  The
producer owns ``tail``, the consumer owns ``head``; ``tail - head`` (in
wrapping arithmetic) is the fill level.  The submission and completion
queues of an instance are both built from this class.
"""

from __future__ import annotations

from typing import Any, Optional

from ...errors import ApiError, RingFullError

_U32 = 0xFFFFFFFF


class Ring:
    """Power-of-two circular buffer with wrapping 32-bit indices."""

    def __init__(self, entries: int):
        if entries < 1 or entries & (entries - 1):
            raise ApiError(f"ring entries must be a power of two >= 1, got {entries}")
        self.entries = entries
        self.mask = entries - 1
        self.head = 0  # consumer index (free-running)
        self.tail = 0  # producer index (free-running)
        self._slots: list[Any] = [None] * entries

    def __len__(self) -> int:
        return (self.tail - self.head) & _U32

    @property
    def is_empty(self) -> bool:
        """No unconsumed entries."""
        return self.head == self.tail

    @property
    def is_full(self) -> bool:
        """No free slots."""
        return len(self) == self.entries

    @property
    def space(self) -> int:
        """Free slots available to the producer."""
        return self.entries - len(self)

    def push(self, item: Any) -> None:
        """Producer: append one entry (raises :class:`RingFullError`)."""
        if self.is_full:
            raise RingFullError(f"ring full ({self.entries} entries)")
        self._slots[self.tail & self.mask] = item
        self.tail = (self.tail + 1) & _U32

    def pop(self) -> Any:
        """Consumer: remove the oldest entry (raises when empty)."""
        if self.is_empty:
            raise ApiError("pop from empty ring")
        item = self._slots[self.head & self.mask]
        self._slots[self.head & self.mask] = None
        self.head = (self.head + 1) & _U32
        return item

    def peek(self) -> Optional[Any]:
        """Oldest entry without consuming (None when empty)."""
        if self.is_empty:
            return None
        return self._slots[self.head & self.mask]

    def push_many(self, items: list[Any]) -> None:
        """Producer: append a batch in order (all-or-nothing on space)."""
        if len(items) > self.space:
            raise RingFullError(
                f"ring has {self.space} free slots, cannot push {len(items)}"
            )
        tail = self.tail
        mask = self.mask
        slots = self._slots
        for item in items:
            slots[tail & mask] = item
            tail = (tail + 1) & _U32
        self.tail = tail

    def pop_many(self, max_items: int) -> list[Any]:
        """Consume up to ``max_items`` entries (batched index arithmetic)."""
        count = min(len(self), max_items)
        if count <= 0:
            return []
        head = self.head
        mask = self.mask
        slots = self._slots
        out = [slots[(head + i) & mask] for i in range(count)]
        for i in range(count):
            slots[(head + i) & mask] = None
        self.head = (head + count) & _U32
        return out
