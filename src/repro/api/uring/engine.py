"""Multi-instance io_uring engine (DeLiBA-K's host-side configuration).

DeLiBA-K creates several io_uring instances via repeated
``io_uring_setup`` calls and binds each one's submission thread to a
dedicated CPU core (paper Section III-A; three instances in the shipped
configuration).  The engine shards the bio stream round-robin across
instances, keeps ``iodepth`` I/Os in flight overall, and submits in
batches so one ``io_uring_enter`` (or none, under SQPOLL) covers many
I/Os.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional, Sequence

from ...blk import Bio, BlockLayer
from ...errors import ApiError
from ...host import HostKernel
from ...sim import Environment
from ..base import AioEngine, RunResult
from .instance import IoUring, UringCosts, UringMode


class UringEngine(AioEngine):
    """The io_uring API engine."""

    name = "io_uring"

    def __init__(
        self,
        env: Environment,
        kernel: HostKernel,
        blk: BlockLayer,
        num_instances: int = 3,
        entries: int = 256,
        mode: UringMode = UringMode.SQPOLL,
        batch_size: int = 16,
        pin_cores: bool = True,
        fixed_buffers: bool = True,
        costs: Optional[UringCosts] = None,
    ):
        super().__init__(env, kernel, blk)
        if num_instances < 1:
            raise ApiError(f"need >= 1 instance, got {num_instances}")
        if batch_size < 1:
            raise ApiError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        self.mode = mode
        self._m_errors = self.metrics.counter(f"api.{self.name}.errors")
        self.instances = [
            IoUring(
                env,
                kernel,
                blk,
                entries=entries,
                mode=mode,
                core=kernel.cpus.pick_core(i if pin_cores else None),
                costs=costs,
                fixed_buffers=fixed_buffers,
                name=f"uring{i}",
            )
            for i in range(num_instances)
        ]

    def run(self, bios: Sequence[Bio], iodepth: int) -> Generator:
        """Process: drive ``bios`` through the instances; see base class."""
        self._validate(bios, iodepth)
        result = RunResult(started_at=self.env.now)
        meter = self.open_throughput_meter()
        # Use at most ``iodepth`` instances so total inflight never
        # exceeds the requested depth; shard bios round-robin among them.
        active = self.instances[: min(len(self.instances), iodepth)]
        shards: list[deque] = [deque() for _ in active]
        for i, bio in enumerate(bios):
            shards[i % len(active)].append(bio)
        # Split the depth budget, spreading any remainder over the first
        # instances so total inflight equals exactly ``iodepth``.
        base, extra = divmod(iodepth, len(active))
        procs = [
            self.env.process(
                self._drive(inst, shard, base + (1 if i < extra else 0), result, meter),
                name=f"{inst.name}.drive",
            )
            for i, (inst, shard) in enumerate(zip(active, shards))
            if shard
        ]
        yield self.env.all_of(procs)
        result.finished_at = self.env.now
        return result

    def _drive(
        self, inst: IoUring, shard: deque, depth: int, result: RunResult, meter
    ) -> Generator:
        """One submitter thread: batch-fill SQ, submit, reap, refill."""
        submit_times: dict[int, int] = {}
        sizes: dict[int, int] = {}
        health = self.blk.health
        bios: dict[int, object] = {}
        inflight = 0
        while shard or inflight:
            # Batched fill: the push count is bounded by four independent
            # limits, so take the min once instead of re-checking all four
            # per bio (identical count to the one-at-a-time loop).
            pushed = min(len(shard), depth - inflight, inst.sq.space, self.batch_size)
            if pushed > 0:
                batch = [shard.popleft() for _ in range(pushed)]
                now = self.env.now
                for sqe, bio in zip(inst.prepare_many(batch), batch):
                    submit_times[sqe.user_data] = now
                    sizes[sqe.user_data] = bio.size
                    if health is not None:
                        bios[sqe.user_data] = bio
                inflight += pushed
                yield from inst.submit()
            if inflight:
                cqes = yield from inst.wait_cqes(wait_nr=1, max_cqes=self.batch_size)
                for cqe in cqes:
                    pending = inst._complete_t0.pop(cqe.user_data, None)
                    root = None
                    if pending is not None and self.blk.tracer is not None:
                        req_id, t0, root = pending
                        self.blk.tracer.record(req_id, "complete", t0, self.env.now)
                        if root is not None:
                            # Close the causal tree at the reap: root
                            # duration now equals the recorded latency.
                            root.record("complete", "stage", t0, self.env.now)
                            root.finish(ok=cqe.ok)
                    latency = self.env.now - submit_times.pop(cqe.user_data)
                    result.latencies_ns.append(latency)
                    if health is not None:
                        bio = bios.pop(cqe.user_data)
                        health.observe_client(bio.op.value, bio.tenant, latency, cqe.ok, root)
                    nbytes = sizes.pop(cqe.user_data)
                    if cqe.ok:
                        result.bytes_moved += nbytes
                        meter.record(nbytes, self.env.now)
                    else:
                        # Failed I/O: fio-style, count it but move no bytes.
                        result.errors += 1
                        self._m_errors.add()
                    inflight -= 1

    def total_syscalls_saved(self) -> int:
        """SQPOLL submissions that needed no syscall."""
        return sum(i.syscalls_saved for i in self.instances)
