"""One io_uring instance: SQ + CQ rings and the three completion modes.

Modes (paper Section III-A):

* ``INTERRUPT`` — classic: the waiter sleeps and is woken by an IRQ;
* ``POLL`` — the application busy-checks the CQ (no IRQ);
* ``SQPOLL`` — additionally, a kernel poller thread pinned to the
  instance's core drains the SQ, so steady-state submission needs **no
  syscalls at all**.  DeLiBA-K runs this mode ("kernel-polled").

The rings are real data structures; costs come from the host model:
``io_uring_enter`` is one syscall regardless of batch size (the batching
win), SQE kernel handling is charged per entry, and fixed-buffer opcodes
skip the user/kernel copy (the zero-copy win).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Generator, Optional

from ...blk import Bio, BlockLayer, IoOp
from ...errors import ApiError
from ...host import HostKernel
from ...status import BlkStatus
from ...host.cpu import CpuCore
from ...sim import Environment, Event
from .ring import Ring
from .sqe import ECANCELED, IOSQE_IO_LINK, Cqe, Sqe, UringOp

_user_data = itertools.count(1)


class UringMode(Enum):
    """Completion/submission mode of an instance."""

    INTERRUPT = "interrupt"
    POLL = "poll"
    SQPOLL = "sqpoll"


@dataclass(frozen=True)
class UringCosts:
    """Per-event CPU costs of the io_uring machinery."""

    #: Fill one SQE in user space (struct write into the mapped ring).
    prep_sqe_ns: int = 90
    #: Kernel-side fetch+validate+dispatch of one SQE inside enter/poller.
    kernel_sqe_ns: int = 350
    #: Post one CQE.
    post_cqe_ns: int = 120
    #: Reap one CQE in user space.
    reap_cqe_ns: int = 80
    #: Latency between an SQ tail bump and the SQPOLL thread noticing.
    sqpoll_wake_ns: int = 400


class IoUring:
    """One ring pair bound to a CPU core."""

    def __init__(
        self,
        env: Environment,
        kernel: HostKernel,
        blk: BlockLayer,
        entries: int = 256,
        mode: UringMode = UringMode.SQPOLL,
        core: Optional[CpuCore] = None,
        costs: Optional[UringCosts] = None,
        fixed_buffers: bool = True,
        name: str = "uring0",
    ):
        self.env = env
        self.kernel = kernel
        self.blk = blk
        self.mode = mode
        self.costs = costs or UringCosts()
        self.fixed_buffers = fixed_buffers
        self.name = name
        #: Core this instance is bound to (sched_setaffinity in the paper).
        self.core = core or kernel.cpus.pick_core()
        self.sq = Ring(entries)
        self.cq = Ring(2 * entries)
        self._inflight: dict[int, Sqe] = {}
        #: user_data -> (req_id, completion fire time, causal root or
        #: None) for the tracer: the reaper closes the flat ``complete``
        #: span and the causal root from these.
        self._complete_t0: dict[int, tuple[int, int, object]] = {}
        self._cq_waiter: Optional[Event] = None
        self._sq_kick: Optional[Event] = None
        self._sqpoll_proc = None
        self.syscalls_saved = 0
        self.sqes_submitted = 0
        self.cqes_reaped = 0
        metrics = blk.metrics
        self._m_batch = metrics.distribution("uring.sqe_batch_size")
        self._m_sqes = metrics.counter("uring.sqes_submitted")
        self._m_cqes = metrics.counter("uring.cqes_reaped")
        self._m_saved = metrics.counter("uring.syscalls_saved")
        if mode == UringMode.SQPOLL:
            self._sqpoll_proc = env.process(self._sqpoll_loop(), name=f"{name}.sqpoll")

    # -- application side -------------------------------------------------------

    def prepare(self, bio: Bio, flags: int = 0) -> Sqe:
        """Fill the next SQE for ``bio`` (raises :class:`RingFullError`).

        Pass ``flags=IOSQE_IO_LINK`` to chain this SQE to the next one:
        the kernel starts the successor only after this I/O completes,
        and cancels the rest of the chain (``-ECANCELED``) on failure.
        """
        if bio.op == IoOp.READ:
            opcode = UringOp.READ_FIXED if self.fixed_buffers else UringOp.READ
        else:
            opcode = UringOp.WRITE_FIXED if self.fixed_buffers else UringOp.WRITE
        sqe = Sqe(
            opcode=opcode,
            fd=0,
            offset=bio.offset,
            length=bio.size,
            user_data=next(_user_data),
            flags=flags,
            bio=bio,
        )
        tracer = self.blk.tracer
        if tracer is not None:
            bio._trace_t0 = self.env.now
            if tracer.causal:
                # The causal tree is rooted where the application hands
                # the op to the kernel interface: SQE preparation.
                bio._obs_root = tracer.start_root(bio.op.value, size=bio.size)
                if bio.tenant:
                    bio._obs_root.annotate(tenant=bio.tenant)
        self.sq.push(sqe)
        return sqe

    def prepare_many(self, bios: list[Bio], flags: int = 0) -> list[Sqe]:
        """Fill SQEs for a whole batch of bios in one call.

        Equivalent to calling :meth:`prepare` per bio (same SQEs, same
        user_data order) with the per-call overhead hoisted out of the
        loop; all-or-nothing on SQ space.
        """
        tracer = self.blk.tracer
        trace = tracer is not None
        causal = trace and tracer.causal
        now = self.env.now
        fixed = self.fixed_buffers
        sqes = []
        for bio in bios:
            if bio.op == IoOp.READ:
                opcode = UringOp.READ_FIXED if fixed else UringOp.READ
            else:
                opcode = UringOp.WRITE_FIXED if fixed else UringOp.WRITE
            if trace:
                bio._trace_t0 = now
                if causal:
                    bio._obs_root = tracer.start_root(bio.op.value, size=bio.size)
                    if bio.tenant:
                        bio._obs_root.annotate(tenant=bio.tenant)
            sqes.append(
                Sqe(
                    opcode=opcode,
                    fd=0,
                    offset=bio.offset,
                    length=bio.size,
                    user_data=next(_user_data),
                    flags=flags,
                    bio=bio,
                )
            )
        self.sq.push_many(sqes)
        return sqes

    def submit(self) -> Generator:
        """Process: make queued SQEs visible to the kernel.

        Interrupt/poll modes call ``io_uring_enter`` (one syscall for the
        whole batch); SQPOLL just bumps the tail and the poller thread
        picks the entries up without any syscall.
        """
        batch = len(self.sq)
        if batch == 0:
            return 0
        self._m_batch.record(batch)
        # Filling the SQEs burns app CPU regardless of mode.
        yield from self.core.run(self.costs.prep_sqe_ns * batch)
        if self.mode == UringMode.SQPOLL:
            self.syscalls_saved += 1
            self._m_saved.add()
            if self._sq_kick is not None and not self._sq_kick.triggered:
                self._sq_kick.succeed()
            return batch
        # One syscall covers the entire batch: this is the batching win.
        yield from self.kernel.syscall(self.core)
        yield from self._kernel_drain_sq(self.core)
        return batch

    # -- kernel side ------------------------------------------------------------------

    def _kernel_drain_sq(self, core: CpuCore) -> Generator:
        sq = self.sq
        kernel_sqe_ns = self.costs.kernel_sqe_ns
        inflight = self._inflight
        while not sq.is_empty:
            sqe = sq.pop()
            if not sqe.flags & IOSQE_IO_LINK:
                # Fast path: unlinked SQE (the steady-state case) — no
                # chain list, straight to the block layer.
                yield from core.run(kernel_sqe_ns)
                if not sqe.is_fixed_buffer and sqe.bio.op == IoOp.WRITE:
                    # Unregistered buffers pay a user->kernel copy.
                    yield from self.kernel.copy(core, sqe.length)
                inflight[sqe.user_data] = sqe
                self.sqes_submitted += 1
                self._m_sqes.add()
                request = yield from self.blk.submit_bio(core, sqe.bio)
                self._arm_completion(sqe, request)
                continue
            # Collect a link chain: consecutive SQEs joined by IO_LINK.
            chain: list[Sqe] = [sqe]
            while chain[-1].flags & IOSQE_IO_LINK and not sq.is_empty:
                chain.append(sq.pop())
            for sqe in chain:
                yield from core.run(kernel_sqe_ns)
                if not sqe.is_fixed_buffer and sqe.bio.op == IoOp.WRITE:
                    yield from self.kernel.copy(core, sqe.length)
                inflight[sqe.user_data] = sqe
                self.sqes_submitted += 1
                self._m_sqes.add()
            if len(chain) == 1:
                # A trailing IO_LINK with nothing behind it: plain dispatch.
                request = yield from self.blk.submit_bio(core, chain[0].bio)
                self._arm_completion(chain[0], request)
            else:
                self.env.process(self._run_chain(chain, core), name=f"{self.name}.link")
        self.blk.flush_plug(core)

    def _run_chain(self, chain: list[Sqe], core: CpuCore) -> Generator:
        """Dispatch a link chain strictly in order; cancel after a failure."""
        failed = False
        for sqe in chain:
            if failed:
                yield from self.core.run(self.costs.post_cqe_ns)
                self._inflight.pop(sqe.user_data, None)
                self.cq.push(Cqe(user_data=sqe.user_data, res=ECANCELED))
                self._wake_cq_waiter()
                continue
            request = yield from self.blk.submit_bio(core, sqe.bio)
            self.blk.flush_plug(core)
            yield request.completion
            if request.error or request.status:
                failed = True
            yield from self._post_cqe(sqe, request)

    def _arm_completion(self, sqe: Sqe, request) -> None:
        def on_complete(_ev) -> None:
            self.env.process(self._post_cqe(sqe, request), name=f"{self.name}.cqe")

        if request.completion.processed:
            on_complete(None)
        else:
            request.completion.callbacks.append(on_complete)

    def _post_cqe(self, sqe: Sqe, request) -> Generator:
        if self.blk.tracer is not None:
            self._complete_t0[sqe.user_data] = (
                request.req_id,
                self.env.now,
                getattr(sqe.bio, "_obs_root", None),
            )
        yield from self.core.run(self.costs.post_cqe_ns)
        if not sqe.is_fixed_buffer and sqe.bio.op == IoOp.READ:
            yield from self.kernel.copy(self.core, sqe.length)
        # blk_status_to_errno(): per-bio status -> negative errno in res.
        status = request.status_for(sqe.bio)
        if not status and request.error:
            # Legacy string-only failure (no status set): generic -EIO.
            status = BlkStatus.IOERR
        res = sqe.length if not status else -status.errno
        self._inflight.pop(sqe.user_data, None)
        self.cq.push(Cqe(user_data=sqe.user_data, res=res))
        if self.mode == UringMode.INTERRUPT:
            yield from self.kernel.interrupt(self.core)
        self._wake_cq_waiter()

    def _wake_cq_waiter(self) -> None:
        if self._cq_waiter is not None and not self._cq_waiter.triggered:
            self._cq_waiter.succeed()
            self._cq_waiter = None

    def _sqpoll_loop(self) -> Generator:
        """Kernel poller thread pinned to this instance's core."""
        while True:
            if self.sq.is_empty:
                self._sq_kick = self.env.event()
                yield self._sq_kick
                self._sq_kick = None
                # Poller notices the tail bump after a short poll gap.
                yield self.env.timeout(self.costs.sqpoll_wake_ns)
            yield from self._kernel_drain_sq(self.core)

    # -- completion reaping ------------------------------------------------------------

    def reap(self, max_cqes: int) -> Generator:
        """Process: harvest up to ``max_cqes`` available CQEs (no waiting)."""
        cqes = self.cq.pop_many(max_cqes)
        if cqes:
            yield from self.core.run(self.costs.reap_cqe_ns * len(cqes))
            self.cqes_reaped += len(cqes)
            self._m_cqes.add(len(cqes))
        return cqes

    def wait_cqes(self, wait_nr: int = 1, max_cqes: int = 64) -> Generator:
        """Process: block/poll until >= ``wait_nr`` CQEs, then reap.

        POLL/SQPOLL modes busy-check the CQ (poll cost per check);
        INTERRUPT mode sleeps and pays wakeup costs.
        """
        if wait_nr < 1:
            raise ApiError(f"wait_nr must be >= 1, got {wait_nr}")
        collected: list[Cqe] = []
        while len(collected) < wait_nr and len(collected) < max_cqes:
            if not self.cq.is_empty:
                got = yield from self.reap(max_cqes - len(collected))
                collected.extend(got)
                continue
            # Empty CQ: pay the wait cost, then RE-CHECK before arming the
            # waiter — a CQE posted during the yield must not be missed
            # (the arm happens synchronously after the emptiness check).
            if self.mode == UringMode.INTERRUPT:
                yield from self.kernel.context_switch(self.core)  # sleep
                if self.cq.is_empty:
                    self._cq_waiter = self.env.event()
                    yield self._cq_waiter
                yield from self.kernel.context_switch(self.core)  # wake
            else:
                yield from self.kernel.poll_once(self.core)
                if self.cq.is_empty:
                    self._cq_waiter = self.env.event()
                    yield self._cq_waiter
        return collected
