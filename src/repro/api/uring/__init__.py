"""io_uring: real SQ/CQ ring buffers, three modes, multi-instance engine."""

from .engine import UringEngine
from .instance import IoUring, UringCosts, UringMode
from .ring import Ring
from .sqe import CQE_BYTES, ECANCELED, IOSQE_IO_LINK, SQE_BYTES, Cqe, Sqe, UringOp

__all__ = [
    "CQE_BYTES",
    "Cqe",
    "ECANCELED",
    "IOSQE_IO_LINK",
    "IoUring",
    "Ring",
    "SQE_BYTES",
    "Sqe",
    "UringCosts",
    "UringEngine",
    "UringMode",
    "UringOp",
]
