"""Linux native AIO (libaio): ``io_submit`` / ``io_getevents``.

Asynchronous, but every submission batch and every completion harvest is
still a syscall, and the interface only supports O_DIRECT (unbuffered)
access — the limitation Section II calls out.  Each iocb costs a small
control-structure copy; data moves without a copy thanks to O_DIRECT.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Sequence

from ..blk import Bio, BlockLayer
from ..errors import ApiError
from ..host import HostKernel
from ..sim import Environment, Event
from .base import AioEngine, RunResult

#: Bytes of one struct iocb copied into the kernel per submission.
IOCB_BYTES = 64


class LibAioEngine(AioEngine):
    """io_submit / io_getevents event loop."""

    name = "libaio"

    def __init__(
        self,
        env: Environment,
        kernel: HostKernel,
        blk: BlockLayer,
        batch_size: int = 16,
    ):
        super().__init__(env, kernel, blk)
        if batch_size < 1:
            raise ApiError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size

    def run(self, bios: Sequence[Bio], iodepth: int) -> Generator:
        self._validate(bios, iodepth)
        result = RunResult(started_at=self.env.now)
        meter = self.open_throughput_meter()
        core = self.kernel.cpus.pick_core()
        queue = deque(bios)
        inflight: dict[int, tuple[int, int]] = {}  # req_id -> (t0, size)
        completed: deque = deque()
        waiter: list[Event] = []

        def on_done(request):
            completed.append(request.req_id)
            if waiter and not waiter[0].triggered:
                waiter.pop(0).succeed()

        while queue or inflight:
            # io_submit: one syscall for up to batch_size iocbs.
            batch = []
            while queue and len(inflight) < iodepth and len(batch) < self.batch_size:
                batch.append(queue.popleft())
            if batch:
                yield from self.kernel.syscall(core)
                yield from self.kernel.copy(core, IOCB_BYTES * len(batch))
                for bio in batch:
                    request = yield from self.blk.submit_bio(core, bio)
                    inflight[request.req_id] = (self.env.now, bio.size)
                    req = request  # bind for closure

                    def make_cb(r):
                        return lambda _ev: on_done(r)

                    if request.completion.processed:
                        on_done(request)
                    else:
                        request.completion.callbacks.append(make_cb(request))
                self.blk.flush_plug(core)
            # io_getevents: syscall; blocks (sleep+wake) if nothing ready.
            yield from self.kernel.syscall(core)
            if not completed and inflight:
                yield from self.kernel.context_switch(core)
                ev = self.env.event()
                waiter.append(ev)
                yield ev
                yield from self.kernel.interrupt(core)
                yield from self.kernel.context_switch(core)
            while completed:
                req_id = completed.popleft()
                t0, size = inflight.pop(req_id)
                result.latencies_ns.append(self.env.now - t0)
                result.bytes_moved += size
                meter.record(size, self.env.now)
        result.finished_at = self.env.now
        return result
