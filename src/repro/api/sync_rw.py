"""Traditional blocking ``read()``/``write()`` engine.

Each I/O is one syscall; the calling thread blocks until completion
(sleep + IRQ wakeup = two context switches), and buffered I/O pays a
full user/kernel data copy in each direction.  Concurrency requires
multiple threads (fio's ``numjobs``), each burning its own scheduling
overhead — the model of the "decades-old" API whose costs Section II
quantifies.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Sequence

from ..blk import Bio, BlockLayer, IoOp
from ..host import HostKernel
from ..sim import Environment
from .base import AioEngine, RunResult


class SyncEngine(AioEngine):
    """Blocking read/write with a thread pool of ``iodepth`` workers."""

    name = "sync-rw"

    def __init__(self, env: Environment, kernel: HostKernel, blk: BlockLayer, buffered: bool = True):
        super().__init__(env, kernel, blk)
        #: Buffered I/O copies data through the page cache; O_DIRECT skips it.
        self.buffered = buffered

    def run(self, bios: Sequence[Bio], iodepth: int) -> Generator:
        self._validate(bios, iodepth)
        result = RunResult(started_at=self.env.now)
        meter = self.open_throughput_meter()
        queue = deque(bios)
        workers = [
            self.env.process(self._worker(queue, result, tid, meter), name=f"sync.t{tid}")
            for tid in range(min(iodepth, len(bios)))
        ]
        yield self.env.all_of(workers)
        result.finished_at = self.env.now
        return result

    def _worker(self, queue: deque, result: RunResult, tid: int, meter) -> Generator:
        core = self.kernel.cpus.pick_core()
        while queue:
            bio = queue.popleft()
            start = self.env.now
            yield from self._blocking_io(core, bio)
            result.latencies_ns.append(self.env.now - start)
            result.bytes_moved += bio.size
            meter.record(bio.size, self.env.now)

    def _blocking_io(self, core, bio: Bio) -> Generator:
        # Syscall entry.
        yield from self.kernel.syscall(core)
        if self.buffered and bio.op == IoOp.WRITE:
            yield from self.kernel.copy(core, bio.size)
        request = yield from self.blk.submit_bio(core, bio)
        self.blk.flush_plug(core)
        # The thread sleeps; completion raises an interrupt and wakes it.
        yield from self.kernel.context_switch(core)
        yield request.completion
        t0 = self.env.now
        yield from self.kernel.interrupt(core)
        yield from self.kernel.context_switch(core)
        if self.buffered and bio.op == IoOp.READ:
            yield from self.kernel.copy(core, bio.size)
        tracer = self.blk.tracer
        if tracer is not None:
            # Completion delivery: IRQ + wakeup (+ read copy-out).
            tracer.record(request.req_id, "complete", t0, self.env.now)
            root = getattr(request, "_obs_span", None)
            if root is not None:
                root.record("complete", "stage", t0, self.env.now)
                root.finish(ok=not (request.status or request.error))
