"""IO classification: size/pattern classes with per-class occupancy caps.

Mirrors Open-CAS's IO classifier in miniature: each IO is matched
against an ordered rule list (first match wins) and the winning class
bounds how much of the cache that kind of traffic may occupy.  Rules
carry plain predicates, so later work (e.g. computational-storage
pushdown tagging) can install its own classes without touching the
cache engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..errors import CacheError
from ..units import kib

#: Fallback class for IOs no rule matches (never capped).
OTHER_CLASS = "other"


@dataclass(frozen=True)
class IoDesc:
    """What the classifier sees of one IO."""

    op: str  # "read" | "write"
    size: int  # bytes
    #: Pattern hint: part of a detected or advertised sequential stream.
    sequential: bool = False


@dataclass(frozen=True)
class IoClassRule:
    """One classification rule: name, predicate, occupancy cap."""

    name: str
    match: Callable[[IoDesc], bool] = field(compare=False)
    #: Max fraction of the cache's capacity this class may occupy
    #: (1.0 = unlimited).  Enforced by evicting within the class.
    occupancy_cap: float = 1.0

    def __post_init__(self):
        if not self.name:
            raise CacheError("IO class needs a name")
        if not 0.0 < self.occupancy_cap <= 1.0:
            raise CacheError(
                f"class {self.name!r}: occupancy_cap must be in (0, 1], "
                f"got {self.occupancy_cap}"
            )


def default_classes() -> tuple[IoClassRule, ...]:
    """The stock rule list: scans capped, small hot blocks unlimited.

    Large sequential traffic (a table scan, a backup stream) is capped at
    half the cache so it can never push the random working set out; small
    random IOs — the latency-critical class — are uncapped.
    """
    return (
        IoClassRule("seq-large", lambda io: io.sequential and io.size >= kib(128), 0.5),
        IoClassRule("small", lambda io: io.size <= kib(16), 1.0),
        IoClassRule("large", lambda io: io.size >= kib(256), 0.75),
        IoClassRule("medium", lambda io: True, 1.0),
    )


class IoClassifier:
    """Ordered first-match-wins classification over a rule list."""

    def __init__(self, rules: Iterable[IoClassRule] = ()):
        self.rules: tuple[IoClassRule, ...] = tuple(rules) or default_classes()
        names = [r.name for r in self.rules]
        if len(set(names)) != len(names):
            raise CacheError(f"duplicate IO class names: {names}")
        if OTHER_CLASS in names:
            raise CacheError(f"class name {OTHER_CLASS!r} is reserved for the fallback")
        self._caps = {r.name: r.occupancy_cap for r in self.rules}
        self._caps[OTHER_CLASS] = 1.0

    @property
    def class_names(self) -> tuple[str, ...]:
        """Every class a :meth:`classify` call can return."""
        return tuple(r.name for r in self.rules) + (OTHER_CLASS,)

    def classify(self, desc: IoDesc) -> str:
        """Class name of one IO (first matching rule, else ``other``)."""
        for rule in self.rules:
            if rule.match(desc):
                return rule.name
        return OTHER_CLASS

    def cap_lines(self, name: str, capacity_lines: int) -> int:
        """Occupancy bound of a class in cache lines (at least 1)."""
        return max(1, int(self._caps.get(name, 1.0) * capacity_lines))
