"""Cache-line store: LRU-ordered resident lines with dirty tracking.

The store is pure bookkeeping — no simulation events, no backend I/O.
Flushing and filling (which *do* take simulated time) live in
:class:`repro.cache.engine.CachedImage`; the store only answers "what is
resident, in what order, and what is dirty".  Iteration orders are
dict-insertion deterministic, so seeded runs replay bit-identically.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional

from ..errors import CacheError


class CacheLine:
    """One resident cache line."""

    __slots__ = (
        "line_id", "data", "dirty", "hits", "klass", "dirty_since_ns", "last_access_ns",
    )

    def __init__(self, line_id: int, data: bytearray, klass: str, now_ns: int):
        self.line_id = line_id
        #: Full line payload (clamped at the image tail).
        self.data = data
        self.dirty = False
        #: Touches while resident (promotion/eviction telemetry).
        self.hits = 0
        #: IO class that inserted the line (per-class occupancy caps).
        self.klass = klass
        #: When the line first became dirty; -1 while clean (ALRU ages on it).
        self.dirty_since_ns = -1
        self.last_access_ns = now_ns

    def mark_dirty(self, now_ns: int) -> None:
        """Dirty the line (first dirtying records the ALRU age epoch)."""
        if not self.dirty:
            self.dirty = True
            self.dirty_since_ns = now_ns

    def mark_clean(self) -> None:
        """Line flushed: contents now match the backend."""
        self.dirty = False
        self.dirty_since_ns = -1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "dirty" if self.dirty else "clean"
        return f"<CacheLine {self.line_id} {state} {self.klass} hits={self.hits}>"


class CacheLineStore:
    """LRU map of resident lines plus per-class occupancy accounting."""

    def __init__(self, capacity_lines: int):
        if capacity_lines < 1:
            raise CacheError(f"capacity_lines must be >= 1, got {capacity_lines}")
        self.capacity_lines = capacity_lines
        #: line_id -> line, LRU order (oldest first).
        self._lines: "OrderedDict[int, CacheLine]" = OrderedDict()
        self._class_occupancy: dict[str, int] = {}
        self._dirty = 0

    # -- inspection --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._lines)

    def __contains__(self, line_id: int) -> bool:
        return line_id in self._lines

    @property
    def occupancy(self) -> int:
        """Resident line count."""
        return len(self._lines)

    @property
    def dirty_count(self) -> int:
        """Resident dirty line count."""
        return self._dirty

    def class_occupancy(self, klass: str) -> int:
        """Resident lines belonging to one IO class."""
        return self._class_occupancy.get(klass, 0)

    def lines_lru(self) -> Iterator[CacheLine]:
        """Resident lines, least-recently-used first."""
        return iter(list(self._lines.values()))

    def dirty_lines_lru(self) -> list[CacheLine]:
        """Dirty lines, least-recently-used first."""
        return [line for line in self._lines.values() if line.dirty]

    # -- access ------------------------------------------------------------------

    def lookup(self, line_id: int, now_ns: int) -> Optional[CacheLine]:
        """Resident line or None; a hit refreshes LRU position."""
        line = self._lines.get(line_id)
        if line is None:
            return None
        self._lines.move_to_end(line_id)
        line.hits += 1
        line.last_access_ns = now_ns
        return line

    def peek(self, line_id: int) -> Optional[CacheLine]:
        """Resident line or None, *without* touching LRU state."""
        return self._lines.get(line_id)

    # -- mutation ----------------------------------------------------------------

    def insert(self, line: CacheLine) -> None:
        """Add a line (caller must have made room; never evicts)."""
        if line.line_id in self._lines:
            raise CacheError(f"line {line.line_id} already resident")
        if len(self._lines) >= self.capacity_lines:
            raise CacheError("cache full: evict before inserting")
        self._lines[line.line_id] = line
        self._class_occupancy[line.klass] = self._class_occupancy.get(line.klass, 0) + 1
        if line.dirty:
            self._dirty += 1

    def remove(self, line_id: int) -> CacheLine:
        """Drop a line from the store (flushing is the engine's job)."""
        line = self._lines.pop(line_id, None)
        if line is None:
            raise CacheError(f"line {line_id} not resident")
        self._class_occupancy[line.klass] -= 1
        if line.dirty:
            self._dirty -= 1
        return line

    def note_dirty(self, line: CacheLine, now_ns: int) -> None:
        """Mark a resident line dirty (keeps the dirty count exact)."""
        if not line.dirty:
            self._dirty += 1
            line.mark_dirty(now_ns)

    def note_clean(self, line: CacheLine) -> None:
        """Mark a resident line clean after a flush."""
        if line.dirty:
            self._dirty -= 1
            line.mark_clean()

    def victim(self, klass: Optional[str] = None) -> Optional[CacheLine]:
        """Eviction candidate: LRU-first, optionally within one class."""
        for line in self._lines.values():
            if klass is None or line.klass == klass:
                return line
        return None

    def drop_all(self) -> int:
        """Invalidate every resident line; returns how many were dropped.

        Dirty lines must be flushed first — dropping dirty data would
        silently lose writes, so that is an error.
        """
        if self._dirty:
            raise CacheError(f"cannot drop {self._dirty} dirty line(s); flush first")
        dropped = len(self._lines)
        self._lines.clear()
        self._class_occupancy.clear()
        return dropped
