"""Cache-tier configuration: mode, geometry, policies, and device costs.

The cost model is a fast local cache device (think client-attached NVMe,
the role Open-CAS gives its cache volume): a fixed access latency plus a
bandwidth term, both far below a fabric round-trip.  All knobs validate
eagerly so a misconfigured cache fails at build time, not mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import CacheError
from ..units import kib, mib, ms, us
from .classify import IoClassRule


class CacheMode(Enum):
    """What the cache does with reads and writes (Open-CAS modes)."""

    #: Delegate everything untouched — event-identical to no cache.
    PASS_THROUGH = "pt"
    #: Reads promote; writes go to cache *and* backend synchronously.
    WRITE_THROUGH = "wt"
    #: Reads promote; writes dirty the cache and flush lazily.
    WRITE_BACK = "wb"
    #: Reads promote; writes bypass the cache (resident copies updated).
    WRITE_AROUND = "wa"


#: Accepted spellings -> mode (CLI/bench parsing).
_MODE_ALIASES = {
    "pt": CacheMode.PASS_THROUGH,
    "pass-through": CacheMode.PASS_THROUGH,
    "passthrough": CacheMode.PASS_THROUGH,
    "wt": CacheMode.WRITE_THROUGH,
    "write-through": CacheMode.WRITE_THROUGH,
    "wb": CacheMode.WRITE_BACK,
    "write-back": CacheMode.WRITE_BACK,
    "wa": CacheMode.WRITE_AROUND,
    "write-around": CacheMode.WRITE_AROUND,
}

PROMOTION_POLICIES = ("always", "nhit")
CLEANING_POLICIES = ("nop", "alru", "acp")


def parse_cache_mode(name: str) -> CacheMode:
    """Mode from a CLI spelling (``wb``, ``write-back``, ...)."""
    try:
        return _MODE_ALIASES[name.lower()]
    except KeyError:
        raise CacheError(
            f"unknown cache mode {name!r}; know {sorted(_MODE_ALIASES)}"
        ) from None


@dataclass(frozen=True)
class CacheConfig:
    """Every knob of one cache instance."""

    mode: CacheMode = CacheMode.WRITE_THROUGH
    #: Cache-line granularity in bytes (fills, dirtying, eviction).
    line_size: int = kib(64)
    #: Capacity in lines (line_size * capacity_lines bytes of cache).
    capacity_lines: int = 512

    #: Promotion policy: "always" or "nhit" (insert after N touches).
    promotion: str = "always"
    promotion_hit_threshold: int = 2

    #: Cleaning policy for dirty write-back lines: "nop" | "alru" | "acp".
    cleaning: str = "nop"
    #: ALRU: flush lines dirty for longer than this, scanning LRU-first.
    alru_staleness_ns: int = ms(2)
    alru_wake_ns: int = us(500)
    alru_flush_max: int = 8
    #: ACP: flush any dirty line, aggressively, in large batches.
    acp_wake_ns: int = us(100)
    acp_flush_max: int = 32

    #: Sequential cutoff: once a contiguous stream exceeds this many
    #: bytes (or one IO advertises a sequential run that long), the
    #: stream bypasses the cache.  0 disables the cutoff.
    seq_cutoff_bytes: int = mib(1)
    #: Concurrently tracked streams (Open-CAS tracks per-queue streams).
    seq_streams: int = 8

    #: Cache device cost model: fixed access latency + bandwidth term.
    read_hit_base_ns: int = us(6)
    write_hit_base_ns: int = us(8)
    #: Cache device bandwidth in bytes per microsecond (3200 = 3.2 GB/s).
    bw_bytes_per_us: int = 3200

    #: IO classification rules; empty = :func:`default_classes`.
    io_classes: tuple[IoClassRule, ...] = ()

    def __post_init__(self):
        if not isinstance(self.mode, CacheMode):
            raise CacheError(f"mode must be a CacheMode, got {self.mode!r}")
        if self.line_size < 512 or self.line_size % 512:
            raise CacheError(
                f"line_size must be a positive 512 B multiple, got {self.line_size}"
            )
        if self.capacity_lines < 1:
            raise CacheError(f"capacity_lines must be >= 1, got {self.capacity_lines}")
        if self.promotion not in PROMOTION_POLICIES:
            raise CacheError(
                f"unknown promotion policy {self.promotion!r}; know {PROMOTION_POLICIES}"
            )
        if self.promotion_hit_threshold < 1:
            raise CacheError(
                f"promotion_hit_threshold must be >= 1, got {self.promotion_hit_threshold}"
            )
        if self.cleaning not in CLEANING_POLICIES:
            raise CacheError(
                f"unknown cleaning policy {self.cleaning!r}; know {CLEANING_POLICIES}"
            )
        for name in ("alru_staleness_ns", "alru_wake_ns", "acp_wake_ns"):
            if getattr(self, name) <= 0:
                raise CacheError(f"{name} must be > 0")
        if self.alru_flush_max < 1 or self.acp_flush_max < 1:
            raise CacheError("cleaning flush batch sizes must be >= 1")
        if self.seq_cutoff_bytes < 0:
            raise CacheError(f"seq_cutoff_bytes must be >= 0, got {self.seq_cutoff_bytes}")
        if self.seq_streams < 1:
            raise CacheError(f"seq_streams must be >= 1, got {self.seq_streams}")
        if self.read_hit_base_ns < 0 or self.write_hit_base_ns < 0:
            raise CacheError("cache device base latencies must be >= 0")
        if self.bw_bytes_per_us < 1:
            raise CacheError(f"bw_bytes_per_us must be >= 1, got {self.bw_bytes_per_us}")

    # -- cache device cost model ------------------------------------------------

    def read_cost_ns(self, nbytes: int) -> int:
        """Service time of reading ``nbytes`` from the cache device."""
        return self.read_hit_base_ns + (nbytes * 1000) // self.bw_bytes_per_us

    def write_cost_ns(self, nbytes: int) -> int:
        """Service time of writing ``nbytes`` to the cache device."""
        return self.write_hit_base_ns + (nbytes * 1000) // self.bw_bytes_per_us

    @property
    def capacity_bytes(self) -> int:
        """Total cache capacity in bytes."""
        return self.line_size * self.capacity_lines
