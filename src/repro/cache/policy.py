"""Promotion and cleaning policies for the cache tier.

Promotion decides whether a miss earns residency (Open-CAS: ``always``
vs ``nhit``); cleaning decides when dirty write-back lines flush to the
backend (Open-CAS: NOP / ALRU / ACP).  Cleaning policies run as
simulation processes inside the cache engine; they sleep on an event
while the cache holds no dirty data, so an idle cache schedules zero
events and the simulation terminates normally.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Generator

from ..errors import CacheError

if TYPE_CHECKING:  # pragma: no cover
    from .config import CacheConfig
    from .engine import CachedImage


# -- promotion ----------------------------------------------------------------


class AlwaysPromote:
    """Every miss is inserted."""

    name = "always"

    def should_promote(self, line_id: int) -> bool:
        return True


class NHitPromote:
    """Insert a line only once it has missed ``threshold`` times.

    Touch counts for non-resident lines live in a bounded FIFO map (as
    in Open-CAS's promotion policy NHIT), so a scan over a huge address
    space cannot grow client memory without bound.
    """

    name = "nhit"

    def __init__(self, threshold: int, window: int = 8192):
        if threshold < 1:
            raise CacheError(f"nhit threshold must be >= 1, got {threshold}")
        if window < 1:
            raise CacheError(f"nhit window must be >= 1, got {window}")
        self.threshold = threshold
        self.window = window
        self._touches: "OrderedDict[int, int]" = OrderedDict()

    def should_promote(self, line_id: int) -> bool:
        count = self._touches.pop(line_id, 0) + 1
        if count >= self.threshold:
            return True
        self._touches[line_id] = count
        while len(self._touches) > self.window:
            self._touches.popitem(last=False)
        return False


def make_promotion(config: "CacheConfig"):
    """Promotion policy instance from a config."""
    if config.promotion == "always":
        return AlwaysPromote()
    return NHitPromote(config.promotion_hit_threshold)


# -- cleaning -----------------------------------------------------------------


class NopCleaning:
    """No background cleaning: dirty lines flush only on demand
    (eviction, explicit flush, epoch invalidation)."""

    name = "nop"
    runs = False

    def run(self, cache: "CachedImage") -> Generator:  # pragma: no cover
        raise CacheError("NOP cleaning has no background process")


class AlruCleaning:
    """ALRU-style aged flush: lines dirty longer than ``staleness_ns``
    are written back, oldest (LRU) first, a bounded batch per wakeup."""

    name = "alru"
    runs = True

    def __init__(self, staleness_ns: int, wake_ns: int, flush_max: int):
        self.staleness_ns = staleness_ns
        self.wake_ns = wake_ns
        self.flush_max = flush_max

    def run(self, cache: "CachedImage") -> Generator:
        env = cache.env
        while True:
            if cache.store.dirty_count == 0:
                yield cache.dirty_event()
            dirty = cache.store.dirty_lines_lru()
            if not dirty:
                continue
            deadline = env.now - self.staleness_ns
            stale = [ln for ln in dirty if ln.dirty_since_ns <= deadline]
            if not stale:
                # Nothing aged yet: sleep until the oldest line matures
                # (never busy-wake faster than the scan cadence).
                oldest = min(ln.dirty_since_ns for ln in dirty)
                yield env.timeout(max(self.wake_ns, oldest + self.staleness_ns - env.now))
                continue
            yield from cache.flush_lines(stale[: self.flush_max], reason="alru")
            yield env.timeout(self.wake_ns)


class AcpCleaning:
    """ACP-style aggressive flush: any dirty line is written back as
    fast as the wake cadence allows, in large batches."""

    name = "acp"
    runs = True

    def __init__(self, wake_ns: int, flush_max: int):
        self.wake_ns = wake_ns
        self.flush_max = flush_max

    def run(self, cache: "CachedImage") -> Generator:
        env = cache.env
        while True:
            if cache.store.dirty_count == 0:
                yield cache.dirty_event()
            dirty = cache.store.dirty_lines_lru()
            if dirty:
                yield from cache.flush_lines(dirty[: self.flush_max], reason="acp")
            yield env.timeout(self.wake_ns)


def make_cleaning(config: "CacheConfig"):
    """Cleaning policy instance from a config."""
    if config.cleaning == "alru":
        return AlruCleaning(config.alru_staleness_ns, config.alru_wake_ns, config.alru_flush_max)
    if config.cleaning == "acp":
        return AcpCleaning(config.acp_wake_ns, config.acp_flush_max)
    return NopCleaning()
