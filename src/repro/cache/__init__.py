"""Client-side block cache tier (Open-CAS style).

Sits between the blk-mq request layer and the distributed backend
(:class:`repro.osd.rbd.RBDImage`): a cache-line store on a fast local
device absorbs hot blocks so repeat touches never cross the fabric.

* **modes** — pass-through / write-through / write-back / write-around
  (:class:`CacheMode`);
* **promotion** — always, or n-hit (insert only after *n* touches);
* **cleaning** — NOP, ALRU-style aged flush, or ACP-style aggressive
  flush of dirty write-back lines;
* **sequential cutoff** — long contiguous streams bypass the cache so
  scans cannot evict the hot random set;
* **IO classification** — size/pattern classes with per-class occupancy
  caps (the classifier hooks are pluggable for later pushdown work).

Pass-through mode delegates every call untouched, so a stack built with
it is event-identical to one built without a cache — the golden-trace
harness holds either way.
"""

from .classify import IoClassRule, IoClassifier, IoDesc, default_classes
from .config import CacheConfig, CacheMode, parse_cache_mode
from .engine import CachedImage
from .policy import (
    AcpCleaning,
    AlruCleaning,
    AlwaysPromote,
    NHitPromote,
    NopCleaning,
    make_cleaning,
    make_promotion,
)
from .store import CacheLine, CacheLineStore

__all__ = [
    "AcpCleaning",
    "AlruCleaning",
    "AlwaysPromote",
    "CacheConfig",
    "CacheLine",
    "CacheLineStore",
    "CacheMode",
    "CachedImage",
    "IoClassRule",
    "IoClassifier",
    "IoDesc",
    "NHitPromote",
    "NopCleaning",
    "default_classes",
    "make_cleaning",
    "make_promotion",
    "parse_cache_mode",
]
