"""The cache engine: an Open-CAS-style tier in front of an RBD image.

:class:`CachedImage` is interface-compatible with
:class:`repro.osd.rbd.RBDImage` (``read`` / ``write`` generators plus
the attributes the drivers touch), so it drops between any blk-mq
driver and the distributed backend without either side changing.

Correctness invariants the implementation maintains:

* a **clean** resident line's bytes always equal what a backend read of
  that range would return (write-around and bypass writes update
  resident copies only *after* the backend write completes);
* a **dirty** line is never silently discarded — eviction, epoch
  invalidation, and explicit :meth:`flush` write it back first, through
  the normal :class:`repro.osd.policy.OpPolicy` retry/failover path, so
  dirty data survives OSD crashes mid-flush;
* any OSDMap **epoch bump** flushes all dirty lines and drops every
  resident line before the next access is served, so a map change can
  never expose stale cached data;
* concurrent in-flight ops (iodepth > 1) re-check residency after every
  simulated wait, so read-your-writes holds under interleaving.

In **pass-through** mode every call delegates untouched — no events, no
spans, no metrics — making the cached stack event-identical to an
uncached one (the golden-trace guarantee).

Span trees: when a causal ``ctx`` is passed, each access grows one
``cache`` child annotated with hit/miss/bypass counts, and every
backend leg (line fill, write-through, flush) nests under it — critical
-path attribution shows exactly whether a request was gated by the
cache device or the fabric.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generator, Optional

from ..errors import StorageError
from ..obs.context import wrap_span
from ..osd.rbd import RBDImage
from ..sim import NULL_METRICS
from .classify import IoClassifier, IoDesc
from .config import CacheConfig, CacheMode
from .policy import make_cleaning, make_promotion
from .store import CacheLine, CacheLineStore


class StreamDetector:
    """Sequential-stream detection for the cutoff (Open-CAS style).

    Tracks the tails of up to ``max_streams`` concurrent contiguous
    streams; an IO that starts exactly where a tracked stream ended
    extends that stream's byte run.  Oldest stream is forgotten first.
    """

    __slots__ = ("max_streams", "_tails")

    def __init__(self, max_streams: int):
        self.max_streams = max_streams
        #: stream tail offset -> accumulated contiguous bytes.
        self._tails: "OrderedDict[int, int]" = OrderedDict()

    def update(self, offset: int, size: int) -> int:
        """Record one IO; returns the contiguous run it belongs to (bytes)."""
        run = self._tails.pop(offset, 0) + size
        self._tails[offset + size] = run
        while len(self._tails) > self.max_streams:
            self._tails.popitem(last=False)
        return run

    def reset(self) -> None:
        """Forget every tracked stream."""
        self._tails.clear()


class CachedImage:
    """A block cache tier wrapping an :class:`RBDImage`."""

    def __init__(self, image: RBDImage, config: CacheConfig, metrics=None):
        self.image = image
        self.config = config
        self.env = image.client.env
        self.store = CacheLineStore(config.capacity_lines)
        self.classifier = IoClassifier(config.io_classes)
        self.promotion = make_promotion(config)
        self.cleaning = make_cleaning(config)
        self._streams = StreamDetector(config.seq_streams)
        self._epoch = image.client.osdmap.epoch
        #: line_id -> completion event of an in-flight flush.
        self._flush_events: dict[int, object] = {}
        self._dirty_ev = None
        # Plain counters (mirrored into the metrics registry).
        self.read_hits = 0
        self.read_misses = 0
        self.write_hits = 0
        self.write_misses = 0
        self.promotions = 0
        self.promotion_rejects = 0
        self.evictions = 0
        self.dirty_evictions = 0
        self.flushed_lines = 0
        self.seq_bypasses = 0
        self.epoch_invalidations = 0
        metrics = metrics or NULL_METRICS
        self._m = {
            name: metrics.counter(f"cache.{name}")
            for name in (
                "read_hits", "read_misses", "write_hits", "write_misses",
                "promotions", "promotion_rejects", "evictions", "dirty_evictions",
                "flushed_lines", "seq_bypasses", "epoch_invalidations",
            )
        }
        #: Per-mode op counters (`cache.ops.wb`, ...).
        self._m_ops = metrics.counter(f"cache.ops.{config.mode.value}")
        self._m_class = {
            name: metrics.counter(f"cache.class.{name}.inserts")
            for name in self.classifier.class_names
        }
        self._g_occupancy = metrics.gauge("cache.occupancy_lines")
        self._g_dirty = metrics.gauge("cache.dirty_lines")
        self._g_hit_ratio = metrics.gauge("cache.hit_ratio")
        if config.mode is CacheMode.WRITE_BACK and self.cleaning.runs:
            self.env.process(self.cleaning.run(self), name=f"cache.{self.cleaning.name}")

    # -- RBDImage interface delegation -------------------------------------------

    @property
    def pool(self):
        return self.image.pool

    @property
    def object_size(self) -> int:
        return self.image.object_size

    @property
    def size_bytes(self) -> int:
        return self.image.size_bytes

    @property
    def client(self):
        return self.image.client

    @property
    def name(self) -> str:
        return self.image.name

    @property
    def direct(self) -> bool:
        return self.image.direct

    @direct.setter
    def direct(self, value: bool) -> None:
        self.image.direct = value

    def object_name(self, index: int) -> str:
        return self.image.object_name(index)

    # -- stats -------------------------------------------------------------------

    def hit_ratio(self) -> float:
        """Read hit fraction so far (0.0 before any read)."""
        total = self.read_hits + self.read_misses
        return self.read_hits / total if total else 0.0

    def stats(self) -> dict:
        """Snapshot of every cache counter plus occupancy."""
        return {
            "mode": self.config.mode.value,
            "read_hits": self.read_hits,
            "read_misses": self.read_misses,
            "write_hits": self.write_hits,
            "write_misses": self.write_misses,
            "hit_ratio": self.hit_ratio(),
            "promotions": self.promotions,
            "promotion_rejects": self.promotion_rejects,
            "evictions": self.evictions,
            "dirty_evictions": self.dirty_evictions,
            "flushed_lines": self.flushed_lines,
            "seq_bypasses": self.seq_bypasses,
            "epoch_invalidations": self.epoch_invalidations,
            "occupancy_lines": self.store.occupancy,
            "dirty_lines": self.store.dirty_count,
        }

    def _count(self, name: str, n: int = 1) -> None:
        setattr(self, name, getattr(self, name) + n)
        self._m[name].add(n)

    def _refresh_gauges(self) -> None:
        self._g_occupancy.set(self.store.occupancy)
        self._g_dirty.set(self.store.dirty_count)
        self._g_hit_ratio.set(self.hit_ratio())

    # -- geometry ----------------------------------------------------------------

    def _check_extent(self, offset: int, length: int) -> None:
        if offset < 0 or length <= 0:
            raise StorageError(f"invalid extent ({offset}, {length})")
        if offset + length > self.size_bytes:
            raise StorageError(
                f"extent ({offset}, {length}) beyond image size {self.size_bytes}"
            )

    def _segments(self, offset: int, length: int) -> list[tuple[int, int, int, int, int]]:
        """Split a byte range into per-line segments.

        Returns ``(line_id, line_off, line_len, seg_off, seg_len)`` per
        overlapped line, where ``line_len`` clamps at the image tail and
        ``seg_off`` is the segment's absolute image offset.
        """
        ls = self.config.line_size
        segs = []
        pos = offset
        end = offset + length
        while pos < end:
            line_id = pos // ls
            line_off = line_id * ls
            line_len = min(ls, self.size_bytes - line_off)
            seg_end = min(end, line_off + line_len)
            segs.append((line_id, line_off, line_len, pos, seg_end - pos))
            pos = seg_end
        return segs

    # -- cleaning support ---------------------------------------------------------

    def dirty_event(self):
        """Event the cleaner sleeps on while no line is dirty."""
        if self._dirty_ev is None:
            self._dirty_ev = self.env.event()
        return self._dirty_ev

    def _kick_cleaner(self) -> None:
        if self._dirty_ev is not None:
            self._dirty_ev.succeed(None)
            self._dirty_ev = None

    # -- flush / invalidate --------------------------------------------------------

    def _flush_line(self, line: CacheLine, ctx=None) -> Generator:
        """Process: write one dirty line back to the backend.

        Concurrent flushes of the same line coalesce onto one backend
        write; a line re-dirtied *during* its flush is flushed again
        before returning, so "flushed" always means "durable as of the
        newest write seen here".
        """
        pending = self._flush_events.get(line.line_id)
        if pending is not None:
            yield pending
            return
        ev = self.env.event()
        self._flush_events[line.line_id] = ev
        try:
            while line.dirty:
                snapshot = bytes(line.data)
                self.store.note_clean(line)
                try:
                    yield from self.image.write(
                        line.line_id * self.config.line_size, snapshot,
                        sequential=False, ctx=ctx,
                    )
                except Exception:
                    self.store.note_dirty(line, self.env.now)
                    raise
                self._count("flushed_lines")
        finally:
            del self._flush_events[line.line_id]
            ev.succeed(None)
        self._refresh_gauges()

    def flush_lines(self, lines: list[CacheLine], reason: str = "", ctx=None) -> Generator:
        """Process: write a batch of dirty lines back, in parallel."""
        procs = [
            self.env.process(self._flush_line(line, ctx=ctx), name=f"cache.flush.{reason}")
            for line in lines
        ]
        if procs:
            yield self.env.all_of(procs)

    def flush(self, ctx=None) -> Generator:
        """Process: write back every dirty line (durable on return).

        Loops until no dirty line remains, so writes that race with the
        flush are flushed too (rather than silently surviving it).
        """
        while self.store.dirty_count:
            yield from self.flush_lines(self.store.dirty_lines_lru(), reason="all", ctx=ctx)

    def invalidate(self) -> int:
        """Drop every resident line (raises if any line is dirty).

        Returns the number of lines dropped.  Callers that may hold
        dirty data must ``yield from flush()`` first.
        """
        dropped = self.store.drop_all()
        self._streams.reset()
        self._refresh_gauges()
        return dropped

    def _sync_epoch(self, ctx=None) -> Generator:
        """Process: on an OSDMap epoch bump, flush dirty data and drop
        every resident line before serving the access.

        The flush itself may fail over and bump the epoch again; the
        loop converges because a flushed-and-dropped cache has nothing
        left to invalidate.
        """
        client = self.image.client
        while self._epoch != client.osdmap.epoch:
            self._epoch = client.osdmap.epoch
            self._count("epoch_invalidations")
            yield from self.flush(ctx=ctx)
            self.invalidate()

    # -- eviction -----------------------------------------------------------------

    def _cap_lines(self, klass: str) -> int:
        return self.classifier.cap_lines(klass, self.config.capacity_lines)

    def _make_room(self, klass: str) -> Generator:
        """Process: evict (flushing dirty victims) until one line of
        class ``klass`` fits under both the global and class caps."""
        store = self.store
        while True:
            if store.occupancy >= self.config.capacity_lines:
                victim = store.victim()
            elif store.class_occupancy(klass) >= self._cap_lines(klass):
                victim = store.victim(klass)
            else:
                return
            if victim is None:
                return
            if victim.dirty:
                self._count("dirty_evictions")
                yield from self._flush_line(victim)
                if victim.dirty:
                    continue  # re-dirtied mid-flush; flush again
            if victim.line_id in store:
                store.remove(victim.line_id)
                self._count("evictions")

    def _insert_line(self, line_id: int, line_len: int, data: bytearray,
                     klass: str, dirty: bool) -> Generator:
        """Process: insert a fully-populated line, evicting as needed.

        If a concurrent op made the line resident while we were filling,
        the resident copy wins (it is at least as new) and for writes the
        incoming bytes were already overlaid by the caller.
        """
        if line_id in self.store:
            return
        yield from self._make_room(klass)
        line = CacheLine(line_id, data, klass, self.env.now)
        if dirty:
            line.mark_dirty(self.env.now)
        self.store.insert(line)
        self._count("promotions")
        self._m_class[klass].add()
        if dirty:
            self._kick_cleaner()
        self._refresh_gauges()

    # -- backend helpers ----------------------------------------------------------

    def _fetch_line(self, line_off: int, line_len: int, ctx=None, tenant: str = "") -> Generator:
        """Process: read one full (clamped) line from the backend.

        ``tenant`` attributes the fill to the op that missed; lazy
        flush/cleaner traffic stays untagged (cache housekeeping).
        """
        data = yield from self.image.read(line_off, line_len, ctx=ctx, tenant=tenant)
        return data

    def _leg(self, span, name: str, **meta):
        return span.child(name, "fanout", **meta) if span is not None else None

    # -- the datapath --------------------------------------------------------------

    def read(self, offset: int, length: int, ctx=None, tenant: str = "") -> Generator:
        """Process: cached read; returns bytes (read-your-writes exact)."""
        config = self.config
        if config.mode is CacheMode.PASS_THROUGH:
            data = yield from self.image.read(offset, length, ctx=ctx, tenant=tenant)
            return data
        self._check_extent(offset, length)
        self._m_ops.add()
        yield from self._sync_epoch(ctx=ctx)
        run = self._streams.update(offset, length)
        desc = IoDesc("read", length, sequential=run > length)
        span = (
            ctx.child("cache", "cache", mode=config.mode.value, op="read")
            if ctx is not None
            else None
        )
        segs = self._segments(offset, length)
        bypass = (
            config.seq_cutoff_bytes > 0
            and run >= config.seq_cutoff_bytes
            and not any(
                (ln := self.store.peek(s[0])) is not None and ln.dirty for s in segs
            )
        )
        if bypass:
            # Long contiguous stream with no dirty overlap: the backend
            # serves it directly and the cache stays unpolluted.
            self._count("seq_bypasses")
            try:
                data = yield from self.image.read(offset, length, ctx=span, tenant=tenant)
            finally:
                if span is not None:
                    span.finish(bypass=True)
            return data
        klass = self.classifier.classify(desc)
        now = self.env.now
        parts: dict[int, Optional[bytes]] = {}
        hit_bytes = 0
        fetches: dict[int, object] = {}
        hits = misses = 0
        for line_id, line_off, line_len, seg_off, seg_len in segs:
            line = self.store.lookup(line_id, now)
            if line is not None:
                hits += 1
                hit_bytes += seg_len
                rel = seg_off - line_off
                parts[line_id] = bytes(line.data[rel : rel + seg_len])
            else:
                misses += 1
                leg = self._leg(span, f"fill.{line_id}", line=line_id)
                fetches[line_id] = self.env.process(
                    wrap_span(leg, self._fetch_line(line_off, line_len, ctx=leg, tenant=tenant)),
                    name="cache.fill",
                )
        self._count("read_hits", hits)
        self._count("read_misses", misses)
        if hit_bytes:
            yield self.env.timeout(config.read_cost_ns(hit_bytes))
        inserted_bytes = 0
        if fetches:
            results = yield self.env.all_of(list(fetches.values()))
            for line_id, line_off, line_len, seg_off, seg_len in segs:
                proc = fetches.get(line_id)
                if proc is None:
                    continue
                full = results[proc]
                rel = seg_off - line_off
                resident = self.store.peek(line_id)
                if resident is not None:
                    # A concurrent op promoted (or wrote) this line while
                    # we fetched: its copy is newer — serve that.
                    parts[line_id] = bytes(resident.data[rel : rel + seg_len])
                    continue
                parts[line_id] = full[rel : rel + seg_len]
                if self.promotion.should_promote(line_id):
                    yield from self._insert_line(
                        line_id, line_len, bytearray(full), klass, dirty=False
                    )
                    inserted_bytes += line_len
                else:
                    self._count("promotion_rejects")
        if inserted_bytes:
            # Filling the cache device costs its write bandwidth.
            yield self.env.timeout(config.write_cost_ns(inserted_bytes))
        self._refresh_gauges()
        if span is not None:
            span.finish(hits=hits, misses=misses)
        return b"".join(parts[s[0]] for s in segs)

    def write(
        self, offset: int, data: bytes, sequential: bool = False, ctx=None,
        tenant: str = "",
    ) -> Generator:
        """Process: cached write under the configured mode."""
        config = self.config
        if config.mode is CacheMode.PASS_THROUGH:
            yield from self.image.write(offset, data, sequential=sequential, ctx=ctx, tenant=tenant)
            return
        length = len(data)
        self._check_extent(offset, length)
        self._m_ops.add()
        yield from self._sync_epoch(ctx=ctx)
        run = self._streams.update(offset, length)
        desc = IoDesc("write", length, sequential=sequential or run > length)
        span = (
            ctx.child("cache", "cache", mode=config.mode.value, op="write")
            if ctx is not None
            else None
        )
        bypass = config.seq_cutoff_bytes > 0 and (
            run >= config.seq_cutoff_bytes
            or (sequential and length >= config.seq_cutoff_bytes)
        )
        if bypass or config.mode is CacheMode.WRITE_AROUND:
            if bypass:
                self._count("seq_bypasses")
            try:
                yield from self.image.write(
                    offset, data, sequential=sequential, ctx=span, tenant=tenant
                )
            finally:
                if span is not None:
                    span.finish(bypass=bypass)
            # Only after the backend write is durable may resident copies
            # change, so a failed write cannot strand stale "clean" data.
            self._update_resident(offset, data)
            return
        if config.mode is CacheMode.WRITE_THROUGH:
            yield from self._write_through(offset, data, desc, span, sequential, tenant)
        else:
            yield from self._write_back(offset, data, desc, span, tenant)
        self._refresh_gauges()
        if span is not None:
            span.finish()

    # -- write helpers -------------------------------------------------------------

    def _update_resident(self, offset: int, data: bytes) -> int:
        """Overlay a written range onto any resident lines (in place).

        Dirty lines stay dirty; clean lines stay clean — after the
        backend write that preceded this call, both still satisfy their
        invariants.  Returns the number of lines updated.
        """
        now = self.env.now
        updated = 0
        for line_id, line_off, _line_len, seg_off, seg_len in self._segments(offset, len(data)):
            line = self.store.lookup(line_id, now)
            if line is None:
                continue
            rel_src = seg_off - offset
            rel_dst = seg_off - line_off
            line.data[rel_dst : rel_dst + seg_len] = data[rel_src : rel_src + seg_len]
            updated += 1
        return updated

    def _write_through(
        self, offset: int, data: bytes, desc: IoDesc, span, sequential: bool,
        tenant: str = "",
    ) -> Generator:
        """WT: backend write first, then mirror into the cache.

        Write misses promote only full-line segments — a partial-line
        miss would need a read-fill just to hold data the backend
        already has, so it stays uncached until a read promotes it.
        """
        leg = self._leg(span, "backend", op="write")
        yield from wrap_span(leg, self.image.write(
            offset, data, sequential=sequential, ctx=leg, tenant=tenant,
        ))
        klass = self.classifier.classify(desc)
        cached_bytes = 0
        for line_id, line_off, line_len, seg_off, seg_len in self._segments(offset, len(data)):
            line = self.store.lookup(line_id, self.env.now)
            rel_src = seg_off - offset
            if line is not None:
                self._count("write_hits")
                rel_dst = seg_off - line_off
                line.data[rel_dst : rel_dst + seg_len] = data[rel_src : rel_src + seg_len]
                cached_bytes += seg_len
                continue
            self._count("write_misses")
            if seg_len == line_len and self.promotion.should_promote(line_id):
                yield from self._insert_line(
                    line_id, line_len, bytearray(data[rel_src : rel_src + seg_len]),
                    klass, dirty=False,
                )
                cached_bytes += line_len
            elif seg_len == line_len:
                self._count("promotion_rejects")
        if cached_bytes:
            yield self.env.timeout(self.config.write_cost_ns(cached_bytes))

    def _write_back(
        self, offset: int, data: bytes, desc: IoDesc, span, tenant: str = ""
    ) -> Generator:
        """WB: dirty the cache; only non-promoted segments touch the
        backend now, everything else flushes lazily."""
        klass = self.classifier.classify(desc)
        now = self.env.now
        cached_bytes = 0
        fills: dict[int, object] = {}
        fill_segs: dict[int, tuple[int, int, int, int, int]] = {}
        backend_segs: list[tuple[int, int]] = []  # (abs offset, len)
        full_inserts: list[tuple[int, int, int, int, int]] = []
        dirtied = False
        for seg in self._segments(offset, len(data)):
            line_id, line_off, line_len, seg_off, seg_len = seg
            line = self.store.lookup(line_id, now)
            rel_src = seg_off - offset
            if line is not None:
                self._count("write_hits")
                rel_dst = seg_off - line_off
                line.data[rel_dst : rel_dst + seg_len] = data[rel_src : rel_src + seg_len]
                self.store.note_dirty(line, now)
                dirtied = True
                cached_bytes += seg_len
                continue
            self._count("write_misses")
            if not self.promotion.should_promote(line_id):
                self._count("promotion_rejects")
                backend_segs.append((seg_off, seg_len))
                continue
            if seg_len == line_len:
                full_inserts.append(seg)
                cached_bytes += line_len
            else:
                # Partial-line miss: read-fill so the whole line is
                # valid, then overlay the new bytes and dirty it.
                leg = self._leg(span, f"fill.{line_id}", line=line_id)
                fills[line_id] = self.env.process(
                    wrap_span(leg, self._fetch_line(line_off, line_len, ctx=leg, tenant=tenant)),
                    name="cache.fill",
                )
                fill_segs[line_id] = seg
                cached_bytes += line_len
        backend_procs = []
        for seg_off, seg_len in _coalesce(backend_segs):
            leg = self._leg(span, "backend", op="write")
            rel = seg_off - offset
            backend_procs.append(self.env.process(
                wrap_span(leg, self.image.write(
                    seg_off, data[rel : rel + seg_len], sequential=False, ctx=leg,
                    tenant=tenant,
                )),
                name="cache.wb-miss",
            ))
        if cached_bytes:
            yield self.env.timeout(self.config.write_cost_ns(cached_bytes))
        for line_id, line_off, line_len, seg_off, seg_len in full_inserts:
            rel_src = seg_off - offset
            resident = self.store.peek(line_id)
            if resident is not None:
                rel_dst = seg_off - line_off
                resident.data[rel_dst : rel_dst + seg_len] = data[rel_src : rel_src + seg_len]
                self.store.note_dirty(resident, self.env.now)
            else:
                yield from self._insert_line(
                    line_id, line_len, bytearray(data[rel_src : rel_src + seg_len]),
                    klass, dirty=True,
                )
            dirtied = True
        if fills:
            results = yield self.env.all_of(list(fills.values()))
            for line_id, proc in fills.items():
                _lid, line_off, line_len, seg_off, seg_len = fill_segs[line_id]
                rel_src = seg_off - offset
                rel_dst = seg_off - line_off
                resident = self.store.peek(line_id)
                if resident is not None:
                    resident.data[rel_dst : rel_dst + seg_len] = data[rel_src : rel_src + seg_len]
                    self.store.note_dirty(resident, self.env.now)
                else:
                    full = bytearray(results[proc])
                    full[rel_dst : rel_dst + seg_len] = data[rel_src : rel_src + seg_len]
                    yield from self._insert_line(line_id, line_len, full, klass, dirty=True)
                dirtied = True
        if backend_procs:
            yield self.env.all_of(backend_procs)
        if dirtied:
            self._kick_cleaner()


def _coalesce(segs: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Merge adjacent (offset, len) extents into maximal runs."""
    out: list[tuple[int, int]] = []
    for seg_off, seg_len in sorted(segs):
        if out and out[-1][0] + out[-1][1] == seg_off:
            out[-1] = (out[-1][0], out[-1][1] + seg_len)
        else:
            out.append((seg_off, seg_len))
    return out
