"""CRUSH map serialization: dump/load in a crushtool-like dict format.

Lets cluster layouts be stored, diffed, and shipped (e.g. to the FPGA's
CRUSH accelerator configuration, which the paper's QDMA customization
carries as "Ceph cluster-level rules defined in the CRUSH map").
The format is plain JSON-compatible dicts; ``loads(dumps(m))`` is an
exact round trip.
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import CrushError
from .buckets import BucketAlg, make_bucket
from .map import CrushMap, Device
from .rules import CrushRule, Step, StepOp
from .types import DeviceClass

FORMAT_VERSION = 1


def dump_map(cmap: CrushMap) -> dict[str, Any]:
    """CrushMap -> plain dict."""
    return {
        "version": FORMAT_VERSION,
        "devices": [
            {
                "id": dev.dev_id,
                "name": dev.name,
                "weight": dev.weight,
                "class": dev.device_class.name.lower(),
                "reweight": dev.reweight,
            }
            for dev in cmap.devices.values()
        ],
        "types": [{"id": tid, "name": name} for tid, name in sorted(cmap.type_names.items())],
        "buckets": [
            {
                "id": bucket.id,
                "name": bucket.name,
                "alg": bucket.alg.name.lower(),
                "type": cmap.bucket_types[bucket.id],
                "items": list(bucket.items),
                "weights": list(bucket.weights),
            }
            for bucket in cmap.buckets.values()
        ],
    }


def dump_rule(rule: CrushRule) -> dict[str, Any]:
    """CrushRule -> plain dict."""
    return {
        "rule_id": rule.rule_id,
        "name": rule.name,
        "device_class": rule.device_class.name.lower() if rule.device_class else None,
        "steps": [
            {"op": step.op.value, "arg": step.arg, "num": step.num, "type": step.type_id}
            for step in rule.steps
        ],
    }


def dumps(cmap: CrushMap, rules: list[CrushRule] = ()) -> str:
    """Map (+ rules) to a JSON string."""
    return json.dumps({"map": dump_map(cmap), "rules": [dump_rule(r) for r in rules]}, indent=2)


def load_map(data: dict[str, Any]) -> CrushMap:
    """Plain dict -> CrushMap (inverse of :func:`dump_map`)."""
    if data.get("version") != FORMAT_VERSION:
        raise CrushError(f"unsupported crush map version {data.get('version')!r}")
    cmap = CrushMap()
    for t in data.get("types", []):
        cmap.register_type(t["id"], t["name"])
    for d in sorted(data["devices"], key=lambda x: x["id"]):
        dev = Device(
            d["id"],
            d["name"],
            d["weight"],
            DeviceClass[d["class"].upper()],
            d.get("reweight", 0x10000),
        )
        if d["id"] != len(cmap.devices):
            raise CrushError(f"non-contiguous device ids at {d['id']}")
        cmap.devices[d["id"]] = dev
    # Rebuild buckets bottom-up: a bucket can only be created once its
    # child buckets exist (weights reference subtree weights).
    pending = {b["id"]: b for b in data["buckets"]}
    while pending:
        progress = False
        for bid, b in list(pending.items()):
            if any(item < 0 and item in pending for item in b["items"]):
                continue
            bucket = make_bucket(
                BucketAlg[b["alg"].upper()], bid, b["items"], b["weights"], b["name"]
            )
            cmap.buckets[bid] = bucket
            cmap.bucket_types[bid] = b["type"]
            cmap._next_bucket_id = min(cmap._next_bucket_id, bid - 1)
            for item in b["items"]:
                cmap._parent[item] = bid
            del pending[bid]
            progress = True
        if not progress:
            raise CrushError(f"cyclic bucket references: {sorted(pending)}")
    return cmap


def load_rule(data: dict[str, Any]) -> CrushRule:
    """Plain dict -> CrushRule."""
    steps = tuple(
        Step(StepOp(s["op"]), arg=s["arg"], num=s["num"], type_id=s["type"])
        for s in data["steps"]
    )
    cls = data.get("device_class")
    return CrushRule(
        data["rule_id"], data["name"], steps,
        DeviceClass[cls.upper()] if cls else None,
    )


def loads(text: str) -> tuple[CrushMap, list[CrushRule]]:
    """JSON string -> (map, rules)."""
    data = json.loads(text)
    return load_map(data["map"]), [load_rule(r) for r in data.get("rules", [])]
