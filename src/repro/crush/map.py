"""The CRUSH map: a weighted hierarchy of buckets over storage devices.

A :class:`CrushMap` owns devices (ids >= 0) and buckets (ids < 0), each
bucket tagged with a hierarchy type (host/rack/root).  Weight changes
propagate up the tree, and devices can be marked out (reweight 0) or
partially reweighted — the inputs the paper's cluster-resize scenarios
(DFX accelerator swap) react to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..errors import CrushError
from .buckets import Bucket, BucketAlg, make_bucket
from .types import WEIGHT_ONE, DeviceClass, weight_fp


@dataclass
class Device:
    """A leaf storage device (OSD) in the CRUSH hierarchy."""

    dev_id: int
    name: str
    weight: int  # 16.16 fixed point
    device_class: DeviceClass = DeviceClass.SSD
    #: Override probability in [0, 0x10000]; 0 means "out".
    reweight: int = WEIGHT_ONE

    @property
    def is_out(self) -> bool:
        """True when the device takes no data."""
        return self.reweight == 0


class CrushMap:
    """Devices + buckets + type table, with weight propagation."""

    def __init__(self):
        self.devices: dict[int, Device] = {}
        self.buckets: dict[int, Bucket] = {}
        self.bucket_types: dict[int, int] = {}  # bucket id -> type id
        self.type_names: dict[int, str] = {0: "osd"}
        self._next_bucket_id = -1
        self._parent: dict[int, int] = {}  # item id -> containing bucket id

    # -- construction ---------------------------------------------------------

    def add_device(self, name: str, weight: float = 1.0, device_class: DeviceClass = DeviceClass.SSD) -> int:
        """Register a new device; returns its id."""
        dev_id = len(self.devices)
        self.devices[dev_id] = Device(dev_id, name, weight_fp(weight), device_class)
        return dev_id

    def add_bucket(
        self,
        alg: BucketAlg,
        type_id: int,
        items: Sequence[int],
        name: str = "",
        weights: Optional[Sequence[int]] = None,
    ) -> int:
        """Create a bucket of ``alg`` at hierarchy level ``type_id``.

        Item weights default to each child's current subtree weight.
        """
        if weights is None:
            weights = [self.weight_of(i) for i in items]
        bucket_id = self._next_bucket_id
        self._next_bucket_id -= 1
        bucket = make_bucket(alg, bucket_id, items, list(weights), name or f"bucket{bucket_id}")
        self.buckets[bucket_id] = bucket
        self.bucket_types[bucket_id] = type_id
        for item in items:
            if item in self._parent:
                raise CrushError(f"item {item} already belongs to bucket {self._parent[item]}")
            self._parent[item] = bucket_id
        return bucket_id

    def register_type(self, type_id: int, name: str) -> None:
        """Name a hierarchy level (host, rack, root, ...)."""
        self.type_names[type_id] = name

    # -- queries ----------------------------------------------------------------

    def weight_of(self, item: int) -> int:
        """Fixed-point weight of a device or bucket subtree."""
        if item >= 0:
            if item not in self.devices:
                raise CrushError(f"unknown device {item}")
            return self.devices[item].weight
        if item not in self.buckets:
            raise CrushError(f"unknown bucket {item}")
        return self.buckets[item].weight

    def type_of(self, item: int) -> int:
        """Hierarchy type id of an item (devices are type 0)."""
        if item >= 0:
            return 0
        return self.bucket_types[item]

    def parent_of(self, item: int) -> Optional[int]:
        """Containing bucket id, or None for a root."""
        return self._parent.get(item)

    def ancestors_of(self, item: int) -> list[int]:
        """Chain of bucket ids from direct parent to root."""
        chain = []
        cur = self._parent.get(item)
        while cur is not None:
            chain.append(cur)
            cur = self._parent.get(cur)
        return chain

    def roots(self) -> list[int]:
        """Bucket ids with no parent."""
        return [bid for bid in self.buckets if bid not in self._parent]

    def devices_under(self, bucket_id: int) -> list[int]:
        """All device ids in the subtree rooted at ``bucket_id``."""
        out: list[int] = []
        stack = [bucket_id]
        while stack:
            node = stack.pop()
            if node >= 0:
                out.append(node)
            else:
                stack.extend(self.buckets[node].items)
        return sorted(out)

    # -- mutation ------------------------------------------------------------------

    def reweight_device(self, dev_id: int, weight: float) -> None:
        """Change a device's CRUSH weight and propagate up the hierarchy."""
        dev = self.devices.get(dev_id)
        if dev is None:
            raise CrushError(f"unknown device {dev_id}")
        dev.weight = weight_fp(weight)
        self._propagate(dev_id, dev.weight)

    def mark_out(self, dev_id: int) -> None:
        """Mark a device out: it stops receiving data (reweight 0)."""
        self.devices[dev_id].reweight = 0

    def mark_in(self, dev_id: int) -> None:
        """Return a device to service at full reweight."""
        self.devices[dev_id].reweight = WEIGHT_ONE

    def set_reweight(self, dev_id: int, fraction: float) -> None:
        """Partial override in [0, 1] (Ceph's ``osd reweight``)."""
        if not 0.0 <= fraction <= 1.0:
            raise CrushError(f"reweight must be in [0, 1], got {fraction}")
        self.devices[dev_id].reweight = int(round(fraction * WEIGHT_ONE))

    def add_device_to_bucket(self, bucket_id: int, dev_id: int) -> None:
        """Insert an existing device into a bucket and fix ancestor weights."""
        if dev_id in self._parent:
            raise CrushError(f"device {dev_id} already placed")
        bucket = self.buckets[bucket_id]
        bucket.add_item(dev_id, self.devices[dev_id].weight)
        self._parent[dev_id] = bucket_id
        self._bubble_weights(bucket_id)

    def remove_item(self, item: int) -> None:
        """Detach a device or bucket from its parent, fixing weights."""
        parent = self._parent.pop(item, None)
        if parent is None:
            raise CrushError(f"item {item} has no parent")
        self.buckets[parent].remove_item(item)
        self._bubble_weights(parent)

    def _propagate(self, item: int, new_weight: int) -> None:
        parent = self._parent.get(item)
        while parent is not None:
            bucket = self.buckets[parent]
            bucket.adjust_item_weight(item, new_weight)
            item = parent
            new_weight = bucket.weight
            parent = self._parent.get(parent)

    def _bubble_weights(self, bucket_id: int) -> None:
        item = bucket_id
        parent = self._parent.get(item)
        while parent is not None:
            bucket = self.buckets[parent]
            bucket.adjust_item_weight(item, self.buckets[item].weight)
            item = parent
            parent = self._parent.get(parent)

    def __repr__(self) -> str:
        return f"<CrushMap {len(self.devices)} devices, {len(self.buckets)} buckets>"


def build_flat_cluster(
    num_devices: int,
    alg: BucketAlg = BucketAlg.STRAW2,
    weights: Optional[Iterable[float]] = None,
    device_class: DeviceClass = DeviceClass.SSD,
) -> tuple[CrushMap, int]:
    """One root bucket containing ``num_devices`` devices.

    Returns (map, root bucket id).
    """
    cmap = CrushMap()
    cmap.register_type(10, "root")
    ws = list(weights) if weights is not None else [1.0] * num_devices
    if len(ws) != num_devices:
        raise CrushError(f"{num_devices} devices but {len(ws)} weights")
    devs = [cmap.add_device(f"osd.{i}", ws[i], device_class) for i in range(num_devices)]
    root = cmap.add_bucket(alg, 10, devs, name="root")
    return cmap, root


def build_two_level_cluster(
    num_hosts: int,
    devices_per_host: int,
    host_alg: BucketAlg = BucketAlg.STRAW2,
    root_alg: BucketAlg = BucketAlg.STRAW2,
    device_weight: float = 1.0,
) -> tuple[CrushMap, int]:
    """root -> hosts -> devices, the topology of the paper's testbed.

    The paper's software testbed is 2 servers x 16 OSDs (32 OSDs total);
    ``build_two_level_cluster(2, 16)`` reproduces it.
    """
    cmap = CrushMap()
    cmap.register_type(1, "host")
    cmap.register_type(10, "root")
    host_ids = []
    for h in range(num_hosts):
        devs = [
            cmap.add_device(f"osd.{h * devices_per_host + d}", device_weight)
            for d in range(devices_per_host)
        ]
        host_ids.append(cmap.add_bucket(host_alg, 1, devs, name=f"host{h}"))
    root = cmap.add_bucket(root_alg, 10, host_ids, name="root")
    return cmap, root
