"""CRUSH's rjenkins1 32-bit integer hash family.

Faithful port of ``crush/hash.c`` from Ceph (Robert Jenkins' 1996 mix
function).  All arithmetic is modulo 2**32; Python ints are masked after
every step.  These hashes drive every pseudo-random decision CRUSH makes,
so determinism and exact 32-bit wraparound semantics matter.
"""

from __future__ import annotations

_MASK = 0xFFFFFFFF

#: Seed used by all rjenkins1 hash variants (from Ceph).
CRUSH_HASH_SEED = 1315423911


def _mix(a: int, b: int, c: int) -> tuple[int, int, int]:
    """One round of Jenkins' 96-bit mix, in uint32 arithmetic."""
    a = (a - b) & _MASK
    a = (a - c) & _MASK
    a ^= c >> 13
    b = (b - c) & _MASK
    b = (b - a) & _MASK
    b = (b ^ (a << 8)) & _MASK
    c = (c - a) & _MASK
    c = (c - b) & _MASK
    c ^= b >> 13
    a = (a - b) & _MASK
    a = (a - c) & _MASK
    a ^= c >> 12
    b = (b - c) & _MASK
    b = (b - a) & _MASK
    b = (b ^ (a << 16)) & _MASK
    c = (c - a) & _MASK
    c = (c - b) & _MASK
    c ^= b >> 5
    a = (a - b) & _MASK
    a = (a - c) & _MASK
    a ^= c >> 3
    b = (b - c) & _MASK
    b = (b - a) & _MASK
    b = (b ^ (a << 10)) & _MASK
    c = (c - a) & _MASK
    c = (c - b) & _MASK
    c ^= b >> 15
    return a, b, c


def hash32(a: int) -> int:
    """rjenkins1 hash of one 32-bit value."""
    a &= _MASK
    h = (CRUSH_HASH_SEED ^ a) & _MASK
    b = a
    x, y = 231232, 1232
    b, x, h = _mix(b, x, h)
    y, a, h = _mix(y, a, h)
    return h


def hash32_2(a: int, b: int) -> int:
    """rjenkins1 hash of two 32-bit values."""
    a &= _MASK
    b &= _MASK
    h = (CRUSH_HASH_SEED ^ a ^ b) & _MASK
    x, y = 231232, 1232
    a, b, h = _mix(a, b, h)
    x, a, h = _mix(x, a, h)
    b, y, h = _mix(b, y, h)
    return h


def hash32_3(a: int, b: int, c: int) -> int:
    """rjenkins1 hash of three 32-bit values."""
    a &= _MASK
    b &= _MASK
    c &= _MASK
    h = (CRUSH_HASH_SEED ^ a ^ b ^ c) & _MASK
    x, y = 231232, 1232
    a, b, h = _mix(a, b, h)
    c, x, h = _mix(c, x, h)
    y, a, h = _mix(y, a, h)
    b, x, h = _mix(b, x, h)
    y, c, h = _mix(y, c, h)
    return h


def hash32_4(a: int, b: int, c: int, d: int) -> int:
    """rjenkins1 hash of four 32-bit values."""
    a &= _MASK
    b &= _MASK
    c &= _MASK
    d &= _MASK
    h = (CRUSH_HASH_SEED ^ a ^ b ^ c ^ d) & _MASK
    x, y = 231232, 1232
    a, b, h = _mix(a, b, h)
    c, d, h = _mix(c, d, h)
    x, a, h = _mix(x, a, h)
    y, b, h = _mix(y, b, h)
    c, x, h = _mix(c, x, h)
    return h


def str_hash(name: str) -> int:
    """Hash an object name to 32 bits (rjenkins over bytes, like Ceph).

    Processes the UTF-8 bytes in 12-byte blocks through the same mix
    function — a compact port of ``ceph_str_hash_rjenkins``.
    """
    data = name.encode("utf-8")
    length = len(data)
    a = 0x9E3779B9
    b = a
    c = CRUSH_HASH_SEED
    pos = 0
    remaining = length
    while remaining >= 12:
        a = (a + int.from_bytes(data[pos : pos + 4], "little")) & _MASK
        b = (b + int.from_bytes(data[pos + 4 : pos + 8], "little")) & _MASK
        c = (c + int.from_bytes(data[pos + 8 : pos + 12], "little")) & _MASK
        a, b, c = _mix(a, b, c)
        pos += 12
        remaining -= 12
    c = (c + length) & _MASK
    tail = data[pos:] + b"\x00" * (11 - remaining)
    if remaining > 0:
        a = (a + int.from_bytes(tail[0:4], "little")) & _MASK
        b = (b + int.from_bytes(tail[4:8], "little")) & _MASK
        # The last block skips the low byte of c (length lives there).
        c = (c + (int.from_bytes(tail[8:11], "little") << 8)) & _MASK
    a, b, c = _mix(a, b, c)
    return c
