"""CRUSH placement quality analysis (crushtool-style).

Answers the operational questions behind the paper's cluster-resize
scenarios: how evenly does a rule spread data, and how much data moves
when the map changes?  straw2's optimal-movement property and the list
bucket's expansion behaviour become measurable numbers here.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import CrushError
from .map import CrushMap
from .rules import CrushRule, Mapper
from .types import CRUSH_ITEM_NONE


@dataclass
class DistributionReport:
    """How evenly placements spread over devices."""

    counts: dict[int, int]
    expected: dict[int, float]
    samples: int
    replicas: int

    @property
    def max_deviation(self) -> float:
        """Largest relative deviation from the weight-proportional share."""
        worst = 0.0
        for dev, expect in self.expected.items():
            if expect <= 0:
                continue
            worst = max(worst, abs(self.counts.get(dev, 0) - expect) / expect)
        return worst

    @property
    def coefficient_of_variation(self) -> float:
        """Stddev/mean of per-device load normalized by weight."""
        ratios = [
            self.counts.get(dev, 0) / expect
            for dev, expect in self.expected.items()
            if expect > 0
        ]
        if not ratios:
            return 0.0
        return float(np.std(ratios) / np.mean(ratios))


def analyze_distribution(
    cmap: CrushMap, rule: CrushRule, replicas: int = 3, samples: int = 2000
) -> DistributionReport:
    """Sample placements and compare against weight-proportional shares."""
    if samples < 1:
        raise CrushError(f"samples must be >= 1, got {samples}")
    mapper = Mapper(cmap)
    counts: Counter = Counter()
    placed = 0
    for x in range(samples):
        for osd in mapper.do_rule(rule, x, replicas):
            if osd != CRUSH_ITEM_NONE:
                counts[osd] += 1
                placed += 1
    in_devices = {d: dev for d, dev in cmap.devices.items() if not dev.is_out}
    total_weight = sum(dev.weight for dev in in_devices.values())
    expected = {
        d: placed * dev.weight / total_weight for d, dev in in_devices.items()
    }
    return DistributionReport(dict(counts), expected, samples, replicas)


@dataclass
class MovementReport:
    """Data movement caused by a map change."""

    samples: int
    replicas: int
    moved_slots: int
    total_slots: int

    @property
    def moved_fraction(self) -> float:
        """Fraction of replica slots that changed device."""
        return self.moved_slots / self.total_slots if self.total_slots else 0.0


def analyze_movement(
    cmap: CrushMap,
    rule: CrushRule,
    mutate: Callable[[CrushMap], None],
    replicas: int = 3,
    samples: int = 2000,
) -> MovementReport:
    """Measure how many placements move after ``mutate`` edits the map.

    The theoretical optimum for removing weight fraction f is f (only the
    data on the removed/changed device moves); straw2 approaches it,
    which this report quantifies.
    """
    mapper = Mapper(cmap)
    before = [mapper.do_rule(rule, x, replicas) for x in range(samples)]
    mutate(cmap)
    after = [mapper.do_rule(rule, x, replicas) for x in range(samples)]
    moved = 0
    total = 0
    for b, a in zip(before, after):
        total += max(len(b), len(a))
        moved += sum(1 for dev in b if dev not in a)
        moved += abs(len(a) - len(b))
    return MovementReport(samples, replicas, moved, total)


def optimal_movement_fraction(cmap: CrushMap, removed_weight: int) -> float:
    """The lower bound: weight removed / total weight."""
    total = sum(dev.weight for dev in cmap.devices.values() if not dev.is_out)
    if total <= 0:
        raise CrushError("cluster has no in-weight")
    return removed_weight / (total + removed_weight)
