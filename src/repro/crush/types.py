"""Shared CRUSH constants and small value types."""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

#: Weights are 16.16 fixed point, like Ceph's crush map.
WEIGHT_ONE = 0x10000

#: Sentinel returned when a choose step finds no item.
CRUSH_ITEM_NONE = 0x7FFFFFFF


def weight_fp(weight: float) -> int:
    """Convert a float weight (1.0 == one unit, e.g. 1 TiB) to 16.16 fixed point."""
    if weight < 0:
        raise ValueError(f"CRUSH weights must be >= 0, got {weight}")
    return int(round(weight * WEIGHT_ONE))


def weight_float(fp: int) -> float:
    """Convert a 16.16 fixed-point weight back to float."""
    return fp / WEIGHT_ONE


class BucketAlg(IntEnum):
    """Bucket selection algorithms (numbering follows Ceph)."""

    UNIFORM = 1
    LIST = 2
    TREE = 3
    STRAW = 4
    STRAW2 = 5


class DeviceClass(IntEnum):
    """Storage media class of a device (used for rule filtering)."""

    HDD = 0
    SSD = 1
    NVME = 2
    SMR = 3


@dataclass(frozen=True)
class BucketType:
    """A level of the CRUSH hierarchy (e.g. 1=host, 2=rack, 10=root)."""

    type_id: int
    name: str


#: Conventional hierarchy levels used by the cluster builders.
TYPE_DEVICE = BucketType(0, "osd")
TYPE_HOST = BucketType(1, "host")
TYPE_RACK = BucketType(2, "rack")
TYPE_ROOT = BucketType(10, "root")
