"""CRUSH: controlled, scalable, decentralized placement of replicated data.

Full implementation of the placement algorithm DeLiBA-K offloads to FPGA:
the rjenkins1 hash family, all five bucket types (uniform, list, tree,
straw, straw2 with the fixed-point log table), weighted hierarchies,
rules (firstn/indep, chooseleaf), and the object->PG->OSD pipeline.
"""

from .analyze import (
    DistributionReport,
    MovementReport,
    analyze_distribution,
    analyze_movement,
    optimal_movement_fraction,
)
from .buckets import (
    Bucket,
    ListBucket,
    Straw2Bucket,
    StrawBucket,
    TreeBucket,
    UniformBucket,
    make_bucket,
)
from .hashing import hash32, hash32_2, hash32_3, hash32_4, str_hash
from .ln_table import crush_ln, ln_of_uniform_u16
from .map import CrushMap, Device, build_flat_cluster, build_two_level_cluster
from .placement import PlacementEngine, object_to_pg, pg_seed, stable_mod
from .serialize import dump_map, dump_rule, dumps, load_map, load_rule, loads
from .rules import CrushRule, Mapper, Step, StepOp, erasure_rule, replicated_rule
from .types import CRUSH_ITEM_NONE, WEIGHT_ONE, BucketAlg, DeviceClass, weight_float, weight_fp

__all__ = [
    "Bucket",
    "DistributionReport",
    "MovementReport",
    "analyze_distribution",
    "analyze_movement",
    "dump_map",
    "dump_rule",
    "dumps",
    "load_map",
    "load_rule",
    "loads",
    "optimal_movement_fraction",
    "BucketAlg",
    "CRUSH_ITEM_NONE",
    "CrushMap",
    "CrushRule",
    "Device",
    "DeviceClass",
    "ListBucket",
    "Mapper",
    "PlacementEngine",
    "Step",
    "StepOp",
    "Straw2Bucket",
    "StrawBucket",
    "TreeBucket",
    "UniformBucket",
    "WEIGHT_ONE",
    "build_flat_cluster",
    "build_two_level_cluster",
    "crush_ln",
    "erasure_rule",
    "hash32",
    "hash32_2",
    "hash32_3",
    "hash32_4",
    "ln_of_uniform_u16",
    "make_bucket",
    "object_to_pg",
    "pg_seed",
    "replicated_rule",
    "stable_mod",
    "str_hash",
    "weight_float",
    "weight_fp",
]
