"""CRUSH rules and the placement mapping engine.

A rule is a small program over the hierarchy: ``take`` a root, ``choose``
(or ``chooseleaf``) N items of a given type, ``emit``.  The engine here
ports the behaviour of Ceph's ``crush_do_rule`` in two modes:

* **firstn** — replica placement: ranks shift down on failure;
* **indep** — erasure-coded placement: ranks are positional and failed
  slots stay holes so shard identity is preserved.

Collision, out-device rejection (probabilistic reweight test), and
bounded retry (``choose_total_tries``) follow the published algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..errors import CrushError
from .hashing import hash32_2
from .map import CrushMap
from .types import CRUSH_ITEM_NONE, WEIGHT_ONE, DeviceClass

#: Default retry budget, matching Ceph's choose_total_tries tunable.
CHOOSE_TOTAL_TRIES = 50
#: Maximum descent depth (guards against malformed cyclic maps).
MAX_DEPTH = 32


class StepOp(Enum):
    """Rule step opcodes."""

    TAKE = "take"
    CHOOSE_FIRSTN = "choose_firstn"
    CHOOSE_INDEP = "choose_indep"
    CHOOSELEAF_FIRSTN = "chooseleaf_firstn"
    CHOOSELEAF_INDEP = "chooseleaf_indep"
    EMIT = "emit"


@dataclass(frozen=True)
class Step:
    """One rule instruction.

    ``num`` follows CRUSH semantics: 0 means "as many as requested",
    a negative value means "requested minus |num|".
    """

    op: StepOp
    arg: int = 0  # bucket id for TAKE
    num: int = 0  # replica count for CHOOSE*
    type_id: int = 0  # hierarchy type for CHOOSE*


@dataclass(frozen=True)
class CrushRule:
    """A named sequence of steps.

    ``device_class`` restricts placement to devices of one media class
    (Ceph's class-aware rules) — how a pool targets SSDs while SMR/HDD
    devices in the same hierarchy serve archival pools.
    """

    rule_id: int
    name: str
    steps: tuple[Step, ...]
    device_class: Optional[DeviceClass] = None

    def __post_init__(self):
        if not self.steps or self.steps[0].op != StepOp.TAKE:
            raise CrushError(f"rule {self.name!r} must start with a take step")
        if self.steps[-1].op != StepOp.EMIT:
            raise CrushError(f"rule {self.name!r} must end with an emit step")


def replicated_rule(
    root_id: int,
    fault_domain_type: int = 0,
    rule_id: int = 0,
    name: str = "replicated",
    device_class: Optional[DeviceClass] = None,
) -> CrushRule:
    """Standard replica rule: take root, chooseleaf N fault domains, emit.

    With ``fault_domain_type=0`` devices are chosen directly.
    """
    if fault_domain_type == 0:
        choose = Step(StepOp.CHOOSE_FIRSTN, num=0, type_id=0)
    else:
        choose = Step(StepOp.CHOOSELEAF_FIRSTN, num=0, type_id=fault_domain_type)
    return CrushRule(
        rule_id, name, (Step(StepOp.TAKE, arg=root_id), choose, Step(StepOp.EMIT)), device_class
    )


def erasure_rule(
    root_id: int,
    fault_domain_type: int = 0,
    rule_id: int = 1,
    name: str = "erasure",
    device_class: Optional[DeviceClass] = None,
) -> CrushRule:
    """EC rule: indep placement so shard ranks are stable."""
    if fault_domain_type == 0:
        choose = Step(StepOp.CHOOSE_INDEP, num=0, type_id=0)
    else:
        choose = Step(StepOp.CHOOSELEAF_INDEP, num=0, type_id=fault_domain_type)
    return CrushRule(
        rule_id, name, (Step(StepOp.TAKE, arg=root_id), choose, Step(StepOp.EMIT)), device_class
    )


class Mapper:
    """Executes rules against a :class:`CrushMap`."""

    def __init__(self, cmap: CrushMap, total_tries: int = CHOOSE_TOTAL_TRIES):
        self.map = cmap
        self.total_tries = total_tries
        #: abstract op count of the last do_rule call (profiling hook)
        self.last_ops = 0
        self._required_class: Optional[DeviceClass] = None

    # -- device acceptance -------------------------------------------------------

    def _device_ok(self, dev_id: int, x: int) -> bool:
        """Class filter plus reweight test (probability reweight/0x10000)."""
        dev = self.map.devices[dev_id]
        if self._required_class is not None and dev.device_class != self._required_class:
            return False
        if dev.reweight >= WEIGHT_ONE:
            return True
        if dev.reweight == 0:
            return False
        return (hash32_2(x, dev_id) & 0xFFFF) < dev.reweight

    # -- descent -----------------------------------------------------------------

    def _descend(self, start: int, x: int, r: int, want_type: int) -> Optional[int]:
        """Walk from ``start`` down to an item of ``want_type`` using rank r."""
        node = start
        for _ in range(MAX_DEPTH):
            if self.map.type_of(node) == want_type:
                return node
            if node >= 0:
                return None  # reached a device above the wanted type: dead end
            bucket = self.map.buckets[node]
            if bucket.size == 0:
                return None
            item = bucket.choose(x, r)
            self.last_ops += bucket.last_ops
            node = item
        raise CrushError(f"descent from {start} exceeded max depth {MAX_DEPTH}")

    def _leaf_under(self, node: int, x: int, rank: int) -> Optional[int]:
        """Pick one acceptable device under ``node`` (chooseleaf recursion)."""
        for ftotal in range(self.total_tries):
            item = self._descend(node, x, rank + ftotal * 7919, want_type=0)
            if item is None:
                continue
            if self._device_ok(item, x):
                return item
        return None

    # -- choose ---------------------------------------------------------------------

    def _choose_firstn(
        self, start: int, x: int, numrep: int, want_type: int, recurse_to_leaf: bool, out: list[int]
    ) -> list[int]:
        chosen: list[int] = []
        leaves: list[int] = []
        for rep in range(numrep):
            found = None
            leaf_found = None
            for ftotal in range(self.total_tries):
                r = rep + ftotal
                item = self._descend(start, x, r, want_type)
                if item is None or item in chosen:
                    continue
                if recurse_to_leaf:
                    leaf = self._leaf_under(item, x, rep)
                    if leaf is None or leaf in leaves or leaf in out:
                        continue
                    found, leaf_found = item, leaf
                    break
                if want_type == 0:
                    if not self._device_ok(item, x) or item in out:
                        continue
                found = item
                break
            if found is not None:
                chosen.append(found)
                if recurse_to_leaf:
                    leaves.append(leaf_found)
        return leaves if recurse_to_leaf else chosen

    def _choose_indep(
        self, start: int, x: int, numrep: int, want_type: int, recurse_to_leaf: bool, out: list[int]
    ) -> list[int]:
        # Breadth-first rounds (as in crush_choose_indep): every unfilled
        # slot tries once per round with r = rep + round*numrep.  Round 0
        # draws are therefore identical whether or not other slots failed,
        # which is what keeps EC shard ranks stable across device failures.
        result: list[Optional[int]] = [None] * numrep
        taken: set[int] = set(o for o in out if o != CRUSH_ITEM_NONE)
        for ftotal in range(self.total_tries):
            unfilled = [rep for rep in range(numrep) if result[rep] is None]
            if not unfilled:
                break
            for rep in unfilled:
                r = rep + ftotal * numrep
                item = self._descend(start, x, r, want_type)
                if item is None or item in taken or item in result:
                    continue
                if recurse_to_leaf:
                    leaf = self._leaf_under(item, x, rep)
                    if leaf is None or leaf in taken or leaf in result:
                        continue
                    result[rep] = leaf
                    taken.add(leaf)
                    continue
                if want_type == 0 and not self._device_ok(item, x):
                    continue
                result[rep] = item
                taken.add(item)
        return [CRUSH_ITEM_NONE if v is None else v for v in result]

    # -- rule execution ----------------------------------------------------------------

    def do_rule(self, rule: CrushRule, x: int, num_rep: int) -> list[int]:
        """Map input ``x`` to ``num_rep`` items under ``rule``.

        firstn rules return up to ``num_rep`` devices (possibly fewer);
        indep rules return exactly ``num_rep`` slots with
        :data:`CRUSH_ITEM_NONE` holes where placement failed.
        """
        if num_rep < 1:
            raise CrushError(f"num_rep must be >= 1, got {num_rep}")
        self.last_ops = 0
        self._required_class = rule.device_class
        working: list[int] = []
        out: list[int] = []
        for step in rule.steps:
            if step.op == StepOp.TAKE:
                if step.arg not in self.map.buckets and step.arg not in self.map.devices:
                    raise CrushError(f"take of unknown item {step.arg}")
                working = [step.arg]
            elif step.op == StepOp.EMIT:
                out.extend(working)
                working = []
            else:
                numrep = step.num if step.num > 0 else num_rep + step.num
                numrep = min(numrep, num_rep) if step.num == 0 else numrep
                firstn = step.op in (StepOp.CHOOSE_FIRSTN, StepOp.CHOOSELEAF_FIRSTN)
                to_leaf = step.op in (StepOp.CHOOSELEAF_FIRSTN, StepOp.CHOOSELEAF_INDEP)
                next_working: list[int] = []
                for node in working:
                    if firstn:
                        next_working.extend(
                            self._choose_firstn(node, x, numrep, step.type_id, to_leaf, out)
                        )
                    else:
                        next_working.extend(
                            self._choose_indep(node, x, numrep, step.type_id, to_leaf, out)
                        )
                working = next_working
        return out
