"""Object -> placement-group -> OSD mapping (the client-side hot path).

This is the computation the DeLiBA-K FPGA executes in the datapath: hash
the object name to a placement group (PG) with Ceph's *stable mod*, then
run the pool's CRUSH rule on the PG seed to obtain the acting set of
OSDs.  :class:`PlacementEngine` caches PG mappings per map epoch, since a
PG's acting set only changes when the map changes.
"""

from __future__ import annotations

from typing import Optional

from ..errors import CrushError
from .hashing import hash32_2, str_hash
from .map import CrushMap
from .rules import CrushRule, Mapper
from .types import CRUSH_ITEM_NONE


def stable_mod(x: int, b: int, bmask: int) -> int:
    """Ceph's ``ceph_stable_mod``: a modulo that is stable as ``b`` grows.

    When ``b`` is not a power of two, values map so that growing the PG
    count splits each PG in two instead of reshuffling everything.
    """
    if (x & bmask) < b:
        return x & bmask
    return x & (bmask >> 1)


def pg_mask(pg_num: int) -> int:
    """Smallest all-ones mask covering ``pg_num`` (Ceph's pgp_num_mask)."""
    if pg_num < 1:
        raise CrushError(f"pg_num must be >= 1, got {pg_num}")
    return (1 << (pg_num - 1).bit_length()) - 1 if pg_num > 1 else 0


def object_to_pg(object_name: str, pg_num: int) -> int:
    """Placement group index for an object name."""
    return stable_mod(str_hash(object_name), pg_num, pg_mask(pg_num))


def pg_seed(pool_id: int, pg_id: int) -> int:
    """The CRUSH input x for a placement group (pool-salted)."""
    return hash32_2(pg_id, pool_id)


class PlacementEngine:
    """Caches rule executions per (pool, pg, size) for one map epoch."""

    def __init__(self, cmap: CrushMap, total_tries: Optional[int] = None):
        self.map = cmap
        self.mapper = Mapper(cmap) if total_tries is None else Mapper(cmap, total_tries)
        self.epoch = 1
        self._cache: dict[tuple[int, int, int, int], list[int]] = {}
        #: True when the last pg_to_osds call ran CRUSH (cache miss).
        self.last_was_miss = False
        self.hits = 0
        self.misses = 0

    def invalidate(self) -> None:
        """Bump the epoch after any map mutation (device out/in/reweight)."""
        self.epoch += 1
        self._cache.clear()

    def pg_to_osds(self, pool_id: int, pg_id: int, rule: CrushRule, size: int) -> list[int]:
        """Acting set for a PG: up to ``size`` OSD ids (holes for indep rules)."""
        key = (pool_id, pg_id, rule.rule_id, size)
        hit = self._cache.get(key)
        if hit is not None:
            self.last_was_miss = False
            self.hits += 1
            return hit
        osds = self.mapper.do_rule(rule, pg_seed(pool_id, pg_id), size)
        self._cache[key] = osds
        self.last_was_miss = True
        self.misses += 1
        return osds

    def object_to_osds(
        self, pool_id: int, object_name: str, pg_num: int, rule: CrushRule, size: int
    ) -> tuple[int, list[int]]:
        """Full path: object name -> (pg_id, acting set)."""
        pg_id = object_to_pg(object_name, pg_num)
        return pg_id, self.pg_to_osds(pool_id, pg_id, rule, size)

    @staticmethod
    def primary_of(acting: list[int]) -> Optional[int]:
        """First non-hole OSD in the acting set, or None when empty."""
        for osd in acting:
            if osd != CRUSH_ITEM_NONE:
                return osd
        return None
