"""The five CRUSH bucket types.

Each bucket holds a set of items (device ids >= 0 or child bucket ids < 0)
with 16.16 fixed-point weights and implements ``choose(x, r)``: a
deterministic pseudo-random selection of one item for input ``x`` and
replica rank ``r``.  The algorithms are ports of Ceph's ``crush/mapper.c``
/ ``crush/builder.c``:

* **uniform** — O(1), equal weights only (hash-permuted index);
* **list** — O(n) head-biased walk, optimal for incremental expansion;
* **tree** — O(log n) weighted binary tree descent;
* **straw** — O(n) weighted straw race with builder-computed straw lengths;
* **straw2** — O(n) exponential race via the fixed-point log table,
  with mathematically optimal data movement on weight change.

These are exactly the kernels DeLiBA-K offloads to RTL accelerators
(paper Table I), so each ``choose`` also reports an abstract *work*
metric (`ops`) used by the software-profiling cost model.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import CrushError
from .hashing import hash32_3, hash32_4
from .ln_table import ln_of_uniform_u16
from .types import BucketAlg, WEIGHT_ONE


class Bucket:
    """Base class: an internal node of the CRUSH hierarchy."""

    alg: BucketAlg

    def __init__(self, bucket_id: int, items: Sequence[int], weights: Sequence[int], name: str = ""):
        if bucket_id >= 0:
            raise CrushError(f"bucket ids must be negative, got {bucket_id}")
        if len(items) != len(weights):
            raise CrushError(f"{len(items)} items but {len(weights)} weights")
        if len(set(items)) != len(items):
            raise CrushError(f"duplicate items in bucket {bucket_id}: {items}")
        if any(w < 0 for w in weights):
            raise CrushError(f"negative weight in bucket {bucket_id}")
        self.id = bucket_id
        self.name = name or f"bucket{bucket_id}"
        self.items = list(items)
        self.weights = list(weights)
        #: abstract operation count of the last choose() call (for profiling)
        self.last_ops = 0

    @property
    def size(self) -> int:
        """Number of items in the bucket."""
        return len(self.items)

    @property
    def weight(self) -> int:
        """Total fixed-point weight of the bucket."""
        return sum(self.weights)

    def choose(self, x: int, r: int) -> int:
        """Select the item for input ``x`` and replica rank ``r``."""
        raise NotImplementedError

    def item_weight(self, item: int) -> int:
        """Fixed-point weight of ``item`` within this bucket."""
        return self.weights[self.items.index(item)]

    def adjust_item_weight(self, item: int, weight: int) -> int:
        """Set ``item``'s weight; returns the delta for parent propagation."""
        idx = self.items.index(item)
        delta = weight - self.weights[idx]
        self.weights[idx] = weight
        self._rebuild()
        return delta

    def add_item(self, item: int, weight: int) -> None:
        """Append a new item."""
        if item in self.items:
            raise CrushError(f"item {item} already in bucket {self.id}")
        self.items.append(item)
        self.weights.append(weight)
        self._rebuild()

    def remove_item(self, item: int) -> int:
        """Remove ``item``; returns the weight that disappeared."""
        idx = self.items.index(item)
        weight = self.weights[idx]
        del self.items[idx]
        del self.weights[idx]
        self._rebuild()
        return weight

    def _rebuild(self) -> None:
        """Recompute derived structures after a membership/weight change."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} id={self.id} size={self.size}>"


class UniformBucket(Bucket):
    """Equal-weight bucket with O(1) selection.

    All items must share one weight (uniform hardware).  Selection hashes
    (x, r, bucket id) to an index — the constant-time path the paper's
    Uniform RTL accelerator implements.
    """

    alg = BucketAlg.UNIFORM

    def __init__(self, bucket_id: int, items: Sequence[int], item_weight: int, name: str = ""):
        super().__init__(bucket_id, items, [item_weight] * len(items), name)
        self.per_item_weight = item_weight

    def choose(self, x: int, r: int) -> int:
        if not self.items:
            raise CrushError(f"choose() on empty bucket {self.id}")
        self.last_ops = 1
        idx = hash32_3(x, r, self.id) % len(self.items)
        return self.items[idx]

    def add_item(self, item: int, weight: int) -> None:
        if weight != self.per_item_weight:
            raise CrushError(
                f"uniform bucket {self.id} requires weight {self.per_item_weight}, got {weight}"
            )
        super().add_item(item, weight)


class ListBucket(Bucket):
    """Head-biased linked-list bucket (optimal for cluster expansion).

    Walks items newest-first; at each item draws a 16-bit hash scaled by
    the cumulative weight and stops if the draw falls within the item's
    weight — newly added devices capture exactly their fair share while
    older placements stay put.
    """

    alg = BucketAlg.LIST

    def __init__(self, bucket_id: int, items: Sequence[int], weights: Sequence[int], name: str = ""):
        super().__init__(bucket_id, items, weights, name)
        self._rebuild()

    def _rebuild(self) -> None:
        # sum_weights[i] = total weight of items[0..i] (head of list = last added).
        self._sums = []
        total = 0
        for w in self.weights:
            total += w
            self._sums.append(total)

    def choose(self, x: int, r: int) -> int:
        if not self.items:
            raise CrushError(f"choose() on empty bucket {self.id}")
        ops = 0
        for i in range(len(self.items) - 1, -1, -1):
            ops += 1
            if self.weights[i] == 0:
                continue
            w = hash32_4(x, self.items[i], r, self.id) & 0xFFFF
            w = (w * self._sums[i]) >> 16
            if w < self.weights[i]:
                self.last_ops = ops
                return self.items[i]
        self.last_ops = ops
        return self.items[0]


class TreeBucket(Bucket):
    """Weighted binary-tree bucket with O(log n) selection.

    Uses Ceph's implicit node numbering: leaves live at odd indices
    1,3,5,...; an internal node's height is the number of trailing zero
    bits, and children sit at ``n +/- 2**(h-1)``.
    """

    alg = BucketAlg.TREE

    def __init__(self, bucket_id: int, items: Sequence[int], weights: Sequence[int], name: str = ""):
        super().__init__(bucket_id, items, weights, name)
        self._rebuild()

    @staticmethod
    def _height(n: int) -> int:
        h = 0
        while n and not (n & 1):
            h += 1
            n >>= 1
        return h

    @staticmethod
    def _left(n: int, h: int) -> int:
        return n - (1 << (h - 1))

    @staticmethod
    def _right(n: int, h: int) -> int:
        return n + (1 << (h - 1))

    def _rebuild(self) -> None:
        n = len(self.items)
        if n == 0:
            self._node_weights = [0]
            self._depth = 0
            return
        # depth: smallest tree whose 2**(depth-1) leaves fit n items.
        depth = 1 if n == 1 else (n - 1).bit_length() + 1
        num_nodes = 1 << depth
        self._depth = depth
        self._node_weights = [0] * num_nodes
        # Leaves at odd indices 1, 3, 5, ...; padding leaves stay zero.
        for i, w in enumerate(self.weights):
            self._node_weights[2 * i + 1] = w
        # Internal node at height h sums its two children at height h-1.
        for h in range(1, depth):
            step = 1 << h
            half = step >> 1
            for node in range(step, num_nodes, 2 * step):
                self._node_weights[node] = (
                    self._node_weights[node - half] + self._node_weights[node + half]
                )

    def choose(self, x: int, r: int) -> int:
        if not self.items:
            raise CrushError(f"choose() on empty bucket {self.id}")
        if len(self.items) == 1:
            self.last_ops = 1
            return self.items[0]
        num_nodes = len(self._node_weights)
        n = num_nodes >> 1  # root
        ops = 0
        while self._height(n) != 0:
            ops += 1
            h = self._height(n)
            w = self._node_weights[n]
            if w == 0:
                raise CrushError(f"tree bucket {self.id}: zero-weight subtree at node {n}")
            t = (hash32_4(x, n, r, self.id) * w) >> 32
            left = self._left(n, h)
            if t < self._node_weights[left]:
                n = left
            else:
                n = self._right(n, h)
        self.last_ops = max(1, ops)
        leaf_index = n >> 1
        if leaf_index >= len(self.items):
            # Padding leaf with zero weight can't be reached when weights
            # propagate correctly, but guard anyway.
            raise CrushError(f"tree bucket {self.id}: descended to padding leaf {n}")
        return self.items[leaf_index]


class StrawBucket(Bucket):
    """Original straw bucket: every item draws a scaled straw; longest wins.

    Straw lengths are computed with Ceph's builder algorithm
    (``crush_calc_straw``), which sorts items by weight and solves for the
    scaling factors that make selection probability proportional to weight
    *in expectation for the original weight distribution* (straw's known
    flaw — changing one weight can reshuffle unrelated items — is what
    straw2 fixed, and is visible in our property tests).
    """

    alg = BucketAlg.STRAW

    def __init__(self, bucket_id: int, items: Sequence[int], weights: Sequence[int], name: str = ""):
        super().__init__(bucket_id, items, weights, name)
        self._rebuild()

    def _rebuild(self) -> None:
        self._straws = self._calc_straws(self.weights)

    @staticmethod
    def _calc_straws(weights: Sequence[int]) -> list[int]:
        """Straw lengths for the given weights (corrected-builder algorithm).

        Processes distinct weight classes in ascending order.  When moving
        from class ``w_cur`` to the next class, the accumulated "consumed"
        weight below (`wbelow`) and the weight span to the next class
        (`wnext`) give the probability that the winner lies below; the
        straw scale for the remaining items grows by
        ``(1/pbelow) ** (1/numleft)`` — the closed form from the original
        CRUSH builder (with Ceph's straw_calc_version=1 tie/zero fixes).
        """
        size = len(weights)
        straws = [0] * size
        if size == 0:
            return straws
        nonzero = sum(1 for w in weights if w > 0)
        if nonzero == 0:
            return straws
        order = sorted(range(size), key=lambda i: weights[i])
        straw = 1.0
        wbelow = 0.0
        lastw = 0.0
        i = 0
        while i < size:
            w_cur = weights[order[i]]
            if w_cur == 0:
                straws[order[i]] = 0
                i += 1
                continue
            straws[order[i]] = int(straw * 0x10000)
            i += 1
            if i == size:
                break
            w_next = weights[order[i]]
            if w_next == w_cur:
                continue
            # Items with weight >= current class (all remaining plus the
            # class just finished, counted among nonzero items only).
            n_ge_cur = sum(1 for w in weights if w >= w_cur)
            wbelow += (w_cur - lastw) * n_ge_cur
            n_ge_next = size - i
            wnext = n_ge_next * (w_next - w_cur)
            pbelow = wbelow / (wbelow + wnext)
            straw *= (1.0 / pbelow) ** (1.0 / n_ge_next)
            lastw = w_cur
        return straws

    def choose(self, x: int, r: int) -> int:
        if not self.items:
            raise CrushError(f"choose() on empty bucket {self.id}")
        high = 0
        high_draw = -1
        for i, item in enumerate(self.items):
            draw = (hash32_3(x, item, r) & 0xFFFF) * self._straws[i]
            if draw > high_draw:
                high = i
                high_draw = draw
        self.last_ops = len(self.items)
        return self.items[high]


class Straw2Bucket(Bucket):
    """straw2: weighted exponential race using the fixed-point log table.

    Draw ``u ~ U[0, 2^16)`` per item, compute ``ln(u) / weight`` in fixed
    point, pick the maximum.  Selection probability is exactly
    proportional to weight for *any* weight vector, and adjusting one
    item's weight only moves data to/from that item.
    """

    alg = BucketAlg.STRAW2

    _S64_MIN = -(1 << 63)

    def choose(self, x: int, r: int) -> int:
        if not self.items:
            raise CrushError(f"choose() on empty bucket {self.id}")
        high = 0
        high_draw = None
        for i, item in enumerate(self.items):
            w = self.weights[i]
            if w:
                u = hash32_3(x, item, r) & 0xFFFF
                ln = ln_of_uniform_u16(u)
                # C's div64_s64 truncates toward zero; ln <= 0 so match that.
                draw = -((-ln) // w) if ln < 0 else ln // w
            else:
                draw = self._S64_MIN
            if high_draw is None or draw > high_draw:
                high = i
                high_draw = draw
        self.last_ops = len(self.items)
        return self.items[high]


def make_bucket(
    alg: BucketAlg,
    bucket_id: int,
    items: Sequence[int],
    weights: Sequence[int],
    name: str = "",
    uniform_item_weight: Optional[int] = None,
) -> Bucket:
    """Factory: build a bucket of the requested algorithm."""
    if alg == BucketAlg.UNIFORM:
        if uniform_item_weight is None:
            uniq = set(weights)
            if len(uniq) > 1:
                raise CrushError(f"uniform bucket needs equal weights, got {sorted(uniq)}")
            uniform_item_weight = weights[0] if weights else WEIGHT_ONE
        return UniformBucket(bucket_id, items, uniform_item_weight, name)
    if alg == BucketAlg.LIST:
        return ListBucket(bucket_id, items, weights, name)
    if alg == BucketAlg.TREE:
        return TreeBucket(bucket_id, items, weights, name)
    if alg == BucketAlg.STRAW:
        return StrawBucket(bucket_id, items, weights, name)
    if alg == BucketAlg.STRAW2:
        return Straw2Bucket(bucket_id, items, weights, name)
    raise CrushError(f"unknown bucket algorithm {alg!r}")
