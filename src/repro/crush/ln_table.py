"""Fixed-point natural-log lookup used by the straw2 bucket.

Port of ``crush_ln()`` from Ceph's ``crush/mapper.c``: a 64-bit
fixed-point approximation of ``2**44 * log2(x + 1)`` built from small
lookup tables (a reciprocal/log-high table over the top 8 bits and a
log-low correction table).  The tables are regenerated at import time
from the same defining formulas as Ceph's precomputed constants, so
behaviour matches the published algorithm while keeping this module
self-contained.

``straw2`` uses ``crush_ln(u16) - 2**48`` as a fixed-point sample of
``2**44 * log2(u/2**16)`` — i.e. the log of a uniform variate — turning
bucket selection into a weighted exponential race.
"""

from __future__ import annotations

import math

# Keyed directly by index1 = 2*(x>>8) for normalized x in [0x8000, 0x10000]:
#   _RH[index1] = 2^56 / index1           (reciprocal)
#   _LH[index1] = 2^48 * log2(index1/256) (high log part)
# Ceiling division (matching Ceph's precomputed constants): if RH
# undershoots 2^56/index1 even slightly, the first input of a band
# computes residual 0x7fff instead of 0x8000 and picks up a whole-band
# log error from the LL table.
_RH = {i: -((-0x0100000000000000) // i) for i in range(256, 513)}
_LH = {i: int(round((1 << 48) * math.log2(i / 256.0))) for i in range(256, 513)}

# Low-order correction: _LL[j] = 2^48 * log2(1 + j/2^15), j in [0, 255].
_LL = [int(round((1 << 48) * math.log2(1.0 + j / 32768.0))) for j in range(256)]

#: 2**48 in the crush_ln fixed-point scale — the value of crush_ln(0xffff).
LN_ONE = 0x1000000000000


def crush_ln(xin: int) -> int:
    """Fixed-point ``2**44 * log2(xin + 1)`` for 16-bit inputs.

    Mirrors the bit manipulations of the kernel implementation: normalize
    the input into [2**15, 2**16], look up the high log and reciprocal for
    the top 8 bits, multiply out the residual and correct with the low
    table.
    """
    x = (xin & 0xFFFF) + 1

    # Normalize x into [0x8000, 0x10000] and track the exponent.
    iexpon = 15
    if not (x & 0x18000):
        bits = 16 - x.bit_length()
        x <<= bits
        iexpon = 15 - bits

    index1 = (x >> 8) << 1
    rh = _RH[index1]  # ~ 2^56 / index1
    lh = _LH[index1]  # ~ 2^48 * log2(index1/256)

    # rh*x ~ 2^48 * (2^15 + residual); the low byte indexes the correction.
    xl64 = (x * rh) >> 48
    index2 = xl64 & 0xFF
    ll = _LL[index2]

    result = iexpon << 44
    result += (lh + ll) >> 4
    return result


def ln_of_uniform_u16(u: int) -> int:
    """``crush_ln(u) - 2**48``: a non-positive fixed-point log sample.

    This is exactly the quantity straw2 divides by the item weight.
    """
    return crush_ln(u) - LN_ONE
