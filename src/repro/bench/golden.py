"""Golden-trace determinism: event-level digests of canonical runs.

The perf work on the hot paths (placement caching, batched uring
submit/reap, vectorized EC, sim-core tightening) is only shippable if it
changes **no simulated event**: every latency sample, retry count, and
table cell must come out byte-identical.  This module pins that down
with digests of two canonical runs:

* ``fig6`` — the replication-mode hardware throughput grid (the paper's
  headline figure): digests the raw experiment rows across three
  framework generations, 16 workload cells each.
* ``chaos-smoke`` — the seeded crash-a-replica-mid-run scenario: digests
  the full latency stream plus every fault-path counter (the same
  fingerprint the chaos determinism check uses).

Recorded digests live in ``tests/golden/``; ``python -m repro golden``
re-runs the canonical runs and compares (``--update`` re-records).  The
tier-1 test ``tests/test_golden_trace.py`` runs the same check, so any
optimization that perturbs the event stream fails CI.
"""

from __future__ import annotations

import hashlib
import pathlib
from typing import Optional

#: Default location of the recorded digests (inside the test tree).
GOLDEN_DIR = pathlib.Path(__file__).resolve().parents[3] / "tests" / "golden"

#: Canonical chaos-smoke parameters (must match the recorded digest).
CHAOS_SEED = 0
CHAOS_NREQUESTS = 80


def fig6_digest() -> str:
    """Digest of the fig6 experiment's raw rows (not the rendering).

    Hashes ``(headers, rows, notes)`` via ``repr`` so presentation-layer
    changes (column widths, table borders) cannot mask or fake an
    event-stream change: every cell is a simulated measurement.
    """
    from .experiments import exp_fig6

    res = exp_fig6()
    blob = repr((res.headers, res.rows, res.notes)).encode()
    return hashlib.sha256(blob).hexdigest()


def chaos_smoke_digest(seed: int = CHAOS_SEED, nrequests: int = CHAOS_NREQUESTS) -> str:
    """Event-level digest of the canonical crash-replica chaos run.

    Reuses :class:`~repro.bench.chaos.ChaosRunStats`' fingerprint, which
    covers the complete latency stream and all fault-path counters.
    """
    from .chaos import SCENARIOS, run_chaos_scenario

    stats = run_chaos_scenario(SCENARIOS[1], seed=seed, nrequests=nrequests)
    return stats.digest


#: Canonical run name -> (digest file name, digest function).
CANONICAL_RUNS = {
    "fig6": ("fig6.sha256", fig6_digest),
    "chaos-smoke": ("chaos-smoke.sha256", chaos_smoke_digest),
}


def read_golden(name: str, directory: Optional[pathlib.Path] = None) -> Optional[str]:
    """Recorded digest for ``name`` (None when not yet recorded)."""
    directory = directory or GOLDEN_DIR
    path = directory / CANONICAL_RUNS[name][0]
    if not path.exists():
        return None
    return path.read_text().strip()


def record(directory: Optional[pathlib.Path] = None) -> dict[str, str]:
    """Run every canonical run and write its digest file."""
    directory = directory or GOLDEN_DIR
    directory.mkdir(parents=True, exist_ok=True)
    out = {}
    for name, (fname, fn) in CANONICAL_RUNS.items():
        digest = fn()
        (directory / fname).write_text(digest + "\n")
        out[name] = digest
    return out


def check(directory: Optional[pathlib.Path] = None) -> tuple[bool, list[str]]:
    """Re-run the canonical runs against the recorded digests.

    Returns ``(ok, report_lines)``; missing recordings count as failures
    (run with ``--update`` first).
    """
    directory = directory or GOLDEN_DIR
    ok = True
    lines = []
    for name, (_fname, fn) in CANONICAL_RUNS.items():
        want = read_golden(name, directory)
        got = fn()
        if want is None:
            ok = False
            lines.append(f"{name}: NOT RECORDED (got {got})")
        elif got != want:
            ok = False
            lines.append(f"{name}: MISMATCH recorded={want} got={got}")
        else:
            lines.append(f"{name}: OK ({got[:16]}...)" if len(got) > 20 else f"{name}: OK ({got})")
    return ok, lines
