"""Generic parameter sweeps: framework x workload x block size x depth.

The per-figure experiments fix their grids to the paper's; this module
is the user-facing tool for exploring beyond them — any cartesian
combination of frameworks, rw modes, block sizes, and queue depths, with
results as an :class:`ExperimentResult` (render/CSV-export as usual).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..deliba import FRAMEWORKS, PoolSpec, framework_by_name, run_job_on
from ..errors import BenchmarkError
from ..units import kib, mib
from ..workloads import FioJob
from .experiments import ExperimentResult


@dataclass
class SweepSpec:
    """The grid to explore."""

    frameworks: Sequence[str] = ("deliba2", "delibak")
    rw_modes: Sequence[str] = ("randread", "randwrite")
    block_sizes: Sequence[int] = (kib(4), kib(64))
    iodepths: Sequence[int] = (1, 4)
    pool: str = "replicated"
    nrequests: int = 80
    working_set: int = mib(64)
    seed: int = 0

    def __post_init__(self):
        for fw in self.frameworks:
            if fw not in FRAMEWORKS:
                raise BenchmarkError(f"unknown framework {fw!r}")
        if not self.frameworks or not self.rw_modes or not self.block_sizes or not self.iodepths:
            raise BenchmarkError("sweep axes must all be non-empty")

    @property
    def cells(self) -> int:
        """Number of simulation runs the sweep will perform."""
        return (
            len(self.frameworks) * len(self.rw_modes) * len(self.block_sizes) * len(self.iodepths)
        )


def run_sweep(spec: Optional[SweepSpec] = None) -> ExperimentResult:
    """Execute the grid; one row per cell."""
    spec = spec or SweepSpec()
    res = ExperimentResult(
        "sweep",
        f"parameter sweep ({spec.cells} cells, pool={spec.pool})",
        ["framework", "rw", "bs", "iodepth", "lat-us", "p99-us", "MB/s", "KIOPS"],
    )
    pool_spec = PoolSpec(kind=spec.pool)
    for fw_name in spec.frameworks:
        cfg = framework_by_name(fw_name)
        for rw in spec.rw_modes:
            for bs in spec.block_sizes:
                for depth in spec.iodepths:
                    job = FioJob(
                        f"sweep-{rw}-{bs}-{depth}",
                        rw,
                        bs=bs,
                        iodepth=depth,
                        nrequests=spec.nrequests,
                        size=spec.working_set,
                    )
                    r = run_job_on(cfg, job, pool_spec=pool_spec, seed=spec.seed)
                    res.rows.append(
                        [
                            cfg.label,
                            rw,
                            bs,
                            depth,
                            round(r.mean_latency_us(), 1),
                            round(r.p99_latency_us(), 1),
                            round(r.throughput_mb_s(), 1),
                            round(r.kiops(), 2),
                        ]
                    )
    return res
