"""Ablation studies over DeLiBA-K's design decisions.

Each ablation toggles exactly one knob on the DELIBAK configuration and
measures the effect, isolating the contribution of the six optimizations
the paper's architecture figure enumerates (DESIGN.md Section 4 lists
the candidates).
"""

from __future__ import annotations

from dataclasses import replace

from ..blk import BlkMqConfig
from ..deliba import DELIBA2, DELIBAK, DELIBAK_SW, build_framework, run_job_on
from ..osd import ClusterSpec, HDD, NVME_SSD, SATA_SSD
from ..units import kib, mib
from ..workloads import FioJob
from .experiments import ExperimentResult


def _job(rw="randwrite", bs=kib(4), iodepth=8, n=120):
    return FioJob(f"abl-{rw}", rw, bs=bs, iodepth=iodepth, nrequests=n, size=mib(64))


def _measure(config, job=None, seed=0):
    job = job or _job()
    r = run_job_on(config, job, seed=seed)
    return {
        "latency_us": round(r.mean_latency_us(), 1),
        "mb_s": round(r.throughput_mb_s(), 1),
        "kiops": round(r.kiops(), 2),
    }


def _two_way(exp_id, title, label_a, cfg_a, label_b, cfg_b, job=None) -> ExperimentResult:
    res = ExperimentResult(exp_id, title, ["variant", "latency-us", "MB/s", "KIOPS"])
    for label, cfg in ((label_a, cfg_a), (label_b, cfg_b)):
        m = _measure(cfg, job)
        res.rows.append([label, m["latency_us"], m["mb_s"], m["kiops"]])
    return res


def ablation_dmq() -> ExperimentResult:
    """Elevator bypass: DMQ vs a stock mq-deadline block layer."""
    stock_blk = replace(
        DELIBAK,
        name="delibak-elevator",
        blk=BlkMqConfig(num_hw_queues=28, tags_per_queue=2048, merge_enabled=False),
    )
    return _two_way(
        "ablation-dmq",
        "DMQ scheduler bypass vs mq-deadline elevator",
        "DMQ (bypass)",
        DELIBAK,
        "mq-deadline",
        stock_blk,
    )


def ablation_batching() -> ExperimentResult:
    """io_uring batching: 1 vs 16 SQEs per io_uring_enter (POLL mode,
    where submission syscalls actually exist)."""
    unbatched = replace(DELIBAK, name="delibak-nobatch", uring_sqpoll=False, uring_batch=1)
    batched = replace(DELIBAK, name="delibak-batch16", uring_sqpoll=False, uring_batch=16)
    return _two_way(
        "ablation-batching",
        "submission batching (POLL mode, qd=16)",
        "batch=16",
        batched,
        "batch=1",
        unbatched,
        job=_job(iodepth=16, n=160),
    )


def ablation_instances() -> ExperimentResult:
    """Multi-instance + affinity: 3 pinned instances vs 1, vs 3 unpinned."""
    res = ExperimentResult(
        "ablation-instances",
        "io_uring instance count and CPU affinity (qd=12)",
        ["variant", "latency-us", "MB/s", "KIOPS"],
    )
    variants = (
        ("3 instances, pinned", DELIBAK),
        ("1 instance", replace(DELIBAK, name="delibak-1inst", uring_instances=1)),
        ("3 instances, unpinned", replace(DELIBAK, name="delibak-unpin", uring_pin_cores=False)),
    )
    job = _job(iodepth=12, n=180)
    for label, cfg in variants:
        m = _measure(cfg, job)
        res.rows.append([label, m["latency_us"], m["mb_s"], m["kiops"]])
    return res


def ablation_rtl_vs_hls() -> ExperimentResult:
    """Accelerator implementation: DeLiBA-K RTL vs DeLiBA-2-era HLS
    (TCP stack held at RTL so only the kernels change)."""
    hls = replace(DELIBAK, name="delibak-hls", accel_impl="hls")
    return _two_way(
        "ablation-rtl-vs-hls",
        "RTL vs HLS accelerators (everything else D-K)",
        "RTL (235 MHz, fewer cycles)",
        DELIBAK,
        "HLS (DeLiBA-2 era)",
        hls,
    )


def ablation_offload() -> ExperimentResult:
    """FPGA offload on vs off with the identical host stack (io_uring +
    DMQ + UIFD): the pure contribution of the hardware datapath."""
    return _two_way(
        "ablation-offload",
        "FPGA datapath vs software placement/EC (same host stack)",
        "hardware (QDMA + RTL)",
        DELIBAK,
        "software (host CPU)",
        DELIBAK_SW,
    )


def ablation_polling() -> ExperimentResult:
    """Completion delivery: kernel-polled (SQPOLL) vs IRQ-driven."""
    irq = replace(DELIBAK, name="delibak-irq", uring_sqpoll=False, uring_interrupt=True)
    return _two_way(
        "ablation-polling",
        "kernel-polled vs interrupt-driven completions",
        "polled (SQPOLL)",
        DELIBAK,
        "interrupt-driven",
        irq,
    )


def ablation_media() -> ExperimentResult:
    """Media sensitivity: the D-K/D2 gain shrinks as the drive slows.

    With NVMe media the host/stack overheads DeLiBA-K removes are a large
    share of the I/O; on SATA SSDs the media grows; on spinning disks the
    seek dominates everything and the FPGA offload buys almost nothing —
    the same argument the paper's NVMe-era motivation makes in reverse.
    """
    res = ExperimentResult(
        "ablation-media",
        "4 kB rand-read latency (us) by device class, D2 vs D-K",
        ["media", "D2", "D-K", "D-K gain"],
    )
    job = FioJob("med", "randread", bs=kib(4), iodepth=1, nrequests=30, size=mib(32))
    for media in (NVME_SSD, SATA_SSD, HDD):
        lat = {}
        for cfg in (DELIBA2, DELIBAK):
            fw = build_framework(
                cfg, cluster_spec=ClusterSpec(media=media, client_stack=cfg.client_stack)
            )
            proc = fw.env.process(fw.run_fio(job))
            fw.env.run()
            lat[cfg.name] = proc.value.mean_latency_us()
        gain = lat["deliba2"] / lat["delibak"] if lat["delibak"] else 0.0
        res.rows.append(
            [media.name, round(lat["deliba2"], 1), round(lat["delibak"], 1), f"{gain:.2f}x"]
        )
    return res


ALL_ABLATIONS = {
    "dmq": ablation_dmq,
    "batching": ablation_batching,
    "instances": ablation_instances,
    "rtl-vs-hls": ablation_rtl_vs_hls,
    "media": ablation_media,
    "offload": ablation_offload,
    "polling": ablation_polling,
}
