"""Benchmark harness: per-figure/table experiment runners and reports."""

from .experiments import (
    ExperimentResult,
    FIG_BLOCK_SIZES,
    FIG_IODEPTH,
    FIG_WORKLOADS,
    exp_fig3,
    exp_fig4,
    exp_fig6,
    exp_fig7,
    exp_fig8,
    exp_fig9,
    exp_headline,
    exp_power,
    exp_realworld,
    exp_table1,
    exp_table2,
    exp_table3,
)
from .breakdown import exp_breakdown
from .cachebench import cache_smoke, exp_cache, run_cache_case
from .healthbench import HealthRunReport, health_smoke, run_health
from .chaos import ChaosRunStats, ChaosScenario, chaos_smoke, exp_chaos, run_chaos_scenario
from .qosbench import QosRunStats, TenantStats, exp_qos, qos_smoke, run_qos_scenario
from .export import export_all, export_csv
from .sweep import SweepSpec, run_sweep
from .tables import format_table, ratio_note
from . import paper_data

__all__ = [
    "ExperimentResult",
    "FIG_BLOCK_SIZES",
    "FIG_IODEPTH",
    "FIG_WORKLOADS",
    "ChaosRunStats",
    "ChaosScenario",
    "QosRunStats",
    "TenantStats",
    "HealthRunReport",
    "cache_smoke",
    "chaos_smoke",
    "health_smoke",
    "run_health",
    "exp_qos",
    "qos_smoke",
    "run_qos_scenario",
    "exp_breakdown",
    "exp_cache",
    "exp_chaos",
    "run_cache_case",
    "exp_fig3",
    "run_chaos_scenario",
    "exp_fig4",
    "exp_fig6",
    "exp_fig7",
    "exp_fig8",
    "exp_fig9",
    "exp_headline",
    "exp_power",
    "exp_realworld",
    "exp_table1",
    "exp_table2",
    "exp_table3",
    "SweepSpec",
    "export_all",
    "export_csv",
    "run_sweep",
    "format_table",
    "paper_data",
    "ratio_note",
]
