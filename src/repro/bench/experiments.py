"""Experiment definitions: one function per paper table/figure.

Each function runs the relevant simulations and returns an
:class:`ExperimentResult` whose rows mirror the paper's layout, with the
published reference values alongside.  The benchmark files under
``benchmarks/`` are thin wrappers that print these tables and assert the
qualitative shape (orderings, rough factors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from ..deliba import FRAMEWORKS, PoolSpec, build_framework, run_job_on
from ..fpga import (
    Accelerator,
    KERNEL_SPECS,
    PcieLink,
    PowerModel,
    QdmaEngine,
    QueuePurpose,
    full_load_power,
    spec_by_name,
)
from ..sim import Environment, RngRegistry
from ..units import kib, mib, to_us, us
from ..workloads import FioJob, OlapWorkload, OltpWorkload, run_olap, run_oltp
from . import paper_data
from .tables import format_table


@dataclass
class ExperimentResult:
    """One reproduced table/figure."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""

    def render(self) -> str:
        """ASCII report."""
        out = format_table(self.headers, self.rows, title=f"== {self.exp_id}: {self.title} ==")
        if self.notes:
            out += f"\n{self.notes}"
        return out


#: Block sizes swept in the figure reproductions.
FIG_BLOCK_SIZES = (kib(4), kib(8), kib(64), kib(128))
#: fio modes in paper order.
FIG_WORKLOADS = ("read", "write", "randread", "randwrite")
#: Queue depth used throughout (the paper omits its fio parameters; 4
#: reproduces both the throughput neighborhoods and the D-K/D2 ratios).
FIG_IODEPTH = 4

_MODE_LABEL = {"read": "seq-read", "write": "seq-write", "randread": "rand-read", "randwrite": "rand-write"}


def _run(framework: str, rw: str, bs: int, iodepth: int, nreq: int, pool: str, seed: int = 0):
    pool_spec = PoolSpec(kind=pool)
    job = FioJob(name=f"{rw}-{bs}", rw=rw, bs=bs, iodepth=iodepth, nrequests=nreq, size=mib(64))
    return run_job_on(FRAMEWORKS[framework], job, pool_spec=pool_spec, seed=seed)


@lru_cache(maxsize=None)
def _sweep(framework: str, pool: str, iodepth: int = FIG_IODEPTH, nreq: int = 100):
    """Full workload x block-size grid for one framework (cached)."""
    out = {}
    for rw in FIG_WORKLOADS:
        for bs in FIG_BLOCK_SIZES:
            r = _run(framework, rw, bs, iodepth, nreq, pool)
            out[(rw, bs)] = (r.throughput_mb_s(), r.kiops(), r.mean_latency_us())
    return out


# --- Fig. 3 / Fig. 4: software baselines -------------------------------------------


def _fig_sw(exp_id: str, pool: str) -> ExperimentResult:
    title = f"software baseline ({pool}): DeLiBA-K vs DeLiBA-2, io_uring vs NBD"
    res = ExperimentResult(
        exp_id,
        title,
        ["metric", "workload", "bs", "D2 (sw)", "D-K (sw)", "paper D2", "paper D-K"],
    )
    paper_lat = paper_data.FIG3_SW_LATENCY
    for bs in (kib(4), kib(128)):
        for rw in FIG_WORKLOADS:
            lat = {}
            thr = {}
            for fw in ("deliba2-sw", "delibak-sw"):
                r_lat = _run(fw, rw, bs, 1, 40, pool)
                r_thr = _run(fw, rw, bs, FIG_IODEPTH, 80, pool)
                lat[fw] = r_lat.mean_latency_us()
                thr[fw] = r_thr.throughput_mb_s()
            p2 = pk = ""
            if bs == kib(4) and rw in ("randread", "randwrite"):
                idx = 0 if rw == "randread" else 1
                p2 = paper_lat["deliba2-sw"][idx]
                pk = paper_lat["delibak-sw"][idx]
            res.rows.append(
                ["latency-us", _MODE_LABEL[rw], bs, round(lat["deliba2-sw"], 1), round(lat["delibak-sw"], 1), p2, pk]
            )
            res.rows.append(
                ["MB/s", _MODE_LABEL[rw], bs, round(thr["deliba2-sw"], 1), round(thr["delibak-sw"], 1), "", ""]
            )
    return res


def exp_fig3() -> ExperimentResult:
    """Fig. 3: software baselines in replication mode."""
    return _fig_sw("fig3", "replicated")


def exp_fig4() -> ExperimentResult:
    """Fig. 4: software baselines in erasure-coding mode."""
    res = _fig_sw("fig4", "erasure")
    # The paper's EC software gains at 4 kB: 2.88x rand-write, 2.4x rand-read.
    gains = {}
    for rw in ("randread", "randwrite"):
        d2 = _run("deliba2-sw", rw, kib(4), FIG_IODEPTH, 80, "erasure").throughput_mb_s()
        dk = _run("delibak-sw", rw, kib(4), FIG_IODEPTH, 80, "erasure").throughput_mb_s()
        gains[rw] = dk / d2 if d2 else 0.0
    res.notes = (
        f"EC 4kB throughput gain D-K/D2: rand-read {gains['randread']:.2f}x "
        f"(paper {paper_data.FIG4_EC_THROUGHPUT_GAIN['randread']}x), rand-write "
        f"{gains['randwrite']:.2f}x (paper {paper_data.FIG4_EC_THROUGHPUT_GAIN['randwrite']}x)"
    )
    return res


# --- Table I: kernel profile --------------------------------------------------------


def _standalone_invocation_us(kernel: str) -> float:
    """Simulated standalone accelerator invocation (Table I column 6).

    Drives the real ioctl -> QDMA -> accelerator -> completion path.  The
    batch size per invocation is calibrated so the simulated time tracks
    the paper's measured column (their standalone tests recompute
    placements for a full PG map / encode a whole object per call).
    """
    env = Environment()
    qdma = QdmaEngine(env, PcieLink(env))
    queue = qdma.allocate_queue(QueuePurpose.REPLICATION)
    spec = spec_by_name(kernel)
    accel = Accelerator(env, spec)
    # Fixed driver path: ioctl + marshalling + descriptor round trip + IRQ.
    fixed_ns = us(13)
    items = max(1, int((spec.hw_exec_ns - fixed_ns) * spec.clock_hz / 1e9))

    def invoke(env):
        yield env.timeout(us(11))  # ioctl + driver marshalling + wakeup
        yield from qdma.h2c_transfer(queue, max(64, items // 8))
        yield from accel.process(items)
        yield from qdma.c2h_transfer(queue, max(64, items // 16))

    env.process(invoke(env))
    env.run()
    return to_us(env.now)


def exp_table1() -> ExperimentResult:
    """Table I: software profile vs RTL cycles/latency vs FPGA execution."""
    res = ExperimentResult(
        "table1",
        "replication and EC kernels: SW profile vs RTL vs FPGA execution",
        [
            "kernel",
            "sw-exec-us",
            "contrib",
            "rtl-cycles",
            "vivado-lat-us",
            "hw-exec-us (sim)",
            "hw-exec-us (paper)",
            "sloc-c",
            "sloc-verilog",
        ],
    )
    for kernel, spec in KERNEL_SPECS.items():
        paper_row = paper_data.TABLE1[kernel]
        measured = _standalone_invocation_us(kernel)
        res.rows.append(
            [
                kernel,
                to_us(spec.sw_exec_ns),
                f"{spec.sw_runtime_share:.0%}",
                f"{spec.cycles[0]}-{spec.cycles[1]}",
                f"{spec.vivado_latency_ns[0] / 1000:.3f}-{spec.vivado_latency_ns[1] / 1000:.3f}",
                round(measured, 1),
                paper_row[4],
                spec.sloc_c,
                spec.sloc_verilog,
            ]
        )
    res.notes = (
        "sw-exec, cycles, vivado latency and SLOC columns encode the paper's "
        "published values (they drive the cost model); hw-exec (sim) runs the "
        "ioctl->QDMA->accelerator->completion path with a calibrated batch."
    )
    return res


# --- Table II: hardware latency ---------------------------------------------------------


def exp_table2() -> ExperimentResult:
    """Table II: 4 kB I/O latency across hardware frameworks."""
    res = ExperimentResult(
        "table2",
        "4 kB request latency, hardware frameworks (us)",
        ["pool", "framework", "seq-read", "seq-write", "rand-read", "rand-write", "paper"],
    )
    grids = (
        ("replicated", ("deliba1", "deliba2", "delibak"), paper_data.TABLE2_REPLICATION),
        ("erasure", ("deliba2", "delibak"), paper_data.TABLE2_ERASURE),
    )
    for pool, fws, paper in grids:
        for fw in fws:
            row = [pool, FRAMEWORKS[fw].label]
            for rw in FIG_WORKLOADS:
                r = _run(fw, rw, kib(4), 1, 40, pool)
                row.append(round(r.mean_latency_us(), 1))
            row.append(str(paper[fw]))
            res.rows.append(row)
    return res


# --- Figs 6-9: hardware throughput / KIOPS ------------------------------------------------


def _fig_hw(exp_id: str, pool: str, fws: tuple, metric: str) -> ExperimentResult:
    unit = "MB/s" if metric == "throughput" else "KIOPS"
    res = ExperimentResult(
        exp_id,
        f"hardware-accelerated {unit}, {pool} mode",
        ["workload", "bs"] + [FRAMEWORKS[f].label for f in fws],
    )
    idx = 0 if metric == "throughput" else 1
    for rw in FIG_WORKLOADS:
        for bs in FIG_BLOCK_SIZES:
            row = [_MODE_LABEL[rw], bs]
            for fw in fws:
                row.append(round(_sweep(fw, pool)[(rw, bs)][idx], 1))
            res.rows.append(row)
    if pool == "replicated" and metric == "throughput":
        checks = []
        for rw, bs, paper_mb, paper_x in paper_data.FIG6_THROUGHPUT_CHECKPOINTS:
            dk = _sweep("delibak", pool)[(rw, bs)][0]
            d2 = _sweep("deliba2", pool)[(rw, bs)][0]
            ratio = dk / d2 if d2 else 0.0
            checks.append(
                f"{_MODE_LABEL[rw]} {bs}: D-K {dk:.0f} MB/s (paper {paper_mb:.0f}), "
                f"speedup {ratio:.2f}x (paper {paper_x}x)"
            )
        res.notes = "\n".join(checks)
    return res


def exp_fig6() -> ExperimentResult:
    """Fig. 6: replication-mode hardware throughput, D1/D2/D-K."""
    return _fig_hw("fig6", "replicated", ("deliba1", "deliba2", "delibak"), "throughput")


def exp_fig7() -> ExperimentResult:
    """Fig. 7: replication-mode hardware KIOPS, D1/D2/D-K."""
    return _fig_hw("fig7", "replicated", ("deliba1", "deliba2", "delibak"), "kiops")


def exp_fig8() -> ExperimentResult:
    """Fig. 8: EC-mode hardware throughput, D2 vs D-K."""
    return _fig_hw("fig8", "erasure", ("deliba2", "delibak"), "throughput")


def exp_fig9() -> ExperimentResult:
    """Fig. 9: EC-mode hardware KIOPS, D2 vs D-K."""
    return _fig_hw("fig9", "erasure", ("deliba2", "delibak"), "kiops")


# --- Table III: resources -------------------------------------------------------------------


def exp_table3() -> ExperimentResult:
    """Table III: U280 resource utilization (static kernels + DFX RMs)."""
    from ..fpga import U280_SLR0, U280_TOTAL

    res = ExperimentResult(
        "table3",
        "resource utilization on the U280 (counts and % of region)",
        ["module", "region", "LUTs", "LUT%", "FF%", "BRAM%", "URAM%", "paper LUT%"],
    )
    for module, paper_row in paper_data.TABLE3_STATIC.items():
        vec = KERNEL_SPECS[module].resources
        pct = vec.utilization_of(U280_TOTAL)
        res.rows.append(
            [module, "full-chip", vec.lut, round(pct["lut"], 2), round(pct["ff"], 2),
             round(pct["bram"], 2), round(pct["uram"], 2), paper_row[1]]
        )
    rm_to_kernel = {"rm1_list": "list", "rm2_tree": "tree", "rm3_uniform": "uniform"}
    for rm, paper_row in paper_data.TABLE3_RMS.items():
        vec = KERNEL_SPECS[rm_to_kernel[rm]].resources
        pct = vec.utilization_of(U280_SLR0)
        res.rows.append(
            [rm, "SLR0", vec.lut, round(pct["lut"], 2), round(pct["ff"], 2),
             round(pct["bram"], 2), round(pct["uram"], 2), paper_row[1]]
        )
    return res


# --- Power ------------------------------------------------------------------------------------


def exp_power() -> ExperimentResult:
    """Section V-c: full-load power with and without partial reconfiguration."""
    model = PowerModel()
    all_accels = [KERNEL_SPECS[k].resources for k in KERNEL_SPECS]
    one_rm = [KERNEL_SPECS[k].resources for k in ("straw", "straw2", "rs_encoder", "uniform")]
    no_pr = full_load_power(model, all_accels)
    with_pr = full_load_power(model, one_rm)
    res = ExperimentResult(
        "power",
        "full-load card power (watts)",
        ["scenario", "measured-W", "paper-W"],
        [
            ["full load, no partial reconfiguration", round(no_pr, 1), paper_data.POWER_NO_PR_W],
            ["full load, with partial reconfiguration", round(with_pr, 1), paper_data.POWER_WITH_PR_W],
        ],
    )
    return res


# --- Real-world workloads ------------------------------------------------------------------------


def exp_realworld() -> ExperimentResult:
    """Abstract / Section V: OLAP + OLTP execution time, D2 vs D-K."""
    res = ExperimentResult(
        "realworld",
        "real-world workload execution time (ms)",
        ["workload", "D2", "D-K", "reduction", "paper"],
    )
    for wname in ("olap", "oltp"):
        times = {}
        for fw_name in ("deliba2", "delibak"):
            fw = build_framework(FRAMEWORKS[fw_name], image_size=mib(256))
            if wname == "olap":
                proc = fw.env.process(run_olap(fw, OlapWorkload()))
            else:
                proc = fw.env.process(
                    run_oltp(fw, OltpWorkload(), RngRegistry(1).stream("oltp"))
                )
            fw.env.run()
            if not proc.ok:
                raise proc.value
            times[fw_name] = proc.value.elapsed_ms
        reduction = (times["deliba2"] - times["delibak"]) / times["deliba2"]
        res.rows.append(
            [wname, round(times["deliba2"], 1), round(times["delibak"], 1),
             f"{reduction:.0%}", f"~{paper_data.REALWORLD_REDUCTION:.0%}"]
        )
    return res


# --- Abstract headline -----------------------------------------------------------------------------


def exp_headline() -> ExperimentResult:
    """Abstract: up to 3.2x IOPS and 3.45x throughput over DeLiBA-2."""
    best_thr = 0.0
    best_iops = 0.0
    for rw in FIG_WORKLOADS:
        for bs in FIG_BLOCK_SIZES:
            dk = _sweep("delibak", "replicated")[(rw, bs)]
            d2 = _sweep("deliba2", "replicated")[(rw, bs)]
            if d2[0] > 0:
                best_thr = max(best_thr, dk[0] / d2[0])
            if d2[1] > 0:
                best_iops = max(best_iops, dk[1] / d2[1])
    return ExperimentResult(
        "headline",
        "abstract headline speedups over DeLiBA-2",
        ["metric", "measured", "paper"],
        [
            ["max throughput speedup", round(best_thr, 2), paper_data.HEADLINE_THROUGHPUT_SPEEDUP],
            ["max IOPS speedup", round(best_iops, 2), paper_data.HEADLINE_IOPS_SPEEDUP],
        ],
    )
