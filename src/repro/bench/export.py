"""Export experiment results as CSV (for plotting the paper's figures)."""

from __future__ import annotations

import csv
import pathlib
from typing import Iterable, Union

from ..errors import BenchmarkError
from .experiments import ExperimentResult


def export_csv(result: ExperimentResult, path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write one experiment's rows as CSV; returns the path written."""
    path = pathlib.Path(path)
    if not result.headers:
        raise BenchmarkError(f"experiment {result.exp_id!r} has no headers")
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(result.headers)
        for row in result.rows:
            writer.writerow(row)
    return path


def export_all(results: Iterable[ExperimentResult], directory: Union[str, pathlib.Path]) -> list[pathlib.Path]:
    """Write every experiment to ``<directory>/<exp_id>.csv``."""
    directory = pathlib.Path(directory)
    return [export_csv(r, directory / f"{r.exp_id}.csv") for r in results]
