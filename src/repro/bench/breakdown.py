"""Stage-breakdown experiment: where does an I/O spend its time?

Runs the full DeLiBA-K stack with the lifecycle tracer *and* the metrics
registry enabled and reports, per fio mode, the mean time in each of the
six stages of the paper's Figure 2 plus the per-layer instruments that
explain them (ring batch sizes, block-layer queue depth, OSD service
latency).  The paper names this profiling as future work; here it is a
first-class experiment.
"""

from __future__ import annotations

from ..deliba import FRAMEWORKS, build_framework
from ..trace import STAGES
from ..units import kib
from ..workloads import FioJob
from .experiments import ExperimentResult

#: fio modes profiled (one column pair per mode).
BREAKDOWN_MODES = ("randread", "randwrite")
#: Registry names surfaced in the notes, with a human label each.
_NOTE_METRICS = (
    ("uring.sqe_batch_size", "mean SQEs per io_uring_enter"),
    ("uring.syscalls_saved", "syscalls saved by batching"),
    ("driver.uifd.request_ns", "driver request latency"),
    ("osd.0.op_latency", "osd.0 service latency"),
    ("net.bytes", "bytes on the wire"),
)


def _profile(rw: str, bs: int, nreq: int, seed: int):
    """One traced + metered run of the delibak stack; returns (fw, result)."""
    fw = build_framework(FRAMEWORKS["delibak"], seed=seed, trace=True, metrics=True)
    job = FioJob(name=f"breakdown-{rw}", rw=rw, bs=bs, iodepth=1, nrequests=nreq)
    proc = fw.env.process(fw.run_fio(job), name=f"breakdown:{rw}")
    fw.env.run()
    if not proc.ok:
        raise proc.value
    return fw, proc.value


def _metric_note(fw) -> list[str]:
    """One line per surfaced instrument, skipping any that stayed empty."""
    lines = []
    for name, label in _NOTE_METRICS:
        if name not in fw.metrics:
            continue
        metric = fw.metrics.get(name)
        if hasattr(metric, "mean_us"):
            if metric.count:
                lines.append(f"{label}: {metric.mean_us():.1f} us mean (n={metric.count})")
        elif hasattr(metric, "mean"):
            if metric.count:
                lines.append(f"{label}: {metric.mean():.1f} mean (n={metric.count})")
        elif metric.value:
            lines.append(f"{label}: {metric.value}")
    depth = fw.blk.queue_depth_summary(fw.env.now)
    if depth:
        busiest = max(depth, key=depth.get)
        lines.append(f"time-weighted blk queue depth ({busiest}): {depth[busiest]:.2f}")
    return lines


def exp_breakdown(bs: int = kib(4), nreq: int = 60, seed: int = 0) -> ExperimentResult:
    """Six-stage latency breakdown of the DeLiBA-K stack (tracer + metrics)."""
    res = ExperimentResult(
        "breakdown",
        f"DeLiBA-K six-stage I/O breakdown, bs={bs}",
        ["stage"] + [f"{rw} us" for rw in BREAKDOWN_MODES] + [f"{rw} share" for rw in BREAKDOWN_MODES],
    )
    summaries = {}
    notes = []
    for rw in BREAKDOWN_MODES:
        fw, _ = _profile(rw, bs, nreq, seed)
        summaries[rw] = fw.tracer.summary()
        notes.append(f"[{rw}] " + "; ".join(_metric_note(fw)))
    totals = {rw: sum(summaries[rw].values()) or 1.0 for rw in BREAKDOWN_MODES}
    for stage in STAGES:
        if not any(stage in summaries[rw] for rw in BREAKDOWN_MODES):
            continue
        row = [stage]
        row += [round(summaries[rw].get(stage, 0.0), 2) for rw in BREAKDOWN_MODES]
        row += [f"{summaries[rw].get(stage, 0.0) / totals[rw]:.1%}" for rw in BREAKDOWN_MODES]
        res.rows.append(row)
    res.notes = "\n".join(notes)
    return res
