"""Stage-breakdown experiment: where does an I/O spend its time?

Runs the full DeLiBA-K stack with the causal tracer *and* the metrics
registry enabled and reports, per fio mode, the critical-path time
attributed to each datapath stage plus the per-layer instruments that
explain it (ring batch sizes, block-layer queue depth, OSD service
latency).  Unlike the flat stage summary it replaced, the attribution
is exact: per-stage nanoseconds partition each request's measured
end-to-end latency, so the share column always sums to 100%.
"""

from __future__ import annotations

from ..deliba import FRAMEWORKS, build_framework
from ..obs.critical_path import aggregate_attribution, analyze, verify_exact
from ..units import kib
from ..workloads import FioJob
from .experiments import ExperimentResult

#: fio modes profiled (one column pair per mode).
BREAKDOWN_MODES = ("randread", "randwrite")
#: Stage render order (critical-path stage names; "api" is root self-time).
_STAGE_ORDER = ("api", "rings", "dmq", "uifd", "qdma", "accel", "fabric", "complete")
#: Registry names surfaced in the notes, with a human label each.
_NOTE_METRICS = (
    ("uring.sqe_batch_size", "mean SQEs per io_uring_enter"),
    ("uring.syscalls_saved", "syscalls saved by batching"),
    ("driver.uifd.request_ns", "driver request latency"),
    ("osd.0.op_latency", "osd.0 service latency"),
    ("net.bytes", "bytes on the wire"),
)


def _profile(rw: str, bs: int, nreq: int, seed: int):
    """One causally traced + metered run of the delibak stack."""
    fw = build_framework(FRAMEWORKS["delibak"], seed=seed, obs=True, metrics=True)
    job = FioJob(name=f"breakdown-{rw}", rw=rw, bs=bs, iodepth=1, nrequests=nreq)
    proc = fw.env.process(fw.run_fio(job), name=f"breakdown:{rw}")
    fw.env.run()
    if not proc.ok:
        raise proc.value
    return fw, proc.value


def _attribution(fw) -> tuple[dict[str, int], int]:
    """Exact per-stage critical-path ns and the request count."""
    roots = fw.tracer.complete_trees()
    paths = []
    for root in roots:
        path = analyze(root)
        problem = verify_exact(path)
        if problem is not None:
            raise RuntimeError(f"inexact attribution for span {root.span_id}: {problem}")
        paths.append(path)
    by_stage, _kinds, _folded = aggregate_attribution(paths)
    merged: dict[str, int] = {}
    for stage, ns in by_stage.items():
        # Root self-time segments carry the op name; report them as "api".
        key = "api" if stage in ("read", "write") else stage
        merged[key] = merged.get(key, 0) + ns
    return merged, len(roots)


def _metric_note(fw) -> list[str]:
    """One line per surfaced instrument, skipping any that stayed empty."""
    lines = []
    for name, label in _NOTE_METRICS:
        if name not in fw.metrics:
            continue
        metric = fw.metrics.get(name)
        if hasattr(metric, "mean_us"):
            if metric.count:
                lines.append(f"{label}: {metric.mean_us():.1f} us mean (n={metric.count})")
        elif hasattr(metric, "mean"):
            if metric.count:
                lines.append(f"{label}: {metric.mean():.1f} mean (n={metric.count})")
        elif metric.value:
            lines.append(f"{label}: {metric.value}")
    depth = fw.blk.queue_depth_summary(fw.env.now)
    if depth:
        busiest = max(depth, key=depth.get)
        lines.append(f"time-weighted blk queue depth ({busiest}): {depth[busiest]:.2f}")
    return lines


def exp_breakdown(bs: int = kib(4), nreq: int = 60, seed: int = 0) -> ExperimentResult:
    """Critical-path latency breakdown of the DeLiBA-K stack."""
    res = ExperimentResult(
        "breakdown",
        f"DeLiBA-K critical-path I/O breakdown, bs={bs} (exact attribution)",
        ["stage"] + [f"{rw} us" for rw in BREAKDOWN_MODES] + [f"{rw} share" for rw in BREAKDOWN_MODES],
    )
    stages = {}
    counts = {}
    notes = []
    for rw in BREAKDOWN_MODES:
        fw, _ = _profile(rw, bs, nreq, seed)
        stages[rw], counts[rw] = _attribution(fw)
        incomplete = len(fw.tracer.incomplete_trees())
        note = f"[{rw}] " + "; ".join(_metric_note(fw))
        if incomplete:
            note += f"; {incomplete} request(s) never completed"
        notes.append(note)
    totals = {rw: sum(stages[rw].values()) or 1 for rw in BREAKDOWN_MODES}
    order = {name: i for i, name in enumerate(_STAGE_ORDER)}
    seen = sorted(
        {s for rw in BREAKDOWN_MODES for s in stages[rw]},
        key=lambda s: (order.get(s, len(order)), s),
    )
    for stage in seen:
        row = [stage]
        row += [
            round(stages[rw].get(stage, 0) / max(counts[rw], 1) / 1000.0, 2)
            for rw in BREAKDOWN_MODES
        ]
        row += [f"{stages[rw].get(stage, 0) / totals[rw]:.1%}" for rw in BREAKDOWN_MODES]
        res.rows.append(row)
    res.notes = "\n".join(notes)
    return res
