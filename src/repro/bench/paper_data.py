"""Published numbers from the paper, for side-by-side comparison.

Every table/figure reproduction prints its measured values next to these
references; EXPERIMENTS.md records the deltas.  Units: microseconds for
latency, MB/s for throughput, watts for power.
"""

from __future__ import annotations

#: Table II — 4 kB end-to-end latency (us), hardware frameworks.
TABLE2_REPLICATION = {
    # framework: (seq-read, seq-write, rand-read, rand-write)
    "deliba1": (65, 95, 130, 98),
    "deliba2": (55, 75, 85, 82),
    "delibak": (40, 52, 64, 68),
}
TABLE2_ERASURE = {
    "deliba2": (48, 70, 82, 75),
    "delibak": (38, 47, 59, 60),
}

#: Fig. 3/4 — software baselines, 4 kB latency (us): the text reports the
#: same headline movement for both replication and EC modes.
FIG3_SW_LATENCY = {
    # framework: (rand-read, rand-write)
    "deliba2-sw": (130, 98),
    "delibak-sw": (85, 80),
}

#: Fig. 3/4 — software-baseline EC throughput gains at 4 kB (x over D2-sw).
FIG4_EC_THROUGHPUT_GAIN = {
    "randwrite": 2.88,
    "randread": 2.4,
}

#: Fig. 6 — hardware replication throughput checkpoints (MB/s) and
#: speedups over DeLiBA-2 (paper Section V-b).
FIG6_THROUGHPUT_CHECKPOINTS = [
    # (workload, bs, delibak MB/s, speedup over deliba2)
    ("randwrite", 4096, 145.0, 3.45),
    ("randwrite", 8192, 170.0, 2.50),
    ("write", 65536, 440.0, 2.38),
    ("write", 131072, 680.0, 2.00),
]

#: Abstract headline: up to 3.2x IOPS and 3.45x throughput.
HEADLINE_IOPS_SPEEDUP = 3.2
HEADLINE_THROUGHPUT_SPEEDUP = 3.45

#: Related-work comparison points (Section VI).
MAX_KIOPS_DELIBAK = 59.0
P99_LATENCY_US_DELIBAK = 40.0

#: Table I — per-kernel data (encoded in repro.fpga.accelerators too;
#: repeated here in paper layout for the bench report).
TABLE1 = {
    # kernel: (sw_exec_us, contribution, cycles, vivado_lat_us, hw_exec_us,
    #          sloc_c, sloc_verilog)
    "straw": (55, 0.80, (105, 105), (0.345, 0.355), 49, 256, 880),
    "straw2": (48, 0.80, (155, 155), (0.315, 0.315), 51, 256, 806),
    "list": (35, 0.80, (40, 40), (0.161, 0.161), 56, 197, 770),
    "tree": (22, 0.85, (130, 130), (0.115, 0.115), 31, 241, 780),
    "uniform": (9, 0.72, (40, 50), (0.180, 0.180), 19, 237, 745),
    "rs_encoder": (65, 0.70, (150, 150), (0.345, 0.345), 85, 280, 960),
}

#: Table III — utilization percentages as printed in the paper.
TABLE3_STATIC = {
    # module: (lut_count, lut_pct, ff_pct, bram_pct, uram_pct)
    "straw": (78_555, 6.2, 8.59, 9.42, 2.71),
    "straw2": (82_334, 6.31, 12.01, 8.18, 3.65),
    "rs_encoder": (92_355, 7.08, 22.32, 10.66, 5.42),
}
TABLE3_RMS = {
    # rm: (lut_count, lut_pct_of_slr0, ff_pct, bram_pct, uram_pct)
    "rm1_list": (52_335, 14.74, 12.75, 17.35, 6.88),
    "rm2_tree": (56_551, 15.93, 13.45, 16.73, 8.13),
    "rm3_uniform": (62_456, 17.59, 15.45, 15.92, 8.70),
}

#: Section V-c power scenarios (watts).
POWER_NO_PR_W = 195.0
POWER_WITH_PR_W = 170.0

#: Abstract: ~30% execution-time reduction for real-world workloads.
REALWORLD_REDUCTION = 0.30
