"""Cache-tier experiment: hit ratio and latency across modes/capacities.

Runs the full DeLiBA-K stack (io_uring -> blk-mq -> UIFD -> fabric ->
OSDs) with the Open-CAS-style client cache interposed, over Zipf-skewed
and uniform random workloads, and reports per-mode hit ratios, mean
latency, and throughput against an uncached baseline on the identical
cluster/seed.

``cache_smoke`` is the CI gate.  It checks the properties that make the
cache *trustworthy*, not merely fast:

* **pass-through identity** — a PT cache produces the bit-identical
  latency stream an uncached stack does (same seed), i.e. the tier adds
  zero events unless enabled;
* **hit-ratio monotonicity** — growing the cache never lowers the Zipf
  hit ratio;
* **skew sensitivity** — Zipf traffic hits more than uniform traffic at
  equal capacity (the cache actually exploits skew);
* **write-back wins skewed writes** — WB mean latency beats WT when the
  same hot blocks are rewritten (absorbing rewrites is WB's whole job).
"""

from __future__ import annotations

import hashlib
from typing import Optional

from ..cache import CacheConfig, CacheMode
from ..deliba import FRAMEWORKS, PoolSpec, build_framework
from ..units import kib, mib
from ..workloads import ZipfJob
from .experiments import ExperimentResult

#: Framework the cache rides on in these benches (the paper's fastest).
CACHE_FRAMEWORK = "delibak"
#: Cache line used throughout (two 4 KiB blocks per line keeps fills cheap).
LINE_SIZE = kib(8)
#: Capacity sweep for the hit-ratio curve, in lines.
CAPACITY_SWEEP = (16, 64, 256, 1024)


def _job(rw: str, theta: float, nreq: int, name: str) -> ZipfJob:
    return ZipfJob(
        name=name, rw=rw, bs=kib(4), iodepth=4, size=mib(16), nrequests=nreq, theta=theta
    )


def run_cache_case(
    job: ZipfJob,
    cache: Optional[CacheConfig],
    seed: int = 0,
    prefill: bool = True,
):
    """Build a fresh stack (cached or not), run one job.

    Returns ``(RunResult, stats_dict)`` where ``stats_dict`` is the
    cache's counter snapshot (empty for an uncached run).
    """
    fw = build_framework(
        FRAMEWORKS[CACHE_FRAMEWORK],
        pool_spec=PoolSpec(),
        image_size=mib(32),
        seed=seed,
        cache=cache,
    )
    proc = fw.env.process(fw.run_fio(job, prefill=prefill), name=f"cache:{job.name}")
    fw.env.run()
    if not proc.ok:
        raise proc.value
    return proc.value, (fw.cache.stats() if fw.cache else {})


def _latency_digest(result) -> str:
    """Order-sensitive digest of the per-I/O latency stream."""
    h = hashlib.sha256()
    for lat in result.latencies_ns:
        h.update(lat.to_bytes(8, "little"))
    return h.hexdigest()[:16]


def _cfg(mode: CacheMode, capacity_lines: int = 256, **kw) -> CacheConfig:
    return CacheConfig(mode=mode, line_size=LINE_SIZE, capacity_lines=capacity_lines, **kw)


def exp_cache(seed: int = 0, nreq: int = 300) -> ExperimentResult:
    """Mode sweep + capacity curve over Zipf and uniform traffic."""
    res = ExperimentResult(
        "CACHE",
        "Client block cache: mode sweep and hit-ratio curve",
        ["config", "workload", "hit%", "mean us", "MB/s", "flushes", "bypasses"],
    )
    read_job = _job("randread", 0.99, nreq, "zipf-read")
    mix_job = _job("randrw", 0.99, nreq, "zipf-mix")
    base, _ = run_cache_case(read_job, None, seed=seed)
    res.rows.append(
        ["uncached", read_job.name, "-", f"{base.mean_latency_us():.1f}",
         f"{base.throughput_mb_s():.1f}", "-", "-"]
    )
    for mode in (CacheMode.PASS_THROUGH, CacheMode.WRITE_THROUGH,
                 CacheMode.WRITE_BACK, CacheMode.WRITE_AROUND):
        job = read_job if mode is CacheMode.PASS_THROUGH else mix_job
        cfg = _cfg(mode, cleaning="alru" if mode is CacheMode.WRITE_BACK else "nop")
        r, stats = run_cache_case(job, cfg, seed=seed)
        res.rows.append(
            [f"cache-{mode.value}", job.name, f"{100 * stats['hit_ratio']:.1f}",
             f"{r.mean_latency_us():.1f}", f"{r.throughput_mb_s():.1f}",
             str(stats["flushed_lines"]), str(stats["seq_bypasses"])]
        )
    for lines in CAPACITY_SWEEP:
        _, stats = run_cache_case(read_job, _cfg(CacheMode.WRITE_THROUGH, lines), seed=seed)
        res.rows.append(
            [f"wt-{lines}ln", read_job.name, f"{100 * stats['hit_ratio']:.1f}",
             "-", "-", "-", "-"]
        )
    res.notes = (
        "Zipf theta=0.99 over a 16 MiB working set; capacity rows sweep the "
        "WT hit-ratio curve. PT rides the identical datapath as uncached."
    )
    return res


def cache_smoke(seed: int = 0, nreq: int = 200) -> tuple[int, str]:
    """Seeded CI smoke over the cache invariants.

    Returns ``(exit_code, report)``; nonzero when any invariant fails.
    """
    problems: list[str] = []
    lines: list[str] = ["== cache smoke =="]

    # 1. Pass-through identity: same seed, bit-identical latency stream.
    read_job = _job("randread", 0.99, nreq, "zipf-read")
    bare, _ = run_cache_case(read_job, None, seed=seed)
    pt, pt_stats = run_cache_case(read_job, _cfg(CacheMode.PASS_THROUGH), seed=seed)
    bare_digest, pt_digest = _latency_digest(bare), _latency_digest(pt)
    lines.append(f"pass-through digest {pt_digest} vs uncached {bare_digest}")
    if bare_digest != pt_digest:
        problems.append(f"PT not event-identical: {pt_digest} != {bare_digest}")
    if pt_stats and (pt_stats["read_hits"] or pt_stats["read_misses"]):
        problems.append("PT mode touched cache counters")

    # 2. Hit ratio monotone non-decreasing with capacity (Zipf reads).
    curve = []
    for cap in CAPACITY_SWEEP:
        _, stats = run_cache_case(read_job, _cfg(CacheMode.WRITE_THROUGH, cap), seed=seed)
        curve.append((cap, stats["hit_ratio"]))
    lines.append("hit-ratio curve: " + ", ".join(f"{c}ln={h:.3f}" for c, h in curve))
    for (c1, h1), (c2, h2) in zip(curve, curve[1:]):
        if h2 < h1 - 1e-9:
            problems.append(f"hit ratio fell growing {c1}->{c2} lines: {h1:.3f}->{h2:.3f}")

    # 3. Zipf skew beats uniform at equal capacity.
    uniform_job = _job("randread", 0.0, nreq, "uniform-read")
    _, zipf_stats = run_cache_case(read_job, _cfg(CacheMode.WRITE_THROUGH, 64), seed=seed)
    _, uni_stats = run_cache_case(uniform_job, _cfg(CacheMode.WRITE_THROUGH, 64), seed=seed)
    lines.append(
        f"zipf hit {zipf_stats['hit_ratio']:.3f} vs uniform {uni_stats['hit_ratio']:.3f} @64ln"
    )
    if zipf_stats["hit_ratio"] <= uni_stats["hit_ratio"]:
        problems.append(
            f"zipf hit ratio {zipf_stats['hit_ratio']:.3f} not above "
            f"uniform {uni_stats['hit_ratio']:.3f}"
        )

    # 4. WB absorbs skewed rewrites that WT pays the fabric for.
    write_job = _job("randwrite", 1.2, nreq, "zipf-write")
    wt, _ = run_cache_case(write_job, _cfg(CacheMode.WRITE_THROUGH), seed=seed, prefill=False)
    wb, wb_stats = run_cache_case(
        write_job, _cfg(CacheMode.WRITE_BACK, cleaning="alru"), seed=seed, prefill=False
    )
    lines.append(
        f"skewed-write mean: wb {wb.mean_latency_us():.1f} us vs wt {wt.mean_latency_us():.1f} us"
        f" (wb flushed {wb_stats['flushed_lines']})"
    )
    if wb.mean_latency_us() >= wt.mean_latency_us():
        problems.append(
            f"write-back ({wb.mean_latency_us():.1f} us) not faster than "
            f"write-through ({wt.mean_latency_us():.1f} us) on skewed writes"
        )

    report = "\n".join(lines)
    if problems:
        report += "\nSMOKE FAIL:\n" + "\n".join(f"  - {p}" for p in problems)
        return 1, report
    report += "\nSMOKE PASS: all cache invariants hold"
    return 0, report
