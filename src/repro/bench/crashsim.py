"""Deterministic crash-point explorer (ALICE/CrashMonkey-style).

Systematically verifies the crash consistency of the WAL commit pipeline
(``repro.osd.wal``): run a scripted workload once crash-free to record
the victim OSD's **persistence-ordering events** (journal appends,
extent stages, barriers, background applies), enumerate crash points
from that timeline, and for each point rebuild the identical same-seed
testbed, cut the victim's power at exactly that instant, replay the WAL,
let log-based delta recovery converge, and check the durability
invariants through an independent client:

* every **acked** write is durable (its bytes, or a later write's, are
  what the cluster serves);
* every **unacked** write is atomic — readers see old bytes or new
  bytes, never a torn hybrid and never a value that was never written;
* lazily derived checksums verify on every surviving store key;
* a deep scrub of the pool comes back clean.

All randomness (torn-write fates, media jitter) draws from the seeded
cluster RNG streams, so the whole matrix — crash instants included — is
byte-for-byte reproducible; the smoke check runs one matrix twice and
compares digests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..errors import StorageError
from ..osd import (
    ClusterSpec,
    DurabilityConfig,
    FaultInjector,
    OpPolicy,
    OsdConfig,
    Scrubber,
    build_cluster,
)
from ..sim import Environment, MetricsRegistry
from ..units import ms, us
from .experiments import ExperimentResult

#: Testbed: two server hosts x three OSDs — small enough that one crash
#: point's full build/run/verify cycle stays cheap, large enough for a
#: size-3 replicated pool and a k=2+1 EC pool to place fully.
SERVERS = 2
OSDS_PER_HOST = 3
PG_NUM = 8
#: Heartbeat cadence while a point runs: the power loss must be
#: *detected* so clients re-place instead of retrying into the outage.
HB_INTERVAL_NS = us(400)
HB_GRACE_NS = us(300)

#: Scripted workload: objects under (deferred path) and over (commit
#: path) the WAL defer threshold, each written twice (v0 then v1) so
#: crash points land between versions, mid-append, and mid-apply.
WORKLOAD = (
    ("small0", 4096),
    ("small1", 4096),
    ("small2", 4096),
    ("big0", 65536),
    ("big1", 65536),
    ("big2", 65536),
)
WRITE_GAP_NS = us(50)


def _pattern(index: int, round_no: int, size: int) -> bytes:
    """Deterministic per-(object, version) payload."""
    return bytes([(index * 31 + round_no * 101 + j) % 251 for j in range(size)])


@dataclass
class CrashPointResult:
    """Outcome of one crash point."""

    crash_ns: int
    acked: int
    unacked: int
    violations: list[str]
    torn_detected: int
    records_replayed: int
    records_discarded: int
    keys_dropped: int


@dataclass
class CrashSimStats:
    """Outcome of one pool's crash-point matrix."""

    pool_kind: str
    candidate_points: int
    explored_points: int
    points: list[CrashPointResult] = field(default_factory=list)
    digest: str = ""

    @property
    def violations(self) -> list[str]:
        return [v for p in self.points for v in p.violations]

    @property
    def torn_detected(self) -> int:
        return sum(p.torn_detected for p in self.points)

    @property
    def records_replayed(self) -> int:
        return sum(p.records_replayed for p in self.points)


def _build(seed: int, pool_kind: str):
    env = Environment()
    metrics = MetricsRegistry()
    spec = ClusterSpec(
        num_server_hosts=SERVERS,
        osds_per_host=OSDS_PER_HOST,
        op_policy=OpPolicy(timeout_ns=ms(2), max_attempts=8),
        osd_config=OsdConfig(subop_timeout_ns=ms(1)),
        # More adversarial than the defaults: tear as often as we
        # persist, so the checksum/healing paths get real coverage.
        durability=DurabilityConfig(persist_p=0.35, tear_p=0.35),
        seed=seed,
    )
    cluster = build_cluster(env, spec, metrics=metrics)
    if pool_kind == "replicated":
        pool = cluster.create_replicated_pool("pool", pg_num=PG_NUM, size=3)
    else:
        pool = cluster.create_erasure_pool("pool", pg_num=PG_NUM, k=2, m=1)
    manager = cluster.enable_recovery()
    return env, cluster, pool, manager


def _write(client, pool, name, data):
    if pool.pool_type.value == "replicated":
        yield from client.write_replicated(pool, name, data, direct=True)
    else:
        yield from client.write_ec(pool, name, data, direct=True)


def _read(client, pool, name, length):
    if pool.pool_type.value == "replicated":
        data = yield from client.read_replicated(pool, name, 0, length)
    else:
        data = yield from client.read_ec(pool, name, length, direct=True)
    return data


def _workload(env, client, pool, journal):
    """Process: the scripted write sequence, journaling ack outcomes.

    ``journal[name]`` is the ordered list of write attempts; a write
    that raises (it lost its race with the power cut and exhausted
    retries) stays ``acked=False`` — its bytes may or may not survive,
    and the invariant checker accepts either, but never a torn mix.
    """
    for round_no in (0, 1):
        for i, (name, size) in enumerate(WORKLOAD):
            entry = {"data": _pattern(i, round_no, size), "acked": False}
            journal[name].append(entry)
            try:
                yield from _write(client, pool, name, entry["data"])
                entry["acked"] = True
            except StorageError:
                pass
            yield env.timeout(WRITE_GAP_NS)


def _acceptable_values(entries) -> tuple[list[bytes], bool]:
    """(acceptable final contents, absence allowed) for one object.

    The last acked value must survive; any *later* unacked write may
    have landed (old-or-new atomicity).  With no acked write at all,
    absence (or zeros) is also legal, as is any unacked value.
    """
    last_acked = -1
    for i, e in enumerate(entries):
        if e["acked"]:
            last_acked = i
    if last_acked < 0:
        return [e["data"] for e in entries], True
    return [entries[last_acked]["data"]] + [
        e["data"] for e in entries[last_acked + 1 :]
    ], False


def harvest_crash_points(seed: int, pool_kind: str, max_points: int) -> tuple[list[int], int, int]:
    """Phase A: crash-free run; enumerate crash points from the victim's
    persistence-ordering events.

    Candidates are each event instant +1 ns plus the midpoints between
    consecutive events (crashing *between* orderings is where torn and
    reordered states hide).  Returns ``(points, candidates, victim)``.
    """
    env, cluster, pool, _manager = _build(seed, pool_kind)
    client = cluster.new_client()
    journal = {name: [] for name, _ in WORKLOAD}
    victim = client.compute_placement(pool, WORKLOAD[0][0])[0]

    def main():
        cluster.monitor.start_heartbeats(HB_INTERVAL_NS, HB_GRACE_NS)
        yield from _workload(env, client, pool, journal)
        cluster.monitor.stop_heartbeats()

    proc = env.process(main(), name="crashsim.harvest")
    env.run()
    if not proc.ok:
        raise proc.value
    events = cluster.daemons[victim].wal.events
    times = sorted({t for t, _kind, _seq in events})
    candidates: set[int] = set()
    for i, t in enumerate(times):
        candidates.add(t + 1)
        if i + 1 < len(times):
            mid = (t + times[i + 1]) // 2
            if mid > t:
                candidates.add(mid)
    points = sorted(candidates)
    total = len(points)
    if total > max_points:
        # Even deterministic subsample across the timeline.
        step = total / max_points
        points = [points[int(k * step)] for k in range(max_points)]
    return points, total, victim


def run_crash_point(seed: int, pool_kind: str, victim: int, crash_ns: int) -> CrashPointResult:
    """Phase B: identical testbed, power cut at ``crash_ns``, replay,
    delta recovery, then the invariant checks."""
    env, cluster, pool, manager = _build(seed, pool_kind)
    client = cluster.new_client()
    verifier = cluster.new_client("verifier")
    injector = FaultInjector(cluster)
    journal = {name: [] for name, _ in WORKLOAD}
    out: dict = {}

    def main():
        cluster.monitor.start_heartbeats(HB_INTERVAL_NS, HB_GRACE_NS)
        cut = injector.schedule(
            [(crash_ns, lambda: injector.power_loss(victim))], name="crashsim.cut"
        )
        yield from _workload(env, client, pool, journal)
        if not cut.triggered:
            yield cut
        out["replay"] = injector.restore_power(victim)
        yield from manager.wait_converged()
        cluster.monitor.stop_heartbeats()
        # -- invariant checks --
        violations = []
        reads = {}
        for i, (name, size) in enumerate(WORKLOAD):
            acceptable, may_be_absent = _acceptable_values(journal[name])
            try:
                got = yield from _read(verifier, pool, name, size)
            except StorageError:
                got = None
            if got is None or got == b"\x00" * size:
                reads[name] = "absent"
                if not may_be_absent:
                    violations.append(
                        f"{pool_kind}@{crash_ns}: {name} lost an acked write"
                    )
                continue
            reads[name] = hashlib.sha256(got).hexdigest()[:12]
            if not any(got == v for v in acceptable):
                kind = (
                    "torn/invented state"
                    if any(len(v) == len(got) for v in acceptable)
                    else "wrong content"
                )
                violations.append(f"{pool_kind}@{crash_ns}: {name} served {kind}")
        # Lazy checksums must verify on every surviving key, cluster-wide.
        for osd_id, daemon in sorted(cluster.daemons.items()):
            for key in daemon.store.object_names():
                if not daemon.store.verify(key):
                    violations.append(
                        f"{pool_kind}@{crash_ns}: osd.{osd_id} key {key} checksum bad"
                    )
        report = yield from Scrubber(env, cluster.monitor).scrub(pool, deep=True)
        if not report.clean:
            violations.append(f"{pool_kind}@{crash_ns}: deep scrub unclean")
        if cluster.daemons[victim].wal.replays != 1:
            violations.append(
                f"{pool_kind}@{crash_ns}: expected exactly one WAL replay, "
                f"got {cluster.daemons[victim].wal.replays}"
            )
        out["violations"] = violations
        out["reads"] = reads

    proc = env.process(main(), name=f"crashsim.point@{crash_ns}")
    env.run()
    if not proc.ok:
        raise proc.value
    replay = out["replay"]
    acked = sum(1 for es in journal.values() for e in es if e["acked"])
    unacked = sum(1 for es in journal.values() for e in es if not e["acked"])
    result = CrashPointResult(
        crash_ns=crash_ns,
        acked=acked,
        unacked=unacked,
        violations=out["violations"],
        torn_detected=replay.torn_detected,
        records_replayed=replay.records_replayed,
        records_discarded=replay.records_discarded,
        keys_dropped=replay.keys_dropped,
    )
    result._reads = out["reads"]  # carried for the matrix digest
    return result


def run_crashsim(pool_kind: str, seed: int = 0, max_points: int = 12) -> CrashSimStats:
    """Full matrix for one pool kind: harvest, explore, digest."""
    points, candidates, victim = harvest_crash_points(seed, pool_kind, max_points)
    stats = CrashSimStats(
        pool_kind=pool_kind, candidate_points=candidates, explored_points=len(points)
    )
    fingerprint = hashlib.sha256()
    for crash_ns in points:
        result = run_crash_point(seed, pool_kind, victim, crash_ns)
        stats.points.append(result)
        fingerprint.update(
            repr((crash_ns, result.acked, result.unacked, len(result.violations),
                  sorted(result._reads.items()))).encode()
        )
    stats.digest = fingerprint.hexdigest()[:16]
    return stats


def _result_table(all_stats: list[CrashSimStats]) -> ExperimentResult:
    res = ExperimentResult(
        "crashsim",
        "crash-point exploration: durability invariants across power-cut instants",
        ["pool", "cand", "explored", "acked", "unacked", "torn", "replayed",
         "discarded", "dropped", "violations"],
    )
    for s in all_stats:
        res.rows.append([
            s.pool_kind, s.candidate_points, s.explored_points,
            sum(p.acked for p in s.points), sum(p.unacked for p in s.points),
            s.torn_detected, s.records_replayed,
            sum(p.records_discarded for p in s.points),
            sum(p.keys_dropped for p in s.points), len(s.violations),
        ])
    return res


def exp_crashsim(smoke: bool = False, seed: int = 0, max_points: int = 0,
                 pool: str = "both") -> ExperimentResult:
    """Crash-point matrices (replicated and/or EC) as an experiment."""
    max_points = max_points or (6 if smoke else 16)
    kinds = ["replicated", "ec"] if pool == "both" else [pool]
    all_stats = [run_crashsim(k, seed=seed, max_points=max_points) for k in kinds]
    res = _result_table(all_stats)
    notes = []
    for s in all_stats:
        dropped = s.candidate_points - s.explored_points
        notes.append(
            f"{s.pool_kind}: {s.explored_points}/{s.candidate_points} crash points "
            f"(subsampled {dropped} out), {len(s.violations)} violations, "
            f"digest {s.digest}"
        )
    res.notes = "; ".join(notes)
    return res


def crashsim_smoke(
    seed: int = 0, max_points: int = 6, pool: str = "both", report_path: str = ""
) -> tuple[int, str]:
    """Seeded CI smoke: bounded matrix, both pool kinds, invariants on.

    Returns ``(exit_code, report)``; nonzero when any durability
    invariant is violated at any explored crash point, when the explorer
    never exercised the interesting machinery (no torn writes detected,
    no records replayed), or when two same-seed runs of the replicated
    matrix disagree (determinism).  ``report_path`` additionally writes
    a JSON violation report (the CI artifact).
    """
    kinds = ["replicated", "ec"] if pool == "both" else [pool]
    all_stats = [run_crashsim(k, seed=seed, max_points=max_points) for k in kinds]
    rerun = run_crashsim(kinds[0], seed=seed, max_points=max_points)
    problems = []
    for s in all_stats:
        for v in s.violations:
            problems.append(f"durability violation: {v}")
    if sum(s.records_replayed for s in all_stats) == 0:
        problems.append("no WAL records replayed across the whole matrix")
    if rerun.digest != all_stats[0].digest:
        problems.append(
            f"nondeterministic: digests {all_stats[0].digest} != {rerun.digest}"
        )
    report = _result_table(all_stats).render()
    if report_path:
        payload = {
            "seed": seed,
            "max_points": max_points,
            "pools": {
                s.pool_kind: {
                    "candidate_points": s.candidate_points,
                    "explored_points": s.explored_points,
                    "violations": s.violations,
                    "torn_detected": s.torn_detected,
                    "records_replayed": s.records_replayed,
                    "digest": s.digest,
                }
                for s in all_stats
            },
            "determinism": "PASS" if rerun.digest == all_stats[0].digest else "FAIL",
            "result": "FAIL" if problems else "PASS",
            "problems": problems,
        }
        with open(report_path, "w") as fh:
            json.dump(payload, fh, indent=2)
    if problems:
        report += "\nSMOKE FAIL:\n" + "\n".join(f"  - {p}" for p in problems)
        return 1, report
    total = sum(s.explored_points for s in all_stats)
    report += (
        f"\nSMOKE PASS: {total} crash points explored "
        f"({' + '.join(s.pool_kind for s in all_stats)}), 0 durability "
        f"violations, {sum(s.torn_detected for s in all_stats)} torn writes "
        f"detected+handled, deterministic (digest {all_stats[0].digest})"
    )
    return 0, report
