"""Chaos experiment: availability and tail latency under injected faults.

Runs the full DeLiBA-K stack (io_uring -> blk-mq -> UIFD -> fabric ->
OSDs) through a randrw workload while the :class:`FaultInjector` crashes
replicas mid-run, drops/duplicates/corrupts fabric messages, or flaps
host links.  Reports per-scenario availability (fraction of I/Os that
completed without a client-visible error), error rate, tail latency, and
the fault-path counters (retries, failovers, timeouts, absorbed write
replays) against a fault-free baseline on the identical cluster shape.

Everything draws from named sim RNG substreams, so a scenario replays
bit-identically for a given seed — the determinism check below runs the
crash scenario twice and compares digests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..deliba import FRAMEWORKS, PoolSpec, build_framework
from ..osd import ClusterSpec, DurabilityConfig, FaultInjector, OpPolicy, OsdConfig
from ..units import kib, mib, ms, us
from ..workloads import FioJob
from .experiments import ExperimentResult

#: Cluster shape: three server hosts so a size-3 pool keeps one replica
#: per host and losing one OSD still leaves two copies.
CHAOS_SERVERS = 3
CHAOS_OSDS_PER_HOST = 4
#: Heartbeat cadence: probe every 400 us, declare down after 300 us.
HB_INTERVAL_NS = us(400)
HB_GRACE_NS = us(300)


@dataclass(frozen=True)
class ChaosScenario:
    """One fault schedule applied to a run."""

    name: str
    #: Fabric message-fault probabilities (0 = off).
    drop_p: float = 0.0
    duplicate_p: float = 0.0
    corrupt_p: float = 0.0
    #: Crash the primary of the image's first object mid-run.
    crash_replica: bool = False
    #: Flap one server host's links mid-run (3 cycles of 300 us each way).
    flap_host: bool = False
    #: Run monitor heartbeats so crashes are *detected*, not injected.
    heartbeats: bool = False
    #: Cut power to the primary of the image's first object mid-run,
    #: then restore it after ``POWER_OUTAGE_NS`` (durable WAL replay).
    power_loss: bool = False


SCENARIOS = (
    ChaosScenario("baseline"),
    ChaosScenario("crash-replica", crash_replica=True, heartbeats=True),
    ChaosScenario("lossy-fabric", drop_p=0.02, duplicate_p=0.01, corrupt_p=0.01),
    ChaosScenario("flaky-link", flap_host=True),
    ChaosScenario("power-loss", heartbeats=True, power_loss=True),
)

#: How long a power-loss outage lasts before power is restored.
POWER_OUTAGE_NS = ms(2)


@dataclass
class ChaosRunStats:
    """Outcome of one scenario run."""

    scenario: str
    ios: int
    errors: int
    error_rate: float
    p50_us: float
    p99_us: float
    p999_us: float
    throughput_mb_s: float
    retries: int
    timeouts: int
    failovers: int
    degraded_reads: int
    replays: int
    msg_dropped: int
    msg_duplicated: int
    msg_corrupted: int
    link_drops: int
    osds_marked_down: int
    digest: str
    #: Power-loss path counters (trailing defaults: fault-free scenarios
    #: and their golden digests predate these fields).
    power_loss_retries: int = 0
    wal_replays: int = 0

    @property
    def availability(self) -> float:
        """Fraction of I/Os that completed without a client-visible error."""
        return 1.0 - self.error_rate


def _chaos_cluster_spec(seed: int, client_stack, durable: bool = False) -> ClusterSpec:
    """Chaos testbed: 3 hosts x 4 OSDs, retry policy with a real timeout
    (silently dropped messages must not hang an op), and an OSD sub-op
    deadline so a primary never strands on a lost replica write.

    ``durable`` attaches the WAL commit pipeline to every OSD (required
    by the power-loss scenario; off elsewhere so the fault-free golden
    digests stay byte-identical)."""
    return ClusterSpec(
        num_server_hosts=CHAOS_SERVERS,
        osds_per_host=CHAOS_OSDS_PER_HOST,
        client_stack=client_stack,
        osd_config=OsdConfig(subop_timeout_ns=ms(1)),
        op_policy=OpPolicy(timeout_ns=ms(2), max_attempts=6),
        durability=DurabilityConfig() if durable else None,
        seed=seed,
    )


def _drive(fw, job, injector, scenario: ChaosScenario, crash_after_ops: int):
    """Process: prefill, arm the fault schedule, run the measured job."""
    from ..blk import IoOp

    bios = job.make_bios(fw.rng.stream(f"fio.{job.name}.j0"))
    read_offsets = sorted({b.offset for b in bios if b.op == IoOp.READ})
    if read_offsets:
        yield from fw.prefill(read_offsets, job.bs)
    env = fw.env
    cluster = fw.cluster
    done = {"flag": False}

    if scenario.heartbeats:
        cluster.monitor.start_heartbeats(HB_INTERVAL_NS, HB_GRACE_NS)
    if scenario.crash_replica:
        # Crash the primary of the first object once the measured run is
        # underway (ops_served past the post-prefill watermark).
        victim = fw.image.client.compute_placement(fw.pool, fw.image.object_name(0))[0]
        ops_at_start = cluster.total_ops_served()

        def _crash_trigger():
            while not done["flag"]:
                if cluster.total_ops_served() - ops_at_start >= crash_after_ops:
                    injector.crash_osd(victim)
                    return
                yield env.timeout(us(100))

        env.process(_crash_trigger(), name="chaos.crash-trigger")
    if scenario.flap_host:
        injector.flap_link(cluster.server_hosts[-1], us(300), us(300), count=3)
    if scenario.power_loss:
        # Cut power to the first object's primary mid-run: the volatile
        # cache resolves under seeded fates, in-flight ops bounce with
        # the retryable AGAIN status, heartbeats detect the outage, and
        # after POWER_OUTAGE_NS the OSD replays its WAL and rejoins.
        victim = fw.image.client.compute_placement(fw.pool, fw.image.object_name(0))[0]
        ops_at_start = cluster.total_ops_served()

        def _power_trigger():
            while not done["flag"]:
                if cluster.total_ops_served() - ops_at_start >= crash_after_ops:
                    injector.power_loss(victim)
                    yield env.timeout(POWER_OUTAGE_NS)
                    injector.restore_power(victim)
                    return
                yield env.timeout(us(100))

        env.process(_power_trigger(), name="chaos.power-trigger")

    try:
        result = yield from fw.engine.run(bios, job.iodepth)
    finally:
        done["flag"] = True
        if scenario.heartbeats:
            cluster.monitor.stop_heartbeats()
    return result


def run_chaos_scenario(
    scenario: ChaosScenario, seed: int = 0, nrequests: int = 300
) -> ChaosRunStats:
    """Build a fresh chaos testbed, run one scenario, collect stats."""
    cfg = FRAMEWORKS["delibak"]
    fw = build_framework(
        cfg,
        pool_spec=PoolSpec(kind="replicated", size=3),
        cluster_spec=_chaos_cluster_spec(
            seed, cfg.client_stack, durable=scenario.power_loss
        ),
        seed=seed,
        metrics=True,
    )
    injector = FaultInjector(fw.cluster)
    if scenario.drop_p or scenario.duplicate_p or scenario.corrupt_p:
        injector.set_message_faults(
            drop_p=scenario.drop_p,
            duplicate_p=scenario.duplicate_p,
            corrupt_p=scenario.corrupt_p,
        )
    job = FioJob(
        name="chaos", rw="randrw", bs=kib(4), iodepth=8, nrequests=nrequests, size=mib(32)
    )
    crash_after = int(0.6 * nrequests)
    proc = fw.env.process(
        _drive(fw, job, injector, scenario, crash_after), name=f"chaos.{scenario.name}"
    )
    fw.env.run()
    if not proc.ok:
        raise proc.value
    result = proc.value

    client = fw.image.client
    faults = fw.cluster.fabric.faults
    replays = sum(d.replays_absorbed for d in fw.cluster.daemons.values())
    fingerprint = hashlib.sha256()
    fingerprint.update(repr(tuple(result.latencies_ns)).encode())
    fingerprint.update(
        repr((result.errors, client.retries, client.timeouts, client.failovers,
              client.degraded_reads, replays)).encode()
    )
    return ChaosRunStats(
        scenario=scenario.name,
        ios=result.ios,
        errors=result.errors,
        error_rate=result.error_rate(),
        p50_us=result.percentile_latency_us(50),
        p99_us=result.percentile_latency_us(99),
        p999_us=result.percentile_latency_us(99.9),
        throughput_mb_s=result.throughput_mb_s(),
        retries=client.retries,
        timeouts=client.timeouts,
        failovers=client.failovers,
        degraded_reads=client.degraded_reads,
        replays=replays,
        msg_dropped=faults.dropped if faults else 0,
        msg_duplicated=faults.duplicated if faults else 0,
        msg_corrupted=faults.corrupted if faults else 0,
        link_drops=fw.cluster.fabric.link_drops,
        osds_marked_down=len(fw.cluster.monitor.failures_detected),
        digest=fingerprint.hexdigest()[:16],
        power_loss_retries=client.power_loss_retries,
        wal_replays=sum(
            d.wal.replays for d in fw.cluster.daemons.values() if d.wal is not None
        ),
    )


def _result_table(stats: list[ChaosRunStats]) -> ExperimentResult:
    res = ExperimentResult(
        "chaos",
        "fault-tolerance datapath: availability + tails under injected faults",
        ["scenario", "ios", "err", "avail%", "p50us", "p99us", "p999us",
         "MB/s", "retry", "t/o", "fover", "replay", "drop", "ploss"],
    )
    for s in stats:
        res.rows.append([
            s.scenario, s.ios, s.errors, round(100.0 * s.availability, 3),
            round(s.p50_us, 1), round(s.p99_us, 1), round(s.p999_us, 1),
            round(s.throughput_mb_s, 1), s.retries, s.timeouts, s.failovers,
            s.replays, s.msg_dropped + s.link_drops, s.power_loss_retries,
        ])
    return res


def exp_chaos(smoke: bool = False, seed: int = 0) -> ExperimentResult:
    """Run every chaos scenario plus a determinism double-run."""
    nreq = 80 if smoke else 300
    stats = [run_chaos_scenario(s, seed=seed, nrequests=nreq) for s in SCENARIOS]
    by_name = {s.scenario: s for s in stats}
    rerun = run_chaos_scenario(SCENARIOS[1], seed=seed, nrequests=nreq)
    deterministic = rerun.digest == by_name["crash-replica"].digest
    res = _result_table(stats)
    crash = by_name["crash-replica"]
    ploss = by_name["power-loss"]
    res.notes = (
        f"crash-replica: {crash.osds_marked_down} OSD(s) heartbeat-detected down, "
        f"{crash.retries} retries + {crash.failovers} read failovers, "
        f"{crash.errors} client-visible errors; "
        f"power-loss: {ploss.power_loss_retries} AGAIN-bounced ops retried, "
        f"{ploss.wal_replays} WAL replay(s), {ploss.errors} errors; "
        f"determinism (same seed, two runs): "
        f"{'PASS' if deterministic else 'FAIL'} (digest {crash.digest})"
    )
    return res


def chaos_smoke(seed: int = 0, nrequests: int = 80) -> tuple[int, str]:
    """Seeded CI smoke: crash a replica mid-run and check the invariants.

    Returns ``(exit_code, report)``; nonzero when any invariant fails:
    zero client-visible errors, at least one retry or failover exercised,
    and bit-identical stats across two same-seed runs.
    """
    first = run_chaos_scenario(SCENARIOS[1], seed=seed, nrequests=nrequests)
    second = run_chaos_scenario(SCENARIOS[1], seed=seed, nrequests=nrequests)
    problems = []
    if first.errors:
        problems.append(f"expected 0 client-visible errors, got {first.errors}")
    if first.retries + first.failovers == 0:
        problems.append("fault path never exercised (0 retries and 0 failovers)")
    if first.digest != second.digest:
        problems.append(
            f"nondeterministic: digests {first.digest} != {second.digest}"
        )
    report = _result_table([first]).render()
    if problems:
        report += "\nSMOKE FAIL:\n" + "\n".join(f"  - {p}" for p in problems)
        return 1, report
    report += (
        f"\nSMOKE PASS: {first.ios} I/Os, 0 errors, {first.retries} retries, "
        f"{first.failovers} failovers, deterministic (digest {first.digest})"
    )
    return 0, report


def power_loss_smoke(seed: int = 0, nrequests: int = 80) -> tuple[int, str]:
    """Seeded CI smoke: cut a primary's power mid-run, replay, rejoin.

    Returns ``(exit_code, report)``; nonzero when any invariant fails:
    zero client-visible errors (AGAIN bounces must be retried to
    success), exactly one WAL replay on the revived OSD, and
    bit-identical stats across two same-seed runs.
    """
    scenario = SCENARIOS[4]
    first = run_chaos_scenario(scenario, seed=seed, nrequests=nrequests)
    second = run_chaos_scenario(scenario, seed=seed, nrequests=nrequests)
    problems = []
    if first.errors:
        problems.append(f"expected 0 client-visible errors, got {first.errors}")
    if first.wal_replays != 1:
        problems.append(f"expected exactly 1 WAL replay, got {first.wal_replays}")
    if first.power_loss_retries + first.retries + first.failovers == 0:
        problems.append("power-loss path never exercised (no bounced ops)")
    if first.digest != second.digest:
        problems.append(
            f"nondeterministic: digests {first.digest} != {second.digest}"
        )
    report = _result_table([first]).render()
    if problems:
        report += "\nSMOKE FAIL:\n" + "\n".join(f"  - {p}" for p in problems)
        return 1, report
    report += (
        f"\nSMOKE PASS: {first.ios} I/Os survived a {POWER_OUTAGE_NS // 1000} us "
        f"power outage with 0 errors, {first.power_loss_retries} AGAIN-bounced "
        f"ops retried, {first.wal_replays} WAL replay, deterministic "
        f"(digest {first.digest})"
    )
    return 0, report
