"""Multi-tenant QoS experiment: mClock fairness on the live cluster.

Closed-loop tenants (each a :class:`~repro.osd.client.RadosClient` with
a fixed iodepth of outstanding 4 KiB replicated writes) hammer a shared
OSD pool through the :mod:`repro.osd.qos` admission gates.  The smoke
battery is the cluster-level counterpart of the pure-virtual-time
differential harness (``tests/qos_harness.py``): a reservation-heavy,
a weight-heavy, and a limit-capped tenant saturate the pool and the
run must prove the floor, the weight split, the ceiling, and work
conservation against an unscheduled FIFO baseline — deterministically,
with identical digests across same-seed runs.

``exp_qos`` widens the battery into the many-tenant (>= 16) mixed-
profile sweep: every tenant gets one of four archetype profiles and the
table reports achieved IOPS, reservation-phase share, and queue waits
per tenant.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from ..osd import ClusterSpec, OsdConfig, QosConfig, QosSpec, build_cluster
from ..sim import Environment, MetricsRegistry
from ..units import ms, us
from .experiments import ExperimentResult

#: Testbed: two server hosts x two OSDs, 3-way replication, with the
#: per-op CPU cost raised so the OSD worker pools (where the admission
#: gates sit) are the bottleneck rather than the client NIC — small
#: enough for CI, scarce enough that a handful of tenants saturates it
#: and the scheduler decides who runs.
SERVERS = 2
OSDS_PER_HOST = 2
PG_NUM = 16
BS = 4096
OSD_CONFIG = OsdConfig(op_cost_ns=us(50))

#: Each logical write is a direct replicated write: three gated ops
#: (one per replica OSD), every one carrying the tenant's tag — the
#: distributed rho/delta bookkeeping is what keeps the *cluster-wide*
#: floor and ceiling right even though three independent gates serve
#: the flow.  QoS specs are denominated in gated-op IOPS; divide by
#: REPLICATION for client-write IOPS.
REPLICATION = 3

#: The three-profile battery (mirrors tests/test_qos_differential.py):
#: a 60k-op/s floor (20k writes/s), a weight-heavy tenant, and a
#: ceiling at 18k ops/s (6k writes/s) that binds well below the capped
#: tenant's fair share.
RES_IOPS = 60_000.0
CAP_IOPS = 18_000.0
BATTERY = {
    "gold": (QosSpec(reservation_iops=RES_IOPS, weight=1), 16),
    "silver": (QosSpec(weight=3), 16),
    "bronze": (QosSpec(weight=3, limit_iops=CAP_IOPS), 16),
}

#: Weight-split scenario: two otherwise-identical saturating tenants at
#: 3:1 weights must split the pool 3:1 (within 10%).
WEIGHT_PAIR = {
    "heavy": (QosSpec(weight=3), 24),
    "light": (QosSpec(weight=1), 24),
}

DURATION = ms(60)
WARMUP = ms(20)


@dataclass
class TenantStats:
    """One tenant's outcome over the measurement window."""

    name: str
    iops: float  # client writes/s
    op_iops: float  # gated ops/s (= iops * REPLICATION) — spec units
    total_writes: int
    res_ops: int
    sched_ops: int
    mean_wait_us: float
    limit_waits: int


@dataclass
class QosRunStats:
    """Outcome of one multi-tenant scenario run."""

    tenants: dict[str, TenantStats]
    aggregate_iops: float
    reservation_phase: int
    priority_phase: int
    limit_waits: int
    digest: str


def _worker(env, client, pool, payload, counts, stop, wid):
    """Process: one closed-loop stream of direct replicated writes.

    Direct replication: the client writes all three replicas itself, so
    each logical write is three *top-level* gated ops and neither arm
    (QoS or bare FIFO pools) can wedge on primaries holding slots
    across sub-op round-trips."""
    i = 0
    while not stop["flag"]:
        name = f"{client.tenant}.{wid}.obj{i % 4}"
        yield from client.write_replicated(pool, name, payload, direct=True)
        counts[client.tenant] += 1
        i += 1


def run_qos_scenario(
    tenants: dict[str, tuple[Optional[QosSpec], int]],
    seed: int = 0,
    duration_ns: int = DURATION,
    warmup_ns: int = WARMUP,
    qos: bool = True,
) -> QosRunStats:
    """Run one closed-loop multi-tenant scenario; measure post-warmup.

    ``tenants`` maps tenant name -> (QosSpec or None, iodepth).  With
    ``qos=False`` the same load runs against the bare FIFO worker pools
    (the work-conservation baseline).
    """
    env = Environment()
    metrics = MetricsRegistry()
    spec = ClusterSpec(
        num_server_hosts=SERVERS, osds_per_host=OSDS_PER_HOST,
        osd_config=OSD_CONFIG, seed=seed,
    )
    cluster = build_cluster(env, spec, metrics=metrics)
    pool = cluster.create_replicated_pool("pool", pg_num=PG_NUM, size=3)
    if qos:
        config = QosConfig(tenants={
            name: s for name, (s, _depth) in tenants.items() if s is not None
        })
        cluster.enable_qos(config)

    payload = bytes(BS)
    counts = {name: 0 for name in tenants}
    stop = {"flag": False}
    snap: dict[str, dict[str, int]] = {}

    for name, (_spec, depth) in tenants.items():
        client = cluster.new_client(f"tenant.{name}")
        client.tenant = name
        for wid in range(depth):
            env.process(
                _worker(env, client, pool, payload, counts, stop, wid),
                name=f"qos.{name}.{wid}",
            )

    def controller():
        yield env.timeout(warmup_ns)
        snap["warm"] = dict(counts)
        yield env.timeout(duration_ns - warmup_ns)
        snap["end"] = dict(counts)
        stop["flag"] = True

    env.process(controller(), name="qos.controller")
    env.run()

    window_s = (duration_ns - warmup_ns) / 1e9
    stats: dict[str, TenantStats] = {}
    for name in tenants:
        done = snap["end"][name] - snap["warm"][name]
        ops = metrics.counter(f"qos.tenant.{name}.ops").value
        res = metrics.counter(f"qos.tenant.{name}.res_ops").value
        wait = metrics.distribution(f"qos.tenant.{name}.queue_wait_ns")
        stats[name] = TenantStats(
            name=name,
            iops=done / window_s,
            op_iops=done * REPLICATION / window_s,
            total_writes=snap["end"][name],
            res_ops=res,
            sched_ops=ops,
            mean_wait_us=wait.mean() / 1e3,
            limit_waits=metrics.counter("qos.limit_waits").value,
        )
    aggregate = sum(s.iops for s in stats.values())

    fingerprint = hashlib.sha256()
    fingerprint.update(
        repr((
            sorted(snap["warm"].items()),
            sorted(snap["end"].items()),
            metrics.counter("qos.phase.reservation").value,
            metrics.counter("qos.phase.priority").value,
            metrics.counter("qos.limit_waits").value,
            env.now,
        )).encode()
    )
    return QosRunStats(
        tenants=stats,
        aggregate_iops=aggregate,
        reservation_phase=metrics.counter("qos.phase.reservation").value,
        priority_phase=metrics.counter("qos.phase.priority").value,
        limit_waits=metrics.counter("qos.limit_waits").value,
        digest=fingerprint.hexdigest()[:16],
    )


def _profile_label(spec: Optional[QosSpec]) -> str:
    if spec is None:
        return "default"
    parts = []
    if spec.reservation_iops:
        parts.append(f"res={spec.reservation_iops:g}")
    parts.append(f"w={spec.weight:g}")
    if spec.limit_iops is not None:
        parts.append(f"lim={spec.limit_iops:g}")
    return ",".join(parts)


def mixed_profiles(ntenants: int = 16) -> dict[str, tuple[Optional[QosSpec], int]]:
    """The >= 16-tenant sweep: four archetypes, round-robin."""
    archetypes = (
        QosSpec(reservation_iops=9_000, weight=1),
        QosSpec(weight=4),
        QosSpec(weight=2, limit_iops=6_000),
        None,  # default client profile
    )
    return {
        f"t{i:02d}": (archetypes[i % len(archetypes)], 4) for i in range(ntenants)
    }


def exp_qos(smoke: bool = False, seed: int = 0, ntenants: int = 16) -> ExperimentResult:
    """Many-tenant mixed-profile fairness sweep (>= 16 tenants)."""
    tenants = mixed_profiles(max(ntenants, 16))
    run = run_qos_scenario(
        tenants, seed=seed, duration_ns=ms(30) if smoke else DURATION,
        warmup_ns=ms(10) if smoke else WARMUP,
    )
    res = ExperimentResult(
        "qos",
        f"mClock fairness: {len(tenants)} tenants, mixed profiles, shared pool",
        ["tenant", "profile", "IOPS", "res%", "wait_us"],
    )
    for name, (spec, _depth) in tenants.items():
        s = run.tenants[name]
        res_share = 100 * s.res_ops / s.sched_ops if s.sched_ops else 0.0
        res.rows.append([
            name, _profile_label(spec), round(s.iops), round(res_share, 1),
            round(s.mean_wait_us, 1),
        ])
    res.notes = (
        f"aggregate {run.aggregate_iops:,.0f} IOPS; phases: "
        f"{run.reservation_phase} reservation / {run.priority_phase} priority; "
        f"{run.limit_waits} limit waits; digest {run.digest}"
    )
    return res


def qos_smoke(seed: int = 0) -> tuple[int, str]:
    """Seeded CI battery; returns ``(exit_code, report)``.

    Three tenants (reservation-heavy / weight-heavy / limit-capped)
    saturate the shared pool.  Nonzero when any fairness property
    fails: gold below its floor, bronze above its cap, a 3:1 weight
    pair splitting off-ratio by more than 10%, aggregate throughput
    under 95% of the unscheduled FIFO baseline, or two same-seed runs
    diverging.
    """
    battery = run_qos_scenario(BATTERY, seed=seed)
    rerun = run_qos_scenario(BATTERY, seed=seed)
    fifo = run_qos_scenario(BATTERY, seed=seed, qos=False)
    pair = run_qos_scenario(WEIGHT_PAIR, seed=seed)

    problems = []
    gold = battery.tenants["gold"]
    bronze = battery.tenants["bronze"]
    if gold.op_iops < RES_IOPS:
        problems.append(
            f"gold below reservation floor: {gold.op_iops:,.0f} < {RES_IOPS:,.0f} op-IOPS"
        )
    if bronze.op_iops > 1.02 * CAP_IOPS:
        problems.append(
            f"bronze above limit ceiling: {bronze.op_iops:,.0f} > {CAP_IOPS:,.0f} op-IOPS"
        )
    heavy = pair.tenants["heavy"].iops
    light = pair.tenants["light"].iops
    ratio = heavy / light if light else float("inf")
    if abs(ratio - 3.0) > 0.3:
        problems.append(f"weight split off-ratio: {heavy:,.0f}/{light:,.0f} = {ratio:.2f}, want 3.0 +/- 0.3")
    if battery.aggregate_iops < 0.95 * fifo.aggregate_iops:
        problems.append(
            f"not work-conserving: {battery.aggregate_iops:,.0f} < 95% of FIFO "
            f"{fifo.aggregate_iops:,.0f} IOPS"
        )
    if battery.digest != rerun.digest:
        problems.append(
            f"nondeterministic: digests {battery.digest} != {rerun.digest}"
        )
    if battery.reservation_phase == 0:
        problems.append("no reservation-phase dispatches: floor never exercised")
    if battery.limit_waits == 0:
        problems.append("no limit waits: ceiling never exercised")

    res = ExperimentResult(
        "qos-smoke",
        "3-tenant fairness battery vs FIFO baseline",
        ["tenant", "profile", "IOPS", "fifo IOPS", "res%", "wait_us"],
    )
    for name, (spec, _depth) in BATTERY.items():
        s = battery.tenants[name]
        f = fifo.tenants[name]
        res_share = 100 * s.res_ops / s.sched_ops if s.sched_ops else 0.0
        res.rows.append([
            name, _profile_label(spec), round(s.iops), round(f.iops),
            round(res_share, 1), round(s.mean_wait_us, 1),
        ])
    report = res.render()
    report += (
        f"\nweight pair: heavy {heavy:,.0f} / light {light:,.0f} IOPS "
        f"(ratio {ratio:.2f}); aggregate {battery.aggregate_iops:,.0f} vs FIFO "
        f"{fifo.aggregate_iops:,.0f} IOPS"
    )
    if problems:
        report += "\nSMOKE FAIL:\n" + "\n".join(f"  - {p}" for p in problems)
        return 1, report
    report += (
        f"\nSMOKE PASS: floor {gold.op_iops:,.0f} >= {RES_IOPS:,.0f} op-IOPS, cap "
        f"{bronze.op_iops:,.0f} <= {CAP_IOPS:,.0f} op-IOPS, split {ratio:.2f}, "
        f"work-conserving, deterministic (digest {battery.digest})"
    )
    return 0, report
