"""Health runs: drive a workload with the always-on health layer attached.

``run_health`` builds a framework with ``health=True`` (plus causal
tracing and metrics, so flagged slow ops arrive with full span trees),
drives one of the standard profile scenarios under the resource
sampler — registering :meth:`HealthLayer.poll` as a sampler gauge, so
periodic cluster evaluation rides the existing sampling grid without a
single extra simulation event — and returns the full deliverable:
the structured :class:`~repro.obs.health.HealthReport`, the slow-op
dumps with auto root-cause reports, per-tenant SLO burn rates, and the
Prometheus exposition page of the whole metrics registry.

``health_smoke`` is the CI gate.  It checks the three properties the
health tentpole promises:

* **neutrality** — a clean scenario with health attached produces the
  *identical* latency stream as one without (zero events scheduled),
  reports ``HEALTH_OK``, and flags nothing;
* **detection** — the chaos scenario (lossy fabric, retry/backoff
  legs) flags at least one slow op, and every dump carries an *exact*
  critical-path root cause naming the gating layer;
* **determinism** — two same-seed runs serialize to byte-identical
  JSON reports (asserted via sha256 of the canonical encoding).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional, Union

from ..deliba import PoolSpec, build_framework, framework_by_name
from ..obs.export import to_prometheus
from ..obs.health import HealthConfig, HealthReport
from ..obs.profile import (
    _CHAOS_CORRUPT_P,
    _CHAOS_DROP_P,
    _CHAOS_DUP_P,
    PROFILE_SCENARIOS,
    ProfileScenario,
)
from ..obs.sampler import DEFAULT_INTERVAL_NS, ResourceSampler, install_framework_probes
from ..obs.slowop import SlowOpConfig
from ..units import kib, mib, ms
from ..workloads.fio import FioJob

#: Default absolute latency budgets for chaos runs: short workloads
#: split across op classes may never reach the adaptive threshold's
#: warm-up sample count, but a retry spike (timeout + backoff + replay)
#: blows through 1 ms regardless, while the clean path stays well under.
_CHAOS_BUDGET_NS = {"read": ms(1), "write": ms(1)}


@dataclass
class HealthRunReport:
    """One health run: workload stats + the health deliverable."""

    scenario: str
    framework: str
    rw: str
    bs: int
    iodepth: int
    ios: int
    errors: int
    latencies_ns: list[int] = field(repr=False)
    health: HealthReport = field(repr=False, default=None)
    prometheus: str = field(repr=False, default="")
    end_ns: int = 0
    samples_taken: int = 0

    def to_dict(self, include_trees: bool = False) -> dict:
        return {
            "scenario": self.scenario,
            "framework": self.framework,
            "rw": self.rw,
            "bs": self.bs,
            "iodepth": self.iodepth,
            "ios": self.ios,
            "errors": self.errors,
            "end_ns": self.end_ns,
            "samples_taken": self.samples_taken,
            "health": self.health.to_dict(include_trees=include_trees),
        }

    def to_json(self, include_trees: bool = False) -> str:
        """Canonical encoding: sorted keys, no whitespace drift."""
        return json.dumps(self.to_dict(include_trees), sort_keys=True, indent=1)

    def digest(self) -> str:
        """sha256 of the canonical JSON (the determinism witness)."""
        return hashlib.sha256(self.to_json(include_trees=True).encode()).hexdigest()

    def render(self) -> str:
        lines = [
            f"health {self.scenario}: {self.framework} {self.ios} x {self.rw} "
            f"bs={self.bs} iodepth={self.iodepth} ({self.errors} errors, "
            f"{self.samples_taken} samples)",
            self.health.render(),
        ]
        return "\n".join(lines)


def run_health(
    scenario: Union[str, ProfileScenario],
    framework: str = "delibak",
    bs: int = kib(4),
    iodepth: int = 4,
    nrequests: int = 60,
    seed: int = 0,
    interval_ns: int = DEFAULT_INTERVAL_NS,
    health_config: Optional[HealthConfig] = None,
    attach_health: bool = True,
) -> HealthRunReport:
    """Run one scenario with the health layer attached and report.

    ``attach_health=False`` runs the identical workload without the
    layer — the neutrality half of the smoke comparison.
    """
    scn = PROFILE_SCENARIOS[scenario] if isinstance(scenario, str) else scenario
    cfg = framework_by_name(framework)
    if health_config is None and scn.chaos:
        health_config = HealthConfig(slowop=SlowOpConfig(budget_ns=dict(_CHAOS_BUDGET_NS)))
    if scn.chaos:
        from ..osd import FaultInjector

        from .chaos import _chaos_cluster_spec

        cluster_spec = _chaos_cluster_spec(seed, cfg.client_stack)
        pool_spec = PoolSpec(kind="replicated", size=3)
    else:
        cluster_spec = None
        pool_spec = PoolSpec(kind=scn.pool)
    object_size = bs if pool_spec.kind == "erasure" else None
    fw = build_framework(
        cfg,
        pool_spec=pool_spec,
        cluster_spec=cluster_spec,
        object_size=object_size,
        seed=seed,
        obs=True,
        metrics=True,
        health=(health_config or True) if attach_health else None,
    )
    if scn.chaos:
        FaultInjector(fw.cluster).set_message_faults(
            drop_p=_CHAOS_DROP_P, duplicate_p=_CHAOS_DUP_P, corrupt_p=_CHAOS_CORRUPT_P
        )
    job_kwargs = {"size": mib(32)} if scn.chaos else {}
    job = FioJob(
        f"health.{scn.name}", scn.rw, bs=bs, iodepth=iodepth, nrequests=nrequests, **job_kwargs
    )
    sampler = ResourceSampler(fw.env, fw.metrics, interval_ns)
    install_framework_probes(sampler, fw)
    if fw.health is not None:
        # Periodic cluster evaluation on the existing sampling grid:
        # the poll is a plain gauge probe, never a simulation event.
        sampler.add_gauge("health.status", fw.health.poll)
    proc = fw.env.process(fw.run_fio(job), name=f"health.{scn.name}")
    sampler.drive()
    if not proc.ok:
        raise proc.value
    result = proc.value

    health_report = (
        fw.health.report(fw.env.now)
        if fw.health is not None
        else HealthReport(status="HEALTH_OK", end_ns=fw.env.now, polls=0, checks=[])
    )
    return HealthRunReport(
        scenario=scn.name,
        framework=cfg.name,
        rw=scn.rw,
        bs=bs,
        iodepth=iodepth,
        ios=result.ios,
        errors=result.errors,
        latencies_ns=sorted(result.latencies_ns),
        health=health_report,
        prometheus=to_prometheus(fw.metrics, fw.env.now),
        end_ns=fw.env.now,
        samples_taken=sampler.samples_taken,
    )


#: The smoke pair: one clean scenario (must stay HEALTH_OK and neutral)
#: and the chaos scenario (must flag and explain slow ops).
SMOKE_CLEAN = "randwrite"
SMOKE_CHAOS = "chaos"


def health_smoke(seed: int = 0, nrequests: int = 40) -> tuple[int, str, HealthRunReport]:
    """Seeded CI smoke; returns ``(exit_code, text, chaos_report)``."""
    problems: list[str] = []
    rows: list[str] = []

    clean = run_health(SMOKE_CLEAN, seed=seed, nrequests=nrequests)
    bare = run_health(SMOKE_CLEAN, seed=seed, nrequests=nrequests, attach_health=False)
    if clean.latencies_ns != bare.latencies_ns:
        problems.append("neutrality: latency stream differs with health attached")
    if clean.health.status != "HEALTH_OK":
        problems.append(f"clean run not HEALTH_OK: {clean.health.status}")
    flagged = clean.health.flight.get("promoted", 0) + clean.health.flight.get("missed", 0)
    if flagged:
        problems.append(f"clean run flagged {flagged} slow op(s)")
    rows.append(
        f"{SMOKE_CLEAN:10s} {clean.ios:4d} ios  status {clean.health.status:12s} "
        f"neutral {'yes' if clean.latencies_ns == bare.latencies_ns else 'NO'}"
    )

    chaos = run_health(SMOKE_CHAOS, seed=seed, nrequests=nrequests)
    rerun = run_health(SMOKE_CHAOS, seed=seed, nrequests=nrequests)
    if not chaos.health.slow_ops:
        problems.append("chaos run flagged no slow ops")
    for dump in chaos.health.slow_ops:
        if not dump.cause.exact:
            problems.append(f"slow op #{dump.record.seq}: inexact critical path")
        if not dump.cause.gating_stage:
            problems.append(f"slow op #{dump.record.seq}: no gating stage attributed")
    if chaos.digest() != rerun.digest():
        problems.append("chaos report not deterministic across same-seed runs")
    if "repro_health_slow_ops" not in chaos.prometheus:
        problems.append("prometheus page missing health counters")
    rows.append(
        f"{SMOKE_CHAOS:10s} {chaos.ios:4d} ios  status {chaos.health.status:12s} "
        f"slow-ops {len(chaos.health.slow_ops)}  digest {chaos.digest()[:12]}"
    )

    text = "\n".join(rows)
    if problems:
        text += "\nHEALTH SMOKE FAIL:\n" + "\n".join(f"  - {p}" for p in problems)
        return 1, text, chaos
    text += (
        f"\nHEALTH SMOKE PASS: clean neutral + HEALTH_OK, chaos flagged "
        f"{len(chaos.health.slow_ops)} slow op(s) with exact root causes"
    )
    return 0, text, chaos
