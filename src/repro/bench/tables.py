"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in str_rows), default=0))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}" if abs(cell) < 100 else f"{cell:.1f}"
    return str(cell)


def ratio_note(measured: float, reference: float) -> str:
    """'measured (paper ref, xx% off)' summary cell."""
    if reference == 0:
        return f"{measured:.2f}"
    delta = 100.0 * (measured - reference) / reference
    return f"{measured:.1f} (paper {reference:.1f}, {delta:+.0f}%)"
