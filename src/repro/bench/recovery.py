"""Self-healing experiment: recovery under live client IO.

Exercises the online recovery subsystem (``repro.osd.recovery``): kill
an OSD mid-workload, let the PG state machine peer and the background
agents backfill every missing copy through the real fabric, then revive
(or expand) and converge again — all while a client keeps reading and
writing the same objects.  Reports recovery time, bytes moved, client
IO served while degraded, and the availability invariant (zero client
hard-failures throughout).

The throttle sweep measures the client-vs-recovery tradeoff the
:class:`~repro.osd.recovery.RecoveryConfig` knobs expose: in-flight
window, bytes/s cap, and client-priority backoff.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from ..errors import StorageError
from ..osd import (
    ClusterSpec,
    DurabilityConfig,
    OpPolicy,
    OsdConfig,
    RecoveryConfig,
    Scrubber,
    build_cluster,
)
from ..sim import Environment, MetricsRegistry
from ..units import ms, us
from .experiments import ExperimentResult

#: Testbed: two server hosts x four OSDs (small enough for CI, large
#: enough that one OSD's loss remaps a good fraction of the PGs).
SERVERS = 2
OSDS_PER_HOST = 4
PG_NUM = 16
#: Client op policy: short timeouts + generous retries so IO against a
#: just-killed OSD fails over instead of hanging or surfacing an error.
OP_POLICY = OpPolicy(timeout_ns=ms(20), max_attempts=12)
OSD_CONFIG = OsdConfig(subop_timeout_ns=ms(5))


@dataclass(frozen=True)
class RecoveryScenario:
    """One kill/heal schedule applied to a run."""

    name: str
    pool_kind: str = "replicated"  # or "ec"
    kill: tuple[int, ...] = (3,)
    revive: bool = False
    config: Optional[RecoveryConfig] = None
    #: Kill by cutting power instead of wiping: the OSD keeps its WAL
    #: and store, so the revive replays the log and recovery ships only
    #: the ops missed since the crash epoch (log-based delta recovery)
    #: instead of unconditionally backfilling every object.
    power_cycle: bool = False


SCENARIOS = (
    RecoveryScenario("rep-kill1", "replicated", kill=(3,)),
    RecoveryScenario("rep-kill1-revive", "replicated", kill=(3,), revive=True),
    RecoveryScenario("ec-kill1", "ec", kill=(3,)),
    RecoveryScenario("ec-kill1-revive", "ec", kill=(3,), revive=True),
)

#: Power-cycle counterpart of ``rep-kill1-revive``, kept out of
#: ``SCENARIOS`` (its delta push is intentionally tiny): the revived OSD
#: replays its WAL, so only objects written during the outage move.
DELTA_SCENARIO = RecoveryScenario(
    "rep-power-cycle", "replicated", kill=(3,), revive=True, power_cycle=True
)

#: Throttle sweep: same revive scenario, different RecoveryConfigs.
THROTTLE_CONFIGS = (
    ("window1", RecoveryConfig(max_inflight_ops=1)),
    ("window8", RecoveryConfig(max_inflight_ops=8)),
    ("capped", RecoveryConfig(max_inflight_ops=8, bytes_per_sec=20_000_000)),
    ("yield", RecoveryConfig(max_inflight_ops=8, client_priority=True)),
)


@dataclass
class RecoveryRunStats:
    """Outcome of one scenario run."""

    scenario: str
    objects: int
    recovery_ns: int
    bytes_pushed: int
    objects_recovered: int
    pgs_recovered: int
    trims: int
    client_ios: int
    client_failures: int
    degraded_placements: int
    gate_waits: int
    read_mismatches: int
    scrub_clean: bool
    unrecoverable: int
    pg_states: dict
    digest: str


def _build(
    seed: int,
    pool_kind: str,
    config: Optional[RecoveryConfig],
    durable: bool = False,
):
    env = Environment()
    metrics = MetricsRegistry()
    spec = ClusterSpec(
        num_server_hosts=SERVERS,
        osds_per_host=OSDS_PER_HOST,
        op_policy=OP_POLICY,
        osd_config=OSD_CONFIG,
        durability=DurabilityConfig() if durable else None,
        seed=seed,
    )
    cluster = build_cluster(env, spec, metrics=metrics)
    if pool_kind == "replicated":
        pool = cluster.create_replicated_pool("pool", pg_num=PG_NUM, size=3)
    else:
        pool = cluster.create_erasure_pool("pool", pg_num=PG_NUM, k=4, m=2)
    manager = cluster.enable_recovery(config or RecoveryConfig())
    return env, metrics, cluster, pool, manager


def _write(client, pool, name, data):
    if pool.pool_type.value == "replicated":
        yield from client.write_replicated(pool, name, data, direct=True)
    else:
        yield from client.write_ec(pool, name, data, direct=True)


def _read(client, pool, name, length):
    if pool.pool_type.value == "replicated":
        data = yield from client.read_replicated(pool, name, 0, length)
    else:
        data = yield from client.read_ec(pool, name, length, direct=True)
    return data


def _client_load(env, client, pool, payload, stats, stop):
    """Process: keep reading and rewriting objects until told to stop.

    Every IO that raises counts as a hard failure — the availability
    invariant is that this stays zero while the cluster heals."""
    names = sorted(payload)
    i = 0
    while not stop["flag"]:
        name = names[i % len(names)]
        try:
            if i % 3 == 2:
                yield from _write(client, pool, name, payload[name])
            else:
                got = yield from _read(client, pool, name, len(payload[name]))
                if got != payload[name]:
                    stats["mismatches"] += 1
            stats["ios"] += 1
        except StorageError:
            stats["failures"] += 1
        i += 1
        yield env.timeout(us(200))


def run_recovery_scenario(
    scenario: RecoveryScenario, seed: int = 0, nobjects: int = 24
) -> RecoveryRunStats:
    """Build a fresh testbed, run one kill/heal schedule, collect stats."""
    env, metrics, cluster, pool, manager = _build(
        seed, scenario.pool_kind, scenario.config, durable=scenario.power_cycle
    )
    client = cluster.new_client()
    verifier = cluster.new_client("verifier")
    payload = {
        f"obj{i:03d}": bytes([(i * 7 + j) % 251 for j in range(4096)])
        for i in range(nobjects)
    }
    load_stats = {"ios": 0, "failures": 0, "mismatches": 0}
    stop = {"flag": False}
    out: dict = {}

    def main():
        for name, data in payload.items():
            yield from _write(client, pool, name, data)
        env.process(
            _client_load(env, client, pool, payload, load_stats, stop),
            name="recovery.load",
        )
        t0 = env.now
        for osd_id in scenario.kill:
            if scenario.power_cycle:
                # Power cut, not a wipe: the daemon stops with the AGAIN
                # status, the volatile cache resolves under seeded
                # fates, and the map marks it down so IO re-places.
                cluster.power_loss_osd(osd_id)
                cluster.osdmap.mark_down(osd_id)
            else:
                cluster.fail_osd(osd_id)
        yield from manager.wait_converged()
        if scenario.revive:
            for osd_id in scenario.kill:
                if scenario.power_cycle:
                    cluster.power_on_osd(osd_id)
                else:
                    cluster.monitor.revive_osd(osd_id)
            yield from manager.wait_converged()
        out["recovery_ns"] = env.now - t0
        stop["flag"] = True
        # Verify through a second client: every byte identical.
        mismatches = 0
        for name, data in payload.items():
            got = yield from _read(verifier, pool, name, len(data))
            if got != data:
                mismatches += 1
        out["read_mismatches"] = mismatches
        scrubber = Scrubber(env, cluster.monitor)
        report = yield from scrubber.scrub(pool, deep=True)
        out["scrub_clean"] = report.clean

    proc = env.process(main(), name=f"recovery.{scenario.name}")
    env.run()
    if not proc.ok:
        raise proc.value

    fingerprint = hashlib.sha256()
    fingerprint.update(
        repr((
            out["recovery_ns"],
            metrics.counter("recovery.bytes_pushed").value,
            metrics.counter("recovery.objects_recovered").value,
            metrics.counter("recovery.trims").value,
            load_stats["ios"],
            load_stats["failures"],
            sorted(manager.pg_states().items()),
        )).encode()
    )
    return RecoveryRunStats(
        scenario=scenario.name,
        objects=nobjects,
        recovery_ns=out["recovery_ns"],
        bytes_pushed=metrics.counter("recovery.bytes_pushed").value,
        objects_recovered=metrics.counter("recovery.objects_recovered").value,
        pgs_recovered=manager.pgs_recovered,
        trims=metrics.counter("recovery.trims").value,
        client_ios=load_stats["ios"],
        client_failures=load_stats["failures"],
        degraded_placements=client.degraded_placements,
        gate_waits=metrics.counter("recovery.write_gate_waits").value,
        read_mismatches=out["read_mismatches"] + load_stats["mismatches"],
        scrub_clean=out["scrub_clean"],
        unrecoverable=manager.objects_unrecoverable,
        pg_states=manager.pg_states(),
        digest=fingerprint.hexdigest()[:16],
    )


def _result_table(stats: list[RecoveryRunStats]) -> ExperimentResult:
    res = ExperimentResult(
        "recover",
        "online self-healing: recovery under live client IO",
        ["scenario", "objs", "rec_ms", "pushMB", "moved", "pgs", "trim",
         "cIO", "cFail", "degr", "gate", "clean"],
    )
    for s in stats:
        res.rows.append([
            s.scenario, s.objects, round(s.recovery_ns / 1e6, 2),
            round(s.bytes_pushed / 1e6, 2), s.objects_recovered,
            s.pgs_recovered, s.trims, s.client_ios, s.client_failures,
            s.degraded_placements, s.gate_waits,
            "y" if s.scrub_clean and not s.read_mismatches else "N",
        ])
    return res


def exp_recovery(smoke: bool = False, seed: int = 0) -> ExperimentResult:
    """All kill/heal scenarios plus the recovery-throttle sweep."""
    nobjects = 12 if smoke else 24
    stats = [run_recovery_scenario(s, seed=seed, nobjects=nobjects) for s in SCENARIOS]
    res = _result_table(stats)
    sweep = []
    for tag, config in THROTTLE_CONFIGS:
        s = run_recovery_scenario(
            RecoveryScenario(f"rep-revive-{tag}", "replicated", kill=(3,),
                             revive=True, config=config),
            seed=seed, nobjects=nobjects,
        )
        sweep.append(f"{tag}: {s.recovery_ns / 1e6:.2f} ms, {s.client_ios} client IOs")
    delta = run_recovery_scenario(DELTA_SCENARIO, seed=seed, nobjects=nobjects)
    full = next(s for s in stats if s.scenario == "rep-kill1-revive")
    res.notes = (
        "throttle sweep (rep-kill1-revive): " + "; ".join(sweep)
        + f"; delta recovery (rep-power-cycle, WAL replay): "
        f"{delta.bytes_pushed / 1e6:.3f} MB pushed vs "
        f"{full.bytes_pushed / 1e6:.3f} MB full backfill"
    )
    return res


def recover_smoke(seed: int = 0, nobjects: int = 12) -> tuple[int, str]:
    """Seeded CI smoke: kill + revive under client load, both pool kinds.

    Returns ``(exit_code, report)``; nonzero when any invariant fails:
    zero client hard-failures while degraded, byte-identical reads
    through a second client, clean deep scrub, recovery bytes actually
    moved through the fabric, and bit-identical stats across two
    same-seed runs.
    """
    scenarios = [SCENARIOS[1], SCENARIOS[3]]  # rep + ec, kill then revive
    stats = [run_recovery_scenario(s, seed=seed, nobjects=nobjects) for s in scenarios]
    rerun = run_recovery_scenario(scenarios[0], seed=seed, nobjects=nobjects)
    problems = []
    for s in stats:
        if s.client_failures:
            problems.append(f"{s.scenario}: {s.client_failures} client hard-failures")
        if s.read_mismatches:
            problems.append(f"{s.scenario}: {s.read_mismatches} read mismatches")
        if not s.scrub_clean:
            problems.append(f"{s.scenario}: deep scrub found inconsistencies")
        if s.bytes_pushed == 0:
            problems.append(f"{s.scenario}: no recovery bytes moved through the fabric")
        if s.unrecoverable:
            problems.append(f"{s.scenario}: {s.unrecoverable} unrecoverable objects")
    if rerun.digest != stats[0].digest:
        problems.append(
            f"nondeterministic: digests {stats[0].digest} != {rerun.digest}"
        )
    report = _result_table(stats).render()
    if problems:
        report += "\nSMOKE FAIL:\n" + "\n".join(f"  - {p}" for p in problems)
        return 1, report
    report += (
        f"\nSMOKE PASS: {sum(s.client_ios for s in stats)} client IOs under "
        f"recovery, 0 hard-failures, scrub clean, deterministic "
        f"(digest {stats[0].digest})"
    )
    return 0, report
