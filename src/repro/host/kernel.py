"""HostKernel: bundles cores and cost constants for one client node."""

from __future__ import annotations

from typing import Generator, Optional

from ..sim import Environment
from .costs import SKYLAKE, HostCosts
from .cpu import CpuCore, CpuSet


class HostKernel:
    """The client machine: CPU set + cost model + accounting."""

    def __init__(
        self,
        env: Environment,
        num_cores: int = 28,
        costs: Optional[HostCosts] = None,
    ):
        self.env = env
        self.cpus = CpuSet(env, num_cores)
        self.costs = costs or SKYLAKE
        self.syscalls = 0
        self.context_switches = 0
        self.bytes_copied = 0

    def syscall(self, core: CpuCore, extra_ns: int = 0) -> Generator:
        """Process: one user->kernel->user crossing plus ``extra_ns`` work."""
        self.syscalls += 1
        yield from core.run(self.costs.syscall_ns + extra_ns)

    def context_switch(self, core: CpuCore) -> Generator:
        """Process: one full context switch on ``core``."""
        self.context_switches += 1
        yield from core.run(self.costs.context_switch_ns)

    def copy(self, core: CpuCore, nbytes: int) -> Generator:
        """Process: copy ``nbytes`` across the user/kernel boundary."""
        self.bytes_copied += nbytes
        yield from core.run(self.costs.copy_ns(nbytes))

    def interrupt(self, core: CpuCore) -> Generator:
        """Process: take a hardware interrupt on ``core``."""
        yield from core.run(self.costs.interrupt_ns)

    def poll_once(self, core: CpuCore) -> Generator:
        """Process: one completion-queue poll."""
        yield from core.run(self.costs.poll_ns)
