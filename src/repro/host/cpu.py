"""CPU cores with affinity — the substrate of DeLiBA-K's multi-instance design.

Each :class:`CpuCore` is a single-slot resource; compute time is spent by
holding the core.  :class:`CpuSet` models the client node's socket and
implements ``sched_setaffinity``-style pinning: DeLiBA-K binds each
io_uring instance's submission thread to a dedicated core (paper
Section III-A), which the benchmarks reproduce by pinning engine
instances to distinct cores.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..errors import SimulationError
from ..sim import Environment, Resource


class CpuCore:
    """One core: exclusive execution, with busy-time accounting."""

    def __init__(self, env: Environment, core_id: int):
        self.env = env
        self.core_id = core_id
        self._res = Resource(env, capacity=1, name=f"cpu{core_id}")
        self.busy_ns = 0

    def run(self, duration: int, priority: int = 0) -> Generator:
        """Process: execute for ``duration`` ns on this core (queued FIFO)."""
        if duration < 0:
            raise SimulationError(f"negative cpu time {duration}")
        if duration == 0:
            return
        req = self._res.request(priority)
        yield req
        try:
            yield self.env.timeout(duration)
            self.busy_ns += duration
        finally:
            self._res.release(req)

    @property
    def load(self) -> float:
        """Fraction of elapsed simulation time this core was busy."""
        return self.busy_ns / self.env.now if self.env.now else 0.0

    @property
    def contended(self) -> bool:
        """True when runnable work is queued behind the current occupant."""
        return self._res.queue_len > 0

    def __repr__(self) -> str:
        return f"<CpuCore {self.core_id} busy={self.busy_ns}ns>"


class CpuSet:
    """The client node's cores (28 for the paper's Sky Lake-E)."""

    def __init__(self, env: Environment, num_cores: int = 28):
        if num_cores < 1:
            raise SimulationError(f"need >= 1 core, got {num_cores}")
        self.env = env
        self.cores = [CpuCore(env, i) for i in range(num_cores)]
        self._next_unpinned = 0

    def __len__(self) -> int:
        return len(self.cores)

    def core(self, core_id: int) -> CpuCore:
        """Lookup by id."""
        if not 0 <= core_id < len(self.cores):
            raise SimulationError(f"no core {core_id} (have {len(self.cores)})")
        return self.cores[core_id]

    def pick_core(self, affinity: Optional[int] = None) -> CpuCore:
        """Pinned core when ``affinity`` is given, else round-robin.

        Round-robin without pinning stands in for the scheduler's load
        balancing; the cache-locality benefit of pinning is charged in
        the engine cost models, not here.
        """
        if affinity is not None:
            return self.core(affinity)
        core = self.cores[self._next_unpinned % len(self.cores)]
        self._next_unpinned += 1
        return core

    def total_busy_ns(self) -> int:
        """Aggregate busy time across cores."""
        return sum(c.busy_ns for c in self.cores)
