"""Host cost model: syscalls, context switches, memory copies, interrupts.

These constants parameterize everything the paper's host-side redesign
attacks: DeLiBA-1 paid ~6 user/kernel crossings per I/O, DeLiBA-2 five
copies, DeLiBA-K one batched ``io_uring_enter`` for many I/Os.  Values
are calibrated for a Sky Lake-E class server (the paper's client node)
and documented per field.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import transfer_ns


@dataclass(frozen=True)
class HostCosts:
    """Per-event host costs in nanoseconds."""

    #: Mode switch of one syscall (enter+exit), post-Meltdown mitigations.
    syscall_ns: int = 1_000
    #: Full context switch between processes/threads (schedule + cache refill).
    context_switch_ns: int = 2_000
    #: Memory copy bandwidth for user<->kernel copies (single core, ~8 GB/s).
    copy_bw: float = 8.0e9
    #: Fixed setup per copy (copy_(to|from)_user invocation).
    copy_fixed_ns: int = 150
    #: Hardware interrupt delivery + handler entry.
    interrupt_ns: int = 2_000
    #: One poll of a completion queue (cache-line read + branch).
    poll_ns: int = 120
    #: Page-fault service (mmap path).
    page_fault_ns: int = 2_800

    def copy_ns(self, nbytes: int) -> int:
        """Time to copy ``nbytes`` between user and kernel space."""
        if nbytes <= 0:
            return 0
        return self.copy_fixed_ns + transfer_ns(nbytes, self.copy_bw)


#: Default calibration (client node: Intel Sky Lake-E, RHEL 9.4).
SKYLAKE = HostCosts()
