"""Host-side substrate: CPU cores, affinity, and kernel cost models."""

from .costs import SKYLAKE, HostCosts
from .cpu import CpuCore, CpuSet
from .kernel import HostKernel

__all__ = ["CpuCore", "CpuSet", "HostCosts", "HostKernel", "SKYLAKE"]
