"""Framework assembly: build a full stack from a :class:`FrameworkConfig`.

``build_framework`` wires together every substrate — cluster + network,
host kernel, FPGA (when the generation has one), driver, block layer,
and API engine — and returns a :class:`FrameworkInstance` that can run
fio jobs end to end.  This is the library's primary entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Union

from ..api import (
    LibAioEngine,
    MmapEngine,
    PosixAioEngine,
    RunResult,
    SyncEngine,
    UringEngine,
    UringMode,
)
from ..blk import BlockLayer
from ..cache import CacheConfig, CachedImage
from ..driver import NbdConfig, NbdDriver, RbdKmodConfig, RbdKmodDriver, UifdConfig, UifdDriver
from ..errors import BenchmarkError
from ..fpga import Accelerator, AlveoU280, PcieLink, QdmaEngine, spec_by_name
from ..host import HostKernel
from ..osd import CephCluster, ClusterSpec, Pool, RBDImage, build_cluster
from ..sim import NULL_METRICS, Environment, MetricsRegistry, RngRegistry
from ..units import kib, mib
from ..trace import Tracer
from ..workloads.fio import FioJob
from .config import FrameworkConfig

#: CRUSH bucket kernel the placement accelerator implements (the cluster
#: builders use straw2 buckets, so that is what the FPGA accelerates).
PLACEMENT_KERNEL = "straw2"


@dataclass
class PoolSpec:
    """Durability scheme for the benchmark pool."""

    kind: str = "replicated"  # or "erasure"
    size: int = 2  # replicas (2 servers -> one copy per host)
    k: int = 4
    m: int = 2
    pg_num: int = 128


class FrameworkInstance:
    """A fully assembled stack ready to run workloads."""

    def __init__(
        self,
        env: Environment,
        config: FrameworkConfig,
        cluster: CephCluster,
        kernel: HostKernel,
        pool: Pool,
        image: RBDImage,
        driver,
        blk: BlockLayer,
        engine,
        fpga: Optional[AlveoU280] = None,
        qdma: Optional[QdmaEngine] = None,
        accelerators: Optional[dict[str, Accelerator]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.env = env
        self.config = config
        self.cluster = cluster
        self.kernel = kernel
        self.pool = pool
        self.image = image
        self.driver = driver
        self.blk = blk
        self.engine = engine
        self.fpga = fpga
        self.qdma = qdma
        self.accelerators = accelerators or {}
        self.rng = RngRegistry(cluster.spec.seed)
        #: Lifecycle tracer (populated when built with ``trace=True``).
        self.tracer: Optional[Tracer] = None
        #: Client-side cache tier (populated when built with ``cache=...``).
        self.cache: Optional[CachedImage] = None
        #: Always-on health layer (populated when built with ``health=...``).
        self.health = None
        #: Stack-wide metrics registry (no-op unless built with ``metrics=True``).
        self.metrics: MetricsRegistry = metrics or NULL_METRICS

    def prefill(self, offsets: list[int], bs: int) -> Generator:
        """Process: write the given blocks so subsequent reads find data.

        Runs before the measured window; only the blocks a job will
        actually touch are written (they are deterministic given the
        job's RNG stream).
        """
        fill = b"\xA5" * bs
        saved = self.image.direct
        self.image.direct = True  # fastest path; prefill time is not measured
        try:
            for offset in offsets:
                yield from self.image.write(offset, fill, sequential=True)
        finally:
            self.image.direct = saved

    def run_fio(self, job: FioJob, prefill: bool = True) -> Generator:
        """Process: run one fio job; returns :class:`RunResult`.

        With ``numjobs > 1``, that many independent copies run
        concurrently through the shared engine (fio semantics: work
        multiplies) and the merged result is returned.
        """
        from ..api import RunResult
        from ..blk import IoOp  # local import to keep module deps flat

        all_bios = [
            job.make_bios(self.rng.stream(f"fio.{job.name}.j{j}"))
            for j in range(job.numjobs)
        ]
        read_offsets = sorted(
            {b.offset for bios in all_bios for b in bios if b.op == IoOp.READ}
        )
        if prefill and read_offsets:
            yield from self.prefill(read_offsets, job.bs)
        # Open the job-level measurement window at submission start (not
        # at the first completion) so the first op's service time counts.
        meter = self.metrics.meter(f"framework.{job.name}.throughput")
        meter.start(self.env.now)
        if job.numjobs == 1:
            result = yield from self.engine.run(all_bios[0], job.iodepth)
            meter.record(result.bytes_moved, result.finished_at)
            return result
        # Like fio, each job gets its own submission context (own rings /
        # threads) over the shared block layer; CPU cores are shared, so
        # host-side contention between jobs is real.
        engines = [self.engine] + [
            _build_engine(self.env, self.kernel, self.blk, self.config)
            for _ in range(job.numjobs - 1)
        ]
        procs = [
            self.env.process(engine.run(bios, job.iodepth), name=f"fio.j{j}")
            for j, (engine, bios) in enumerate(zip(engines, all_bios))
        ]
        results = yield self.env.all_of(procs)
        merged = RunResult(started_at=min(r.started_at for r in results.values()))
        merged.finished_at = max(r.finished_at for r in results.values())
        for r in results.values():
            merged.latencies_ns.extend(r.latencies_ns)
            merged.bytes_moved += r.bytes_moved
            merged.errors += r.errors
        meter.record(merged.bytes_moved, merged.finished_at)
        return merged


def _build_engine(env, kernel, blk, config: FrameworkConfig):
    if config.api == "sync":
        return SyncEngine(env, kernel, blk)
    if config.api == "libaio":
        return LibAioEngine(env, kernel, blk)
    if config.api == "posix-aio":
        return PosixAioEngine(env, kernel, blk)
    if config.api == "mmap":
        return MmapEngine(env, kernel, blk)
    if config.uring_interrupt:
        mode = UringMode.INTERRUPT
    elif config.uring_sqpoll:
        mode = UringMode.SQPOLL
    else:
        mode = UringMode.POLL
    return UringEngine(
        env,
        kernel,
        blk,
        num_instances=config.uring_instances,
        mode=mode,
        batch_size=config.uring_batch,
        pin_cores=config.uring_pin_cores,
    )


def build_framework(
    config: FrameworkConfig,
    pool_spec: Optional[PoolSpec] = None,
    cluster_spec: Optional[ClusterSpec] = None,
    env: Optional[Environment] = None,
    image_size: int = mib(256),
    object_size: Optional[int] = None,
    seed: int = 0,
    trace: bool = False,
    obs: bool = False,
    metrics: Union[bool, MetricsRegistry] = False,
    cache: Optional[CacheConfig] = None,
    health=None,
) -> FrameworkInstance:
    """Assemble one generation of the stack over a fresh cluster.

    ``object_size`` defaults to 4 MiB for replicated pools and must equal
    the workload block size for EC pools (whole-object encode model).
    With ``metrics=True`` every layer registers its instruments into one
    shared :class:`MetricsRegistry` (``fw.metrics``); the default is a
    no-op registry, so instrumentation costs nothing and results are
    bit-identical either way.  Pass an existing registry to share one
    across frameworks.

    ``obs=True`` upgrades the tracer to a causal
    :class:`repro.obs.CausalTracer` (implies ``trace``): in addition to
    the flat stage stream, every request grows a span *tree* with
    parent/child edges at each layer hand-off, fan-out, and retry leg —
    the input to ``python -m repro profile``.  Neither tracer changes
    the simulated event stream.

    ``cache=CacheConfig(...)`` interposes an Open-CAS-style client block
    cache (:class:`repro.cache.CachedImage`) between the driver and the
    RBD image; pass-through mode delegates untouched, so a PT cache is
    event-identical to no cache at all.  On erasure pools the cache line
    is forced to the object size (the EC datapath models whole-object
    encode/decode, so line fills must be object-aligned).

    ``health=True`` (or a :class:`repro.obs.health.HealthConfig`)
    attaches the always-on cluster health layer — slow-op detector,
    flight recorder, SLO burn tracking — as ``fw.health``.  The hooks
    are completion-path bookkeeping only; no simulation events are
    scheduled, so the event stream stays identical to a run without it.
    """
    pool_spec = pool_spec or PoolSpec()
    env = env or Environment()
    if metrics is True:
        registry: MetricsRegistry = MetricsRegistry()
    elif metrics:
        registry = metrics  # caller-supplied registry
    else:
        registry = NULL_METRICS
    spec = cluster_spec or ClusterSpec(seed=seed, client_stack=config.client_stack)
    cluster = build_cluster(env, spec, metrics=registry)
    if pool_spec.kind == "replicated":
        fault_domain = 1 if pool_spec.size <= spec.num_server_hosts else 0
        pool = cluster.osdmap.create_replicated_pool(
            "bench", pool_spec.pg_num, pool_spec.size, cluster.root_id, fault_domain
        )
    elif pool_spec.kind == "erasure":
        pool = cluster.create_erasure_pool("bench", pool_spec.pg_num, pool_spec.k, pool_spec.m)
    else:
        raise BenchmarkError(f"unknown pool kind {pool_spec.kind!r}")
    client = cluster.new_client("client0", stack=config.client_stack)
    if object_size is None:
        object_size = kib(4) if pool_spec.kind == "erasure" else mib(4)
    image = RBDImage("bench", image_size, pool, client, object_size=object_size)
    cache_tier: Optional[CachedImage] = None
    if cache is not None:
        if pool_spec.kind == "erasure" and cache.line_size != object_size:
            from dataclasses import replace

            cache = replace(cache, line_size=object_size)
        cache_tier = CachedImage(image, cache, metrics=registry)
        image = cache_tier
    kernel = HostKernel(env)
    if obs:
        from ..obs.context import CausalTracer

        tracer: Optional[Tracer] = CausalTracer(env)
    else:
        tracer = Tracer(env) if trace else None

    fpga = qdma = None
    accelerators: dict[str, Accelerator] = {}
    if config.hardware:
        fpga = AlveoU280()
        pcie = PcieLink(env)
        qdma = QdmaEngine(env, pcie, metrics=registry)
        accelerators["crush"] = Accelerator(
            env, spec_by_name(PLACEMENT_KERNEL, impl=config.accel_impl)
        )
        accelerators["ec"] = Accelerator(env, spec_by_name("rs_encoder", impl=config.accel_impl))

    if config.driver == "rbd_kmod":
        driver = RbdKmodDriver(env, kernel, image, RbdKmodConfig())
    elif config.driver == "nbd":
        driver = NbdDriver(
            env,
            kernel,
            image,
            NbdConfig(crossings=config.nbd_crossings, passive_offload=config.passive_offload),
            qdma=qdma,
            crush_accel=accelerators.get("crush"),
            ec_accel=accelerators.get("ec"),
            hardware=config.hardware,
            tracer=tracer,
        )
    else:
        driver = UifdDriver(
            env,
            kernel,
            image,
            UifdConfig(client_fanout=config.client_fanout),
            qdma=qdma,
            crush_accel=accelerators.get("crush"),
            ec_accel=accelerators.get("ec"),
            hardware=config.hardware,
            tracer=tracer,
            metrics=registry,
        )

    blk = BlockLayer(env, kernel, driver.queue_rq, config.blk, tracer=tracer, metrics=registry)
    engine = _build_engine(env, kernel, blk, config)
    fw = FrameworkInstance(
        env, config, cluster, kernel, pool, image, driver, blk, engine, fpga, qdma, accelerators,
        metrics=registry,
    )
    fw.tracer = tracer
    fw.cache = cache_tier
    if health:
        from ..obs.health import HealthConfig, HealthLayer

        health_config = health if isinstance(health, HealthConfig) else None
        HealthLayer(env, health_config, metrics=registry).attach(fw)
    return fw


def run_job_on(config: FrameworkConfig, job: FioJob, pool_spec: Optional[PoolSpec] = None, seed: int = 0) -> RunResult:
    """Convenience: build a fresh stack, run one job, return the result."""
    object_size = job.bs if (pool_spec and pool_spec.kind == "erasure") else None
    fw = build_framework(config, pool_spec=pool_spec, object_size=object_size, seed=seed)
    proc = fw.env.process(fw.run_fio(job), name=f"{config.name}:{job.name}")
    fw.env.run()
    if not proc.ok:
        raise proc.value
    return proc.value
