"""Framework generation configs: software Ceph, DeLiBA-1, -2, and -K.

Each :class:`FrameworkConfig` states *structurally* how a generation is
built — which host API, block layer, driver, TCP stack, and accelerator
implementation — so performance differences in the benchmarks emerge
from the composition rather than per-experiment tuning.

Calibration notes
-----------------
* The testbed (2 servers x 16 OSDs on measured 9.8 Gb/s 10 GbE) means a
  replicated pool of size 2 with host-level fault domains: one copy per
  server, matching what the wire can carry at the paper's large-block
  throughput numbers.
* Software placement/EC costs are the per-op profiled times of paper
  Table I; hardware costs come from the QDMA/accelerator models.
* DeLiBA-1 is a *passive* offload (Section I): each placement requires a
  host-initiated FPGA round trip, while D2/DK run the accelerators in
  the datapath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..blk import DMQ_CONFIG, BlkMqConfig
from ..errors import BenchmarkError
from ..net.stack import HLS_TCP, KERNEL_TCP, RTL_TCP, StackProfile


@dataclass(frozen=True)
class FrameworkConfig:
    """One storage-stack generation."""

    name: str
    label: str
    #: Host API: 'sync', 'libaio', 'posix-aio', 'mmap', or 'uring'.
    api: str
    #: Driver: 'rbd_kmod', 'nbd', or 'uifd'.
    driver: str
    #: FPGA datapath present?
    hardware: bool
    #: TCP stack used for the client's OSD traffic.
    client_stack: StackProfile
    #: Accelerator implementation ('rtl' or 'hls'); None = software.
    accel_impl: Optional[str]
    #: Block-layer shape.
    blk: BlkMqConfig = field(default_factory=BlkMqConfig)
    #: NBD user/kernel crossings (NBD driver only).
    nbd_crossings: int = 0
    #: Passive offload: host-initiated FPGA round trip per placement (D1).
    passive_offload: bool = False
    #: io_uring engine parameters (uring API only).
    uring_instances: int = 3
    uring_batch: int = 16
    uring_sqpoll: bool = True
    #: Classic IRQ-driven completions instead of polling (ablation knob).
    uring_interrupt: bool = False
    #: Pin each instance's submission thread to a dedicated core.
    uring_pin_cores: bool = True
    #: Software mode: client-side fan-out (DeLiBA semantics) vs primary.
    client_fanout: bool = True

    def __post_init__(self):
        if self.api not in ("sync", "libaio", "posix-aio", "mmap", "uring"):
            raise BenchmarkError(f"unknown api {self.api!r}")
        if self.driver not in ("rbd_kmod", "nbd", "uifd"):
            raise BenchmarkError(f"unknown driver {self.driver!r}")
        if self.hardware and self.accel_impl is None:
            raise BenchmarkError(f"{self.name}: hardware mode needs an accelerator impl")


#: Pure software Ceph: sync API, stock elevator, stock RBD kernel driver,
#: kernel TCP, primary-mediated replication.
SOFTWARE_CEPH = FrameworkConfig(
    name="software-ceph",
    label="SW Ceph",
    api="sync",
    driver="rbd_kmod",
    hardware=False,
    client_stack=KERNEL_TCP,
    accel_impl=None,
    client_fanout=False,
)

#: DeLiBA-1 (D1): read/write API + NBD daemon (6 crossings) + HLS
#: accelerators invoked passively + kernel TCP for OSD traffic.
DELIBA1 = FrameworkConfig(
    name="deliba1",
    label="D1",
    api="sync",
    driver="nbd",
    hardware=True,
    client_stack=KERNEL_TCP,
    accel_impl="hls",
    nbd_crossings=6,
    passive_offload=True,
)

#: DeLiBA-2 (D2): read/write API + NBD daemon (5 crossings) + HLS
#: accelerators in the datapath + HLS TCP on the FPGA.
DELIBA2 = FrameworkConfig(
    name="deliba2",
    label="D2",
    api="sync",
    driver="nbd",
    hardware=True,
    client_stack=HLS_TCP,
    accel_impl="hls",
    nbd_crossings=5,
)

#: DeLiBA-2 software baseline (Fig. 3/4 comparison): the D2 host stack
#: (NBD daemon + read/write API) without the FPGA — placement and EC on
#: the host CPU, kernel TCP.
DELIBA2_SW = FrameworkConfig(
    name="deliba2-sw",
    label="D2 (sw)",
    api="sync",
    driver="nbd",
    hardware=False,
    client_stack=KERNEL_TCP,
    accel_impl=None,
    nbd_crossings=5,
)

#: DeLiBA-K software baseline: io_uring + DMQ + UIFD (improved Ceph-RBD
#: kernel path), placement/EC on the host CPU, kernel TCP.
DELIBAK_SW = FrameworkConfig(
    name="delibak-sw",
    label="D-K (sw)",
    api="uring",
    driver="uifd",
    hardware=False,
    client_stack=KERNEL_TCP,
    accel_impl=None,
    blk=DMQ_CONFIG,
)

#: DeLiBA-K (D3): io_uring (3 SQPOLL instances, pinned) + DMQ + UIFD +
#: QDMA + RTL accelerators + RTL TCP on the FPGA.
DELIBAK = FrameworkConfig(
    name="delibak",
    label="D-K",
    api="uring",
    driver="uifd",
    hardware=True,
    client_stack=RTL_TCP,
    accel_impl="rtl",
    blk=DMQ_CONFIG,
)

FRAMEWORKS: dict[str, FrameworkConfig] = {
    cfg.name: cfg
    for cfg in (SOFTWARE_CEPH, DELIBA1, DELIBA2, DELIBA2_SW, DELIBAK_SW, DELIBAK)
}


def framework_by_name(name: str) -> FrameworkConfig:
    """Lookup; raises with the known names on error."""
    if name not in FRAMEWORKS:
        raise BenchmarkError(f"unknown framework {name!r}; know {sorted(FRAMEWORKS)}")
    return FRAMEWORKS[name]
