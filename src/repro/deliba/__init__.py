"""DeLiBA framework generations and end-to-end stack assembly.

The core of the reproduction: compose the substrates into the four
storage stacks the paper compares (software Ceph, DeLiBA-1, DeLiBA-2,
DeLiBA-K plus the two software baselines) and run fio jobs through them.
"""

from .config import (
    DELIBA1,
    DELIBA2,
    DELIBA2_SW,
    DELIBAK,
    DELIBAK_SW,
    FRAMEWORKS,
    FrameworkConfig,
    SOFTWARE_CEPH,
    framework_by_name,
)
from .framework import (
    FrameworkInstance,
    PLACEMENT_KERNEL,
    PoolSpec,
    build_framework,
    run_job_on,
)

__all__ = [
    "DELIBA1",
    "DELIBA2",
    "DELIBA2_SW",
    "DELIBAK",
    "DELIBAK_SW",
    "FRAMEWORKS",
    "FrameworkConfig",
    "FrameworkInstance",
    "PLACEMENT_KERNEL",
    "PoolSpec",
    "SOFTWARE_CEPH",
    "build_framework",
    "framework_by_name",
    "run_job_on",
]
