"""Unit helpers used throughout the library.

The simulation clock is an integer count of **nanoseconds**; sizes are
integer **bytes**.  Keeping both as plain ints makes event ordering exact
and reproducible (no floating-point time drift), matching the guidance in
the HPC coding guides to prefer exact integer bookkeeping in hot loops.

Frequencies and bandwidths are expressed in Hz and bytes/second; helper
functions convert between human units and the internal representation.
"""

from __future__ import annotations

# --- time (nanoseconds) ----------------------------------------------------

NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000


def ns(value: float) -> int:
    """Nanoseconds as simulation ticks."""
    return int(round(value * NS))


def us(value: float) -> int:
    """Microseconds as simulation ticks."""
    return int(round(value * US))


def ms(value: float) -> int:
    """Milliseconds as simulation ticks."""
    return int(round(value * MS))


def seconds(value: float) -> int:
    """Seconds as simulation ticks."""
    return int(round(value * SEC))


def to_us(ticks: int) -> float:
    """Simulation ticks to microseconds."""
    return ticks / US


def to_ms(ticks: int) -> float:
    """Simulation ticks to milliseconds."""
    return ticks / MS


def to_seconds(ticks: int) -> float:
    """Simulation ticks to seconds."""
    return ticks / SEC


# --- sizes (bytes) ----------------------------------------------------------

KiB = 1024
MiB = 1024 * 1024
GiB = 1024 * 1024 * 1024

KB = 1000
MB = 1000 * 1000
GB = 1000 * 1000 * 1000


def kib(value: float) -> int:
    """Binary kilobytes as bytes."""
    return int(round(value * KiB))


def mib(value: float) -> int:
    """Binary megabytes as bytes."""
    return int(round(value * MiB))


# --- rates ------------------------------------------------------------------


def gbps(value: float) -> float:
    """Gigabits/second as bytes/second."""
    return value * 1e9 / 8.0


def mbps(value: float) -> float:
    """Megabits/second as bytes/second."""
    return value * 1e6 / 8.0


def mhz(value: float) -> float:
    """Megahertz as Hz."""
    return value * 1e6


def cycles_to_ns(cycles: int, clock_hz: float) -> int:
    """Duration of ``cycles`` clock cycles, in integer nanoseconds.

    Rounds up so a nonzero cycle count never collapses to zero ticks.
    """
    if cycles <= 0:
        return 0
    exact = cycles * 1e9 / clock_hz
    out = int(exact)
    return out if out == exact or out >= 1 else 1


def transfer_ns(nbytes: int, bytes_per_sec: float) -> int:
    """Serialization delay for ``nbytes`` at ``bytes_per_sec``, >= 0 ticks."""
    if nbytes <= 0:
        return 0
    return max(1, int(round(nbytes * 1e9 / bytes_per_sec)))


def throughput_mb_s(nbytes: int, ticks: int) -> float:
    """Throughput in MB/s (decimal) given bytes moved over elapsed ticks."""
    if ticks <= 0:
        return 0.0
    return (nbytes / MB) / (ticks / SEC)


def iops(n_ios: int, ticks: int) -> float:
    """I/O operations per second given a count over elapsed ticks."""
    if ticks <= 0:
        return 0.0
    return n_ios / (ticks / SEC)
