"""Zipf-skewed synthetic workload (cache-tier evaluation).

A :class:`ZipfJob` issues block IOs whose block popularity follows a
Zipf(theta) distribution over the working set — the canonical skewed
pattern cache benchmarks use (fio's ``random_distribution=zipf``).  A
handful of hot blocks absorb most of the traffic, so hit ratio responds
sharply to cache capacity; ``theta=0`` degenerates to uniform random,
making uniform-vs-skewed comparisons a one-knob sweep.

Rank popularity is scattered over the address space with a seeded
Fisher-Yates permutation (as fio does), so "hot" blocks are spread
across the image rather than clustered at offset zero — without this, a
sequential-cutoff or striping artifact could masquerade as cache skew.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

from ..blk import SECTOR, Bio, IoOp
from ..errors import WorkloadError
from ..sim import RngStream
from ..units import kib, mib


@dataclass(frozen=True)
class ZipfJob:
    """One Zipf-skewed random job specification."""

    name: str
    rw: str = "randread"  # randread | randwrite | randrw
    bs: int = kib(4)
    iodepth: int = 1
    size: int = mib(64)  # working-set bytes
    nrequests: int = 200
    #: Zipf exponent: 0 = uniform, ~0.99 = classic YCSB skew, higher =
    #: hotter head.
    theta: float = 0.99
    rwmixread: float = 0.5
    numjobs: int = 1

    def __post_init__(self):
        if self.rw not in ("randread", "randwrite", "randrw"):
            raise WorkloadError(f"zipf job rw must be random, got {self.rw!r}")
        if self.bs < SECTOR or self.bs % SECTOR:
            raise WorkloadError(f"bs must be a positive sector multiple, got {self.bs}")
        if self.size < self.bs:
            raise WorkloadError(f"size {self.size} smaller than bs {self.bs}")
        if self.iodepth < 1 or self.nrequests < 1:
            raise WorkloadError("iodepth and nrequests must be >= 1")
        if self.theta < 0:
            raise WorkloadError(f"theta must be >= 0, got {self.theta}")
        if not 0.0 <= self.rwmixread <= 1.0:
            raise WorkloadError(f"rwmixread must be in [0, 1], got {self.rwmixread}")
        if self.numjobs < 1:
            raise WorkloadError(f"numjobs must be >= 1, got {self.numjobs}")

    @property
    def is_sequential(self) -> bool:
        """Never — Zipf jobs are random by construction."""
        return False

    @property
    def blocks(self) -> int:
        """Number of block-aligned slots in the working set."""
        return self.size // self.bs

    def _cdf(self) -> list[float]:
        """Cumulative Zipf(theta) popularity over ranks 0..blocks-1."""
        weights = [1.0 / (rank + 1) ** self.theta for rank in range(self.blocks)]
        total = sum(weights)
        cdf = []
        acc = 0.0
        for w in weights:
            acc += w
            cdf.append(acc / total)
        return cdf

    def _scatter(self, rng: RngStream) -> list[int]:
        """Seeded Fisher-Yates permutation: popularity rank -> block."""
        perm = list(range(self.blocks))
        for i in range(self.blocks - 1, 0, -1):
            j = rng.randint(0, i)
            perm[i], perm[j] = perm[j], perm[i]
        return perm

    def _op_for(self, rng: RngStream) -> IoOp:
        if self.rw == "randread":
            return IoOp.READ
        if self.rw == "randwrite":
            return IoOp.WRITE
        return IoOp.READ if rng.uniform(0, 1) < self.rwmixread else IoOp.WRITE

    def make_bios(self, rng: RngStream, payload_byte: int = 0x5A) -> list[Bio]:
        """The deterministic bio stream for this job."""
        cdf = self._cdf()
        scatter = self._scatter(rng)
        fill = bytes([payload_byte]) * self.bs
        bios = []
        for _ in range(self.nrequests):
            rank = bisect_left(cdf, rng.uniform(0, 1))
            block = scatter[min(rank, self.blocks - 1)]
            op = self._op_for(rng)
            bios.append(
                Bio(
                    op,
                    sector=block * self.bs // SECTOR,
                    size=self.bs,
                    data=fill if op == IoOp.WRITE else None,
                    sequential=False,
                )
            )
        return bios
