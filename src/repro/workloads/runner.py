"""Application runners: execute OLAP/OLTP batches on a framework stack.

Query/transaction CPU work runs concurrently with I/O (a dedicated
application core), so the measured *execution time* reflects how much of
the storage latency the application can actually hide — the quantity
behind the paper's "~30% reduction in execution time for data-intensive
tasks" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from ..blk import IoOp
from ..sim import RngStream
from .olap import OlapWorkload
from .oltp import OltpWorkload

if TYPE_CHECKING:  # pragma: no cover
    from ..deliba.framework import FrameworkInstance


@dataclass
class AppResult:
    """Outcome of one application batch."""

    name: str
    elapsed_ns: int
    ios: int
    bytes_moved: int

    @property
    def elapsed_ms(self) -> float:
        """Execution time in milliseconds."""
        return self.elapsed_ns / 1e6


def run_olap(fw: "FrameworkInstance", workload: OlapWorkload) -> Generator:
    """Process: scans (with concurrent aggregation CPU) then the bulk load."""
    env = fw.env
    start = env.now
    scan_bios = workload.scan_bios()
    # Prefill the table so scans find data.
    touched = sorted({b.offset for b in scan_bios})
    yield from fw.prefill(touched, workload.scan_block)
    measured_start = env.now

    core = fw.kernel.cpus.pick_core()

    def aggregate(env):
        yield from core.run(workload.total_cpu_ns)

    io_proc = env.process(fw.engine.run(scan_bios, workload.iodepth), name="olap.scan")
    cpu_proc = env.process(aggregate(env), name="olap.cpu")
    results = yield env.all_of([io_proc, cpu_proc])
    scan_result = results[io_proc]

    load_bios = workload.load_bios()
    load_result = yield from fw.engine.run(load_bios, workload.iodepth)

    return AppResult(
        workload.name,
        env.now - measured_start,
        scan_result.ios + load_result.ios,
        scan_result.bytes_moved + load_result.bytes_moved,
    )


def run_oltp(fw: "FrameworkInstance", workload: OltpWorkload, rng: RngStream) -> Generator:
    """Process: serial transactions (reads, CPU, commit writes)."""
    env = fw.env
    txns = workload.transaction_bios(rng)
    # Prefill every page the batch will read.
    read_offsets = sorted(
        {b.offset for txn in txns for b in txn if b.op == IoOp.READ}
    )
    yield from fw.prefill(read_offsets, workload.page_size)
    measured_start = env.now
    core = fw.kernel.cpus.pick_core()
    ios = 0
    moved = 0
    for txn in txns:
        reads = [b for b in txn if b.op == IoOp.READ]
        writes = [b for b in txn if b.op == IoOp.WRITE]
        r = yield from fw.engine.run(reads, workload.iodepth)
        yield from core.run(workload.cpu_per_txn_ns)
        if writes:
            w = yield from fw.engine.run(writes, workload.iodepth)
            ios += w.ios
            moved += w.bytes_moved
        ios += r.ios
        moved += r.bytes_moved
    return AppResult(workload.name, env.now - measured_start, ios, moved)
