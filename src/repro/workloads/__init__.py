"""Workload generators: fio-style synthetic, OLAP, and OLTP models."""

from .fio import RW_MODES, FioJob, paper_job
from .olap import OlapWorkload
from .oltp import OltpWorkload
from .replay import dump_trace, load_trace, parse_trace
from .runner import AppResult, run_olap, run_oltp

__all__ = [
    "AppResult",
    "FioJob",
    "OlapWorkload",
    "OltpWorkload",
    "RW_MODES",
    "dump_trace",
    "load_trace",
    "paper_job",
    "parse_trace",
    "run_olap",
    "run_oltp",
]
