"""Workload generators: fio-style synthetic, Zipf-skewed, OLAP, and OLTP models."""

from .fio import RW_MODES, FioJob, paper_job
from .olap import OlapWorkload
from .oltp import OltpWorkload
from .replay import dump_trace, load_trace, parse_trace
from .runner import AppResult, run_olap, run_oltp
from .zipf import ZipfJob

__all__ = [
    "AppResult",
    "FioJob",
    "OlapWorkload",
    "OltpWorkload",
    "RW_MODES",
    "ZipfJob",
    "dump_trace",
    "load_trace",
    "paper_job",
    "parse_trace",
    "run_olap",
    "run_oltp",
]
