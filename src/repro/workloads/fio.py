"""fio-style synthetic workload generator.

A :class:`FioJob` mirrors the fio options the paper's benchmarks use:
``rw`` mode (read/write/randread/randwrite/randrw), block size,
``iodepth``, working-set size, and I/O count.  ``make_bios`` produces
the deterministic bio stream an API engine runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..blk import SECTOR, Bio, IoOp
from ..errors import WorkloadError
from ..sim import RngStream
from ..units import kib, mib

RW_MODES = ("read", "write", "randread", "randwrite", "randrw")


@dataclass(frozen=True)
class FioJob:
    """One fio job specification."""

    name: str
    rw: str
    bs: int = kib(4)
    iodepth: int = 1
    size: int = mib(64)  # working-set bytes
    nrequests: int = 200  # I/Os to issue
    rwmixread: float = 0.5  # read fraction for randrw
    #: Independent copies of this job run concurrently (fio's numjobs);
    #: each generates its own pattern and keeps its own iodepth.
    numjobs: int = 1
    #: Tenant identity stamped on every bio this job emits ("" =
    #: untagged); the multi-tenant QoS layer attributes the IO by it.
    tenant: str = ""

    def __post_init__(self):
        if self.rw not in RW_MODES:
            raise WorkloadError(f"unknown rw mode {self.rw!r}; know {RW_MODES}")
        if self.bs < SECTOR or self.bs % SECTOR:
            raise WorkloadError(f"bs must be a positive sector multiple, got {self.bs}")
        if self.size < self.bs:
            raise WorkloadError(f"size {self.size} smaller than bs {self.bs}")
        if self.iodepth < 1 or self.nrequests < 1:
            raise WorkloadError("iodepth and nrequests must be >= 1")
        if self.numjobs < 1:
            raise WorkloadError(f"numjobs must be >= 1, got {self.numjobs}")
        if not 0.0 <= self.rwmixread <= 1.0:
            raise WorkloadError(f"rwmixread must be in [0, 1], got {self.rwmixread}")

    @property
    def is_sequential(self) -> bool:
        """True for seq modes (fio's read/write)."""
        return self.rw in ("read", "write")

    @property
    def blocks(self) -> int:
        """Number of block-aligned slots in the working set."""
        return self.size // self.bs

    def _op_for(self, i: int, rng: RngStream) -> IoOp:
        if self.rw in ("read", "randread"):
            return IoOp.READ
        if self.rw in ("write", "randwrite"):
            return IoOp.WRITE
        return IoOp.READ if rng.uniform(0, 1) < self.rwmixread else IoOp.WRITE

    def make_bios(self, rng: RngStream, payload_byte: int = 0x5A) -> list[Bio]:
        """The deterministic bio stream for this job."""
        bios = []
        fill = bytes([payload_byte]) * self.bs
        for i in range(self.nrequests):
            if self.is_sequential:
                block = i % self.blocks
            else:
                block = rng.randint(0, self.blocks - 1)
            op = self._op_for(i, rng)
            bios.append(
                Bio(
                    op,
                    sector=block * self.bs // SECTOR,
                    size=self.bs,
                    data=fill if op == IoOp.WRITE else None,
                    sequential=self.is_sequential,
                    tenant=self.tenant,
                )
            )
        return bios


def paper_job(rw: str, bs: int, iodepth: int = 4, nrequests: int = 120, size: int = mib(64)) -> FioJob:
    """The job shape used throughout the paper's evaluation benches.

    The paper does not publish its fio parameters; iodepth=4 is chosen
    (and documented in EXPERIMENTS.md) as the setting that reproduces
    both the absolute throughput neighborhood and the D-K/D2 ratios.
    """
    return FioJob(name=f"{rw}-{bs}", rw=rw, bs=bs, iodepth=iodepth, nrequests=nrequests, size=size)
