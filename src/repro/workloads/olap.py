"""OLAP workload model: analytical queries over on-disk tables.

Stands in for the proprietary suite of the paper's industrial partner
(Section III-C): a mix of **full table scans** (large sequential reads —
the reason the paper follows the kernel community toward large block
sizes) and **bulk loads** (large sequential writes), with a small CPU
"processing" cost per block to model aggregation work between I/Os.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..blk import SECTOR, Bio, IoOp
from ..errors import WorkloadError
from ..units import kib, mib, us


@dataclass(frozen=True)
class OlapWorkload:
    """One analytical batch: scans then a bulk load."""

    name: str = "olap"
    table_bytes: int = mib(32)
    scan_block: int = kib(512)  # the paper's large-block focus
    num_scans: int = 2
    load_bytes: int = mib(8)
    load_block: int = kib(512)
    #: CPU per scanned block (predicate evaluation + aggregation at
    #: ~0.6 GB/s single-core — typical for complex analytical operators).
    cpu_per_block_ns: int = us(800)
    iodepth: int = 8

    def __post_init__(self):
        for field_name in ("table_bytes", "scan_block", "load_bytes", "load_block"):
            value = getattr(self, field_name)
            if value < SECTOR or value % SECTOR:
                raise WorkloadError(f"{field_name} must be a positive sector multiple")
        if self.num_scans < 0 or self.iodepth < 1:
            raise WorkloadError("num_scans must be >= 0 and iodepth >= 1")

    def scan_bios(self) -> list[Bio]:
        """Sequential read stream covering the table, repeated per scan."""
        out = []
        blocks = self.table_bytes // self.scan_block
        for _scan in range(self.num_scans):
            for b in range(blocks):
                out.append(
                    Bio(
                        IoOp.READ,
                        sector=b * self.scan_block // SECTOR,
                        size=self.scan_block,
                        sequential=True,
                    )
                )
        return out

    def load_bios(self) -> list[Bio]:
        """Sequential bulk-load write stream appended after the table."""
        out = []
        base = self.table_bytes // SECTOR
        fill = b"\x42" * self.load_block
        for b in range(self.load_bytes // self.load_block):
            out.append(
                Bio(
                    IoOp.WRITE,
                    sector=base + b * self.load_block // SECTOR,
                    size=self.load_block,
                    data=fill,
                    sequential=True,
                )
            )
        return out

    @property
    def total_cpu_ns(self) -> int:
        """Aggregate query-processing CPU across the batch."""
        blocks = (self.table_bytes // self.scan_block) * self.num_scans
        return blocks * self.cpu_per_block_ns

    @property
    def footprint_bytes(self) -> int:
        """Image bytes the workload touches."""
        return self.table_bytes + self.load_bytes
