"""Trace replay: run recorded I/O traces through any framework.

fio can replay block traces (``--read_iolog``); production evaluations —
like the industrial lab deployment in the paper — often replay captured
workloads rather than synthetic patterns.  The trace format here is a
plain text file (or iterable of lines)::

    # comment
    <op> <offset> <length>

with ``op`` one of ``R``/``W`` (or ``read``/``write``), offsets and
lengths in bytes (sector-aligned).
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Union

from ..blk import SECTOR, Bio, IoOp
from ..errors import WorkloadError

_OPS = {"r": IoOp.READ, "read": IoOp.READ, "w": IoOp.WRITE, "write": IoOp.WRITE}


def parse_trace(lines: Iterable[str]) -> list[Bio]:
    """Parse trace lines into bios (raises with line numbers on errors)."""
    bios: list[Bio] = []
    prev_end: dict[IoOp, int] = {}
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3:
            raise WorkloadError(f"trace line {lineno}: expected 'op offset length', got {line!r}")
        op_token, offset_s, length_s = parts
        op = _OPS.get(op_token.lower())
        if op is None:
            raise WorkloadError(f"trace line {lineno}: unknown op {op_token!r}")
        try:
            offset, length = int(offset_s), int(length_s)
        except ValueError as exc:
            raise WorkloadError(f"trace line {lineno}: non-integer field ({exc})")
        if offset < 0 or offset % SECTOR:
            raise WorkloadError(f"trace line {lineno}: offset {offset} not sector aligned")
        if length <= 0 or length % SECTOR:
            raise WorkloadError(f"trace line {lineno}: length {length} not a sector multiple")
        sequential = prev_end.get(op) == offset
        prev_end[op] = offset + length
        data = b"\x00" * length if op == IoOp.WRITE else None
        bios.append(Bio(op, offset // SECTOR, length, data=data, sequential=sequential))
    if not bios:
        raise WorkloadError("trace contains no I/O records")
    return bios


def load_trace(path: Union[str, pathlib.Path]) -> list[Bio]:
    """Parse a trace file from disk."""
    path = pathlib.Path(path)
    if not path.exists():
        raise WorkloadError(f"trace file not found: {path}")
    with path.open() as fh:
        return parse_trace(fh)


def dump_trace(bios: Iterable[Bio]) -> str:
    """Render bios back into the trace format (for capture/replay loops)."""
    lines = []
    for bio in bios:
        op = "R" if bio.op == IoOp.READ else "W"
        lines.append(f"{op} {bio.offset} {bio.size}")
    return "\n".join(lines) + "\n"
