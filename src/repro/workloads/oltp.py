"""OLTP workload model: small random transactions with think time.

The second real-world application class of the paper's industrial
evaluation: each transaction reads a handful of random 4-16 kB pages,
does a little CPU work, and commits by writing a log record plus the
dirtied pages.  Latency-bound rather than bandwidth-bound, so it stresses
exactly the per-I/O overheads DeLiBA-K removes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..blk import SECTOR, Bio, IoOp
from ..errors import WorkloadError
from ..sim import RngStream
from ..units import kib, mib, us


@dataclass(frozen=True)
class OltpWorkload:
    """A batch of transactions."""

    name: str = "oltp"
    database_bytes: int = mib(64)
    page_size: int = kib(8)
    transactions: int = 60
    reads_per_txn: int = 4
    writes_per_txn: int = 2
    #: CPU per transaction (plan execution, locking, log assembly —
    #: a fraction of a millisecond for a simple transaction).
    cpu_per_txn_ns: int = us(600)
    iodepth: int = 4

    def __post_init__(self):
        if self.page_size < SECTOR or self.page_size % SECTOR:
            raise WorkloadError("page_size must be a positive sector multiple")
        if self.database_bytes < self.page_size:
            raise WorkloadError("database smaller than one page")
        if min(self.transactions, self.reads_per_txn) < 1 or self.writes_per_txn < 0:
            raise WorkloadError("transactions and reads_per_txn must be >= 1")

    @property
    def pages(self) -> int:
        """Pages in the database."""
        return self.database_bytes // self.page_size

    def transaction_bios(self, rng: RngStream) -> list[list[Bio]]:
        """Per-transaction bio lists (reads then commit writes)."""
        fill = b"\x7E" * self.page_size
        out = []
        for _ in range(self.transactions):
            txn: list[Bio] = []
            for _ in range(self.reads_per_txn):
                page = rng.randint(0, self.pages - 1)
                txn.append(
                    Bio(IoOp.READ, page * self.page_size // SECTOR, self.page_size)
                )
            for _ in range(self.writes_per_txn):
                page = rng.randint(0, self.pages - 1)
                txn.append(
                    Bio(
                        IoOp.WRITE,
                        page * self.page_size // SECTOR,
                        self.page_size,
                        data=fill,
                    )
                )
            out.append(txn)
        return out

    @property
    def total_ios(self) -> int:
        """I/Os across the batch."""
        return self.transactions * (self.reads_per_txn + self.writes_per_txn)
