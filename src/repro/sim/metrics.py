"""Hierarchical metrics registry: one namespace for every layer's counters.

Every layer of the stack — ``api.uring``, ``blk``, ``driver.uifd``,
``fpga.qdma``, ``net``, ``osd`` — registers its instruments here under
dot-separated hierarchical names (``blk.hwq0.depth``,
``uring.sqe_batch_size``, ``osd.3.op_latency``).  Instruments are the
measurement primitives from :mod:`repro.sim.monitor`; the registry only
names, deduplicates, and reports them.

Instrumentation must cost nothing when disabled: components take a
registry argument defaulting to :data:`NULL_METRICS`, whose factories
hand back shared no-op instruments.  No-op calls never touch the event
queue, so simulated results are bit-identical with metrics on or off;
with :data:`NULL_METRICS` they do not even allocate.

>>> reg = MetricsRegistry()
>>> reg.counter("blk.bios_submitted").add(3)
>>> reg.counter("blk.bios_submitted").value
3
>>> sorted(reg.names("blk."))
['blk.bios_submitted']
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

from ..errors import ReproError
from .monitor import Counter, Distribution, Gauge, LatencyRecorder, ThroughputMeter, TimeSeries

#: Every instrument type the registry can host.
Metric = Union[Counter, Gauge, Distribution, LatencyRecorder, ThroughputMeter, TimeSeries]


class MetricsError(ReproError):
    """Name collisions and malformed metric names."""


class MetricsRegistry:
    """Named instruments, get-or-create, hierarchical reporting."""

    #: Real registries record; the null registry advertises False so
    #: callers can skip building expensive label strings.
    enabled = True

    def __init__(self):
        self._metrics: dict[str, Metric] = {}

    # -- instrument factories (get-or-create) ---------------------------------

    def _get_or_create(self, name: str, cls):
        if not name or name.startswith(".") or name.endswith("."):
            raise MetricsError(f"invalid metric name {name!r}")
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise MetricsError(
                f"metric {name!r} already registered as {type(metric).__name__}, "
                f"not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """A monotonically increasing count."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """A last-write-wins instantaneous value."""
        return self._get_or_create(name, Gauge)

    def distribution(self, name: str) -> Distribution:
        """A unitless sample distribution (batch sizes, fan-outs)."""
        return self._get_or_create(name, Distribution)

    def latency(self, name: str) -> LatencyRecorder:
        """A per-operation latency histogram (integer ns samples)."""
        return self._get_or_create(name, LatencyRecorder)

    def meter(self, name: str) -> ThroughputMeter:
        """An ops/bytes throughput meter over a measurement window."""
        return self._get_or_create(name, ThroughputMeter)

    def timeseries(self, name: str) -> TimeSeries:
        """(time, value) samples, e.g. queue depth over time."""
        return self._get_or_create(name, TimeSeries)

    # -- access ----------------------------------------------------------------

    def get(self, name: str) -> Metric:
        """Lookup; raises :class:`MetricsError` on unknown names."""
        if name not in self._metrics:
            raise MetricsError(f"unknown metric {name!r}")
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def __bool__(self) -> bool:
        # A registry is truthy even while empty: components rely on
        # ``metrics or NULL_METRICS`` and must not drop a fresh registry.
        return True

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._metrics))

    def names(self, prefix: str = "") -> list[str]:
        """Sorted metric names under ``prefix`` ('' = all)."""
        return sorted(n for n in self._metrics if n.startswith(prefix))

    def collect(self, prefix: str = "") -> dict[str, Metric]:
        """Name -> instrument for every metric under ``prefix``."""
        return {n: self._metrics[n] for n in self.names(prefix)}

    def items(self, prefix: str = "") -> Iterator[tuple[str, Metric]]:
        """(name, instrument) pairs in sorted name order.

        The iteration contract exporters rely on (the Prometheus
        exposition walks it): deterministic order, no copies.
        """
        for name in self.names(prefix):
            yield name, self._metrics[name]

    # -- reporting --------------------------------------------------------------

    def snapshot(self, end_ns: Optional[int] = None, prefix: str = "") -> dict:
        """Flatten every instrument to plain numbers (JSON/CSV-friendly).

        ``end_ns`` (typically ``env.now``) closes time-weighted windows:
        it is forwarded to :meth:`TimeSeries.time_weighted_mean` and used
        as the window end for started-but-quiet throughput meters.
        """
        out: dict = {}
        for name in self.names(prefix):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out[name] = metric.value
            elif isinstance(metric, Gauge):
                out[name] = metric.value
            elif isinstance(metric, Distribution):
                out[name] = {
                    "count": metric.count,
                    "mean": metric.mean(),
                    "max": metric.max(),
                }
            elif isinstance(metric, LatencyRecorder):
                out[name] = {
                    "count": metric.count,
                    "mean_us": metric.mean_us(),
                    "p99_us": metric.percentile_us(99),
                    "max_us": metric.max_us(),
                }
            elif isinstance(metric, ThroughputMeter):
                out[name] = {
                    "ops": metric.ops,
                    "bytes": metric.bytes,
                    "mb_per_sec": metric.mb_per_sec(),
                    "kiops": metric.kiops(),
                }
            elif isinstance(metric, TimeSeries):
                out[name] = {
                    "samples": len(metric.times),
                    "time_weighted_mean": metric.time_weighted_mean(end_ns),
                }
        return out

    def render(self, end_ns: Optional[int] = None, prefix: str = "") -> str:
        """Human-readable table of the snapshot, one metric per line."""
        snap = self.snapshot(end_ns=end_ns, prefix=prefix)
        if not snap:
            return "(no metrics registered)"
        width = max(len(n) for n in snap)
        lines = []
        for name, value in snap.items():
            if isinstance(value, dict):
                body = "  ".join(
                    f"{k}={v:.2f}" if isinstance(v, float) else f"{k}={v}"
                    for k, v in value.items()
                )
            elif isinstance(value, float):
                body = f"{value:.2f}"
            else:
                body = str(value)
            lines.append(f"{name:<{width}s}  {body}")
        return "\n".join(lines)


class _NullCounter(Counter):
    __slots__ = ()

    def add(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float = 1.0) -> None:
        pass


class _NullDistribution(Distribution):
    __slots__ = ()

    def record(self, value: float) -> None:
        pass


class _NullLatencyRecorder(LatencyRecorder):
    __slots__ = ()

    def record(self, latency_ns: int) -> None:
        pass


class _NullThroughputMeter(ThroughputMeter):
    __slots__ = ()

    def start(self, now_ns: int) -> None:
        pass

    def record(self, nbytes: int, now_ns: int) -> None:
        pass


class _NullTimeSeries(TimeSeries):
    def record(self, now_ns: int, value: float) -> None:
        pass


class NullMetricsRegistry(MetricsRegistry):
    """The disabled registry: every factory returns a shared no-op.

    Nothing is ever stored, so instrumented hot paths cost one no-op
    method call and zero allocations — tier-1 benchmark numbers are
    unchanged whether instrumentation code is present or not.
    """

    enabled = False

    def __init__(self):
        super().__init__()
        self._counter = _NullCounter("null")
        self._gauge = _NullGauge("null")
        self._distribution = _NullDistribution("null")
        self._latency = _NullLatencyRecorder("null")
        self._meter = _NullThroughputMeter("null")
        self._timeseries = _NullTimeSeries("null")

    def counter(self, name: str) -> Counter:
        return self._counter

    def gauge(self, name: str) -> Gauge:
        return self._gauge

    def distribution(self, name: str) -> Distribution:
        return self._distribution

    def latency(self, name: str) -> LatencyRecorder:
        return self._latency

    def meter(self, name: str) -> ThroughputMeter:
        return self._meter

    def timeseries(self, name: str) -> TimeSeries:
        return self._timeseries


#: Shared disabled registry used as the default everywhere.
NULL_METRICS = NullMetricsRegistry()
