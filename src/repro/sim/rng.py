"""Deterministic random-number streams.

Every stochastic component draws from a named substream derived from a
single master seed, so adding a new consumer never perturbs the draws of
existing ones — a standard reproducibility idiom in parallel simulation.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence

import numpy as np


def _derive_seed(master_seed: int, name: str) -> int:
    """A 64-bit seed unique to (master_seed, name), stable across runs."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngStream:
    """One named substream: python ``random`` plus a NumPy generator."""

    def __init__(self, master_seed: int, name: str):
        self.name = name
        self._seed = seed = _derive_seed(master_seed, name)
        self.py = random.Random(seed)
        self.np = np.random.default_rng(seed)

    def fork(self, name: str) -> "RngStream":
        """A child substream derived from this stream's seed and ``name``.

        Forking never consumes draws from the parent, so consumers that
        need event-keyed randomness (e.g. fate draws at a particular
        crash instant) stay decoupled from each other and from the
        parent's position.
        """
        return RngStream(self._seed, f"{self.name}/{name}")

    # Convenience pass-throughs used in hot paths -----------------------------

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] inclusive."""
        return self.py.randint(lo, hi)

    def uniform(self, lo: float, hi: float) -> float:
        """Uniform float in [lo, hi)."""
        return self.py.uniform(lo, hi)

    def expovariate(self, rate: float) -> float:
        """Exponential variate with the given rate (1/mean)."""
        return self.py.expovariate(rate)

    def choice(self, seq: Sequence):
        """Uniformly random element of ``seq``."""
        return self.py.choice(seq)

    def lognormal_ns(self, mean_ns: float, sigma: float = 0.1) -> int:
        """Lognormal service time centred on ``mean_ns`` (integer ns >= 1).

        ``sigma`` is the shape parameter of the underlying normal; the
        distribution is rescaled so its mean equals ``mean_ns``, which makes
        calibrated averages independent of the jitter setting.
        """
        if mean_ns <= 0:
            return 0
        mu = float(np.log(mean_ns)) - 0.5 * sigma * sigma
        return max(1, int(round(self.py.lognormvariate(mu, sigma))))


class RngRegistry:
    """Factory of named substreams sharing one master seed."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: dict[str, RngStream] = {}

    def stream(self, name: str) -> RngStream:
        """The (cached) substream for ``name``."""
        if name not in self._streams:
            self._streams[name] = RngStream(self.master_seed, name)
        return self._streams[name]
