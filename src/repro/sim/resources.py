"""Shared-resource primitives for the DES kernel.

:class:`Resource` models a server with fixed capacity and a FIFO (or
priority) wait queue — used for CPU cores, device channels, PCIe credits,
and the like.  Requests are events; a process does::

    req = resource.request()
    yield req
    ...   # holding one slot
    resource.release(req)

or, with automatic release, ``yield from resource.using(duration)``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Generator

from ..errors import SimulationError
from .core import Environment, Event


class Request(Event):
    """A pending claim on one unit of a :class:`Resource`."""

    __slots__ = ("resource", "priority", "_order")

    def __init__(self, resource: "Resource", priority: int):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self._order = next(resource._counter)

    def __lt__(self, other: "Request") -> bool:
        return (self.priority, self._order) < (other.priority, other._order)

    def _cancel_on_interrupt(self) -> None:
        """Withdraw this claim when the waiting process is interrupted
        (hook called by :meth:`Process.interrupt`)."""
        if not self.triggered:
            self.resource.cancel(self)


class Resource:
    """A counted resource with ``capacity`` slots and a priority/FIFO queue.

    Lower ``priority`` values are served first; equal priorities are FIFO.
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"Resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._users: set[Request] = set()
        self._waiting: list[Request] = []
        self._counter = itertools.count()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self, priority: int = 0) -> Request:
        """Claim one slot; the returned event fires once granted."""
        req = Request(self, priority)
        if len(self._users) < self.capacity and not self._waiting:
            self._users.add(req)
            req.succeed(req)
        else:
            heapq.heappush(self._waiting, req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot and wake the next waiter."""
        if request not in self._users:
            raise SimulationError(f"release() of a request not holding {self.name or 'resource'}")
        self._users.remove(request)
        self._grant_next()

    def cancel(self, request: Request) -> None:
        """Abandon a request that has not been granted yet."""
        if request in self._users:
            raise SimulationError("cancel() on a granted request; use release()")
        try:
            self._waiting.remove(request)
            heapq.heapify(self._waiting)
        except ValueError:
            pass

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            req = heapq.heappop(self._waiting)
            if req.triggered:  # cancelled or interrupted
                continue
            self._users.add(req)
            req.succeed(req)

    def using(self, duration: int, priority: int = 0) -> Generator[Event, Any, None]:
        """Hold one slot for ``duration`` ns (acquire, wait, release)."""
        req = self.request(priority)
        yield req
        try:
            yield self.env.timeout(duration)
        finally:
            self.release(req)

    def __repr__(self) -> str:
        return (
            f"<Resource {self.name!r} {len(self._users)}/{self.capacity} busy,"
            f" {len(self._waiting)} waiting>"
        )


class Semaphore:
    """A counted token pool; ``acquire`` events fire FIFO as tokens free up."""

    def __init__(self, env: Environment, tokens: int, name: str = ""):
        if tokens < 0:
            raise SimulationError(f"Semaphore tokens must be >= 0, got {tokens}")
        self.env = env
        self.name = name
        self._tokens = tokens
        self._waiting: list[Event] = []

    @property
    def tokens(self) -> int:
        """Currently available tokens."""
        return self._tokens

    def acquire(self) -> Event:
        """Take one token; fires immediately if one is available."""
        ev = Event(self.env)
        if self._tokens > 0 and not self._waiting:
            self._tokens -= 1
            ev.succeed()
        else:
            self._waiting.append(ev)
        return ev

    def release(self, n: int = 1) -> None:
        """Return ``n`` tokens, waking waiters in FIFO order."""
        if n < 1:
            raise SimulationError(f"release() needs n >= 1, got {n}")
        self._tokens += n
        while self._waiting and self._tokens > 0:
            self._tokens -= 1
            self._waiting.pop(0).succeed()
