"""Measurement primitives: counters, latency recorders, time series.

These collect raw observations during a simulation run; summary statistics
(mean, percentiles, rates) are computed lazily with NumPy so the hot path
stays an O(1) append.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..units import MB, SEC


class Counter:
    """A monotonically increasing named count."""

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        """Increment by ``n``."""
        self.value += n

    def __repr__(self) -> str:
        return f"<Counter {self.name!r}={self.value}>"


class Gauge:
    """A last-write-wins instantaneous value (e.g. queues in use)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the current value."""
        self.value = value

    def add(self, delta: float = 1.0) -> None:
        """Adjust the current value by ``delta`` (may go negative)."""
        self.value += delta

    def __repr__(self) -> str:
        return f"<Gauge {self.name!r}={self.value}>"


class Distribution:
    """Unitless sample distribution (batch sizes, fan-outs, depths)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: list[float] = []

    def record(self, value: float) -> None:
        """Append one observation."""
        self.samples.append(value)

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self.samples)

    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        if not self.samples:
            return 0.0
        return float(np.mean(self.samples))

    def max(self) -> float:
        """Largest observation (0.0 when empty)."""
        return float(max(self.samples)) if self.samples else 0.0

    def min(self) -> float:
        """Smallest observation (0.0 when empty)."""
        return float(min(self.samples)) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the samples."""
        if not self.samples:
            return 0.0
        return float(np.percentile(np.asarray(self.samples), q))


class LatencyRecorder:
    """Accumulates per-operation latencies (integer ns) for one metric."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: list[int] = []

    def record(self, latency_ns: int) -> None:
        """Append one latency observation."""
        self.samples.append(latency_ns)

    @property
    def count(self) -> int:
        """Number of recorded operations."""
        return len(self.samples)

    def mean_us(self) -> float:
        """Mean latency in microseconds (0.0 when empty)."""
        if not self.samples:
            return 0.0
        return float(np.mean(self.samples)) / 1_000.0

    def percentile_us(self, q: float) -> float:
        """The ``q``-th percentile latency in microseconds."""
        if not self.samples:
            return 0.0
        return float(np.percentile(np.asarray(self.samples), q)) / 1_000.0

    def max_us(self) -> float:
        """Maximum latency in microseconds."""
        return max(self.samples) / 1_000.0 if self.samples else 0.0

    def min_us(self) -> float:
        """Minimum latency in microseconds."""
        return min(self.samples) / 1_000.0 if self.samples else 0.0


class ThroughputMeter:
    """Tracks completed operations and bytes over a measurement window.

    Callers must :meth:`start` the window when submission begins, *not*
    at the first completion: a window opened lazily at the first
    completion excludes that op's service time, inflating MB/s and KIOPS
    at low op counts.  Completions recorded without an open window only
    accumulate ops/bytes; windowed rates stay 0 until the caller either
    opens the window or passes an explicit duration.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.ops = 0
        self.bytes = 0
        self.start_ns: Optional[int] = None
        self.end_ns: Optional[int] = None

    def start(self, now_ns: int) -> None:
        """Open the measurement window at submission start."""
        self.start_ns = now_ns

    def record(self, nbytes: int, now_ns: int) -> None:
        """Record one completed operation of ``nbytes`` at time ``now_ns``."""
        self.ops += 1
        self.bytes += nbytes
        self.end_ns = now_ns

    @property
    def elapsed_ns(self) -> int:
        """Window length in ns (0 until started and one op completes)."""
        if self.start_ns is None or self.end_ns is None:
            return 0
        return max(0, self.end_ns - self.start_ns)

    def mb_per_sec(self, elapsed_ns: Optional[int] = None) -> float:
        """Decimal MB/s over the window (or an explicit duration)."""
        dur = self.elapsed_ns if elapsed_ns is None else elapsed_ns
        if dur <= 0:
            return 0.0
        return (self.bytes / MB) / (dur / SEC)

    def kiops(self, elapsed_ns: Optional[int] = None) -> float:
        """Thousands of IOPS over the window (or an explicit duration)."""
        dur = self.elapsed_ns if elapsed_ns is None else elapsed_ns
        if dur <= 0:
            return 0.0
        return (self.ops / 1_000.0) / (dur / SEC)


@dataclass
class TimeSeries:
    """(time, value) samples, e.g. queue depth over time."""

    name: str = ""
    times: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, now_ns: int, value: float) -> None:
        """Append one sample."""
        self.times.append(now_ns)
        self.values.append(value)

    def time_weighted_mean(self, end_ns: Optional[int] = None) -> float:
        """Mean of the piecewise-constant signal defined by the samples.

        Without ``end_ns`` the final sample gets zero weight (there is no
        window end to hold it until); pass the observation end time —
        typically ``env.now`` — so the last segment is weighted too.
        """
        times = self.times
        values = self.values
        if end_ns is not None and times and end_ns > times[-1]:
            times = times + [end_ns]
            values = values + [values[-1]]
        if len(times) < 2:
            return values[0] if values else 0.0
        t = np.asarray(times, dtype=np.float64)
        v = np.asarray(values, dtype=np.float64)
        dt = np.diff(t)
        total = float(dt.sum())
        if total <= 0:
            return float(v.mean())
        return float((v[:-1] * dt).sum() / total)
