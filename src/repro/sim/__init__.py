"""From-scratch discrete-event simulation kernel.

Public surface: :class:`Environment` (clock + event queue), generator
processes, :class:`Resource`/:class:`Semaphore` for counted servers,
:class:`Store`/:class:`FilterStore` mailboxes, deterministic RNG streams,
measurement monitors, and the hierarchical :class:`MetricsRegistry`.
"""

from .core import Condition, Environment, Event, Process, Timeout
from .metrics import NULL_METRICS, MetricsError, MetricsRegistry, NullMetricsRegistry
from .monitor import (
    Counter,
    Distribution,
    Gauge,
    LatencyRecorder,
    ThroughputMeter,
    TimeSeries,
)
from .resources import Request, Resource, Semaphore
from .rng import RngRegistry, RngStream
from .store import FilterStore, Store

__all__ = [
    "Condition",
    "Counter",
    "Distribution",
    "Environment",
    "Event",
    "FilterStore",
    "Gauge",
    "LatencyRecorder",
    "MetricsError",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetricsRegistry",
    "Process",
    "Request",
    "Resource",
    "RngRegistry",
    "RngStream",
    "Semaphore",
    "Store",
    "ThroughputMeter",
    "TimeSeries",
    "Timeout",
]
