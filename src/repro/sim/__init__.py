"""From-scratch discrete-event simulation kernel.

Public surface: :class:`Environment` (clock + event queue), generator
processes, :class:`Resource`/:class:`Semaphore` for counted servers,
:class:`Store`/:class:`FilterStore` mailboxes, deterministic RNG streams,
and measurement monitors.
"""

from .core import Condition, Environment, Event, Process, Timeout
from .monitor import Counter, LatencyRecorder, ThroughputMeter, TimeSeries
from .resources import Request, Resource, Semaphore
from .rng import RngRegistry, RngStream
from .store import FilterStore, Store

__all__ = [
    "Condition",
    "Counter",
    "Environment",
    "Event",
    "FilterStore",
    "LatencyRecorder",
    "Process",
    "Request",
    "Resource",
    "RngRegistry",
    "RngStream",
    "Semaphore",
    "Store",
    "ThroughputMeter",
    "TimeSeries",
    "Timeout",
]
