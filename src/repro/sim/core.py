"""Discrete-event simulation kernel.

A small, deterministic, generator-based DES engine in the style of SimPy,
written from scratch for this reproduction.  Simulated *processes* are
Python generators that ``yield`` :class:`Event` objects; the
:class:`Environment` advances an integer nanosecond clock and resumes each
process when the event it waits on fires.

Determinism guarantees
----------------------
Events scheduled for the same timestamp are processed in FIFO order of
scheduling (a monotonically increasing sequence number breaks ties), so a
simulation run is a pure function of its inputs and RNG seeds.

Example
-------
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(5)
...     return env.now
>>> p = env.process(hello(env))
>>> env.run()
>>> p.value
5
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import ProcessKilled, SimulationError

#: Priority used for ordinary events.
NORMAL = 1
#: Priority used for high-urgency events (processed first at equal time).
URGENT = 0

ProcessGenerator = Generator["Event", Any, Any]


class Event:
    """An occurrence at a point in simulated time.

    An event starts *pending*, becomes *triggered* once a value or an
    exception is set and it has been scheduled, and *processed* after its
    callbacks have run.  Processes wait on events by ``yield``-ing them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._processed = False

    # -- state ---------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only after triggering)."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception if it failed)."""
        if not self._triggered:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering ----------------------------------------------------------

    def succeed(self, value: Any = None, delay: int = 0, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        self.env._schedule(self, delay=delay, priority=priority)
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Trigger the event with an exception that propagates to waiters."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self._triggered = True
        self.env._schedule(self, delay=delay)
        return self

    def __repr__(self) -> str:
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: int, value: Any = None, priority: int = NORMAL):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._triggered = True
        env._schedule(self, delay=delay, priority=priority)


class Initialize(Event):
    """Internal event that starts a process at the current time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self._triggered = True
        self.callbacks.append(process._resume)
        env._schedule(self, priority=URGENT)


class Process(Event):
    """A running simulated process wrapping a generator.

    The process event itself triggers when the generator returns (value =
    its return value) or raises (the exception propagates to waiters).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: ProcessGenerator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"process() needs a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`ProcessKilled` into the process at its wait point."""
        if self._triggered:
            return
        if self._target is not None and self is not self.env.active_process:
            # Detach from the event we were waiting on.
            if self._target.callbacks is not None and self._resume in self._target.callbacks:
                self._target.callbacks.remove(self._resume)
                if not self._target.callbacks:
                    # We were the only waiter.  If the orphaned event
                    # later *fails*, the failure is intentionally
                    # unobserved (its only observer was just killed) —
                    # sink it so step() doesn't escalate it to a crash.
                    self._target.callbacks.append(_sink_failure)
            # A queued resource claim must be withdrawn, or the slot is
            # granted to a dead process and leaks forever.
            canceller = getattr(self._target, "_cancel_on_interrupt", None)
            if canceller is not None:
                canceller()
        interrupt_ev = self.env._new_resume_event(False, ProcessKilled(cause))
        interrupt_ev.callbacks.append(self._resume)
        self.env._schedule(interrupt_ev, priority=URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event's value."""
        if self._triggered:
            # Already finished (e.g. interrupted before a stale event it
            # once waited on fired) — never resume a closed generator.
            return
        env = self.env
        env._active = self
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active = None
            self.succeed(stop.value)
            return
        except ProcessKilled as exc:
            env._active = None
            self.fail(exc)
            return
        except BaseException as exc:
            env._active = None
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        env._active = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
            )
        if target.env is not env:
            raise SimulationError(f"process {self.name!r} yielded an event from another Environment")
        if target._processed:
            # Already fired: resume immediately (at current time).
            resume_ev = env._new_resume_event(target._ok, target._value)
            resume_ev.callbacks.append(self._resume)
            env._schedule(resume_ev, priority=URGENT)
            self._target = resume_ev
        else:
            target.callbacks.append(self._resume)
            self._target = target

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'done' if self._triggered else 'alive'}>"


def _sink_failure(_event: "Event") -> None:
    """No-op callback marking an orphaned event's failure as observed."""


class _ResumeEvent(Event):
    """Internal single-callback event used to resume a process.

    Created only inside the kernel (already-fired-target resumption and
    interrupts), carries exactly one callback, and is never exposed to
    user code — which makes it safe to recycle through the environment's
    event pool right after its callbacks have run.
    """

    __slots__ = ()


class Environment:
    """Owns the event queue and the simulated clock (integer nanoseconds)."""

    __slots__ = ("_now", "_queue", "_seq", "_active", "_resume_pool")

    #: Upper bound on pooled resume events (plenty for any realistic
    #: same-tick resume burst; beyond it, extras are garbage-collected).
    _POOL_MAX = 256

    def __init__(self, initial_time: int = 0):
        self._now = int(initial_time)
        self._queue: list[tuple[int, int, int, Event]] = []
        self._seq = 0
        self._active: Optional[Process] = None
        #: Free list of recycled :class:`_ResumeEvent` objects.
        self._resume_pool: list[_ResumeEvent] = []

    def _new_resume_event(self, ok: bool, value: Any) -> _ResumeEvent:
        """A triggered internal resume event, recycled from the pool.

        Pooling is restricted to :class:`_ResumeEvent` by construction:
        user-visible events (``Timeout``, ``event()``) may be held and
        inspected long after they fire, so recycling them could alias
        two waits; resume events are referenced only by the scheduler
        queue and a process's ``_target``, both released by the time the
        event is returned to the pool.
        """
        if self._resume_pool:
            ev = self._resume_pool.pop()
            ev.callbacks = []
        else:
            ev = _ResumeEvent(self)
        ev._ok = ok
        ev._value = value
        ev._triggered = True
        ev._processed = False
        return ev

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active

    # -- scheduling ------------------------------------------------------------

    def _schedule(self, event: Event, delay: int = 0, priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event that fires ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> "Condition":
        """Event that fires when any of ``events`` has fired."""
        return Condition(self, list(events), Condition.any_done)

    def all_of(self, events: Iterable[Event]) -> "Condition":
        """Event that fires when all of ``events`` have fired."""
        return Condition(self, list(events), Condition.all_done)

    # -- execution ---------------------------------------------------------------

    def peek(self) -> Optional[int]:
        """Timestamp of the next event, or None if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        if callbacks:
            for callback in callbacks:
                callback(event)
            if type(event) is _ResumeEvent and len(self._resume_pool) < self._POOL_MAX:
                # Kernel-internal event, nothing can read it after its
                # callbacks ran — recycle it (drop the payload first so
                # the pool doesn't pin arbitrary objects alive).
                event._value = None
                self._resume_pool.append(event)
        elif not event._ok and not isinstance(event._value, ProcessKilled):
            # A failed event nobody waited on: surface the error rather than
            # silently dropping it.
            raise event._value

    def run(self, until: Optional[int] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        If ``until`` is given, the clock is left exactly at ``until`` even
        when the queue drains earlier.
        """
        if until is not None:
            until = int(until)
            if until < self._now:
                raise SimulationError(f"run(until={until}) is in the past (now={self._now})")
        # Inlined step() with hoisted locals: this loop dispatches every
        # event of a run, and the attribute/global lookups it avoids are
        # measurable at fig6 scale.  Semantics are identical to step().
        queue = self._queue
        heappop = heapq.heappop
        pool = self._resume_pool
        pool_max = self._POOL_MAX
        while queue:
            if until is not None and queue[0][0] > until:
                break
            when, _prio, _seq, event = heappop(queue)
            self._now = when
            callbacks = event.callbacks
            event.callbacks = None
            event._processed = True
            if callbacks:
                for callback in callbacks:
                    callback(event)
                if type(event) is _ResumeEvent and len(pool) < pool_max:
                    event._value = None
                    pool.append(event)
            elif not event._ok and not isinstance(event._value, ProcessKilled):
                raise event._value
        if until is not None:
            self._now = max(self._now, until)


class Condition(Event):
    """Composite event over a list of child events (any-of / all-of)."""

    __slots__ = ("_events", "_check", "_count")

    def __init__(self, env: Environment, events: list[Event], check: Callable[[int, int], bool]):
        super().__init__(env)
        self._events = events
        self._check = check
        self._count = 0
        if not events:
            self.succeed({})
            return
        for ev in events:
            if ev._processed:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)

    @staticmethod
    def any_done(done: int, total: int) -> bool:
        return done >= 1

    @staticmethod
    def all_done(done: int, total: int) -> bool:
        return done >= total

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count += 1
        if self._check(self._count, len(self._events)):
            self.succeed({ev: ev._value for ev in self._events if ev._processed and ev._ok})
