"""Buffered message stores for the DES kernel.

:class:`Store` is an optionally bounded FIFO of arbitrary items with
event-based ``put``/``get`` — the building block for NIC queues,
descriptor rings, and inter-process mailboxes.  :class:`FilterStore`
additionally lets a getter wait for the first item matching a predicate.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from ..errors import SimulationError
from .core import Environment, Event


class StorePut(Event):
    """Pending insertion of ``item`` into a store."""

    __slots__ = ("item", "_store")

    def __init__(self, env: Environment, item: Any, store: "Store"):
        super().__init__(env)
        self.item = item
        self._store = store

    def _cancel_on_interrupt(self) -> None:
        """Withdraw this put when the waiting process is interrupted
        (hook called by :meth:`Process.interrupt`)."""
        if not self.triggered:
            try:
                self._store._putters.remove(self)
            except ValueError:
                pass


class StoreGet(Event):
    """Pending removal of one item from a store."""

    __slots__ = ("filter", "_store")

    def __init__(
        self,
        env: Environment,
        store: "Store",
        filter: Optional[Callable[[Any], bool]] = None,
    ):
        super().__init__(env)
        self.filter = filter
        self._store = store

    def _cancel_on_interrupt(self) -> None:
        """Withdraw this claim so a later ``put`` is never handed to a
        dead process (which would silently swallow the item)."""
        if not self.triggered:
            try:
                self._store._getters.remove(self)
            except ValueError:
                pass


class Store:
    """FIFO of items with optional capacity; puts block when full."""

    def __init__(self, env: Environment, capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"Store capacity must be >= 1 or None, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items: deque[Any] = deque()
        self._putters: deque[StorePut] = deque()
        self._getters: deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        """True when a put would block."""
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; the returned event fires once accepted."""
        ev = StorePut(self.env, item, self)
        self._putters.append(ev)
        self._dispatch()
        return ev

    def get(self) -> StoreGet:
        """Remove the oldest item; the event's value is the item."""
        ev = StoreGet(self.env, self)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def try_get(self) -> Any:
        """Non-blocking get: the oldest item, or None when empty."""
        if not self.items:
            return None
        item = self.items.popleft()
        self._dispatch()
        return item

    def _admit_puts(self) -> bool:
        moved = False
        while self._putters and (self.capacity is None or len(self.items) < self.capacity):
            put = self._putters.popleft()
            self.items.append(put.item)
            put.succeed()
            moved = True
        return moved

    def _serve_gets(self) -> bool:
        moved = False
        while self._getters and self.items:
            get = self._getters.popleft()
            get.succeed(self.items.popleft())
            moved = True
        return moved

    def _dispatch(self) -> None:
        # Alternate until neither side can make progress; a get freeing a
        # slot can unblock a put and vice versa.
        while self._admit_puts() | self._serve_gets():
            pass


class FilterStore(Store):
    """Store whose getters may wait for an item matching a predicate."""

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:  # type: ignore[override]
        ev = StoreGet(self.env, self, filter)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def _serve_gets(self) -> bool:
        moved = False
        progressed = True
        while progressed:
            progressed = False
            for get in list(self._getters):
                if get.filter is None:
                    if self.items:
                        self._getters.remove(get)
                        get.succeed(self.items.popleft())
                        moved = progressed = True
                else:
                    for idx, item in enumerate(self.items):
                        if get.filter(item):
                            del self.items[idx]
                            self._getters.remove(get)
                            get.succeed(item)
                            moved = progressed = True
                            break
        return moved

    def __init__(self, env: Environment, capacity: Optional[int] = None, name: str = ""):
        super().__init__(env, capacity, name)
        # Filtered removal needs indexable storage.
        self.items = _IndexableDeque()


class _IndexableDeque(list):
    """list with deque-flavoured API used by FilterStore."""

    def popleft(self) -> Any:
        return self.pop(0)
