"""Systematic Reed-Solomon erasure codec over GF(2^8).

``ReedSolomon(k, m)`` splits an object into ``k`` data shards and
computes ``m`` parity shards; any ``k`` surviving shards reconstruct the
original.  This is the algorithm behind Ceph EC pools and the workload
of the paper's Reed-Solomon RTL accelerator (Table I).

Encoding is a GF matrix multiply over the shard block; decoding inverts
the surviving rows of the generator matrix (Gauss-Jordan) and re-multiplies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import DecodeError, ErasureCodingError
from .gf256 import gf_matmul
from .matrix import gauss_jordan_invert, systematic_cauchy, systematic_vandermonde


@dataclass(frozen=True)
class ECProfile:
    """Erasure-code parameters, mirroring a Ceph EC profile."""

    k: int
    m: int
    technique: str = "vandermonde"  # or "cauchy"

    def __post_init__(self):
        if self.k < 1:
            raise ErasureCodingError(f"k must be >= 1, got {self.k}")
        if self.m < 0:
            raise ErasureCodingError(f"m must be >= 0, got {self.m}")
        if self.k + self.m > 256:
            raise ErasureCodingError(f"k+m must be <= 256, got {self.k + self.m}")
        if self.technique not in ("vandermonde", "cauchy"):
            raise ErasureCodingError(f"unknown technique {self.technique!r}")

    @property
    def n(self) -> int:
        """Total shard count."""
        return self.k + self.m


class ReedSolomon:
    """Encoder/decoder for one EC profile."""

    def __init__(self, k: int, m: int, technique: str = "vandermonde"):
        self.profile = ECProfile(k, m, technique)
        if technique == "vandermonde":
            self.generator = systematic_vandermonde(k, m)
        else:
            self.generator = systematic_cauchy(k, m)
        #: XOR byte operations performed (profiling hook for the cost model)
        self.bytes_processed = 0

    @property
    def k(self) -> int:
        """Data shard count."""
        return self.profile.k

    @property
    def m(self) -> int:
        """Parity shard count."""
        return self.profile.m

    # -- shard segmentation -----------------------------------------------------

    def shard_size(self, data_len: int) -> int:
        """Bytes per shard for an object of ``data_len`` (zero-padded)."""
        return (data_len + self.k - 1) // self.k if data_len else 1

    def split(self, data: bytes) -> np.ndarray:
        """Object bytes -> (k, shard_size) array, zero padded."""
        size = self.shard_size(len(data))
        buf = np.zeros((self.k, size), dtype=np.uint8)
        flat = np.frombuffer(data, dtype=np.uint8)
        buf.reshape(-1)[: len(flat)] = flat
        return buf

    def join(self, shards: np.ndarray, data_len: int) -> bytes:
        """(k, shard_size) data shards -> original bytes."""
        return shards.reshape(-1)[:data_len].tobytes()

    # -- encode / decode ------------------------------------------------------------

    def encode(self, data: bytes) -> list[bytes]:
        """Encode an object into k data + m parity shards."""
        data_shards = self.split(data)
        parity = gf_matmul(self.generator[self.k :], data_shards)
        self.bytes_processed += data_shards.size + parity.size
        return [bytes(row) for row in data_shards] + [bytes(row) for row in parity]

    def encode_shards(self, data_shards: np.ndarray) -> np.ndarray:
        """Parity rows for pre-split data shards (array in, array out)."""
        if data_shards.shape[0] != self.k:
            raise ErasureCodingError(
                f"expected {self.k} data shards, got {data_shards.shape[0]}"
            )
        self.bytes_processed += data_shards.size * (1 + self.m / max(1, self.k))
        return gf_matmul(self.generator[self.k :], data_shards)

    def decode(self, shards: Sequence[Optional[bytes]], data_len: int) -> bytes:
        """Reconstruct the object from any >= k surviving shards.

        ``shards`` has n slots ordered by shard index; missing shards are
        None.  Raises :class:`DecodeError` with a precise message when too
        few survive.
        """
        n = self.profile.n
        if len(shards) != n:
            raise ErasureCodingError(f"expected {n} shard slots, got {len(shards)}")
        present = [i for i, s in enumerate(shards) if s is not None]
        if len(present) < self.k:
            raise DecodeError(
                f"unrecoverable: {len(present)} shards survive but k={self.k} required"
            )
        # Fast path: all data shards intact.
        if all(shards[i] is not None for i in range(self.k)):
            data_rows = np.stack(
                [np.frombuffer(shards[i], dtype=np.uint8) for i in range(self.k)]
            )
            return self.join(data_rows, data_len)
        use = present[: self.k]
        sub = self.generator[use]  # (k, k) rows of surviving shards
        inv = gauss_jordan_invert(sub)
        survivors = np.stack([np.frombuffer(shards[i], dtype=np.uint8) for i in use])
        data_rows = gf_matmul(inv, survivors)
        self.bytes_processed += survivors.size * 2
        return self.join(data_rows, data_len)

    def reconstruct_shard(self, shards: Sequence[Optional[bytes]], index: int) -> bytes:
        """Rebuild a single lost shard (the recovery-path primitive)."""
        n = self.profile.n
        if not 0 <= index < n:
            raise ErasureCodingError(f"shard index {index} out of range [0, {n})")
        if shards[index] is not None:
            return shards[index]
        present = [i for i, s in enumerate(shards) if s is not None]
        if len(present) < self.k:
            raise DecodeError(
                f"unrecoverable shard {index}: only {len(present)} survive, k={self.k}"
            )
        use = present[: self.k]
        inv = gauss_jordan_invert(self.generator[use])
        survivors = np.stack([np.frombuffer(shards[i], dtype=np.uint8) for i in use])
        data_rows = gf_matmul(inv, survivors)
        row = gf_matmul(self.generator[index : index + 1], data_rows)
        return bytes(row[0])

    def __repr__(self) -> str:
        return f"<ReedSolomon k={self.k} m={self.m} {self.profile.technique}>"
