"""Systematic Reed-Solomon erasure codec over GF(2^8).

``ReedSolomon(k, m)`` splits an object into ``k`` data shards and
computes ``m`` parity shards; any ``k`` surviving shards reconstruct the
original.  This is the algorithm behind Ceph EC pools and the workload
of the paper's Reed-Solomon RTL accelerator (Table I).

Encoding is a GF matrix multiply over the shard block; decoding inverts
the surviving rows of the generator matrix (Gauss-Jordan) and re-multiplies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import DecodeError, ErasureCodingError
from .gf256 import gf_matmul
from .matrix import gauss_jordan_invert, systematic_cauchy, systematic_vandermonde


@dataclass(frozen=True)
class ECProfile:
    """Erasure-code parameters, mirroring a Ceph EC profile."""

    k: int
    m: int
    technique: str = "vandermonde"  # or "cauchy"

    def __post_init__(self):
        if self.k < 1:
            raise ErasureCodingError(f"k must be >= 1, got {self.k}")
        if self.m < 0:
            raise ErasureCodingError(f"m must be >= 0, got {self.m}")
        if self.k + self.m > 256:
            raise ErasureCodingError(f"k+m must be <= 256, got {self.k + self.m}")
        if self.technique not in ("vandermonde", "cauchy"):
            raise ErasureCodingError(f"unknown technique {self.technique!r}")

    @property
    def n(self) -> int:
        """Total shard count."""
        return self.k + self.m


class ReedSolomon:
    """Encoder/decoder for one EC profile."""

    def __init__(self, k: int, m: int, technique: str = "vandermonde"):
        self.profile = ECProfile(k, m, technique)
        if technique == "vandermonde":
            self.generator = systematic_vandermonde(k, m)
        else:
            self.generator = systematic_cauchy(k, m)
        #: XOR byte operations performed (profiling hook for the cost model)
        self.bytes_processed = 0

    @property
    def k(self) -> int:
        """Data shard count."""
        return self.profile.k

    @property
    def m(self) -> int:
        """Parity shard count."""
        return self.profile.m

    # -- shard segmentation -----------------------------------------------------

    def shard_size(self, data_len: int) -> int:
        """Bytes per shard for an object of ``data_len`` (zero-padded)."""
        return (data_len + self.k - 1) // self.k if data_len else 1

    def split(self, data: bytes) -> np.ndarray:
        """Object bytes -> (k, shard_size) array, zero padded."""
        size = self.shard_size(len(data))
        buf = np.zeros((self.k, size), dtype=np.uint8)
        flat = np.frombuffer(data, dtype=np.uint8)
        buf.reshape(-1)[: len(flat)] = flat
        return buf

    def join(self, shards: np.ndarray, data_len: int) -> bytes:
        """(k, shard_size) data shards -> original bytes."""
        return shards.reshape(-1)[:data_len].tobytes()

    # -- encode / decode ------------------------------------------------------------

    def encode(self, data: bytes) -> list[bytes]:
        """Encode an object into k data + m parity shards."""
        data_shards = self.split(data)
        parity = gf_matmul(self.generator[self.k :], data_shards)
        self.bytes_processed += data_shards.size + parity.size
        return [bytes(row) for row in data_shards] + [bytes(row) for row in parity]

    def encode_shards(self, data_shards: np.ndarray) -> np.ndarray:
        """Parity rows for pre-split data shards (array in, array out)."""
        if data_shards.shape[0] != self.k:
            raise ErasureCodingError(
                f"expected {self.k} data shards, got {data_shards.shape[0]}"
            )
        self.bytes_processed += data_shards.size * (1 + self.m / max(1, self.k))
        return gf_matmul(self.generator[self.k :], data_shards)

    def encode_batch(self, objects: Sequence[bytes]) -> list[list[bytes]]:
        """Encode many objects with one matmul per shard-size class.

        Stripes of equal shard size are packed side by side into a
        single (k, size * count) matrix, so the whole batch costs one
        generator multiply instead of ``len(objects)`` per-stripe calls.
        Output is byte-identical to calling :meth:`encode` per object.
        """
        out: list[Optional[list[bytes]]] = [None] * len(objects)
        groups: dict[int, list[int]] = {}
        for i, data in enumerate(objects):
            groups.setdefault(self.shard_size(len(data)), []).append(i)
        for size, idxs in groups.items():
            packed = np.zeros((self.k, size * len(idxs)), dtype=np.uint8)
            for col, i in enumerate(idxs):
                packed[:, col * size : (col + 1) * size] = self.split(objects[i])
            parity = gf_matmul(self.generator[self.k :], packed)
            self.bytes_processed += packed.size + parity.size
            for col, i in enumerate(idxs):
                lo, hi = col * size, (col + 1) * size
                out[i] = [bytes(row) for row in packed[:, lo:hi]] + [
                    bytes(row) for row in parity[:, lo:hi]
                ]
        return out  # type: ignore[return-value]

    def decode_batch(
        self, shard_sets: Sequence[Sequence[Optional[bytes]]], data_lens: Sequence[int]
    ) -> list[bytes]:
        """Decode many objects, sharing one inverse + matmul per erasure
        pattern and shard-size class.

        Objects whose surviving-shard pattern and shard size match are
        decoded together: the (k, k) sub-generator is inverted once and
        applied to the side-by-side packed survivors in a single
        multiply.  Byte-identical to per-object :meth:`decode`, including
        degraded decode-from-survivors.
        """
        if len(shard_sets) != len(data_lens):
            raise ErasureCodingError(
                f"{len(shard_sets)} shard sets but {len(data_lens)} lengths"
            )
        n = self.profile.n
        out: list[Optional[bytes]] = [None] * len(shard_sets)
        groups: dict[tuple[tuple[int, ...], int], list[int]] = {}
        for i, shards in enumerate(shard_sets):
            if len(shards) != n:
                raise ErasureCodingError(f"expected {n} shard slots, got {len(shards)}")
            present = tuple(j for j, s in enumerate(shards) if s is not None)
            if len(present) < self.k:
                raise DecodeError(
                    f"unrecoverable: {len(present)} shards survive but k={self.k} required"
                )
            size = len(shard_sets[i][present[0]])
            groups.setdefault((present, size), []).append(i)
        for (present, size), idxs in groups.items():
            if all(j < self.k for j in present[: self.k]):
                # All data shards intact: reassembly only, no field math.
                for i in idxs:
                    rows = np.stack(
                        [np.frombuffer(shard_sets[i][j], dtype=np.uint8) for j in range(self.k)]
                    )
                    out[i] = self.join(rows, data_lens[i])
                continue
            use = list(present[: self.k])
            inv = gauss_jordan_invert(self.generator[use])
            packed = np.empty((self.k, size * len(idxs)), dtype=np.uint8)
            for col, i in enumerate(idxs):
                for row, j in enumerate(use):
                    packed[row, col * size : (col + 1) * size] = np.frombuffer(
                        shard_sets[i][j], dtype=np.uint8
                    )
            data_rows = gf_matmul(inv, packed)
            self.bytes_processed += packed.size * 2
            for col, i in enumerate(idxs):
                out[i] = self.join(
                    data_rows[:, col * size : (col + 1) * size], data_lens[i]
                )
        return out  # type: ignore[return-value]

    def decode(self, shards: Sequence[Optional[bytes]], data_len: int) -> bytes:
        """Reconstruct the object from any >= k surviving shards.

        ``shards`` has n slots ordered by shard index; missing shards are
        None.  Raises :class:`DecodeError` with a precise message when too
        few survive.
        """
        n = self.profile.n
        if len(shards) != n:
            raise ErasureCodingError(f"expected {n} shard slots, got {len(shards)}")
        present = [i for i, s in enumerate(shards) if s is not None]
        if len(present) < self.k:
            raise DecodeError(
                f"unrecoverable: {len(present)} shards survive but k={self.k} required"
            )
        # Fast path: all data shards intact.
        if all(shards[i] is not None for i in range(self.k)):
            data_rows = np.stack(
                [np.frombuffer(shards[i], dtype=np.uint8) for i in range(self.k)]
            )
            return self.join(data_rows, data_len)
        use = present[: self.k]
        sub = self.generator[use]  # (k, k) rows of surviving shards
        inv = gauss_jordan_invert(sub)
        survivors = np.stack([np.frombuffer(shards[i], dtype=np.uint8) for i in use])
        data_rows = gf_matmul(inv, survivors)
        self.bytes_processed += survivors.size * 2
        return self.join(data_rows, data_len)

    def reconstruct_shard(self, shards: Sequence[Optional[bytes]], index: int) -> bytes:
        """Rebuild a single lost shard (the recovery-path primitive)."""
        n = self.profile.n
        if not 0 <= index < n:
            raise ErasureCodingError(f"shard index {index} out of range [0, {n})")
        if shards[index] is not None:
            return shards[index]
        present = [i for i, s in enumerate(shards) if s is not None]
        if len(present) < self.k:
            raise DecodeError(
                f"unrecoverable shard {index}: only {len(present)} survive, k={self.k}"
            )
        use = present[: self.k]
        inv = gauss_jordan_invert(self.generator[use])
        survivors = np.stack([np.frombuffer(shards[i], dtype=np.uint8) for i in use])
        data_rows = gf_matmul(inv, survivors)
        row = gf_matmul(self.generator[index : index + 1], data_rows)
        return bytes(row[0])

    def __repr__(self) -> str:
        return f"<ReedSolomon k={self.k} m={self.m} {self.profile.technique}>"
