"""Matrix algebra over GF(2^8): construction and Gauss-Jordan inversion.

Provides the generator matrices for Reed-Solomon codes (Vandermonde in
systematic form, and Cauchy) and the inversion routine the decoder uses
to solve for lost shards.
"""

from __future__ import annotations

import numpy as np

from ..errors import ErasureCodingError
from .gf256 import gf_inv, gf_mul, gf_pow


def identity(n: int) -> np.ndarray:
    """n x n identity over GF(2^8)."""
    return np.eye(n, dtype=np.uint8)


def vandermonde(rows: int, cols: int) -> np.ndarray:
    """Raw Vandermonde matrix V[i, j] = i**j (field exponentiation)."""
    out = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            out[i, j] = gf_pow(i, j)
    return out


def cauchy(m: int, k: int) -> np.ndarray:
    """Cauchy parity block C[i, j] = 1 / (x_i + y_j), x_i = k+i, y_j = j.

    Any square submatrix of a Cauchy matrix is invertible, which makes
    [I; C] a valid systematic generator without the row-reduction step
    Vandermonde needs.
    """
    if m + k > 256:
        raise ErasureCodingError(f"cauchy needs m+k <= 256, got {m}+{k}")
    out = np.zeros((m, k), dtype=np.uint8)
    for i in range(m):
        for j in range(k):
            out[i, j] = gf_inv((k + i) ^ j)
    return out


def gauss_jordan_invert(mat: np.ndarray) -> np.ndarray:
    """Invert a square matrix over GF(2^8).

    Raises :class:`ErasureCodingError` when the matrix is singular (which
    the RS decoder translates into "data unrecoverable").
    """
    mat = np.asarray(mat, dtype=np.uint8)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ErasureCodingError(f"cannot invert non-square matrix {mat.shape}")
    n = mat.shape[0]
    work = mat.astype(np.int32)
    inv = np.eye(n, dtype=np.int32)
    for col in range(n):
        # Find a pivot.
        pivot = -1
        for row in range(col, n):
            if work[row, col] != 0:
                pivot = row
                break
        if pivot < 0:
            raise ErasureCodingError(f"singular matrix (no pivot in column {col})")
        if pivot != col:
            work[[col, pivot]] = work[[pivot, col]]
            inv[[col, pivot]] = inv[[pivot, col]]
        # Normalize the pivot row.
        scale = gf_inv(int(work[col, col]))
        for j in range(n):
            work[col, j] = gf_mul(int(work[col, j]), scale)
            inv[col, j] = gf_mul(int(inv[col, j]), scale)
        # Eliminate the column from all other rows.
        for row in range(n):
            if row == col or work[row, col] == 0:
                continue
            factor = int(work[row, col])
            for j in range(n):
                work[row, j] ^= gf_mul(factor, int(work[col, j]))
                inv[row, j] ^= gf_mul(factor, int(inv[col, j]))
    return inv.astype(np.uint8)


def systematic_vandermonde(k: int, m: int) -> np.ndarray:
    """(k+m) x k systematic generator from a Vandermonde matrix.

    Build the (k+m) x k Vandermonde, then column-reduce so the top k x k
    block is the identity (the classic jerasure construction).  The
    result encodes data shards unchanged and appends m parity rows, and
    every k x k submatrix of the full generator stays invertible.
    """
    if k < 1 or m < 0:
        raise ErasureCodingError(f"invalid code parameters k={k}, m={m}")
    if k + m > 256:
        raise ErasureCodingError(f"k+m must be <= 256, got {k + m}")
    v = vandermonde(k + m, k).astype(np.int32)
    # Column-reduce the top block to identity.
    for col in range(k):
        if v[col, col] == 0:
            # Swap with a column that has a nonzero entry in this row.
            for c2 in range(col + 1, k):
                if v[col, c2] != 0:
                    v[:, [col, c2]] = v[:, [c2, col]]
                    break
            else:
                raise ErasureCodingError("vandermonde reduction failed (zero row)")
        inv_p = gf_inv(int(v[col, col]))
        for r in range(k + m):
            v[r, col] = gf_mul(int(v[r, col]), inv_p)
        for c2 in range(k):
            if c2 == col or v[col, c2] == 0:
                continue
            factor = int(v[col, c2])
            for r in range(k + m):
                v[r, c2] ^= gf_mul(factor, int(v[r, col]))
    return v.astype(np.uint8)


def systematic_cauchy(k: int, m: int) -> np.ndarray:
    """(k+m) x k systematic generator [I; Cauchy]."""
    if k < 1 or m < 0:
        raise ErasureCodingError(f"invalid code parameters k={k}, m={m}")
    return np.vstack([identity(k), cauchy(m, k)]) if m else identity(k)
