"""Striping: splitting large objects into fixed-size stripe units.

Ceph EC pools write objects in stripes: each stripe of ``k *
stripe_unit`` bytes is independently encoded into k+m chunks.  This
module provides the address arithmetic used by the RBD layer and the EC
pool writer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ErasureCodingError


@dataclass(frozen=True)
class StripeLayout:
    """Geometry of an EC stripe."""

    k: int
    stripe_unit: int  # bytes per chunk per stripe

    def __post_init__(self):
        if self.k < 1:
            raise ErasureCodingError(f"k must be >= 1, got {self.k}")
        if self.stripe_unit < 1:
            raise ErasureCodingError(f"stripe_unit must be >= 1, got {self.stripe_unit}")

    @property
    def stripe_width(self) -> int:
        """Logical bytes covered by one full stripe."""
        return self.k * self.stripe_unit

    def stripe_of(self, offset: int) -> int:
        """Stripe index containing logical ``offset``."""
        if offset < 0:
            raise ErasureCodingError(f"negative offset {offset}")
        return offset // self.stripe_width

    def chunk_of(self, offset: int) -> int:
        """Chunk index (0..k-1) within the stripe for ``offset``."""
        return (offset % self.stripe_width) // self.stripe_unit

    def chunk_offset(self, offset: int) -> int:
        """Byte offset within the chunk for logical ``offset``."""
        return offset % self.stripe_unit

    def stripes_for_extent(self, offset: int, length: int) -> list[int]:
        """All stripe indices a [offset, offset+length) extent touches."""
        if length <= 0:
            return []
        first = self.stripe_of(offset)
        last = self.stripe_of(offset + length - 1)
        return list(range(first, last + 1))

    def extent_in_stripe(self, stripe: int, offset: int, length: int) -> tuple[int, int]:
        """Portion of [offset, offset+length) inside ``stripe``.

        Returns (offset_within_stripe, sub_length); sub_length may be 0.
        """
        start = stripe * self.stripe_width
        end = start + self.stripe_width
        lo = max(offset, start)
        hi = min(offset + length, end)
        return (lo - start, max(0, hi - lo))

    def is_full_stripe_write(self, offset: int, length: int) -> bool:
        """True when the extent covers whole stripes only (no RMW needed)."""
        return offset % self.stripe_width == 0 and length % self.stripe_width == 0
