"""Replication as a codec, sharing the erasure-coding interface.

Lets the OSD pool layer treat durability uniformly: ``encode`` yields N
identical copies, ``decode`` returns the first surviving one.  Storage
overhead and rebuild cost differ wildly from RS — exactly the trade-off
the paper benchmarks in both modes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import DecodeError, ErasureCodingError


class ReplicationCodec:
    """N-way replication behind the shard-codec interface."""

    def __init__(self, copies: int = 3):
        if copies < 1:
            raise ErasureCodingError(f"replication needs >= 1 copy, got {copies}")
        self.copies = copies

    @property
    def k(self) -> int:
        """Data shards (always 1: each copy is the full object)."""
        return 1

    @property
    def m(self) -> int:
        """Redundant copies."""
        return self.copies - 1

    @property
    def n(self) -> int:
        """Total stored copies."""
        return self.copies

    def encode(self, data: bytes) -> list[bytes]:
        """N identical copies."""
        return [data for _ in range(self.copies)]

    def decode(self, shards: Sequence[Optional[bytes]], data_len: int) -> bytes:
        """First surviving copy."""
        if len(shards) != self.copies:
            raise ErasureCodingError(f"expected {self.copies} slots, got {len(shards)}")
        for shard in shards:
            if shard is not None:
                return shard[:data_len]
        raise DecodeError("all replicas lost")

    def storage_overhead(self) -> float:
        """Stored bytes per logical byte (3 for 3x replication)."""
        return float(self.copies)

    def __repr__(self) -> str:
        return f"<ReplicationCodec copies={self.copies}>"
