"""Erasure coding: GF(2^8) Reed-Solomon plus a replication codec.

The data-durability layer of the simulated Ceph substrate, and the
workload of the paper's Reed-Solomon Encoder RTL accelerator.
"""

from .gf256 import (
    PRIMITIVE_POLY,
    gf_add,
    gf_div,
    gf_inv,
    gf_matmul,
    gf_mul,
    gf_mul_add_array,
    gf_mul_array,
    gf_pow,
    gf_sub,
)
from .matrix import (
    cauchy,
    gauss_jordan_invert,
    identity,
    systematic_cauchy,
    systematic_vandermonde,
    vandermonde,
)
from .reed_solomon import ECProfile, ReedSolomon
from .replication import ReplicationCodec
from .stripe import StripeLayout

__all__ = [
    "ECProfile",
    "PRIMITIVE_POLY",
    "ReedSolomon",
    "ReplicationCodec",
    "StripeLayout",
    "cauchy",
    "gauss_jordan_invert",
    "gf_add",
    "gf_div",
    "gf_inv",
    "gf_matmul",
    "gf_mul",
    "gf_mul_add_array",
    "gf_mul_array",
    "gf_pow",
    "gf_sub",
    "identity",
    "systematic_cauchy",
    "systematic_vandermonde",
    "vandermonde",
]
