"""GF(2^8) arithmetic with NumPy-vectorized table lookups.

The field is built over the AES/Rijndael-compatible primitive polynomial
``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D, the polynomial used by ISA-L,
jerasure, and Ceph's Reed-Solomon plugins).  Multiplication uses
log/antilog tables; bulk operations on byte arrays are vectorized per the
HPC guide's "vectorize the hot loop" rule — encoding throughput depends
on it.
"""

from __future__ import annotations

import numpy as np

from ..errors import ErasureCodingError

#: The primitive polynomial (degree-8 bits dropped): x^8+x^4+x^3+x^2+1.
PRIMITIVE_POLY = 0x11D
#: Generator element used to build the log tables.
GENERATOR = 2
#: Field order.
ORDER = 256

# --- table construction (runs once at import) --------------------------------

_EXP = np.zeros(512, dtype=np.uint8)  # doubled to skip a modulo in mul
_LOG = np.zeros(256, dtype=np.int32)

_x = 1
for _i in range(255):
    _EXP[_i] = _x
    _LOG[_x] = _i
    _x <<= 1
    if _x & 0x100:
        _x ^= PRIMITIVE_POLY
for _i in range(255, 512):
    _EXP[_i] = _EXP[_i - 255]


def gf_add(a, b):
    """Addition in GF(2^8) is XOR (works on scalars and arrays)."""
    return np.bitwise_xor(a, b)


# Subtraction equals addition in characteristic 2.
gf_sub = gf_add


def gf_mul(a: int, b: int) -> int:
    """Scalar multiply."""
    if a == 0 or b == 0:
        return 0
    return int(_EXP[int(_LOG[a]) + int(_LOG[b])])


def gf_div(a: int, b: int) -> int:
    """Scalar divide; raises on division by zero."""
    if b == 0:
        raise ErasureCodingError("division by zero in GF(2^8)")
    if a == 0:
        return 0
    return int(_EXP[(int(_LOG[a]) - int(_LOG[b])) % 255])


def gf_inv(a: int) -> int:
    """Multiplicative inverse."""
    if a == 0:
        raise ErasureCodingError("zero has no inverse in GF(2^8)")
    return int(_EXP[255 - int(_LOG[a])])


def gf_pow(a: int, n: int) -> int:
    """a**n in the field (n may be any integer)."""
    if a == 0:
        if n == 0:
            return 1
        if n < 0:
            raise ErasureCodingError("zero has no negative powers")
        return 0
    return int(_EXP[(int(_LOG[a]) * n) % 255])


def gf_mul_array(scalar: int, data: np.ndarray) -> np.ndarray:
    """Multiply every byte of ``data`` by ``scalar`` (vectorized).

    This is the encoder's inner loop: one table gather per byte instead
    of per-element Python arithmetic.
    """
    data = np.asarray(data, dtype=np.uint8)
    if scalar == 0:
        return np.zeros_like(data)
    if scalar == 1:
        return data.copy()
    log_s = int(_LOG[scalar])
    out = _EXP[log_s + _LOG[data]].astype(np.uint8)
    out[data == 0] = 0
    return out


def gf_mul_add_array(acc: np.ndarray, scalar: int, data: np.ndarray) -> None:
    """``acc ^= scalar * data`` in place (the GF(2^8) axpy kernel)."""
    if scalar == 0:
        return
    np.bitwise_xor(acc, gf_mul_array(scalar, data), out=acc)


#: Above this (m * k * blocksize) byte budget the broadcasted kernel's
#: intermediate would thrash caches; fall back to the row-axpy loop.
_MATMUL_BROADCAST_LIMIT = 1 << 26  # 64 MiB


def gf_matmul(mat: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Matrix-vector product over GF(2^8) on byte blocks.

    ``mat`` is (m, k) of uint8 coefficients; ``data`` is (k, blocksize)
    bytes.  Returns (m, blocksize).  Each output row is the axpy-sum of
    the input rows — the exact dataflow of the paper's Reed-Solomon
    encoder pipeline.

    The product is computed as one broadcasted table-gather + XOR
    reduction (a single NumPy dispatch for the whole matrix) instead of
    m*k Python-level axpy calls; field arithmetic is exact either way,
    so the two paths are byte-identical.  Inputs too large for the
    (m, k, blocksize) intermediate take the axpy loop.
    """
    mat = np.asarray(mat, dtype=np.uint8)
    data = np.asarray(data, dtype=np.uint8)
    if mat.ndim != 2 or data.ndim != 2:
        raise ErasureCodingError(f"gf_matmul needs 2-D inputs, got {mat.shape} x {data.shape}")
    m, k = mat.shape
    if data.shape[0] != k:
        raise ErasureCodingError(f"shape mismatch: mat {mat.shape} vs data {data.shape}")
    blocksize = data.shape[1]
    if m == 0 or k == 0 or blocksize == 0:
        return np.zeros((m, blocksize), dtype=np.uint8)
    if m * k * blocksize > _MATMUL_BROADCAST_LIMIT:
        out = np.zeros((m, blocksize), dtype=np.uint8)
        for i in range(m):
            acc = out[i]
            for j in range(k):
                gf_mul_add_array(acc, int(mat[i, j]), data[j])
        return out
    # exp(log a + log b) with zeros masked out: _LOG[0] is 0 (a lie), so
    # any product with a zero coefficient or zero data byte is forced to
    # zero explicitly before the XOR reduction.
    prod = _EXP[_LOG[mat][:, :, None] + _LOG[data][None, :, :]]
    nonzero = (mat != 0)[:, :, None] & (data != 0)[None, :, :]
    prod &= np.where(nonzero, np.uint8(0xFF), np.uint8(0))
    return np.bitwise_xor.reduce(prod, axis=1)
