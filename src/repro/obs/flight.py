"""Tail-sampling flight recorder: keep recent span trees, dump slow ones.

Always-on tracing must not pay full-dump cost for every request.  The
recorder holds a bounded ring of recently completed causal span trees
(cheap: the trees already exist, the ring only holds references) and
*promotes to a full dump only the requests the slow-op detector flags*.
Steady fault-free state therefore costs one deque append per request,
while every flagged op arrives with its complete span tree plus an
auto-generated critical-path root-cause report, e.g.::

    gated 71.3% by fabric/osd.3/wal-flush (service), attempt=2, backoff 11.0%

built from the same exact attribution :func:`repro.obs.critical_path.analyze`
computes for ``python -m repro profile``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from .context import SpanNode
from .critical_path import analyze, verify_exact
from .slowop import SlowOpRecord

#: Span kinds that represent retry/backoff waiting rather than work.
_WAIT_KINDS = frozenset({"wait"})


@dataclass
class RootCauseReport:
    """Machine-readable critical-path explanation of one slow op."""

    total_ns: int
    #: Top-level layer -> attributed ns (exact partition of total_ns).
    by_stage: dict[str, int]
    #: The layer owning the largest share.
    gating_stage: str
    gating_share: float
    #: Deepest span stack owning the largest single-span share.
    gating_stack: tuple[str, ...]
    gating_span_ns: int
    #: Highest retry attempt observed anywhere in the tree (1 = first try).
    attempts: int
    #: Share of the critical path spent in backoff/wait spans.
    backoff_share: float
    exact: bool

    def render(self) -> str:
        parts = [
            f"gated {100.0 * self.gating_share:.1f}% by "
            f"{'/'.join(self.gating_stack)}"
        ]
        if self.attempts > 1:
            parts.append(f"attempt={self.attempts}")
        if self.backoff_share > 0.0:
            parts.append(f"backoff {100.0 * self.backoff_share:.1f}%")
        return ", ".join(parts)

    def to_dict(self) -> dict:
        return {
            "total_ns": self.total_ns,
            "by_stage": {k: self.by_stage[k] for k in sorted(self.by_stage)},
            "gating_stage": self.gating_stage,
            "gating_share": round(self.gating_share, 6),
            "gating_stack": list(self.gating_stack),
            "gating_span_ns": self.gating_span_ns,
            "attempts": self.attempts,
            "backoff_share": round(self.backoff_share, 6),
            "exact": self.exact,
            "text": self.render(),
        }


def root_cause(root: SpanNode) -> RootCauseReport:
    """Exact critical-path attribution of one completed tree, summarized.

    The gating *stage* is the top-level layer with the largest share of
    the partition; the gating *stack* is the full path to the single
    span that owns the most nanoseconds (ties broken by stack name so
    two seeded runs report identically).
    """
    path = analyze(root)
    exact = verify_exact(path) is None
    by_stage = path.by_stage()
    total = path.total_ns or 1

    gating_stage = ""
    if by_stage:
        gating_stage = max(sorted(by_stage), key=lambda s: by_stage[s])
    gating_share = by_stage.get(gating_stage, 0) / total

    by_stack: dict[tuple[str, ...], int] = {}
    backoff_ns = 0
    for seg in path.segments:
        by_stack[seg.stack] = by_stack.get(seg.stack, 0) + seg.duration_ns
        if seg.span.kind in _WAIT_KINDS or seg.span.name == "backoff":
            backoff_ns += seg.duration_ns
    gating_stack: tuple[str, ...] = (root.name,)
    gating_span_ns = 0
    if by_stack:
        gating_stack = max(sorted(by_stack), key=lambda s: by_stack[s])
        gating_span_ns = by_stack[gating_stack]

    attempts = 1
    for span in root.walk():
        value = span.meta.get("attempt")
        if isinstance(value, int) and value > attempts:
            attempts = value

    return RootCauseReport(
        total_ns=path.total_ns,
        by_stage=by_stage,
        gating_stage=gating_stage,
        gating_share=gating_share,
        gating_stack=gating_stack,
        gating_span_ns=gating_span_ns,
        attempts=attempts,
        backoff_share=backoff_ns / total,
        exact=exact,
    )


@dataclass
class SlowOpDump:
    """One promoted slow op: detector record + tree + root cause."""

    record: SlowOpRecord
    root: SpanNode = field(repr=False)
    cause: RootCauseReport

    def to_dict(self, include_tree: bool = False) -> dict:
        out = {
            "record": self.record.to_dict(),
            "cause": self.cause.to_dict(),
        }
        if include_tree:
            out["tree"] = self.root.to_dict()
        return out


class FlightRecorder:
    """Bounded ring of recent span trees; dumps only what was flagged."""

    def __init__(self, capacity: int = 64, max_dumps: int = 32):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_dumps < 1:
            raise ValueError(f"max_dumps must be >= 1, got {max_dumps}")
        self.ring: deque[SpanNode] = deque(maxlen=capacity)
        self.max_dumps = max_dumps
        self.dumps: list[SlowOpDump] = []
        self.retained = 0
        self.promoted = 0
        #: Flagged ops whose tree was unavailable (no causal tracer, or
        #: already evicted) — counted, never silently dropped.
        self.missed = 0

    def retain(self, root: Optional[SpanNode]) -> None:
        """Remember one completed tree (cheap: reference only)."""
        if root is None:
            return
        self.ring.append(root)
        self.retained += 1

    def promote(self, record: SlowOpRecord, root: Optional[SpanNode]) -> Optional[SlowOpDump]:
        """Dump the flagged request's tree with its root-cause report.

        ``root`` may be passed directly (completion-path callers still
        hold it); a flagged record without a tree is counted in
        :attr:`missed` so overhead accounting stays honest.
        """
        if root is None or not root.complete:
            self.missed += 1
            return None
        dump = SlowOpDump(record=record, root=root, cause=root_cause(root))
        self.promoted += 1
        self.dumps.append(dump)
        if len(self.dumps) > self.max_dumps:
            del self.dumps[: len(self.dumps) - self.max_dumps]
        return dump

    def stats(self) -> dict:
        return {
            "ring_capacity": self.ring.maxlen,
            "ring_occupancy": len(self.ring),
            "retained": self.retained,
            "promoted": self.promoted,
            "missed": self.missed,
            "dumps_kept": len(self.dumps),
        }
