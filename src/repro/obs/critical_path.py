"""Critical-path analysis over causal span trees.

Given one request's :class:`~repro.obs.context.SpanNode` tree, the
analyzer partitions the root interval ``[start, end]`` into disjoint
segments, each attributed to exactly one span on the critical path.
The partition is exact by construction: the attributed nanoseconds sum
to the measured end-to-end latency with no rounding and no residual —
the acceptance criterion the tests enforce.

The walk is backward in time.  At each node we scan the node's closed
children from the latest-finishing one down:

* a gap between the current cursor and a child's end is the *parent's
  own* time (e.g. blk-mq self-time between the driver finishing and
  the CQE being reaped);
* the latest-finishing child in range owns the segment up to its end —
  we recurse into it over the clipped window;
* children that finish earlier than the cursor ever reaches are
  *shadowed* (the replica leg that was not the straggler) and get zero
  critical-path time; their slack is reported separately by
  :func:`stragglers`.

Open children (``end_ns < 0``) and zero-duration markers are skipped —
they cannot gate a completed request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .context import SpanNode


@dataclass
class PathSegment:
    """One disjoint slice of the root interval, owned by one span."""

    span: SpanNode
    start_ns: int
    end_ns: int
    #: Names from the root down to the owning span ("self" segments of a
    #: parent carry the parent's own stack, not a child's).
    stack: tuple[str, ...]

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass
class CriticalPath:
    """Exact attribution of one request's end-to-end latency."""

    root: SpanNode
    segments: list[PathSegment] = field(default_factory=list)

    @property
    def total_ns(self) -> int:
        return self.root.duration_ns

    def by_span(self) -> dict[int, int]:
        """span_id -> attributed ns (sums exactly to ``total_ns``)."""
        out: dict[int, int] = {}
        for seg in self.segments:
            out[seg.span.span_id] = out.get(seg.span.span_id, 0) + seg.duration_ns
        return out

    def by_kind(self) -> dict[str, int]:
        """Resource kind (queue/service/net/dma/...) -> attributed ns."""
        out: dict[str, int] = {}
        for seg in self.segments:
            out[seg.span.kind] = out.get(seg.span.kind, 0) + seg.duration_ns
        return out

    def by_stage(self) -> dict[str, int]:
        """Top-level layer -> attributed ns.

        The "stage" of a segment is the first element below the root in
        its stack; time attributed to the root itself is reported under
        the root's own name (API/submission overhead).
        """
        out: dict[str, int] = {}
        for seg in self.segments:
            stage = seg.stack[1] if len(seg.stack) > 1 else seg.stack[0]
            out[stage] = out.get(stage, 0) + seg.duration_ns
        return out

    def folded(self) -> dict[tuple[str, ...], int]:
        """Full stack -> ns, ready for folded-stack flamegraph export."""
        out: dict[tuple[str, ...], int] = {}
        for seg in self.segments:
            out[seg.stack] = out.get(seg.stack, 0) + seg.duration_ns
        return out


def _closed_children(span: SpanNode) -> list[SpanNode]:
    kids = [c for c in span.children if c.end_ns >= 0 and c.end_ns > c.start_ns]
    # Deterministic gating order: latest end wins; ties broken by start
    # then span id so two seeded runs attribute identically.
    kids.sort(key=lambda c: (c.end_ns, c.start_ns, c.span_id))
    return kids


def _attribute(
    span: SpanNode,
    lo: int,
    hi: int,
    stack: tuple[str, ...],
    segments: list[PathSegment],
) -> None:
    """Partition [lo, hi] among ``span`` and its gating children."""
    if hi <= lo:
        return
    cursor = hi
    for child in reversed(_closed_children(span)):
        if cursor <= lo:
            break
        c_lo = max(child.start_ns, lo)
        c_hi = min(child.end_ns, cursor)
        if c_hi <= c_lo:
            continue  # shadowed: a later-finishing sibling owns this window
        if c_hi < cursor:
            # Nothing was running in (c_hi, cursor] at this level: the
            # parent itself owns that slice (its self-time).
            segments.append(PathSegment(span, c_hi, cursor, stack))
        _attribute(child, c_lo, c_hi, stack + (child.name,), segments)
        cursor = c_lo
    if cursor > lo:
        segments.append(PathSegment(span, lo, cursor, stack))


def analyze(root: SpanNode) -> CriticalPath:
    """Compute the exact critical-path partition of a completed tree."""
    path = CriticalPath(root)
    if root.end_ns >= 0:
        _attribute(root, root.start_ns, root.end_ns, (root.name,), path.segments)
        # Oldest-first reads better in reports and exports.
        path.segments.reverse()
    return path


@dataclass
class StragglerReport:
    """One fan-out where a sibling finished later than the others."""

    parent: SpanNode
    gating: SpanNode
    #: (sibling, slack_ns): how much earlier each non-gating leg landed.
    slack: list[tuple[SpanNode, int]]


_FANOUT_KINDS = frozenset({"rpc", "fanout"})


def stragglers(root: SpanNode) -> list[StragglerReport]:
    """Find fan-outs whose completion was gated by one slow leg.

    For every span with two or more closed overlapping rpc/fanout
    children, the latest-finishing leg gates the parent; each sibling's
    slack is the time it spent waiting for the gating leg.
    """
    reports: list[StragglerReport] = []
    for span in root.walk():
        legs = [
            c
            for c in span.children
            if c.kind in _FANOUT_KINDS and c.end_ns >= 0
        ]
        if len(legs) < 2:
            continue
        legs.sort(key=lambda c: (c.end_ns, c.start_ns, c.span_id))
        gating = legs[-1]
        # Only a *concurrent* fan-out has stragglers; sequential retry
        # legs (disjoint intervals) are attribution, not slack.
        overlapping = [
            c for c in legs[:-1] if c.end_ns > gating.start_ns and c.start_ns < gating.end_ns
        ]
        if not overlapping:
            continue
        slack = [(c, gating.end_ns - c.end_ns) for c in overlapping]
        reports.append(StragglerReport(span, gating, slack))
    return reports


def aggregate_attribution(
    paths: Iterable[CriticalPath],
) -> tuple[dict[str, int], dict[str, int], dict[tuple[str, ...], int]]:
    """Sum per-request attributions: (by_stage, by_kind, folded)."""
    by_stage: dict[str, int] = {}
    by_kind: dict[str, int] = {}
    folded: dict[tuple[str, ...], int] = {}
    for path in paths:
        for stage, ns in path.by_stage().items():
            by_stage[stage] = by_stage.get(stage, 0) + ns
        for kind, ns in path.by_kind().items():
            by_kind[kind] = by_kind.get(kind, 0) + ns
        for stack, ns in path.folded().items():
            folded[stack] = folded.get(stack, 0) + ns
    return by_stage, by_kind, folded


def verify_exact(path: CriticalPath) -> Optional[str]:
    """Return an error string if the partition is not exact, else None.

    Checks that segments are disjoint, ordered, cover [start, end] with
    no holes, and sum to the root duration — the invariant the analyzer
    guarantees and the test-suite property test re-proves.
    """
    root = path.root
    if root.end_ns < 0:
        return None if not path.segments else "open root has segments"
    if not path.segments:
        if root.duration_ns == 0:
            return None
        return "non-empty interval produced no segments"
    cursor = root.start_ns
    for seg in path.segments:
        if seg.start_ns != cursor:
            return f"hole or overlap at {cursor}: segment starts at {seg.start_ns}"
        if seg.end_ns <= seg.start_ns:
            return f"empty segment at {seg.start_ns}"
        cursor = seg.end_ns
    if cursor != root.end_ns:
        return f"partition ends at {cursor}, root ends at {root.end_ns}"
    if sum(s.duration_ns for s in path.segments) != root.duration_ns:
        return "segment durations do not sum to root duration"
    return None
