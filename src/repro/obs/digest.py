"""Streaming latency digest: HDR-style log-linear histogram.

Per-stage latency distributions over long profiling runs must not hold
every sample (a production-scale sweep records millions of spans), so
the digest buckets samples into a log-linear histogram — 32 linear
sub-buckets per power of two — giving O(1) memory, deterministic
merges, and a worst-case quantile error of ~3% of the value, which is
far below the run-to-run variance it is used to summarize.
"""

from __future__ import annotations

SUBBUCKETS = 32
_SUB_SHIFT = 5  # log2(SUBBUCKETS)


def _bucket_index(value: int) -> int:
    if value < SUBBUCKETS:
        return value
    top = value.bit_length() - 1
    # Power-of-two group, then the linear sub-bucket within it.
    return ((top - _SUB_SHIFT + 1) << _SUB_SHIFT) + (value >> (top - _SUB_SHIFT)) - SUBBUCKETS


def _bucket_low(index: int) -> int:
    if index < SUBBUCKETS:
        return index
    # Inverse of _bucket_index: index = (group << SHIFT) + (value >> group),
    # with (value >> group) in [SUBBUCKETS, 2*SUBBUCKETS).
    group = (index >> _SUB_SHIFT) - 1
    return (index - (group << _SUB_SHIFT)) << group


class StreamingDigest:
    """Bounded-memory quantile sketch for non-negative integer samples."""

    __slots__ = ("buckets", "count", "total", "min_value", "max_value")

    def __init__(self):
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min_value = -1
        self.max_value = -1

    def add(self, value: int) -> None:
        if value < 0:
            raise ValueError("digest samples must be non-negative")
        idx = _bucket_index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1
        self.count += 1
        self.total += value
        if self.min_value < 0 or value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    def merge(self, other: "StreamingDigest") -> None:
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.count += other.count
        self.total += other.total
        if other.count:
            if self.min_value < 0 or (other.min_value >= 0 and other.min_value < self.min_value):
                self.min_value = other.min_value
            self.max_value = max(self.max_value, other.max_value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> int:
        """Approximate q-quantile (bucket lower bound; exact min/max)."""
        if not self.count:
            return 0
        if q <= 0.0:
            return self.min_value
        if q >= 1.0:
            return self.max_value
        rank = q * self.count
        seen = 0
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if seen >= rank:
                return max(self.min_value, min(self.max_value, _bucket_low(idx)))
        return self.max_value

    def fraction_above(self, threshold: int) -> float:
        """Approximate fraction of samples with value > ``threshold``.

        Exact while values are small enough for singleton buckets;
        otherwise the threshold's own bucket counts fully toward the
        "above" side, so the estimate errs high by at most one bucket
        width (~3% of the value) — the conservative direction for SLO
        burn accounting.
        """
        if not self.count:
            return 0.0
        if threshold < self.min_value:
            return 1.0
        if threshold >= self.max_value:
            return 0.0
        cut = _bucket_index(threshold)
        above = sum(n for idx, n in self.buckets.items() if idx > cut)
        if _bucket_low(cut + 1) - 1 > threshold:
            # The cut bucket spans values on both sides of the
            # threshold: count it whole (the conservative side).
            above += self.buckets.get(cut, 0)
        return above / self.count

    def percentiles(self) -> dict[str, int]:
        """The standard report row: p50/p95/p99/p999."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
        }

    def __repr__(self) -> str:
        return f"<StreamingDigest n={self.count} mean={self.mean:.0f} max={self.max_value}>"
