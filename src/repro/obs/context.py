"""Causal trace context: span *trees* over the flat six-stage tracer.

The flat :class:`repro.trace.Tracer` answers "how long did request 17
spend in ``fabric``?"; it cannot answer "which of the write's replica
legs gated completion" or "did the chaos retry re-enter the fabric
twice".  :class:`CausalTracer` keeps the flat stream (it *is* a Tracer,
so every existing ``record``/``summary`` call site works unchanged) and
additionally grows one :class:`SpanNode` tree per workload operation:

* the **root** is created when the API engine prepares the SQE (or,
  for engines that do not pre-stamp one, when the bio enters blk-mq);
* each datapath layer appends a **child** covering its own interval
  (``rings``, ``dmq``, ``uifd``/``nbd``, ``qdma``, ``accel``,
  ``fabric``, ``complete``);
* every fan-out — bio split across objects, replication fan-out, EC
  shard dispatch, primary sub-ops — and every retry/failover leg under
  an :class:`repro.osd.policy.OpPolicy` adds one child per leg, so the
  tree records *why* the op took as long as it did.

Span recording never creates simulation events: timestamps are read
from ``env.now`` and everything else is plain Python bookkeeping, so a
run with the causal tracer enabled produces the exact same event
stream (and therefore the same golden digests) as a run without it.

Span ids come from a per-tracer counter, so two seeded runs export
identical trees — the double-run determinism tests rely on it.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional

from ..errors import ReproError
from ..trace import Tracer


class SpanNode:
    """One node of a causal span tree."""

    __slots__ = ("span_id", "name", "kind", "start_ns", "end_ns", "parent", "children", "meta", "_tracer")

    def __init__(
        self,
        tracer: "CausalTracer",
        span_id: int,
        name: str,
        kind: str,
        start_ns: int,
        parent: Optional["SpanNode"] = None,
        meta: Optional[dict] = None,
    ):
        self._tracer = tracer
        self.span_id = span_id
        self.name = name
        #: Resource class the span occupies: "stage", "queue", "service",
        #: "compute", "dma", "net", "rpc", "fanout", "wait", "driver", ...
        self.kind = kind
        self.start_ns = start_ns
        #: -1 while open; :meth:`finish` extends monotonically, so layers
        #: that learn about completion at different times may all call it.
        self.end_ns = -1
        self.parent = parent
        self.children: list[SpanNode] = []
        self.meta: dict = meta or {}

    # -- lifecycle ---------------------------------------------------------------

    def child(self, name: str, kind: str = "span", start_ns: Optional[int] = None, **meta) -> "SpanNode":
        """Open a child span starting now (or at ``start_ns``)."""
        node = SpanNode(
            self._tracer,
            self._tracer._next_span_id(),
            name,
            kind,
            self._tracer.env.now if start_ns is None else start_ns,
            parent=self,
            meta=meta or None,
        )
        self.children.append(node)
        return node

    def record(self, name: str, kind: str, start_ns: int, end_ns: int, **meta) -> "SpanNode":
        """Append an already-closed child (retrospective instrumentation)."""
        if end_ns < start_ns:
            raise ReproError(f"span {name!r} ends before it starts")
        node = self.child(name, kind, start_ns=start_ns, **meta)
        node.end_ns = end_ns
        return node

    def finish(self, end_ns: Optional[int] = None, ok: bool = True, **meta) -> None:
        """Close (or extend) the span.

        ``end_ns`` defaults to the current clock.  Repeated calls keep
        the *latest* end: the block layer closes a request's root when
        the driver completes it, and the io_uring engine extends it to
        the CQE reap — both simply call ``finish()``.
        """
        end = self._tracer.env.now if end_ns is None else end_ns
        if end > self.end_ns:
            self.end_ns = end
        if not ok:
            self.meta["error"] = True
        if meta:
            self.meta.update(meta)

    def annotate(self, **meta) -> None:
        """Attach metadata without touching timestamps."""
        self.meta.update(meta)

    # -- inspection --------------------------------------------------------------

    @property
    def complete(self) -> bool:
        """True once the span has an end timestamp."""
        return self.end_ns >= 0

    @property
    def duration_ns(self) -> int:
        """Span length (0 while still open)."""
        return max(0, self.end_ns - self.start_ns) if self.end_ns >= 0 else 0

    def walk(self) -> Iterator["SpanNode"]:
        """Pre-order traversal of this subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["SpanNode"]:
        """Every descendant (including self) with the given name."""
        return [s for s in self.walk() if s.name == name]

    def to_dict(self) -> dict:
        """JSON-ready nested representation (deterministic key order)."""
        out = {
            "span_id": self.span_id,
            "name": self.name,
            "kind": self.kind,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
        }
        if self.meta:
            out["meta"] = {k: self.meta[k] for k in sorted(self.meta)}
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:
        state = f"{self.start_ns}..{self.end_ns}" if self.complete else f"{self.start_ns}.."
        return f"<SpanNode #{self.span_id} {self.name}/{self.kind} {state} kids={len(self.children)}>"


class CausalTracer(Tracer):
    """A :class:`Tracer` that additionally records causal span trees.

    Drop-in: every flat-tracer call site (``record``, ``summary``,
    ``breakdown_table``, the Chrome/CSV exports) behaves identically;
    layers that know about causality check :attr:`causal` and attach
    tree spans as well.
    """

    causal = True

    def __init__(self, env):
        super().__init__(env)
        #: Root spans in creation (= submission) order.
        self.roots: list[SpanNode] = []
        self._span_ids = itertools.count(1)

    def _next_span_id(self) -> int:
        return next(self._span_ids)

    def start_root(self, name: str, kind: str = "op", start_ns: Optional[int] = None, **meta) -> SpanNode:
        """Open a new request tree rooted now (or at ``start_ns``)."""
        root = SpanNode(
            self,
            self._next_span_id(),
            name,
            kind,
            self.env.now if start_ns is None else start_ns,
            meta=meta or None,
        )
        self.roots.append(root)
        return root

    def complete_trees(self) -> list[SpanNode]:
        """Roots whose end-to-end interval is closed."""
        return [r for r in self.roots if r.complete]

    def incomplete_trees(self) -> list[SpanNode]:
        """Roots that never completed (op failed mid-flight / run ended)."""
        return [r for r in self.roots if not r.complete]


def wrap_span(span: Optional[SpanNode], gen):
    """Process: run ``gen`` to completion, closing ``span`` either way.

    Used to time fan-out legs that run as spawned processes (RBD
    per-object writes, an OSD primary's local apply): the span closes
    when the leg's process finishes, with the error flag set if it
    raised.  With ``span=None`` this is a transparent passthrough, so
    call sites need no tracing conditionals around process creation.
    """
    try:
        result = yield from gen
    except BaseException:
        if span is not None:
            span.finish(ok=False)
        raise
    if span is not None:
        span.finish()
    return result
