"""Always-on cluster health: slow ops, health checks, SLO burn rates.

The health layer is the inverse of ``python -m repro profile``: instead
of a heavyweight opt-in analysis after the fact, it continuously
*notices* anomalies itself and retroactively produces the exact
critical-path explanation the repo already knows how to compute.  Four
cooperating pieces:

* :class:`~repro.obs.slowop.SlowOpDetector` — per-request latency
  accounting at the client and every OSD, adaptive thresholds;
* :class:`~repro.obs.flight.FlightRecorder` — bounded ring of recent
  causal span trees; only detector-flagged requests are promoted to
  full dumps with auto root-cause reports;
* the **cluster health model** here — periodic aggregation of PG
  states, OSD queue depth, WAL backlog, QoS floor/ceiling compliance,
  and cache dirty ratio into ``HEALTH_OK``/``WARN``/``ERR`` with
  structured, deduplicated checks (like ``ceph status``), plus
  per-tenant **SLO burn-rate tracking** over fast and slow windows
  built on merged :class:`~repro.obs.digest.StreamingDigest` buckets;
* exposition — :meth:`HealthReport.to_dict` (deterministic JSON) and
  :func:`repro.obs.export.to_prometheus` for the metrics registry.

**Event-stream neutrality**: the layer schedules zero simulation
events.  Completion-path hooks are plain bookkeeping reads of
``env.now``; periodic evaluation rides the
:class:`~repro.obs.sampler.ResourceSampler` grid as a gauge probe
(:meth:`HealthLayer.poll` returns the numeric status, so
``health.status`` lands in the registry as an ordinary time series).
A run with health attached executes the exact same event sequence as
one without — the healthbench neutrality check compares latency
streams to prove it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sim import NULL_METRICS
from ..units import ms
from .digest import StreamingDigest
from .flight import FlightRecorder, SlowOpDump
from .slowop import SlowOpConfig, SlowOpDetector

HEALTH_OK = "HEALTH_OK"
HEALTH_WARN = "HEALTH_WARN"
HEALTH_ERR = "HEALTH_ERR"

_SEVERITY_RANK = {HEALTH_OK: 0, HEALTH_WARN: 1, HEALTH_ERR: 2}

#: PG states that are fine (everything else degrades health).
_PG_CLEAN_STATES = frozenset({"active", "recovered"})


@dataclass(frozen=True)
class SloConfig:
    """One tenant's service-level objective and burn-window policy."""

    #: Requests slower than this count against the latency objective.
    latency_target_ns: int = ms(2)
    #: Fraction of requests that must meet the latency target.
    latency_objective: float = 0.99
    #: Fraction of requests that must complete without error.
    availability_objective: float = 0.999
    #: Fast burn window (paging signal) and slow window (ticket signal).
    fast_window_ns: int = ms(5)
    slow_window_ns: int = ms(25)
    #: Burn-rate alert thresholds (Google SRE multi-window style: the
    #: fast window catches sharp regressions, the slow window filters
    #: blips; both firing together is the severe condition).
    fast_burn_warn: float = 14.4
    slow_burn_warn: float = 6.0

    def __post_init__(self):
        if not 0.0 < self.latency_objective < 1.0:
            raise ValueError(f"latency_objective must be in (0,1), got {self.latency_objective}")
        if not 0.0 < self.availability_objective < 1.0:
            raise ValueError(
                f"availability_objective must be in (0,1), got {self.availability_objective}"
            )
        if self.fast_window_ns <= 0 or self.slow_window_ns < self.fast_window_ns:
            raise ValueError("need 0 < fast_window_ns <= slow_window_ns")


@dataclass(frozen=True)
class HealthConfig:
    """Tunables of the whole health layer."""

    slowop: SlowOpConfig = field(default_factory=SlowOpConfig)
    flight_capacity: int = 64
    max_dumps: int = 32
    #: Default SLO applied to every tenant; per-tenant overrides win.
    slo: SloConfig = field(default_factory=SloConfig)
    tenant_slo: dict[str, SloConfig] = field(default_factory=dict)
    #: Worker-pool queue depth at which an OSD is called backlogged.
    osd_queue_warn: int = 8
    #: Un-trimmed WAL records at which the backlog check fires.
    wal_backlog_warn: int = 64
    #: Dirty-line fraction at which the cache check fires.
    cache_dirty_warn: float = 0.85
    #: Multipliers for QoS floor/ceiling compliance (a tenant under
    #: 0.5x its reservation while active, or over 1.1x its limit, is
    #: out of compliance).
    qos_floor_slack: float = 0.5
    qos_limit_slack: float = 1.1


@dataclass
class HealthCheck:
    """One structured, deduplicated health finding (``ceph status`` style)."""

    code: str
    severity: str
    summary: str
    count: int = 1
    detail: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "summary": self.summary,
            "count": self.count,
            "detail": list(self.detail),
        }


class _SloBucket:
    __slots__ = ("index", "digest", "total", "errors")

    def __init__(self, index: int):
        self.index = index
        self.digest = StreamingDigest()
        self.total = 0
        self.errors = 0


class SloTracker:
    """Per-tenant windowed SLO accounting on merged streaming digests.

    Observations land in fixed time buckets (one per fast window); a
    window query merges the covering buckets' digests — the log-linear
    bucket-wise :meth:`StreamingDigest.merge` — so burn rates over any
    window cost O(buckets), not O(samples), and per-tenant digests can
    also be merged cluster-wide without re-ingesting samples.
    """

    def __init__(self, default: SloConfig, per_tenant: Optional[dict[str, SloConfig]] = None):
        self.default = default
        self.per_tenant = dict(per_tenant or {})
        self._buckets: dict[str, list[_SloBucket]] = {}

    def config_for(self, tenant: str) -> SloConfig:
        return self.per_tenant.get(tenant, self.default)

    def tenants(self) -> list[str]:
        return sorted(self._buckets)

    def observe(self, tenant: str, latency_ns: int, ok: bool, now_ns: int) -> None:
        cfg = self.config_for(tenant)
        index = now_ns // cfg.fast_window_ns
        buckets = self._buckets.setdefault(tenant, [])
        if not buckets or buckets[-1].index != index:
            buckets.append(_SloBucket(index))
            # Retire buckets older than the slow window (+1 for the
            # partially-covered edge bucket).
            keep = cfg.slow_window_ns // cfg.fast_window_ns + 2
            if len(buckets) > keep:
                del buckets[: len(buckets) - keep]
        bucket = buckets[-1]
        bucket.total += 1
        bucket.digest.add(latency_ns)
        if not ok:
            bucket.errors += 1

    def window(self, tenant: str, window_ns: int, now_ns: int) -> tuple[StreamingDigest, int, int]:
        """(merged digest, total, errors) over ``[now - window, now]``."""
        cfg = self.config_for(tenant)
        first = (now_ns - window_ns) // cfg.fast_window_ns
        merged = StreamingDigest()
        total = errors = 0
        for bucket in self._buckets.get(tenant, []):
            if bucket.index < first:
                continue
            merged.merge(bucket.digest)
            total += bucket.total
            errors += bucket.errors
        return merged, total, errors

    def burn_rate(self, tenant: str, window_ns: int, now_ns: int) -> float:
        """How fast the window burns error budget (1.0 = exactly on SLO).

        The latency burn uses the merged digest's tail mass above the
        target; the availability burn uses the exact error count.  The
        reported rate is the worse of the two.
        """
        cfg = self.config_for(tenant)
        digest, total, errors = self.window(tenant, window_ns, now_ns)
        if not total:
            return 0.0
        latency_bad = digest.fraction_above(cfg.latency_target_ns)
        latency_burn = latency_bad / (1.0 - cfg.latency_objective)
        avail_burn = (errors / total) / (1.0 - cfg.availability_objective)
        return max(latency_burn, avail_burn)

    def summary(self, now_ns: int) -> dict[str, dict]:
        out: dict[str, dict] = {}
        for tenant in self.tenants():
            cfg = self.config_for(tenant)
            digest, total, errors = self.window(tenant, cfg.slow_window_ns, now_ns)
            out[tenant] = {
                "total": total,
                "errors": errors,
                "p99_ns": digest.quantile(0.99),
                "target_ns": cfg.latency_target_ns,
                "fast_burn": round(self.burn_rate(tenant, cfg.fast_window_ns, now_ns), 4),
                "slow_burn": round(self.burn_rate(tenant, cfg.slow_window_ns, now_ns), 4),
            }
        return out


@dataclass
class HealthReport:
    """One run's health deliverable (deterministic, JSON-ready)."""

    status: str
    end_ns: int
    polls: int
    checks: list[HealthCheck]
    slow_ops: list[SlowOpDump] = field(repr=False, default_factory=list)
    slo: dict[str, dict] = field(default_factory=dict)
    op_classes: dict[str, dict] = field(default_factory=dict)
    flight: dict = field(default_factory=dict)

    def to_dict(self, include_trees: bool = False) -> dict:
        return {
            "status": self.status,
            "end_ns": self.end_ns,
            "polls": self.polls,
            "checks": [c.to_dict() for c in self.checks],
            "slow_ops": [d.to_dict(include_tree=include_trees) for d in self.slow_ops],
            "slo": self.slo,
            "op_classes": self.op_classes,
            "flight": self.flight,
        }

    def render(self) -> str:
        lines = [f"cluster health: {self.status}  ({self.polls} polls, t={self.end_ns} ns)"]
        if self.checks:
            lines.append("checks:")
            for check in self.checks:
                lines.append(f"  [{check.severity}] {check.code}: {check.summary}")
                for item in check.detail[:4]:
                    lines.append(f"      - {item}")
        else:
            lines.append("checks: none")
        if self.slo:
            lines.append("slo burn (per tenant, fast/slow windows):")
            for tenant, row in self.slo.items():
                lines.append(
                    f"  {tenant or '(untagged)':16s} ops {row['total']:5d}  "
                    f"err {row['errors']:3d}  p99 {row['p99_ns'] / 1000.0:8.1f} us  "
                    f"burn {row['fast_burn']:.2f}/{row['slow_burn']:.2f}"
                )
        if self.slow_ops:
            lines.append(f"slow ops ({len(self.slow_ops)} dumped):")
            for dump in self.slow_ops[:8]:
                rec = dump.record
                lines.append(
                    f"  #{rec.seq} {rec.op_class} {rec.latency_ns / 1000.0:.1f} us "
                    f"(threshold {rec.threshold_ns / 1000.0:.1f} us): {dump.cause.render()}"
                )
        return "\n".join(lines)


class HealthLayer:
    """The always-on health service: hooks + periodic cluster model.

    Attach with :meth:`attach` (or ``build_framework(..., health=...)``);
    drive evaluation by registering :meth:`poll` as a sampler gauge —
    the layer itself never creates a simulation event.
    """

    def __init__(self, env, config: Optional[HealthConfig] = None, metrics=None):
        self.env = env
        self.config = config or HealthConfig()
        self.metrics = metrics or NULL_METRICS
        self.detector = SlowOpDetector(self.config.slowop)
        self.flight = FlightRecorder(self.config.flight_capacity, self.config.max_dumps)
        self.slo = SloTracker(self.config.slo, self.config.tenant_slo)
        #: Wired by :meth:`attach`.
        self.cluster = None
        self.cache = None
        #: Active checks, deduplicated by code (latest evaluation wins).
        self.checks: dict[str, HealthCheck] = {}
        self.polls = 0
        self._m_client_ops = self.metrics.counter("health.client_ops")
        self._m_osd_ops = self.metrics.counter("health.osd_ops")
        self._m_slow_ops = self.metrics.counter("health.slow_ops")
        self._g_status = self.metrics.gauge("health.status_level")

    # -- wiring -------------------------------------------------------------------

    def attach(self, fw) -> "HealthLayer":
        """Install the completion-path hooks on a framework instance."""
        self.cluster = fw.cluster
        self.cache = fw.cache
        fw.blk.health = self
        for daemon in fw.cluster.daemons.values():
            daemon.health = self
        fw.health = self
        return self

    # -- completion-path hooks (no events, plain bookkeeping) ----------------------

    def observe_client(
        self, op_class: str, tenant: str, latency_ns: int, ok: bool, root=None
    ) -> None:
        """One client-visible completion (called by the API engine)."""
        now = self.env.now
        self._m_client_ops.add()
        self.flight.retain(root)
        self.slo.observe(tenant, latency_ns, ok, now)
        record = self.detector.observe(
            op_class, latency_ns, now, origin="client", tenant=tenant, ok=ok
        )
        if record is not None:
            self._m_slow_ops.add()
            self.flight.promote(record, root)

    def observe_osd(
        self, osd_id: int, op_class: str, tenant: str, latency_ns: int, ok: bool
    ) -> None:
        """One OSD op completion (called by the daemon's request path).

        OSD-side flags feed the detector and the per-class digests only;
        the span *tree* belongs to the client-visible request and is
        promoted there.
        """
        self._m_osd_ops.add()
        record = self.detector.observe(
            f"osd.{op_class}",
            latency_ns,
            self.env.now,
            origin=f"osd.{osd_id}",
            tenant=tenant,
            ok=ok,
        )
        if record is not None:
            self._m_slow_ops.add()

    # -- periodic cluster model -----------------------------------------------------

    def poll(self) -> float:
        """Re-evaluate every health source at the current clock.

        Registered as a :class:`ResourceSampler` gauge probe; the return
        value is the numeric status level (0 = OK, 1 = WARN, 2 = ERR),
        so ``health.status`` exports as an ordinary counter track.
        """
        self.polls += 1
        self.checks = {c.code: c for c in self.evaluate(self.env.now)}
        level = float(_SEVERITY_RANK[self.status()])
        self._g_status.set(level)
        return level

    def status(self) -> str:
        worst = HEALTH_OK
        for check in self.checks.values():
            if _SEVERITY_RANK[check.severity] > _SEVERITY_RANK[worst]:
                worst = check.severity
        return worst

    def evaluate(self, now_ns: int) -> list[HealthCheck]:
        """Compute the current structured checks (sorted by code)."""
        checks: list[HealthCheck] = []
        checks.extend(self._check_slow_ops())
        checks.extend(self._check_pgs())
        checks.extend(self._check_osds())
        checks.extend(self._check_wal())
        checks.extend(self._check_qos(now_ns))
        checks.extend(self._check_cache())
        checks.extend(self._check_slo(now_ns))
        checks.sort(key=lambda c: c.code)
        return checks

    def _check_slow_ops(self) -> list[HealthCheck]:
        if not self.detector.flagged:
            return []
        detail = [
            f"{d.record.op_class} {d.record.latency_ns / 1000.0:.1f} us: {d.cause.render()}"
            for d in self.flight.dumps[-4:]
        ]
        return [
            HealthCheck(
                code="SLOW_OPS",
                severity=HEALTH_WARN,
                summary=f"{self.detector.flagged} slow op(s) flagged "
                        f"({self.flight.promoted} with root-cause dumps)",
                count=self.detector.flagged,
                detail=detail,
            )
        ]

    def _check_pgs(self) -> list[HealthCheck]:
        recovery = getattr(self.cluster, "recovery", None)
        if recovery is None or not getattr(recovery, "pgs", None):
            return []
        unclean: dict[str, int] = {}
        incomplete = 0
        for info in recovery.pgs.values():
            state = info.state.value
            if state in _PG_CLEAN_STATES:
                continue
            unclean[state] = unclean.get(state, 0) + 1
            if state == "incomplete":
                incomplete += 1
        checks: list[HealthCheck] = []
        if incomplete:
            checks.append(
                HealthCheck(
                    code="PG_INCOMPLETE",
                    severity=HEALTH_ERR,
                    summary=f"{incomplete} pg(s) incomplete: data unavailable",
                    count=incomplete,
                )
            )
        degraded = sum(n for s, n in unclean.items() if s != "incomplete")
        if degraded:
            detail = [f"{n} pg(s) {s}" for s, n in sorted(unclean.items()) if s != "incomplete"]
            checks.append(
                HealthCheck(
                    code="PG_DEGRADED",
                    severity=HEALTH_WARN,
                    summary=f"{degraded} pg(s) not active+clean",
                    count=degraded,
                    detail=detail,
                )
            )
        return checks

    def _check_osds(self) -> list[HealthCheck]:
        if self.cluster is None:
            return []
        checks: list[HealthCheck] = []
        down = [
            osd_id
            for osd_id, state in sorted(self.cluster.osdmap.osds.items())
            if not state.up
        ]
        if down:
            checks.append(
                HealthCheck(
                    code="OSD_DOWN",
                    severity=HEALTH_WARN,
                    summary=f"{len(down)} osd(s) down",
                    count=len(down),
                    detail=[f"osd.{i}" for i in down],
                )
            )
        backlog = [
            (osd_id, daemon.cpu.queue_len)
            for osd_id, daemon in sorted(self.cluster.daemons.items())
            if daemon.cpu.queue_len >= self.config.osd_queue_warn
        ]
        if backlog:
            checks.append(
                HealthCheck(
                    code="OSD_QUEUE_BACKLOG",
                    severity=HEALTH_WARN,
                    summary=f"{len(backlog)} osd(s) with deep worker queues",
                    count=len(backlog),
                    detail=[f"osd.{i}: {depth} queued" for i, depth in backlog],
                )
            )
        return checks

    def _check_wal(self) -> list[HealthCheck]:
        if self.cluster is None:
            return []
        backlog = [
            (osd_id, daemon.wal.log_depth)
            for osd_id, daemon in sorted(self.cluster.daemons.items())
            if daemon.wal is not None and daemon.wal.log_depth >= self.config.wal_backlog_warn
        ]
        if not backlog:
            return []
        return [
            HealthCheck(
                code="WAL_BACKLOG",
                severity=HEALTH_WARN,
                summary=f"{len(backlog)} osd(s) with deep WAL backlogs",
                count=len(backlog),
                detail=[f"osd.{i}: {depth} un-trimmed records" for i, depth in backlog],
            )
        ]

    def _check_qos(self, now_ns: int) -> list[HealthCheck]:
        qos = getattr(self.cluster, "qos", None)
        qos_config = getattr(qos, "config", None)
        tenants = getattr(qos_config, "tenants", None)
        if not tenants:
            return []
        floor_miss: list[str] = []
        over_limit: list[str] = []
        for tenant in sorted(tenants):
            spec = tenants[tenant]
            cfg = self.slo.config_for(tenant)
            _, total, _ = self.slo.window(tenant, cfg.slow_window_ns, now_ns)
            if not total:
                continue
            iops = total / (cfg.slow_window_ns / 1e9)
            if spec.reservation_iops > 0 and iops < spec.reservation_iops * self.config.qos_floor_slack:
                floor_miss.append(
                    f"{tenant}: {iops:.0f} iops < {self.config.qos_floor_slack:.1f}x "
                    f"reservation {spec.reservation_iops:.0f}"
                )
            if spec.limit_iops is not None and iops > spec.limit_iops * self.config.qos_limit_slack:
                over_limit.append(
                    f"{tenant}: {iops:.0f} iops > {self.config.qos_limit_slack:.1f}x "
                    f"limit {spec.limit_iops:.0f}"
                )
        checks: list[HealthCheck] = []
        if floor_miss:
            checks.append(
                HealthCheck(
                    code="QOS_FLOOR_MISS",
                    severity=HEALTH_WARN,
                    summary=f"{len(floor_miss)} tenant(s) under their reservation floor",
                    count=len(floor_miss),
                    detail=floor_miss,
                )
            )
        if over_limit:
            checks.append(
                HealthCheck(
                    code="QOS_LIMIT_EXCEEDED",
                    severity=HEALTH_WARN,
                    summary=f"{len(over_limit)} tenant(s) over their limit ceiling",
                    count=len(over_limit),
                    detail=over_limit,
                )
            )
        return checks

    def _check_cache(self) -> list[HealthCheck]:
        cache = self.cache
        if cache is None:
            return []
        store = cache.store
        dirty_ratio = store.dirty_count / store.capacity_lines
        if dirty_ratio < self.config.cache_dirty_warn:
            return []
        return [
            HealthCheck(
                code="CACHE_DIRTY",
                severity=HEALTH_WARN,
                summary=f"cache dirty ratio {dirty_ratio:.2f} >= "
                        f"{self.config.cache_dirty_warn:.2f}",
                detail=[f"{store.dirty_count}/{store.capacity_lines} lines dirty"],
            )
        ]

    def _check_slo(self, now_ns: int) -> list[HealthCheck]:
        checks: list[HealthCheck] = []
        for tenant in self.slo.tenants():
            cfg = self.slo.config_for(tenant)
            fast = self.slo.burn_rate(tenant, cfg.fast_window_ns, now_ns)
            slow = self.slo.burn_rate(tenant, cfg.slow_window_ns, now_ns)
            fast_hot = fast >= cfg.fast_burn_warn
            slow_hot = slow >= cfg.slow_burn_warn
            if not (fast_hot or slow_hot):
                continue
            severity = HEALTH_ERR if (fast_hot and slow_hot) else HEALTH_WARN
            checks.append(
                HealthCheck(
                    code=f"SLO_BURN:{tenant or '(untagged)'}",
                    severity=severity,
                    summary=f"tenant {tenant or '(untagged)'} burning error budget "
                            f"(fast {fast:.1f}x, slow {slow:.1f}x)",
                    detail=[
                        f"target p{100 * cfg.latency_objective:g} < "
                        f"{cfg.latency_target_ns / 1000.0:.0f} us, "
                        f"availability {cfg.availability_objective:g}",
                    ],
                )
            )
        return checks

    # -- reporting ------------------------------------------------------------------

    def report(self, end_ns: Optional[int] = None) -> HealthReport:
        """Final health deliverable: one last evaluation plus the
        accumulated slow-op dumps and SLO table."""
        end = self.env.now if end_ns is None else end_ns
        self.checks = {c.code: c for c in self.evaluate(end)}
        return HealthReport(
            status=self.status(),
            end_ns=end,
            polls=self.polls,
            checks=[self.checks[code] for code in sorted(self.checks)],
            slow_ops=list(self.flight.dumps),
            slo=self.slo.summary(end),
            op_classes=self.detector.class_summary(),
            flight=self.flight.stats(),
        )
