"""repro.obs: causal observability for the simulated datapath.

Three pieces (ISSUE 5 tentpole):

* :mod:`~repro.obs.context` — :class:`CausalTracer` and the
  :class:`SpanNode` trees it grows: one per workload op, with
  parent/child edges at every layer hand-off, fan-out, and retry leg;
* :mod:`~repro.obs.critical_path` — exact attribution of end-to-end
  latency to the spans that gated it, plus straggler-slack reporting;
* :mod:`~repro.obs.sampler` / :mod:`~repro.obs.digest` /
  :mod:`~repro.obs.export` — continuous resource telemetry, streaming
  per-stage percentile digests, and Perfetto/flamegraph/Prometheus
  export;
* :mod:`~repro.obs.slowop` / :mod:`~repro.obs.flight` /
  :mod:`~repro.obs.health` — the always-on cluster health layer
  (ISSUE 10 tentpole): adaptive slow-op detection, a tail-sampling
  flight recorder with auto root-cause reports, and the periodic
  HEALTH_OK/WARN/ERR cluster model with SLO burn-rate tracking.

The CLI front end lives in :mod:`repro.obs.profile` (``python -m repro
profile``); it is intentionally **not** imported at package-init time —
it pulls in the framework and bench layers, which import this package.
Its names (``run_profile``, ``profile_smoke``, ``ProfileReport``,
``ProfileScenario``, ``PROFILE_SCENARIOS``) still resolve lazily via
``repro.obs.<name>`` once the package tree is fully loaded.

Everything here is event-stream neutral: enabling the causal tracer or
the sampler changes no simulated event, so goldens and benchmark
numbers are identical with observability on or off.
"""

from .context import CausalTracer, SpanNode, wrap_span
from .critical_path import (
    CriticalPath,
    PathSegment,
    StragglerReport,
    aggregate_attribution,
    analyze,
    stragglers,
    verify_exact,
)
from .digest import StreamingDigest
from .export import (
    escape_label_value,
    export_flamegraph,
    export_perfetto,
    export_prometheus,
    export_span_trees,
    folded_stacks,
    prometheus_name,
    to_perfetto,
    to_prometheus,
    validate_trace_document,
)
from .flight import FlightRecorder, RootCauseReport, SlowOpDump, root_cause
from .health import (
    HEALTH_ERR,
    HEALTH_OK,
    HEALTH_WARN,
    HealthCheck,
    HealthConfig,
    HealthLayer,
    HealthReport,
    SloConfig,
    SloTracker,
)
from .sampler import ResourceSampler, install_framework_probes, telemetry_summary
from .slowop import SlowOpConfig, SlowOpDetector, SlowOpRecord

#: Lazily re-exported from :mod:`repro.obs.profile` (PEP 562) — a
#: module-level import would cycle through the framework layer.
_PROFILE_EXPORTS = (
    "PROFILE_SCENARIOS",
    "ProfileReport",
    "ProfileScenario",
    "profile_smoke",
    "run_profile",
)


def __getattr__(name: str):
    if name in _PROFILE_EXPORTS:
        from . import profile

        return getattr(profile, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    *_PROFILE_EXPORTS,
    "CausalTracer",
    "CriticalPath",
    "FlightRecorder",
    "HEALTH_ERR",
    "HEALTH_OK",
    "HEALTH_WARN",
    "HealthCheck",
    "HealthConfig",
    "HealthLayer",
    "HealthReport",
    "PathSegment",
    "ResourceSampler",
    "RootCauseReport",
    "SloConfig",
    "SloTracker",
    "SlowOpConfig",
    "SlowOpDetector",
    "SlowOpRecord",
    "SlowOpDump",
    "SpanNode",
    "StragglerReport",
    "StreamingDigest",
    "aggregate_attribution",
    "analyze",
    "escape_label_value",
    "export_flamegraph",
    "export_perfetto",
    "export_prometheus",
    "export_span_trees",
    "folded_stacks",
    "install_framework_probes",
    "prometheus_name",
    "root_cause",
    "stragglers",
    "telemetry_summary",
    "to_perfetto",
    "to_prometheus",
    "validate_trace_document",
    "verify_exact",
    "wrap_span",
]
