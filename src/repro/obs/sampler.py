"""Continuous resource telemetry sampled on a fixed wall-clock grid.

The sampler records queue depth, per-core CPU utilization, io_uring
ring occupancy, QDMA throughput, and client link utilization into the
framework's existing :class:`~repro.sim.monitor.TimeSeries` metrics so
they export alongside the span trees as counter tracks.

It deliberately creates **no simulation events**.  Instead of a
timeout-loop process (which would perturb the event heap and keep
``env.run()`` from draining), :meth:`drive` owns the run loop: it
advances the clock one sampling interval at a time with
``env.run(until=...)`` and reads the probes between steps.  A run
driven this way executes the exact same event sequence as a plain
``env.run()`` — the neutrality tests compare digests to prove it.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import MetricsRegistry
from ..units import us

#: Default sampling grid: fine enough to see per-request queueing at
#: 4 KiB latencies (~tens of us), coarse enough to stay cheap.
DEFAULT_INTERVAL_NS = us(20)


class ResourceSampler:
    """Polls registered probes on a fixed grid into TimeSeries metrics."""

    def __init__(self, env, registry: MetricsRegistry, interval_ns: int = DEFAULT_INTERVAL_NS):
        if interval_ns <= 0:
            raise ValueError("sampling interval must be positive")
        self.env = env
        self.registry = registry
        self.interval_ns = interval_ns
        #: (name, probe, scale) where probe() returns an instantaneous value.
        self._gauges: list[tuple[str, Callable[[], float]]] = []
        #: (name, probe, scale) where probe() returns a cumulative counter;
        #: the recorded value is (delta * scale / dt_ns).
        self._rates: list[tuple[str, Callable[[], float], float]] = []
        self._last: dict[str, float] = {}
        self._last_t = -1
        self.samples_taken = 0

    # -- probe registration -------------------------------------------------------

    def add_gauge(self, name: str, probe: Callable[[], float]) -> None:
        """Record the probe's instantaneous value each sample."""
        self._gauges.append((name, probe))

    def add_rate(self, name: str, probe: Callable[[], float], scale: float = 1.0) -> None:
        """Record the probe's scaled rate of change each sample.

        With ``scale=1.0`` and a cumulative-ns probe (e.g. CpuCore
        busy_ns) the series is a 0..1 utilization; ``scale=8.0`` turns a
        cumulative byte counter into Gb/s (bits per ns).
        """
        self._rates.append((name, probe, scale))

    # -- sampling -----------------------------------------------------------------

    def sample(self) -> None:
        """Read every probe at the current clock (no events created)."""
        now = self.env.now
        for name, probe in self._gauges:
            self.registry.timeseries(name).record(now, float(probe()))
        dt = now - self._last_t if self._last_t >= 0 else 0
        for name, probe, scale in self._rates:
            cur = float(probe())
            prev = self._last.get(name)
            if prev is not None and dt > 0:
                self.registry.timeseries(name).record(now, (cur - prev) * scale / dt)
            self._last[name] = cur
        self._last_t = now
        self.samples_taken += 1

    def drive(self) -> None:
        """Run the simulation to completion, sampling every interval.

        Owns the event loop in place of a bare ``env.run()``: the event
        sequence is identical, with probe reads interleaved at interval
        boundaries.  Returns once the event heap is empty.
        """
        env = self.env
        self.sample()
        while env.peek() is not None:
            env.run(until=env.now + self.interval_ns)
            self.sample()

    # -- access -------------------------------------------------------------------

    def series_names(self) -> list[str]:
        return sorted({n for n, _ in self._gauges} | {n for n, _, _ in self._rates})


def install_framework_probes(sampler: ResourceSampler, fw) -> list[str]:
    """Wire the standard probe set for a :class:`FrameworkInstance`.

    Covers every shared resource the critical-path report points at:
    io_uring SQ/CQ occupancy, submission/driver core utilization, blk-mq
    in-flight tags, QDMA data movement, and the client NIC in both
    directions.  Returns the installed series names.
    """
    seen_cores: set[int] = set()

    def _core_probe(core) -> None:
        if core is None or core.core_id in seen_cores:
            return
        seen_cores.add(core.core_id)
        sampler.add_rate(f"obs.cpu.core{core.core_id}.util", lambda c=core: c.busy_ns)

    for i, inst in enumerate(getattr(fw.engine, "instances", [])):
        sampler.add_gauge(f"obs.uring{i}.sq", lambda r=inst.sq: len(r))
        sampler.add_gauge(f"obs.uring{i}.cq", lambda r=inst.cq: len(r))
        _core_probe(inst.core)
    _core_probe(getattr(fw.engine, "core", None))
    _core_probe(getattr(fw.driver, "core", None))

    tags = fw.blk.config.tags_per_queue
    sampler.add_gauge(
        "obs.blk.inflight",
        lambda hctxs=fw.blk.hctxs, t=tags: sum(t - h.tags.tokens for h in hctxs),
    )

    queue = getattr(fw.driver, "queue", None)
    if queue is not None:
        # bytes * 8 / ns == bits/ns == Gb/s.
        sampler.add_rate("obs.qdma.gbps", lambda q=queue: q.bytes_moved, scale=8.0)

    network = fw.cluster.network
    client_name = getattr(fw.image.client, "entity", "client0")
    try:
        host = network.host(client_name)
    except Exception:
        host = None
    if host is not None:
        bw = float(network.bandwidth_bps)
        sampler.add_rate(
            "obs.net.client.up_util", lambda l=host.uplink: l.bytes_sent, scale=8.0e9 / bw
        )
        sampler.add_rate(
            "obs.net.client.down_util", lambda l=host.downlink: l.bytes_sent, scale=8.0e9 / bw
        )
    return sampler.series_names()


def telemetry_summary(registry: MetricsRegistry, end_ns: int) -> dict[str, dict[str, float]]:
    """Time-weighted mean and peak of every installed ``obs.*`` series."""
    from ..sim.monitor import TimeSeries

    out: dict[str, dict[str, float]] = {}
    for name, metric in registry.collect("obs.").items():
        if not isinstance(metric, TimeSeries) or not metric.times:
            continue
        out[name] = {
            "mean": metric.time_weighted_mean(end_ns),
            "peak": max(metric.values),
        }
    return out
