"""End-to-end profiling runs: causal traces -> attribution report.

``run_profile`` builds a framework with the causal tracer and metrics
enabled, drives one workload scenario under the resource sampler, then
turns the resulting span forest into the full observability deliverable:
exact critical-path attribution per stage and resource kind, streaming
latency digests, straggler-slack accounting, continuous telemetry
summaries, and Perfetto/flamegraph exports.

This is the engine behind ``python -m repro profile`` and the CI smoke
job.  The attribution is *exact*: for every completed request the
per-stage nanoseconds partition the measured end-to-end latency with no
residual (``verify_exact`` raises otherwise), so shares in the report
always sum to 100%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..deliba import PoolSpec, build_framework, framework_by_name
from ..errors import BenchmarkError
from ..units import kib, mib
from ..workloads.fio import FioJob
from .critical_path import CriticalPath, aggregate_attribution, analyze, stragglers, verify_exact
from .digest import StreamingDigest
from .export import (
    export_flamegraph,
    export_perfetto,
    export_prometheus,
    export_span_trees,
    folded_stacks,
    to_perfetto,
    validate_trace_document,
)
from .sampler import (
    DEFAULT_INTERVAL_NS,
    ResourceSampler,
    install_framework_probes,
    telemetry_summary,
)

#: Message-fault probabilities for the ``chaos`` scenario (the same mix
#: as the bench chaos "lossy-fabric" schedule, so retry/backoff legs
#: reliably appear in the span trees).
_CHAOS_DROP_P = 0.02
_CHAOS_DUP_P = 0.01
_CHAOS_CORRUPT_P = 0.01


@dataclass(frozen=True)
class ProfileScenario:
    """One named profiling workload."""

    name: str
    rw: str
    pool: str = "replicated"
    #: Lossy-fabric chaos testbed (3x4 OSDs, retry policy with timeouts).
    chaos: bool = False
    description: str = ""


PROFILE_SCENARIOS: dict[str, ProfileScenario] = {
    s.name: s
    for s in (
        ProfileScenario("randread", "randread", description="random 4K reads, replicated pool"),
        ProfileScenario("randwrite", "randwrite", description="random 4K writes, replicated pool"),
        ProfileScenario("read", "read", description="sequential reads, replicated pool"),
        ProfileScenario("write", "write", description="sequential writes, replicated pool"),
        ProfileScenario("ec-read", "randread", pool="erasure",
                        description="random reads, k+m erasure pool (gather/decode path)"),
        ProfileScenario("ec-write", "randwrite", pool="erasure",
                        description="random writes, k+m erasure pool (encode/shard path)"),
        ProfileScenario("chaos", "randrw", chaos=True,
                        description="lossy fabric: drops/dups/corruption exercise retry legs"),
    )
}

#: Render order for datapath stages; anything else (root self-time,
#: future layers) sorts after these under its own name.
_STAGE_ORDER = (
    "api", "rings", "dmq", "uifd", "nbd", "daemon", "placement",
    "qdma", "accel", "fabric", "complete",
)


def _display_stage(stage: str) -> str:
    """Root self-time segments carry the op name; report them as "api"."""
    return "api" if stage in ("read", "write") else stage


@dataclass
class ProfileReport:
    """Everything one profiling run produced, plus the raw material for
    exports (span forest + metrics registry)."""

    scenario: str
    framework: str
    label: str
    rw: str
    bs: int
    iodepth: int
    ios: int
    errors: int
    complete: int
    incomplete: int
    #: Exact per-stage / per-kind attribution, ns (sums to total latency).
    by_stage: dict[str, int]
    by_kind: dict[str, int]
    folded: dict[tuple, int]
    total_digest: StreamingDigest
    stage_digests: dict[str, StreamingDigest]
    #: gating-leg name -> (fan-outs gated, total sibling slack ns).
    straggler_slack: dict[str, tuple[int, int]]
    telemetry: dict[str, dict[str, float]]
    samples_taken: int
    latencies_match: bool
    roots: list = field(repr=False)
    paths: list = field(repr=False)
    registry: object = field(repr=False)
    end_ns: int = 0

    # -- exports ------------------------------------------------------------------

    def perfetto(self) -> dict:
        return to_perfetto(self.roots, self.registry, self.end_ns)

    def export(self, path):
        return export_perfetto(self.roots, path, self.registry, self.end_ns)

    def export_flamegraph(self, path):
        return export_flamegraph(self.folded, path)

    def export_trees(self, path):
        return export_span_trees(self.roots, path)

    def export_prometheus(self, path):
        """Metrics registry as Prometheus text exposition (0.0.4)."""
        return export_prometheus(self.registry, path, self.end_ns)

    # -- rendering ----------------------------------------------------------------

    def render(self) -> str:
        total_ns = sum(self.by_stage.values())
        n = max(self.complete, 1)
        pct = self.total_digest.percentiles()
        lines = [
            f"profile {self.scenario}: {self.label} ({self.framework}) "
            f"{self.ios} x {self.rw} bs={self.bs} iodepth={self.iodepth}",
            f"  requests : {self.complete} traced complete, {self.incomplete} incomplete, "
            f"{self.errors} errors",
            f"  latency  : mean {self.total_digest.mean / 1000.0:8.1f} us   "
            f"p50 {pct['p50'] / 1000.0:8.1f}   p95 {pct['p95'] / 1000.0:8.1f}   "
            f"p99 {pct['p99'] / 1000.0:8.1f}   p999 {pct['p999'] / 1000.0:8.1f}",
            "",
            "critical-path attribution (exact: shares sum to 100.0%):",
            f"  {'stage':12s} {'total_us':>10s} {'share%':>7s} {'mean_us':>9s} "
            f"{'p50_us':>8s} {'p95_us':>8s} {'p99_us':>8s}",
        ]
        display: dict[str, int] = {}
        for stage, ns in self.by_stage.items():
            key = _display_stage(stage)
            display[key] = display.get(key, 0) + ns
        order = {name: i for i, name in enumerate(_STAGE_ORDER)}
        for stage in sorted(display, key=lambda s: (order.get(s, len(order)), s)):
            ns = display[stage]
            digest = self.stage_digests.get(stage)
            p = digest.percentiles() if digest else {"p50": 0, "p95": 0, "p99": 0}
            lines.append(
                f"  {stage:12s} {ns / 1000.0:10.1f} {100.0 * ns / total_ns if total_ns else 0.0:6.1f}% "
                f"{ns / n / 1000.0:9.2f} {p['p50'] / 1000.0:8.1f} "
                f"{p['p95'] / 1000.0:8.1f} {p['p99'] / 1000.0:8.1f}"
            )
        lines.append(
            f"  {'TOTAL':12s} {total_ns / 1000.0:10.1f} {100.0:6.1f}% {total_ns / n / 1000.0:9.2f}"
        )
        lines.append("")
        lines.append("attribution by resource kind:")
        for kind in sorted(self.by_kind, key=self.by_kind.get, reverse=True):
            ns = self.by_kind[kind]
            lines.append(
                f"  {kind:12s} {ns / 1000.0:10.1f} {100.0 * ns / total_ns if total_ns else 0.0:6.1f}%"
            )
        if self.straggler_slack:
            lines.append("")
            lines.append("straggler slack (fan-outs gated by one slow leg):")
            for leg in sorted(self.straggler_slack,
                              key=lambda g: self.straggler_slack[g][1], reverse=True):
                count, slack_ns = self.straggler_slack[leg]
                lines.append(
                    f"  {leg:12s} gated {count:4d} fan-out(s), "
                    f"sibling slack {slack_ns / 1000.0:10.1f} us total"
                )
        if self.telemetry:
            lines.append("")
            lines.append(f"resource telemetry ({self.samples_taken} samples, mean / peak):")
            for name in sorted(self.telemetry):
                stats = self.telemetry[name]
                lines.append(f"  {name:28s} {stats['mean']:10.3f} / {stats['peak']:10.3f}")
        return "\n".join(lines)


def run_profile(
    scenario: Union[str, ProfileScenario],
    framework: str = "delibak",
    bs: int = kib(4),
    iodepth: int = 4,
    nrequests: int = 60,
    seed: int = 0,
    interval_ns: int = DEFAULT_INTERVAL_NS,
) -> ProfileReport:
    """Run one scenario under full observability and attribute it.

    Raises :class:`BenchmarkError` if any completed request's critical
    path fails the exactness check — that invariant is the product, not
    a best-effort diagnostic.
    """
    scn = PROFILE_SCENARIOS[scenario] if isinstance(scenario, str) else scenario
    cfg = framework_by_name(framework)
    if scn.chaos:
        # Lazy import: repro.bench.__init__ imports breakdown, which
        # imports this module — a module-level import would cycle.
        from ..bench.chaos import _chaos_cluster_spec
        from ..osd import FaultInjector

        cluster_spec = _chaos_cluster_spec(seed, cfg.client_stack)
        pool_spec = PoolSpec(kind="replicated", size=3)
    else:
        cluster_spec = None
        pool_spec = PoolSpec(kind=scn.pool)
    object_size = bs if pool_spec.kind == "erasure" else None
    fw = build_framework(
        cfg,
        pool_spec=pool_spec,
        cluster_spec=cluster_spec,
        object_size=object_size,
        seed=seed,
        obs=True,
        metrics=True,
    )
    if scn.chaos:
        FaultInjector(fw.cluster).set_message_faults(
            drop_p=_CHAOS_DROP_P, duplicate_p=_CHAOS_DUP_P, corrupt_p=_CHAOS_CORRUPT_P
        )
    job_kwargs = {"size": mib(32)} if scn.chaos else {}
    job = FioJob(
        f"profile.{scn.name}", scn.rw, bs=bs, iodepth=iodepth, nrequests=nrequests, **job_kwargs
    )
    sampler = ResourceSampler(fw.env, fw.metrics, interval_ns)
    install_framework_probes(sampler, fw)
    proc = fw.env.process(fw.run_fio(job), name=f"profile.{scn.name}")
    sampler.drive()
    if not proc.ok:
        raise proc.value
    result = proc.value

    tracer = fw.tracer
    roots = tracer.complete_trees()
    incomplete = tracer.incomplete_trees()
    paths: list[CriticalPath] = []
    for root in roots:
        path = analyze(root)
        problem = verify_exact(path)
        if problem is not None:
            raise BenchmarkError(
                f"inexact critical path for request span {root.span_id}: {problem}"
            )
        paths.append(path)

    by_stage, by_kind, folded = aggregate_attribution(paths)
    total_digest = StreamingDigest()
    stage_digests: dict[str, StreamingDigest] = {}
    for path in paths:
        total_digest.add(path.total_ns)
        for stage, ns in path.by_stage().items():
            stage_digests.setdefault(_display_stage(stage), StreamingDigest()).add(ns)

    slack_by_leg: dict[str, tuple[int, int]] = {}
    for root in roots:
        for report in stragglers(root):
            count, total = slack_by_leg.get(report.gating.name, (0, 0))
            slack_by_leg[report.gating.name] = (
                count + 1,
                total + sum(s for _, s in report.slack),
            )

    # The trees must agree with the measured latencies sample-for-sample:
    # each completed root's duration equals the engine-recorded latency.
    latencies_match = sorted(result.latencies_ns) == sorted(r.duration_ns for r in roots)

    return ProfileReport(
        scenario=scn.name,
        framework=cfg.name,
        label=cfg.label,
        rw=scn.rw,
        bs=bs,
        iodepth=iodepth,
        ios=result.ios,
        errors=result.errors,
        complete=len(roots),
        incomplete=len(incomplete),
        by_stage=by_stage,
        by_kind=by_kind,
        folded=folded,
        total_digest=total_digest,
        stage_digests=stage_digests,
        straggler_slack=slack_by_leg,
        telemetry=telemetry_summary(fw.metrics, fw.env.now),
        samples_taken=sampler.samples_taken,
        latencies_match=latencies_match,
        roots=roots,
        paths=paths,
        registry=fw.metrics,
        end_ns=fw.env.now,
    )


#: Scenarios the CI smoke job runs (covers replication fan-out, EC
#: encode/shard dispatch, and chaos retry legs).
SMOKE_SCENARIOS = ("randwrite", "randread", "ec-write", "chaos")


def profile_smoke(
    export_path=None,
    flame_path=None,
    seed: int = 0,
    nrequests: int = 40,
) -> tuple[int, str]:
    """Seeded CI smoke across the scenario grid.

    Checks, per scenario: every request traced to a complete tree,
    attribution exact (enforced inside :func:`run_profile`), span-tree
    durations identical to the measured latencies, exported Perfetto
    document schema-clean, flamegraph non-empty, and the full export
    byte-identical across two same-seed runs.  Returns
    ``(exit_code, report)``.
    """
    import json

    problems: list[str] = []
    rows = [f"{'scenario':10s} {'ios':>4s} {'trees':>6s} {'p99_us':>8s} "
            f"{'lat==tree':>9s} {'schema':>6s} {'determ':>6s}"]
    first_report: Optional[ProfileReport] = None
    for name in SMOKE_SCENARIOS:
        report = run_profile(name, seed=seed, nrequests=nrequests)
        rerun = run_profile(name, seed=seed, nrequests=nrequests)
        if first_report is None:
            first_report = report
        doc = report.perfetto()
        schema_problems = validate_trace_document(doc)
        deterministic = (
            json.dumps(doc, sort_keys=True)
            == json.dumps(rerun.perfetto(), sort_keys=True)
            and [r.to_dict() for r in report.roots] == [r.to_dict() for r in rerun.roots]
        )
        if report.complete < 1:
            problems.append(f"{name}: no complete span trees")
        if report.incomplete:
            problems.append(f"{name}: {report.incomplete} request(s) never completed")
        if report.errors:
            problems.append(f"{name}: {report.errors} client-visible I/O errors")
        if not report.latencies_match:
            problems.append(f"{name}: span-tree durations != measured latencies")
        if schema_problems:
            problems.append(f"{name}: perfetto schema: {schema_problems[:3]}")
        if not deterministic:
            problems.append(f"{name}: export not deterministic across same-seed runs")
        if not folded_stacks(report.folded).strip():
            problems.append(f"{name}: empty flamegraph")
        rows.append(
            f"{name:10s} {report.ios:4d} {report.complete:6d} "
            f"{report.total_digest.quantile(0.99) / 1000.0:8.1f} "
            f"{'yes' if report.latencies_match else 'NO':>9s} "
            f"{'ok' if not schema_problems else 'BAD':>6s} "
            f"{'yes' if deterministic else 'NO':>6s}"
        )
    if export_path is not None and first_report is not None:
        first_report.export(export_path)
        rows.append(f"[perfetto trace written to {export_path}]")
    if flame_path is not None and first_report is not None:
        first_report.export_flamegraph(flame_path)
        rows.append(f"[folded stacks written to {flame_path}]")
    report_text = "\n".join(rows)
    if problems:
        report_text += "\nSMOKE FAIL:\n" + "\n".join(f"  - {p}" for p in problems)
        return 1, report_text
    report_text += (
        f"\nSMOKE PASS: {len(SMOKE_SCENARIOS)} scenarios, attribution exact, "
        f"exports deterministic"
    )
    return 0, report_text
