"""Span-tree and telemetry export: Perfetto-compatible JSON + folded stacks.

The document uses the Chrome trace-event format Perfetto ingests
natively.  Lanes are real this time (satellite of ISSUE 5): each
datapath layer gets its own thread track, each OSD fan-out leg gets a
per-target lane under its layer, and every ``obs.*`` TimeSeries
becomes a counter track on its own process — so a replicated write's
three replica legs render as three parallel bars instead of one
overdrawn rectangle.

pid layout:
  0 — request span trees (one tid per lane, metadata-named)
  1 — resource counter tracks
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Iterable, Optional

from .context import SpanNode

SPAN_PID = 0
COUNTER_PID = 1

_FANOUT_KINDS = frozenset({"rpc", "fanout"})


class _LaneTable:
    """Stable lane (tid) assignment: first-seen order, so two seeded
    runs export byte-identical documents."""

    def __init__(self):
        self.lanes: dict[str, int] = {}

    def tid(self, lane: str) -> int:
        tid = self.lanes.get(lane)
        if tid is None:
            tid = len(self.lanes)
            self.lanes[lane] = tid
        return tid


def _lane_for(span: SpanNode, depth: int, parent_lane: str) -> str:
    if depth == 0:
        return "op"
    if depth == 1:
        return span.name
    if span.kind in _FANOUT_KINDS:
        return f"{parent_lane}/{span.name}"
    return parent_lane


def _emit_span(span: SpanNode, depth: int, parent_lane: str, lanes: _LaneTable, events: list, root_id: int) -> None:
    lane = _lane_for(span, depth, parent_lane)
    if span.end_ns >= 0:
        event = {
            "name": span.name,
            "cat": span.kind,
            "ph": "X",
            # Trace-event timestamps are microseconds; keep ns resolution.
            "ts": span.start_ns / 1000.0,
            "dur": (span.end_ns - span.start_ns) / 1000.0,
            "pid": SPAN_PID,
            "tid": lanes.tid(lane),
            "args": {
                "span_id": span.span_id,
                "root_id": root_id,
                "start_ns": span.start_ns,
                "end_ns": span.end_ns,
            },
        }
        for key in sorted(span.meta):
            value = span.meta[key]
            if isinstance(value, (int, float, str, bool)):
                event["args"][key] = value
        events.append(event)
    for child in span.children:
        _emit_span(child, depth + 1, lane, lanes, events, root_id)


def to_perfetto(roots: Iterable[SpanNode], registry=None, end_ns: Optional[int] = None) -> dict:
    """Build the full trace document: span lanes + counter tracks."""
    from ..sim.monitor import TimeSeries

    lanes = _LaneTable()
    lanes.tid("op")  # the root lane always exists and always leads
    events: list[dict] = []
    for root in roots:
        _emit_span(root, 0, "op", lanes, events, root_id=root.span_id)
    events.sort(key=lambda e: (e["ts"], e["tid"], e["args"]["span_id"]))

    meta: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": SPAN_PID,
            "tid": 0,
            "args": {"name": "repro datapath"},
        }
    ]
    for lane, tid in lanes.lanes.items():
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": SPAN_PID,
                "tid": tid,
                "args": {"name": lane},
            }
        )

    counters: list[dict] = []
    if registry is not None:
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": COUNTER_PID,
                "tid": 0,
                "args": {"name": "resources"},
            }
        )
        for name, metric in registry.collect("obs.").items():
            if not isinstance(metric, TimeSeries):
                continue
            for t, v in zip(metric.times, metric.values):
                if end_ns is not None and t > end_ns:
                    break
                counters.append(
                    {
                        "name": name,
                        "ph": "C",
                        "ts": t / 1000.0,
                        "pid": COUNTER_PID,
                        "tid": 0,
                        "args": {"value": v},
                    }
                )
    return {"traceEvents": meta + events + counters, "displayTimeUnit": "ns"}


def export_perfetto(roots: Iterable[SpanNode], path, registry=None, end_ns: Optional[int] = None) -> Path:
    path = Path(path)
    path.write_text(json.dumps(to_perfetto(roots, registry, end_ns), indent=1))
    return path


#: Keys every "X" event must carry for Perfetto to lane it correctly.
_REQUIRED_SPAN_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args")


def validate_trace_document(doc: dict) -> list[str]:
    """Schema check for exported documents (used by the CI smoke job).

    Returns a list of problems; empty means the document is well-formed:
    every span event complete and non-negative, every referenced lane
    named by metadata, counters numeric and time-ordered per series.
    """
    problems: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing or empty"]
    named_lanes: set[tuple[int, int]] = set()
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            if not e.get("args", {}).get("name"):
                problems.append(f"unnamed thread metadata: {e!r}")
            named_lanes.add((e.get("pid"), e.get("tid")))
    counter_clock: dict[tuple, float] = {}
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph == "X":
            missing = [k for k in _REQUIRED_SPAN_KEYS if k not in e]
            if missing:
                problems.append(f"event {i}: missing {missing}")
                continue
            if e["ts"] < 0 or e["dur"] < 0:
                problems.append(f"event {i}: negative ts/dur")
            if (e["pid"], e["tid"]) not in named_lanes:
                problems.append(f"event {i}: lane ({e['pid']},{e['tid']}) has no thread_name")
            args = e["args"]
            if "start_ns" in args and "end_ns" in args and args["end_ns"] < args["start_ns"]:
                problems.append(f"event {i}: end_ns < start_ns")
        elif ph == "C":
            value = e.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                problems.append(f"counter {i}: non-numeric value")
                continue
            key = (e.get("pid"), e.get("name"))
            last = counter_clock.get(key)
            if last is not None and e["ts"] < last:
                problems.append(f"counter {i}: timestamps go backwards for {e.get('name')}")
            counter_clock[key] = e["ts"]
        elif ph != "M":
            problems.append(f"event {i}: unknown phase {ph!r}")
    return problems


def folded_stacks(folded: dict[tuple[str, ...], int]) -> str:
    """Render an aggregated folded mapping as flamegraph.pl input.

    One line per stack — ``root;stage;leaf <ns>`` — sorted
    lexicographically so the output is diff-stable.
    """
    lines = [f"{';'.join(stack)} {ns}" for stack, ns in folded.items() if ns > 0]
    return "\n".join(sorted(lines)) + ("\n" if lines else "")


def export_flamegraph(folded: dict[tuple[str, ...], int], path) -> Path:
    path = Path(path)
    path.write_text(folded_stacks(folded))
    return path


# -- Prometheus text exposition ---------------------------------------------------

#: Valid Prometheus metric-name characters; everything else becomes "_".
_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LEADING = re.compile(r"^[^a-zA-Z_:]")


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """Sanitize a dotted registry name into a legal Prometheus identifier.

    ``qos.limit_waits`` -> ``repro_qos_limit_waits``.  The exposition
    format requires ``[a-zA-Z_:][a-zA-Z0-9_:]*``; dotted names (and OSD
    ids like ``osd.3.op_latency``) violate it, so dots and any other
    illegal characters map to ``_`` and a leading digit gets the prefix
    in front.  The *original* name is preserved as a label by
    :func:`to_prometheus`, so the mapping stays reversible.
    """
    sanitized = _PROM_INVALID.sub("_", name)
    if prefix:
        sanitized = f"{prefix}_{sanitized}"
    if _PROM_LEADING.match(sanitized):
        sanitized = f"_{sanitized}"
    return sanitized


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: backslash, double
    quote, and line feed must be backslash-escaped."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_number(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _prom_line(prom: str, labels: dict[str, str], value) -> str:
    body = ",".join(
        f'{k}="{escape_label_value(str(v))}"' for k, v in labels.items()
    )
    return f"{prom}{{{body}}} {_prom_number(value)}"


def to_prometheus(registry, end_ns: Optional[int] = None, prefix: str = "repro") -> str:
    """Render a whole :class:`~repro.sim.metrics.MetricsRegistry` as
    Prometheus text exposition (version 0.0.4).

    Every instrument keeps its dotted registry name in the ``metric``
    label (sanitized identifiers are lossy: ``a.b`` and ``a_b`` would
    otherwise collide).  Distributions and latency recorders expose
    ``_count``/``_sum`` plus fixed quantiles; time series expose their
    time-weighted mean closed at ``end_ns``.  Output is sorted, so two
    same-seed runs render byte-identical pages.
    """
    from ..sim.monitor import (
        Counter,
        Distribution,
        Gauge,
        LatencyRecorder,
        ThroughputMeter,
        TimeSeries,
    )

    lines: list[str] = []
    for name, metric in registry.items():
        prom = prometheus_name(name, prefix)
        labels = {"metric": name}
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {prom} counter")
            lines.append(_prom_line(prom, labels, metric.value))
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {prom} gauge")
            lines.append(_prom_line(prom, labels, metric.value))
        elif isinstance(metric, (Distribution, LatencyRecorder)):
            lines.append(f"# TYPE {prom} summary")
            samples = metric.samples
            for q in (0.5, 0.99):
                value = metric.percentile(q * 100) if isinstance(metric, Distribution) \
                    else metric.percentile_us(q * 100) * 1000.0
                lines.append(_prom_line(prom, {**labels, "quantile": repr(q)}, value))
            lines.append(_prom_line(f"{prom}_count", labels, len(samples)))
            lines.append(_prom_line(f"{prom}_sum", labels, sum(samples)))
        elif isinstance(metric, ThroughputMeter):
            lines.append(f"# TYPE {prom}_ops counter")
            lines.append(_prom_line(f"{prom}_ops", labels, metric.ops))
            lines.append(f"# TYPE {prom}_bytes counter")
            lines.append(_prom_line(f"{prom}_bytes", labels, metric.bytes))
        elif isinstance(metric, TimeSeries):
            lines.append(f"# TYPE {prom} gauge")
            lines.append(_prom_line(prom, labels, metric.time_weighted_mean(end_ns)))
    return "\n".join(lines) + ("\n" if lines else "")


def export_prometheus(registry, path, end_ns: Optional[int] = None) -> Path:
    """Write the exposition page; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_prometheus(registry, end_ns))
    return path


def export_span_trees(roots: Iterable[SpanNode], path) -> Path:
    """Raw nested JSON dump of the trees (for tooling and the
    double-run determinism test)."""
    path = Path(path)
    path.write_text(json.dumps([r.to_dict() for r in roots], indent=1))
    return path
