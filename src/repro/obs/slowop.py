"""Slow-op detection: lightweight always-on per-request latency accounting.

Ceph flags "slow ops" when a request exceeds ``osd_op_complaint_time``;
this module reproduces the idea with adaptive thresholds.  The detector
keeps one :class:`~repro.obs.digest.StreamingDigest` per op class
(bounded memory, no span trees, no simulation events) and flags a
request when its latency exceeds the larger of

* an absolute per-class budget (``SlowOpConfig.budget_ns``), and
* a multiple of the class's running p99 (``p99_multiple``), once the
  class has seen ``min_samples`` requests (cold classes cannot produce
  a meaningful percentile, so only the absolute budget applies there).

Observation is plain bookkeeping on the completion path — one digest
insert and one comparison per request — so the detector can stay on in
every run.  The flight recorder (:mod:`repro.obs.flight`) subscribes to
the flagged records and promotes the matching span trees to full dumps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .digest import StreamingDigest


@dataclass(frozen=True)
class SlowOpConfig:
    """Thresholding policy of the slow-op detector."""

    #: Flag when latency > p99 * multiple (adaptive part).
    p99_multiple: float = 3.0
    #: Per-op-class absolute latency budgets, ns (empty = adaptive only).
    budget_ns: dict[str, int] = field(default_factory=dict)
    #: Samples a class needs before its p99 threshold is trusted.
    min_samples: int = 30
    #: Flagged records kept (oldest dropped first).
    max_records: int = 256

    def __post_init__(self):
        if self.p99_multiple <= 1.0:
            raise ValueError(f"p99_multiple must be > 1, got {self.p99_multiple}")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")
        if self.max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {self.max_records}")


@dataclass(frozen=True)
class SlowOpRecord:
    """One flagged request (no span tree — that lives in the recorder)."""

    seq: int
    op_class: str
    #: Where the latency was measured: "client" or "osd.<id>".
    origin: str
    tenant: str
    latency_ns: int
    threshold_ns: int
    end_ns: int

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "op_class": self.op_class,
            "origin": self.origin,
            "tenant": self.tenant,
            "latency_ns": self.latency_ns,
            "threshold_ns": self.threshold_ns,
            "end_ns": self.end_ns,
        }


class SlowOpDetector:
    """Per-class adaptive latency thresholds; flags Ceph-style slow ops."""

    def __init__(self, config: Optional[SlowOpConfig] = None):
        self.config = config or SlowOpConfig()
        self.digests: dict[str, StreamingDigest] = {}
        self.records: list[SlowOpRecord] = []
        self.observed = 0
        self.flagged = 0
        self._seq = 0

    def digest_for(self, op_class: str) -> StreamingDigest:
        digest = self.digests.get(op_class)
        if digest is None:
            digest = self.digests[op_class] = StreamingDigest()
        return digest

    def threshold_ns(self, op_class: str) -> Optional[int]:
        """Current flagging threshold for a class (None = cannot flag yet).

        The adaptive and absolute parts compose as a max: an explicit
        budget never flags ops the running p99 says are normal-slow, and
        the adaptive threshold still catches regressions in classes
        whose budget was set generously.
        """
        cfg = self.config
        budget = cfg.budget_ns.get(op_class)
        digest = self.digests.get(op_class)
        adaptive = None
        if digest is not None and digest.count >= cfg.min_samples:
            adaptive = int(digest.quantile(0.99) * cfg.p99_multiple)
        if budget is None:
            return adaptive
        if adaptive is None:
            return budget
        return max(budget, adaptive)

    def observe(
        self,
        op_class: str,
        latency_ns: int,
        end_ns: int,
        origin: str = "client",
        tenant: str = "",
        ok: bool = True,
    ) -> Optional[SlowOpRecord]:
        """Account one completed request; returns a record if flagged.

        The threshold is computed *before* the new sample joins the
        digest, so one extreme outlier cannot raise the bar it is being
        judged against.
        """
        self.observed += 1
        threshold = self.threshold_ns(op_class)
        self.digest_for(op_class).add(latency_ns)
        if threshold is None or latency_ns <= threshold:
            return None
        self._seq += 1
        record = SlowOpRecord(
            seq=self._seq,
            op_class=op_class,
            origin=origin,
            tenant=tenant,
            latency_ns=latency_ns,
            threshold_ns=threshold,
            end_ns=end_ns,
        )
        self.flagged += 1
        self.records.append(record)
        if len(self.records) > self.config.max_records:
            del self.records[: len(self.records) - self.config.max_records]
        return record

    def class_summary(self) -> dict[str, dict]:
        """Per-class observation stats (deterministic key order)."""
        out: dict[str, dict] = {}
        for name in sorted(self.digests):
            digest = self.digests[name]
            out[name] = {
                "count": digest.count,
                "p50_ns": digest.quantile(0.50),
                "p99_ns": digest.quantile(0.99),
                "max_ns": digest.max_value,
                "threshold_ns": self.threshold_ns(name),
            }
        return out
