"""Kernel-style block I/O status codes (``blk_status_t``).

Failures travel the stack as a :class:`BlkStatus`, mirroring Linux's
``BLK_STS_*`` values: an OSD reply carries one, the UIFD driver copies
it onto the blk-mq request, and the io_uring completion path converts it
to the matching negative errno in the CQE ``res`` field — exactly the
chain ``blk_status_to_errno()`` implements in the kernel.

The module sits above the layer hierarchy (it imports nothing but the
errno table) so ``osd``, ``driver``, ``blk``, and ``api`` can all share
it without cycles.
"""

from __future__ import annotations

from enum import Enum

from . import errnos


class BlkStatus(Enum):
    """Outcome of a block/object I/O (mirrors ``BLK_STS_*``)."""

    OK = "ok"
    #: Generic I/O failure (``BLK_STS_IOERR``).
    IOERR = "ioerr"
    #: The op missed its deadline (``BLK_STS_TIMEOUT``).
    TIMEOUT = "timeout"
    #: The transport to the target broke (``BLK_STS_TRANSPORT``).
    TRANSPORT = "transport"
    #: Media/checksum failure — corrupt payload (``BLK_STS_MEDIUM``).
    MEDIUM = "medium"
    #: Transient resource loss — target lost power mid-op and will come
    #: back after WAL replay; retry the op (``BLK_STS_AGAIN``).
    AGAIN = "again"

    @property
    def errno(self) -> int:
        """Positive errno this status maps to (0 for OK)."""
        return _STATUS_ERRNO[self]

    @property
    def severity(self) -> int:
        """Rank used when combining statuses (higher = reported first)."""
        return _SEVERITY[self]

    def combine(self, other: "BlkStatus") -> "BlkStatus":
        """The more severe of two statuses (for multi-target ops)."""
        return self if self.severity >= other.severity else other

    def __bool__(self) -> bool:
        """Truthy when the status is a failure (kernel idiom:
        ``if (status) goto out;``)."""
        return self is not BlkStatus.OK


#: blk_status_to_errno(): the kernel's status -> errno table.
_STATUS_ERRNO = {
    BlkStatus.OK: 0,
    BlkStatus.IOERR: errnos.EIO,
    BlkStatus.TIMEOUT: errnos.ETIMEDOUT,
    BlkStatus.TRANSPORT: errnos.ENOLINK,
    BlkStatus.MEDIUM: errnos.ENODATA,
    BlkStatus.AGAIN: errnos.EAGAIN,
}

#: Severity order: OK < MEDIUM < AGAIN < TIMEOUT < TRANSPORT < IOERR.
#: IOERR is the terminal catch-all; retryable conditions rank below it,
#: and AGAIN (power loss, target returns after replay) is the mildest
#: retryable failure.
_SEVERITY = {
    BlkStatus.OK: 0,
    BlkStatus.MEDIUM: 1,
    BlkStatus.AGAIN: 2,
    BlkStatus.TIMEOUT: 3,
    BlkStatus.TRANSPORT: 4,
    BlkStatus.IOERR: 5,
}


def worst_status(statuses) -> BlkStatus:
    """Most severe status in an iterable (OK when empty)."""
    worst = BlkStatus.OK
    for status in statuses:
        worst = worst.combine(status)
    return worst
